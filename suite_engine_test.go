package sdnbugs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"sdnbugs/internal/engine"
)

func TestRegistryContents(t *testing.T) {
	reg := sharedSuite.Registry()
	if reg.Len() != 33 {
		t.Fatalf("registry holds %d experiments, want 33 (E01–E26 + A01–A07)", reg.Len())
	}
	exps := reg.OfKind(engine.KindExperiment)
	if len(exps) != 26 {
		t.Fatalf("experiments = %d, want 26", len(exps))
	}
	for i, e := range exps {
		if want := fmt.Sprintf("E%02d", i+1); e.ID != want {
			t.Errorf("experiment[%d] = %s, want %s (paper order)", i, e.ID, want)
		}
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
	}
	abl := reg.OfKind(engine.KindAblation)
	if len(abl) != 7 {
		t.Fatalf("ablations = %d, want 7", len(abl))
	}
	for i, e := range abl {
		if want := fmt.Sprintf("A%02d", i+1); e.ID != want {
			t.Errorf("ablation[%d] = %s, want %s", i, e.ID, want)
		}
	}
	// The registry is built once and shared.
	if sharedSuite.Registry() != reg {
		t.Error("Registry() should be cached")
	}
}

// fastIDs are the experiments that run without NLP fitting — cheap
// enough to execute twice in one test. E21 is deliberately excluded:
// which HTTP layer absorbs a dropped connection (the resilience
// transport vs net/http's transparent idempotent retry) is not
// run-to-run stable, so its retry counters are not byte-comparable.
var fastIDs = []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
	"E10", "E13", "E14", "E15", "E16", "E17", "E18", "E20", "E22", "E23", "E24",
	"E25", "E26"}

// renderRun flattens a run's checks and tables into one comparable
// string (durations excluded — they are measurements, not artifacts).
func renderRun(run engine.Run[ExperimentResult]) string {
	var b strings.Builder
	for _, o := range run.Outcomes {
		fmt.Fprintf(&b, "### %s %s err=%v\n", o.ID, o.Title, o.Err)
		if o.Err != nil {
			continue
		}
		for _, c := range o.Result.Checks {
			fmt.Fprintf(&b, "%s|%s|%s|%s|%v\n", c.Artifact, c.Metric, c.Paper, c.Measured, c.Holds)
		}
		for _, tbl := range o.Result.Tables {
			b.WriteString(tbl.RenderString())
		}
	}
	return b.String()
}

// TestParallelMatchesSequential is the determinism contract: the same
// suite run with a 4-worker pool must produce byte-identical checks
// and tables, in the same order, as a sequential run. Running it
// under -race also exercises the documented guarantee that Suite's
// sync.Once artifact accessors make concurrent experiments safe.
func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	seq, err := sharedSuite.Run(ctx, RunOptions{IDs: fastIDs, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sharedSuite.Run(ctx, RunOptions{IDs: fastIDs, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	seqOut, parOut := renderRun(seq), renderRun(par)
	if seqOut != parOut {
		t.Errorf("parallel run diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
	if seq.Err() != nil {
		t.Errorf("run error: %v", seq.Err())
	}
	for _, o := range par.Outcomes {
		if o.Passed == 0 {
			t.Errorf("%s reported no passing checks", o.ID)
		}
		if o.Failed > 0 {
			t.Errorf("%s reported %d failed checks", o.ID, o.Failed)
		}
	}
}

// TestParallelColdSuite runs concurrent experiments against a fresh
// suite so the artifact builds themselves (corpus, studies) race
// through the sync.Once accessors under -race.
func TestParallelColdSuite(t *testing.T) {
	s := NewSuite(3)
	run, err := s.Run(context.Background(), RunOptions{
		IDs: []string{"E02", "E03", "E05", "E13", "E14"}, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if len(run.Outcomes) != 5 {
		t.Fatalf("outcomes = %d, want 5", len(run.Outcomes))
	}
}

func TestRunUnknownIDFails(t *testing.T) {
	_, err := sharedSuite.Run(context.Background(), RunOptions{IDs: []string{"E02", "E99"}})
	if !errors.Is(err, engine.ErrUnknownID) {
		t.Fatalf("err = %v, want ErrUnknownID", err)
	}
}

func TestRunSelectsAblations(t *testing.T) {
	// IDs may mix kinds; empty IDs + Ablations appends A01–A07.
	run, err := sharedSuite.Run(context.Background(), RunOptions{IDs: []string{"a06"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Outcomes) != 1 || run.Outcomes[0].ID != "A06" {
		t.Fatalf("outcomes = %+v, want exactly A06", run.Outcomes)
	}
	if run.Outcomes[0].Err != nil {
		t.Fatal(run.Outcomes[0].Err)
	}
}

func TestRunStreamsEvents(t *testing.T) {
	var events []engine.Event
	run, err := sharedSuite.Run(context.Background(), RunOptions{
		IDs:         []string{"E02", "E14"},
		Parallelism: 2,
		// The engine serializes OnEvent calls, so plain appends are safe.
		OnEvent: func(ev engine.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	starts, finishes := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case engine.EventStart:
			starts++
		case engine.EventFinish:
			finishes++
		}
	}
	if starts != 2 || finishes != 2 {
		t.Errorf("events = %d starts, %d finishes, want 2/2", starts, finishes)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, err := sharedSuite.Run(ctx, RunOptions{IDs: fastIDs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, o := range run.Outcomes {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("%s err = %v, want context.Canceled", o.ID, o.Err)
		}
	}
}

// TestWrappersUseRegistry pins the legacy slice API to the engine:
// the wrapper results must match a direct engine selection.
func TestWrappersUseRegistry(t *testing.T) {
	run, err := sharedSuite.Run(context.Background(), RunOptions{IDs: []string{"E02"}})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sharedSuite.E02Determinism()
	if err != nil {
		t.Fatal(err)
	}
	engineRes := run.Outcomes[0].Result
	if engineRes.ID != direct.ID || len(engineRes.Checks) != len(direct.Checks) {
		t.Errorf("engine result %s/%d checks, direct %s/%d checks",
			engineRes.ID, len(engineRes.Checks), direct.ID, len(direct.Checks))
	}
	for i := range engineRes.Checks {
		if engineRes.Checks[i] != direct.Checks[i] {
			t.Errorf("check %d diverged: %+v vs %+v", i, engineRes.Checks[i], direct.Checks[i])
		}
	}
}
