// The benchmark harness: one benchmark per table and figure of the
// paper (E01–E26, see DESIGN.md's per-experiment index) plus ablation
// benches for the design choices DESIGN.md calls out. Each benchmark
// regenerates its artifact from scratch and reports the headline
// measured values via b.ReportMetric, failing if any paper-vs-measured
// check does not hold. Run with:
//
//	go test -bench=. -benchmem
package sdnbugs

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"sdnbugs/internal/engine"
)

// benchSuite is shared so corpora and NLP fits amortize across the
// per-experiment benches below. Experiments whose cost the suite's
// validation cache would hide after the first iteration (E09, E12 and
// the NLP ablations) use runExperimentCold instead, which rebuilds the
// suite outside the timed region every iteration.
var benchSuite = NewSuite(1)

// newWarmSuite returns a fresh suite with the corpus prebuilt: cold
// NLP caches, but iterations measure experiment work rather than
// corpus generation.
func newWarmSuite(b *testing.B, workers int) *Suite {
	b.Helper()
	s := NewSuite(1)
	s.Workers = workers
	if _, err := s.Corpus(); err != nil {
		b.Fatal(err)
	}
	return s
}

// benchState carries measured walls between the suite benchmarks (they
// run in declaration order) so BenchmarkSuite_Parallel can report a
// true speedup — parallel wall against the separately measured
// sequential baseline, not a run's own serial-sum over its own wall,
// which self-compares to ~1 once experiments parallelize internally —
// and so writeBenchJSON can persist the machine-readable record.
var benchState struct {
	mu             sync.Mutex
	sequentialWall time.Duration
	parallelWall   time.Duration
	experiments    []benchExperiment
	dataplane      []benchDataplane
}

type benchExperiment struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

// benchDataplane is one row of the zero-alloc dataplane matrix
// (bench_dataplane_test.go): codec micro-benches record ns_per_op and
// allocs per message, the controller pipeline benches record
// packets_per_sec and allocs per packet (malloc delta over the timed
// loop).
type benchDataplane struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op,omitempty"`
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

type benchRecord struct {
	Timestamp        string            `json:"timestamp"`
	GoMaxProcs       int               `json:"gomaxprocs"`
	SequentialWallMS float64           `json:"sequential_wall_ms"`
	ParallelWallMS   float64           `json:"parallel_wall_ms"`
	Speedup          float64           `json:"speedup"`
	// BatchedSpeedup is the batched-over-serial controller pipeline
	// throughput ratio (packets/sec), when both pipeline benches ran.
	BatchedSpeedup float64           `json:"batched_packets_speedup,omitempty"`
	Experiments    []benchExperiment `json:"experiments"`
	Dataplane      []benchDataplane  `json:"dataplane,omitempty"`
}

// recordDataplane upserts one dataplane matrix row by name.
func recordDataplane(e benchDataplane) {
	benchState.mu.Lock()
	defer benchState.mu.Unlock()
	for i := range benchState.dataplane {
		if benchState.dataplane[i].Name == e.Name {
			benchState.dataplane[i] = e
			return
		}
	}
	benchState.dataplane = append(benchState.dataplane, e)
}

// dataplaneRate returns the recorded packets_per_sec for a named row
// (0 when that bench has not run in this invocation).
func dataplaneRate(name string) float64 {
	benchState.mu.Lock()
	defer benchState.mu.Unlock()
	for _, e := range benchState.dataplane {
		if e.Name == name {
			return e.PacketsPerSec
		}
	}
	return 0
}

// writeBenchJSON persists the suite benchmark record to the path in
// BENCH_JSON (no-op when unset); `make bench` points it at
// BENCH_suite.json so the perf trajectory is machine-readable.
func writeBenchJSON(b *testing.B) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	benchState.mu.Lock()
	defer benchState.mu.Unlock()
	rec := benchRecord{
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		SequentialWallMS: float64(benchState.sequentialWall) / float64(time.Millisecond),
		ParallelWallMS:   float64(benchState.parallelWall) / float64(time.Millisecond),
		Experiments:      benchState.experiments,
		Dataplane:        benchState.dataplane,
	}
	if benchState.sequentialWall > 0 && benchState.parallelWall > 0 {
		rec.Speedup = float64(benchState.sequentialWall) / float64(benchState.parallelWall)
	}
	var serialPPS, batchedPPS float64
	for _, e := range benchState.dataplane {
		switch e.Name {
		case "controller_events_serial":
			serialPPS = e.PacketsPerSec
		case "controller_events_batched":
			batchedPPS = e.PacketsPerSec
		}
	}
	if serialPPS > 0 && batchedPPS > 0 {
		rec.BatchedSpeedup = batchedPPS / serialPPS
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchSuiteRun executes the whole E01–E26 slate through the engine on
// a fresh suite per iteration (cold validation caches; corpus prebuilt
// outside the timer) and returns the last run.
func benchSuiteRun(b *testing.B, parallelism, workers int) engine.Run[ExperimentResult] {
	b.Helper()
	ctx := context.Background()
	var last engine.Run[ExperimentResult]
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := newWarmSuite(b, workers)
		b.StartTimer()
		run, err := s.Run(ctx, RunOptions{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		ok, failed, errored := run.Counts()
		if failed+errored > 0 {
			b.Fatalf("suite run: %d ok, %d failed checks, %d errored: %v",
				ok, failed, errored, run.Err())
		}
		last = run
	}
	return last
}

// BenchmarkSuite_Sequential is the true-serial baseline: one engine
// worker and Workers=1 inside every experiment.
func BenchmarkSuite_Sequential(b *testing.B) {
	run := benchSuiteRun(b, 1, 1)
	benchState.mu.Lock()
	benchState.sequentialWall = run.Wall
	benchState.experiments = benchState.experiments[:0]
	for _, o := range run.Outcomes {
		benchState.experiments = append(benchState.experiments,
			benchExperiment{ID: o.ID, WallMS: float64(o.Duration) / float64(time.Millisecond)})
	}
	benchState.mu.Unlock()
	writeBenchJSON(b)
}

// BenchmarkSuite_Parallel runs the same slate with a GOMAXPROCS
// engine pool and GOMAXPROCS workers inside experiments. The reported
// "speedup" metric is the sequential baseline's wall over this run's
// wall (only when BenchmarkSuite_Sequential ran in the same
// invocation); it approaches the core count on multi-core hardware
// and ~1.0 when GOMAXPROCS is 1.
func BenchmarkSuite_Parallel(b *testing.B) {
	run := benchSuiteRun(b, 0, 0)
	benchState.mu.Lock()
	benchState.parallelWall = run.Wall
	seq := benchState.sequentialWall
	benchState.mu.Unlock()
	if seq > 0 && run.Wall > 0 {
		b.ReportMetric(float64(seq)/float64(run.Wall), "speedup")
	}
	writeBenchJSON(b)
}

// runExperiment executes one experiment per iteration and asserts its
// checks, then lets the bench report headline metrics.
func runExperiment(b *testing.B, run func() (ExperimentResult, error), metrics func(*testing.B, ExperimentResult)) {
	b.Helper()
	var last ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		assertChecks(b, res)
		last = res
	}
	if metrics != nil {
		metrics(b, last)
	}
}

// runExperimentCold is runExperiment against a fresh suite every
// iteration, for experiments the suite-level validation cache would
// otherwise answer from memory after iteration one (the bench would
// measure a map lookup). Suite construction happens outside the timed
// region; workers bounds the in-experiment pools.
func runExperimentCold(b *testing.B, workers int,
	run func(*Suite) (ExperimentResult, error), metrics func(*testing.B, ExperimentResult)) {
	b.Helper()
	var last ExperimentResult
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := newWarmSuite(b, workers)
		b.StartTimer()
		res, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		assertChecks(b, res)
		last = res
	}
	if metrics != nil {
		metrics(b, last)
	}
}

func assertChecks(b *testing.B, res ExperimentResult) {
	b.Helper()
	for _, c := range res.Checks {
		if !c.Holds {
			b.Fatalf("%s check failed: %s — paper %q, measured %q",
				res.ID, c.Metric, c.Paper, c.Measured)
		}
	}
}

// pctMetric extracts the numeric value of a "xx.x%" string (-1 when
// the string is not a percentage).
func pctMetric(s string) float64 {
	if len(s) == 0 || s[len(s)-1] != '%' {
		return -1
	}
	v, err := strconv.ParseFloat(s[:len(s)-1], 64)
	if err != nil {
		return -1
	}
	return v
}

// findCheck returns the measured value of a check by metric name.
func findCheck(res ExperimentResult, metric string) string {
	for _, c := range res.Checks {
		if c.Metric == metric {
			return c.Measured
		}
	}
	return ""
}

func BenchmarkE01_CorpusMining(b *testing.B) {
	runExperiment(b, benchSuite.E01CorpusMining, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "bugs created within 45d after a release")), "release_burst_%")
	})
}

func BenchmarkE02_Determinism(b *testing.B) {
	runExperiment(b, benchSuite.E02Determinism, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "FAUCET deterministic")), "FAUCET_det_%")
		b.ReportMetric(pctMetric(findCheck(res, "ONOS deterministic")), "ONOS_det_%")
		b.ReportMetric(pctMetric(findCheck(res, "CORD deterministic")), "CORD_det_%")
	})
}

func BenchmarkE03_Symptoms(b *testing.B) {
	runExperiment(b, benchSuite.E03Symptoms, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "byzantine")), "byzantine_%")
		b.ReportMetric(pctMetric(findCheck(res, "fail-stop")), "failstop_%")
	})
}

func BenchmarkE04_RootCauseBySymptom(b *testing.B) {
	runExperiment(b, benchSuite.E04RootCauseBySymptom, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "FAUCET fail-stop from human+ecosystem")), "faucet_failstop_humaneco_%")
	})
}

func BenchmarkE05_Triggers(b *testing.B) {
	runExperiment(b, benchSuite.E05Triggers, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "configuration")), "config_trigger_%")
		b.ReportMetric(pctMetric(findCheck(res, "network-event")), "network_trigger_%")
	})
}

func BenchmarkE06_ConfigSubcategories(b *testing.B) {
	runExperiment(b, benchSuite.E06ConfigSubcategories, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "ONOS controller-config")), "onos_controller_scope_%")
	})
}

func BenchmarkE07_FixAnalysis(b *testing.B) {
	runExperiment(b, benchSuite.E07FixAnalysis, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "config bugs fixed by config change")), "config_fixed_by_config_%")
		b.ReportMetric(pctMetric(findCheck(res, "external-call compatibility/upgrade fixes")), "external_compat_fixes_%")
	})
}

func BenchmarkE08_ResolutionCDF(b *testing.B) {
	runExperiment(b, benchSuite.E08ResolutionCDF, nil)
}

func BenchmarkE09_NLPValidation(b *testing.B) {
	runExperimentCold(b, 0, (*Suite).E09NLPValidation, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "SVM bug-type accuracy")), "svm_type_acc_%")
		b.ReportMetric(pctMetric(findCheck(res, "SVM symptom accuracy")), "svm_symptom_acc_%")
		b.ReportMetric(pctMetric(findCheck(res, "fix prediction is poor")), "svm_fix_acc_%")
	})
}

// BenchmarkE09_NLPValidation_Serial pins Workers=1; the ratio against
// BenchmarkE09_NLPValidation is the experiment's internal parallel
// speedup on this machine.
func BenchmarkE09_NLPValidation_Serial(b *testing.B) {
	runExperimentCold(b, 1, (*Suite).E09NLPValidation, nil)
}

func BenchmarkE10_CorrelationCDF(b *testing.B) {
	runExperiment(b, benchSuite.E10CorrelationCDF, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "strongly correlated pair share")), "strong_pairs_%")
	})
}

func BenchmarkE11_TopicUniqueness(b *testing.B) {
	runExperiment(b, benchSuite.E11TopicUniqueness, nil)
}

// BenchmarkE11_TopicUniqueness_Serial pins Workers=1 on a cold suite;
// the ratio against the cold parallel run below is the NMF sweep's
// internal parallel speedup.
func BenchmarkE11_TopicUniqueness_Serial(b *testing.B) {
	runExperimentCold(b, 1, (*Suite).E11TopicUniqueness, nil)
}

func BenchmarkE12_FullDatasetPrediction(b *testing.B) {
	runExperimentCold(b, 0, (*Suite).E12FullDatasetPrediction, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "configuration is the dominant predicted trigger")), "pred_config_%")
		b.ReportMetric(pctMetric(findCheck(res, "network events contribute a small part")), "pred_network_%")
	})
}

// BenchmarkE12_FullDatasetPrediction_Serial pins Workers=1; against
// BenchmarkE12_FullDatasetPrediction it measures the full-dataset
// fold pool's parallel speedup.
func BenchmarkE12_FullDatasetPrediction_Serial(b *testing.B) {
	runExperimentCold(b, 1, (*Suite).E12FullDatasetPrediction, nil)
}

func BenchmarkE13_SmellTrend(b *testing.B) {
	runExperiment(b, benchSuite.E13SmellTrend, nil)
}

func BenchmarkE14_CommitsPerRelease(b *testing.B) {
	runExperiment(b, benchSuite.E14CommitsPerRelease, nil)
}

func BenchmarkE15_FaucetBurn(b *testing.B) {
	runExperiment(b, benchSuite.E15FaucetBurn, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "configuration")), "config_commits_%")
	})
}

func BenchmarkE16_DependencyBurn(b *testing.B) {
	runExperiment(b, benchSuite.E16DependencyBurn, nil)
}

func BenchmarkE17_VulnerabilityScan(b *testing.B) {
	runExperiment(b, benchSuite.E17VulnerabilityScan, nil)
}

func BenchmarkE18_ControllerSelection(b *testing.B) {
	runExperiment(b, benchSuite.E18ControllerSelection, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "FAUCET missing-logic share")), "faucet_missing_logic_%")
	})
}

func BenchmarkE19_RecoveryCoverage(b *testing.B) {
	runExperiment(b, benchSuite.E19RecoveryCoverage, nil)
}

// BenchmarkE19_RecoveryCoverage_Serial pins Workers=1 on a cold suite
// so the recovery-matrix fan-out cost is measurable against the warm
// parallel bench above.
func BenchmarkE19_RecoveryCoverage_Serial(b *testing.B) {
	runExperimentCold(b, 1, (*Suite).E19RecoveryCoverage, nil)
}

func BenchmarkE20_CrossDomainComparison(b *testing.B) {
	runExperiment(b, benchSuite.E20CrossDomainComparison, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "SDN fail-stop share below cloud and BGP")), "sdn_failstop_%")
		b.ReportMetric(pctMetric(findCheck(res, "SDN byzantine share above cloud and BGP")), "sdn_byzantine_%")
	})
}

func BenchmarkE21_ResilientMining(b *testing.B) {
	// Wall time here is dominated by the retry schedule under a 50%
	// injected-fault rate — the price of mining through chaos.
	runExperiment(b, benchSuite.E21ResilientMining, nil)
}

func BenchmarkE22_SelfHealingCampaign(b *testing.B) {
	// Four full campaigns per run (checkpointed twice for the
	// determinism check, cold, and the unsupervised baseline).
	runExperiment(b, benchSuite.E22SelfHealingCampaign, nil)
}

func BenchmarkE23_KillAndResumeMining(b *testing.B) {
	// Two full durable mines (clean baseline + the kill-and-resume
	// campaign across five scheduled disk crashes) plus the per-op
	// crash matrix.
	runExperiment(b, benchSuite.E23KillAndResumeMining, nil)
}

func BenchmarkE24_PerformanceFuzzing(b *testing.B) {
	// Two full fuzzing runs (the second for the byte-identity check):
	// guided search, equal-budget random baseline, reproducer
	// shrinking, and classifier training.
	runExperiment(b, benchSuite.E24PerformanceFuzzing, nil)
}

func BenchmarkE25_AutomaticRepair(b *testing.B) {
	// Two full repair runs (the second for the byte-identity check):
	// shed-mode campaign epoch, candidate synthesis + learner ranking,
	// reproducer + campaign validation per survivor, lifted epoch.
	runExperiment(b, benchSuite.E25AutomaticRepair, nil)
}

func BenchmarkE26_ClusterFailover(b *testing.B) {
	// Two full HA campaigns (the second for the byte-identity check):
	// replicated ensemble under crashes/partitions, supervised
	// single-controller baseline, and the unfaulted truth run.
	runExperiment(b, benchSuite.E26ClusterFailover, nil)
}

func BenchmarkAblation_Features(b *testing.B) {
	runExperimentCold(b, 0, (*Suite).AblationFeatures, nil)
}

func BenchmarkAblation_Scaling(b *testing.B) {
	runExperimentCold(b, 0, (*Suite).AblationScaling, nil)
}

func BenchmarkAblation_NMFRank(b *testing.B) {
	runExperiment(b, benchSuite.AblationNMFRank, nil)
}

func BenchmarkAblation_TransformScope(b *testing.B) {
	runExperiment(b, benchSuite.AblationTransformScope, nil)
}

func BenchmarkAblation_TopicModel(b *testing.B) {
	runExperiment(b, benchSuite.AblationTopicModel, nil)
}

func BenchmarkAblation_Prediction(b *testing.B) {
	runExperiment(b, benchSuite.AblationPrediction, nil)
}

func BenchmarkAblation_Layering(b *testing.B) {
	runExperiment(b, benchSuite.AblationLayering, nil)
}
