// The benchmark harness: one benchmark per table and figure of the
// paper (E01–E22, see DESIGN.md's per-experiment index) plus ablation
// benches for the design choices DESIGN.md calls out. Each benchmark
// regenerates its artifact from scratch and reports the headline
// measured values via b.ReportMetric, failing if any paper-vs-measured
// check does not hold. Run with:
//
//	go test -bench=. -benchmem
package sdnbugs

import (
	"context"
	"strconv"
	"testing"
)

// benchSuite is shared so corpora and NLP fits amortize across benches.
var benchSuite = NewSuite(1)

// benchSuiteRun executes the whole E01–E22 slate through the engine
// at a given parallelism, so BenchmarkSuite_Sequential vs
// BenchmarkSuite_Parallel measures (rather than asserts) the worker
// pool's speedup. The reported "speedup" metric is serial-time over
// wall-time for the last iteration; it approaches the core count on
// multi-core hardware and ~1.0 when GOMAXPROCS is 1.
func benchSuiteRun(b *testing.B, parallelism int) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		run, err := benchSuite.Run(ctx, RunOptions{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		ok, failed, errored := run.Counts()
		if failed+errored > 0 {
			b.Fatalf("suite run: %d ok, %d failed checks, %d errored: %v",
				ok, failed, errored, run.Err())
		}
		if i == b.N-1 && run.Wall > 0 {
			b.ReportMetric(float64(run.Serial())/float64(run.Wall), "speedup")
		}
	}
}

// BenchmarkSuite_Sequential runs all twenty-two experiments on one worker.
func BenchmarkSuite_Sequential(b *testing.B) { benchSuiteRun(b, 1) }

// BenchmarkSuite_Parallel runs the same slate on a GOMAXPROCS pool;
// compare ns/op against BenchmarkSuite_Sequential for the wall-clock
// win.
func BenchmarkSuite_Parallel(b *testing.B) { benchSuiteRun(b, 0) }

// runExperiment executes one experiment per iteration and asserts its
// checks, then lets the bench report headline metrics.
func runExperiment(b *testing.B, run func() (ExperimentResult, error), metrics func(*testing.B, ExperimentResult)) {
	b.Helper()
	var last ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Checks {
			if !c.Holds {
				b.Fatalf("%s check failed: %s — paper %q, measured %q",
					res.ID, c.Metric, c.Paper, c.Measured)
			}
		}
		last = res
	}
	if metrics != nil {
		metrics(b, last)
	}
}

// pctMetric extracts the numeric value of a "xx.x%" string (-1 when
// the string is not a percentage).
func pctMetric(s string) float64 {
	if len(s) == 0 || s[len(s)-1] != '%' {
		return -1
	}
	v, err := strconv.ParseFloat(s[:len(s)-1], 64)
	if err != nil {
		return -1
	}
	return v
}

// findCheck returns the measured value of a check by metric name.
func findCheck(res ExperimentResult, metric string) string {
	for _, c := range res.Checks {
		if c.Metric == metric {
			return c.Measured
		}
	}
	return ""
}

func BenchmarkE01_CorpusMining(b *testing.B) {
	runExperiment(b, benchSuite.E01CorpusMining, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "bugs created within 45d after a release")), "release_burst_%")
	})
}

func BenchmarkE02_Determinism(b *testing.B) {
	runExperiment(b, benchSuite.E02Determinism, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "FAUCET deterministic")), "FAUCET_det_%")
		b.ReportMetric(pctMetric(findCheck(res, "ONOS deterministic")), "ONOS_det_%")
		b.ReportMetric(pctMetric(findCheck(res, "CORD deterministic")), "CORD_det_%")
	})
}

func BenchmarkE03_Symptoms(b *testing.B) {
	runExperiment(b, benchSuite.E03Symptoms, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "byzantine")), "byzantine_%")
		b.ReportMetric(pctMetric(findCheck(res, "fail-stop")), "failstop_%")
	})
}

func BenchmarkE04_RootCauseBySymptom(b *testing.B) {
	runExperiment(b, benchSuite.E04RootCauseBySymptom, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "FAUCET fail-stop from human+ecosystem")), "faucet_failstop_humaneco_%")
	})
}

func BenchmarkE05_Triggers(b *testing.B) {
	runExperiment(b, benchSuite.E05Triggers, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "configuration")), "config_trigger_%")
		b.ReportMetric(pctMetric(findCheck(res, "network-event")), "network_trigger_%")
	})
}

func BenchmarkE06_ConfigSubcategories(b *testing.B) {
	runExperiment(b, benchSuite.E06ConfigSubcategories, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "ONOS controller-config")), "onos_controller_scope_%")
	})
}

func BenchmarkE07_FixAnalysis(b *testing.B) {
	runExperiment(b, benchSuite.E07FixAnalysis, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "config bugs fixed by config change")), "config_fixed_by_config_%")
		b.ReportMetric(pctMetric(findCheck(res, "external-call compatibility/upgrade fixes")), "external_compat_fixes_%")
	})
}

func BenchmarkE08_ResolutionCDF(b *testing.B) {
	runExperiment(b, benchSuite.E08ResolutionCDF, nil)
}

func BenchmarkE09_NLPValidation(b *testing.B) {
	runExperiment(b, benchSuite.E09NLPValidation, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "SVM bug-type accuracy")), "svm_type_acc_%")
		b.ReportMetric(pctMetric(findCheck(res, "SVM symptom accuracy")), "svm_symptom_acc_%")
		b.ReportMetric(pctMetric(findCheck(res, "fix prediction is poor")), "svm_fix_acc_%")
	})
}

func BenchmarkE10_CorrelationCDF(b *testing.B) {
	runExperiment(b, benchSuite.E10CorrelationCDF, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "strongly correlated pair share")), "strong_pairs_%")
	})
}

func BenchmarkE11_TopicUniqueness(b *testing.B) {
	runExperiment(b, benchSuite.E11TopicUniqueness, nil)
}

func BenchmarkE12_FullDatasetPrediction(b *testing.B) {
	runExperiment(b, benchSuite.E12FullDatasetPrediction, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "configuration is the dominant predicted trigger")), "pred_config_%")
		b.ReportMetric(pctMetric(findCheck(res, "network events contribute a small part")), "pred_network_%")
	})
}

func BenchmarkE13_SmellTrend(b *testing.B) {
	runExperiment(b, benchSuite.E13SmellTrend, nil)
}

func BenchmarkE14_CommitsPerRelease(b *testing.B) {
	runExperiment(b, benchSuite.E14CommitsPerRelease, nil)
}

func BenchmarkE15_FaucetBurn(b *testing.B) {
	runExperiment(b, benchSuite.E15FaucetBurn, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "configuration")), "config_commits_%")
	})
}

func BenchmarkE16_DependencyBurn(b *testing.B) {
	runExperiment(b, benchSuite.E16DependencyBurn, nil)
}

func BenchmarkE17_VulnerabilityScan(b *testing.B) {
	runExperiment(b, benchSuite.E17VulnerabilityScan, nil)
}

func BenchmarkE18_ControllerSelection(b *testing.B) {
	runExperiment(b, benchSuite.E18ControllerSelection, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "FAUCET missing-logic share")), "faucet_missing_logic_%")
	})
}

func BenchmarkE19_RecoveryCoverage(b *testing.B) {
	runExperiment(b, benchSuite.E19RecoveryCoverage, nil)
}

func BenchmarkE20_CrossDomainComparison(b *testing.B) {
	runExperiment(b, benchSuite.E20CrossDomainComparison, func(b *testing.B, res ExperimentResult) {
		b.ReportMetric(pctMetric(findCheck(res, "SDN fail-stop share below cloud and BGP")), "sdn_failstop_%")
		b.ReportMetric(pctMetric(findCheck(res, "SDN byzantine share above cloud and BGP")), "sdn_byzantine_%")
	})
}

func BenchmarkE21_ResilientMining(b *testing.B) {
	// Wall time here is dominated by the retry schedule under a 50%
	// injected-fault rate — the price of mining through chaos.
	runExperiment(b, benchSuite.E21ResilientMining, nil)
}

func BenchmarkE22_SelfHealingCampaign(b *testing.B) {
	// Four full campaigns per run (checkpointed twice for the
	// determinism check, cold, and the unsupervised baseline).
	runExperiment(b, benchSuite.E22SelfHealingCampaign, nil)
}

func BenchmarkAblation_Features(b *testing.B) {
	runExperiment(b, benchSuite.AblationFeatures, nil)
}

func BenchmarkAblation_Scaling(b *testing.B) {
	runExperiment(b, benchSuite.AblationScaling, nil)
}

func BenchmarkAblation_NMFRank(b *testing.B) {
	runExperiment(b, benchSuite.AblationNMFRank, nil)
}

func BenchmarkAblation_TransformScope(b *testing.B) {
	runExperiment(b, benchSuite.AblationTransformScope, nil)
}

func BenchmarkAblation_TopicModel(b *testing.B) {
	runExperiment(b, benchSuite.AblationTopicModel, nil)
}

func BenchmarkAblation_Prediction(b *testing.B) {
	runExperiment(b, benchSuite.AblationPrediction, nil)
}

func BenchmarkAblation_Layering(b *testing.B) {
	runExperiment(b, benchSuite.AblationLayering, nil)
}
