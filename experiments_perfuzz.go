package sdnbugs

import (
	"bytes"
	"fmt"

	"sdnbugs/internal/engine"
	"sdnbugs/internal/perfuzz"
	"sdnbugs/internal/report"
)

// registerPerfuzzExperiments registers the feedback-guided
// performance-fuzzing experiment (E24) after the self-healing
// campaign.
func (s *Suite) registerPerfuzzExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E24", "feedback-guided performance fuzzing with minimal-reproducer shrinking",
		engine.KindExperiment, s.E24PerformanceFuzzing)
}

// E24PerformanceFuzzing is the schedule-search experiment: a genetic
// fuzzer over event schedules (internal/perfuzz) hunts the stateful
// performance bugs the taxonomy names — budget-driven queue
// amplification, config-churn slowdown, reboot-storm stalls, and the
// deterministic poison-config crash — using supervisor probe signals
// and the per-event latency tail as fitness. Every degradation class
// it finds is delta-debugged to a minimal reproducer that must still
// trigger the same class; the corpus of (schedule → degraded?) pairs
// trains a decision tree that must beat the majority and random-guess
// baselines on held-out schedules; and the whole run is byte-identical
// across same-seed repeats.
func (s *Suite) E24PerformanceFuzzing() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E24",
		Title: "feedback-guided performance fuzzing with minimal-reproducer shrinking"}

	cfg := perfuzz.Config{Seed: s.Seed}
	rep, err := perfuzz.Fuzz(cfg)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: perfuzz run: %w", err)
	}
	rep2, err := perfuzz.Fuzz(cfg)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: perfuzz rerun: %w", err)
	}
	js1, err := rep.JSON()
	if err != nil {
		return res, fmt.Errorf("sdnbugs: perfuzz report: %w", err)
	}
	js2, err := rep2.JSON()
	if err != nil {
		return res, fmt.Errorf("sdnbugs: perfuzz report rerun: %w", err)
	}

	monotone := true
	for i := 1; i < len(rep.BestFitnessPerGen); i++ {
		if rep.BestFitnessPerGen[i] < rep.BestFitnessPerGen[i-1] {
			monotone = false
		}
	}

	reprosHold := len(rep.Reproducers) > 0
	shrunkStrictly := false
	for _, rp := range rep.Reproducers {
		if rp.Eval.Class != rp.Class || !rp.Eval.Degraded() || rp.Len > rp.ParentLen {
			reprosHold = false
		}
		if rp.Len < rp.ParentLen {
			shrunkStrictly = true
		}
	}

	res.Checks = append(res.Checks,
		report.Check{Artifact: "E24", Metric: "guided search finds degradation-inducing schedules",
			Paper: "stateful performance bugs need the right event sequence, not a poison input",
			Measured: fmt.Sprintf("%d/%d guided schedules degraded; best fitness per gen %s monotone",
				rep.Guided.Degraded, rep.Guided.Distinct, map[bool]string{true: "is", false: "is NOT"}[monotone]),
			Holds: rep.Guided.Degraded >= 1 && monotone},
		report.Check{Artifact: "E24", Metric: "feedback beats random search at equal budget",
			Paper: "fitness-guided mutation concentrates the schedule mix the bugs reward",
			Measured: fmt.Sprintf("guided %d degraded vs random %d (both %d evals)",
				rep.Guided.Degraded, rep.Random.Degraded, rep.Guided.Evals),
			Holds: rep.Guided.Degraded > rep.Random.Degraded},
		report.Check{Artifact: "E24", Metric: "minimal reproducers keep their degradation class",
			Paper: "delta debugging preserves the failure while discarding the noise",
			Measured: fmt.Sprintf("%d reproducers, all class-stable and never longer; strictly shorter: %v",
				len(rep.Reproducers), shrunkStrictly),
			Holds: reprosHold && shrunkStrictly},
		report.Check{Artifact: "E24", Metric: "failure model beats baselines on held-out schedules",
			Paper: "learned failure-inducing models predict degradation before replay",
			Measured: fmt.Sprintf("tree %.3f vs majority %.3f vs random-guess %.3f (test n=%d)",
				rep.Learner.Accuracy, rep.Learner.MajorityAccuracy,
				rep.Learner.RandomGuessAccuracy, rep.Learner.TestSize),
			Holds: rep.Learner.Beats},
		report.Check{Artifact: "E24", Metric: "byte-identical reports at a fixed seed",
			Paper:    "the fuzzer is reproducible from (seed, budget)",
			Measured: fmt.Sprintf("%d-byte reports, identical=%v", len(js1), bytes.Equal(js1, js2)),
			Holds:    bytes.Equal(js1, js2)},
	)

	tbl := &report.Table{Title: "Feedback-guided vs random schedule search (E24)",
		Headers: []string{"metric", "guided", "random"}}
	_ = tbl.AddRow("evaluations", fmt.Sprintf("%d", rep.Guided.Evals), fmt.Sprintf("%d", rep.Random.Evals))
	_ = tbl.AddRow("distinct schedules", fmt.Sprintf("%d", rep.Guided.Distinct), fmt.Sprintf("%d", rep.Random.Distinct))
	_ = tbl.AddRow("degraded schedules", fmt.Sprintf("%d", rep.Guided.Degraded), fmt.Sprintf("%d", rep.Random.Degraded))
	_ = tbl.AddRow("best fitness", fmt.Sprintf("%.2f", rep.Guided.BestFitness), fmt.Sprintf("%.2f", rep.Random.BestFitness))
	res.Tables = append(res.Tables, tbl)

	rtbl := &report.Table{Title: "Minimal reproducers (E24)",
		Headers: []string{"class", "parent len", "shrunk len", "shrink steps", "shrink evals", "fitness"}}
	for _, rp := range rep.Reproducers {
		_ = rtbl.AddRow(rp.Class, fmt.Sprintf("%d", rp.ParentLen), fmt.Sprintf("%d", rp.Len),
			fmt.Sprintf("%d", rp.ShrinkSteps), fmt.Sprintf("%d", rp.ShrinkEvals),
			fmt.Sprintf("%.2f", rp.Eval.Fitness))
	}
	res.Tables = append(res.Tables, rtbl)
	return res, nil
}
