// The dataplane half of the bench matrix: zero-alloc OpenFlow codec
// micro-benches plus the end-to-end controller pipeline pair —
// per-event ReadMessage+Submit against FrameReader.ReadBatch +
// ProcessBatch — reporting packets/sec. The encode/decode benches
// double as the CI allocs/op gate: any steady-state allocation fails
// the bench (`make bench-dataplane-smoke`). This file sorts before
// bench_test.go, so the rows recorded here are present when the suite
// benchmarks persist BENCH_JSON.
package sdnbugs

import (
	"bytes"
	"os"
	"runtime"
	"testing"

	"sdnbugs/internal/ofconn"
	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// pipelinePackets is how many punted packets each pipeline iteration
// pushes through decode + controller submission — several ReadBatch
// rounds, so batching amortization is actually exercised.
const pipelinePackets = 512

// dataplaneMessages is a representative switch-to-controller mix for
// the codec micro-benches.
func dataplaneMessages() []openflow.Message {
	return []openflow.Message{
		&openflow.Hello{},
		&openflow.EchoRequest{Data: []byte("ping-0123")},
		&openflow.PacketIn{DatapathID: 7, InPort: 3, Reason: 1, Data: bytes.Repeat([]byte{0x5a}, 48)},
		&openflow.PacketOut{DatapathID: 7, InPort: 2,
			Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 4}},
			Data:    bytes.Repeat([]byte{0xa5}, 48)},
		&openflow.FlowMod{DatapathID: 7, Command: openflow.FlowAdd, Priority: 10, IdleTimeout: 60,
			Match: openflow.Match{MatchInPort: true, InPort: 3, EthDst: 0x0a0b0c0d0e0f, EthType: 0x0800},
			Actions: []openflow.Action{
				{Type: openflow.ActionOutput, Port: 1},
				{Type: openflow.ActionSetVlan, Vlan: 7},
			}},
	}
}

// BenchmarkOpenFlowEncode measures AppendEncode over the message mix
// and fails on any steady-state allocation.
func BenchmarkOpenFlowEncode(b *testing.B) {
	msgs := dataplaneMessages()
	buf := make([]byte, 0, 4096)
	encodeAll := func() {
		buf = buf[:0]
		var err error
		for j, m := range msgs {
			if buf, err = openflow.AppendEncode(buf, m, uint32(j+1)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeAll()
	}
	b.StopTimer()
	nsPerMsg := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(msgs))
	allocs := testing.AllocsPerRun(100, encodeAll) / float64(len(msgs))
	if allocs != 0 {
		b.Fatalf("AppendEncode steady state: %v allocs/msg, want 0", allocs)
	}
	recordDataplane(benchDataplane{Name: "openflow_encode", NsPerOp: nsPerMsg, AllocsPerOp: allocs})
}

// BenchmarkOpenFlowDecode measures Codec.Decode (copy mode — the
// conservative default) over the same mix, with the same zero-alloc
// gate.
func BenchmarkOpenFlowDecode(b *testing.B) {
	msgs := dataplaneMessages()
	var stream []byte
	var bounds []int
	for j, m := range msgs {
		var err error
		if stream, err = openflow.AppendEncode(stream, m, uint32(j+1)); err != nil {
			b.Fatal(err)
		}
		bounds = append(bounds, len(stream))
	}
	codec := openflow.NewCodec()
	decodeAll := func() {
		start := 0
		for _, end := range bounds {
			if _, _, _, err := codec.Decode(stream[start:end]); err != nil {
				b.Fatal(err)
			}
			start = end
		}
	}
	decodeAll() // warm the codec scratch so AllocsPerRun sees steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decodeAll()
	}
	b.StopTimer()
	nsPerMsg := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(msgs))
	allocs := testing.AllocsPerRun(100, decodeAll) / float64(len(msgs))
	if allocs != 0 {
		b.Fatalf("Codec.Decode steady state: %v allocs/msg, want 0", allocs)
	}
	recordDataplane(benchDataplane{Name: "openflow_decode", NsPerOp: nsPerMsg, AllocsPerOp: allocs})
}

// countApp is the minimal reactive app for the pipeline benches: it
// touches the punted message, as any real handler would, and charges
// one tick.
type countApp struct{ seen int }

func (*countApp) Name() string { return "bench-count" }

func (a *countApp) HandleEvent(c *sdn.Controller, ev sdn.Event) (int, error) {
	if pi, ok := ev.Msg.(*openflow.PacketIn); ok && pi.InPort > 0 {
		a.seen++
	}
	return 1, nil
}

// packetInStream pre-encodes n punts as one contiguous wire stream.
func packetInStream(n int) []byte {
	payload := bytes.Repeat([]byte{0xab}, 64)
	var buf []byte
	var err error
	for i := 0; i < n; i++ {
		pi := &openflow.PacketIn{DatapathID: uint64(i%4 + 1), InPort: uint32(i%3 + 1), Data: payload}
		if buf, err = openflow.AppendEncode(buf, pi, uint32(i+1)); err != nil {
			panic(err)
		}
	}
	return buf
}

// pipelineTransport gives both pipeline benches a real kernel pipe, so
// the baseline pays the per-read syscalls it pays in production — the
// cost the batched reader exists to amortize. The writer goroutine
// plays the switch, pushing one full punt burst per iteration.
func pipelineTransport(b *testing.B, stream []byte) (*os.File, func()) {
	b.Helper()
	pr, pw, err := os.Pipe()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		pr.Close()
		pw.Close()
	})
	burst := func() {
		go pw.Write(stream)
	}
	return pr, burst
}

// BenchmarkControllerEventsSerial is the pre-batching pipeline, one
// punt at a time exactly as Conn.Recv consumed the wire: two
// transport reads per message (header, then body), a freshly
// allocated owned message, one Submit per punt.
func BenchmarkControllerEventsSerial(b *testing.B) {
	stream := packetInStream(pipelinePackets)
	app := &countApp{}
	c := sdn.NewController(sdn.NewNetwork(), sdn.NewEnvironment(), app)
	pr, burst := pipelineTransport(b, stream)
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Restart(false)
		burst()
		for n := 0; n < pipelinePackets; n++ {
			msg, _, err := openflow.ReadMessage(pr)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Submit(sdn.Event{Kind: sdn.EventNetwork, Msg: msg}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if want := b.N * pipelinePackets; app.seen != want {
		b.Fatalf("serial pipeline handled %d punts, want %d", app.seen, want)
	}
	pps := float64(b.N*pipelinePackets) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "packets/sec")
	recordDataplane(benchDataplane{Name: "controller_events_serial", PacketsPerSec: pps,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N*pipelinePackets)})
}

// BenchmarkControllerEventsBatched is the batched pipeline: ReadBatch
// drains every buffered frame per fill (zero-copy decode through the
// codec ring) and ProcessBatch submits the whole round against one
// pre-reserved log region. The log only grows between Restarts here,
// so retaining zero-copy messages in it stays within the
// valid-until-next-ReadBatch contract: nothing re-reads them.
func BenchmarkControllerEventsBatched(b *testing.B) {
	stream := packetInStream(pipelinePackets)
	app := &countApp{}
	c := sdn.NewController(sdn.NewNetwork(), sdn.NewEnvironment(), app)
	pr, burst := pipelineTransport(b, stream)
	fr := ofconn.NewFrameReader(pr)
	frames := make([]ofconn.Frame, 0, 64)
	events := make([]sdn.Event, 0, 64)
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Restart(false)
		burst()
		for done := 0; done < pipelinePackets; {
			var err error
			if frames, err = fr.ReadBatch(frames[:0]); err != nil {
				b.Fatal(err)
			}
			events = events[:0]
			for j := range frames {
				events = append(events, sdn.Event{Kind: sdn.EventNetwork, Msg: frames[j].Msg})
			}
			if _, err := c.ProcessBatch(events); err != nil {
				b.Fatal(err)
			}
			done += len(frames)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if want := b.N * pipelinePackets; app.seen != want {
		b.Fatalf("batched pipeline handled %d punts, want %d", app.seen, want)
	}
	pps := float64(b.N*pipelinePackets) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "packets/sec")
	recordDataplane(benchDataplane{Name: "controller_events_batched", PacketsPerSec: pps,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N*pipelinePackets)})
	if serial := dataplaneRate("controller_events_serial"); serial > 0 {
		speedup := pps / serial
		b.ReportMetric(speedup, "vs_serial")
		// The batched path's contract: at least 2x the per-event
		// pipeline. Gate it so a regression fails the smoke run.
		if speedup < 2.0 {
			b.Fatalf("batched pipeline %.0f packets/sec is only %.2fx serial (%.0f), want >= 2x",
				pps, speedup, serial)
		}
	}
}
