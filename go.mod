module sdnbugs

go 1.24
