package sdnbugs

import (
	"context"
	"runtime"
	"testing"

	"sdnbugs/internal/engine"
)

// nlpIDs are the experiments and ablations that exercise the parallel
// NLP validation path — the PR's hot set.
var nlpIDs = []string{"E09", "A01", "A02"}

// TestSuiteWorkersDeterministic is the tentpole's end-to-end
// determinism contract: the NLP experiments must render byte-identical
// checks and tables whether the in-experiment worker pools run on one
// goroutine or many. Each worker count gets its own suite so the
// validation cache cannot mask a divergence.
func TestSuiteWorkersDeterministic(t *testing.T) {
	if raceEnabled {
		t.Skip("full E09 workloads are too slow under -race; internal/study covers the parallel grid")
	}
	ctx := context.Background()
	var base string
	for _, workers := range []int{1, 8} {
		s := NewSuite(1)
		s.Workers = workers
		run, err := s.Run(ctx, RunOptions{IDs: nlpIDs, Parallelism: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := run.Err(); err != nil {
			t.Fatalf("workers=%d run error: %v", workers, err)
		}
		out := renderRun(run)
		if base == "" {
			base = out
			continue
		}
		if out != base {
			t.Errorf("workers=%d output diverged from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, out)
		}
	}
}

// TestSuiteValidationCacheConsistent checks the suite-level validation
// cache: A02 repeats E09's exact protocol, so within one suite run the
// second request is answered from cache — and must carry the same
// accuracies E09 reported. The renderRun comparison against a
// cache-cold suite run of A02 alone pins that.
func TestSuiteValidationCacheConsistent(t *testing.T) {
	if raceEnabled {
		t.Skip("full E09 workloads are too slow under -race; internal/study covers the validator cache")
	}
	ctx := context.Background()
	warm := NewSuite(1)
	// E09 first primes the validator; A02 then hits its cache.
	warmRun, err := warm.Run(ctx, RunOptions{IDs: []string{"E09", "A02"}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold := NewSuite(1)
	coldRun, err := cold.Run(ctx, RunOptions{IDs: []string{"A02"}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	warmA02 := engine.Run[ExperimentResult]{Outcomes: warmRun.Outcomes[1:]}
	if got, want := renderRun(warmA02), renderRun(coldRun); got != want {
		t.Errorf("cached A02 differs from cold A02:\n--- cached ---\n%s\n--- cold ---\n%s", got, want)
	}
}

// TestSuiteParallelFasterThanSequential asserts the headline of the
// perf work: on a multi-core machine the parallel configuration beats
// the true-serial one on wall-clock for the NLP-heavy set. The margin
// is deliberately generous (0.9) — this guards against regressions
// that serialize the pipeline, not scheduler noise.
func TestSuiteParallelFasterThanSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("perf assertion skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock assertions are meaningless under -race instrumentation")
	}
	// NumCPU too: GOMAXPROCS can be set above the physical core count
	// (the bench target oversubscribes on purpose), and oversubscribing
	// one core cannot produce wall-clock speedup.
	if runtime.GOMAXPROCS(0) < 2 || runtime.NumCPU() < 2 {
		t.Skip("needs >= 2 CPUs to measure parallel speedup")
	}
	ctx := context.Background()

	serial := NewSuite(1)
	serial.Workers = 1
	serialRun, err := serial.Run(ctx, RunOptions{IDs: nlpIDs, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := serialRun.Err(); err != nil {
		t.Fatal(err)
	}

	par := NewSuite(1)
	parRun, err := par.Run(ctx, RunOptions{IDs: nlpIDs})
	if err != nil {
		t.Fatal(err)
	}
	if err := parRun.Err(); err != nil {
		t.Fatal(err)
	}

	if parRun.Wall >= serialRun.Wall*9/10 {
		t.Errorf("parallel run (%v) not meaningfully faster than serial (%v) on %d CPUs",
			parRun.Wall, serialRun.Wall, runtime.GOMAXPROCS(0))
	}
}
