// Package sdnbugs is a full reproduction of "A Comprehensive Study of
// Bugs in Software Defined Networks" (Bhardwaj, Zhou, Benson — DSN
// 2021) as a Go library.
//
// The paper mined ~800 critical bugs from the FAUCET, ONOS and CORD
// issue trackers, manually labeled 150 of them along a five-dimension
// taxonomy, scaled the labels with an NLP pipeline, and analyzed the
// result to answer five research questions about SDN controller bugs.
// This module rebuilds that study end to end on synthetic-but-
// calibrated substrates:
//
//   - internal/taxonomy        — Table I's dimensions and labels
//   - internal/corpus,textgen  — the calibrated synthetic bug corpus
//   - internal/jirasim,ghsim   — JIRA/GitHub-like tracker simulators
//   - internal/nlp/*, ml/*     — TF-IDF, NMF, Word2Vec, SVM, trees,
//     PCA, AdaBoost from scratch
//   - internal/study           — the RQ1–RQ5 analysis engine
//   - internal/openflow,sdn    — an OpenFlow-subset controller +
//     dataplane simulator
//   - internal/faultlab        — the taxonomy-driven fault injector
//   - internal/recovery        — Table VII's framework models and the
//     empirical coverage evaluator
//   - internal/codemodel,smell — the Designite-style analysis of §VI-A
//   - internal/vcs,burn        — the burn analysis of §VI-B
//   - internal/depscan         — the dependency-vulnerability scan
//   - internal/engine          — the registry-driven concurrent
//     experiment engine (worker pool, per-run timing, partial-failure
//     outcomes, per-experiment timeouts)
//   - internal/durable         — the crash-consistent corpus store
//     (checksummed WAL + snapshots, torn-tail recovery, atomic file
//     publication)
//   - internal/diskfault       — the fault-injecting filesystem
//     (short/torn writes, failed syncs, scheduled crash points)
//   - internal/mine            — the resumable miner checkpointing
//     both trackers' cursors into a durable store
//   - internal/perfuzz         — the feedback-guided stateful
//     performance fuzzer (schedule genomes, delta-debugged minimal
//     reproducers, failure-model learner)
//   - internal/repair          — the automatic repair loop (patch
//     grammar over flow-rule programs, learner-ranked candidates,
//     reproducer + campaign validation, shed lifting)
//
// The Suite type in this package registers every experiment (E01–E26,
// one per table/figure — see DESIGN.md) and ablation (A01–A07) with
// the engine and reports paper-vs-measured checks. Suite.Run selects
// experiments by ID and executes them on a configurable worker pool —
// a Suite is safe for concurrent use because its shared artifacts are
// built behind sync.Once accessors — while Suite.Experiments and
// Suite.Ablations remain thin sequential wrappers. bench_test.go
// regenerates each artifact as a benchmark and measures the
// sequential-vs-parallel suite speedup.
package sdnbugs
