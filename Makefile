# Development targets. `make verify` is the tier-1 recipe (build +
# test) extended with `go vet` and a race-detector pass so the
# concurrent experiment engine stays continuously checked.

GO ?= go

.PHONY: build vet test race bench fuzz verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race pass is what guards the engine's worker pool and the
# Suite's documented safe-for-concurrent-use contract.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

# Fuzz the OpenFlow codec briefly: malformed frames must produce typed
# errors, never panics or over-allocation.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeMessage -fuzztime=10s ./internal/openflow/

verify: build vet test race
