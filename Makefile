# Development targets. `make verify` is the tier-1 recipe (build +
# test) extended with `go vet` and a race-detector pass so the
# concurrent experiment engine stays continuously checked.

GO ?= go

.PHONY: build vet test race bench bench-smoke fuzz verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race pass is what guards the engine's worker pool and the
# Suite's documented safe-for-concurrent-use contract.
race:
	$(GO) test -race ./...

# The full bench slate also refreshes BENCH_suite.json, the
# machine-readable perf record (suite walls, speedup, per-experiment
# timings) written by the suite benchmarks.
bench:
	BENCH_JSON=$(CURDIR)/BENCH_suite.json $(GO) test -bench . -benchtime 1x .

# bench-smoke is the CI guard: the E09 hot path and the suite
# sequential/parallel pair, one iteration each, so perf-critical code
# keeps compiling and running without burning CI minutes.
bench-smoke:
	$(GO) test -run='^$$' -bench 'BenchmarkE09|BenchmarkSuite' -benchtime 1x .

# Fuzz the parsers that face untrusted bytes, briefly: malformed
# OpenFlow frames must produce typed errors, never panics or
# over-allocation, and the journal replayer must recover exactly the
# longest valid prefix of an arbitrarily mangled write-ahead log.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeMessage -fuzztime=10s ./internal/openflow/
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/durable/

verify: build vet test race
