# Development targets. `make verify` is the tier-1 recipe (build +
# test) extended with `go vet` and a race-detector pass so the
# concurrent experiment engine stays continuously checked.

GO ?= go

# GOMAXPROCS for the full bench slate. The default oversubscribes a
# single-core host on purpose so BENCH_suite.json records the
# scheduler-parallel configuration; on multi-core hardware the engine
# pool turns the same setting into real speedup.
BENCH_GOMAXPROCS ?= 4

.PHONY: build vet test race bench bench-smoke bench-dataplane-smoke bench-tracker-smoke fuzz fuzz-perf fuzz-perf-smoke repair-smoke cluster-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race pass is what guards the engine's worker pool and the
# Suite's documented safe-for-concurrent-use contract.
race:
	$(GO) test -race ./...

# The full bench slate also refreshes BENCH_suite.json, the
# machine-readable perf record (suite walls, speedup, per-experiment
# timings, dataplane matrix) written by the suite benchmarks.
bench:
	GOMAXPROCS=$(BENCH_GOMAXPROCS) BENCH_JSON=$(CURDIR)/BENCH_suite.json \
		$(GO) test -bench . -benchtime 1x .

# bench-smoke is the CI guard: the E09 hot path and the suite
# sequential/parallel pair, one iteration each, so perf-critical code
# keeps compiling and running without burning CI minutes.
bench-smoke:
	$(GO) test -run='^$$' -bench 'BenchmarkE09|BenchmarkSuite' -benchtime 1x .

# bench-dataplane-smoke is the zero-alloc dataplane gate: the OpenFlow
# codec benches fail on any steady-state allocation, and the batched
# controller pipeline must hold >= 2x packets/sec over the per-event
# baseline. Both the root matrix and the internal/openflow
# micro-benches run.
bench-dataplane-smoke:
	$(GO) test -run='^$$' -bench 'BenchmarkOpenFlow|BenchmarkControllerEvents' -benchtime 200x .
	$(GO) test -run='^$$' -bench 'BenchmarkOpenFlow' -benchtime 200x ./internal/openflow/

# bench-tracker-smoke drives the whole served-tracker stack at small
# scale — multi-tenant service, WAL group commit, kill-and-resume
# miners, TakeOver recovery, report generation — as the CI guard for
# `trackersim load`. The full run (BENCH_tracker.json) uses
# -tenants 4 -miners 100.
bench-tracker-smoke:
	$(GO) run ./cmd/trackersim load -tenants 2 -miners 8 -rate 500 -burst 50 \
		-max-inflight 64 -bench-appends 400 -out /tmp/BENCH_tracker_smoke.json

# Fuzz the parsers that face untrusted bytes, briefly: malformed
# OpenFlow frames must produce typed errors, never panics or
# over-allocation, the journal replayer must recover exactly the
# longest valid prefix of an arbitrarily mangled write-ahead log, and
# the canonical issue codec must stay a byte-stable fixed point.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeMessage -fuzztime=10s ./internal/openflow/
	$(GO) test -run='^$$' -fuzz=FuzzRoleCodec -fuzztime=10s ./internal/openflow/
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/durable/
	$(GO) test -run='^$$' -fuzz=FuzzIssueCodec -fuzztime=10s ./internal/tracker/
	$(GO) test -run='^$$' -fuzz=FuzzMutate -fuzztime=10s ./internal/perfuzz/
	$(GO) test -run='^$$' -fuzz=FuzzRepairPatch -fuzztime=10s ./internal/repair/

# fuzz-perf runs the feedback-guided performance fuzzer (the E24
# workload) at a real budget and writes the JSON report — worst
# genomes, shrunk minimal reproducers, learner scores.
fuzz-perf:
	$(GO) run ./cmd/perfuzz -seed 1 -generations 12 -population 12 -out FUZZ_perf.json

# fuzz-perf-smoke is the CI guard: a bounded budget that still
# exercises search, shrinking, and learning end to end.
fuzz-perf-smoke:
	$(GO) run ./cmd/perfuzz -seed 1 -out /tmp/FUZZ_perf_smoke.json

# repair-smoke is the CI guard for the automatic repair loop (the E25
# workload): a bounded-budget repair of one poison class — shed,
# synthesize, rank, validate against reproducer + campaign, lift.
repair-smoke:
	$(GO) run ./cmd/faultlab -repair -seed 1 -events 400 -max-candidates 4 \
		-repair-class configuration/multicast -json > /tmp/repair_smoke.json

# cluster-smoke is the CI guard for controller HA (the E26 workload):
# a 3-replica ensemble plays a bounded schedule under induced primary
# crashes, partitions, and asymmetric links; faultlab exits non-zero
# unless the converged ensemble state is byte-identical to the
# unfaulted run and prints the failover/fencing counters.
cluster-smoke:
	$(GO) run ./cmd/faultlab -cluster -seed 1 -events 400 -replicas 3 -json \
		> /tmp/cluster_smoke.json

verify: build vet test race bench-dataplane-smoke fuzz-perf-smoke repair-smoke cluster-smoke
