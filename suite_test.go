package sdnbugs

import (
	"strings"
	"testing"

	"sdnbugs/internal/report"
)

// sharedSuite is reused across tests in this package to avoid
// re-running the expensive NLP fits.
var sharedSuite = NewSuite(1)

func TestSuiteLazyInit(t *testing.T) {
	s := NewSuite(2)
	corp, err := s.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(corp.Issues) != 795 {
		t.Errorf("corpus size = %d", len(corp.Issues))
	}
	manual, err := s.Manual()
	if err != nil {
		t.Fatal(err)
	}
	if manual.Len() != 150 {
		t.Errorf("manual size = %d", manual.Len())
	}
	full, err := s.Full()
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 795 {
		t.Errorf("full size = %d", full.Len())
	}
	// Second call returns the same objects (cached).
	corp2, _ := s.Corpus()
	if corp != corp2 {
		t.Error("corpus should be cached")
	}
}

func TestFastExperimentsHold(t *testing.T) {
	// The non-NLP experiments run quickly; every check must hold.
	runs := []func() (ExperimentResult, error){
		sharedSuite.E01CorpusMining,
		sharedSuite.E02Determinism,
		sharedSuite.E03Symptoms,
		sharedSuite.E04RootCauseBySymptom,
		sharedSuite.E05Triggers,
		sharedSuite.E06ConfigSubcategories,
		sharedSuite.E07FixAnalysis,
		sharedSuite.E08ResolutionCDF,
		sharedSuite.E10CorrelationCDF,
		sharedSuite.E13SmellTrend,
		sharedSuite.E14CommitsPerRelease,
		sharedSuite.E15FaucetBurn,
		sharedSuite.E16DependencyBurn,
		sharedSuite.E17VulnerabilityScan,
		sharedSuite.E18ControllerSelection,
		sharedSuite.E20CrossDomainComparison,
		sharedSuite.E21ResilientMining,
		sharedSuite.E22SelfHealingCampaign,
		sharedSuite.E23KillAndResumeMining,
		sharedSuite.E24PerformanceFuzzing,
	}
	for _, run := range runs {
		res, err := run()
		if err != nil {
			t.Fatalf("%v", err)
		}
		t.Run(res.ID, func(t *testing.T) {
			if len(res.Checks) == 0 {
				t.Fatal("experiment produced no checks")
			}
			if len(res.Tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, c := range res.Checks {
				if !c.Holds {
					t.Errorf("check failed: %s — paper %q, measured %q", c.Metric, c.Paper, c.Measured)
				}
			}
			for _, tbl := range res.Tables {
				if out := tbl.RenderString(); !strings.Contains(out, "##") {
					t.Error("table should render with a title")
				}
			}
		})
	}
}

func TestSlowExperimentsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("NLP experiments are slow; skipped with -short")
	}
	runs := []func() (ExperimentResult, error){
		sharedSuite.E09NLPValidation,
		sharedSuite.E11TopicUniqueness,
		sharedSuite.E12FullDatasetPrediction,
		sharedSuite.E19RecoveryCoverage,
	}
	for _, run := range runs {
		res, err := run()
		if err != nil {
			t.Fatalf("%v", err)
		}
		t.Run(res.ID, func(t *testing.T) {
			for _, c := range res.Checks {
				if !c.Holds {
					t.Errorf("check failed: %s — paper %q, measured %q", c.Metric, c.Paper, c.Measured)
				}
			}
		})
	}
}

func TestExperimentResultHolds(t *testing.T) {
	r := ExperimentResult{}
	if !r.Holds() {
		t.Error("empty result should hold")
	}
	r.Checks = append(r.Checks, report.Check{Holds: true}, report.Check{Holds: false})
	if r.Holds() {
		t.Error("result with a failing check must not hold")
	}
}
