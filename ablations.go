package sdnbugs

import (
	"fmt"

	"sdnbugs/internal/engine"
	"sdnbugs/internal/recovery"
	"sdnbugs/internal/report"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/study"
	"sdnbugs/internal/taxonomy"
)

// registerAblations registers the design-choice studies (A01–A07)
// with the engine in order.
func (s *Suite) registerAblations(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "A01", "Ablation: feature blocks (TF-IDF vs Word2Vec vs both)", engine.KindAblation, s.AblationFeatures)
	registerSuite(r, "A02", "Ablation: feature normalization for the SVM", engine.KindAblation, s.AblationScaling)
	registerSuite(r, "A03", "Ablation: NMF rank sensitivity (Figure 14)", engine.KindAblation, s.AblationNMFRank)
	registerSuite(r, "A04", "Ablation: extending input-transform tools beyond network events", engine.KindAblation, s.AblationTransformScope)
	registerSuite(r, "A05", "Ablation: NMF vs LDA topic models (Figure 14)", engine.KindAblation, s.AblationTopicModel)
	registerSuite(r, "A06", "Ablation: predictive rejuvenation vs the memory/load gap", engine.KindAblation, s.AblationPrediction)
	registerSuite(r, "A07", "Ablation: naive tool composition (SPHINX ⊕ Bouncer, §VII-C)", engine.KindAblation, s.AblationLayering)
}

// AblationFeatures compares the classification feature blocks: TF-IDF
// only, Word2Vec only, and the paper's concatenation of both.
func (s *Suite) AblationFeatures() (ExperimentResult, error) {
	res := ExperimentResult{ID: "A01", Title: "Ablation: feature blocks (TF-IDF vs Word2Vec vs both)"}
	val, err := s.Validator()
	if err != nil {
		return res, err
	}
	variants := []struct {
		name string
		cfg  study.PipelineConfig
	}{
		{"tfidf+w2v", study.PipelineConfig{Seed: s.Seed, Workers: s.Workers}},
		{"tfidf-only", study.PipelineConfig{Seed: s.Seed, Workers: s.Workers, DisableW2V: true}},
		{"w2v-only", study.PipelineConfig{Seed: s.Seed, Workers: s.Workers, DisableTFIDF: true}},
	}
	tbl := &report.Table{Title: "SVM accuracy by feature block",
		Headers: []string{"features", "bug-type", "symptom", "trigger"}}
	acc := map[string]map[taxonomy.Dimension]float64{}
	for _, v := range variants {
		results, err := val.ValidateRepeated(v.cfg, 2)
		if err != nil {
			return res, fmt.Errorf("sdnbugs: ablation %s: %w", v.name, err)
		}
		acc[v.name] = map[taxonomy.Dimension]float64{}
		for _, r := range results {
			acc[v.name][r.Dimension] = r.Accuracies[study.ModelSVM]
		}
		_ = tbl.AddRow(v.name,
			report.Pct(acc[v.name][taxonomy.DimType]),
			report.Pct(acc[v.name][taxonomy.DimSymptom]),
			report.Pct(acc[v.name][taxonomy.DimTrigger]))
	}
	res.Tables = append(res.Tables, tbl)
	// The combined features must not lose badly to either block alone
	// on the paper's headline dimensions.
	both := acc["tfidf+w2v"]
	for _, d := range []taxonomy.Dimension{taxonomy.DimType, taxonomy.DimSymptom} {
		best := both[d]
		for _, v := range []string{"tfidf-only", "w2v-only"} {
			if acc[v][d] > best {
				best = acc[v][d]
			}
		}
		res.Checks = append(res.Checks, report.Check{
			Artifact: "A01", Metric: d.String() + ": combined features competitive",
			Paper:    "paper uses TF-IDF + Word2Vec",
			Measured: fmt.Sprintf("both %s vs best single %s", report.Pct(both[d]), report.Pct(best)),
			Holds:    both[d] >= best-0.08,
		})
	}
	return res, nil
}

// AblationScaling compares the SVM with and without feature
// normalization (the paper: "SVM with normalization provided the best
// accuracy").
func (s *Suite) AblationScaling() (ExperimentResult, error) {
	res := ExperimentResult{ID: "A02", Title: "Ablation: feature normalization for the SVM"}
	val, err := s.Validator()
	if err != nil {
		return res, err
	}
	// This is byte-for-byte the protocol E09 runs; the shared validator
	// answers the duplicate from cache.
	results, err := val.ValidateRepeated(study.PipelineConfig{Seed: s.Seed, Workers: s.Workers}, 3)
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Normalized vs raw features (SVM)",
		Headers: []string{"dimension", "normalized", "raw"}}
	var normWins int
	var dims int
	for _, r := range results {
		norm := r.Accuracies[study.ModelSVM]
		raw := r.Accuracies[study.ModelSVMNoNorm]
		_ = tbl.AddRow(r.Dimension.String(), report.Pct(norm), report.Pct(raw))
		dims++
		if norm >= raw {
			normWins++
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks, report.Check{
		Artifact: "A02", Metric: "normalization wins on most dimensions",
		Paper:    "SVM with normalization best",
		Measured: fmt.Sprintf("%d/%d dimensions", normWins, dims),
		Holds:    normWins*2 >= dims,
	})
	return res, nil
}

// AblationNMFRank studies topic-count sensitivity of the Figure 14
// analysis.
func (s *Suite) AblationNMFRank() (ExperimentResult, error) {
	res := ExperimentResult{ID: "A03", Title: "Ablation: NMF rank sensitivity (Figure 14)"}
	manual, err := s.Manual()
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Deterministic-tag uniqueness by NMF rank",
		Headers: []string{"rank", "deterministic", "byzantine", "scored tags"}}
	stable := true
	for _, rank := range []int{6, 10, 14, 18} {
		scores, err := manual.TopicUniquenessAnalysis(study.TopicConfig{Rank: rank, Seed: s.Seed})
		if err != nil {
			return res, err
		}
		var det, byz float64
		for _, sc := range scores {
			switch sc.Tag {
			case "deterministic":
				det = sc.Score
			case "byzantine":
				byz = sc.Score
			}
		}
		if det <= 0 || byz <= 0 {
			stable = false
		}
		_ = tbl.AddRow(fmt.Sprintf("%d", rank), report.F2(det), report.F2(byz),
			fmt.Sprintf("%d", len(scores)))
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks, report.Check{
		Artifact: "A03", Metric: "headline categories scored at every rank",
		Paper:    "topic structure robust",
		Measured: fmt.Sprintf("stable: %v", stable),
		Holds:    stable,
	})
	return res, nil
}

// AblationTransformScope contrasts the network-event-scoped transform
// tool with an extended variant covering all event sources — the
// paper's recommendation for closing Table VII's gaps.
func (s *Suite) AblationTransformScope() (ExperimentResult, error) {
	res := ExperimentResult{ID: "A04", Title: "Ablation: extending input-transform tools beyond network events"}
	stock := &recovery.EventTransform{}
	extended := &recovery.EventTransform{Scope: []sdn.EventKind{
		sdn.EventNetwork, sdn.EventConfig, sdn.EventExternalCall, sdn.EventHardwareReboot,
	}}
	m, err := recovery.Evaluate([]recovery.Strategy{stock, extended},
		recovery.EvalConfig{Trials: 4, Seed: s.Seed})
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Coverage: stock vs extended event transform",
		Headers: []string{"fault", stock.Name(), extended.Name()}}
	gained := 0
	for _, f := range m.Faults() {
		cs, _ := m.Cell(f, stock.Name())
		ce, _ := m.Cell(f, extended.Name())
		mark := func(c recovery.CellResult) string {
			if c.Recovers() {
				return fmt.Sprintf("✓ %.2f", c.Rate())
			}
			return fmt.Sprintf("  %.2f", c.Rate())
		}
		if ce.Recovers() && !cs.Recovers() {
			gained++
		}
		_ = tbl.AddRow(f, mark(cs), mark(ce))
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks, report.Check{
		Artifact: "A04", Metric: "extended scope covers additional fault classes",
		Paper:    "extend tools beyond network events (§VII-C)",
		Measured: fmt.Sprintf("%d extra classes covered", gained),
		Holds:    gained >= 2,
	})
	return res, nil
}

// AblationTopicModel compares NMF (the paper's choice) with LDA (the
// alternative it weighed, §II-C) on the Figure 14 topic-uniqueness
// analysis.
func (s *Suite) AblationTopicModel() (ExperimentResult, error) {
	res := ExperimentResult{ID: "A05", Title: "Ablation: NMF vs LDA topic models (Figure 14)"}
	manual, err := s.Manual()
	if err != nil {
		return res, err
	}
	cfg := study.TopicConfig{Rank: 12, Seed: s.Seed}
	nmfScores, err := manual.TopicUniquenessAnalysis(cfg)
	if err != nil {
		return res, err
	}
	ldaScores, err := manual.TopicUniquenessAnalysisLDA(cfg)
	if err != nil {
		return res, err
	}
	nmfByTag := map[string]float64{}
	for _, sc := range nmfScores {
		nmfByTag[sc.Tag] = sc.Score
	}
	ldaByTag := map[string]float64{}
	for _, sc := range ldaScores {
		ldaByTag[sc.Tag] = sc.Score
	}
	tbl := &report.Table{Title: "Topic uniqueness: NMF vs LDA",
		Headers: []string{"category", "nmf", "lda"}}
	headline := []string{"deterministic", "byzantine", "add-synchronization", "third-party-call", "configuration"}
	for _, tag := range headline {
		nv, nok := nmfByTag[tag]
		lv, lok := ldaByTag[tag]
		if !nok && !lok {
			continue
		}
		_ = tbl.AddRow(tag, report.F2(nv), report.F2(lv))
	}
	res.Tables = append(res.Tables, tbl)

	// The two models must broadly agree on which categories are unique
	// — the analysis is not an artifact of the factorization choice.
	agree := 0
	compared := 0
	for _, tag := range headline {
		nv, nok := nmfByTag[tag]
		lv, lok := ldaByTag[tag]
		if !nok || !lok {
			continue
		}
		compared++
		if (nv > 0.3) == (lv > 0.3) {
			agree++
		}
	}
	res.Checks = append(res.Checks, report.Check{
		Artifact: "A05", Metric: "NMF and LDA agree on headline categories",
		Paper:    "topic choice robust (paper picked NMF over LDA/HDP)",
		Measured: fmt.Sprintf("%d/%d categories agree", agree, compared),
		Holds:    compared > 0 && agree*3 >= compared*2,
	})
	return res, nil
}

// AblationPrediction evaluates the paper's proposed research direction
// (§IV): metrics-based failure prediction with proactive rejuvenation
// closing the memory/load gap that Table VII's surveyed tools leave.
func (s *Suite) AblationPrediction() (ExperimentResult, error) {
	res := ExperimentResult{ID: "A06", Title: "Ablation: predictive rejuvenation vs the memory/load gap"}
	m, err := recovery.Evaluate([]recovery.Strategy{
		recovery.CrashRestart{},
		&recovery.PredictiveRejuvenation{},
	}, recovery.EvalConfig{Trials: 4, Seed: s.Seed})
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Reactive restart vs predictive rejuvenation",
		Headers: []string{"fault", "crash-restart", "predictive-rejuvenation"}}
	for _, f := range m.Faults() {
		cr, _ := m.Cell(f, "crash-restart")
		pr, _ := m.Cell(f, "predictive-rejuvenation")
		_ = tbl.AddRow(f, report.F2(cr.Rate()), report.F2(pr.Rate()))
	}
	res.Tables = append(res.Tables, tbl)
	for _, f := range []string{"ONOS-4859-memory-leak", "ONOS-5992-load-collapse"} {
		cr, _ := m.Cell(f, "crash-restart")
		pr, _ := m.Cell(f, "predictive-rejuvenation")
		res.Checks = append(res.Checks, report.Check{
			Artifact: "A06", Metric: f + ": prediction beats reactive restart",
			Paper:    "predict crashes by analyzing metrics (§IV)",
			Measured: fmt.Sprintf("%.2f vs %.2f", pr.Rate(), cr.Rate()),
			Holds:    pr.Recovers() && !cr.Recovers(),
		})
	}
	return res, nil
}

// AblationLayering reproduces §VII-C's composition caveat empirically:
// SPHINX-style flow-graph monitoring needs every input message, so a
// Bouncer-style proactive filter layered outside it leaves the model
// incomplete — naive composition "impacts accuracy".
func (s *Suite) AblationLayering() (ExperimentResult, error) {
	res := ExperimentResult{ID: "A07", Title: "Ablation: naive tool composition (SPHINX ⊕ Bouncer, §VII-C)"}
	comp, err := recovery.RunCompositionExperiment()
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Flow-graph model completeness under composition",
		Headers: []string{"configuration", "model completeness"}}
	_ = tbl.AddRow("monitor alone (sees all packet-ins)", report.Pct(comp.UnfilteredCompleteness))
	_ = tbl.AddRow("input filter layered outside monitor", report.Pct(comp.FilteredCompleteness))
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		report.Check{Artifact: "A07", Metric: "monitor alone builds a complete model",
			Paper:    "SPHINX requires all input OpenFlow messages",
			Measured: report.Pct(comp.UnfilteredCompleteness),
			Holds:    comp.UnfilteredCompleteness == 1},
		report.Check{Artifact: "A07", Metric: "filtering degrades the layered model",
			Paper: "filters may lead to an inconsistent flow graph (§VII-C)",
			Measured: fmt.Sprintf("%s → %s", report.Pct(comp.UnfilteredCompleteness),
				report.Pct(comp.FilteredCompleteness)),
			Holds: comp.FilteredCompleteness < comp.UnfilteredCompleteness},
	)
	return res, nil
}
