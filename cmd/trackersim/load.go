package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdnbugs/internal/diskfault"
	"sdnbugs/internal/durable"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/metrics"
	"sdnbugs/internal/mine"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/tracker"
	"sdnbugs/internal/trackerd"
)

// benchReport is the BENCH_tracker.json document.
type benchReport struct {
	GeneratedAt     string                    `json:"generated_at"`
	GOMAXPROCS      int                       `json:"gomaxprocs"`
	Tenants         int                       `json:"tenants"`
	Shards          int                       `json:"shards"`
	Miners          int                       `json:"miners"`
	CorpusPerTenant []int                     `json:"corpus_per_tenant"`
	IssuesMined     int                       `json:"issues_mined"`
	WallSeconds     float64                   `json:"wall_seconds"`
	IssuesPerSec    float64                   `json:"issues_per_sec"`
	HTTPRequests    uint64                    `json:"http_requests"`
	Latency         metrics.HistogramSnapshot `json:"request_latency_ms"`
	Throttled429    uint64                    `json:"throttled_429"`
	Shed429         uint64                    `json:"shed_429"`
	ClientRetries   uint64                    `json:"client_retries"`
	MinerRecover    struct {
		Count  int     `json:"count"`
		MeanMS float64 `json:"mean_ms"`
		MaxMS  float64 `json:"max_ms"`
	} `json:"miner_takeover_recover"`
	ServerRecover struct {
		ReopenMS         float64 `json:"reopen_ms"`
		Shards           int     `json:"shards"`
		RecordsRecovered int     `json:"records_recovered"`
	} `json:"server_kill_recover"`
	GroupCommit struct {
		PerAppendFsyncPerSec float64 `json:"per_append_fsync_appends_per_sec"`
		GroupCommitPerSec    float64 `json:"group_commit_appends_per_sec"`
		Speedup              float64 `json:"speedup"`
		Records              uint64  `json:"records"`
		Syncs                uint64  `json:"syncs"`
		LargestBatch         uint64  `json:"largest_batch"`
	} `json:"group_commit"`
}

func runLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trackersim load", flag.ExitOnError)
	tenants := fs.Int("tenants", 4, "tenant shard pairs to host (>= 1)")
	miners := fs.Int("miners", 100, "concurrent checkpoint/resume miners")
	seed := fs.Int64("seed", 1, "corpus seed (tenant i is seeded with seed+i)")
	rate := fs.Float64("rate", 0, "per-tenant sustained requests/sec; 0 = unlimited")
	burst := fs.Int("burst", 100, "per-tenant burst when -rate is set")
	maxInflight := fs.Int("max-inflight", 0, "per-tenant concurrent request cap; 0 = unlimited")
	groupWindow := fs.Duration("group-window", 0, "WAL flush linger window for the server shards")
	pageSize := fs.Int("page-size", 25, "miner page size")
	outPath := fs.String("out", "BENCH_tracker.json", "benchmark report path")
	benchAppends := fs.Int("bench-appends", 6000, "appends per mode for the group-commit throughput comparison")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants < 1 || *miners < 1 {
		return fmt.Errorf("load: need at least one tenant and one miner")
	}

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Tenants:     *tenants,
		Shards:      2 * *tenants,
		Miners:      *miners,
	}

	// Boot the served tracker on a loopback listener, shards on a
	// process-lifetime MemFS (so the server "kill" below can abandon
	// them, locks held, and a TakeOver reopen can recover them).
	shardFS := diskfault.NewMemFS()
	reg := metrics.NewRegistry()
	svc, err := trackerd.New(trackerd.Config{
		Root:    "load",
		Durable: durable.Options{FS: shardFS, GroupCommit: true, GroupWindow: *groupWindow},
		Metrics: reg,
		Tenants: tenantLayout(*tenants, *rate, *burst, *maxInflight),
	})
	if err != nil {
		return err
	}
	perTenant, err := seedService(svc, *tenants, *seed)
	if err != nil {
		return err
	}
	report.CorpusPerTenant = perTenant

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// One connection pool for the whole fleet so 100+ miners do not
	// churn ephemeral ports.
	inner := &http.Transport{MaxIdleConns: 1024, MaxIdleConnsPerHost: 512}
	defer inner.CloseIdleConnections()

	results := make([]minerResult, *miners)
	start := time.Now()
	var wg sync.WaitGroup
	for m := 0; m < *miners; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			results[m] = runMiner(base, m%*tenants, *pageSize, inner)
		}(m)
	}
	wg.Wait()
	wall := time.Since(start)

	var mined int
	var retries uint64
	var recoverSum, recoverMax float64
	tenantSums := make(map[int][sha256.Size]byte)
	for m, r := range results {
		if r.err != nil {
			return fmt.Errorf("miner %d (tenant t%d): %w", m, r.tenant, r.err)
		}
		if r.mined != perTenant[r.tenant] {
			return fmt.Errorf("miner %d mined %d issues, tenant t%d serves %d", m, r.mined, r.tenant, perTenant[r.tenant])
		}
		if want, seen := tenantSums[r.tenant]; seen && want != r.sum {
			return fmt.Errorf("miner %d: corpus fingerprint diverged from tenant t%d's other miners", m, r.tenant)
		}
		tenantSums[r.tenant] = r.sum
		mined += r.mined
		retries += r.retries
		recoverSum += r.recoverMS
		if r.recoverMS > recoverMax {
			recoverMax = r.recoverMS
		}
	}
	report.IssuesMined = mined
	report.WallSeconds = wall.Seconds()
	report.IssuesPerSec = float64(mined) / wall.Seconds()
	report.ClientRetries = retries
	report.MinerRecover.Count = *miners
	report.MinerRecover.MeanMS = recoverSum / float64(*miners)
	report.MinerRecover.MaxMS = recoverMax

	snap := reg.Snapshot()
	report.HTTPRequests = snap.Counters["http.requests"]
	report.Latency = snap.Histograms["http.request_ms"]
	for i := 0; i < *tenants; i++ {
		report.Throttled429 += snap.Counters[fmt.Sprintf("tenant.t%d.throttled_429", i)]
		report.Shed429 += snap.Counters[fmt.Sprintf("tenant.t%d.shed_429", i)]
	}

	// Kill the server without closing its shards (locks stay held, the
	// journals keep whatever the group committer last fsynced) and
	// measure a cold TakeOver reopen of every shard.
	_ = srv.Close()
	wantRecords := 0
	for _, shard := range svc.Shards() {
		wantRecords += shard.DS.Len()
	}
	reopenStart := time.Now()
	svc2, err := trackerd.New(trackerd.Config{
		Root:    "load",
		Durable: durable.Options{FS: shardFS, GroupCommit: true, TakeOver: true},
		Tenants: tenantLayout(*tenants, 0, 0, 0),
	})
	if err != nil {
		return fmt.Errorf("server take-over reopen: %w", err)
	}
	report.ServerRecover.ReopenMS = float64(time.Since(reopenStart)) / float64(time.Millisecond)
	report.ServerRecover.Shards = len(svc2.Shards())
	for _, shard := range svc2.Shards() {
		report.ServerRecover.RecordsRecovered += shard.DS.Len()
	}
	if report.ServerRecover.RecordsRecovered != wantRecords {
		return fmt.Errorf("server recovery lost records: %d recovered, %d before the kill",
			report.ServerRecover.RecordsRecovered, wantRecords)
	}
	var serverStats durable.CommitStats
	for _, shard := range svc.Shards() {
		cs := shard.DS.Durable().CommitStats()
		serverStats.Records += cs.Records
		serverStats.Syncs += cs.Syncs
		if cs.LargestBatch > serverStats.LargestBatch {
			serverStats.LargestBatch = cs.LargestBatch
		}
	}
	if err := svc2.Close(); err != nil {
		return err
	}

	// Group commit vs per-append fsync, measured on the real disk where
	// fsync costs what it costs.
	single, err := measureAppendRate(false, 0, *benchAppends)
	if err != nil {
		return err
	}
	grouped, err := measureAppendRate(true, *groupWindow, *benchAppends)
	if err != nil {
		return err
	}
	report.GroupCommit.PerAppendFsyncPerSec = single
	report.GroupCommit.GroupCommitPerSec = grouped
	report.GroupCommit.Speedup = grouped / single
	report.GroupCommit.Records = serverStats.Records
	report.GroupCommit.Syncs = serverStats.Syncs
	report.GroupCommit.LargestBatch = serverStats.LargestBatch

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "trackersim load: %d miners x %d tenants mined %d issues in %.1fs (%.0f issues/s, p99 %.2fms); "+
		"miner takeover mean %.2fms; server reopen %.1fms; group commit %.1fx\n",
		*miners, *tenants, mined, wall.Seconds(), report.IssuesPerSec, report.Latency.P99MS,
		report.MinerRecover.MeanMS, report.ServerRecover.ReopenMS, report.GroupCommit.Speedup)
	fmt.Fprintf(out, "trackersim load: report written to %s\n", *outPath)
	return nil
}

// minerResult is one miner's outcome.
type minerResult struct {
	tenant    int
	mined     int
	retries   uint64
	recoverMS float64
	sum       [sha256.Size]byte
	err       error
}

// runMiner is one checkpoint/resume miner: mine a couple of pages,
// crash (the store is abandoned with its lock held), take the state
// over like a restarted process would, and resume to completion. The
// miner's durable state lives on its own MemFS so the crash leaves the
// LOCK file in place.
func runMiner(base string, tenant, pageSize int, inner http.RoundTripper) (res minerResult) {
	res.tenant = tenant
	ctx := context.Background()
	stateFS := diskfault.NewMemFS()
	rt := resilience.NewTransport(inner, resilience.Policy{
		MaxAttempts:       10,
		BaseDelay:         2 * time.Millisecond,
		MaxDelay:          100 * time.Millisecond,
		MaxRetryAfter:     100 * time.Millisecond,
		PerAttemptTimeout: 30 * time.Second,
	}, nil)
	hc := &http.Client{Transport: rt}
	prefix := fmt.Sprintf("%s/t/t%d", base, tenant)
	cfg := mine.Config{
		JIRA:   &jirasim.Client{BaseURL: prefix + "/bugs", HTTPClient: hc, PageSize: pageSize},
		GitHub: &ghsim.Client{BaseURL: prefix + "/faucet", Repo: "faucetsdn/faucet", HTTPClient: hc, PerPage: pageSize},
	}

	// Leg 1: a page-capped run that checkpoints a couple of pages and
	// then dies mid-mine, holding the state lock.
	d, err := durable.Open("miner", durable.Options{FS: stateFS})
	if err != nil {
		res.err = err
		return res
	}
	ds, err := tracker.NewDurableStore(d)
	if err != nil {
		res.err = err
		return res
	}
	leg1 := cfg
	capped := *cfg.JIRA
	capped.MaxPages = 2
	leg1.JIRA = &capped
	leg1.Store = ds
	for attempt := 0; ; attempt++ {
		if _, err := mine.Run(ctx, leg1); err == nil {
			res.err = fmt.Errorf("page-capped first leg finished the whole corpus; cannot exercise resume")
			return res
		}
		// Under aggressive throttling even the capped leg can fail before
		// checkpointing a page; keep going until the crash has real state
		// to lose.
		if ds.Len() > 0 {
			break
		}
		if attempt >= 50 {
			res.err = fmt.Errorf("first leg never checkpointed a page")
			return res
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The crash: never Close. Take the state over and resume.
	recoverStart := time.Now()
	d2, err := durable.Open("miner", durable.Options{FS: stateFS, TakeOver: true})
	if err != nil {
		res.err = fmt.Errorf("take over miner state: %w", err)
		return res
	}
	ds2, err := tracker.NewDurableStore(d2)
	if err != nil {
		res.err = err
		return res
	}
	res.recoverMS = float64(time.Since(recoverStart)) / float64(time.Millisecond)
	if ds2.Len() == 0 {
		res.err = fmt.Errorf("no checkpointed issues survived the crash")
		return res
	}
	defer func() { _ = ds2.Close() }()

	cfg.Store = ds2
	for attempt := 0; ; attempt++ {
		if _, err := mine.Run(ctx, cfg); err == nil {
			break
		} else if attempt >= 50 {
			res.err = fmt.Errorf("mining never converged: %w", err)
			return res
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.mined = ds2.Len()
	res.sum = sha256.Sum256(ds2.CorpusBytes())
	m := rt.Metrics()
	res.retries = m.Retries + m.BodyRetries
	return res
}

// measureAppendRate times concurrent durable appends on the real
// filesystem in the given commit mode and reports appends/second.
func measureAppendRate(group bool, window time.Duration, total int) (float64, error) {
	dir, err := os.MkdirTemp("", "trackersim-bench-")
	if err != nil {
		return 0, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	s, err := durable.Open(dir+"/state", durable.Options{GroupCommit: group, GroupWindow: window})
	if err != nil {
		return 0, err
	}
	defer func() { _ = s.Close() }()
	const writers = 16
	val := []byte(`{"id":"BENCH","severity":"major","status":"closed"}`)
	var seq atomic.Uint64
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := seq.Add(1)
				if n > uint64(total) {
					return
				}
				if err := s.Put(fmt.Sprintf("k/%016d", n), val); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(total) / time.Since(start).Seconds(), nil
}
