package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"sdnbugs/internal/chaos"
	"sdnbugs/internal/corpus"
	"sdnbugs/internal/diskfault"
	"sdnbugs/internal/durable"
	"sdnbugs/internal/tracker"
	"sdnbugs/internal/trackerd"
)

// tenantLayout builds the standard tenant fleet: t0..t{n-1}, each
// hosting a JIRA-dialect "bugs" project and a GitHub-dialect "faucet"
// project on separate durable shards.
func tenantLayout(n int, rate float64, burst, maxInflight int) []trackerd.TenantConfig {
	tenants := make([]trackerd.TenantConfig, 0, n)
	for i := 0; i < n; i++ {
		tenants = append(tenants, trackerd.TenantConfig{
			Name:        fmt.Sprintf("t%d", i),
			RatePerSec:  rate,
			Burst:       burst,
			MaxInflight: maxInflight,
			Projects: []trackerd.ProjectConfig{
				{Name: "bugs", Dialect: trackerd.DialectJIRA},
				{Name: "faucet", Dialect: trackerd.DialectGitHub, Repo: "faucetsdn/faucet", Controller: "FAUCET"},
			},
		})
	}
	return tenants
}

// seedService generates a deterministic per-tenant corpus (seed+index)
// and writes it into each tenant's shards through a pool of concurrent
// writers, so the WAL group committer gets real batching to do. It
// returns per-tenant corpus sizes.
func seedService(svc *trackerd.Service, tenants int, seed int64) (perTenant []int, err error) {
	perTenant = make([]int, tenants)
	for i := 0; i < tenants; i++ {
		corp, err := corpus.Generate(seed + int64(i))
		if err != nil {
			return nil, err
		}
		perTenant[i] = len(corp.Issues)
		name := fmt.Sprintf("t%d", i)
		jira := svc.Shard(name, "bugs")
		faucet := svc.Shard(name, "faucet")
		const writers = 8
		work := make(chan tracker.Issue, writers)
		errc := make(chan error, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for iss := range work {
					shard := faucet
					if tracker.TrackerFor(iss.Controller) == tracker.KindJIRA {
						shard = jira
					}
					if err := shard.DS.Put(iss); err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
				}
			}()
		}
		for _, iss := range corp.Issues {
			work <- iss
		}
		close(work)
		wg.Wait()
		select {
		case err := <-errc:
			return nil, fmt.Errorf("seed tenant %s: %w", name, err)
		default:
		}
	}
	return perTenant, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("trackersim serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	state := fs.String("state", "", "state directory for the durable shards; empty serves from a process-lifetime in-memory filesystem")
	tenants := fs.Int("tenants", 2, "number of tenants (t0..tN-1), each with a JIRA and a GitHub project shard")
	seed := fs.Int64("seed", 1, "corpus seed (tenant i is seeded with seed+i)")
	noSeed := fs.Bool("no-seed", false, "skip corpus seeding (serve whatever the state directory already holds)")
	rate := fs.Float64("rate", 0, "per-tenant sustained requests/sec (token bucket); 0 = unlimited")
	burst := fs.Int("burst", 50, "per-tenant burst size when -rate is set")
	maxInflight := fs.Int("max-inflight", 0, "per-tenant concurrent request cap (backpressure); 0 = unlimited")
	groupCommit := fs.Bool("group-commit", true, "batch concurrent shard writes into one fsync")
	groupWindow := fs.Duration("group-window", 0, "how long a WAL flush lingers for stragglers (0 = batch from natural concurrency only)")
	takeOver := fs.Bool("take-over", false, "break a stale shard lock left by a crashed process")
	chaosRate := fs.Float64("chaos-rate", 0, "per-request fault injection probability in [0,1]; 0 disables chaos")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault injection schedule seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var shardFS diskfault.FS
	root := *state
	if root == "" {
		shardFS = diskfault.NewMemFS()
		root = "trackersim"
	}
	svc, err := trackerd.New(trackerd.Config{
		Root: root,
		Durable: durable.Options{
			FS:          shardFS,
			GroupCommit: *groupCommit,
			GroupWindow: *groupWindow,
			TakeOver:    *takeOver,
		},
		Tenants: tenantLayout(*tenants, *rate, *burst, *maxInflight),
	})
	if err != nil {
		return err
	}
	defer func() { _ = svc.Close() }()

	seeded := 0
	if !*noSeed {
		perTenant, err := seedService(svc, *tenants, *seed)
		if err != nil {
			return err
		}
		for _, n := range perTenant {
			seeded += n
		}
	}

	var handler http.Handler = svc
	if *chaosRate > 0 {
		handler = chaos.Wrap(handler, chaos.Config{Seed: *chaosSeed, Rate: *chaosRate})
	}
	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("trackersim: serving %d tenants (%d issues seeded) on %s; /metricz and /healthz are live\n",
		*tenants, seeded, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	return nil
}
