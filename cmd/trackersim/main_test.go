package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadSmoke drives the whole served-tracker load path end to end
// at a small scale: boot the multi-tenant service, seed it, run
// kill-and-resume miners against every tenant shard, recover the
// server with TakeOver, compare group-commit throughput, and write the
// report.
func TestLoadSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_tracker.json")
	var buf bytes.Buffer
	err := runLoad([]string{
		"-tenants", "2",
		"-miners", "6",
		"-rate", "500",
		"-burst", "50",
		"-max-inflight", "64",
		"-bench-appends", "200",
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("load run failed: %v\n%s", err, buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Miners != 6 || report.Tenants != 2 || report.Shards != 4 {
		t.Errorf("report shape: %+v", report)
	}
	if report.IssuesMined == 0 || report.IssuesPerSec <= 0 {
		t.Errorf("no mining throughput recorded: %+v", report)
	}
	if report.Latency.Count == 0 {
		t.Error("no request latency observed")
	}
	if report.MinerRecover.Count != 6 || report.MinerRecover.MaxMS <= 0 {
		t.Errorf("miner recovery not measured: %+v", report.MinerRecover)
	}
	if report.ServerRecover.RecordsRecovered == 0 {
		t.Errorf("server recovery recovered nothing: %+v", report.ServerRecover)
	}
	if report.GroupCommit.GroupCommitPerSec <= 0 || report.GroupCommit.PerAppendFsyncPerSec <= 0 {
		t.Errorf("group-commit comparison missing: %+v", report.GroupCommit)
	}
	if !strings.Contains(buf.String(), "report written") {
		t.Errorf("summary output missing: %q", buf.String())
	}
}
