// Command trackersim serves the study's bug corpus behind the JIRA-like
// and GitHub-like REST APIs, so the mining pipeline (or curl) can be
// exercised against live endpoints:
//
//	trackersim -seed 1 -jira :8081 -github :8082
//
// With -chaos-rate > 0 both endpoints are wrapped in the deterministic
// fault injector (rate limits, 5xx bursts, latency spikes, truncated
// bodies, dropped connections), seeded by -chaos-seed — a live target
// for exercising retrying clients:
//
//	trackersim -seed 1 -chaos-rate 0.3 -chaos-seed 7
//
// Try:
//
//	curl 'http://localhost:8081/rest/api/2/search?project=ONOS&maxResults=2'
//	curl 'http://localhost:8082/repos/faucetsdn/faucet/issues?per_page=2'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sdnbugs/internal/chaos"
	"sdnbugs/internal/corpus"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trackersim:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "corpus seed")
	jiraAddr := flag.String("jira", ":8081", "JIRA simulator listen address")
	ghAddr := flag.String("github", ":8082", "GitHub simulator listen address")
	chaosRate := flag.Float64("chaos-rate", 0, "per-request fault injection probability in [0,1]; 0 disables chaos")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault injection schedule seed")
	flag.Parse()

	corp, err := corpus.Generate(*seed)
	if err != nil {
		return err
	}
	jiraStore := tracker.NewStore()
	ghStore := tracker.NewStore()
	for _, iss := range corp.Issues {
		store := ghStore
		if tracker.TrackerFor(iss.Controller) == tracker.KindJIRA {
			store = jiraStore
		}
		if err := store.Put(iss); err != nil {
			return err
		}
	}

	var jiraHandler http.Handler = jirasim.NewHandler(jiraStore)
	var ghHandler http.Handler = ghsim.NewHandler(ghStore, "faucetsdn", "faucet")
	if *chaosRate > 0 {
		ccfg := chaos.Config{Seed: *chaosSeed, Rate: *chaosRate}
		jiraHandler = chaos.Wrap(jiraHandler, ccfg)
		ghHandler = chaos.Wrap(ghHandler, ccfg)
	}
	jiraSrv := &http.Server{Addr: *jiraAddr, Handler: jiraHandler, ReadHeaderTimeout: 5 * time.Second}
	ghSrv := &http.Server{Addr: *ghAddr, Handler: ghHandler, ReadHeaderTimeout: 5 * time.Second}

	errc := make(chan error, 2)
	go func() { errc <- jiraSrv.ListenAndServe() }()
	go func() { errc <- ghSrv.ListenAndServe() }()
	mode := "no fault injection"
	if *chaosRate > 0 {
		mode = fmt.Sprintf("chaos rate %.2f seed %d", *chaosRate, *chaosSeed)
	}
	fmt.Printf("trackersim: JIRA (%d issues) on %s, GitHub (%d issues) on %s, %s\n",
		jiraStore.Len(), *jiraAddr, ghStore.Len(), *ghAddr, mode)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = jiraSrv.Shutdown(shutdownCtx)
	_ = ghSrv.Shutdown(shutdownCtx)
	return nil
}
