// Command trackersim serves the study's bug corpus behind the JIRA-like
// and GitHub-like REST APIs, so the mining pipeline (or curl) can be
// exercised against live endpoints:
//
//	trackersim -seed 1 -jira :8081 -github :8082
//
// Try:
//
//	curl 'http://localhost:8081/rest/api/2/search?project=ONOS&maxResults=2'
//	curl 'http://localhost:8082/repos/faucetsdn/faucet/issues?per_page=2'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trackersim:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "corpus seed")
	jiraAddr := flag.String("jira", ":8081", "JIRA simulator listen address")
	ghAddr := flag.String("github", ":8082", "GitHub simulator listen address")
	flag.Parse()

	corp, err := corpus.Generate(*seed)
	if err != nil {
		return err
	}
	jiraStore := tracker.NewStore()
	ghStore := tracker.NewStore()
	for _, iss := range corp.Issues {
		store := ghStore
		if tracker.TrackerFor(iss.Controller) == tracker.KindJIRA {
			store = jiraStore
		}
		if err := store.Put(iss); err != nil {
			return err
		}
	}

	jiraSrv := &http.Server{Addr: *jiraAddr, Handler: jirasim.NewHandler(jiraStore), ReadHeaderTimeout: 5 * time.Second}
	ghSrv := &http.Server{Addr: *ghAddr, Handler: ghsim.NewHandler(ghStore, "faucetsdn", "faucet"), ReadHeaderTimeout: 5 * time.Second}

	errc := make(chan error, 2)
	go func() { errc <- jiraSrv.ListenAndServe() }()
	go func() { errc <- ghSrv.ListenAndServe() }()
	fmt.Printf("trackersim: JIRA (%d issues) on %s, GitHub (%d issues) on %s\n",
		jiraStore.Len(), *jiraAddr, ghStore.Len(), *ghAddr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = jiraSrv.Shutdown(shutdownCtx)
	_ = ghSrv.Shutdown(shutdownCtx)
	return nil
}
