// Command trackersim serves the study's bug corpus behind the JIRA-like
// and GitHub-like REST APIs, so the mining pipeline (or curl) can be
// exercised against live endpoints. It has three modes:
//
// Legacy dual-port mode (no subcommand) — one in-memory JIRA simulator
// and one GitHub simulator:
//
//	trackersim -seed 1 -jira :8081 -github :8082
//	trackersim -seed 1 -chaos-rate 0.3 -chaos-seed 7
//
// Served-tracker mode — one multi-tenant trackerd service hosting
// N tenants × {JIRA, GitHub} projects, each on its own crash-consistent
// durable shard with WAL group commit, per-tenant rate limits, and a
// /metricz scrape endpoint:
//
//	trackersim serve -addr :8080 -tenants 2 -state ./tracker-state
//	curl 'http://localhost:8080/t/t0/bugs/rest/api/2/search?maxResults=2'
//	curl 'http://localhost:8080/metricz'
//
// Load-generator mode — boots a served tracker in-process, drives many
// concurrent checkpoint/resume miners against its tenant shards
// (killing and taking over every miner's durable state mid-run), then
// writes a benchmark report:
//
//	trackersim load -tenants 4 -miners 100 -out BENCH_tracker.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sdnbugs/internal/chaos"
	"sdnbugs/internal/corpus"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/tracker"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:])
	case len(args) > 0 && args[0] == "load":
		err = runLoad(args[1:], os.Stdout)
	default:
		err = runLegacy(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trackersim:", err)
		os.Exit(1)
	}
}

func runLegacy(args []string) error {
	fs := flag.NewFlagSet("trackersim", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "corpus seed")
	jiraAddr := fs.String("jira", ":8081", "JIRA simulator listen address")
	ghAddr := fs.String("github", ":8082", "GitHub simulator listen address")
	chaosRate := fs.Float64("chaos-rate", 0, "per-request fault injection probability in [0,1]; 0 disables chaos")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault injection schedule seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	corp, err := corpus.Generate(*seed)
	if err != nil {
		return err
	}
	jiraStore := tracker.NewStore()
	ghStore := tracker.NewStore()
	for _, iss := range corp.Issues {
		store := ghStore
		if tracker.TrackerFor(iss.Controller) == tracker.KindJIRA {
			store = jiraStore
		}
		if err := store.Put(iss); err != nil {
			return err
		}
	}

	var jiraHandler http.Handler = jirasim.NewHandler(jiraStore)
	var ghHandler http.Handler = ghsim.NewHandler(ghStore, "faucetsdn", "faucet")
	if *chaosRate > 0 {
		ccfg := chaos.Config{Seed: *chaosSeed, Rate: *chaosRate}
		jiraHandler = chaos.Wrap(jiraHandler, ccfg)
		ghHandler = chaos.Wrap(ghHandler, ccfg)
	}
	jiraSrv := &http.Server{Addr: *jiraAddr, Handler: jiraHandler, ReadHeaderTimeout: 5 * time.Second}
	ghSrv := &http.Server{Addr: *ghAddr, Handler: ghHandler, ReadHeaderTimeout: 5 * time.Second}

	errc := make(chan error, 2)
	go func() { errc <- jiraSrv.ListenAndServe() }()
	go func() { errc <- ghSrv.ListenAndServe() }()
	mode := "no fault injection"
	if *chaosRate > 0 {
		mode = fmt.Sprintf("chaos rate %.2f seed %d", *chaosRate, *chaosSeed)
	}
	fmt.Printf("trackersim: JIRA (%d issues) on %s, GitHub (%d issues) on %s, %s\n",
		jiraStore.Len(), *jiraAddr, ghStore.Len(), *ghAddr, mode)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = jiraSrv.Shutdown(shutdownCtx)
	_ = ghSrv.Shutdown(shutdownCtx)
	return nil
}
