// Command faultlab runs the Table VII recovery-coverage campaign: it
// injects every taxonomy fault class into the simulated controller and
// measures which recovery-framework models fix which classes.
//
//	faultlab -seed 1 -trials 6 [-extended]
//
// With -campaign it instead runs the sustained fault-injection
// campaign (the E22 workload): the full fault suite armed at once over
// a seed-deterministic schedule of management events, traffic, poison
// inputs, and wire-level faults, comparing the self-healing supervisor
// (checkpointed and cold-replay) against a fail-fast watchdog
// baseline.
//
//	faultlab -campaign -seed 1 [-events 1500] [-checkpoint-every 64]
//
// Adding -json to a campaign run emits the three CampaignResults plus
// a live metrics snapshot (restart counts, probe firings, restore
// timings) as one JSON document instead of tables, for scripted
// consumers.
//
//	faultlab -campaign -json -seed 1
//
// With -repair it runs the automatic repair loop (the E25 workload):
// play a supervised campaign epoch until the supervisor sheds its
// deterministic poison classes, synthesize and rank candidate
// flow-rule repairs per shed class, validate them against the ddmin
// minimal reproducer plus the full campaign, lift the sheds a
// validated repair clears, and replay the schedule to measure the
// repaired availability. -json emits the repair report and the
// metrics snapshot as one document.
//
//	faultlab -repair -seed 1 [-events 1500] [-max-candidates 8] [-repair-class configuration/multicast] [-json]
//
// With -cluster it runs the controller-HA campaign (the E26
// workload): the same seed-deterministic schedule played through an
// N-replica ensemble under induced primary crashes, partitions, and
// asymmetric links, compared against a supervised single controller
// and an unfaulted truth run. It exits non-zero if the converged
// ensemble state diverges from the unfaulted fingerprint, so it
// doubles as the cluster smoke check. -json emits the three mode
// results plus the metrics snapshot (election/failover/fencing
// counters, failover wall-tick histogram) as one document.
//
//	faultlab -cluster -seed 1 [-events 1500] [-replicas 3] [-lease-slots 3] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/metrics"
	"sdnbugs/internal/recovery"
	"sdnbugs/internal/repair"
	"sdnbugs/internal/report"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultlab:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "campaign seed")
	trials := flag.Int("trials", 6, "trials per fault × strategy")
	extended := flag.Bool("extended", false, "include the extended-scope event transform")
	campaign := flag.Bool("campaign", false, "run the sustained fault-injection campaign instead")
	events := flag.Int("events", 1500, "campaign schedule length (with -campaign/-repair)")
	ckptEvery := flag.Int("checkpoint-every", 64, "supervised checkpoint cadence (with -campaign/-repair)")
	jsonOut := flag.Bool("json", false, "emit results and metrics as JSON (with -campaign/-repair)")
	repairLoop := flag.Bool("repair", false, "run the automatic repair loop instead")
	maxCandidates := flag.Int("max-candidates", 8, "full validations per shed class (with -repair)")
	repairClass := flag.String("repair-class", "", "restrict repair attempts to this shed class (with -repair)")
	cluster := flag.Bool("cluster", false, "run the controller-HA failover campaign instead")
	replicas := flag.Int("replicas", 3, "ensemble size (with -cluster)")
	leaseSlots := flag.Int("lease-slots", 3, "slots a partitioned primary holds its lease (with -cluster)")
	flag.Parse()

	exclusive := 0
	for _, on := range []bool{*campaign, *repairLoop, *cluster} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		return fmt.Errorf("-campaign, -repair and -cluster are mutually exclusive")
	}
	if *repairLoop {
		return runRepair(*seed, *events, *ckptEvery, *maxCandidates, *repairClass, *jsonOut)
	}
	if *cluster {
		return runCluster(*seed, *events, *replicas, *leaseSlots, *jsonOut)
	}
	if *campaign {
		return runCampaign(*seed, *events, *ckptEvery, *jsonOut)
	}
	if *jsonOut {
		return fmt.Errorf("-json requires -campaign, -repair or -cluster")
	}

	strategies := recovery.StandardStrategies()
	if *extended {
		strategies = append(strategies, &recovery.EventTransform{Scope: []sdn.EventKind{
			sdn.EventNetwork, sdn.EventConfig, sdn.EventExternalCall, sdn.EventHardwareReboot,
		}})
	}
	m, err := recovery.Evaluate(strategies, recovery.EvalConfig{Trials: *trials, Seed: *seed})
	if err != nil {
		return err
	}

	tbl := &report.Table{Title: "Recovery coverage (Table VII, empirical)",
		Headers: append([]string{"fault"}, m.Strategies()...)}
	for _, f := range m.Faults() {
		row := []string{f}
		for _, s := range m.Strategies() {
			c, _ := m.Cell(f, s)
			mark := "     "
			if c.Recovers() {
				mark = "  ✓  "
			}
			row = append(row, fmt.Sprintf("%s%.2f", mark, c.Rate()))
		}
		if err := tbl.AddRow(row...); err != nil {
			return err
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	dc := m.DeterminismCoverage()
	sum := &report.Table{Title: "Coverage by determinism class",
		Headers: []string{"strategy", "deterministic", "non-deterministic"}}
	for _, s := range m.Strategies() {
		c := dc[s]
		if err := sum.AddRow(s, report.Pct(c.Det), report.Pct(c.NonDet)); err != nil {
			return err
		}
	}
	if err := sum.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	cov := m.CoverageByTrigger()
	trig := &report.Table{Title: "Coverage by trigger",
		Headers: []string{"strategy", "configuration", "external-call", "network-event", "hardware-reboot"}}
	for _, s := range m.Strategies() {
		mark := func(t taxonomy.Trigger) string {
			if cov[s][t] {
				return "✓"
			}
			return "-"
		}
		if err := trig.AddRow(s,
			mark(taxonomy.TriggerConfiguration), mark(taxonomy.TriggerExternalCall),
			mark(taxonomy.TriggerNetworkEvent), mark(taxonomy.TriggerHardwareReboot)); err != nil {
			return err
		}
	}
	return trig.Render(os.Stdout)
}

// runRepair runs the automatic repair loop and renders the NetRep-
// style per-category/per-class outcome — as tables, or with jsonOut
// as one JSON document carrying the full repair report plus the live
// metrics snapshot (candidate counters, validation wall times).
func runRepair(seed int64, events, ckptEvery, maxCandidates int, repairClass string, jsonOut bool) error {
	reg := metrics.NewRegistry()
	cfg := repair.Config{
		Seed:            seed,
		Events:          events,
		CheckpointEvery: ckptEvery,
		MaxCandidates:   maxCandidates,
		Metrics:         reg,
	}
	if repairClass != "" {
		cfg.Classes = []string{repairClass}
	}
	rep, err := repair.Run(cfg)
	if err != nil {
		return err
	}

	if jsonOut {
		doc := struct {
			Seed    int64            `json:"seed"`
			Events  int              `json:"events"`
			Report  repair.Report    `json:"report"`
			Metrics metrics.Snapshot `json:"metrics"`
		}{Seed: seed, Events: events, Report: rep, Metrics: reg.Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	sum := &report.Table{Title: fmt.Sprintf("Automatic repair loop (seed %d, %d slots/epoch)", seed, events),
		Headers: []string{"metric", "epoch 1 (shed mode)", "epoch 2 (repaired)"}}
	_ = sum.AddRow("events offered", fmt.Sprintf("%d", rep.Epoch1.Offered), fmt.Sprintf("%d", rep.Epoch2.Offered))
	_ = sum.AddRow("events processed", fmt.Sprintf("%d", rep.Epoch1.Processed), fmt.Sprintf("%d", rep.Epoch2.Processed))
	_ = sum.AddRow("events shed", fmt.Sprintf("%d", rep.Epoch1.Shed), fmt.Sprintf("%d", rep.Epoch2.Shed))
	_ = sum.AddRow("event availability", fmt.Sprintf("%.4f", rep.Epoch1.Availability), fmt.Sprintf("%.4f", rep.Epoch2.Availability))
	_ = sum.AddRow("classes shed", fmt.Sprintf("%v", rep.Epoch1.ShedClasses), fmt.Sprintf("%v", rep.Epoch2.ShedClasses))
	if err := sum.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	cls := &report.Table{Title: "Per-class repair outcomes",
		Headers: []string{"class", "candidates", "reproducer len", "repaired", "winning patch"}}
	for _, cr := range rep.Classes {
		patch := "—"
		if cr.Repaired {
			patch = cr.Patch
		}
		if err := cls.AddRow(cr.Class, fmt.Sprintf("%d", cr.Candidates),
			fmt.Sprintf("%d", cr.ReproducerLen), fmt.Sprintf("%v", cr.Repaired), patch); err != nil {
			return err
		}
	}
	if err := cls.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	rates := &report.Table{Title: "Repair rate by taxonomy trigger category",
		Headers: []string{"category", "shed", "repaired", "rate"}}
	for _, rt := range rep.Rates {
		if err := rates.AddRow(rt.Category, fmt.Sprintf("%d", rt.Shed),
			fmt.Sprintf("%d", rt.Repaired), fmt.Sprintf("%.2f", rt.Rate)); err != nil {
			return err
		}
	}
	return rates.Render(os.Stdout)
}

// runCluster runs the controller-HA campaign and renders the
// three-mode comparison the E26 experiment asserts on — as tables, or
// with jsonOut as one JSON document that also carries the live
// metrics snapshot (election/failover/fencing counters, failover
// wall-tick histogram). It fails — non-zero exit — when the converged
// ensemble state is not byte-identical to the unfaulted run, which
// makes it usable as a smoke check in CI.
func runCluster(seed int64, events, replicas, leaseSlots int, jsonOut bool) error {
	reg := metrics.NewRegistry()
	res, err := faultlab.RunClusterCampaign(faultlab.ClusterCampaignConfig{
		Seed: seed, Events: events, Replicas: replicas, LeaseSlots: leaseSlots, Metrics: reg,
	})
	if err != nil {
		return err
	}

	var verify error
	if !res.Identical() {
		verify = fmt.Errorf("ensemble state diverged: cluster %s vs unfaulted %s (replicas %v)",
			res.Cluster.Fingerprint, res.Unfaulted.Fingerprint, res.Cluster.ReplicaFingerprints)
	}

	if jsonOut {
		doc := struct {
			Seed      int64                       `json:"seed"`
			Events    int                         `json:"events"`
			Replicas  int                         `json:"replicas"`
			Identical bool                        `json:"identical"`
			Modes     []faultlab.ClusterRunResult `json:"modes"`
			Metrics   metrics.Snapshot            `json:"metrics"`
		}{Seed: seed, Events: events, Replicas: replicas, Identical: res.Identical(),
			Modes:   []faultlab.ClusterRunResult{res.Cluster, res.Baseline, res.Unfaulted},
			Metrics: reg.Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
		return verify
	}

	tbl := &report.Table{Title: fmt.Sprintf("Controller-HA failover campaign (seed %d, %d slots, %d replicas)",
		seed, events, replicas),
		Headers: []string{"metric", res.Cluster.Mode, res.Baseline.Mode, res.Unfaulted.Mode}}
	row := func(name string, f func(faultlab.ClusterRunResult) string) {
		_ = tbl.AddRow(name, f(res.Cluster), f(res.Baseline), f(res.Unfaulted))
	}
	d := func(v func(faultlab.ClusterRunResult) int) func(faultlab.ClusterRunResult) string {
		return func(r faultlab.ClusterRunResult) string { return fmt.Sprintf("%d", v(r)) }
	}
	row("events offered", d(func(r faultlab.ClusterRunResult) int { return r.Offered }))
	row("events processed", d(func(r faultlab.ClusterRunResult) int { return r.Processed }))
	row("events lost", d(func(r faultlab.ClusterRunResult) int { return r.Lost }))
	row("failovers / elections", func(r faultlab.ClusterRunResult) string {
		return fmt.Sprintf("%d / %d", r.Failovers, r.Elections)
	})
	row("failed elections", d(func(r faultlab.ClusterRunResult) int { return r.FailedElections }))
	row("restarts / cold restores", func(r faultlab.ClusterRunResult) string {
		return fmt.Sprintf("%d / %d", r.Restarts, r.ColdRestores)
	})
	row("mean failover ticks", func(r faultlab.ClusterRunResult) string {
		return fmt.Sprintf("%.1f", r.MeanFailoverTicks)
	})
	row("mean cold restore ticks", func(r faultlab.ClusterRunResult) string {
		return fmt.Sprintf("%.1f", r.MeanColdRestoreTicks)
	})
	row("fenced writes rejected (wire stale)", func(r faultlab.ClusterRunResult) string {
		return fmt.Sprintf("%d (%d)", r.FencedRejects, r.WireStaleRejects)
	})
	row("fenced-write leaks", d(func(r faultlab.ClusterRunResult) int { return r.FencedLeaks }))
	row("time availability", func(r faultlab.ClusterRunResult) string {
		return fmt.Sprintf("%.4f", r.TimeAvailability())
	})
	row("log length", d(func(r faultlab.ClusterRunResult) int { return r.LogLen }))
	row("state fingerprint", func(r faultlab.ClusterRunResult) string { return r.Fingerprint })
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if verify == nil {
		fmt.Printf("\nconverged ensemble state byte-identical to the unfaulted run (%s)\n",
			res.Unfaulted.Fingerprint)
	}
	return verify
}

// runCampaign runs the sustained campaign three ways and renders the
// comparison the E22 experiment asserts on — as tables, or with
// jsonOut as one JSON document that also carries the live metrics
// snapshot (restart counts, probe firings, restore timings).
func runCampaign(seed int64, events, ckptEvery int, jsonOut bool) error {
	reg := metrics.NewRegistry()
	modes := []faultlab.CampaignConfig{
		{Seed: seed, Events: events, Supervised: true, CheckpointEvery: ckptEvery, Metrics: reg},
		{Seed: seed, Events: events, Supervised: true, Metrics: reg},
		{Seed: seed, Events: events, Metrics: reg},
	}
	var results []faultlab.CampaignResult
	for _, cfg := range modes {
		res, err := faultlab.RunCampaign(cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	if jsonOut {
		doc := struct {
			Seed      int64                     `json:"seed"`
			Events    int                       `json:"events"`
			Campaigns []faultlab.CampaignResult `json:"campaigns"`
			Metrics   metrics.Snapshot          `json:"metrics"`
		}{Seed: seed, Events: events, Campaigns: results, Metrics: reg.Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	tbl := &report.Table{Title: fmt.Sprintf("Sustained fault-injection campaign (seed %d, %d slots)", seed, events),
		Headers: []string{"metric", results[0].Mode, results[1].Mode, results[2].Mode}}
	row := func(name string, f func(faultlab.CampaignResult) string) error {
		return tbl.AddRow(name, f(results[0]), f(results[1]), f(results[2]))
	}
	rows := []struct {
		name string
		f    func(faultlab.CampaignResult) string
	}{
		{"events offered", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Offered) }},
		{"events processed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Processed) }},
		{"events healed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Healed) }},
		{"events shed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Shed) }},
		{"events lost", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Lost) }},
		{"event availability", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%.4f", r.EventAvailability()) }},
		{"time availability", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%.4f", r.TimeAvailability()) }},
		{"MTTR (ticks)", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%.1f", r.MTTR()) }},
		{"incidents", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Incidents) }},
		{"restarts", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Restarts) }},
		{"degradations", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Degradations) }},
		{"checkpoints", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Checkpoints) }},
		{"ckpt restores (mean ticks)", func(r faultlab.CampaignResult) string {
			return fmt.Sprintf("%d (%.1f)", r.CheckpointRestores, r.MeanCheckpointRestoreTicks())
		}},
		{"cold restores (mean ticks)", func(r faultlab.CampaignResult) string {
			return fmt.Sprintf("%d (%.1f)", r.ColdRestores, r.MeanColdRestoreTicks())
		}},
		{"wire faults / kills", func(r faultlab.CampaignResult) string {
			return fmt.Sprintf("%d / %d", r.WireFaults, r.WireKills)
		}},
		{"broadcast failures", func(r faultlab.CampaignResult) string {
			return fmt.Sprintf("%d / %d", r.BroadcastFailures, r.BroadcastProbes)
		}},
		{"classes shed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%v", r.ShedClasses) }},
		{"final state", func(r faultlab.CampaignResult) string { return r.FinalState }},
	}
	for _, rw := range rows {
		if err := row(rw.name, rw.f); err != nil {
			return err
		}
	}
	return tbl.Render(os.Stdout)
}
