// Command faultlab runs the Table VII recovery-coverage campaign: it
// injects every taxonomy fault class into the simulated controller and
// measures which recovery-framework models fix which classes.
//
//	faultlab -seed 1 -trials 6 [-extended]
package main

import (
	"flag"
	"fmt"
	"os"

	"sdnbugs/internal/recovery"
	"sdnbugs/internal/report"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultlab:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "campaign seed")
	trials := flag.Int("trials", 6, "trials per fault × strategy")
	extended := flag.Bool("extended", false, "include the extended-scope event transform")
	flag.Parse()

	strategies := recovery.StandardStrategies()
	if *extended {
		strategies = append(strategies, &recovery.EventTransform{Scope: []sdn.EventKind{
			sdn.EventNetwork, sdn.EventConfig, sdn.EventExternalCall, sdn.EventHardwareReboot,
		}})
	}
	m, err := recovery.Evaluate(strategies, recovery.EvalConfig{Trials: *trials, Seed: *seed})
	if err != nil {
		return err
	}

	tbl := &report.Table{Title: "Recovery coverage (Table VII, empirical)",
		Headers: append([]string{"fault"}, m.Strategies()...)}
	for _, f := range m.Faults() {
		row := []string{f}
		for _, s := range m.Strategies() {
			c, _ := m.Cell(f, s)
			mark := "     "
			if c.Recovers() {
				mark = "  ✓  "
			}
			row = append(row, fmt.Sprintf("%s%.2f", mark, c.Rate()))
		}
		if err := tbl.AddRow(row...); err != nil {
			return err
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	dc := m.DeterminismCoverage()
	sum := &report.Table{Title: "Coverage by determinism class",
		Headers: []string{"strategy", "deterministic", "non-deterministic"}}
	for _, s := range m.Strategies() {
		c := dc[s]
		if err := sum.AddRow(s, report.Pct(c.Det), report.Pct(c.NonDet)); err != nil {
			return err
		}
	}
	if err := sum.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	cov := m.CoverageByTrigger()
	trig := &report.Table{Title: "Coverage by trigger",
		Headers: []string{"strategy", "configuration", "external-call", "network-event", "hardware-reboot"}}
	for _, s := range m.Strategies() {
		mark := func(t taxonomy.Trigger) string {
			if cov[s][t] {
				return "✓"
			}
			return "-"
		}
		if err := trig.AddRow(s,
			mark(taxonomy.TriggerConfiguration), mark(taxonomy.TriggerExternalCall),
			mark(taxonomy.TriggerNetworkEvent), mark(taxonomy.TriggerHardwareReboot)); err != nil {
			return err
		}
	}
	return trig.Render(os.Stdout)
}
