// Command perfuzz runs the feedback-guided stateful performance
// fuzzer (the E24 workload) over the simulated controller: a genetic
// search over event schedules scored by supervisor probe signals and
// the per-event latency tail, an equal-budget random-search baseline,
// delta-debugged minimal reproducers per degradation class, and a
// failure-inducing classifier trained on the accumulated corpus.
//
//	perfuzz -seed 1 [-generations 6] [-population 8] [-genome-len 40]
//
// The run prints a one-line summary to stderr and the full JSON
// report (worst genomes, shrunk reproducers, learner scores) to
// stdout or -out. The report is byte-identical across runs with the
// same flags. -metrics appends a metrics snapshot (eval counts, cache
// hits, probe firings, restore timings) to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sdnbugs/internal/metrics"
	"sdnbugs/internal/perfuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "perfuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "fuzzing seed (the whole run derives from it)")
	generations := flag.Int("generations", 6, "breeding rounds")
	population := flag.Int("population", 8, "genomes per generation")
	genomeLen := flag.Int("genome-len", 40, "initial schedule length in genes")
	topK := flag.Int("top", 3, "worst genomes kept in the report")
	shrinkBudget := flag.Int("shrink-budget", 400, "max evaluations per reproducer shrink")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	metricsOut := flag.Bool("metrics", false, "dump the metrics snapshot to stderr")
	flag.Parse()

	reg := metrics.NewRegistry()
	rep, err := perfuzz.Fuzz(perfuzz.Config{
		Seed:         *seed,
		Generations:  *generations,
		Population:   *population,
		GenomeLen:    *genomeLen,
		TopK:         *topK,
		ShrinkBudget: *shrinkBudget,
		Registry:     reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, rep.String())

	js, err := rep.JSON()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(js); err != nil {
		return err
	}

	if *metricsOut {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}
