// Command sdnbugs is the study's main CLI: it generates the bug
// corpus, runs the paper's experiments through the concurrent engine,
// and classifies bug-report text with the NLP pipeline.
//
// Usage:
//
//	sdnbugs generate    [-seed N] [-out corpus.json]
//	sdnbugs report      [-seed N] [-experiments E02,E05] [-csv] [-parallel N] [-workers N] [-timings]
//	sdnbugs checks      [-seed N] [-experiments E02,E05] [-parallel N] [-workers N] [-timings]
//	sdnbugs experiments [-seed N] [-out FILE] [-ablations] [-parallel N] [-workers N] [-timings]
//	sdnbugs classify    [-seed N] -text "controller crashes after config reload"
//	sdnbugs mine        -state-dir DIR [-resume] [-jira-url URL] [-gh-url URL] [-out FILE]
//
// report prints the regenerated tables, checks prints the
// paper-vs-measured summary, and experiments emits the EXPERIMENTS.md
// body. All three select experiments (and ablations) by ID through
// the engine registry — E01–E20 reproduce the paper's artifacts,
// E21 re-mines the corpus through fault-injected simulators behind
// the resilience transport, E22 runs the self-healing supervisor
// through a sustained fault-injection campaign, E23 kills and
// resumes the durable miner at scheduled disk-crash points, E24
// fuzzes event schedules for the stateful performance bugs, E25
// closes the loop by synthesizing, validating, and lifting automatic
// repairs for shed poison classes, and E26 replicates the controller
// into a fenced ensemble whose failovers are byte-invisible — run them
// on a -parallel worker pool
// (0 means GOMAXPROCS) with identical output to a sequential run,
// keep going past individual experiment failures (including panics,
// which surface as errored outcomes), and report where the time went
// on stderr with -timings. -workers bounds the pools *inside*
// experiments (the NLP validation grid, batch prediction) and, like
// -parallel, never changes output. -exp-timeout bounds each
// experiment's wall clock; one that overruns is reported errored with
// a deadline error while the rest of the batch completes.
// -cpuprofile and -memprofile write
// runtime/pprof profiles of the suite run for `go tool pprof`.
//
// mine pages issues into a crash-consistent state directory (a
// checksummed write-ahead journal plus snapshots): kill it at any
// point and a -resume run continues from the last checkpointed page,
// producing a corpus byte-identical to an uninterrupted run. With no
// tracker URLs it serves the generated seed corpus from in-process
// simulators, making the kill-and-resume loop self-contained.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sdnbugs"
	"sdnbugs/internal/corpus"
	"sdnbugs/internal/durable"
	"sdnbugs/internal/engine"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/mine"
	"sdnbugs/internal/report"
	"sdnbugs/internal/tracker"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch args[0] {
	case "generate":
		err = cmdGenerate(args[1:])
	case "report":
		err = cmdReport(ctx, args[1:])
	case "classify":
		err = cmdClassify(args[1:])
	case "checks":
		err = cmdChecks(ctx, args[1:])
	case "experiments":
		err = cmdExperiments(ctx, args[1:])
	case "mine":
		err = cmdMine(ctx, args[1:])
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdnbugs:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sdnbugs <generate|report|classify|checks|experiments|mine> [flags]`)
}

// engineFlags holds the flags shared by every experiment-running
// subcommand.
type engineFlags struct {
	seed       *int64
	only       *string
	parallel   *int
	workers    *int
	expTimeout *time.Duration
	timings    *bool
	cpuprofile *string
	memprofile *string
}

func addEngineFlags(fs *flag.FlagSet) engineFlags {
	return engineFlags{
		seed:       fs.Int64("seed", 1, "suite seed"),
		only:       fs.String("experiments", "", "comma-separated experiment/ablation ids (default: all experiments)"),
		parallel:   fs.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS)"),
		workers:    fs.Int("workers", 0, "worker pool size inside experiments, e.g. the NLP validation grid (0 = GOMAXPROCS)"),
		expTimeout: fs.Duration("exp-timeout", 0, "per-experiment wall-clock bound; a wedged experiment is reported errored (0 = unbounded)"),
		timings:    fs.Bool("timings", false, "print per-experiment timings and the run summary to stderr"),
		cpuprofile: fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)"),
		memprofile: fs.String("memprofile", "", "write a heap profile taken after the run to this file"),
	}
}

// profile starts CPU profiling if requested and returns a stop
// function that finishes the CPU profile and writes the heap profile.
// Profiles wrap only the suite run, not flag parsing or rendering.
func (ef engineFlags) profile() (stop func() error, err error) {
	var cpuFile *os.File
	if *ef.cpuprofile != "" {
		cpuFile, err = os.Create(*ef.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *ef.memprofile != "" {
			f, err := os.Create(*ef.memprofile)
			if err != nil {
				return err
			}
			defer func() { _ = f.Close() }()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// runSuite executes the selected experiments and, with -timings,
// accounts for the run on stderr. Timings go to stderr so stdout
// stays byte-identical across parallelism settings.
func (ef engineFlags) runSuite(ctx context.Context, ablations bool) (engine.Run[sdnbugs.ExperimentResult], error) {
	suite := sdnbugs.NewSuite(*ef.seed)
	suite.Workers = *ef.workers
	stopProfiles, err := ef.profile()
	if err != nil {
		return engine.Run[sdnbugs.ExperimentResult]{}, err
	}
	run, err := suite.Run(ctx, sdnbugs.RunOptions{
		IDs:               engine.ParseIDs(*ef.only),
		Ablations:         ablations,
		Parallelism:       *ef.parallel,
		ExperimentTimeout: *ef.expTimeout,
	})
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		return run, err
	}
	if *ef.timings {
		rep := engine.NewReport(run)
		fmt.Fprintln(os.Stderr, rep.Summary())
		_ = rep.TimingTable().Render(os.Stderr)
		_ = rep.SlowestTable(5).Render(os.Stderr)
	}
	return run, nil
}

// cmdExperiments emits the EXPERIMENTS.md body: every experiment's
// paper-vs-measured checks and regenerated tables as markdown.
// Experiments that error are reported in place and in the header;
// the rest still render.
func cmdExperiments(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	ef := addEngineFlags(fs)
	out := fs.String("out", "", "output file (default stdout)")
	ablations := fs.Bool("ablations", false, "include the A01–A07 ablation studies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	run, err := ef.runSuite(ctx, *ablations)
	if err != nil {
		return err
	}
	total, failed, errored := 0, 0, 0
	var b strings.Builder
	for _, o := range run.Outcomes {
		fmt.Fprintf(&b, "## %s — %s\n\n", o.ID, o.Title)
		if o.Err != nil {
			errored++
			fmt.Fprintf(&b, "**ERROR:** %v\n\n", o.Err)
			continue
		}
		b.WriteString("| metric | paper | measured | holds |\n|---|---|---|---|\n")
		for _, c := range o.Result.Checks {
			holds := "yes"
			total++
			if !c.Holds {
				holds = "**NO**"
				failed++
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", c.Metric, c.Paper, c.Measured, holds)
		}
		b.WriteString("\n")
		for _, tbl := range o.Result.Tables {
			b.WriteString("```\n" + tbl.RenderString() + "```\n\n")
		}
	}
	header := fmt.Sprintf("Generated by `sdnbugs experiments -seed %d`: %d checks, %d failed.\n\n",
		*ef.seed, total, failed)
	if errored > 0 {
		header = fmt.Sprintf("Generated by `sdnbugs experiments -seed %d`: %d checks, %d failed; %d experiments errored.\n\n",
			*ef.seed, total, failed, errored)
	}
	// Publish atomically: a run killed mid-write must never leave a
	// truncated EXPERIMENTS.md behind.
	if *out != "" {
		if err := durable.WriteFileAtomic(*out, []byte(header+b.String()), 0o644); err != nil {
			return err
		}
	} else {
		if _, err := io.WriteString(os.Stdout, header+b.String()); err != nil {
			return err
		}
	}
	if errored > 0 {
		return fmt.Errorf("%d of %d experiments errored", errored, len(run.Outcomes))
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "corpus seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corp, err := corpus.Generate(*seed)
	if err != nil {
		return err
	}
	type wire struct {
		Issues    []tracker.Issue `json:"issues"`
		ManualIDs []string        `json:"manual_ids"`
	}
	data, err := json.MarshalIndent(wire{Issues: corp.Issues, ManualIDs: corp.ManualIDs}, "", "  ")
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	return durable.WriteFileAtomic(*out, data, 0o644)
}

// cmdMine runs the resumable miner: it pages issues out of JIRA- and
// GitHub-style trackers into a crash-consistent state directory,
// checkpointing after every page. Kill it anywhere — even mid-fsync —
// and a -resume run picks up from the last checkpoint; the finished
// corpus is byte-identical to an uninterrupted run (experiment E23
// asserts exactly this under scheduled disk crashes). With no tracker
// URLs the generated seed corpus is served from in-process simulators.
func cmdMine(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mine", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "corpus seed for the in-process simulators")
	jiraURL := fs.String("jira-url", "", "JIRA tracker base URL (default: in-process simulator)")
	ghURL := fs.String("gh-url", "", "GitHub tracker base URL (default: in-process simulator)")
	ghRepo := fs.String("gh-repo", "faucetsdn/faucet", "GitHub repository path (owner/name)")
	stateDir := fs.String("state-dir", "", "crash-consistent mining state directory (required)")
	resume := fs.Bool("resume", false, "continue an interrupted run in -state-dir (breaks its stale lock)")
	snapEvery := fs.Int("snapshot-every", 64, "journal records between snapshots")
	out := fs.String("out", "", "write the mined corpus as JSON (atomically) when mining completes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stateDir == "" {
		return fmt.Errorf("mine: -state-dir is required")
	}
	if !*resume {
		if entries, err := os.ReadDir(*stateDir); err == nil && len(entries) > 0 {
			return fmt.Errorf("mine: %s already holds mining state; pass -resume to continue it", *stateDir)
		}
	}

	if *jiraURL == "" || *ghURL == "" {
		corp, err := corpus.Generate(*seed)
		if err != nil {
			return err
		}
		jiraStore, ghStore := tracker.NewStore(), tracker.NewStore()
		for _, iss := range corp.Issues {
			st := jiraStore
			if tracker.TrackerFor(iss.Controller) == tracker.KindGitHub {
				st = ghStore
			}
			if err := st.Put(iss); err != nil {
				return err
			}
		}
		owner, name, ok := strings.Cut(*ghRepo, "/")
		if !ok {
			return fmt.Errorf("mine: -gh-repo must be owner/name, got %q", *ghRepo)
		}
		if *jiraURL == "" {
			srv := httptest.NewServer(jirasim.NewHandler(jiraStore))
			defer srv.Close()
			*jiraURL = srv.URL
		}
		if *ghURL == "" {
			srv := httptest.NewServer(ghsim.NewHandler(ghStore, owner, name))
			defer srv.Close()
			*ghURL = srv.URL
		}
	}

	d, err := durable.Open(*stateDir, durable.Options{SnapshotEvery: *snapEvery, TakeOver: *resume})
	if err != nil {
		if errors.Is(err, durable.ErrLocked) {
			return fmt.Errorf("mine: another miner holds %s (or one crashed; pass -resume to take over): %w", *stateDir, err)
		}
		return err
	}
	st, err := tracker.NewDurableStore(d)
	if err != nil {
		_ = d.Close()
		return err
	}
	if rec := d.Recovery(); rec.SnapshotRecords+rec.ReplayedRecords > 0 || rec.TruncatedBytes > 0 {
		fmt.Fprintf(os.Stderr, "sdnbugs: recovered %d snapshot + %d journal records (%d torn bytes truncated)\n",
			rec.SnapshotRecords, rec.ReplayedRecords, rec.TruncatedBytes)
	}
	res, err := mine.Run(ctx, mine.Config{
		JIRA:   &jirasim.Client{BaseURL: *jiraURL},
		GitHub: &ghsim.Client{BaseURL: *ghURL, Repo: *ghRepo},
		Store:  st,
	})
	if err != nil {
		_ = st.Close()
		return err
	}
	fmt.Printf("mined %d issues (%d jira + %d github fetched, %d restored)\n",
		res.Total, res.JIRAFetched, res.GitHubFetched, res.Restored)
	if *out != "" {
		issues := st.IssuesInOrder()
		encoded := make([]json.RawMessage, len(issues))
		for i, iss := range issues {
			if encoded[i], err = tracker.EncodeIssue(iss); err != nil {
				_ = st.Close()
				return err
			}
		}
		data, err := json.MarshalIndent(struct {
			Issues []json.RawMessage `json:"issues"`
		}{encoded}, "", "  ")
		if err != nil {
			_ = st.Close()
			return err
		}
		if err := durable.WriteFileAtomic(*out, data, 0o644); err != nil {
			_ = st.Close()
			return err
		}
	}
	return st.Close()
}

func cmdReport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	ef := addEngineFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	run, err := ef.runSuite(ctx, false)
	if err != nil {
		return err
	}
	errored := 0
	for _, o := range run.Outcomes {
		if o.Err != nil {
			errored++
			fmt.Fprintf(os.Stderr, "sdnbugs: %s: %v\n", o.ID, o.Err)
			continue
		}
		fmt.Printf("=== %s — %s\n", o.ID, o.Title)
		for _, tbl := range o.Result.Tables {
			if *csv {
				if err := tbl.CSV(os.Stdout); err != nil {
					return err
				}
			} else if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	if errored > 0 {
		return fmt.Errorf("%d of %d experiments errored", errored, len(run.Outcomes))
	}
	return nil
}

func cmdChecks(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("checks", flag.ContinueOnError)
	ef := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	run, err := ef.runSuite(ctx, false)
	if err != nil {
		return err
	}
	var all []report.Check
	failedChecks := 0
	for _, o := range run.Outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "sdnbugs: %s: %v\n", o.ID, o.Err)
			continue
		}
		for _, c := range o.Result.Checks {
			all = append(all, c)
			if !c.Holds {
				failedChecks++
			}
		}
	}
	tbl := report.ChecksTable("Paper vs measured", all)
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	passed, failed, errored := run.Counts()
	fmt.Printf("\n%d checks, %d failed\n", len(all), failedChecks)
	fmt.Printf("%d experiments: %d passed, %d failed, %d errored\n",
		len(run.Outcomes), passed, failed, errored)
	if failed > 0 || errored > 0 {
		return fmt.Errorf("%d experiments failed checks, %d errored", failed, errored)
	}
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "suite seed")
	text := fs.String("text", "", "bug report text to classify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *text == "" {
		return fmt.Errorf("classify: -text is required")
	}
	suite := sdnbugs.NewSuite(*seed)
	p, err := suite.Pipeline()
	if err != nil {
		return err
	}
	label, err := p.Predict(tracker.Issue{Description: *text})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(label, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
