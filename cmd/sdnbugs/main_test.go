package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunUsage(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args exit code = %d, want 2", code)
	}
	if code := run([]string{"nosuchcmd"}); code != 2 {
		t.Errorf("unknown cmd exit code = %d, want 2", code)
	}
}

func TestGenerateWritesCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus.json")
	if code := run([]string{"generate", "-seed", "3", "-out", out}); code != 0 {
		t.Fatalf("generate exit code = %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Issues []struct {
			ID         string `json:"id"`
			Controller string `json:"controller"`
		} `json:"issues"`
		ManualIDs []string `json:"manual_ids"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Issues) != 795 {
		t.Errorf("issues = %d, want 795", len(wire.Issues))
	}
	if len(wire.ManualIDs) != 150 {
		t.Errorf("manual ids = %d, want 150", len(wire.ManualIDs))
	}
	if wire.Issues[0].Controller == "" || wire.Issues[0].ID == "" {
		t.Errorf("issue serialization incomplete: %+v", wire.Issues[0])
	}
}

func TestClassifyRequiresText(t *testing.T) {
	if code := run([]string{"classify"}); code != 1 {
		t.Errorf("classify without -text exit code = %d, want 1", code)
	}
}
