package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects one of the process streams (a pointer to
// os.Stdout or os.Stderr) while fn runs and returns what was written.
func capture(t *testing.T, stream **os.File, fn func()) string {
	t.Helper()
	old := *stream
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	*stream = w
	defer func() { *stream = old }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	_ = w.Close()
	return <-done
}

func TestRunUsage(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args exit code = %d, want 2", code)
	}
	if code := run([]string{"nosuchcmd"}); code != 2 {
		t.Errorf("unknown cmd exit code = %d, want 2", code)
	}
}

func TestGenerateWritesCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus.json")
	if code := run([]string{"generate", "-seed", "3", "-out", out}); code != 0 {
		t.Fatalf("generate exit code = %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Issues []struct {
			ID         string `json:"id"`
			Controller string `json:"controller"`
		} `json:"issues"`
		ManualIDs []string `json:"manual_ids"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Issues) != 795 {
		t.Errorf("issues = %d, want 795", len(wire.Issues))
	}
	if len(wire.ManualIDs) != 150 {
		t.Errorf("manual ids = %d, want 150", len(wire.ManualIDs))
	}
	if wire.Issues[0].Controller == "" || wire.Issues[0].ID == "" {
		t.Errorf("issue serialization incomplete: %+v", wire.Issues[0])
	}
}

func TestClassifyRequiresText(t *testing.T) {
	if code := run([]string{"classify"}); code != 1 {
		t.Errorf("classify without -text exit code = %d, want 1", code)
	}
}

// TestReportParallelDeterminism is the CLI half of the determinism
// contract: report -parallel 4 must emit byte-identical stdout to the
// sequential run, even with -timings (which writes to stderr only).
func TestReportParallelDeterminism(t *testing.T) {
	reportOut := func(extra ...string) string {
		var code int
		args := append([]string{"report", "-seed", "1", "-experiments", "E02,E05,E13,E14"}, extra...)
		out := capture(t, &os.Stdout, func() { code = run(args) })
		if code != 0 {
			t.Fatalf("%v exit code = %d", args, code)
		}
		return out
	}
	seq := reportOut("-parallel", "1")
	par := reportOut("-parallel", "4", "-timings")
	if seq != par {
		t.Errorf("parallel stdout diverged from sequential:\n--- seq ---\n%s--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "=== E02") || !strings.Contains(seq, "=== E14") {
		t.Errorf("report output missing selected experiments:\n%s", seq)
	}
}

func TestReportTimingsOnStderr(t *testing.T) {
	var code int
	errOut := capture(t, &os.Stderr, func() {
		_ = capture(t, &os.Stdout, func() {
			code = run([]string{"report", "-seed", "1", "-experiments", "E02", "-timings"})
		})
	})
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	for _, frag := range []string{"1 experiments in", "Per-experiment timings", "Slowest"} {
		if !strings.Contains(errOut, frag) {
			t.Errorf("-timings stderr missing %q:\n%s", frag, errOut)
		}
	}
}

func TestReportUnknownExperimentFails(t *testing.T) {
	var code int
	errOut := capture(t, &os.Stderr, func() {
		code = run([]string{"report", "-experiments", "E99"})
	})
	if code != 1 {
		t.Errorf("unknown id exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut, "E99") {
		t.Errorf("error should name the unknown id:\n%s", errOut)
	}
}

func TestChecksSummaryLine(t *testing.T) {
	var code int
	out := capture(t, &os.Stdout, func() {
		code = run([]string{"checks", "-seed", "1", "-experiments", "E02,E05,E14", "-parallel", "2"})
	})
	if code != 0 {
		t.Fatalf("checks exit code = %d\n%s", code, out)
	}
	if !strings.Contains(out, "3 experiments: 3 passed, 0 failed, 0 errored") {
		t.Errorf("checks output missing the per-experiment summary:\n%s", out)
	}
}

func TestExperimentsSubcommandSelection(t *testing.T) {
	out := filepath.Join(t.TempDir(), "experiments.md")
	code := run([]string{"experiments", "-seed", "1", "-experiments", "E02,A06",
		"-parallel", "2", "-out", out})
	if code != 0 {
		t.Fatalf("experiments exit code = %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, frag := range []string{"## E02", "## A06", "0 failed"} {
		if !strings.Contains(body, frag) {
			t.Errorf("experiments output missing %q:\n%s", frag, body)
		}
	}
	if strings.Contains(body, "## E01") {
		t.Error("unselected experiment rendered")
	}
}

// TestExperimentsWorkersDeterminism is the CLI half of the in-
// experiment parallelism contract: -workers N must emit byte-identical
// stdout to -workers 1 for the NLP experiments whose internals fan out
// onto the pool.
func TestExperimentsWorkersDeterminism(t *testing.T) {
	if raceEnabled {
		t.Skip("two full E09 runs are too slow under -race; suite and study tests cover the contract")
	}
	experimentsOut := func(workers string) string {
		var code int
		args := []string{"experiments", "-seed", "1", "-experiments", "E09,A02", "-workers", workers}
		out := capture(t, &os.Stdout, func() { code = run(args) })
		if code != 0 {
			t.Fatalf("%v exit code = %d", args, code)
		}
		return out
	}
	serial := experimentsOut("1")
	parallel := experimentsOut("4")
	if serial != parallel {
		t.Errorf("-workers 4 stdout diverged from -workers 1:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "## E09") || !strings.Contains(serial, "## A02") {
		t.Errorf("experiments output missing selected ids:\n%s", serial)
	}
}

// TestMineRoundTrip drives the resumable miner end to end against the
// in-process simulators: a first run mines the full seed corpus into
// the state directory, a second run without -resume is refused, and a
// -resume run restores everything from disk without refetching.
func TestMineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state")
	out := filepath.Join(dir, "corpus.json")

	var code int
	stdout := capture(t, &os.Stdout, func() {
		code = run([]string{"mine", "-seed", "1", "-state-dir", state, "-out", out})
	})
	if code != 0 {
		t.Fatalf("mine exit code = %d", code)
	}
	if !strings.Contains(stdout, "mined 795 issues (544 jira + 251 github fetched, 0 restored)") {
		t.Errorf("mine stdout = %q", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Issues []json.RawMessage `json:"issues"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Issues) != 795 {
		t.Errorf("exported issues = %d, want 795", len(wire.Issues))
	}

	// The state dir is owned by the finished run: without -resume the
	// miner must refuse to touch it rather than silently restart.
	stderr := capture(t, &os.Stderr, func() {
		code = run([]string{"mine", "-seed", "1", "-state-dir", state})
	})
	if code != 1 || !strings.Contains(stderr, "-resume") {
		t.Errorf("re-mine without -resume: code = %d, stderr = %q", code, stderr)
	}

	// -resume restores the corpus from disk; the trackers have nothing
	// new, so the run is a pure restore.
	stdout = capture(t, &os.Stdout, func() {
		code = run([]string{"mine", "-seed", "1", "-state-dir", state, "-resume"})
	})
	if code != 0 {
		t.Fatalf("resume exit code = %d", code)
	}
	if !strings.Contains(stdout, "mined 795 issues (0 jira + 0 github fetched, 795 restored)") {
		t.Errorf("resume stdout = %q", stdout)
	}
}

func TestMineRequiresStateDir(t *testing.T) {
	var code int
	stderr := capture(t, &os.Stderr, func() {
		code = run([]string{"mine"})
	})
	if code != 1 || !strings.Contains(stderr, "-state-dir") {
		t.Errorf("mine without -state-dir: code = %d, stderr = %q", code, stderr)
	}
}

// TestProfileFlagsWriteFiles covers -cpuprofile/-memprofile: both
// files must exist and be non-empty after a run.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var code int
	_ = capture(t, &os.Stdout, func() {
		code = run([]string{"checks", "-seed", "1", "-experiments", "E02",
			"-cpuprofile", cpu, "-memprofile", mem})
	})
	if code != 0 {
		t.Fatalf("checks with profiles exit code = %d", code)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
