//go:build race

package main

// raceEnabled mirrors the root package's test gate: CLI-level
// determinism runs full E09 workloads twice, too slow under -race.
const raceEnabled = true
