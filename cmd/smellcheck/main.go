// Command smellcheck runs the software-engineering analyses of §VI:
// the code-smell trend across ONOS releases (Figure 8), the commit
// burn analysis (Figures 10 and 11, Table IV), and the dependency
// vulnerability scan (§V-A).
//
//	smellcheck -seed 1 [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdnbugs/internal/burn"
	"sdnbugs/internal/codemodel"
	"sdnbugs/internal/depscan"
	"sdnbugs/internal/report"
	"sdnbugs/internal/smell"
	"sdnbugs/internal/vcs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smellcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "generation seed")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	emit := func(t *report.Table) error {
		if *csv {
			if err := t.CSV(os.Stdout); err != nil {
				return err
			}
		} else if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	// Figure 8: smell trend.
	pts, err := smell.Trend(codemodel.ONOSReleases(), *seed)
	if err != nil {
		return err
	}
	smellTbl := &report.Table{Title: "Code smells across ONOS releases (Figure 8)",
		Headers: []string{"version", "god-component", "unstable-dep", "insufficient-mod",
			"broken-hierarchy", "hub-like", "missing-hierarchy", "classes", "commits"}}
	for _, p := range pts {
		if err := smellTbl.AddRow(p.Version,
			fmt.Sprint(p.Counts[smell.GodComponent]),
			fmt.Sprint(p.Counts[smell.UnstableDependency]),
			fmt.Sprint(p.Counts[smell.InsufficientModularization]),
			fmt.Sprint(p.Counts[smell.BrokenHierarchy]),
			fmt.Sprint(p.Counts[smell.HubLikeModularization]),
			fmt.Sprint(p.Counts[smell.MissingHierarchy]),
			fmt.Sprint(p.Classes), fmt.Sprint(p.Commits)); err != nil {
			return err
		}
	}
	if err := emit(smellTbl); err != nil {
		return err
	}

	// Figure 11 + Table IV: FAUCET burn analysis.
	h, err := vcs.GenerateFaucet(vcs.GenerateConfig{Seed: *seed})
	if err != nil {
		return err
	}
	dist, err := burn.Distribution(h)
	if err != nil {
		return err
	}
	distTbl := &report.Table{Title: "FAUCET commits by subsystem (Figure 11)",
		Headers: []string{"subsystem", "share"}}
	for _, s := range burn.Subsystems() {
		if err := distTbl.AddRow(s.String(), report.Pct(dist[s])); err != nil {
			return err
		}
	}
	if err := emit(distTbl); err != nil {
		return err
	}

	table, err := burn.BurnDownTable(h)
	if err != nil {
		return err
	}
	depTbl := &report.Table{Title: "FAUCET dependency burn-down (Table IV)",
		Headers: []string{"dependency", "version changes"}}
	for _, row := range table {
		if err := depTbl.AddRow(row.Dependency, fmt.Sprint(row.Changes)); err != nil {
			return err
		}
	}
	if err := emit(depTbl); err != nil {
		return err
	}

	// Figure 10: ONOS commits per release.
	var schedule []int
	var versions []string
	for _, p := range codemodel.ONOSReleases() {
		schedule = append(schedule, p.Commits)
		versions = append(versions, p.Version)
	}
	onosHist, releases, err := vcs.GenerateONOS(schedule, time.Time{}, *seed)
	if err != nil {
		return err
	}
	counts, err := burn.CommitsPerRelease(onosHist, releases)
	if err != nil {
		return err
	}
	commitTbl := &report.Table{Title: "ONOS commits per release (Figure 10)",
		Headers: []string{"version", "commits"}}
	for i, v := range versions {
		if err := commitTbl.AddRow(v, fmt.Sprint(counts[i])); err != nil {
			return err
		}
	}
	if err := emit(commitTbl); err != nil {
		return err
	}

	// §V-A: dependency vulnerabilities.
	trend, err := depscan.VulnerabilityTrend(depscan.ONOSManifests(), depscan.BuiltinDB())
	if err != nil {
		return err
	}
	vulnTbl := &report.Table{Title: "ONOS dependency vulnerabilities (§V-A)",
		Headers: []string{"version", "dependencies", "findings", "critical"}}
	for _, p := range trend {
		if err := vulnTbl.AddRow(p.Version, fmt.Sprint(p.Deps),
			fmt.Sprint(p.Findings), fmt.Sprint(p.Critical)); err != nil {
			return err
		}
	}
	return emit(vulnTbl)
}
