package sdnbugs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"sdnbugs/internal/chaos"
	"sdnbugs/internal/diskfault"
	"sdnbugs/internal/durable"
	"sdnbugs/internal/engine"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/mine"
	"sdnbugs/internal/report"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/tracker"
)

// registerDurabilityExperiments registers the crash-consistency
// experiment (E23) after the supervisor experiment.
func (s *Suite) registerDurabilityExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E23", "kill-and-resume mining: byte-identical corpus across scheduled disk crashes",
		engine.KindExperiment, s.E23KillAndResumeMining)
}

// e23CrashPoints schedules one disk crash per mining round: the
// filesystem dies on the round's Nth write-class operation, tearing
// any in-flight journal append at a seed-chosen byte.
var e23CrashPoints = []int{7, 25, 60, 120, 200}

// e23Round is one kill-and-resume round's deterministic record.
type e23Round struct {
	crashOp   int // scheduled crash op (0 = final clean round)
	restored  int // issues recovered from disk at the round's open
	replayed  int // journal records replayed at the round's open
	tornBytes int // torn journal tail truncated at the round's open
	snapGen   uint64
	fetched   int // issues fetched from the trackers this round
	crashed   bool
}

// E23KillAndResumeMining is the crash-consistency experiment: the §II-B
// mining pipeline runs against chaos-wrapped trackers (50% fault rate,
// as E21) while its corpus store lives on a fault-injecting filesystem
// that kills the miner at five scheduled crash points — mid-append,
// mid-fsync, mid-snapshot, wherever the schedule lands — tearing the
// in-flight write each time. After every "reboot" the miner resumes
// from the write-ahead journal and snapshots; when it finally
// completes, the corpus must be byte-identical to a clean single-shot
// run. An in-experiment crash matrix additionally reboots a small
// workload at every single write operation and demands prefix-consistent
// recovery — no lost acks, no duplicates, no corrupt records — and a
// concurrent open of the live state directory must fail fast with
// ErrLocked.
func (s *Suite) E23KillAndResumeMining() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E23",
		Title: "kill-and-resume mining: byte-identical corpus across scheduled disk crashes"}
	corp, err := s.Corpus()
	if err != nil {
		return res, err
	}
	jiraStore, ghStore, err := loadTrackerStores(corp)
	if err != nil {
		return res, err
	}
	ctx := context.Background()

	// Clean single-shot baseline: durable store on a fault-free
	// in-memory disk, plain trackers, plain client.
	cleanJira := httptest.NewServer(jirasim.NewHandler(jiraStore))
	defer cleanJira.Close()
	cleanGH := httptest.NewServer(ghsim.NewHandler(ghStore, "faucetsdn", "faucet"))
	defer cleanGH.Close()
	cleanBytes, cleanTotal, err := e23CleanMine(ctx, cleanJira.URL, cleanGH.URL)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: E23 baseline mine: %w", err)
	}

	// The campaign: same mining, but through 50%-chaos trackers and on
	// a disk that crashes at each scheduled point. One MemFS plays the
	// disk that survives every "process death".
	ccfg := chaos.Config{
		Seed:       s.Seed + 23,
		Rate:       0.5,
		RetryAfter: time.Millisecond,
		Latency:    2 * time.Millisecond,
	}
	chaosJiraH := chaos.Wrap(jirasim.NewHandler(jiraStore), ccfg)
	chaosGHH := chaos.Wrap(ghsim.NewHandler(ghStore, "faucetsdn", "faucet"), ccfg)
	flakyJira := httptest.NewServer(chaosJiraH)
	defer flakyJira.Close()
	flakyGH := httptest.NewServer(chaosGHH)
	defer flakyGH.Close()

	mem := diskfault.NewMemFS()
	var rounds []e23Round
	var lockedErr error
	fired := 0
	for i := 0; i <= len(e23CrashPoints); i++ {
		crashOp := 0 // final round: no bomb, the miner must finish
		var fsys diskfault.FS = mem
		if i < len(e23CrashPoints) {
			crashOp = e23CrashPoints[i]
			fsys = diskfault.New(mem, diskfault.Config{Seed: s.Seed + int64(i), CrashAfterOps: crashOp})
		}
		rd, lockErr, err := e23Round1(ctx, fsys, flakyJira.URL, flakyGH.URL, i > 0, i == len(e23CrashPoints))
		rd.crashOp = crashOp
		if err != nil {
			return res, fmt.Errorf("sdnbugs: E23 round %d: %w", i+1, err)
		}
		if lockErr != nil {
			lockedErr = lockErr
		}
		if rd.crashed {
			fired++
		}
		rounds = append(rounds, rd)
	}
	final := rounds[len(rounds)-1]

	// Reopen once more and fingerprint what the campaign left on disk.
	recoveredBytes, recoveredTotal, err := e23Fingerprint(mem)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: E23 final fingerprint: %w", err)
	}
	identical := string(recoveredBytes) == string(cleanBytes)

	tornTotal, replayedTotal := 0, 0
	for _, rd := range rounds {
		tornTotal += rd.tornBytes
		replayedTotal += rd.replayed
	}
	matrixPoints, matrixViolations, err := e23CrashMatrix(s.Seed)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: E23 crash matrix: %w", err)
	}
	faults := chaosJiraH.Stats().Faults() + chaosGHH.Stats().Faults()

	res.Checks = append(res.Checks,
		report.Check{Artifact: "E23", Metric: "clean single-shot mine corpus size",
			Paper:    "186 ONOS + 358 CORD + 251 FAUCET = 795",
			Measured: fmt.Sprintf("%d issues", cleanTotal),
			Holds:    cleanTotal == 795},
		report.Check{Artifact: "E23", Metric: "scheduled disk crashes fired",
			Paper:    fmt.Sprintf("%d kill points", len(e23CrashPoints)),
			Measured: fmt.Sprintf("%d crashes fired", fired),
			Holds:    fired == len(e23CrashPoints)},
		report.Check{Artifact: "E23", Metric: "resumed corpus byte-identical to single-shot run",
			Paper:    "crashes must not change mined data",
			Measured: fmt.Sprintf("%d issues, identical=%v", recoveredTotal, identical),
			Holds:    identical && recoveredTotal == 795},
		report.Check{Artifact: "E23", Metric: "torn journal tails truncated, never fatal",
			Paper:    "recovery repairs what a torn write can explain",
			Measured: fmt.Sprintf("%d torn bytes truncated across %d reopenings", tornTotal, len(rounds)),
			Holds:    true}, // reaching this line means every recovery succeeded
		report.Check{Artifact: "E23", Metric: "concurrent opener rejected with ErrLocked",
			Paper:    "single-owner state directory",
			Measured: fmt.Sprintf("second open: %v", lockedErr),
			Holds:    errors.Is(lockedErr, durable.ErrLocked)},
		report.Check{Artifact: "E23", Metric: "crash matrix: prefix-consistent recovery at every write op",
			Paper:    "all acked records, at most one unacked, no duplicates",
			Measured: fmt.Sprintf("%d crash points, %d violations", matrixPoints, matrixViolations),
			Holds:    matrixPoints > 0 && matrixViolations == 0},
		report.Check{Artifact: "E23", Metric: "tracker chaos active during the campaign",
			Paper:    "fault rate 0.5 (as E21)",
			Measured: fmt.Sprintf("faults injected: %v", faults > 0),
			Holds:    faults > 0},
	)

	tbl := &report.Table{Title: "Kill-and-resume mining (E23)",
		Headers: []string{"round", "crash at op", "restored", "replayed", "torn bytes", "snap gen", "fetched"}}
	for i, rd := range rounds {
		at := fmt.Sprintf("%d", rd.crashOp)
		if rd.crashOp == 0 {
			at = "-"
		}
		_ = tbl.AddRow(fmt.Sprintf("%d", i+1), at,
			fmt.Sprintf("%d", rd.restored), fmt.Sprintf("%d", rd.replayed),
			fmt.Sprintf("%d", rd.tornBytes), fmt.Sprintf("%d", rd.snapGen),
			fmt.Sprintf("%d", rd.fetched))
	}
	res.Tables = append(res.Tables, tbl)

	sum := &report.Table{Title: "Crash recovery summary (E23)",
		Headers: []string{"metric", "value"}}
	_ = sum.AddRow("issues mined", fmt.Sprintf("%d", final.restored+final.fetched))
	_ = sum.AddRow("scheduled crashes", fmt.Sprintf("%d", fired))
	_ = sum.AddRow("journal records replayed", fmt.Sprintf("%d", replayedTotal))
	_ = sum.AddRow("torn bytes truncated", fmt.Sprintf("%d", tornTotal))
	_ = sum.AddRow("byte-identical to clean run", fmt.Sprintf("%v", identical))
	_ = sum.AddRow("matrix crash points / violations", fmt.Sprintf("%d / %d", matrixPoints, matrixViolations))
	res.Tables = append(res.Tables, sum)
	return res, nil
}

// e23Client builds a fresh resilient client per round (the E21
// configuration): retry with backoff and jitter, a per-round retry
// budget, and a circuit breaker sized above the chaos progress bound.
func e23Client() *http.Client {
	budget := resilience.NewBudget(200, 1)
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 10,
		SuccessThreshold: 2,
		OpenTimeout:      50 * time.Millisecond,
	})
	return &http.Client{Transport: resilience.NewTransport(nil, resilience.Policy{
		MaxAttempts:   8,
		BaseDelay:     time.Millisecond,
		MaxDelay:      8 * time.Millisecond,
		MaxRetryAfter: 50 * time.Millisecond,
		Budget:        budget,
	}, breaker)}
}

const e23StateDir = "e23-state"

// e23CleanMine runs one uninterrupted durable mine on a fresh in-memory
// disk and returns the corpus fingerprint.
func e23CleanMine(ctx context.Context, jiraURL, ghURL string) ([]byte, int, error) {
	mem := diskfault.NewMemFS()
	d, err := durable.Open(e23StateDir, durable.Options{FS: mem, SnapshotEvery: 96})
	if err != nil {
		return nil, 0, err
	}
	st, err := tracker.NewDurableStore(d)
	if err != nil {
		_ = d.Close()
		return nil, 0, err
	}
	defer func() { _ = st.Close() }()
	plain := &http.Client{}
	r, err := mine.Run(ctx, mine.Config{
		JIRA:   &jirasim.Client{BaseURL: jiraURL, HTTPClient: plain, PageSize: 50},
		GitHub: &ghsim.Client{BaseURL: ghURL, Repo: "faucetsdn/faucet", HTTPClient: plain, PerPage: 50},
		Store:  st,
	})
	if err != nil {
		return nil, 0, err
	}
	return st.CorpusBytes(), r.Total, nil
}

// e23Round1 runs one campaign round on fsys: open (taking over the
// crashed predecessor's lock), record recovery stats, mine until done
// or until the disk dies. On the final round it also probes that a
// second opener is rejected while the store is live. Only a disk crash
// is a tolerated mining failure; anything else is an error.
func e23Round1(ctx context.Context, fsys diskfault.FS, jiraURL, ghURL string, takeOver, probeLock bool) (e23Round, error, error) {
	var rd e23Round
	d, err := durable.Open(e23StateDir, durable.Options{FS: fsys, SnapshotEvery: 96, TakeOver: takeOver})
	if err != nil {
		if errors.Is(err, diskfault.ErrCrashed) {
			rd.crashed = true // died before the store was up; next round recovers
			return rd, nil, nil
		}
		return rd, nil, err
	}
	rec := d.Recovery()
	rd.replayed, rd.tornBytes, rd.snapGen = rec.ReplayedRecords, rec.TruncatedBytes, rec.SnapshotGen
	st, err := tracker.NewDurableStore(d)
	if err != nil {
		_ = d.Close()
		return rd, nil, err
	}
	rd.restored = st.Len()

	var lockErr error
	if probeLock {
		_, lockErr = durable.Open(e23StateDir, durable.Options{FS: fsys})
		if lockErr == nil {
			lockErr = errors.New("second open of a live state dir unexpectedly succeeded")
		}
	}

	hardened := e23Client()
	r, runErr := mine.Run(ctx, mine.Config{
		JIRA:   &jirasim.Client{BaseURL: jiraURL, HTTPClient: hardened, PageSize: 50},
		GitHub: &ghsim.Client{BaseURL: ghURL, Repo: "faucetsdn/faucet", HTTPClient: hardened, PerPage: 50},
		Store:  st,
	})
	rd.fetched = r.JIRAFetched + r.GitHubFetched
	_ = st.Close()
	if runErr != nil {
		if !errors.Is(runErr, diskfault.ErrCrashed) {
			return rd, lockErr, runErr
		}
		rd.crashed = true
	}
	return rd, lockErr, nil
}

// e23Fingerprint reopens the campaign's disk one last time and returns
// the recovered corpus fingerprint.
func e23Fingerprint(mem *diskfault.MemFS) ([]byte, int, error) {
	d, err := durable.Open(e23StateDir, durable.Options{FS: mem, TakeOver: true})
	if err != nil {
		return nil, 0, err
	}
	st, err := tracker.NewDurableStore(d)
	if err != nil {
		_ = d.Close()
		return nil, 0, err
	}
	defer func() { _ = st.Close() }()
	return st.CorpusBytes(), st.Len(), nil
}

// e23CrashMatrix reboots a small synthetic workload at every write-class
// operation it performs and verifies prefix-consistent recovery: every
// acknowledged record present, at most one unacknowledged record, in
// exact Put order with exact values. Returns crash points tried and
// violations found.
func e23CrashMatrix(seed int64) (points, violations int, err error) {
	const nRecs = 12
	key := func(i int) string { return fmt.Sprintf("m/%02d", i) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("matrix-record-%02d", i)) }

	// Measure a clean run's op count.
	probe := diskfault.New(diskfault.NewMemFS(), diskfault.Config{})
	d, err := durable.Open("m", durable.Options{FS: probe, SnapshotEvery: 4})
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < nRecs; i++ {
		if err := d.Put(key(i), val(i)); err != nil {
			return 0, 0, err
		}
	}
	if err := d.Close(); err != nil {
		return 0, 0, err
	}
	totalOps := probe.Stats().Ops

	for k := 1; k <= totalOps; k++ {
		points++
		mem := diskfault.NewMemFS()
		ffs := diskfault.New(mem, diskfault.Config{Seed: seed + int64(k), CrashAfterOps: k})
		acked := 0
		d, err := durable.Open("m", durable.Options{FS: ffs, SnapshotEvery: 4})
		if err == nil {
			for i := 0; i < nRecs; i++ {
				if err := d.Put(key(i), val(i)); err != nil {
					break
				}
				acked++
			}
			_ = d.Close()
		} else if !errors.Is(err, diskfault.ErrCrashed) {
			return points, violations, err
		}

		r, err := durable.Open("m", durable.Options{FS: mem, TakeOver: true})
		if err != nil {
			violations++
			continue
		}
		got := r.Len()
		ok := got >= acked && got <= acked+1
		idx := 0
		r.Range(func(k string, v []byte) bool {
			if k != key(idx) || string(v) != string(val(idx)) {
				ok = false
				return false
			}
			idx++
			return true
		})
		if !ok || idx != got {
			violations++
		}
		_ = r.Close()
	}
	return points, violations, nil
}
