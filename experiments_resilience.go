package sdnbugs

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"time"

	"sdnbugs/internal/chaos"
	"sdnbugs/internal/corpus"
	"sdnbugs/internal/engine"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/report"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/tracker"
)

// registerResilienceExperiments registers the robustness experiment
// (E21) after the paper experiments.
func (s *Suite) registerResilienceExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E21", "robust mining: byte-identical corpus under injected tracker faults",
		engine.KindExperiment, s.E21ResilientMining)
}

// loadTrackerStores splits the corpus into the two simulators the way
// the real trackers hold the data: ONOS/CORD in JIRA, FAUCET in
// GitHub.
func loadTrackerStores(corp *corpus.Corpus) (jira, gh *tracker.Store, err error) {
	jira, gh = tracker.NewStore(), tracker.NewStore()
	for _, iss := range corp.Issues {
		var putErr error
		if tracker.TrackerFor(iss.Controller) == tracker.KindJIRA {
			putErr = jira.Put(iss)
		} else {
			putErr = gh.Put(iss)
		}
		if putErr != nil {
			return nil, nil, fmt.Errorf("sdnbugs: load store: %w", putErr)
		}
	}
	return jira, gh, nil
}

// E21ResilientMining is the robustness experiment: the §II-B mining
// pipeline runs against chaos-wrapped simulators — injected rate
// limits with Retry-After, 5xx bursts, latency spikes, truncated
// bodies, and dropped connections — through the resilience transport
// (retry with backoff + jitter, retry budget, circuit breaker). The
// mined corpus must be byte-identical to a fault-free run: the faults
// may change the schedule, never the data.
func (s *Suite) E21ResilientMining() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E21",
		Title: "robust mining: byte-identical corpus under injected tracker faults"}
	corp, err := s.Corpus()
	if err != nil {
		return res, err
	}
	jiraStore, ghStore, err := loadTrackerStores(corp)
	if err != nil {
		return res, err
	}
	ctx := context.Background()

	// Fault-free baseline through plain clients (no retry layer).
	cleanJira := httptest.NewServer(jirasim.NewHandler(jiraStore))
	defer cleanJira.Close()
	cleanGH := httptest.NewServer(ghsim.NewHandler(ghStore, "faucetsdn", "faucet"))
	defer cleanGH.Close()
	plain := &http.Client{}
	baseJira, err := (&jirasim.Client{BaseURL: cleanJira.URL, HTTPClient: plain,
		PageSize: 50}).FetchAll(ctx, jirasim.SearchOptions{})
	if err != nil {
		return res, fmt.Errorf("sdnbugs: baseline JIRA mining: %w", err)
	}
	baseGH, err := (&ghsim.Client{BaseURL: cleanGH.URL, Repo: "faucetsdn/faucet",
		HTTPClient: plain, PerPage: 50}).FetchAll(ctx, "")
	if err != nil {
		return res, fmt.Errorf("sdnbugs: baseline GitHub mining: %w", err)
	}

	// The same mining run through chaos: roughly every other request is
	// faulted, but the chaos progress bound (≤3 consecutive error
	// faults) plus 8 attempts per request guarantees completion.
	ccfg := chaos.Config{
		Seed:       s.Seed + 21,
		Rate:       0.5,
		RetryAfter: time.Millisecond, // advertises "0": no forced sleeps
		Latency:    2 * time.Millisecond,
	}
	chaosJiraH := chaos.Wrap(jirasim.NewHandler(jiraStore), ccfg)
	chaosGHH := chaos.Wrap(ghsim.NewHandler(ghStore, "faucetsdn", "faucet"), ccfg)
	flakyJira := httptest.NewServer(chaosJiraH)
	defer flakyJira.Close()
	flakyGH := httptest.NewServer(chaosGHH)
	defer flakyGH.Close()

	budget := resilience.NewBudget(200, 1)
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 10, // above the chaos progress bound: must never trip
		SuccessThreshold: 2,
		OpenTimeout:      50 * time.Millisecond,
	})
	rt := resilience.NewTransport(nil, resilience.Policy{
		MaxAttempts:   8,
		BaseDelay:     time.Millisecond,
		MaxDelay:      8 * time.Millisecond,
		MaxRetryAfter: 50 * time.Millisecond,
		Budget:        budget,
	}, breaker)
	hardened := &http.Client{Transport: rt}
	chaosJira, err := (&jirasim.Client{BaseURL: flakyJira.URL, HTTPClient: hardened,
		PageSize: 50}).FetchAll(ctx, jirasim.SearchOptions{})
	if err != nil {
		return res, fmt.Errorf("sdnbugs: chaos JIRA mining: %w", err)
	}
	chaosGH, err := (&ghsim.Client{BaseURL: flakyGH.URL, Repo: "faucetsdn/faucet",
		HTTPClient: hardened, PerPage: 50}).FetchAll(ctx, "")
	if err != nil {
		return res, fmt.Errorf("sdnbugs: chaos GitHub mining: %w", err)
	}

	jiraStats, ghStats := chaosJiraH.Stats(), chaosGHH.Stats()
	faults := jiraStats.Faults() + ghStats.Faults()
	m := rt.Metrics()
	opens, rejections := breaker.Counts()
	_, retries, denied := budget.Stats()

	jiraSame := reflect.DeepEqual(chaosJira, baseJira)
	ghSame := reflect.DeepEqual(chaosGH, baseGH)
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E21", Metric: "JIRA corpus identical under chaos",
			Paper:    "faults must not change mined data",
			Measured: fmt.Sprintf("%d issues, identical=%v", len(chaosJira), jiraSame),
			Holds:    jiraSame && len(chaosJira) == 186+358},
		report.Check{Artifact: "E21", Metric: "GitHub corpus identical under chaos",
			Paper:    "faults must not change mined data",
			Measured: fmt.Sprintf("%d issues, identical=%v", len(chaosGH), ghSame),
			Holds:    ghSame && len(chaosGH) == 251},
		report.Check{Artifact: "E21", Metric: "chaos actually injected faults",
			Paper:    "fault rate 0.5",
			Measured: fmt.Sprintf("%d error faults injected", faults),
			Holds:    faults > 0},
		report.Check{Artifact: "E21", Metric: "transport retried through the faults",
			Paper:    "retries absorb every fault",
			Measured: fmt.Sprintf("retries observed: %v", m.Retries+m.BodyRetries > 0),
			Holds:    m.Retries+m.BodyRetries > 0},
		report.Check{Artifact: "E21", Metric: "circuit breaker stayed closed",
			Paper:    "bounded fault bursts never trip it",
			Measured: fmt.Sprintf("%d opens, %d rejections", opens, rejections),
			Holds:    opens == 0 && rejections == 0},
		report.Check{Artifact: "E21", Metric: "retry budget never exhausted",
			Paper:    "budget sized for the fault rate",
			Measured: fmt.Sprintf("%d retries granted, %d denied", retries, denied),
			Holds:    denied == 0},
	)

	tbl := &report.Table{Title: "Mining under chaos (E21)",
		Headers: []string{"metric", "JIRA", "GitHub"}}
	_ = tbl.AddRow("requests seen", fmt.Sprintf("%d", jiraStats.Requests), fmt.Sprintf("%d", ghStats.Requests))
	_ = tbl.AddRow("faults injected", fmt.Sprintf("%d", jiraStats.Faults()), fmt.Sprintf("%d", ghStats.Faults()))
	_ = tbl.AddRow("rate limits", fmt.Sprintf("%d", jiraStats.RateLimits), fmt.Sprintf("%d", ghStats.RateLimits))
	_ = tbl.AddRow("server errors", fmt.Sprintf("%d", jiraStats.ServerErrors), fmt.Sprintf("%d", ghStats.ServerErrors))
	_ = tbl.AddRow("latency spikes", fmt.Sprintf("%d", jiraStats.Latencies), fmt.Sprintf("%d", ghStats.Latencies))
	_ = tbl.AddRow("truncated bodies", fmt.Sprintf("%d", jiraStats.Truncations), fmt.Sprintf("%d", ghStats.Truncations))
	_ = tbl.AddRow("dropped connections", fmt.Sprintf("%d", jiraStats.Drops), fmt.Sprintf("%d", ghStats.Drops))
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
