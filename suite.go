package sdnbugs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/engine"
	"sdnbugs/internal/report"
	"sdnbugs/internal/study"
	"sdnbugs/internal/tracker"
)

// ExperimentResult is one reproduced table or figure with its
// paper-vs-measured checks and renderable artifacts.
type ExperimentResult struct {
	// ID is the experiment id from DESIGN.md (E01..E26).
	ID string
	// Title names the paper artifact.
	Title string
	// Checks compare measured values to the paper's published ones.
	Checks []report.Check
	// Tables are the regenerated artifacts.
	Tables []*report.Table
}

// Holds reports whether every check passed.
func (r ExperimentResult) Holds() bool {
	for _, c := range r.Checks {
		if !c.Holds {
			return false
		}
	}
	return true
}

// Suite materializes the study's data once and runs experiments
// against it. All randomness derives from the seed; two suites with
// the same seed produce identical results.
//
// A Suite is safe for concurrent use: the shared artifacts (corpus,
// manual/full studies, fitted NLP pipeline) are built exactly once
// behind sync.Once accessors and are immutable afterwards, so the
// engine may run any set of experiments in parallel against one
// Suite. TestParallelMatchesSequential exercises that property under
// the race detector.
type Suite struct {
	Seed int64

	// Workers bounds the worker pools *inside* experiments (the NLP
	// validation grid, per-dimension classifier training, batch
	// prediction); 0 means GOMAXPROCS, 1 runs those stages serially.
	// It is independent of RunOptions.Parallelism, which bounds how
	// many experiments run at once, and — like Parallelism — never
	// changes any result.
	Workers int

	corpusOnce sync.Once
	corpusErr  error
	corpus     *corpus.Corpus
	manual     *study.Study
	full       *study.Study

	pipeOnce sync.Once
	pipeErr  error
	pipeline *study.Pipeline

	valOnce   sync.Once
	valErr    error
	validator *study.Validator

	regOnce sync.Once
	reg     *engine.Registry[ExperimentResult]
}

// NewSuite returns a lazily-initialized suite.
func NewSuite(seed int64) *Suite {
	return &Suite{Seed: seed}
}

// ErrSuite wraps suite-level initialization failures.
var ErrSuite = errors.New("sdnbugs: suite")

// Corpus returns the generated bug corpus (built on first use).
func (s *Suite) Corpus() (*corpus.Corpus, error) {
	s.corpusOnce.Do(func() {
		c, err := corpus.Generate(s.Seed)
		if err != nil {
			s.corpusErr = fmt.Errorf("%w: corpus: %v", ErrSuite, err)
			return
		}
		s.corpus = c

		issues, labels := c.ManualSubset()
		manualBugs := make([]study.LabeledBug, len(issues))
		for i := range issues {
			manualBugs[i] = study.LabeledBug{Issue: issues[i], Label: labels[i]}
		}
		manual, err := study.New(manualBugs)
		if err != nil {
			s.corpusErr = fmt.Errorf("%w: manual study: %v", ErrSuite, err)
			return
		}
		s.manual = manual

		fullBugs := make([]study.LabeledBug, len(c.Issues))
		for i, iss := range c.Issues {
			fullBugs[i] = study.LabeledBug{Issue: iss, Label: c.Labels[iss.ID]}
		}
		full, err := study.New(fullBugs)
		if err != nil {
			s.corpusErr = fmt.Errorf("%w: full study: %v", ErrSuite, err)
			return
		}
		s.full = full
	})
	return s.corpus, s.corpusErr
}

// Manual returns the 150-bug manual-analysis study.
func (s *Suite) Manual() (*study.Study, error) {
	if _, err := s.Corpus(); err != nil {
		return nil, err
	}
	return s.manual, nil
}

// Full returns the 795-bug full study.
func (s *Suite) Full() (*study.Study, error) {
	if _, err := s.Corpus(); err != nil {
		return nil, err
	}
	return s.full, nil
}

// Pipeline returns the NLP pipeline fitted on the manual set.
func (s *Suite) Pipeline() (*study.Pipeline, error) {
	s.pipeOnce.Do(func() {
		manual, err := s.Manual()
		if err != nil {
			s.pipeErr = err
			return
		}
		p := study.NewPipeline(study.PipelineConfig{Seed: s.Seed, Workers: s.Workers})
		if err := p.Fit(manual.Bugs()); err != nil {
			s.pipeErr = fmt.Errorf("%w: pipeline: %v", ErrSuite, err)
			return
		}
		s.pipeline = p
	})
	return s.pipeline, s.pipeErr
}

// Validator returns the shared §II-C validator over the manual set.
// E09 and the NLP ablations all validate through it, so split-invariant
// work (tokenization, TF-IDF vocabularies, Word2Vec models) happens
// once per suite and identical validation runs — the scaling ablation
// repeats E09's protocol verbatim — are answered from cache.
func (s *Suite) Validator() (*study.Validator, error) {
	s.valOnce.Do(func() {
		manual, err := s.Manual()
		if err != nil {
			s.valErr = err
			return
		}
		s.validator = study.NewValidator(manual.Bugs())
	})
	return s.validator, s.valErr
}

// Registry returns the suite's experiment registry: E01–E26 and
// A01–A07 in paper order, each bound to this suite's shared
// artifacts. The registry is built once and shared; it is safe for
// concurrent lookups and selection.
func (s *Suite) Registry() *engine.Registry[ExperimentResult] {
	s.regOnce.Do(func() {
		r := engine.NewRegistry[ExperimentResult]()
		s.registerCorpusExperiments(r)
		s.registerSystemsExperiments(r)
		s.registerResilienceExperiments(r)
		s.registerSuperviseExperiments(r)
		s.registerDurabilityExperiments(r)
		s.registerPerfuzzExperiments(r)
		s.registerRepairExperiments(r)
		s.registerClusterExperiments(r)
		s.registerAblations(r)
		s.reg = r
	})
	return s.reg
}

// registerSuite wires one context-free suite method into a registry.
// The suite's experiments predate context plumbing; the engine still
// honors cancellation between experiments.
func registerSuite(r *engine.Registry[ExperimentResult], id, title string,
	kind engine.Kind, run func() (ExperimentResult, error)) {
	r.MustRegister(engine.Experiment[ExperimentResult]{
		ID: id, Title: title, Kind: kind,
		Run: func(context.Context) (ExperimentResult, error) { return run() },
	})
}

// countChecks tallies a result's checks for the engine's outcomes.
func countChecks(res ExperimentResult) (passed, failed int) {
	for _, c := range res.Checks {
		if c.Holds {
			passed++
		} else {
			failed++
		}
	}
	return passed, failed
}

// RunOptions configures an engine-backed suite run.
type RunOptions struct {
	// IDs selects experiments and/or ablations by ID ("E02", "a05");
	// empty selects every experiment, plus every ablation when
	// Ablations is set.
	IDs []string
	// Ablations includes A01–A07 when IDs is empty.
	Ablations bool
	// Parallelism bounds the engine's worker pool; <= 0 means
	// GOMAXPROCS. Results come back in registration order either way.
	Parallelism int
	// ExperimentTimeout bounds each experiment's wall-clock time when
	// positive; an experiment still running at the deadline is reported
	// errored (context.DeadlineExceeded) while the rest of the batch
	// continues. 0 means no bound.
	ExperimentTimeout time.Duration
	// OnEvent streams per-experiment start/finish events.
	OnEvent func(engine.Event)
}

// Run executes the selected experiments through the engine,
// returning one outcome per experiment — including the failed ones —
// in registration order. The error reports selection problems
// (unknown IDs) or context cancellation; per-experiment failures
// live in the outcomes.
func (s *Suite) Run(ctx context.Context, opts RunOptions) (engine.Run[ExperimentResult], error) {
	reg := s.Registry()
	var exps []engine.Experiment[ExperimentResult]
	if len(opts.IDs) > 0 {
		var err error
		if exps, err = reg.Select(opts.IDs); err != nil {
			return engine.Run[ExperimentResult]{}, err
		}
	} else {
		exps = reg.OfKind(engine.KindExperiment)
		if opts.Ablations {
			exps = append(exps, reg.OfKind(engine.KindAblation)...)
		}
	}
	runner := &engine.Runner[ExperimentResult]{
		Parallelism:       opts.Parallelism,
		Checks:            countChecks,
		OnEvent:           opts.OnEvent,
		ExperimentTimeout: opts.ExperimentTimeout,
	}
	return runner.Run(ctx, exps)
}

// runKind runs every experiment of one kind sequentially and
// unwraps the outcomes fail-fast — the legacy slice-returning view.
func (s *Suite) runKind(k engine.Kind) ([]ExperimentResult, error) {
	runner := &engine.Runner[ExperimentResult]{Parallelism: 1, Checks: countChecks}
	run, err := runner.Run(context.Background(), s.Registry().OfKind(k))
	if err != nil {
		return nil, err
	}
	return run.Results()
}

// Experiments runs every experiment (E01–E26) in order. It is a thin
// sequential wrapper over Run; use Run directly for parallelism,
// ID selection and per-experiment outcomes.
func (s *Suite) Experiments() ([]ExperimentResult, error) {
	return s.runKind(engine.KindExperiment)
}

// Ablations runs the design-choice studies (A01–A07) in order, as a
// thin sequential wrapper over the engine like Experiments.
func (s *Suite) Ablations() ([]ExperimentResult, error) {
	return s.runKind(engine.KindAblation)
}

// within reports |got-want| <= tol.
func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// controllerOrder is the display order used across tables.
var controllerOrder = []tracker.Controller{tracker.FAUCET, tracker.ONOS, tracker.CORD}
