package sdnbugs

import (
	"errors"
	"fmt"
	"sync"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/report"
	"sdnbugs/internal/study"
	"sdnbugs/internal/tracker"
)

// ExperimentResult is one reproduced table or figure with its
// paper-vs-measured checks and renderable artifacts.
type ExperimentResult struct {
	// ID is the experiment id from DESIGN.md (E01..E20).
	ID string
	// Title names the paper artifact.
	Title string
	// Checks compare measured values to the paper's published ones.
	Checks []report.Check
	// Tables are the regenerated artifacts.
	Tables []*report.Table
}

// Holds reports whether every check passed.
func (r ExperimentResult) Holds() bool {
	for _, c := range r.Checks {
		if !c.Holds {
			return false
		}
	}
	return true
}

// Suite materializes the study's data once and runs experiments
// against it. All randomness derives from the seed; two suites with
// the same seed produce identical results.
type Suite struct {
	Seed int64

	corpusOnce sync.Once
	corpusErr  error
	corpus     *corpus.Corpus
	manual     *study.Study
	full       *study.Study

	pipeOnce sync.Once
	pipeErr  error
	pipeline *study.Pipeline
}

// NewSuite returns a lazily-initialized suite.
func NewSuite(seed int64) *Suite {
	return &Suite{Seed: seed}
}

// ErrSuite wraps suite-level initialization failures.
var ErrSuite = errors.New("sdnbugs: suite")

// Corpus returns the generated bug corpus (built on first use).
func (s *Suite) Corpus() (*corpus.Corpus, error) {
	s.corpusOnce.Do(func() {
		c, err := corpus.Generate(s.Seed)
		if err != nil {
			s.corpusErr = fmt.Errorf("%w: corpus: %v", ErrSuite, err)
			return
		}
		s.corpus = c

		issues, labels := c.ManualSubset()
		manualBugs := make([]study.LabeledBug, len(issues))
		for i := range issues {
			manualBugs[i] = study.LabeledBug{Issue: issues[i], Label: labels[i]}
		}
		manual, err := study.New(manualBugs)
		if err != nil {
			s.corpusErr = fmt.Errorf("%w: manual study: %v", ErrSuite, err)
			return
		}
		s.manual = manual

		fullBugs := make([]study.LabeledBug, len(c.Issues))
		for i, iss := range c.Issues {
			fullBugs[i] = study.LabeledBug{Issue: iss, Label: c.Labels[iss.ID]}
		}
		full, err := study.New(fullBugs)
		if err != nil {
			s.corpusErr = fmt.Errorf("%w: full study: %v", ErrSuite, err)
			return
		}
		s.full = full
	})
	return s.corpus, s.corpusErr
}

// Manual returns the 150-bug manual-analysis study.
func (s *Suite) Manual() (*study.Study, error) {
	if _, err := s.Corpus(); err != nil {
		return nil, err
	}
	return s.manual, nil
}

// Full returns the 795-bug full study.
func (s *Suite) Full() (*study.Study, error) {
	if _, err := s.Corpus(); err != nil {
		return nil, err
	}
	return s.full, nil
}

// Pipeline returns the NLP pipeline fitted on the manual set.
func (s *Suite) Pipeline() (*study.Pipeline, error) {
	s.pipeOnce.Do(func() {
		manual, err := s.Manual()
		if err != nil {
			s.pipeErr = err
			return
		}
		p := study.NewPipeline(study.PipelineConfig{Seed: s.Seed})
		if err := p.Fit(manual.Bugs()); err != nil {
			s.pipeErr = fmt.Errorf("%w: pipeline: %v", ErrSuite, err)
			return
		}
		s.pipeline = p
	})
	return s.pipeline, s.pipeErr
}

// Experiments runs every experiment in order.
func (s *Suite) Experiments() ([]ExperimentResult, error) {
	runs := []func() (ExperimentResult, error){
		s.E01CorpusMining,
		s.E02Determinism,
		s.E03Symptoms,
		s.E04RootCauseBySymptom,
		s.E05Triggers,
		s.E06ConfigSubcategories,
		s.E07FixAnalysis,
		s.E08ResolutionCDF,
		s.E09NLPValidation,
		s.E10CorrelationCDF,
		s.E11TopicUniqueness,
		s.E12FullDatasetPrediction,
		s.E13SmellTrend,
		s.E14CommitsPerRelease,
		s.E15FaucetBurn,
		s.E16DependencyBurn,
		s.E17VulnerabilityScan,
		s.E18ControllerSelection,
		s.E19RecoveryCoverage,
		s.E20CrossDomainComparison,
	}
	out := make([]ExperimentResult, 0, len(runs))
	for _, run := range runs {
		res, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Ablations runs the design-choice studies (A01–A06).
func (s *Suite) Ablations() ([]ExperimentResult, error) {
	runs := []func() (ExperimentResult, error){
		s.AblationFeatures,
		s.AblationScaling,
		s.AblationNMFRank,
		s.AblationTransformScope,
		s.AblationTopicModel,
		s.AblationPrediction,
		s.AblationLayering,
	}
	out := make([]ExperimentResult, 0, len(runs))
	for _, run := range runs {
		res, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// within reports |got-want| <= tol.
func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// controllerOrder is the display order used across tables.
var controllerOrder = []tracker.Controller{tracker.FAUCET, tracker.ONOS, tracker.CORD}
