package sdnbugs

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/engine"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/report"
	"sdnbugs/internal/study"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

// registerCorpusExperiments registers the corpus-analysis experiments
// (E01–E10) with the engine in paper order.
func (s *Suite) registerCorpusExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E01", "§II-B data set: tracker mining and corpus shape", engine.KindExperiment, s.E01CorpusMining)
	registerSuite(r, "E02", "§III bug type: determinism per controller", engine.KindExperiment, s.E02Determinism)
	registerSuite(r, "E03", "§IV operational impact: symptom distribution", engine.KindExperiment, s.E03Symptoms)
	registerSuite(r, "E04", "Figure 2: root causes by symptom and controller", engine.KindExperiment, s.E04RootCauseBySymptom)
	registerSuite(r, "E05", "§V-A bug triggers", engine.KindExperiment, s.E05Triggers)
	registerSuite(r, "E06", "Table III: configuration sub-categories", engine.KindExperiment, s.E06ConfigSubcategories)
	registerSuite(r, "E07", "§V-A fixes: config and compatibility shares", engine.KindExperiment, s.E07FixAnalysis)
	registerSuite(r, "E08", "Figure 7: resolution-time CDFs per trigger", engine.KindExperiment, s.E08ResolutionCDF)
	registerSuite(r, "E09", "§II-C NLP validation: SVM vs DT vs AdaBoost vs PCA", engine.KindExperiment, s.E09NLPValidation)
	registerSuite(r, "E10", "Figure 12: bug-category correlation CDF", engine.KindExperiment, s.E10CorrelationCDF)
}

// E01CorpusMining reproduces §II-B's data collection: the corpus is
// loaded into the JIRA and GitHub simulators and mined back over HTTP,
// checking the published per-controller critical-bug counts (251 /
// 186 / 358) and the burst of bug creation around releases.
func (s *Suite) E01CorpusMining() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E01", Title: "§II-B data set: tracker mining and corpus shape"}
	corp, err := s.Corpus()
	if err != nil {
		return res, err
	}

	// Load the simulators exactly as the real trackers would hold the
	// data: ONOS/CORD in JIRA, FAUCET in GitHub.
	jiraStore, ghStore, err := loadTrackerStores(corp)
	if err != nil {
		return res, err
	}
	jiraSrv := httptest.NewServer(jirasim.NewHandler(jiraStore))
	defer jiraSrv.Close()
	ghSrv := httptest.NewServer(ghsim.NewHandler(ghStore, "faucetsdn", "faucet"))
	defer ghSrv.Close()

	ctx := context.Background()
	jc := jirasim.Client{BaseURL: jiraSrv.URL, PageSize: 100}
	mined := map[tracker.Controller]int{}
	for _, project := range []string{"ONOS", "CORD"} {
		got, err := jc.FetchAll(ctx, jirasim.SearchOptions{Project: project})
		if err != nil {
			return res, fmt.Errorf("sdnbugs: mine %s: %w", project, err)
		}
		ctl, _ := tracker.ParseController(project)
		mined[ctl] = len(got)
	}
	gc := ghsim.Client{BaseURL: ghSrv.URL, Repo: "faucetsdn/faucet", PerPage: 100}
	ghIssues, err := gc.FetchAll(ctx, "")
	if err != nil {
		return res, fmt.Errorf("sdnbugs: mine FAUCET: %w", err)
	}
	mined[tracker.FAUCET] = len(ghIssues)

	wants := map[tracker.Controller]int{
		tracker.FAUCET: 251, tracker.ONOS: 186, tracker.CORD: 358,
	}
	tbl := &report.Table{Title: "Critical bugs mined per controller (§II-B)",
		Headers: []string{"controller", "tracker", "paper", "mined"}}
	for _, ctl := range controllerOrder {
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E01", Metric: ctl.String() + " critical bugs",
			Paper:    fmt.Sprintf("%d", wants[ctl]),
			Measured: fmt.Sprintf("%d", mined[ctl]),
			Holds:    mined[ctl] == wants[ctl],
		})
		_ = tbl.AddRow(ctl.String(), tracker.TrackerFor(ctl).String(),
			fmt.Sprintf("%d", wants[ctl]), fmt.Sprintf("%d", mined[ctl]))
	}

	// Methodology validation for the GitHub path (§II-B's keyword
	// severity extraction): run the heuristic over the JIRA-labeled
	// bugs, whose severity is explicit, and measure how often it lands
	// in the critical band it is meant to surface.
	var flagged, jiraTotal int
	for _, iss := range corp.Issues {
		if tracker.TrackerFor(iss.Controller) != tracker.KindJIRA {
			continue
		}
		jiraTotal++
		if tracker.ExtractSeverity(iss.Text()).Critical() {
			flagged++
		}
	}
	recall := float64(flagged) / float64(jiraTotal)
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E01", Metric: "keyword severity heuristic flags critical bugs",
		Paper:    "keyword approach [35] used for GitHub severities",
		Measured: report.Pct(recall) + " of JIRA-critical bugs flagged critical-band",
		Holds:    recall > 0.25,
	})

	// Burst near releases.
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	var releases []time.Time
	for _, spec := range corpus.DefaultSpecs() {
		releases = append(releases, spec.Releases...)
	}
	burst := full.ReleaseBurst(releases, 45*24*time.Hour)
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E01", Metric: "bugs created within 45d after a release",
		Paper:    "bursts observed",
		Measured: report.Pct(burst),
		Holds:    burst > 0.5,
	})
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// E02Determinism reproduces §III: determinism share per controller.
func (s *Suite) E02Determinism() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E02", Title: "§III bug type: determinism per controller"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	det := full.DeterminismByController()
	wants := map[tracker.Controller]float64{
		tracker.FAUCET: 0.96, tracker.ONOS: 0.94, tracker.CORD: 0.94,
	}
	tbl := &report.Table{Title: "Deterministic bug share (§III)",
		Headers: []string{"controller", "paper", "measured"}}
	for _, ctl := range controllerOrder {
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E02", Metric: ctl.String() + " deterministic",
			Paper:    report.Pct(wants[ctl]),
			Measured: report.Pct(det[ctl]),
			Holds:    within(det[ctl], wants[ctl], 0.05),
		})
		_ = tbl.AddRow(ctl.String(), report.Pct(wants[ctl]), report.Pct(det[ctl]))
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// E03Symptoms reproduces §IV: symptom distribution and the byzantine
// breakdown.
func (s *Suite) E03Symptoms() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E03", Title: "§IV operational impact: symptom distribution"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	wants := map[taxonomy.Symptom]float64{
		taxonomy.SymptomByzantine:    0.6133,
		taxonomy.SymptomFailStop:     0.20,
		taxonomy.SymptomErrorMessage: 0.147,
		taxonomy.SymptomPerformance:  0.04,
	}
	tbl := &report.Table{Title: "Symptoms (§IV)", Headers: []string{"symptom", "paper", "measured"}}
	for _, sh := range full.Distribution(taxonomy.DimSymptom) {
		sym, err := taxonomy.ParseSymptom(sh.Category)
		if err != nil {
			continue
		}
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E03", Metric: sh.Category,
			Paper:    report.Pct(wants[sym]),
			Measured: report.Pct(sh.Fraction),
			Holds:    within(sh.Fraction, wants[sym], 0.05),
		})
		_ = tbl.AddRow(sh.Category, report.Pct(wants[sym]), report.Pct(sh.Fraction))
	}
	res.Tables = append(res.Tables, tbl)

	bz := full.ByzantineBreakdown()
	bzWants := map[taxonomy.ByzantineMode]float64{
		taxonomy.GrayFailure:       0.5217,
		taxonomy.Stalling:          0.2065,
		taxonomy.IncorrectBehavior: 0.2718,
	}
	bzTbl := &report.Table{Title: "Byzantine failure modes (§IV)",
		Headers: []string{"mode", "paper", "measured"}}
	for _, m := range taxonomy.ByzantineModes() {
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E03", Metric: "byzantine/" + m.String(),
			Paper:    report.Pct(bzWants[m]),
			Measured: report.Pct(bz[m]),
			Holds:    within(bz[m], bzWants[m], 0.04),
		})
		_ = bzTbl.AddRow(m.String(), report.Pct(bzWants[m]), report.Pct(bz[m]))
	}
	res.Tables = append(res.Tables, bzTbl)
	return res, nil
}

// E04RootCauseBySymptom reproduces Figure 2: root causes of fail-stop
// and performance bugs per controller.
func (s *Suite) E04RootCauseBySymptom() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E04", Title: "Figure 2: root causes by symptom and controller"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Root causes of fail-stop and performance bugs (Figure 2)",
		Headers: []string{"controller", "symptom", "cause", "share"}}
	for _, ctl := range controllerOrder {
		for _, sym := range []taxonomy.Symptom{taxonomy.SymptomFailStop, taxonomy.SymptomPerformance} {
			dist, err := full.CauseBySymptom(ctl, sym)
			if err != nil {
				return res, err
			}
			for _, sh := range dist {
				if sh.Count == 0 {
					continue
				}
				_ = tbl.AddRow(ctl.String(), sym.String(), sh.Category, report.Pct(sh.Fraction))
			}
		}
	}
	res.Tables = append(res.Tables, tbl)

	// Checks: FAUCET fail-stop from human+ecosystem; ONOS/CORD
	// fail-stop from controller logic; CORD more missing-logic than
	// ONOS among fail-stop bugs.
	share := func(ctl tracker.Controller, sym taxonomy.Symptom, pred func(taxonomy.RootCause) bool) (float64, error) {
		dist, err := full.CauseBySymptom(ctl, sym)
		if err != nil {
			return 0, err
		}
		var total float64
		for _, sh := range dist {
			cause, err := taxonomy.ParseRootCause(sh.Category)
			if err != nil {
				continue
			}
			if pred(cause) {
				total += sh.Fraction
			}
		}
		return total, nil
	}
	isHumanEco := func(c taxonomy.RootCause) bool { return !c.IsControllerLogic() }
	isLogic := func(c taxonomy.RootCause) bool { return c.IsControllerLogic() }
	isMissing := func(c taxonomy.RootCause) bool { return c == taxonomy.CauseMissingLogic }

	fhe, err := share(tracker.FAUCET, taxonomy.SymptomFailStop, isHumanEco)
	if err != nil {
		return res, err
	}
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E04", Metric: "FAUCET fail-stop from human+ecosystem",
		Paper: "majority", Measured: report.Pct(fhe), Holds: fhe > 0.5,
	})
	for _, ctl := range []tracker.Controller{tracker.ONOS, tracker.CORD} {
		logic, err := share(ctl, taxonomy.SymptomFailStop, isLogic)
		if err != nil {
			return res, err
		}
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E04", Metric: ctl.String() + " fail-stop from controller logic",
			Paper: "majority", Measured: report.Pct(logic), Holds: logic > 0.5,
		})
	}
	cordMissing, err := share(tracker.CORD, taxonomy.SymptomFailStop, isMissing)
	if err != nil {
		return res, err
	}
	onosMissing, err := share(tracker.ONOS, taxonomy.SymptomFailStop, isMissing)
	if err != nil {
		return res, err
	}
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E04", Metric: "CORD fail-stop missing-logic vs ONOS",
		Paper:    "CORD > ONOS",
		Measured: fmt.Sprintf("%s vs %s", report.Pct(cordMissing), report.Pct(onosMissing)),
		Holds:    cordMissing > onosMissing,
	})
	return res, nil
}

// E05Triggers reproduces §V-A: the trigger distribution.
func (s *Suite) E05Triggers() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E05", Title: "§V-A bug triggers"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	wants := map[taxonomy.Trigger]float64{
		taxonomy.TriggerConfiguration:  0.388,
		taxonomy.TriggerExternalCall:   0.33,
		taxonomy.TriggerNetworkEvent:   0.198,
		taxonomy.TriggerHardwareReboot: 0.084,
	}
	tbl := &report.Table{Title: "Triggers (§V-A)", Headers: []string{"trigger", "paper", "measured"}}
	for _, sh := range full.Distribution(taxonomy.DimTrigger) {
		trig, err := taxonomy.ParseTrigger(sh.Category)
		if err != nil {
			continue
		}
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E05", Metric: sh.Category,
			Paper:    report.Pct(wants[trig]),
			Measured: report.Pct(sh.Fraction),
			Holds:    within(sh.Fraction, wants[trig], 0.05),
		})
		_ = tbl.AddRow(sh.Category, report.Pct(wants[trig]), report.Pct(sh.Fraction))
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// E06ConfigSubcategories reproduces Table III.
func (s *Suite) E06ConfigSubcategories() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E06", Title: "Table III: configuration sub-categories"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	wants := map[tracker.Controller]map[taxonomy.ConfigScope]float64{
		tracker.FAUCET: {taxonomy.ConfigController: 0.529, taxonomy.ConfigDataPlane: 0.117, taxonomy.ConfigThirdParty: 0.354},
		tracker.ONOS:   {taxonomy.ConfigController: 0.60, taxonomy.ConfigDataPlane: 0.15, taxonomy.ConfigThirdParty: 0.25},
		tracker.CORD:   {taxonomy.ConfigController: 0.642, taxonomy.ConfigDataPlane: 0.142, taxonomy.ConfigThirdParty: 0.216},
	}
	tbl := &report.Table{Title: "Config sub-categories (Table III)",
		Headers: []string{"controller", "scope", "paper", "measured"}}
	for _, ctl := range controllerOrder {
		got, err := full.ConfigSubcategories(ctl)
		if err != nil {
			return res, err
		}
		for _, scope := range taxonomy.ConfigScopes() {
			want := wants[ctl][scope]
			res.Checks = append(res.Checks, report.Check{
				Artifact: "E06", Metric: ctl.String() + " " + scope.String(),
				Paper:    report.Pct(want),
				Measured: report.Pct(got[scope]),
				Holds:    within(got[scope], want, 0.09),
			})
			_ = tbl.AddRow(ctl.String(), scope.String(), report.Pct(want), report.Pct(got[scope]))
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// E07FixAnalysis reproduces §V-A's fix findings.
func (s *Suite) E07FixAnalysis() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E07", Title: "§V-A fixes: config and compatibility shares"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	fa, err := full.AnalyzeFixes()
	if err != nil {
		return res, err
	}
	res.Checks = append(res.Checks,
		report.Check{
			Artifact: "E07", Metric: "config bugs fixed by config change",
			Paper: "25.0%", Measured: report.Pct(fa.ConfigBugsFixedByConfig),
			Holds: within(fa.ConfigBugsFixedByConfig, 0.25, 0.06),
		},
		report.Check{
			Artifact: "E07", Metric: "external-call compatibility/upgrade fixes",
			Paper: "41.4%", Measured: report.Pct(fa.ExternalCompatibilityFixes),
			Holds: within(fa.ExternalCompatibilityFixes, 0.414, 0.07),
		},
		report.Check{
			Artifact: "E07", Metric: "network-event bugs fixed by adding logic",
			Paper: "majority", Measured: report.Pct(fa.NetworkEventAddLogic),
			Holds: fa.NetworkEventAddLogic > 0.5,
		},
	)
	tbl := &report.Table{Title: "Fix analysis (§V-A)", Headers: []string{"metric", "paper", "measured"}}
	_ = tbl.AddRow("config fixed by config", "25.0%", report.Pct(fa.ConfigBugsFixedByConfig))
	_ = tbl.AddRow("external compat fixes", "41.4%", report.Pct(fa.ExternalCompatibilityFixes))
	_ = tbl.AddRow("network-event add-logic", "majority", report.Pct(fa.NetworkEventAddLogic))
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// E08ResolutionCDF reproduces Figure 7: resolution-time CDFs per
// trigger for ONOS and CORD (FAUCET's GitHub data has no timestamps).
func (s *Suite) E08ResolutionCDF() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E08", Title: "Figure 7: resolution-time CDFs per trigger"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	var series []report.Series
	p90 := map[string]float64{}
	for _, ctl := range []tracker.Controller{tracker.ONOS, tracker.CORD} {
		for _, trig := range taxonomy.Triggers() {
			cdf, err := full.ResolutionCDF(ctl, trig)
			if err != nil {
				return res, fmt.Errorf("sdnbugs: %s/%s: %w", ctl, trig, err)
			}
			name := fmt.Sprintf("%s/%s", ctl, trig)
			series = append(series, report.CDFSeries(name, cdf, 12))
			p90[name] = cdf.Quantile(0.9)
		}
	}
	res.Tables = append(res.Tables, report.SeriesTable("Resolution time CDFs, days (Figure 7)", series))
	pctTbl := &report.Table{Title: "Resolution-time percentiles, days (Figure 7)",
		Headers: []string{"controller/trigger", "P50", "P90", "max"}}
	for _, ctl := range []tracker.Controller{tracker.ONOS, tracker.CORD} {
		for _, trig := range taxonomy.Triggers() {
			cdf, err := full.ResolutionCDF(ctl, trig)
			if err != nil {
				return res, err
			}
			_ = pctTbl.AddRow(fmt.Sprintf("%s/%s", ctl, trig),
				report.F2(cdf.Quantile(0.5)), report.F2(cdf.Quantile(0.9)), report.F2(cdf.Max()))
		}
	}
	res.Tables = append(res.Tables, pctTbl)

	checks := []struct {
		metric, a, b string
	}{
		{"ONOS config tail > CORD config tail", "ONOS/configuration", "CORD/configuration"},
		{"ONOS external tail > CORD external tail", "ONOS/external-call", "CORD/external-call"},
		{"ONOS network tail > CORD network tail", "ONOS/network-event", "CORD/network-event"},
		{"CORD reboot tail > ONOS reboot tail", "CORD/hardware-reboot", "ONOS/hardware-reboot"},
	}
	for _, c := range checks {
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E08", Metric: c.metric,
			Paper:    "ordering holds",
			Measured: fmt.Sprintf("P90 %.0fd vs %.0fd", p90[c.a], p90[c.b]),
			Holds:    p90[c.a] > p90[c.b],
		})
	}
	// Configuration has the longest tail overall (per controller).
	for _, ctl := range []string{"ONOS", "CORD"} {
		conf := p90[ctl+"/configuration"]
		worst := true
		for _, other := range []string{"/external-call", "/network-event"} {
			if p90[ctl+other] > conf {
				worst = false
			}
		}
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E08", Metric: ctl + " configuration is the slowest-resolving trigger",
			Paper:    "longest tail",
			Measured: fmt.Sprintf("P90 %.0fd", conf),
			Holds:    worst,
		})
	}
	return res, nil
}

// E09NLPValidation reproduces §II-C's model validation.
func (s *Suite) E09NLPValidation() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E09", Title: "§II-C NLP validation: SVM vs DT vs AdaBoost vs PCA"}
	val, err := s.Validator()
	if err != nil {
		return res, err
	}
	results, err := val.ValidateRepeated(study.PipelineConfig{Seed: s.Seed, Workers: s.Workers}, 3)
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Classifier accuracy by dimension (§II-C)",
		Headers: []string{"dimension", "svm", "svm-no-norm", "dtree", "adaboost", "pca+svm", "best"}}
	byDim := map[taxonomy.Dimension]study.ValidationResult{}
	for _, r := range results {
		byDim[r.Dimension] = r
		_ = tbl.AddRow(r.Dimension.String(),
			report.Pct(r.Accuracies[study.ModelSVM]),
			report.Pct(r.Accuracies[study.ModelSVMNoNorm]),
			report.Pct(r.Accuracies[study.ModelDTree]),
			report.Pct(r.Accuracies[study.ModelAdaBoost]),
			report.Pct(r.Accuracies[study.ModelPCASVM]),
			string(r.Best))
	}
	res.Tables = append(res.Tables, tbl)

	typeAcc := byDim[taxonomy.DimType].Accuracies[study.ModelSVM]
	symAcc := byDim[taxonomy.DimSymptom].Accuracies[study.ModelSVM]
	fixAcc := byDim[taxonomy.DimFix].Accuracies[study.ModelSVM]
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E09", Metric: "SVM bug-type accuracy",
			Paper: "≈96%", Measured: report.Pct(typeAcc), Holds: typeAcc >= 0.90},
		report.Check{Artifact: "E09", Metric: "SVM symptom accuracy",
			Paper: "≈86%", Measured: report.Pct(symAcc), Holds: symAcc >= 0.72 && symAcc <= 0.97},
		report.Check{Artifact: "E09", Metric: "fix prediction is poor",
			Paper: "no accurate model found", Measured: report.Pct(fixAcc), Holds: fixAcc < symAcc-0.2},
		report.Check{Artifact: "E09", Metric: "normalization helps the SVM",
			Paper: "SVM with normalization best",
			Measured: fmt.Sprintf("sym %s vs %s unnormalized", report.Pct(symAcc),
				report.Pct(byDim[taxonomy.DimSymptom].Accuracies[study.ModelSVMNoNorm])),
			Holds: symAcc >= byDim[taxonomy.DimSymptom].Accuracies[study.ModelSVMNoNorm]},
	)
	return res, nil
}

// E10CorrelationCDF reproduces Figure 12: the bug-category correlation
// CDF and its strong tail.
func (s *Suite) E10CorrelationCDF() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E10", Title: "Figure 12: bug-category correlation CDF"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	cdf, err := full.CorrelationCDF()
	if err != nil {
		return res, err
	}
	res.Tables = append(res.Tables,
		report.SeriesTable("CDF of |phi| across category pairs (Figure 12)",
			[]report.Series{report.CDFSeries("all-pairs", cdf, 20)}))

	strong := full.StrongFraction(0.4)
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E10", Metric: "strongly correlated pair share",
		Paper:    "6.28% strong tail",
		Measured: report.Pct(strong),
		Holds:    strong > 0 && strong < 0.2,
	})

	// The §VII-B shortcut pairs exist in the strong set.
	pairs := full.StrongPairs(0.2)
	pairTbl := &report.Table{Title: "Strongest category pairs (§VII-B)",
		Headers: []string{"tag A", "tag B", "phi", "lift"}}
	for i, p := range pairs {
		if i >= 12 {
			break
		}
		_ = pairTbl.AddRow(p.TagA, p.TagB, report.F2(p.Phi), report.F2(p.Lift))
	}
	res.Tables = append(res.Tables, pairTbl)

	hasPair := func(a, b string) bool {
		for _, p := range pairs {
			if (p.TagA == a && p.TagB == b) || (p.TagA == b && p.TagB == a) {
				return true
			}
		}
		return false
	}
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E10", Metric: "third-party trigger ↔ add-compatibility fix",
			Paper: "highly correlated", Measured: fmt.Sprintf("in top pairs: %v",
				hasPair("external-call", "add-compatibility")),
			Holds: hasPair("external-call", "add-compatibility")},
		report.Check{Artifact: "E10", Metric: "concurrency ↔ add-synchronization",
			Paper: "correlated (fix shortcut)", Measured: fmt.Sprintf("in top pairs: %v",
				hasPair("concurrency", "add-synchronization")),
			Holds: hasPair("concurrency", "add-synchronization")},
	)
	return res, nil
}
