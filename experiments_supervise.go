package sdnbugs

import (
	"fmt"

	"sdnbugs/internal/engine"
	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/report"
)

// registerSuperviseExperiments registers the self-healing-runtime
// experiment (E22) after the robust-mining experiment.
func (s *Suite) registerSuperviseExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E22", "self-healing controller under a sustained fault-injection campaign",
		engine.KindExperiment, s.E22SelfHealingCampaign)
}

// e22CheckpointEvery is the checkpoint cadence of the supervised run
// under test.
const e22CheckpointEvery = 64

// E22SelfHealingCampaign is the supervisor experiment: the full fault
// suite armed at once over a seed-deterministic schedule of
// management events, traffic, poison inputs, and wire-level faults,
// run three ways — supervised with checkpoints, supervised with cold
// replay only, and the fail-fast watchdog baseline. The supervisor
// (internal/supervise) converts the taxonomy's failure symptoms into
// bounded recovery: availability strictly above the baseline, zero
// lost events, shedding limited to deterministic poison classes, wire
// faults absorbed instead of fatal, and byte-identical metrics across
// same-seed runs.
func (s *Suite) E22SelfHealingCampaign() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E22",
		Title: "self-healing controller under a sustained fault-injection campaign"}

	supCkpt, err := faultlab.RunCampaign(faultlab.CampaignConfig{
		Seed: s.Seed, Supervised: true, CheckpointEvery: e22CheckpointEvery})
	if err != nil {
		return res, fmt.Errorf("sdnbugs: supervised campaign: %w", err)
	}
	supCkpt2, err := faultlab.RunCampaign(faultlab.CampaignConfig{
		Seed: s.Seed, Supervised: true, CheckpointEvery: e22CheckpointEvery})
	if err != nil {
		return res, fmt.Errorf("sdnbugs: supervised campaign rerun: %w", err)
	}
	supCold, err := faultlab.RunCampaign(faultlab.CampaignConfig{
		Seed: s.Seed, Supervised: true})
	if err != nil {
		return res, fmt.Errorf("sdnbugs: cold-replay campaign: %w", err)
	}
	unsup, err := faultlab.RunCampaign(faultlab.CampaignConfig{Seed: s.Seed})
	if err != nil {
		return res, fmt.Errorf("sdnbugs: baseline campaign: %w", err)
	}

	allowed := make(map[string]bool)
	for _, c := range faultlab.DeterministicPoisonClasses() {
		allowed[c] = true
	}
	shedOK := true
	for _, c := range supCkpt.ShedClasses {
		if !allowed[c] {
			shedOK = false
		}
	}
	identical := supCkpt.Fingerprint() == supCkpt2.Fingerprint()

	res.Checks = append(res.Checks,
		report.Check{Artifact: "E22", Metric: "supervised availability above baseline",
			Paper: "supervision converts outages into bounded recovery",
			Measured: fmt.Sprintf("supervised %.4f vs unsupervised %.4f",
				supCkpt.EventAvailability(), unsup.EventAvailability()),
			Holds: supCkpt.EventAvailability() > unsup.EventAvailability()},
		report.Check{Artifact: "E22", Metric: "zero events lost under supervision",
			Paper: "fail-stop events are retried after restart, never dropped silently",
			Measured: fmt.Sprintf("supervised lost %d vs unsupervised lost %d",
				supCkpt.Lost, unsup.Lost),
			Holds: supCkpt.Lost == 0 && unsup.Lost > 0},
		report.Check{Artifact: "E22", Metric: "checkpoint restore cheaper than cold replay",
			Paper: "restore cost scales with state size, not log length",
			Measured: fmt.Sprintf("checkpoint %.1f ticks/restore vs cold %.1f",
				supCkpt.MeanCheckpointRestoreTicks(), supCold.MeanColdRestoreTicks()),
			Holds: supCkpt.CheckpointRestores > 0 && supCold.ColdRestores > 0 &&
				supCkpt.MeanCheckpointRestoreTicks() < supCold.MeanColdRestoreTicks()},
		report.Check{Artifact: "E22", Metric: "degradation sheds only deterministic poison classes",
			Paper: "graceful degradation is surgical: healthy siblings keep flowing",
			Measured: fmt.Sprintf("shed %v (degradations %d)",
				supCkpt.ShedClasses, supCkpt.Degradations),
			Holds: shedOK && supCkpt.Degradations > 0},
		report.Check{Artifact: "E22", Metric: "wire faults absorbed, never fatal",
			Paper: "malformed frames and dropped connections must not kill the controller",
			Measured: fmt.Sprintf("supervised: %d faults, %d kills, final %s; baseline kills %d",
				supCkpt.WireFaults, supCkpt.WireKills, supCkpt.FinalState, unsup.WireKills),
			Holds: supCkpt.WireFaults > 0 && supCkpt.WireKills == 0 &&
				supCkpt.FinalState == "running" && unsup.WireKills > 0},
		report.Check{Artifact: "E22", Metric: "divergence spot-checks mask byzantine failures",
			Paper: "silent broadcast loss is caught and degraded away",
			Measured: fmt.Sprintf("broadcast failures: supervised %d/%d vs unsupervised %d/%d",
				supCkpt.BroadcastFailures, supCkpt.BroadcastProbes,
				unsup.BroadcastFailures, unsup.BroadcastProbes),
			Holds: supCkpt.BroadcastProbes > 0 &&
				supCkpt.BroadcastFailures*10 < unsup.BroadcastFailures},
		report.Check{Artifact: "E22", Metric: "byte-identical metrics at a fixed seed",
			Paper: "logical time makes sustained campaigns reproducible",
			Measured: fmt.Sprintf("fingerprints identical=%v, %d checkpoints taken",
				identical, supCkpt.Checkpoints),
			Holds: identical && supCkpt.Checkpoints > 0},
	)

	tbl := &report.Table{Title: "Sustained fault-injection campaign (E22)",
		Headers: []string{"metric", "supervised+ckpt", "supervised cold", "unsupervised"}}
	row := func(name string, f func(faultlab.CampaignResult) string) {
		_ = tbl.AddRow(name, f(supCkpt), f(supCold), f(unsup))
	}
	row("events offered", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Offered) })
	row("events processed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Processed) })
	row("events healed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Healed) })
	row("events shed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Shed) })
	row("events lost", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Lost) })
	row("event availability", func(r faultlab.CampaignResult) string {
		return fmt.Sprintf("%.4f", r.EventAvailability())
	})
	row("incidents", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Incidents) })
	row("restarts", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", r.Restarts) })
	row("checkpoint restores (mean ticks)", func(r faultlab.CampaignResult) string {
		return fmt.Sprintf("%d (%.1f)", r.CheckpointRestores, r.MeanCheckpointRestoreTicks())
	})
	row("cold restores (mean ticks)", func(r faultlab.CampaignResult) string {
		return fmt.Sprintf("%d (%.1f)", r.ColdRestores, r.MeanColdRestoreTicks())
	})
	row("classes shed", func(r faultlab.CampaignResult) string { return fmt.Sprintf("%d", len(r.ShedClasses)) })
	row("wire faults / kills", func(r faultlab.CampaignResult) string {
		return fmt.Sprintf("%d / %d", r.WireFaults, r.WireKills)
	})
	row("broadcast failures", func(r faultlab.CampaignResult) string {
		return fmt.Sprintf("%d / %d", r.BroadcastFailures, r.BroadcastProbes)
	})
	row("final state", func(r faultlab.CampaignResult) string { return r.FinalState })
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
