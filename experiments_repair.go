package sdnbugs

import (
	"bytes"
	"fmt"

	"sdnbugs/internal/engine"
	"sdnbugs/internal/repair"
	"sdnbugs/internal/report"
)

// registerRepairExperiments registers the automatic repair loop
// experiment (E25) after the performance fuzzer it builds on.
func (s *Suite) registerRepairExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E25", "automatic repair loop: synthesize, validate, and lift sheds",
		engine.KindExperiment, s.E25AutomaticRepair)
}

// E25AutomaticRepair closes the mine → classify → fix circle: when
// the self-healing supervisor sheds a deterministic poison class, the
// repair loop (internal/repair) synthesizes candidate flow-rule
// programs from a small repair grammar, ranks them with the perfuzz
// failure-model learner, validates survivors against the class's
// ddmin minimal reproducer plus the full fault-injection campaign,
// and lifts the shed only when a candidate passes everything. At
// least one taxonomy category must repair end-to-end, availability
// after repair must exceed shed-mode availability, no
// previously-passing campaign check may regress, and the NetRep-style
// repair report is byte-identical at a fixed seed.
func (s *Suite) E25AutomaticRepair() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E25",
		Title: "automatic repair loop: synthesize, validate, and lift sheds"}

	cfg := repair.Config{Seed: s.Seed}
	rep, err := repair.Run(cfg)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: repair run: %w", err)
	}
	rep2, err := repair.Run(cfg)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: repair rerun: %w", err)
	}
	js1, err := rep.JSON()
	if err != nil {
		return res, fmt.Errorf("sdnbugs: repair report: %w", err)
	}
	js2, err := rep2.JSON()
	if err != nil {
		return res, fmt.Errorf("sdnbugs: repair report rerun: %w", err)
	}

	repairedCats, attemptedCats := 0, len(rep.Rates)
	for _, rate := range rep.Rates {
		if rate.Repaired > 0 {
			repairedCats++
		}
	}
	// Every lifted shed must correspond to a repaired class and none
	// may re-shed in the post-repair epoch.
	liftsHold := len(rep.Lifted) > 0 && len(rep.ReShed) == 0
	// Unrepaired classes stay shed — graceful degradation is the floor
	// the repair loop can never fall through.
	unrepairedStayShed := true
	for _, cr := range rep.Classes {
		if cr.Repaired {
			continue
		}
		found := false
		for _, c := range rep.Epoch2.ShedClasses {
			if c == cr.Class {
				found = true
			}
		}
		if !found {
			unrepairedStayShed = false
		}
	}

	res.Checks = append(res.Checks,
		report.Check{Artifact: "E25", Metric: "at least one taxonomy category repairs end-to-end",
			Paper: "sketch-based program repair fixes the trigger classes whose poison is an input, not the world",
			Measured: fmt.Sprintf("%d/%d shed categories repaired; lifted %v",
				repairedCats, attemptedCats, rep.Lifted),
			Holds: repairedCats >= 1 && liftsHold},
		report.Check{Artifact: "E25", Metric: "availability after repair exceeds shed-mode availability",
			Paper: "a validated repair re-admits traffic a shed could only drop",
			Measured: fmt.Sprintf("epoch1 (shed mode) %.4f -> epoch2 (repaired) %.4f on the identical schedule",
				rep.Epoch1.Availability, rep.Epoch2.Availability),
			Holds: rep.Epoch2.Availability > rep.Epoch1.Availability},
		report.Check{Artifact: "E25", Metric: "no previously-passing campaign check regresses",
			Paper: "the full-campaign validator rejects repairs that fix one class by breaking another",
			Measured: fmt.Sprintf("composed program (%d rules): regressions %v, shed %v",
				rep.Final.ProgramRules, rep.Final.Regressions, rep.Final.ShedClasses),
			Holds: len(rep.Final.Regressions) == 0},
		report.Check{Artifact: "E25", Metric: "unrepairable classes stay shed",
			Paper: "no grammar production can repair a drifted environment or rebooting hardware from the event path",
			Measured: fmt.Sprintf("epoch-2 shed set %v; re-shed after lift %v",
				rep.Epoch2.ShedClasses, rep.ReShed),
			Holds: unrepairedStayShed},
		report.Check{Artifact: "E25", Metric: "byte-identical repair reports at a fixed seed",
			Paper:    "the repair loop is reproducible from its seed",
			Measured: fmt.Sprintf("%d-byte reports, identical=%v", len(js1), bytes.Equal(js1, js2)),
			Holds:    bytes.Equal(js1, js2)},
	)

	rateTbl := &report.Table{Title: "Repair rate by taxonomy trigger category (E25)",
		Headers: []string{"category", "classes shed", "repaired", "repair rate"}}
	for _, rate := range rep.Rates {
		_ = rateTbl.AddRow(rate.Category, fmt.Sprintf("%d", rate.Shed),
			fmt.Sprintf("%d", rate.Repaired), fmt.Sprintf("%.2f", rate.Rate))
	}
	res.Tables = append(res.Tables, rateTbl)

	classTbl := &report.Table{Title: "Per-class repair outcomes (E25)",
		Headers: []string{"class", "candidates", "validated", "reproducer len", "outcome", "winning patch"}}
	for _, cr := range rep.Classes {
		validated := 0
		for _, a := range cr.Attempts {
			if a.Outcome == "repaired" || a.Outcome == "rejected-campaign" || a.Outcome == "rejected-reproducer" {
				validated++
			}
		}
		outcome := "stays shed"
		patch := "—"
		if cr.Repaired {
			outcome = "repaired + lifted"
			patch = cr.Patch
		}
		_ = classTbl.AddRow(cr.Class, fmt.Sprintf("%d", cr.Candidates),
			fmt.Sprintf("%d", validated), fmt.Sprintf("%d", cr.ReproducerLen), outcome, patch)
	}
	res.Tables = append(res.Tables, classTbl)
	return res, nil
}
