// Package report renders the study's tables and figure series as
// aligned ASCII tables and CSV — the output layer shared by the CLI
// tools and the benchmark harness that regenerates each of the paper's
// artifacts.
package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sdnbugs/internal/stats"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// ErrShape is returned when a row's width differs from the header's.
var ErrShape = errors.New("report: row width mismatch")

// AddRow appends a row, validating its width.
func (t *Table) AddRow(cells ...string) error {
	if len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		return fmt.Errorf("%w: %d cells vs %d headers", ErrShape, len(cells), len(t.Headers))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("## " + t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		b.WriteString(strings.Repeat("-", total) + "\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderString renders the table to a string.
func (t *Table) RenderString() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := io.WriteString(w, strings.Join(out, ",")+"\n")
		return err
	}
	if len(t.Headers) > 0 {
		if err := writeLine(t.Headers); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string {
	return strconv.FormatFloat(f*100, 'f', 1, 64) + "%"
}

// F2 formats a float with two decimals.
func F2(f float64) string {
	return strconv.FormatFloat(f, 'f', 2, 64)
}

// Series is a named (x, y) curve, e.g. one CDF of Figure 7.
type Series struct {
	Name   string
	Points []stats.Point
}

// SeriesTable lays out multiple series as a long-format table
// (series, x, y) ready for plotting.
func SeriesTable(title string, series []Series) *Table {
	t := &Table{Title: title, Headers: []string{"series", "x", "y"}}
	for _, s := range series {
		for _, p := range s.Points {
			_ = t.AddRow(s.Name, F2(p.X), F2(p.Y))
		}
	}
	return t
}

// CDFSeries samples an ECDF into a plottable series.
func CDFSeries(name string, e *stats.ECDF, points int) Series {
	return Series{Name: name, Points: e.Points(points)}
}

// Check is one paper-vs-measured comparison row for EXPERIMENTS.md.
type Check struct {
	Artifact string
	Metric   string
	Paper    string
	Measured string
	// Holds reports whether the measured value preserves the paper's
	// claim (shape, ordering, or value within tolerance).
	Holds bool
}

// ChecksTable renders comparison rows.
func ChecksTable(title string, checks []Check) *Table {
	t := &Table{Title: title, Headers: []string{"artifact", "metric", "paper", "measured", "holds"}}
	for _, c := range checks {
		holds := "yes"
		if !c.Holds {
			holds = "NO"
		}
		_ = t.AddRow(c.Artifact, c.Metric, c.Paper, c.Measured, holds)
	}
	return t
}
