package report

import (
	"errors"
	"strings"
	"testing"

	"sdnbugs/internal/stats"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"name", "value"}}
	if err := tbl.AddRow("alpha", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("b", "22222"); err != nil {
		t.Fatal(err)
	}
	out := tbl.RenderString()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "22222") {
		t.Errorf("render incomplete:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestAddRowShape(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	if err := tbl.AddRow("only-one"); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"name", "note"}}
	_ = tbl.AddRow("x", "plain")
	_ = tbl.AddRow("y", `with,comma and "quote"`)
	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "name,note\n") {
		t.Error("missing header line")
	}
	if !strings.Contains(got, `"with,comma and ""quote"""`) {
		t.Errorf("quoting wrong: %s", got)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.6133) != "61.3%" {
		t.Errorf("Pct = %s", Pct(0.6133))
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2 = %s", F2(1.005))
	}
}

func TestSeriesTableAndCDF(t *testing.T) {
	e, err := stats.NewECDF([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	s := CDFSeries("onos-config", e, 5)
	if s.Name != "onos-config" || len(s.Points) != 5 {
		t.Fatalf("series: %+v", s)
	}
	tbl := SeriesTable("figure7", []Series{s})
	if len(tbl.Rows) != 5 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "onos-config" {
		t.Errorf("series column wrong: %v", tbl.Rows[0])
	}
}

func TestChecksTable(t *testing.T) {
	tbl := ChecksTable("exp", []Check{
		{Artifact: "E2", Metric: "det", Paper: "96%", Measured: "97.6%", Holds: true},
		{Artifact: "E9", Metric: "fix", Paper: "poor", Measured: "34%", Holds: false},
	})
	out := tbl.RenderString()
	if !strings.Contains(out, "yes") || !strings.Contains(out, "NO") {
		t.Errorf("holds column wrong:\n%s", out)
	}
}
