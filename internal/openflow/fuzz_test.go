package openflow

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// seedFrames builds a corpus of valid frames (one per message type)
// plus known-nasty shapes: truncated headers, lying length fields, and
// header-declared action counts with no bytes behind them.
func seedFrames(t interface{ Fatalf(string, ...any) }) [][]byte {
	msgs := []Message{
		&Hello{},
		&ErrorMsg{ErrType: 1, Code: 2, Data: []byte("bad")},
		&EchoRequest{Data: []byte{1, 2, 3}},
		&EchoReply{Data: []byte{4, 5}},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 7, NumPorts: 4},
		&PacketIn{DatapathID: 1, InPort: 2, Reason: 0, Data: []byte{0xde, 0xad}},
		&FlowRemoved{DatapathID: 1, Reason: 1, Match: Match{EthDst: 9}},
		&PortStatus{DatapathID: 1, Port: 3, Reason: 2, Up: true},
		&PacketOut{DatapathID: 1, InPort: 2,
			Actions: []Action{{Type: ActionOutput, Port: PortFlood}}, Data: []byte{1}},
		&FlowMod{DatapathID: 1, Command: FlowAdd, Priority: 10,
			Match:   Match{MatchInPort: true, InPort: 1, EthDst: 42},
			Actions: []Action{{Type: ActionOutput, Port: 2}}},
		&RoleRequest{Role: RoleMaster, GenerationID: 3},
		&RoleReply{Role: RoleSlave, GenerationID: 4},
	}
	var frames [][]byte
	for _, m := range msgs {
		frame, err := Encode(m, 77)
		if err != nil {
			t.Fatalf("encode %v: %v", m.Type(), err)
		}
		frames = append(frames, frame)
		if len(frame) > headerLen {
			frames = append(frames, frame[:len(frame)/2])
		}
	}
	// Header whose declared length is shorter than the header itself.
	lying := []byte{Version, byte(TypeHello), 0, 4, 0, 0, 0, 1}
	// Packet-out declaring 65535 actions with an empty tail.
	bomb := make([]byte, headerLen+14)
	bomb[0], bomb[1] = Version, byte(TypePacketOut)
	binary.BigEndian.PutUint16(bomb[2:4], uint16(len(bomb)))
	binary.BigEndian.PutUint64(bomb[8:16], 1)
	binary.BigEndian.PutUint32(bomb[16:20], 1)
	binary.BigEndian.PutUint16(bomb[20:22], 0xffff)
	return append(frames, lying, bomb, []byte{Version}, nil)
}

// FuzzDecodeMessage asserts the codec's contract under arbitrary
// bytes: never panic, never over-allocate from a lying length field,
// and round-trip whatever decodes cleanly.
func FuzzDecodeMessage(f *testing.F) {
	for _, frame := range seedFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, xid, rest, err := Decode(data)
		if err != nil {
			return
		}
		if msg == nil {
			t.Fatal("nil message with nil error")
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		// A cleanly decoded message must re-encode, and the re-encoded
		// frame must decode to the same type and xid (byte identity is
		// not required: encoding canonicalizes lengths).
		frame, err := Encode(msg, xid)
		if err != nil {
			t.Fatalf("re-encode %v: %v", msg.Type(), err)
		}
		msg2, xid2, rest2, err := Decode(frame)
		if err != nil {
			t.Fatalf("decode(encode(%v)): %v", msg.Type(), err)
		}
		if msg2.Type() != msg.Type() || xid2 != xid || len(rest2) != 0 {
			t.Fatalf("round trip changed %v/%d -> %v/%d (rest %d)",
				msg.Type(), xid, msg2.Type(), xid2, len(rest2))
		}
		// The hot-path encoder must agree with Encode byte-for-byte,
		// and its output must survive encode -> decode -> encode with
		// byte identity (the canonical form is a fixed point).
		appended, err := AppendEncode(nil, msg, xid)
		if err != nil {
			t.Fatalf("AppendEncode %v: %v", msg.Type(), err)
		}
		if !bytes.Equal(appended, frame) {
			t.Fatalf("AppendEncode diverged from Encode for %v", msg.Type())
		}
		again, err := AppendEncode(nil, msg2, xid2)
		if err != nil {
			t.Fatalf("AppendEncode(decoded) %v: %v", msg.Type(), err)
		}
		if !bytes.Equal(again, frame) {
			t.Fatalf("encode->decode->encode not byte-identical for %v:\n  %x\n  %x",
				msg.Type(), frame, again)
		}
		// The zero-copy codec must agree with the allocating decoder.
		zc := NewZeroCopyCodec()
		msg3, xid3, _, err := zc.Decode(frame)
		if err != nil {
			t.Fatalf("Codec.Decode(encode(%v)): %v", msg.Type(), err)
		}
		third, err := AppendEncode(nil, msg3, xid3)
		if err != nil {
			t.Fatalf("AppendEncode(codec-decoded) %v: %v", msg.Type(), err)
		}
		if !bytes.Equal(third, frame) {
			t.Fatalf("zero-copy decode changed %v on re-encode", msg.Type())
		}
	})
}

// TestFuzzSeedCorpus runs every seed frame through the fuzz property
// directly, so the corpus is exercised even in plain `go test` runs.
func TestFuzzSeedCorpus(t *testing.T) {
	for _, frame := range seedFrames(t) {
		msg, xid, _, err := Decode(frame)
		if err != nil {
			continue
		}
		out, err := Encode(msg, xid)
		if err != nil {
			t.Fatalf("re-encode %v: %v", msg.Type(), err)
		}
		if !bytes.Equal(out[:headerLen], frame[:headerLen]) {
			t.Fatalf("%v: header changed on round trip", msg.Type())
		}
	}
}
