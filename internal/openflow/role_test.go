package openflow

import (
	"encoding/binary"
	"testing"
)

func TestRoleRoundTrip(t *testing.T) {
	cases := []Message{
		&RoleRequest{Role: RoleNoChange, GenerationID: 0},
		&RoleRequest{Role: RoleMaster, GenerationID: 7},
		&RoleRequest{Role: RoleSlave, GenerationID: 1<<64 - 1},
		&RoleReply{Role: RoleEqual, GenerationID: 42},
		&RoleReply{Role: RoleMaster, GenerationID: 9},
	}
	for _, want := range cases {
		frame, err := Encode(want, 31)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, xid, rest, err := Decode(frame)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if xid != 31 || len(rest) != 0 {
			t.Fatalf("xid=%d rest=%d", xid, len(rest))
		}
		switch w := want.(type) {
		case *RoleRequest:
			g, ok := got.(*RoleRequest)
			if !ok || *g != *w {
				t.Fatalf("round trip: got %+v want %+v", got, w)
			}
		case *RoleReply:
			g, ok := got.(*RoleReply)
			if !ok || *g != *w {
				t.Fatalf("round trip: got %+v want %+v", got, w)
			}
		}
	}
}

func TestRoleTruncated(t *testing.T) {
	frame, err := Encode(&RoleRequest{Role: RoleMaster, GenerationID: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for cut := headerLen; cut < len(frame); cut++ {
		short := append([]byte(nil), frame[:cut]...)
		binary.BigEndian.PutUint16(short[2:4], uint16(cut))
		if _, _, _, err := Decode(short); err == nil {
			t.Fatalf("decoded role request truncated to %d bytes", cut)
		}
	}
}

func TestRoleCodecScratch(t *testing.T) {
	// The reusable Codec must index role types (24/25) without error —
	// a regression guard for the scratch array's size.
	c := NewCodec()
	frame, err := Encode(&RoleReply{Role: RoleMaster, GenerationID: 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		msg, xid, rest, err := c.Decode(frame)
		if err != nil {
			t.Fatalf("codec decode: %v", err)
		}
		r, ok := msg.(*RoleReply)
		if !ok || r.Role != RoleMaster || r.GenerationID != 6 || xid != 2 || len(rest) != 0 {
			t.Fatalf("codec decode: got %+v xid=%d", msg, xid)
		}
	}
}

func TestControllerRoleString(t *testing.T) {
	for role, want := range map[ControllerRole]string{
		RoleNoChange:      "nochange",
		RoleEqual:         "equal",
		RoleMaster:        "master",
		RoleSlave:         "slave",
		ControllerRole(9): "role-9",
	} {
		if got := role.String(); got != want {
			t.Fatalf("ControllerRole(%d).String() = %q, want %q", role, got, want)
		}
	}
}

// FuzzRoleCodec holds the role/election wire messages to the same
// contract as the rest of the codec: arbitrary bytes never panic, and
// whatever decodes as a role message re-encodes to an identical value.
func FuzzRoleCodec(f *testing.F) {
	for _, m := range []Message{
		&RoleRequest{Role: RoleMaster, GenerationID: 1},
		&RoleRequest{Role: RoleNoChange},
		&RoleReply{Role: RoleSlave, GenerationID: 1 << 40},
	} {
		frame, err := Encode(m, 5)
		if err != nil {
			f.Fatalf("encode: %v", err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-4])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, xid, _, err := Decode(data)
		if err != nil {
			return
		}
		switch msg.(type) {
		case *RoleRequest, *RoleReply:
		default:
			return
		}
		frame, err := Encode(msg, xid)
		if err != nil {
			t.Fatalf("re-encode %v: %v", msg.Type(), err)
		}
		msg2, xid2, _, err := Decode(frame)
		if err != nil {
			t.Fatalf("decode(encode(%v)): %v", msg.Type(), err)
		}
		if xid2 != xid {
			t.Fatalf("xid changed: %d -> %d", xid, xid2)
		}
		switch m := msg.(type) {
		case *RoleRequest:
			if g := msg2.(*RoleRequest); *g != *m {
				t.Fatalf("role request changed: %+v -> %+v", m, g)
			}
		case *RoleReply:
			if g := msg2.(*RoleReply); *g != *m {
				t.Fatalf("role reply changed: %+v -> %+v", m, g)
			}
		}
	})
}
