//go:build !race

package openflow

// Steady-state allocation gates for the hot codec tier. These run only
// without the race detector: -race instruments allocations and would
// make AllocsPerRun report false positives.

import (
	"bytes"
	"testing"
)

func TestAppendEncodeZeroAlloc(t *testing.T) {
	msgs := sampleMessages()
	buf := make([]byte, 0, 4096)
	// Warm once so any capacity growth happens outside the measured runs.
	for _, m := range msgs {
		var err error
		buf, err = AppendEncode(buf, m, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		for _, m := range msgs {
			var err error
			buf, err = AppendEncode(buf, m, 1)
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode steady state allocates %.1f allocs/run, want 0", allocs)
	}
}

func TestCodecDecodeZeroAlloc(t *testing.T) {
	var frames [][]byte
	for _, m := range sampleMessages() {
		f, err := Encode(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for _, c := range []*Codec{NewCodec(), NewZeroCopyCodec()} {
		// Warm scratch messages and payload capacity.
		for _, f := range frames {
			if _, _, _, err := c.Decode(f); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			for _, f := range frames {
				if _, _, _, err := c.Decode(f); err != nil {
					t.Fatal(err)
				}
			}
		})
		if allocs != 0 {
			t.Fatalf("Codec.Decode (zeroCopy=%v) steady state allocates %.1f allocs/run, want 0", c.ZeroCopy(), allocs)
		}
	}
}

func TestCodecReadMessageZeroAlloc(t *testing.T) {
	var stream bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteMessage(&stream, m, 1); err != nil {
			t.Fatal(err)
		}
	}
	raw := stream.Bytes()
	c := NewCodec()
	r := bytes.NewReader(raw)
	readAll := func() {
		r.Reset(raw)
		for range msgs {
			if _, _, err := c.ReadMessage(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	readAll() // warm readBuf + scratch
	allocs := testing.AllocsPerRun(100, readAll)
	if allocs != 0 {
		t.Fatalf("Codec.ReadMessage steady state allocates %.1f allocs/run, want 0", allocs)
	}
}

// The convenience ReadMessage should be down to one allocation per
// frame (the frame buffer); it used to make two.
func TestReadMessageSingleAlloc(t *testing.T) {
	frame, err := Encode(&EchoRequest{Data: []byte("x")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		if _, _, err := ReadMessage(r); err != nil {
			t.Fatal(err)
		}
	})
	// One frame buffer + one message + one payload copy, plus the
	// header array escaping through the io.Reader interface call. The
	// old implementation allocated a separate header slice on top.
	if allocs > 4 {
		t.Fatalf("ReadMessage allocates %.1f allocs/run, want <= 4", allocs)
	}
}
