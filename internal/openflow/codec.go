package openflow

import (
	"fmt"
	"io"
)

// Codec decodes frames into reusable per-type scratch messages so the
// steady-state cost of a decode is zero allocations. A Codec is not
// safe for concurrent use, and each decoded message is only valid
// until the Codec's next decode of the same type (zero-copy payloads
// are additionally only valid while the input buffer is). Callers that
// need to retain a message must copy it out — the convenience Decode
// function does exactly that, for one allocation per message.
type Codec struct {
	// scratch holds one lazily created reusable message per wire type
	// (sized by the highest wire type the codec speaks, the role reply).
	scratch [TypeRoleReply + 1]Message
	// readBuf is ReadMessage's reusable frame buffer.
	readBuf []byte
	// zeroCopy makes payload fields alias the input buffer instead of
	// copying into scratch capacity.
	zeroCopy bool
}

// NewCodec returns a Codec whose decoded payloads are copied into
// scratch capacity (safe to hold until the next decode of that type).
func NewCodec() *Codec { return &Codec{} }

// NewZeroCopyCodec returns a Codec whose decoded payload fields alias
// the input buffer. This is the batch-path mode: cheapest possible
// decode, with the contract that messages die when the buffer is
// refilled.
func NewZeroCopyCodec() *Codec { return &Codec{zeroCopy: true} }

// ZeroCopy reports whether decoded payloads alias the input buffer.
func (c *Codec) ZeroCopy() bool { return c.zeroCopy }

// message returns the reusable scratch message for t, creating it on
// first use.
func (c *Codec) message(t MsgType) (Message, error) {
	if int(t) >= len(c.scratch) {
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
	if m := c.scratch[t]; m != nil {
		return m, nil
	}
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	c.scratch[t] = m
	return m, nil
}

// Decode parses one framed message into the Codec's scratch for that
// type, returning the message, its xid, and any trailing bytes. The
// returned message is valid until the next Decode of the same type.
func (c *Codec) Decode(b []byte) (Message, uint32, []byte, error) {
	if len(b) < headerLen {
		return nil, 0, nil, ErrTruncated
	}
	msg, err := c.message(MsgType(b[1]))
	if err != nil {
		// Surface version errors before unknown-type errors, matching
		// the package-level Decode's header-first validation order.
		if b[0] != Version {
			return nil, 0, nil, fmt.Errorf("%w: 0x%02x", ErrBadVersion, b[0])
		}
		return nil, 0, nil, err
	}
	xid, rest, err := decodeInto(b, msg, c.zeroCopy)
	if err != nil {
		return nil, 0, nil, err
	}
	return msg, xid, rest, nil
}

// ReadMessage reads exactly one framed message from r into the Codec's
// reusable frame buffer and decodes it into scratch. Steady state it
// performs no allocation. The returned message is valid until the next
// ReadMessage or Decode of the same type.
func (c *Codec) ReadMessage(r io.Reader) (Message, uint32, error) {
	if cap(c.readBuf) < headerLen {
		c.readBuf = make([]byte, 512)
	}
	hdr := c.readBuf[:headerLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, fmt.Errorf("openflow: read header: %w", err)
	}
	if hdr[0] != Version {
		return nil, 0, fmt.Errorf("%w: 0x%02x", ErrBadVersion, hdr[0])
	}
	length := int(uint16(hdr[2])<<8 | uint16(hdr[3]))
	if length < headerLen {
		return nil, 0, ErrTruncated
	}
	if cap(c.readBuf) < length {
		buf := make([]byte, length)
		copy(buf, hdr)
		c.readBuf = buf
	}
	full := c.readBuf[:length]
	if _, err := io.ReadFull(r, full[headerLen:]); err != nil {
		return nil, 0, fmt.Errorf("openflow: read body: %w", err)
	}
	msg, xid, _, err := c.Decode(full)
	return msg, xid, err
}
