package openflow

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleMessages() []Message {
	return []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping-payload")},
		&EchoReply{Data: []byte("pong")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 0xabcdef01, NumPorts: 48},
		&PacketIn{DatapathID: 7, InPort: 3, Reason: 1, Data: []byte("raw-packet-bytes")},
		&PacketOut{DatapathID: 7, InPort: 2, Actions: []Action{{Type: ActionOutput, Port: 9}}, Data: []byte("payload")},
		&FlowMod{
			DatapathID: 7, Command: FlowAdd, Priority: 100, IdleTimeout: 30,
			Match:   Match{MatchInPort: true, InPort: 1, EthDst: 0x0a0b0c0d0e0f, EthType: 0x0800, VlanID: 12},
			Actions: []Action{{Type: ActionOutput, Port: 2}, {Type: ActionSetVlan, Vlan: 42}},
		},
		&FlowRemoved{DatapathID: 7, Priority: 100, Match: Match{EthSrc: 0x1234}, Reason: 1},
		&PortStatus{DatapathID: 7, Port: 4, Reason: 2, Up: true},
		&ErrorMsg{ErrType: 1, Code: 5, Data: []byte("bad flow-mod")},
	}
}

// AppendEncode must produce byte-identical frames to the historical
// Encode path, including when appending after existing bytes.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, msg := range sampleMessages() {
		want, err := Encode(msg, 77)
		if err != nil {
			t.Fatalf("Encode(%v): %v", msg.Type(), err)
		}
		got, err := AppendEncode(nil, msg, 77)
		if err != nil {
			t.Fatalf("AppendEncode(%v): %v", msg.Type(), err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendEncode(%v) = %x, want %x", msg.Type(), got, want)
		}
		prefix := []byte("prefix")
		appended, err := AppendEncode(append([]byte(nil), prefix...), msg, 77)
		if err != nil {
			t.Fatalf("AppendEncode with prefix (%v): %v", msg.Type(), err)
		}
		if !bytes.Equal(appended[:len(prefix)], prefix) || !bytes.Equal(appended[len(prefix):], want) {
			t.Fatalf("AppendEncode(%v) with prefix corrupted frame", msg.Type())
		}
	}
}

func TestAppendEncodeOversizedLeavesDst(t *testing.T) {
	dst := []byte("keepme")
	big := &PacketOut{Data: make([]byte, MaxFrameLen)}
	out, err := AppendEncode(dst, big, 1)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
	if string(out) != "keepme" {
		t.Fatalf("dst not truncated back on error: %q", out)
	}
}

func TestDecodeInto(t *testing.T) {
	for _, msg := range sampleMessages() {
		frame, err := Encode(msg, 1234)
		if err != nil {
			t.Fatalf("Encode(%v): %v", msg.Type(), err)
		}
		dst, err := newMessage(msg.Type())
		if err != nil {
			t.Fatalf("newMessage(%v): %v", msg.Type(), err)
		}
		xid, rest, err := DecodeInto(frame, dst)
		if err != nil {
			t.Fatalf("DecodeInto(%v): %v", msg.Type(), err)
		}
		if xid != 1234 || len(rest) != 0 {
			t.Fatalf("DecodeInto(%v): xid=%d rest=%d", msg.Type(), xid, len(rest))
		}
		if !reflect.DeepEqual(dst, msg) {
			t.Fatalf("DecodeInto(%v) = %+v, want %+v", msg.Type(), dst, msg)
		}
	}
}

func TestDecodeIntoTypeMismatch(t *testing.T) {
	frame, err := Encode(&Hello{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var pi PacketIn
	if _, _, err := DecodeInto(frame, &pi); !errors.Is(err, ErrTypeMatch) {
		t.Fatalf("err = %v, want ErrTypeMatch", err)
	}
}

// A recycled message must not leak previous contents: decoding a
// shorter payload into reused scratch truncates, never retains.
func TestDecodeIntoReusedScratchTruncates(t *testing.T) {
	long, _ := Encode(&PacketIn{DatapathID: 1, Data: []byte("a-long-payload")}, 1)
	short, _ := Encode(&PacketIn{DatapathID: 2, Data: []byte("s")}, 2)
	var pi PacketIn
	if _, _, err := DecodeInto(long, &pi); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeInto(short, &pi); err != nil {
		t.Fatal(err)
	}
	if string(pi.Data) != "s" || pi.DatapathID != 2 {
		t.Fatalf("reused scratch retained stale state: %+v", pi)
	}
	mods, _ := Encode(&FlowMod{Actions: []Action{{Type: ActionOutput, Port: 1}, {Type: ActionDrop}}}, 3)
	modNone, _ := Encode(&FlowMod{}, 4)
	var fm FlowMod
	if _, _, err := DecodeInto(mods, &fm); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeInto(modNone, &fm); err != nil {
		t.Fatal(err)
	}
	if len(fm.Actions) != 0 {
		t.Fatalf("reused scratch retained stale actions: %+v", fm.Actions)
	}
}

func TestCodecDecodeAllTypes(t *testing.T) {
	for _, mode := range []struct {
		name  string
		codec *Codec
	}{{"copy", NewCodec()}, {"zero-copy", NewZeroCopyCodec()}} {
		t.Run(mode.name, func(t *testing.T) {
			for _, msg := range sampleMessages() {
				frame, err := Encode(msg, 55)
				if err != nil {
					t.Fatalf("Encode(%v): %v", msg.Type(), err)
				}
				got, xid, rest, err := mode.codec.Decode(frame)
				if err != nil {
					t.Fatalf("Codec.Decode(%v): %v", msg.Type(), err)
				}
				if xid != 55 || len(rest) != 0 {
					t.Fatalf("Codec.Decode(%v): xid=%d rest=%d", msg.Type(), xid, len(rest))
				}
				if !reflect.DeepEqual(got, msg) {
					t.Fatalf("Codec.Decode(%v) = %+v, want %+v", msg.Type(), got, msg)
				}
			}
		})
	}
}

// Zero-copy decodes must alias the input buffer; copy-mode decodes
// must not.
func TestCodecAliasing(t *testing.T) {
	frame, err := Encode(&PacketIn{DatapathID: 1, InPort: 2, Data: []byte("alias-me")}, 9)
	if err != nil {
		t.Fatal(err)
	}

	zc := NewZeroCopyCodec()
	msg, _, _, err := zc.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	pi := msg.(*PacketIn)
	frame[len(frame)-1] = 'X'
	if pi.Data[len(pi.Data)-1] != 'X' {
		t.Fatal("zero-copy decode did not alias the input buffer")
	}
	frame[len(frame)-1] = 'e'

	cp := NewCodec()
	msg, _, _, err = cp.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	pi = msg.(*PacketIn)
	frame[len(frame)-1] = 'X'
	if pi.Data[len(pi.Data)-1] == 'X' {
		t.Fatal("copy-mode decode aliased the input buffer")
	}
}

func TestCodecReadMessage(t *testing.T) {
	var stream bytes.Buffer
	msgs := sampleMessages()
	for i, msg := range msgs {
		if err := WriteMessage(&stream, msg, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCodec()
	for i, want := range msgs {
		got, xid, err := c.ReadMessage(&stream)
		if err != nil {
			t.Fatalf("ReadMessage %d: %v", i, err)
		}
		if xid != uint32(i) {
			t.Fatalf("ReadMessage %d: xid = %d", i, xid)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ReadMessage %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	c := NewCodec()
	if _, _, _, err := c.Decode([]byte{Version, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short frame: %v", err)
	}
	bad := []byte{0x01, 0, 0, 8, 0, 0, 0, 0}
	if _, _, _, err := c.Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	unknown := []byte{Version, 99, 0, 8, 0, 0, 0, 0}
	if _, _, _, err := c.Decode(unknown); !errors.Is(err, ErrBadType) {
		t.Fatalf("unknown type: %v", err)
	}
}

func BenchmarkOpenFlowEncode(b *testing.B) {
	msg := &PacketIn{DatapathID: 7, InPort: 3, Reason: 1, Data: make([]byte, 64)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendEncode(buf[:0], msg, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkOpenFlowDecode(b *testing.B) {
	frame, err := Encode(&PacketIn{DatapathID: 7, InPort: 3, Reason: 1, Data: make([]byte, 64)}, 42)
	if err != nil {
		b.Fatal(err)
	}
	c := NewZeroCopyCodec()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := c.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenFlowReadMessage(b *testing.B) {
	frame, err := Encode(&PacketIn{DatapathID: 7, InPort: 3, Reason: 1, Data: make([]byte, 64)}, 42)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCodec()
	r := bytes.NewReader(frame)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, _, err := c.ReadMessage(r); err != nil {
			b.Fatal(err)
		}
	}
}
