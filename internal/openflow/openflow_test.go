package openflow

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg Message, xid uint32) Message {
	t.Helper()
	b, err := Encode(msg, xid)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, gotXid, rest, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotXid != xid {
		t.Errorf("xid = %d, want %d", gotXid, xid)
	}
	if len(rest) != 0 {
		t.Errorf("unexpected trailing bytes: %d", len(rest))
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	match := Match{MatchInPort: true, InPort: 3, EthSrc: 0xaabbccddeeff, EthDst: 0x112233445566, EthType: 0x0800, VlanID: 42}
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping")},
		&EchoReply{Data: []byte("pong")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 7, NumPorts: 48},
		&PacketIn{DatapathID: 1, InPort: 2, Reason: 1, Data: []byte{1, 2, 3}},
		&PacketOut{DatapathID: 1, InPort: 2, Actions: []Action{{Type: ActionOutput, Port: 5}}, Data: []byte{9}},
		&FlowMod{DatapathID: 3, Command: FlowAdd, Priority: 100, IdleTimeout: 30, Match: match,
			Actions: []Action{{Type: ActionOutput, Port: 1}, {Type: ActionSetVlan, Vlan: 7}}},
		&FlowRemoved{DatapathID: 3, Priority: 100, Match: match, Reason: 1},
		&PortStatus{DatapathID: 4, Port: 9, Reason: 2, Up: true},
		&ErrorMsg{ErrType: 1, Code: 5, Data: []byte("bad")},
	}
	for _, msg := range msgs {
		t.Run(msg.Type().String(), func(t *testing.T) {
			got := roundTrip(t, msg, 0xdeadbeef)
			if !reflect.DeepEqual(got, msg) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer: %v", err)
	}
	b, _ := Encode(&Hello{}, 1)
	b[0] = 0x01 // wrong version
	if _, _, _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	b, _ = Encode(&Hello{}, 1)
	b[1] = 200 // unknown type
	if _, _, _, err := Decode(b); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: %v", err)
	}
	// Truncated body: claim a length longer than the buffer.
	b, _ = Encode(&EchoRequest{Data: []byte("xyz")}, 1)
	if _, _, _, err := Decode(b[:9]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body: %v", err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	b1, _ := Encode(&Hello{}, 1)
	b2, _ := Encode(&EchoRequest{Data: []byte("x")}, 2)
	stream := append(append([]byte{}, b1...), b2...)
	msg, xid, rest, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != TypeHello || xid != 1 {
		t.Errorf("first message wrong: %v %d", msg.Type(), xid)
	}
	msg2, xid2, rest2, err := Decode(rest)
	if err != nil {
		t.Fatal(err)
	}
	if msg2.Type() != TypeEchoRequest || xid2 != 2 || len(rest2) != 0 {
		t.Errorf("second message wrong: %v %d %d", msg2.Type(), xid2, len(rest2))
	}
}

func TestReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	fm := &FlowMod{DatapathID: 9, Priority: 10, Match: Match{EthType: 0x0806},
		Actions: []Action{{Type: ActionDrop}}}
	if err := WriteMessage(&buf, fm, 77); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, &EchoRequest{Data: []byte("hb")}, 78); err != nil {
		t.Fatal(err)
	}
	m1, x1, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if x1 != 77 || !reflect.DeepEqual(m1, fm) {
		t.Errorf("stream read 1: %#v %d", m1, x1)
	}
	m2, x2, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if x2 != 78 || m2.Type() != TypeEchoRequest {
		t.Errorf("stream read 2: %v %d", m2.Type(), x2)
	}
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Error("want error at stream end")
	}
}

func TestFlowModRoundTripProperty(t *testing.T) {
	f := func(dp uint64, prio, idle uint16, inPort uint32, src, dst uint64,
		ethType, vlan uint16, outPort uint32, xid uint32) bool {
		fm := &FlowMod{
			DatapathID: dp, Command: FlowAdd, Priority: prio, IdleTimeout: idle,
			Match: Match{MatchInPort: inPort%2 == 0, InPort: inPort,
				EthSrc: src & 0xffffffffffff, EthDst: dst & 0xffffffffffff,
				EthType: ethType, VlanID: vlan},
			Actions: []Action{{Type: ActionOutput, Port: outPort}},
		}
		b, err := Encode(fm, xid)
		if err != nil {
			return false
		}
		got, gotXid, rest, err := Decode(b)
		if err != nil || gotXid != xid || len(rest) != 0 {
			return false
		}
		return reflect.DeepEqual(got, fm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketInRoundTripProperty(t *testing.T) {
	f := func(dp uint64, inPort uint32, reason uint8, data []byte, xid uint32) bool {
		if len(data) > 60000 {
			data = data[:60000]
		}
		pi := &PacketIn{DatapathID: dp, InPort: inPort, Reason: reason, Data: data}
		b, err := Encode(pi, xid)
		if err != nil {
			return false
		}
		got, gotXid, _, err := Decode(b)
		if err != nil || gotXid != xid {
			return false
		}
		gpi, ok := got.(*PacketIn)
		if !ok {
			return false
		}
		return gpi.DatapathID == dp && gpi.InPort == inPort && gpi.Reason == reason &&
			bytes.Equal(gpi.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeTooLarge(t *testing.T) {
	if _, err := Encode(&EchoRequest{Data: make([]byte, 70000)}, 1); err == nil {
		t.Error("want error for oversized message")
	}
}
