// Package openflow implements a compact binary wire codec for the
// subset of OpenFlow 1.3 the controller simulator speaks: hello/echo,
// features, flow-mod, packet-in/out, flow-removed, port-status, and
// error messages. The framing (version/type/length/xid header, big-
// endian fields) follows the OpenFlow specification; match and action
// structures use fixed layouts rather than full OXM TLVs, which is all
// the simulated dataplane requires.
//
// The codec has two tiers. The convenience tier (Encode, Decode,
// ReadMessage, WriteMessage) allocates a fresh frame or message per
// call and is what casual callers use. The hot tier (AppendEncode,
// DecodeInto, Codec) is allocation-free in steady state: AppendEncode
// frames into a caller-provided buffer, and a Codec decodes into
// reusable per-type message scratch with an optional zero-copy mode
// that aliases payload bytes instead of copying them. The batched
// dataplane path (internal/ofconn) is built on the hot tier.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version byte (OpenFlow 1.3).
const Version = 0x04

// MsgType identifies a message type.
type MsgType uint8

// Message types (values follow the OpenFlow 1.3 numbering).
const (
	TypeHello         MsgType = 0
	TypeError         MsgType = 1
	TypeEchoRequest   MsgType = 2
	TypeEchoReply     MsgType = 3
	TypeFeaturesReq   MsgType = 5
	TypeFeaturesReply MsgType = 6
	TypePacketIn      MsgType = 10
	TypeFlowRemoved   MsgType = 11
	TypePortStatus    MsgType = 12
	TypePacketOut     MsgType = 13
	TypeFlowMod       MsgType = 14
	TypeRoleRequest   MsgType = 24
	TypeRoleReply     MsgType = 25
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeError:
		return "error"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFeaturesReq:
		return "features-request"
	case TypeFeaturesReply:
		return "features-reply"
	case TypePacketIn:
		return "packet-in"
	case TypeFlowRemoved:
		return "flow-removed"
	case TypePortStatus:
		return "port-status"
	case TypePacketOut:
		return "packet-out"
	case TypeFlowMod:
		return "flow-mod"
	case TypeRoleRequest:
		return "role-request"
	case TypeRoleReply:
		return "role-reply"
	default:
		return fmt.Sprintf("type-%d", uint8(t))
	}
}

// Codec errors.
var (
	ErrBadVersion = errors.New("openflow: unsupported version")
	ErrTruncated  = errors.New("openflow: truncated message")
	ErrBadType    = errors.New("openflow: unknown message type")
	ErrOversized  = errors.New("openflow: message too large")
	ErrTypeMatch  = errors.New("openflow: frame type does not match message")
)

// headerLen is the fixed OpenFlow header size.
const headerLen = 8

// MaxFrameLen caps a frame's total length: the 16-bit header length
// field's range, which also bounds how much ReadMessage will ever
// allocate or read for one frame.
const MaxFrameLen = 0xffff

// Message is any wire message.
type Message interface {
	// Type returns the message's wire type.
	Type() MsgType
	// appendBody appends the body (everything after the header) to dst
	// and returns the extended slice.
	appendBody(dst []byte) []byte
	// decodeBody parses the body. With zeroCopy set, payload byte
	// slices alias b instead of being copied; the caller owns the
	// aliasing hazard (the Codec's batch path does).
	decodeBody(b []byte, zeroCopy bool) error
}

// Match selects packets; zero fields are wildcards except InPort,
// which matches port 0 only when MatchInPort is set.
type Match struct {
	MatchInPort bool
	InPort      uint32
	EthSrc      uint64 // 48-bit MAC in the low bits; 0 = wildcard
	EthDst      uint64
	EthType     uint16 // 0 = wildcard
	VlanID      uint16 // 0 = wildcard
}

const matchLen = 1 + 4 + 8 + 8 + 2 + 2

func (m Match) append(dst []byte) []byte {
	var flag byte
	if m.MatchInPort {
		flag = 1
	}
	dst = append(dst, flag)
	dst = binary.BigEndian.AppendUint32(dst, m.InPort)
	dst = binary.BigEndian.AppendUint64(dst, m.EthSrc)
	dst = binary.BigEndian.AppendUint64(dst, m.EthDst)
	dst = binary.BigEndian.AppendUint16(dst, m.EthType)
	return binary.BigEndian.AppendUint16(dst, m.VlanID)
}

func decodeMatch(b []byte) (Match, []byte, error) {
	if len(b) < matchLen {
		return Match{}, nil, ErrTruncated
	}
	m := Match{
		MatchInPort: b[0] == 1,
		InPort:      binary.BigEndian.Uint32(b[1:5]),
		EthSrc:      binary.BigEndian.Uint64(b[5:13]),
		EthDst:      binary.BigEndian.Uint64(b[13:21]),
		EthType:     binary.BigEndian.Uint16(b[21:23]),
		VlanID:      binary.BigEndian.Uint16(b[23:25]),
	}
	return m, b[matchLen:], nil
}

// ActionType identifies a flow action.
type ActionType uint16

// Action types.
const (
	ActionOutput  ActionType = 1
	ActionSetVlan ActionType = 2
	ActionDrop    ActionType = 3
)

// Action is one instruction applied to matching packets.
type Action struct {
	Type ActionType
	// Port is the output port for ActionOutput (PortFlood floods).
	Port uint32
	// Vlan is the tag for ActionSetVlan.
	Vlan uint16
}

// PortFlood is the pseudo-port that floods to all ports but ingress.
const PortFlood = 0xfffffffb

// PortController is the pseudo-port that punts to the controller.
const PortController = 0xfffffffd

const actionLen = 2 + 4 + 2

func (a Action) append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(a.Type))
	dst = binary.BigEndian.AppendUint32(dst, a.Port)
	return binary.BigEndian.AppendUint16(dst, a.Vlan)
}

func decodeAction(b []byte) (Action, []byte, error) {
	if len(b) < actionLen {
		return Action{}, nil, ErrTruncated
	}
	a := Action{
		Type: ActionType(binary.BigEndian.Uint16(b[0:2])),
		Port: binary.BigEndian.Uint32(b[2:6]),
		Vlan: binary.BigEndian.Uint16(b[6:8]),
	}
	return a, b[actionLen:], nil
}

// takeBytes fills *dst with b according to the copy mode: zero-copy
// aliases b directly, copy mode reuses *dst's backing capacity so a
// recycled message reaches steady-state zero allocations. An empty b
// leaves *dst nil on a fresh message, matching the historical decoder.
func takeBytes(dst *[]byte, b []byte, zeroCopy bool) {
	if zeroCopy {
		*dst = b
		return
	}
	*dst = append((*dst)[:0], b...)
}

// takeActions decodes n actions from rest into *dst, reusing *dst's
// capacity, and returns the remaining bytes.
func takeActions(dst *[]Action, n int, rest []byte) ([]byte, error) {
	*dst = (*dst)[:0]
	for i := 0; i < n; i++ {
		a, r, err := decodeAction(rest)
		if err != nil {
			return nil, err
		}
		*dst = append(*dst, a)
		rest = r
	}
	return rest, nil
}

// Hello opens a connection.
type Hello struct{}

// Type implements Message.
func (Hello) Type() MsgType                  { return TypeHello }
func (Hello) appendBody(dst []byte) []byte   { return dst }
func (*Hello) decodeBody([]byte, bool) error { return nil }

// EchoRequest is a liveness probe.
type EchoRequest struct{ Data []byte }

// Type implements Message.
func (EchoRequest) Type() MsgType                  { return TypeEchoRequest }
func (e EchoRequest) appendBody(dst []byte) []byte { return append(dst, e.Data...) }
func (e *EchoRequest) decodeBody(b []byte, zc bool) error {
	takeBytes(&e.Data, b, zc)
	return nil
}

// EchoReply answers an EchoRequest.
type EchoReply struct{ Data []byte }

// Type implements Message.
func (EchoReply) Type() MsgType                  { return TypeEchoReply }
func (e EchoReply) appendBody(dst []byte) []byte { return append(dst, e.Data...) }
func (e *EchoReply) decodeBody(b []byte, zc bool) error {
	takeBytes(&e.Data, b, zc)
	return nil
}

// FeaturesRequest asks a switch for its datapath description.
type FeaturesRequest struct{}

// Type implements Message.
func (FeaturesRequest) Type() MsgType                  { return TypeFeaturesReq }
func (FeaturesRequest) appendBody(dst []byte) []byte   { return dst }
func (*FeaturesRequest) decodeBody([]byte, bool) error { return nil }

// FeaturesReply describes a datapath.
type FeaturesReply struct {
	DatapathID uint64
	NumPorts   uint32
}

// Type implements Message.
func (FeaturesReply) Type() MsgType { return TypeFeaturesReply }
func (f FeaturesReply) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, f.DatapathID)
	return binary.BigEndian.AppendUint32(dst, f.NumPorts)
}
func (f *FeaturesReply) decodeBody(b []byte, _ bool) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	f.DatapathID = binary.BigEndian.Uint64(b[:8])
	f.NumPorts = binary.BigEndian.Uint32(b[8:12])
	return nil
}

// PacketIn punts a packet to the controller.
type PacketIn struct {
	DatapathID uint64
	InPort     uint32
	// Reason: 0 = no match, 1 = action.
	Reason uint8
	Data   []byte
}

// Type implements Message.
func (PacketIn) Type() MsgType { return TypePacketIn }
func (p PacketIn) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, p.DatapathID)
	dst = binary.BigEndian.AppendUint32(dst, p.InPort)
	dst = append(dst, p.Reason)
	return append(dst, p.Data...)
}
func (p *PacketIn) decodeBody(b []byte, zc bool) error {
	if len(b) < 13 {
		return ErrTruncated
	}
	p.DatapathID = binary.BigEndian.Uint64(b[:8])
	p.InPort = binary.BigEndian.Uint32(b[8:12])
	p.Reason = b[12]
	takeBytes(&p.Data, b[13:], zc)
	return nil
}

// PacketOut injects a packet into the dataplane.
type PacketOut struct {
	DatapathID uint64
	InPort     uint32
	Actions    []Action
	Data       []byte
}

// Type implements Message.
func (PacketOut) Type() MsgType { return TypePacketOut }
func (p PacketOut) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, p.DatapathID)
	dst = binary.BigEndian.AppendUint32(dst, p.InPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Actions)))
	for _, a := range p.Actions {
		dst = a.append(dst)
	}
	return append(dst, p.Data...)
}
func (p *PacketOut) decodeBody(b []byte, zc bool) error {
	if len(b) < 14 {
		return ErrTruncated
	}
	p.DatapathID = binary.BigEndian.Uint64(b[:8])
	p.InPort = binary.BigEndian.Uint32(b[8:12])
	n := int(binary.BigEndian.Uint16(b[12:14]))
	rest := b[14:]
	// Reject a hostile action count up front instead of iterating into
	// the shortage: the declared actions must fit the remaining body.
	if n*actionLen > len(rest) {
		return ErrTruncated
	}
	rest, err := takeActions(&p.Actions, n, rest)
	if err != nil {
		return err
	}
	takeBytes(&p.Data, rest, zc)
	return nil
}

// FlowModCommand selects add/delete semantics.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota
	FlowDelete
)

// FlowMod installs or removes a flow entry.
type FlowMod struct {
	DatapathID  uint64
	Command     FlowModCommand
	Priority    uint16
	IdleTimeout uint16
	Match       Match
	Actions     []Action
}

// Type implements Message.
func (FlowMod) Type() MsgType { return TypeFlowMod }
func (f FlowMod) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, f.DatapathID)
	dst = append(dst, byte(f.Command))
	dst = binary.BigEndian.AppendUint16(dst, f.Priority)
	dst = binary.BigEndian.AppendUint16(dst, f.IdleTimeout)
	dst = f.Match.append(dst)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Actions)))
	for _, a := range f.Actions {
		dst = a.append(dst)
	}
	return dst
}
func (f *FlowMod) decodeBody(b []byte, _ bool) error {
	if len(b) < 13+matchLen+2 {
		return ErrTruncated
	}
	f.DatapathID = binary.BigEndian.Uint64(b[:8])
	f.Command = FlowModCommand(b[8])
	f.Priority = binary.BigEndian.Uint16(b[9:11])
	f.IdleTimeout = binary.BigEndian.Uint16(b[11:13])
	var err error
	var rest []byte
	f.Match, rest, err = decodeMatch(b[13:])
	if err != nil {
		return err
	}
	if len(rest) < 2 {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	// Same hostile-count guard as PacketOut: never trust the header.
	if n*actionLen > len(rest) {
		return ErrTruncated
	}
	_, err = takeActions(&f.Actions, n, rest)
	return err
}

// FlowRemoved notifies the controller a flow expired or was deleted.
type FlowRemoved struct {
	DatapathID uint64
	Priority   uint16
	Match      Match
	// Reason: 0 = idle timeout, 1 = delete.
	Reason uint8
}

// Type implements Message.
func (FlowRemoved) Type() MsgType { return TypeFlowRemoved }
func (f FlowRemoved) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, f.DatapathID)
	dst = binary.BigEndian.AppendUint16(dst, f.Priority)
	dst = f.Match.append(dst)
	return append(dst, f.Reason)
}
func (f *FlowRemoved) decodeBody(b []byte, _ bool) error {
	if len(b) < 10+matchLen+1 {
		return ErrTruncated
	}
	f.DatapathID = binary.BigEndian.Uint64(b[:8])
	f.Priority = binary.BigEndian.Uint16(b[8:10])
	var err error
	var rest []byte
	f.Match, rest, err = decodeMatch(b[10:])
	if err != nil {
		return err
	}
	if len(rest) < 1 {
		return ErrTruncated
	}
	f.Reason = rest[0]
	return nil
}

// PortStatus notifies the controller of a port change.
type PortStatus struct {
	DatapathID uint64
	Port       uint32
	// Reason: 0 = add, 1 = delete, 2 = modify.
	Reason uint8
	// Up reports link state.
	Up bool
}

// Type implements Message.
func (PortStatus) Type() MsgType { return TypePortStatus }
func (p PortStatus) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, p.DatapathID)
	dst = binary.BigEndian.AppendUint32(dst, p.Port)
	dst = append(dst, p.Reason)
	if p.Up {
		return append(dst, 1)
	}
	return append(dst, 0)
}
func (p *PortStatus) decodeBody(b []byte, _ bool) error {
	if len(b) < 14 {
		return ErrTruncated
	}
	p.DatapathID = binary.BigEndian.Uint64(b[:8])
	p.Port = binary.BigEndian.Uint32(b[8:12])
	p.Reason = b[12]
	p.Up = b[13] == 1
	return nil
}

// ErrorMsg reports a protocol-level failure.
type ErrorMsg struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

// Type implements Message.
func (ErrorMsg) Type() MsgType { return TypeError }
func (e ErrorMsg) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, e.ErrType)
	dst = binary.BigEndian.AppendUint16(dst, e.Code)
	return append(dst, e.Data...)
}
func (e *ErrorMsg) decodeBody(b []byte, zc bool) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	e.ErrType = binary.BigEndian.Uint16(b[:2])
	e.Code = binary.BigEndian.Uint16(b[2:4])
	takeBytes(&e.Data, b[4:], zc)
	return nil
}

// ControllerRole is a controller's mastership role over a switch
// (OpenFlow 1.3 §6.3.4 OFPCR_ROLE_*).
type ControllerRole uint32

// Controller roles.
const (
	RoleNoChange ControllerRole = 0
	RoleEqual    ControllerRole = 1
	RoleMaster   ControllerRole = 2
	RoleSlave    ControllerRole = 3
)

func (r ControllerRole) String() string {
	switch r {
	case RoleNoChange:
		return "nochange"
	case RoleEqual:
		return "equal"
	case RoleMaster:
		return "master"
	case RoleSlave:
		return "slave"
	default:
		return fmt.Sprintf("role-%d", uint32(r))
	}
}

// Role-request error identifiers (OFPET_ROLE_REQUEST_FAILED and its
// OFPRRFC_STALE code): a switch answers a role request that carries a
// generation id older than the highest it has seen with this error,
// which is what fences a deposed master off the dataplane.
const (
	ErrTypeRoleRequestFailed uint16 = 11
	RoleCodeStale            uint16 = 0
)

// RoleRequest asks a switch to set (or report) this connection's
// mastership role. GenerationID is the fencing token: a switch accepts
// master/slave transitions only when the generation id is at least the
// highest it has observed.
type RoleRequest struct {
	Role         ControllerRole
	GenerationID uint64
}

// Type implements Message.
func (RoleRequest) Type() MsgType { return TypeRoleRequest }
func (r RoleRequest) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Role))
	return binary.BigEndian.AppendUint64(dst, r.GenerationID)
}
func (r *RoleRequest) decodeBody(b []byte, _ bool) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	r.Role = ControllerRole(binary.BigEndian.Uint32(b[:4]))
	r.GenerationID = binary.BigEndian.Uint64(b[4:12])
	return nil
}

// RoleReply reports the role the switch granted and the generation id
// it now holds.
type RoleReply struct {
	Role         ControllerRole
	GenerationID uint64
}

// Type implements Message.
func (RoleReply) Type() MsgType { return TypeRoleReply }
func (r RoleReply) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Role))
	return binary.BigEndian.AppendUint64(dst, r.GenerationID)
}
func (r *RoleReply) decodeBody(b []byte, _ bool) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	r.Role = ControllerRole(binary.BigEndian.Uint32(b[:4]))
	r.GenerationID = binary.BigEndian.Uint64(b[4:12])
	return nil
}

// newMessage returns a fresh zero message of the given wire type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypeFeaturesReq:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypePortStatus:
		return &PortStatus{}, nil
	case TypePacketOut:
		return &PacketOut{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypeRoleRequest:
		return &RoleRequest{}, nil
	case TypeRoleReply:
		return &RoleReply{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
}

// AppendEncode frames msg with the given transaction id, appending the
// encoded frame to dst and returning the extended slice. With enough
// capacity in dst the call performs no allocation — this is the hot
// encode path the batched dataplane writer uses. On error dst is
// returned truncated to its original length.
func AppendEncode(dst []byte, msg Message, xid uint32) ([]byte, error) {
	start := len(dst)
	dst = append(dst, Version, byte(msg.Type()), 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, xid)
	dst = msg.appendBody(dst)
	total := len(dst) - start
	if total > MaxFrameLen {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrOversized, total)
	}
	binary.BigEndian.PutUint16(dst[start+2:start+4], uint16(total))
	return dst, nil
}

// Encode frames msg with the given transaction id into a fresh buffer.
func Encode(msg Message, xid uint32) ([]byte, error) {
	return AppendEncode(nil, msg, xid)
}

// parseHeader validates a frame header and returns the framed length
// and xid.
func parseHeader(b []byte) (length int, xid uint32, err error) {
	if len(b) < headerLen {
		return 0, 0, ErrTruncated
	}
	if b[0] != Version {
		return 0, 0, fmt.Errorf("%w: 0x%02x", ErrBadVersion, b[0])
	}
	length = int(binary.BigEndian.Uint16(b[2:4]))
	if length < headerLen || len(b) < length {
		return 0, 0, ErrTruncated
	}
	return length, binary.BigEndian.Uint32(b[4:8]), nil
}

// Decode parses one framed message into a freshly allocated message,
// returning it, its xid, and any trailing bytes beyond the framed
// length.
func Decode(b []byte) (Message, uint32, []byte, error) {
	length, xid, err := parseHeader(b)
	if err != nil {
		return nil, 0, nil, err
	}
	msg, err := newMessage(MsgType(b[1]))
	if err != nil {
		return nil, 0, nil, err
	}
	if err := msg.decodeBody(b[headerLen:length], false); err != nil {
		return nil, 0, nil, err
	}
	return msg, xid, b[length:], nil
}

// DecodeInto parses one framed message into the caller-provided msg,
// whose type must match the frame's wire type, and returns the xid and
// any trailing bytes. Payload slices and action slices reuse msg's
// existing capacity, so decoding into a recycled message is
// allocation-free in steady state.
func DecodeInto(b []byte, msg Message) (uint32, []byte, error) {
	return decodeInto(b, msg, false)
}

func decodeInto(b []byte, msg Message, zeroCopy bool) (uint32, []byte, error) {
	length, xid, err := parseHeader(b)
	if err != nil {
		return 0, nil, err
	}
	if MsgType(b[1]) != msg.Type() {
		return 0, nil, fmt.Errorf("%w: frame %v into %v", ErrTypeMatch, MsgType(b[1]), msg.Type())
	}
	if err := msg.decodeBody(b[headerLen:length], zeroCopy); err != nil {
		return 0, nil, err
	}
	return xid, b[length:], nil
}

// ReadMessage reads exactly one framed message from r.
func ReadMessage(r io.Reader) (Message, uint32, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("openflow: read header: %w", err)
	}
	if hdr[0] != Version {
		return nil, 0, fmt.Errorf("%w: 0x%02x", ErrBadVersion, hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen {
		return nil, 0, ErrTruncated
	}
	// One allocation for the whole frame (the header used to be a
	// second); Codec.ReadMessage reuses a scratch buffer and makes none.
	full := make([]byte, length)
	copy(full, hdr[:])
	if _, err := io.ReadFull(r, full[headerLen:]); err != nil {
		return nil, 0, fmt.Errorf("openflow: read body: %w", err)
	}
	msg, xid, _, err := Decode(full)
	return msg, xid, err
}

// WriteMessage frames and writes one message to w.
func WriteMessage(w io.Writer, msg Message, xid uint32) error {
	b, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("openflow: write: %w", err)
	}
	return nil
}
