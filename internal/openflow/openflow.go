// Package openflow implements a compact binary wire codec for the
// subset of OpenFlow 1.3 the controller simulator speaks: hello/echo,
// features, flow-mod, packet-in/out, flow-removed, port-status, and
// error messages. The framing (version/type/length/xid header, big-
// endian fields) follows the OpenFlow specification; match and action
// structures use fixed layouts rather than full OXM TLVs, which is all
// the simulated dataplane requires.
package openflow

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version byte (OpenFlow 1.3).
const Version = 0x04

// MsgType identifies a message type.
type MsgType uint8

// Message types (values follow the OpenFlow 1.3 numbering).
const (
	TypeHello         MsgType = 0
	TypeError         MsgType = 1
	TypeEchoRequest   MsgType = 2
	TypeEchoReply     MsgType = 3
	TypeFeaturesReq   MsgType = 5
	TypeFeaturesReply MsgType = 6
	TypePacketIn      MsgType = 10
	TypeFlowRemoved   MsgType = 11
	TypePortStatus    MsgType = 12
	TypePacketOut     MsgType = 13
	TypeFlowMod       MsgType = 14
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeError:
		return "error"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFeaturesReq:
		return "features-request"
	case TypeFeaturesReply:
		return "features-reply"
	case TypePacketIn:
		return "packet-in"
	case TypeFlowRemoved:
		return "flow-removed"
	case TypePortStatus:
		return "port-status"
	case TypePacketOut:
		return "packet-out"
	case TypeFlowMod:
		return "flow-mod"
	default:
		return fmt.Sprintf("type-%d", uint8(t))
	}
}

// Codec errors.
var (
	ErrBadVersion = errors.New("openflow: unsupported version")
	ErrTruncated  = errors.New("openflow: truncated message")
	ErrBadType    = errors.New("openflow: unknown message type")
	ErrOversized  = errors.New("openflow: message too large")
)

// headerLen is the fixed OpenFlow header size.
const headerLen = 8

// MaxFrameLen caps a frame's total length: the 16-bit header length
// field's range, which also bounds how much ReadMessage will ever
// allocate or read for one frame.
const MaxFrameLen = 0xffff

// Message is any wire message.
type Message interface {
	// Type returns the message's wire type.
	Type() MsgType
	// encodeBody appends the body (everything after the header).
	encodeBody(*bytes.Buffer)
	// decodeBody parses the body.
	decodeBody([]byte) error
}

// Match selects packets; zero fields are wildcards except InPort,
// which matches port 0 only when MatchInPort is set.
type Match struct {
	MatchInPort bool
	InPort      uint32
	EthSrc      uint64 // 48-bit MAC in the low bits; 0 = wildcard
	EthDst      uint64
	EthType     uint16 // 0 = wildcard
	VlanID      uint16 // 0 = wildcard
}

const matchLen = 1 + 4 + 8 + 8 + 2 + 2

func (m Match) encode(buf *bytes.Buffer) {
	var flag byte
	if m.MatchInPort {
		flag = 1
	}
	buf.WriteByte(flag)
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], m.InPort)
	buf.Write(tmp[:4])
	binary.BigEndian.PutUint64(tmp[:], m.EthSrc)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint64(tmp[:], m.EthDst)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint16(tmp[:2], m.EthType)
	buf.Write(tmp[:2])
	binary.BigEndian.PutUint16(tmp[:2], m.VlanID)
	buf.Write(tmp[:2])
}

func decodeMatch(b []byte) (Match, []byte, error) {
	if len(b) < matchLen {
		return Match{}, nil, ErrTruncated
	}
	m := Match{
		MatchInPort: b[0] == 1,
		InPort:      binary.BigEndian.Uint32(b[1:5]),
		EthSrc:      binary.BigEndian.Uint64(b[5:13]),
		EthDst:      binary.BigEndian.Uint64(b[13:21]),
		EthType:     binary.BigEndian.Uint16(b[21:23]),
		VlanID:      binary.BigEndian.Uint16(b[23:25]),
	}
	return m, b[matchLen:], nil
}

// ActionType identifies a flow action.
type ActionType uint16

// Action types.
const (
	ActionOutput  ActionType = 1
	ActionSetVlan ActionType = 2
	ActionDrop    ActionType = 3
)

// Action is one instruction applied to matching packets.
type Action struct {
	Type ActionType
	// Port is the output port for ActionOutput (PortFlood floods).
	Port uint32
	// Vlan is the tag for ActionSetVlan.
	Vlan uint16
}

// PortFlood is the pseudo-port that floods to all ports but ingress.
const PortFlood = 0xfffffffb

// PortController is the pseudo-port that punts to the controller.
const PortController = 0xfffffffd

const actionLen = 2 + 4 + 2

func (a Action) encode(buf *bytes.Buffer) {
	var tmp [4]byte
	binary.BigEndian.PutUint16(tmp[:2], uint16(a.Type))
	buf.Write(tmp[:2])
	binary.BigEndian.PutUint32(tmp[:4], a.Port)
	buf.Write(tmp[:4])
	binary.BigEndian.PutUint16(tmp[:2], a.Vlan)
	buf.Write(tmp[:2])
}

func decodeAction(b []byte) (Action, []byte, error) {
	if len(b) < actionLen {
		return Action{}, nil, ErrTruncated
	}
	a := Action{
		Type: ActionType(binary.BigEndian.Uint16(b[0:2])),
		Port: binary.BigEndian.Uint32(b[2:6]),
		Vlan: binary.BigEndian.Uint16(b[6:8]),
	}
	return a, b[actionLen:], nil
}

// Hello opens a connection.
type Hello struct{}

// Type implements Message.
func (Hello) Type() MsgType              { return TypeHello }
func (Hello) encodeBody(*bytes.Buffer)   {}
func (*Hello) decodeBody(b []byte) error { return nil }

// EchoRequest is a liveness probe.
type EchoRequest struct{ Data []byte }

// Type implements Message.
func (EchoRequest) Type() MsgType                  { return TypeEchoRequest }
func (e EchoRequest) encodeBody(buf *bytes.Buffer) { buf.Write(e.Data) }
func (e *EchoRequest) decodeBody(b []byte) error {
	e.Data = append([]byte(nil), b...)
	return nil
}

// EchoReply answers an EchoRequest.
type EchoReply struct{ Data []byte }

// Type implements Message.
func (EchoReply) Type() MsgType                  { return TypeEchoReply }
func (e EchoReply) encodeBody(buf *bytes.Buffer) { buf.Write(e.Data) }
func (e *EchoReply) decodeBody(b []byte) error {
	e.Data = append([]byte(nil), b...)
	return nil
}

// FeaturesRequest asks a switch for its datapath description.
type FeaturesRequest struct{}

// Type implements Message.
func (FeaturesRequest) Type() MsgType              { return TypeFeaturesReq }
func (FeaturesRequest) encodeBody(*bytes.Buffer)   {}
func (*FeaturesRequest) decodeBody(b []byte) error { return nil }

// FeaturesReply describes a datapath.
type FeaturesReply struct {
	DatapathID uint64
	NumPorts   uint32
}

// Type implements Message.
func (FeaturesReply) Type() MsgType { return TypeFeaturesReply }
func (f FeaturesReply) encodeBody(buf *bytes.Buffer) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], f.DatapathID)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint32(tmp[:4], f.NumPorts)
	buf.Write(tmp[:4])
}
func (f *FeaturesReply) decodeBody(b []byte) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	f.DatapathID = binary.BigEndian.Uint64(b[:8])
	f.NumPorts = binary.BigEndian.Uint32(b[8:12])
	return nil
}

// PacketIn punts a packet to the controller.
type PacketIn struct {
	DatapathID uint64
	InPort     uint32
	// Reason: 0 = no match, 1 = action.
	Reason uint8
	Data   []byte
}

// Type implements Message.
func (PacketIn) Type() MsgType { return TypePacketIn }
func (p PacketIn) encodeBody(buf *bytes.Buffer) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], p.DatapathID)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint32(tmp[:4], p.InPort)
	buf.Write(tmp[:4])
	buf.WriteByte(p.Reason)
	buf.Write(p.Data)
}
func (p *PacketIn) decodeBody(b []byte) error {
	if len(b) < 13 {
		return ErrTruncated
	}
	p.DatapathID = binary.BigEndian.Uint64(b[:8])
	p.InPort = binary.BigEndian.Uint32(b[8:12])
	p.Reason = b[12]
	p.Data = append([]byte(nil), b[13:]...)
	return nil
}

// PacketOut injects a packet into the dataplane.
type PacketOut struct {
	DatapathID uint64
	InPort     uint32
	Actions    []Action
	Data       []byte
}

// Type implements Message.
func (PacketOut) Type() MsgType { return TypePacketOut }
func (p PacketOut) encodeBody(buf *bytes.Buffer) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], p.DatapathID)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint32(tmp[:4], p.InPort)
	buf.Write(tmp[:4])
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(p.Actions)))
	buf.Write(tmp[:2])
	for _, a := range p.Actions {
		a.encode(buf)
	}
	buf.Write(p.Data)
}
func (p *PacketOut) decodeBody(b []byte) error {
	if len(b) < 14 {
		return ErrTruncated
	}
	p.DatapathID = binary.BigEndian.Uint64(b[:8])
	p.InPort = binary.BigEndian.Uint32(b[8:12])
	n := int(binary.BigEndian.Uint16(b[12:14]))
	rest := b[14:]
	// Reject a hostile action count up front instead of iterating into
	// the shortage: the declared actions must fit the remaining body.
	if n*actionLen > len(rest) {
		return ErrTruncated
	}
	p.Actions = nil
	for i := 0; i < n; i++ {
		var a Action
		var err error
		a, rest, err = decodeAction(rest)
		if err != nil {
			return err
		}
		p.Actions = append(p.Actions, a)
	}
	p.Data = append([]byte(nil), rest...)
	return nil
}

// FlowModCommand selects add/delete semantics.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota
	FlowDelete
)

// FlowMod installs or removes a flow entry.
type FlowMod struct {
	DatapathID  uint64
	Command     FlowModCommand
	Priority    uint16
	IdleTimeout uint16
	Match       Match
	Actions     []Action
}

// Type implements Message.
func (FlowMod) Type() MsgType { return TypeFlowMod }
func (f FlowMod) encodeBody(buf *bytes.Buffer) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], f.DatapathID)
	buf.Write(tmp[:])
	buf.WriteByte(byte(f.Command))
	binary.BigEndian.PutUint16(tmp[:2], f.Priority)
	buf.Write(tmp[:2])
	binary.BigEndian.PutUint16(tmp[:2], f.IdleTimeout)
	buf.Write(tmp[:2])
	f.Match.encode(buf)
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(f.Actions)))
	buf.Write(tmp[:2])
	for _, a := range f.Actions {
		a.encode(buf)
	}
}
func (f *FlowMod) decodeBody(b []byte) error {
	if len(b) < 13+matchLen+2 {
		return ErrTruncated
	}
	f.DatapathID = binary.BigEndian.Uint64(b[:8])
	f.Command = FlowModCommand(b[8])
	f.Priority = binary.BigEndian.Uint16(b[9:11])
	f.IdleTimeout = binary.BigEndian.Uint16(b[11:13])
	var err error
	var rest []byte
	f.Match, rest, err = decodeMatch(b[13:])
	if err != nil {
		return err
	}
	if len(rest) < 2 {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	// Same hostile-count guard as PacketOut: never trust the header.
	if n*actionLen > len(rest) {
		return ErrTruncated
	}
	f.Actions = nil
	for i := 0; i < n; i++ {
		var a Action
		a, rest, err = decodeAction(rest)
		if err != nil {
			return err
		}
		f.Actions = append(f.Actions, a)
	}
	return nil
}

// FlowRemoved notifies the controller a flow expired or was deleted.
type FlowRemoved struct {
	DatapathID uint64
	Priority   uint16
	Match      Match
	// Reason: 0 = idle timeout, 1 = delete.
	Reason uint8
}

// Type implements Message.
func (FlowRemoved) Type() MsgType { return TypeFlowRemoved }
func (f FlowRemoved) encodeBody(buf *bytes.Buffer) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], f.DatapathID)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint16(tmp[:2], f.Priority)
	buf.Write(tmp[:2])
	f.Match.encode(buf)
	buf.WriteByte(f.Reason)
}
func (f *FlowRemoved) decodeBody(b []byte) error {
	if len(b) < 10+matchLen+1 {
		return ErrTruncated
	}
	f.DatapathID = binary.BigEndian.Uint64(b[:8])
	f.Priority = binary.BigEndian.Uint16(b[8:10])
	var err error
	var rest []byte
	f.Match, rest, err = decodeMatch(b[10:])
	if err != nil {
		return err
	}
	if len(rest) < 1 {
		return ErrTruncated
	}
	f.Reason = rest[0]
	return nil
}

// PortStatus notifies the controller of a port change.
type PortStatus struct {
	DatapathID uint64
	Port       uint32
	// Reason: 0 = add, 1 = delete, 2 = modify.
	Reason uint8
	// Up reports link state.
	Up bool
}

// Type implements Message.
func (PortStatus) Type() MsgType { return TypePortStatus }
func (p PortStatus) encodeBody(buf *bytes.Buffer) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], p.DatapathID)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint32(tmp[:4], p.Port)
	buf.Write(tmp[:4])
	buf.WriteByte(p.Reason)
	if p.Up {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
}
func (p *PortStatus) decodeBody(b []byte) error {
	if len(b) < 14 {
		return ErrTruncated
	}
	p.DatapathID = binary.BigEndian.Uint64(b[:8])
	p.Port = binary.BigEndian.Uint32(b[8:12])
	p.Reason = b[12]
	p.Up = b[13] == 1
	return nil
}

// ErrorMsg reports a protocol-level failure.
type ErrorMsg struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

// Type implements Message.
func (ErrorMsg) Type() MsgType { return TypeError }
func (e ErrorMsg) encodeBody(buf *bytes.Buffer) {
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], e.ErrType)
	buf.Write(tmp[:])
	binary.BigEndian.PutUint16(tmp[:], e.Code)
	buf.Write(tmp[:])
	buf.Write(e.Data)
}
func (e *ErrorMsg) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	e.ErrType = binary.BigEndian.Uint16(b[:2])
	e.Code = binary.BigEndian.Uint16(b[2:4])
	e.Data = append([]byte(nil), b[4:]...)
	return nil
}

// Encode frames msg with the given transaction id.
func Encode(msg Message, xid uint32) ([]byte, error) {
	var body bytes.Buffer
	msg.encodeBody(&body)
	total := headerLen + body.Len()
	if total > MaxFrameLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversized, total)
	}
	out := make([]byte, headerLen, total)
	out[0] = Version
	out[1] = byte(msg.Type())
	binary.BigEndian.PutUint16(out[2:4], uint16(total))
	binary.BigEndian.PutUint32(out[4:8], xid)
	return append(out, body.Bytes()...), nil
}

// Decode parses one framed message, returning it, its xid, and any
// trailing bytes beyond the framed length.
func Decode(b []byte) (Message, uint32, []byte, error) {
	if len(b) < headerLen {
		return nil, 0, nil, ErrTruncated
	}
	if b[0] != Version {
		return nil, 0, nil, fmt.Errorf("%w: 0x%02x", ErrBadVersion, b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < headerLen || len(b) < length {
		return nil, 0, nil, ErrTruncated
	}
	xid := binary.BigEndian.Uint32(b[4:8])
	body := b[headerLen:length]
	var msg Message
	switch MsgType(b[1]) {
	case TypeHello:
		msg = &Hello{}
	case TypeError:
		msg = &ErrorMsg{}
	case TypeEchoRequest:
		msg = &EchoRequest{}
	case TypeEchoReply:
		msg = &EchoReply{}
	case TypeFeaturesReq:
		msg = &FeaturesRequest{}
	case TypeFeaturesReply:
		msg = &FeaturesReply{}
	case TypePacketIn:
		msg = &PacketIn{}
	case TypeFlowRemoved:
		msg = &FlowRemoved{}
	case TypePortStatus:
		msg = &PortStatus{}
	case TypePacketOut:
		msg = &PacketOut{}
	case TypeFlowMod:
		msg = &FlowMod{}
	default:
		return nil, 0, nil, fmt.Errorf("%w: %d", ErrBadType, b[1])
	}
	if err := msg.decodeBody(body); err != nil {
		return nil, 0, nil, err
	}
	return msg, xid, b[length:], nil
}

// ReadMessage reads exactly one framed message from r.
func ReadMessage(r io.Reader) (Message, uint32, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, fmt.Errorf("openflow: read header: %w", err)
	}
	if hdr[0] != Version {
		return nil, 0, fmt.Errorf("%w: 0x%02x", ErrBadVersion, hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen {
		return nil, 0, ErrTruncated
	}
	full := make([]byte, length)
	copy(full, hdr)
	if _, err := io.ReadFull(r, full[headerLen:]); err != nil {
		return nil, 0, fmt.Errorf("openflow: read body: %w", err)
	}
	msg, xid, _, err := Decode(full)
	return msg, xid, err
}

// WriteMessage frames and writes one message to w.
func WriteMessage(w io.Writer, msg Message, xid uint32) error {
	b, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("openflow: write: %w", err)
	}
	return nil
}
