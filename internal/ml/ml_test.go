package ml

import (
	"math"
	"testing"

	"sdnbugs/internal/mathx"
)

func toyData(t *testing.T) *Dataset {
	t.Helper()
	x, err := mathx.MatrixFromRows([][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{10, 10}, {10, 11}, {11, 10}, {11, 11},
		{0, 10}, {1, 10}, {0, 11}, {1, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	y := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	d, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDatasetErrors(t *testing.T) {
	if _, err := NewDataset(nil, nil); err == nil {
		t.Error("want error for nil matrix")
	}
	if _, err := NewDataset(mathx.NewMatrix(0, 2), nil); err == nil {
		t.Error("want error for empty matrix")
	}
	if _, err := NewDataset(mathx.NewMatrix(2, 2), []int{1}); err == nil {
		t.Error("want error for length mismatch")
	}
}

func TestDatasetClassesAndSubset(t *testing.T) {
	d := toyData(t)
	if d.Classes() != 3 {
		t.Errorf("Classes = %d, want 3", d.Classes())
	}
	sub, err := d.Subset([]int{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Y[1] != 1 {
		t.Errorf("subset wrong: %+v", sub.Y)
	}
	if _, err := d.Subset(nil); err == nil {
		t.Error("want error for empty subset")
	}
	if _, err := d.Subset([]int{99}); err == nil {
		t.Error("want error for out-of-range index")
	}
	// Subset copies data.
	sub.X.Set(0, 0, 42)
	if d.X.At(0, 0) == 42 {
		t.Error("subset must copy data")
	}
}

func TestTrainTestSplit(t *testing.T) {
	d := toyData(t)
	train, test, err := TrainTestSplit(d, 2.0/3.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Errorf("split sizes %d+%d != %d", train.Len(), test.Len(), d.Len())
	}
	if train.Len() != 8 {
		t.Errorf("train size = %d, want 8", train.Len())
	}
	if _, _, err := TrainTestSplit(d, 0, 1); err == nil {
		t.Error("want error for frac 0")
	}
	if _, _, err := TrainTestSplit(d, 1, 1); err == nil {
		t.Error("want error for frac 1")
	}
	// Deterministic for seed.
	tr2, _, _ := TrainTestSplit(d, 2.0/3.0, 1)
	for i := range train.Y {
		if train.Y[i] != tr2.Y[i] {
			t.Fatal("same seed should give same split")
		}
	}
}

func TestStandardScaler(t *testing.T) {
	x, _ := mathx.MatrixFromRows([][]float64{{1, 100}, {2, 200}, {3, 300}})
	var s StandardScaler
	if _, err := s.Transform([]float64{1, 2}); err != ErrNotFitted {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
	if err := s.Fit(x); err != nil {
		t.Fatal(err)
	}
	out, err := s.TransformMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		col := out.Col(j)
		if m := mathx.Mean(col); math.Abs(m) > 1e-9 {
			t.Errorf("col %d mean = %v, want 0", j, m)
		}
		if sd := mathx.StdDev(col); math.Abs(sd-1) > 1e-9 {
			t.Errorf("col %d std = %v, want 1", j, sd)
		}
	}
	if _, err := s.Transform([]float64{1}); err == nil {
		t.Error("want dimension error")
	}
	// Constant column must not divide by zero.
	c, _ := mathx.MatrixFromRows([][]float64{{5, 1}, {5, 2}})
	var s2 StandardScaler
	if err := s2.Fit(c); err != nil {
		t.Fatal(err)
	}
	v, err := s2.Transform([]float64{5, 1})
	if err != nil || math.IsNaN(v[0]) {
		t.Errorf("constant column handling: %v %v", v, err)
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{1, 2, 3}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Errorf("acc = %v", acc)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("want mismatch error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("want empty error")
	}
}

func TestConfusionMatrixAndF1(t *testing.T) {
	pred := []int{0, 0, 1, 1, 1}
	truth := []int{0, 1, 1, 1, 0}
	cm, err := ConfusionMatrix(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][0] != 1 || cm[1][1] != 2 {
		t.Errorf("cm = %v", cm)
	}
	if _, err := ConfusionMatrix([]int{5}, []int{0}, 2); err == nil {
		t.Error("want out-of-range error")
	}
	f1, err := MacroF1(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	// class0: p=1/2 r=1/2 f1=1/2; class1: p=2/3 r=2/3 f1=2/3; macro=7/12.
	if math.Abs(f1-7.0/12.0) > 1e-12 {
		t.Errorf("macro f1 = %v, want %v", f1, 7.0/12.0)
	}
	perfect, _ := MacroF1([]int{0, 1}, []int{0, 1}, 2)
	if perfect != 1 {
		t.Errorf("perfect f1 = %v", perfect)
	}
}

// centroid is a trivial nearest-centroid classifier for scaffold tests.
type centroid struct {
	centers *mathx.Matrix
}

func (c *centroid) Fit(x *mathx.Matrix, y []int) error {
	k := 0
	for _, v := range y {
		if v+1 > k {
			k = v + 1
		}
	}
	c.centers = mathx.NewMatrix(k, x.Cols())
	counts := make([]float64, k)
	for i := 0; i < x.Rows(); i++ {
		mathx.Axpy(1, x.Row(i), c.centers.Row(y[i]))
		counts[y[i]]++
	}
	for cl := 0; cl < k; cl++ {
		if counts[cl] > 0 {
			mathx.Scale(c.centers.Row(cl), 1/counts[cl])
		}
	}
	return nil
}

func (c *centroid) Predict(f []float64) (int, error) {
	best, bestD := 0, math.Inf(1)
	for cl := 0; cl < c.centers.Rows(); cl++ {
		d := mathx.Norm2(mathx.Sub(f, c.centers.Row(cl)))
		if d < bestD {
			best, bestD = cl, d
		}
	}
	return best, nil
}

func TestEvaluateSplitAndCrossValidate(t *testing.T) {
	d := toyData(t)
	train, test, err := TrainTestSplit(d, 2.0/3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EvaluateSplit(&centroid{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("separable data accuracy = %v, want 1", acc)
	}
	accs, err := CrossValidate(func() Classifier { return &centroid{} }, d, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 3 {
		t.Fatalf("folds = %d", len(accs))
	}
	for _, a := range accs {
		if a != 1 {
			t.Errorf("fold accuracy = %v, want 1", a)
		}
	}
	if _, err := CrossValidate(func() Classifier { return &centroid{} }, d, 1, 7); err == nil {
		t.Error("want error for folds < 2")
	}
	if _, err := CrossValidate(func() Classifier { return &centroid{} }, d, 100, 7); err == nil {
		t.Error("want error for folds > n")
	}
}
