// Package adaboost implements AdaBoost (SAMME multiclass variant) over
// depth-1 decision stumps — the boosting baseline the paper compares
// against SVM and decision trees (§II-C).
package adaboost

import (
	"fmt"
	"math"
	"sort"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
)

// Ensemble is an AdaBoost classifier. The zero value uses defaults.
type Ensemble struct {
	// Rounds is the number of boosting rounds (default 50).
	Rounds int

	stumps []stump
	alphas []float64
	k      int
}

var _ ml.Classifier = (*Ensemble)(nil)

type stump struct {
	feature   int
	threshold float64
	// classLeft/classRight are the predicted classes on each side.
	classLeft, classRight int
}

func (s stump) predict(features []float64) int {
	if features[s.feature] <= s.threshold {
		return s.classLeft
	}
	return s.classRight
}

// Fit boosts weighted stumps on rows of x with dense 0-based labels.
func (e *Ensemble) Fit(x *mathx.Matrix, y []int) error {
	n := x.Rows()
	if n == 0 {
		return ml.ErrEmptyDataset
	}
	if n != len(y) {
		return fmt.Errorf("%w: %d rows vs %d labels", ml.ErrLengthMatch, n, len(y))
	}
	e.k = 0
	for _, v := range y {
		if v < 0 {
			return fmt.Errorf("adaboost: labels must be >= 0, got %d", v)
		}
		if v+1 > e.k {
			e.k = v + 1
		}
	}
	rounds := e.Rounds
	if rounds <= 0 {
		rounds = 50
	}
	e.stumps = e.stumps[:0]
	e.alphas = e.alphas[:0]

	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	for r := 0; r < rounds; r++ {
		st, err := bestStump(x, y, w, e.k)
		if err != nil {
			return err
		}
		var werr float64
		for i := 0; i < n; i++ {
			if st.predict(x.Row(i)) != y[i] {
				werr += w[i]
			}
		}
		// SAMME requires error < 1 - 1/K to make progress.
		limit := 1 - 1/float64(e.k)
		if werr >= limit {
			break
		}
		if werr < 1e-12 {
			// Perfect stump: give it a large but finite weight and stop.
			e.stumps = append(e.stumps, st)
			e.alphas = append(e.alphas, 10)
			break
		}
		alpha := math.Log((1-werr)/werr) + math.Log(float64(e.k)-1)
		e.stumps = append(e.stumps, st)
		e.alphas = append(e.alphas, alpha)
		// Reweight and renormalize.
		var z float64
		for i := 0; i < n; i++ {
			if st.predict(x.Row(i)) != y[i] {
				w[i] *= math.Exp(alpha)
			}
			z += w[i]
		}
		for i := range w {
			w[i] /= z
		}
	}
	if len(e.stumps) == 0 {
		// Degenerate data (e.g. single class): fall back to majority.
		maj := majority(y, e.k)
		e.stumps = append(e.stumps, stump{feature: 0, threshold: math.Inf(1), classLeft: maj, classRight: maj})
		e.alphas = append(e.alphas, 1)
	}
	return nil
}

func majority(y []int, k int) int {
	counts := make([]int, k)
	for _, v := range y {
		counts[v]++
	}
	best := 0
	for c, v := range counts {
		if v > counts[best] {
			best = c
		}
	}
	return best
}

// bestStump finds the weighted-error-minimizing decision stump.
func bestStump(x *mathx.Matrix, y []int, w []float64, k int) (stump, error) {
	n, d := x.Rows(), x.Cols()
	bestErr := math.Inf(1)
	var best stump
	type pv struct {
		v float64
		y int
		w float64
	}
	pairs := make([]pv, n)
	leftW := make([]float64, k)
	rightW := make([]float64, k)

	for f := 0; f < d; f++ {
		for i := 0; i < n; i++ {
			pairs[i] = pv{x.At(i, f), y[i], w[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		for c := 0; c < k; c++ {
			leftW[c] = 0
			rightW[c] = 0
		}
		for i := 0; i < n; i++ {
			rightW[pairs[i].y] += pairs[i].w
		}
		for i := 0; i < n-1; i++ {
			leftW[pairs[i].y] += pairs[i].w
			rightW[pairs[i].y] -= pairs[i].w
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			lc, lw := argmaxWeight(leftW)
			rc, rw := argmaxWeight(rightW)
			// Weighted error = total weight - correctly classified weight.
			var total float64
			for c := 0; c < k; c++ {
				total += leftW[c] + rightW[c]
			}
			errW := total - lw - rw
			if errW < bestErr {
				bestErr = errW
				best = stump{
					feature:   f,
					threshold: (pairs[i].v + pairs[i+1].v) / 2,
					classLeft: lc, classRight: rc,
				}
			}
		}
	}
	if math.IsInf(bestErr, 1) {
		// No splittable feature (all values identical): constant stump.
		maj := majority(y, k)
		return stump{feature: 0, threshold: math.Inf(1), classLeft: maj, classRight: maj}, nil
	}
	return best, nil
}

func argmaxWeight(w []float64) (int, float64) {
	best := 0
	for c := 1; c < len(w); c++ {
		if w[c] > w[best] {
			best = c
		}
	}
	return best, w[best]
}

// Predict returns the alpha-weighted vote over stumps.
func (e *Ensemble) Predict(features []float64) (int, error) {
	if len(e.stumps) == 0 {
		return 0, ml.ErrNotFitted
	}
	votes := make([]float64, e.k)
	for i, st := range e.stumps {
		if st.feature >= len(features) {
			return 0, fmt.Errorf("adaboost: feature %d out of range (%d features)", st.feature, len(features))
		}
		votes[st.predict(features)] += e.alphas[i]
	}
	return mathx.ArgMax(votes), nil
}

// Size returns the number of boosted stumps.
func (e *Ensemble) Size() int { return len(e.stumps) }
