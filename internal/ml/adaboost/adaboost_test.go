package adaboost

import (
	"errors"
	"math/rand"
	"testing"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
)

func TestFitErrors(t *testing.T) {
	var e Ensemble
	if err := e.Fit(mathx.NewMatrix(0, 1), nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("want ErrEmptyDataset, got %v", err)
	}
	x := mathx.NewMatrix(2, 1)
	if err := e.Fit(x, []int{0}); !errors.Is(err, ml.ErrLengthMatch) {
		t.Errorf("want ErrLengthMatch, got %v", err)
	}
	if err := e.Fit(x, []int{-1, 0}); err == nil {
		t.Error("want negative-label error")
	}
	var unfitted Ensemble
	if _, err := unfitted.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestSingleStumpProblem(t *testing.T) {
	// Perfectly separable by one threshold: x0 <= 0.5.
	x, _ := mathx.MatrixFromRows([][]float64{{0}, {0.2}, {0.4}, {0.6}, {0.8}, {1}})
	y := []int{0, 0, 0, 1, 1, 1}
	var e Ensemble
	if err := e.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		p, _ := e.Predict(x.Row(i))
		if p != y[i] {
			t.Errorf("row %d predicted %d, want %d", i, p, y[i])
		}
	}
	if e.Size() != 1 {
		t.Errorf("perfect stump should stop boosting, size = %d", e.Size())
	}
}

func TestBoostingBeatsSingleStumpOnStaircase(t *testing.T) {
	// Labels alternate across x: a single stump cannot do better than
	// ~2/3; boosting can.
	x, _ := mathx.MatrixFromRows([][]float64{
		{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8},
	})
	y := []int{0, 0, 0, 1, 1, 1, 0, 0, 0}
	one := Ensemble{Rounds: 1}
	many := Ensemble{Rounds: 100}
	if err := one.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	accOf := func(e *Ensemble) float64 {
		hits := 0
		for i := 0; i < x.Rows(); i++ {
			p, _ := e.Predict(x.Row(i))
			if p == y[i] {
				hits++
			}
		}
		return float64(hits) / float64(x.Rows())
	}
	if a1, am := accOf(&one), accOf(&many); !(am > a1) {
		t.Errorf("boosted accuracy %v should exceed single stump %v", am, a1)
	}
}

func TestMulticlassBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	x := mathx.NewMatrix(n, 2)
	y := make([]int, n)
	centers := [][]float64{{0, 0}, {8, 0}, {0, 8}}
	for i := 0; i < n; i++ {
		c := i % 3
		x.Set(i, 0, centers[c][0]+rng.NormFloat64())
		x.Set(i, 1, centers[c][1]+rng.NormFloat64())
		y[i] = c
	}
	e := Ensemble{Rounds: 60}
	if err := e.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < n; i++ {
		p, _ := e.Predict(x.Row(i))
		if p == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(n); acc < 0.9 {
		t.Errorf("multiclass accuracy = %v", acc)
	}
}

func TestDegenerateSingleClass(t *testing.T) {
	x := mathx.NewMatrix(4, 2)
	y := []int{0, 0, 0, 0}
	var e Ensemble
	if err := e.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p, err := e.Predict([]float64{9, 9})
	if err != nil || p != 0 {
		t.Errorf("degenerate predict = %d, %v", p, err)
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	x, _ := mathx.MatrixFromRows([][]float64{{0, 5}, {1, 5}})
	var e Ensemble
	if err := e.Fit(x, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict([]float64{}); err == nil {
		t.Error("want feature-range error")
	}
}
