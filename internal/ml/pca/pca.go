// Package pca implements Principal Component Analysis via power
// iteration with deflation. The paper evaluates PCA-reduced features as
// one of its classification variants (§II-C).
package pca

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
)

// Errors returned by Fit.
var (
	ErrBadComponents = errors.New("pca: components must be in [1, features]")
	ErrTooFewRows    = errors.New("pca: need at least 2 rows")
)

// PCA projects data onto its top principal components.
type PCA struct {
	// Components is the target dimensionality.
	Components int
	// MaxIter bounds power iterations per component (default 200).
	MaxIter int
	// Seed initializes the power-iteration start vectors.
	Seed int64

	mean       []float64
	components *mathx.Matrix // Components × features
	eigenvals  []float64
}

// Fit learns the principal components of the rows of x.
func (p *PCA) Fit(x *mathx.Matrix) error {
	n, d := x.Rows(), x.Cols()
	if n < 2 {
		return ErrTooFewRows
	}
	if p.Components < 1 || p.Components > d {
		return fmt.Errorf("%w: %d of %d", ErrBadComponents, p.Components, d)
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	cov, err := mathx.CovarianceMatrix(x)
	if err != nil {
		return fmt.Errorf("pca: %w", err)
	}
	p.mean = make([]float64, d)
	for i := 0; i < n; i++ {
		mathx.Axpy(1, x.Row(i), p.mean)
	}
	mathx.Scale(p.mean, 1/float64(n))

	rng := rand.New(rand.NewSource(p.Seed))
	p.components = mathx.NewMatrix(p.Components, d)
	p.eigenvals = make([]float64, p.Components)
	work := cov.Clone()
	// One scratch pair reused across all components and iterations:
	// the power loop runs maxIter × Components times per fit, so
	// per-iteration allocations dominate the garbage otherwise.
	v := make([]float64, d)
	nv := make([]float64, d)
	diff := make([]float64, d)
	for c := 0; c < p.Components; c++ {
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		mathx.Normalize(v)
		var lambda float64
		for it := 0; it < maxIter; it++ {
			if err := work.MulVecInto(nv, v); err != nil {
				return fmt.Errorf("pca: %w", err)
			}
			norm := mathx.Norm2(nv)
			if norm < 1e-14 {
				// Remaining spectrum is (numerically) zero.
				break
			}
			mathx.Scale(nv, 1/norm)
			delta := mathx.Norm2(mathx.SubInto(diff, nv, v))
			copy(v, nv)
			lambda = norm
			if delta < 1e-10 {
				break
			}
		}
		copy(p.components.Row(c), v)
		p.eigenvals[c] = lambda
		// Deflate: work -= lambda * v vᵀ.
		for i := 0; i < d; i++ {
			row := work.Row(i)
			vi := v[i]
			for j := 0; j < d; j++ {
				row[j] -= lambda * vi * v[j]
			}
		}
	}
	return nil
}

// ExplainedVariance returns the eigenvalue of each kept component.
func (p *PCA) ExplainedVariance() ([]float64, error) {
	if p.eigenvals == nil {
		return nil, ml.ErrNotFitted
	}
	return mathx.Clone(p.eigenvals), nil
}

// Transform projects a single feature vector onto the components.
func (p *PCA) Transform(v []float64) ([]float64, error) {
	if p.components == nil {
		return nil, ml.ErrNotFitted
	}
	if len(v) != len(p.mean) {
		return nil, fmt.Errorf("pca: expected %d features, got %d", len(p.mean), len(v))
	}
	centered := mathx.Sub(v, p.mean)
	out, err := p.components.MulVec(centered)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	return out, nil
}

// TransformMatrix projects every row of x.
func (p *PCA) TransformMatrix(x *mathx.Matrix) (*mathx.Matrix, error) {
	if p.components == nil {
		return nil, ml.ErrNotFitted
	}
	if x.Cols() != len(p.mean) {
		return nil, fmt.Errorf("pca: expected %d features, got %d", len(p.mean), x.Cols())
	}
	out := mathx.NewMatrix(x.Rows(), p.Components)
	centered := make([]float64, len(p.mean))
	for i := 0; i < x.Rows(); i++ {
		mathx.SubInto(centered, x.Row(i), p.mean)
		if err := p.components.MulVecInto(out.Row(i), centered); err != nil {
			return nil, fmt.Errorf("pca: %w", err)
		}
	}
	return out, nil
}

// Reduced wraps an inner classifier behind a PCA projection, making
// "PCA + classifier" a drop-in ml.Classifier.
type Reduced struct {
	// Components is the projected dimensionality.
	Components int
	// Seed drives the PCA power iteration.
	Seed int64
	// Inner is the downstream classifier (required).
	Inner ml.Classifier

	pca *PCA
}

var _ ml.Classifier = (*Reduced)(nil)

// Fit fits the projection then the inner classifier on projected data.
func (r *Reduced) Fit(x *mathx.Matrix, y []int) error {
	if r.Inner == nil {
		return errors.New("pca: Reduced requires an Inner classifier")
	}
	comps := r.Components
	if comps < 1 || comps > x.Cols() {
		comps = x.Cols()
		if comps > 16 {
			comps = 16
		}
	}
	r.pca = &PCA{Components: comps, Seed: r.Seed}
	if err := r.pca.Fit(x); err != nil {
		return err
	}
	proj, err := r.pca.TransformMatrix(x)
	if err != nil {
		return err
	}
	return r.Inner.Fit(proj, y)
}

// Predict projects then delegates to the inner classifier.
func (r *Reduced) Predict(features []float64) (int, error) {
	if r.pca == nil {
		return 0, ml.ErrNotFitted
	}
	proj, err := r.pca.Transform(features)
	if err != nil {
		return 0, err
	}
	return r.Inner.Predict(proj)
}

// ReconstructionError returns the mean squared reconstruction error of
// x under the fitted projection — a sanity metric for tests.
func (p *PCA) ReconstructionError(x *mathx.Matrix) (float64, error) {
	if p.components == nil {
		return 0, ml.ErrNotFitted
	}
	var sum float64
	for i := 0; i < x.Rows(); i++ {
		proj, err := p.Transform(x.Row(i))
		if err != nil {
			return 0, err
		}
		// Reconstruct: mean + Σ proj_c * component_c.
		rec := mathx.Clone(p.mean)
		for c := 0; c < p.Components; c++ {
			mathx.Axpy(proj[c], p.components.Row(c), rec)
		}
		diff := mathx.Sub(x.Row(i), rec)
		sum += mathx.Dot(diff, diff)
	}
	if math.IsNaN(sum) {
		return 0, errors.New("pca: reconstruction produced NaN")
	}
	return sum / float64(x.Rows()), nil
}
