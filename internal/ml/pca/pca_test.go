package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
	"sdnbugs/internal/ml/dtree"
)

// anisotropic generates data stretched along (1,1,0) in 3D.
func anisotropic(n int, seed int64) *mathx.Matrix {
	rng := rand.New(rand.NewSource(seed))
	x := mathx.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		tVal := rng.NormFloat64() * 10
		x.Set(i, 0, tVal+rng.NormFloat64()*0.1)
		x.Set(i, 1, tVal+rng.NormFloat64()*0.1)
		x.Set(i, 2, rng.NormFloat64()*0.1)
	}
	return x
}

func TestFitErrors(t *testing.T) {
	p := PCA{Components: 2}
	if err := p.Fit(mathx.NewMatrix(1, 3)); !errors.Is(err, ErrTooFewRows) {
		t.Errorf("want ErrTooFewRows, got %v", err)
	}
	bad := PCA{Components: 5}
	if err := bad.Fit(anisotropic(10, 1)); !errors.Is(err, ErrBadComponents) {
		t.Errorf("want ErrBadComponents, got %v", err)
	}
	zero := PCA{Components: 0}
	if err := zero.Fit(anisotropic(10, 1)); !errors.Is(err, ErrBadComponents) {
		t.Errorf("want ErrBadComponents, got %v", err)
	}
	var unfitted PCA
	if _, err := unfitted.Transform([]float64{1, 2, 3}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
	if _, err := unfitted.ExplainedVariance(); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestPrincipalDirection(t *testing.T) {
	p := PCA{Components: 1, Seed: 1}
	if err := p.Fit(anisotropic(500, 1)); err != nil {
		t.Fatal(err)
	}
	dir := p.components.Row(0)
	// Expect ±(1/√2, 1/√2, 0).
	want := 1 / math.Sqrt2
	if math.Abs(math.Abs(dir[0])-want) > 0.05 ||
		math.Abs(math.Abs(dir[1])-want) > 0.05 ||
		math.Abs(dir[2]) > 0.05 {
		t.Errorf("first component = %v, want ±(0.707, 0.707, 0)", dir)
	}
}

func TestExplainedVarianceOrdering(t *testing.T) {
	p := PCA{Components: 3, Seed: 2}
	if err := p.Fit(anisotropic(500, 2)); err != nil {
		t.Fatal(err)
	}
	ev, err := p.ExplainedVariance()
	if err != nil {
		t.Fatal(err)
	}
	if !(ev[0] >= ev[1] && ev[1] >= ev[2]-1e-9) {
		t.Errorf("eigenvalues not ordered: %v", ev)
	}
	// First component carries almost all variance.
	total := ev[0] + ev[1] + ev[2]
	if ev[0]/total < 0.95 {
		t.Errorf("first component explains %v of variance, want > 0.95", ev[0]/total)
	}
}

func TestTransformReducesDimensions(t *testing.T) {
	x := anisotropic(100, 3)
	p := PCA{Components: 2, Seed: 3}
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	out, err := p.TransformMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 100 || out.Cols() != 2 {
		t.Errorf("shape %dx%d", out.Rows(), out.Cols())
	}
	if _, err := p.Transform([]float64{1}); err == nil {
		t.Error("want dimension error")
	}
}

func TestReconstructionErrorSmallForDominantSubspace(t *testing.T) {
	x := anisotropic(200, 4)
	p := PCA{Components: 1, Seed: 4}
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	re, err := p.ReconstructionError(x)
	if err != nil {
		t.Fatal(err)
	}
	// Residual noise is ~0.1 σ per axis; MSE should be well below 1.
	if re > 0.5 {
		t.Errorf("reconstruction error %v too high", re)
	}
}

func TestReducedClassifier(t *testing.T) {
	// 3-class blobs in 5D where only the first two dims matter.
	rng := rand.New(rand.NewSource(5))
	n := 300
	x := mathx.NewMatrix(n, 5)
	y := make([]int, n)
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for i := 0; i < n; i++ {
		c := i % 3
		x.Set(i, 0, centers[c][0]+rng.NormFloat64())
		x.Set(i, 1, centers[c][1]+rng.NormFloat64())
		for j := 2; j < 5; j++ {
			x.Set(i, j, rng.NormFloat64()*0.01)
		}
		y[i] = c
	}
	r := Reduced{Components: 2, Seed: 5, Inner: &dtree.Tree{}}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < n; i++ {
		p, err := r.Predict(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if p == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(n); acc < 0.95 {
		t.Errorf("reduced classifier accuracy = %v", acc)
	}
}

func TestReducedErrors(t *testing.T) {
	var r Reduced
	if err := r.Fit(mathx.NewMatrix(2, 2), []int{0, 1}); err == nil {
		t.Error("want error for missing Inner")
	}
	r2 := Reduced{Inner: &dtree.Tree{}}
	if _, err := r2.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}
