// Package ml provides the classic machine-learning scaffolding the
// paper's validation uses (§II-C): datasets, feature scaling, the
// 2/3–1/3 train/test protocol, k-fold cross-validation, and the
// accuracy/confusion metrics used to compare SVM, decision trees,
// PCA-reduced models, and AdaBoost.
package ml

import (
	"errors"
	"fmt"
	"math/rand"

	"sdnbugs/internal/mathx"
)

// Errors returned by the scaffolding.
var (
	ErrEmptyDataset = errors.New("ml: empty dataset")
	ErrLengthMatch  = errors.New("ml: features and labels differ in length")
	ErrNotFitted    = errors.New("ml: model not fitted")
)

// Classifier is the interface every model in the subpackages satisfies.
type Classifier interface {
	// Fit trains on rows of x with integer class labels y.
	Fit(x *mathx.Matrix, y []int) error
	// Predict returns the class for a single feature vector.
	Predict(features []float64) (int, error)
}

// Dataset pairs a feature matrix with integer labels.
type Dataset struct {
	X *mathx.Matrix
	Y []int
}

// NewDataset validates and wraps features and labels.
func NewDataset(x *mathx.Matrix, y []int) (*Dataset, error) {
	if x == nil || x.Rows() == 0 {
		return nil, ErrEmptyDataset
	}
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d labels", ErrLengthMatch, x.Rows(), len(y))
	}
	return &Dataset{X: x, Y: y}, nil
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return d.X.Rows() }

// Classes returns the number of distinct labels, assuming labels are
// 0-based and dense; it is max(y)+1.
func (d *Dataset) Classes() int {
	maxY := 0
	for _, v := range d.Y {
		if v > maxY {
			maxY = v
		}
	}
	return maxY + 1
}

// Subset returns a new dataset containing the given row indices
// (data copied).
func (d *Dataset) Subset(idx []int) (*Dataset, error) {
	if len(idx) == 0 {
		return nil, ErrEmptyDataset
	}
	x := mathx.NewMatrix(len(idx), d.X.Cols())
	y := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, fmt.Errorf("ml: subset index %d out of range [0,%d)", j, d.Len())
		}
		copy(x.Row(i), d.X.Row(j))
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y}, nil
}

// TrainTestSplit shuffles with the seeded RNG and splits so that
// trainFrac of the data trains the model — the paper uses 2/3.
func TrainTestSplit(d *Dataset, trainFrac float64, seed int64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: trainFrac %v outside (0,1)", trainFrac)
	}
	n := d.Len()
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut < 1 || cut >= n {
		return nil, nil, fmt.Errorf("ml: split leaves an empty side (n=%d, frac=%v)", n, trainFrac)
	}
	train, err = d.Subset(idx[:cut])
	if err != nil {
		return nil, nil, err
	}
	test, err = d.Subset(idx[cut:])
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// StandardScaler standardizes features to zero mean, unit variance —
// the "normalization" the paper reports as decisive for SVM accuracy.
type StandardScaler struct {
	mean, std []float64
}

// Fit learns per-column mean and standard deviation.
func (s *StandardScaler) Fit(x *mathx.Matrix) error {
	if x.Rows() == 0 {
		return ErrEmptyDataset
	}
	d := x.Cols()
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	for j := 0; j < d; j++ {
		col := x.Col(j)
		s.mean[j] = mathx.Mean(col)
		s.std[j] = mathx.StdDev(col)
		if s.std[j] == 0 {
			s.std[j] = 1 // constant column: leave centered only
		}
	}
	return nil
}

// Transform returns a standardized copy of v.
func (s *StandardScaler) Transform(v []float64) ([]float64, error) {
	if s.mean == nil {
		return nil, ErrNotFitted
	}
	if len(v) != len(s.mean) {
		return nil, fmt.Errorf("ml: scaler expects %d features, got %d", len(s.mean), len(v))
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = (x - s.mean[i]) / s.std[i]
	}
	return out, nil
}

// TransformMatrix standardizes every row of x into a new matrix.
func (s *StandardScaler) TransformMatrix(x *mathx.Matrix) (*mathx.Matrix, error) {
	if s.mean == nil {
		return nil, ErrNotFitted
	}
	out := mathx.NewMatrix(x.Rows(), x.Cols())
	for i := 0; i < x.Rows(); i++ {
		row, err := s.Transform(x.Row(i))
		if err != nil {
			return nil, err
		}
		copy(out.Row(i), row)
	}
	return out, nil
}

// Accuracy returns the fraction of matching labels.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMatch, len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmptyDataset
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred)), nil
}

// ConfusionMatrix returns counts[t][p] of true class t predicted as p,
// over k classes.
func ConfusionMatrix(pred, truth []int, k int) ([][]int, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMatch, len(pred), len(truth))
	}
	cm := make([][]int, k)
	for i := range cm {
		cm[i] = make([]int, k)
	}
	for i := range pred {
		if truth[i] < 0 || truth[i] >= k || pred[i] < 0 || pred[i] >= k {
			return nil, fmt.Errorf("ml: label out of range at %d (t=%d, p=%d, k=%d)", i, truth[i], pred[i], k)
		}
		cm[truth[i]][pred[i]]++
	}
	return cm, nil
}

// MacroF1 returns the unweighted mean of per-class F1 scores. Classes
// absent from both pred and truth contribute 0.
func MacroF1(pred, truth []int, k int) (float64, error) {
	cm, err := ConfusionMatrix(pred, truth, k)
	if err != nil {
		return 0, err
	}
	var sum float64
	for c := 0; c < k; c++ {
		tp := cm[c][c]
		var fp, fn int
		for o := 0; o < k; o++ {
			if o == c {
				continue
			}
			fp += cm[o][c]
			fn += cm[c][o]
		}
		den := 2*tp + fp + fn
		if den > 0 {
			sum += 2 * float64(tp) / float64(den)
		}
	}
	return sum / float64(k), nil
}

// EvaluateSplit trains clf on train and returns its accuracy on test.
func EvaluateSplit(clf Classifier, train, test *Dataset) (float64, error) {
	if err := clf.Fit(train.X, train.Y); err != nil {
		return 0, fmt.Errorf("ml: fit: %w", err)
	}
	pred := make([]int, test.Len())
	for i := 0; i < test.Len(); i++ {
		p, err := clf.Predict(test.X.Row(i))
		if err != nil {
			return 0, fmt.Errorf("ml: predict row %d: %w", i, err)
		}
		pred[i] = p
	}
	return Accuracy(pred, test.Y)
}

// CrossValidate runs k-fold cross-validation, returning per-fold
// accuracies. newClf must return a fresh model per fold.
func CrossValidate(newClf func() Classifier, d *Dataset, folds int, seed int64) ([]float64, error) {
	if folds < 2 {
		return nil, fmt.Errorf("ml: need >= 2 folds, got %d", folds)
	}
	n := d.Len()
	if n < folds {
		return nil, fmt.Errorf("ml: %d examples < %d folds", n, folds)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	accs := make([]float64, 0, folds)
	for f := 0; f < folds; f++ {
		var trainIdx, testIdx []int
		for i, j := range perm {
			if i%folds == f {
				testIdx = append(testIdx, j)
			} else {
				trainIdx = append(trainIdx, j)
			}
		}
		train, err := d.Subset(trainIdx)
		if err != nil {
			return nil, err
		}
		test, err := d.Subset(testIdx)
		if err != nil {
			return nil, err
		}
		acc, err := EvaluateSplit(newClf(), train, test)
		if err != nil {
			return nil, err
		}
		accs = append(accs, acc)
	}
	return accs, nil
}
