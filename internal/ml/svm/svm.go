// Package svm implements a linear Support Vector Machine trained with
// the Pegasos primal sub-gradient algorithm (Shalev-Shwartz et al.),
// plus a one-vs-rest wrapper for multiclass problems. The paper found
// a normalized SVM the most accurate model for predicting bug types
// (≈96 %) and symptoms (≈86 %).
package svm

import (
	"errors"
	"fmt"
	"math/rand"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
)

// ErrBadLabels is returned when binary training labels are not ±1.
var ErrBadLabels = errors.New("svm: binary labels must be -1 or +1")

// Binary is a linear binary SVM. The zero value uses sensible defaults.
type Binary struct {
	// Lambda is the L2 regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// Seed drives example sampling order.
	Seed int64
	// Balanced samples positives and negatives with equal probability,
	// countering class imbalance in one-vs-rest problems.
	Balanced bool

	w []float64
	b float64
}

// FitBinary trains on labels in {-1, +1}.
func (s *Binary) FitBinary(x *mathx.Matrix, y []int) error {
	if x.Rows() == 0 {
		return ml.ErrEmptyDataset
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("%w: %d rows vs %d labels", ml.ErrLengthMatch, x.Rows(), len(y))
	}
	for _, v := range y {
		if v != -1 && v != 1 {
			return fmt.Errorf("%w: got %d", ErrBadLabels, v)
		}
	}
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 20
	}
	n, d := x.Rows(), x.Cols()
	s.w = make([]float64, d)
	s.b = 0
	rng := rand.New(rand.NewSource(s.Seed))
	var pos, neg []int
	if s.Balanced {
		for i, v := range y {
			if v == 1 {
				pos = append(pos, i)
			} else {
				neg = append(neg, i)
			}
		}
		if len(pos) == 0 || len(neg) == 0 {
			// Degenerate one-class problem: fall back to uniform.
			pos, neg = nil, nil
		}
	}
	// Suffix-averaged Pegasos: the returned model is the average of
	// the SGD iterates over the second half of training, which
	// generalizes markedly better than the final iterate on small,
	// noisy text datasets while ignoring the unstable early steps.
	steps := epochs * n
	avgFrom := steps / 2
	avgW := make([]float64, d)
	var avgB float64
	var avgN int
	t := 0
	for e := 0; e < epochs; e++ {
		for range n {
			t++
			var i int
			if pos != nil {
				if rng.Intn(2) == 0 {
					i = pos[rng.Intn(len(pos))]
				} else {
					i = neg[rng.Intn(len(neg))]
				}
			} else {
				i = rng.Intn(n)
			}
			eta := 1 / (lambda * float64(t))
			xi := x.Row(i)
			yi := float64(y[i])
			margin := yi * (mathx.Dot(s.w, xi) + s.b)
			// w <- (1 - eta*lambda) w  [+ eta*yi*xi if margin < 1]
			mathx.Scale(s.w, 1-eta*lambda)
			if margin < 1 {
				mathx.Axpy(eta*yi, xi, s.w)
				s.b += eta * yi
			}
			if t > avgFrom {
				avgN++
				inv := 1 / float64(avgN)
				for j, wj := range s.w {
					avgW[j] += (wj - avgW[j]) * inv
				}
				avgB += (s.b - avgB) * inv
			}
		}
	}
	if avgN > 0 {
		s.w = avgW
		s.b = avgB
	}
	return nil
}

// Decision returns the signed margin w·x + b.
func (s *Binary) Decision(features []float64) (float64, error) {
	if s.w == nil {
		return 0, ml.ErrNotFitted
	}
	if len(features) != len(s.w) {
		return 0, fmt.Errorf("svm: expected %d features, got %d", len(s.w), len(features))
	}
	return mathx.Dot(s.w, features) + s.b, nil
}

// PredictBinary returns -1 or +1.
func (s *Binary) PredictBinary(features []float64) (int, error) {
	d, err := s.Decision(features)
	if err != nil {
		return 0, err
	}
	if d >= 0 {
		return 1, nil
	}
	return -1, nil
}

// HingeLoss returns the regularized empirical hinge loss on (x, y),
// useful for asserting training progress.
func (s *Binary) HingeLoss(x *mathx.Matrix, y []int) (float64, error) {
	if s.w == nil {
		return 0, ml.ErrNotFitted
	}
	var loss float64
	for i := 0; i < x.Rows(); i++ {
		d, err := s.Decision(x.Row(i))
		if err != nil {
			return 0, err
		}
		m := 1 - float64(y[i])*d
		if m > 0 {
			loss += m
		}
	}
	loss /= float64(x.Rows())
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	return loss + lambda/2*mathx.Dot(s.w, s.w), nil
}

// Multiclass is a one-vs-rest ensemble of Binary SVMs implementing
// ml.Classifier for dense 0-based labels.
type Multiclass struct {
	// Lambda, Epochs, Seed, Balanced configure every underlying
	// binary model.
	Lambda   float64
	Epochs   int
	Seed     int64
	Balanced bool

	models []*Binary
}

var _ ml.Classifier = (*Multiclass)(nil)

// Fit trains one binary SVM per class.
func (m *Multiclass) Fit(x *mathx.Matrix, y []int) error {
	if x.Rows() == 0 {
		return ml.ErrEmptyDataset
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("%w: %d rows vs %d labels", ml.ErrLengthMatch, x.Rows(), len(y))
	}
	k := 0
	for _, v := range y {
		if v < 0 {
			return fmt.Errorf("svm: labels must be >= 0, got %d", v)
		}
		if v+1 > k {
			k = v + 1
		}
	}
	m.models = make([]*Binary, k)
	bin := make([]int, len(y))
	for c := 0; c < k; c++ {
		for i, v := range y {
			if v == c {
				bin[i] = 1
			} else {
				bin[i] = -1
			}
		}
		mdl := &Binary{Lambda: m.Lambda, Epochs: m.Epochs, Seed: m.Seed + int64(c), Balanced: m.Balanced}
		if err := mdl.FitBinary(x, bin); err != nil {
			return fmt.Errorf("svm: class %d: %w", c, err)
		}
		m.models[c] = mdl
	}
	return nil
}

// Predict returns the class whose binary model has the largest margin.
func (m *Multiclass) Predict(features []float64) (int, error) {
	if m.models == nil {
		return 0, ml.ErrNotFitted
	}
	best, bestScore := 0, 0.0
	for c, mdl := range m.models {
		d, err := mdl.Decision(features)
		if err != nil {
			return 0, err
		}
		if c == 0 || d > bestScore {
			best, bestScore = c, d
		}
	}
	return best, nil
}
