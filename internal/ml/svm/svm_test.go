package svm

import (
	"errors"
	"math/rand"
	"testing"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
)

// linearlySeparable returns points on either side of x0 = 5.
func linearlySeparable(n int, seed int64) (*mathx.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := mathx.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, rng.Float64()*4) // [0,4)
			x.Set(i, 1, rng.Float64()*10)
			y[i] = -1
		} else {
			x.Set(i, 0, 6+rng.Float64()*4) // [6,10)
			x.Set(i, 1, rng.Float64()*10)
			y[i] = 1
		}
	}
	return x, y
}

func TestFitBinaryErrors(t *testing.T) {
	var s Binary
	if err := s.FitBinary(mathx.NewMatrix(0, 2), nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("want ErrEmptyDataset, got %v", err)
	}
	x := mathx.NewMatrix(2, 2)
	if err := s.FitBinary(x, []int{1}); !errors.Is(err, ml.ErrLengthMatch) {
		t.Errorf("want ErrLengthMatch, got %v", err)
	}
	if err := s.FitBinary(x, []int{0, 2}); !errors.Is(err, ErrBadLabels) {
		t.Errorf("want ErrBadLabels, got %v", err)
	}
	if _, err := s.Decision([]float64{1, 2}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestBinarySeparable(t *testing.T) {
	x, y := linearlySeparable(200, 1)
	s := Binary{Epochs: 30, Seed: 1}
	if err := s.FitBinary(x, y); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < x.Rows(); i++ {
		p, err := s.PredictBinary(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if p == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(x.Rows()); acc < 0.97 {
		t.Errorf("training accuracy = %v, want >= 0.97", acc)
	}
}

func TestHingeLossDecreasesWithTraining(t *testing.T) {
	x, y := linearlySeparable(100, 2)
	short := Binary{Epochs: 1, Seed: 3}
	long := Binary{Epochs: 40, Seed: 3}
	if err := short.FitBinary(x, y); err != nil {
		t.Fatal(err)
	}
	if err := long.FitBinary(x, y); err != nil {
		t.Fatal(err)
	}
	ls, err := short.HingeLoss(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := long.HingeLoss(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !(ll <= ls) {
		t.Errorf("loss after 40 epochs (%v) should not exceed loss after 1 (%v)", ll, ls)
	}
	var unfitted Binary
	if _, err := unfitted.HingeLoss(x, y); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestDecisionDimensionCheck(t *testing.T) {
	x, y := linearlySeparable(20, 4)
	s := Binary{Seed: 4}
	if err := s.FitBinary(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decision([]float64{1}); err == nil {
		t.Error("want dimension error")
	}
}

func multiclassBlobs(n int, seed int64) (*mathx.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	x := mathx.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		x.Set(i, 0, centers[c][0]+rng.NormFloat64())
		x.Set(i, 1, centers[c][1]+rng.NormFloat64())
		y[i] = c
	}
	return x, y
}

func TestMulticlass(t *testing.T) {
	x, y := multiclassBlobs(300, 5)
	m := Multiclass{Epochs: 30, Seed: 5}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < x.Rows(); i++ {
		p, err := m.Predict(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if p == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(x.Rows()); acc < 0.95 {
		t.Errorf("multiclass accuracy = %v, want >= 0.95", acc)
	}
}

func TestMulticlassErrors(t *testing.T) {
	var m Multiclass
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
	if err := m.Fit(mathx.NewMatrix(0, 1), nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("want ErrEmptyDataset, got %v", err)
	}
	x := mathx.NewMatrix(2, 1)
	if err := m.Fit(x, []int{0}); !errors.Is(err, ml.ErrLengthMatch) {
		t.Errorf("want ErrLengthMatch, got %v", err)
	}
	if err := m.Fit(x, []int{-1, 0}); err == nil {
		t.Error("want negative-label error")
	}
}

func TestMulticlassDeterministicForSeed(t *testing.T) {
	x, y := multiclassBlobs(60, 6)
	a := Multiclass{Epochs: 5, Seed: 8}
	b := Multiclass{Epochs: 5, Seed: 8}
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		pa, _ := a.Predict(x.Row(i))
		pb, _ := b.Predict(x.Row(i))
		if pa != pb {
			t.Fatal("same seed should give identical predictions")
		}
	}
}
