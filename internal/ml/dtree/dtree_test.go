package dtree

import (
	"errors"
	"math/rand"
	"testing"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
)

func TestFitErrors(t *testing.T) {
	var tr Tree
	if err := tr.Fit(mathx.NewMatrix(0, 1), nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("want ErrEmptyDataset, got %v", err)
	}
	x := mathx.NewMatrix(2, 1)
	if err := tr.Fit(x, []int{0}); !errors.Is(err, ml.ErrLengthMatch) {
		t.Errorf("want ErrLengthMatch, got %v", err)
	}
	if err := tr.Fit(x, []int{-1, 0}); err == nil {
		t.Error("want negative-label error")
	}
	if _, err := tr.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestXORLearnable(t *testing.T) {
	// XOR needs depth 2 — exactly what a CART tree can express and a
	// linear model cannot.
	x, err := mathx.MatrixFromRows([][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	var tr Tree
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		p, err := tr.Predict(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if p != y[i] {
			t.Errorf("row %d: predicted %d, want %d", i, p, y[i])
		}
	}
	if tr.Depth() < 2 {
		t.Errorf("XOR tree depth = %d, want >= 2", tr.Depth())
	}
}

func TestPureNodeIsLeaf(t *testing.T) {
	x := mathx.NewMatrix(5, 2)
	y := []int{1, 1, 1, 1, 1}
	var tr Tree
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != 1 {
		t.Errorf("single-class data should give 1 node, got %d", tr.NodeCount())
	}
	p, _ := tr.Predict([]float64{0, 0})
	if p != 1 {
		t.Errorf("predict = %d, want 1", p)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mathx.NewMatrix(200, 3)
	y := make([]int, 200)
	for i := 0; i < 200; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = rng.Intn(4)
	}
	tr := Tree{MaxDepth: 3}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 3 {
		t.Errorf("depth %d exceeds MaxDepth 3", tr.Depth())
	}
}

func TestMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	x := mathx.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		if x.At(i, 0) > 0.5 {
			y[i] = 1
		}
	}
	tr := Tree{MinLeaf: 10}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Verify recursively by re-routing the training data.
	counts := map[*node]int{}
	for i := 0; i < n; i++ {
		nd := tr.root
		for !nd.leaf {
			if x.At(i, nd.feature) <= nd.threshold {
				nd = nd.left
			} else {
				nd = nd.right
			}
		}
		counts[nd]++
	}
	for nd, c := range counts {
		_ = nd
		if c < 10 {
			t.Errorf("leaf has %d examples, want >= 10", c)
		}
	}
}

func TestBlobAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := mathx.NewMatrix(n, 2)
	y := make([]int, n)
	centers := [][]float64{{0, 0}, {8, 0}, {0, 8}}
	for i := 0; i < n; i++ {
		c := i % 3
		x.Set(i, 0, centers[c][0]+rng.NormFloat64())
		x.Set(i, 1, centers[c][1]+rng.NormFloat64())
		y[i] = c
	}
	var tr Tree
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < n; i++ {
		p, _ := tr.Predict(x.Row(i))
		if p == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(n); acc < 0.95 {
		t.Errorf("blob accuracy = %v", acc)
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	x, _ := mathx.MatrixFromRows([][]float64{{0, 0}, {1, 1}})
	var tr Tree
	if err := tr.Fit(x, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() > 1 {
		if _, err := tr.Predict([]float64{}); err == nil {
			t.Error("want feature-range error for empty input")
		}
	}
}
