// Package dtree implements a CART-style decision tree classifier with
// Gini-impurity splits — one of the classic models the paper compares
// against the SVM for bug auto-classification (§II-C).
package dtree

import (
	"fmt"
	"math"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
)

// Tree is a CART decision tree. The zero value uses default limits.
type Tree struct {
	// MaxDepth bounds tree depth (default 12).
	MaxDepth int
	// MinLeaf is the minimum examples per leaf (default 1).
	MinLeaf int

	root *node
	k    int // number of classes
}

var _ ml.Classifier = (*Tree)(nil)

type node struct {
	// Leaf payload.
	leaf  bool
	class int
	// Split payload.
	feature     int
	threshold   float64
	left, right *node
}

// Fit grows the tree on rows of x with dense 0-based labels y.
func (t *Tree) Fit(x *mathx.Matrix, y []int) error {
	if x.Rows() == 0 {
		return ml.ErrEmptyDataset
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("%w: %d rows vs %d labels", ml.ErrLengthMatch, x.Rows(), len(y))
	}
	t.k = 0
	for _, v := range y {
		if v < 0 {
			return fmt.Errorf("dtree: labels must be >= 0, got %d", v)
		}
		if v+1 > t.k {
			t.k = v + 1
		}
	}
	idx := make([]int, x.Rows())
	for i := range idx {
		idx[i] = i
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 1
	}
	t.root = t.grow(x, y, idx, maxDepth, minLeaf)
	return nil
}

func (t *Tree) grow(x *mathx.Matrix, y, idx []int, depth, minLeaf int) *node {
	counts := make([]int, t.k)
	for _, i := range idx {
		counts[y[i]]++
	}
	majority, pure := majorityClass(counts, len(idx))
	if pure || depth == 0 || len(idx) < 2*minLeaf {
		return &node{leaf: true, class: majority}
	}
	// A zero-gain split is still taken when the node is impure (as in
	// classic CART): symmetric concepts like XOR have zero first-split
	// gain yet become separable one level down.
	feat, thr, ok := bestSplit(x, y, idx, t.k, minLeaf)
	if !ok {
		return &node{leaf: true, class: majority}
	}
	var li, ri []int
	for _, i := range idx {
		if x.At(i, feat) <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < minLeaf || len(ri) < minLeaf {
		return &node{leaf: true, class: majority}
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.grow(x, y, li, depth-1, minLeaf),
		right:     t.grow(x, y, ri, depth-1, minLeaf),
	}
}

func majorityClass(counts []int, n int) (class int, pure bool) {
	best := 0
	for c, v := range counts {
		if v > counts[best] {
			best = c
		}
	}
	return best, counts[best] == n
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// bestSplit scans every feature using the classic sort-and-sweep to
// find the split maximizing Gini gain. ok is false when no feature
// admits a valid split (all values identical or minLeaf unsatisfiable).
func bestSplit(x *mathx.Matrix, y, idx []int, k, minLeaf int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	parentCounts := make([]int, k)
	for _, i := range idx {
		parentCounts[y[i]]++
	}
	parentGini := gini(parentCounts, n)

	bestGain := math.Inf(-1)
	bestFeat, bestThr := -1, 0.0

	pairs := make([]pair, n)
	left := make([]int, k)
	right := make([]int, k)

	for f := 0; f < x.Cols(); f++ {
		for j, i := range idx {
			pairs[j] = pair{x.At(i, f), y[i]}
		}
		sortPairs(pairs)
		for c := range left {
			left[c] = 0
			right[c] = parentCounts[c]
		}
		for j := 0; j < n-1; j++ {
			left[pairs[j].y]++
			right[pairs[j].y]--
			if pairs[j].v == pairs[j+1].v {
				continue
			}
			nl, nr := j+1, n-j-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			g := parentGini -
				(float64(nl)*gini(left, nl)+float64(nr)*gini(right, nr))/float64(n)
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThr = (pairs[j].v + pairs[j+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, false
	}
	return bestFeat, bestThr, true
}

// sortPairs is an insertion/shell sort over the scratch slice; n is the
// number of examples at a node, typically small after a few splits.
func sortPairs(p []pair) {
	for gap := len(p) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(p); i++ {
			t := p[i]
			j := i
			for ; j >= gap && p[j-gap].v > t.v; j -= gap {
				p[j] = p[j-gap]
			}
			p[j] = t
		}
	}
}

type pair struct {
	v float64
	y int
}

// Predict walks the tree for one feature vector.
func (t *Tree) Predict(features []float64) (int, error) {
	if t.root == nil {
		return 0, ml.ErrNotFitted
	}
	n := t.root
	for !n.leaf {
		if n.feature >= len(features) {
			return 0, fmt.Errorf("dtree: feature %d out of range (%d features)", n.feature, len(features))
		}
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class, nil
}

// Depth returns the depth of the fitted tree (0 for a single leaf).
func (t *Tree) Depth() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// NodeCount returns the number of nodes in the fitted tree.
func (t *Tree) NodeCount() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		return 1 + walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}
