package corpus

import (
	"math"
	"math/rand"
	"testing"

	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

func fullCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateCounts(t *testing.T) {
	c := fullCorpus(t)
	// Paper §II-B: FAUCET 251, ONOS 186, CORD 358 critical bugs.
	wants := map[tracker.Controller]int{
		tracker.FAUCET: 251,
		tracker.ONOS:   186,
		tracker.CORD:   358,
	}
	for ctl, want := range wants {
		if got := len(c.ByController(ctl)); got != want {
			t.Errorf("%s: %d issues, want %d", ctl, got, want)
		}
	}
	if len(c.Issues) != 795 {
		t.Errorf("total = %d, want 795", len(c.Issues))
	}
	if len(c.ManualIDs) != 150 {
		t.Errorf("manual set = %d, want 150", len(c.ManualIDs))
	}
}

func TestEveryIssueLabeledAndValid(t *testing.T) {
	c := fullCorpus(t)
	for _, iss := range c.Issues {
		l, ok := c.Labels[iss.ID]
		if !ok {
			t.Fatalf("issue %s has no label", iss.ID)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("issue %s label invalid: %v", iss.ID, err)
		}
		if !l.Complete() {
			t.Fatalf("issue %s label incomplete: %+v", iss.ID, l)
		}
		if iss.Title == "" || iss.Description == "" {
			t.Fatalf("issue %s missing text", iss.ID)
		}
		if !iss.Severity.Critical() {
			t.Fatalf("issue %s severity %v not in critical band", iss.ID, iss.Severity)
		}
	}
}

func TestManualSubsetIsClosedBugs(t *testing.T) {
	c := fullCorpus(t)
	issues, labels := c.ManualSubset()
	if len(issues) != 150 || len(labels) != 150 {
		t.Fatalf("manual subset %d/%d", len(issues), len(labels))
	}
	for _, iss := range issues {
		if iss.Status != tracker.StatusClosed {
			t.Errorf("manual bug %s is %v, want closed", iss.ID, iss.Status)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Issues) != len(b.Issues) {
		t.Fatal("issue counts differ")
	}
	for i := range a.Issues {
		if a.Issues[i].ID != b.Issues[i].ID ||
			a.Issues[i].Description != b.Issues[i].Description ||
			!a.Issues[i].Created.Equal(b.Issues[i].Created) {
			t.Fatalf("issue %d differs between same-seed runs", i)
		}
		if a.Labels[a.Issues[i].ID] != b.Labels[b.Issues[i].ID] {
			t.Fatalf("label %d differs between same-seed runs", i)
		}
	}
}

// fraction computes the share of the controller's bugs satisfying pred.
func fraction(c *Corpus, ctl tracker.Controller, pred func(taxonomy.Label) bool) float64 {
	issues := c.ByController(ctl)
	hits := 0
	for _, iss := range issues {
		if pred(c.Labels[iss.ID]) {
			hits++
		}
	}
	return float64(hits) / float64(len(issues))
}

func TestDeterminismCalibration(t *testing.T) {
	c := fullCorpus(t)
	// §III: FAUCET 96 %, ONOS 94 %, CORD 94 % deterministic (±4 pts on
	// a finite sample).
	targets := map[tracker.Controller]float64{
		tracker.FAUCET: 0.96, tracker.ONOS: 0.94, tracker.CORD: 0.94,
	}
	for ctl, want := range targets {
		got := fraction(c, ctl, func(l taxonomy.Label) bool { return l.Type == taxonomy.Deterministic })
		if math.Abs(got-want) > 0.04 {
			t.Errorf("%s deterministic = %.3f, want ≈ %.2f", ctl, got, want)
		}
	}
}

func TestTriggerCalibration(t *testing.T) {
	c := fullCorpus(t)
	// §V-A overall: config 38.8, external 33, network 19.8, reboot 8.4.
	n := len(c.Issues)
	counts := map[taxonomy.Trigger]int{}
	for _, l := range c.Labels {
		counts[l.Trigger]++
	}
	wants := map[taxonomy.Trigger]float64{
		taxonomy.TriggerConfiguration:  0.388,
		taxonomy.TriggerExternalCall:   0.33,
		taxonomy.TriggerNetworkEvent:   0.198,
		taxonomy.TriggerHardwareReboot: 0.084,
	}
	for trig, want := range wants {
		got := float64(counts[trig]) / float64(n)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("trigger %v = %.3f, want ≈ %.3f", trig, got, want)
		}
	}
}

func TestSymptomCalibration(t *testing.T) {
	c := fullCorpus(t)
	n := len(c.Issues)
	counts := map[taxonomy.Symptom]int{}
	for _, l := range c.Labels {
		counts[l.Symptom]++
	}
	wants := map[taxonomy.Symptom]float64{
		taxonomy.SymptomByzantine:    0.6133,
		taxonomy.SymptomFailStop:     0.20,
		taxonomy.SymptomErrorMessage: 0.147,
		taxonomy.SymptomPerformance:  0.04,
	}
	for sym, want := range wants {
		got := float64(counts[sym]) / float64(n)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("symptom %v = %.3f, want ≈ %.3f", sym, got, want)
		}
	}
}

func TestRootCauseCalibration(t *testing.T) {
	c := fullCorpus(t)
	// §VII-A: FAUCET missing-logic 52.5 %; CORD load 30 % vs ONOS 16 %.
	ml := fraction(c, tracker.FAUCET, func(l taxonomy.Label) bool { return l.Cause == taxonomy.CauseMissingLogic })
	if math.Abs(ml-0.525) > 0.07 {
		t.Errorf("FAUCET missing-logic = %.3f, want ≈ 0.525", ml)
	}
	cordLoad := fraction(c, tracker.CORD, func(l taxonomy.Label) bool { return l.Cause == taxonomy.CauseLoad })
	onosLoad := fraction(c, tracker.ONOS, func(l taxonomy.Label) bool { return l.Cause == taxonomy.CauseLoad })
	if math.Abs(cordLoad-0.30) > 0.07 {
		t.Errorf("CORD load = %.3f, want ≈ 0.30", cordLoad)
	}
	if math.Abs(onosLoad-0.16) > 0.07 {
		t.Errorf("ONOS load = %.3f, want ≈ 0.16", onosLoad)
	}
	if !(cordLoad > onosLoad) {
		t.Error("CORD must be more load-prone than ONOS")
	}
}

func TestFixCalibration(t *testing.T) {
	c := fullCorpus(t)
	var confTotal, confFixedByConfig int
	var extTotal, extCompat int
	for _, l := range c.Labels {
		switch l.Trigger {
		case taxonomy.TriggerConfiguration:
			confTotal++
			if l.Fix == taxonomy.FixConfiguration {
				confFixedByConfig++
			}
		case taxonomy.TriggerExternalCall:
			extTotal++
			if l.Fix == taxonomy.FixAddCompatibility || l.Fix == taxonomy.FixUpgradePackages {
				extCompat++
			}
		}
	}
	gotConf := float64(confFixedByConfig) / float64(confTotal)
	if math.Abs(gotConf-0.25) > 0.06 {
		t.Errorf("config bugs fixed by config change = %.3f, want ≈ 0.25", gotConf)
	}
	gotExt := float64(extCompat) / float64(extTotal)
	if math.Abs(gotExt-0.414) > 0.07 {
		t.Errorf("external-call compatibility fixes = %.3f, want ≈ 0.414", gotExt)
	}
}

func TestResolutionTimesVisibility(t *testing.T) {
	c := fullCorpus(t)
	// FAUCET (GitHub) resolution times are hidden; JIRA projects have
	// them for closed bugs (paper's Figure 7 protocol).
	for _, iss := range c.ByController(tracker.FAUCET) {
		if _, ok := iss.ResolutionTime(); ok {
			t.Fatalf("FAUCET issue %s exposes a resolution time", iss.ID)
		}
	}
	var with int
	onos := c.ByController(tracker.ONOS)
	for _, iss := range onos {
		if _, ok := iss.ResolutionTime(); ok {
			with++
		}
	}
	if with == 0 {
		t.Error("ONOS should expose resolution times for closed bugs")
	}
}

func TestGenerateControllerErrors(t *testing.T) {
	spec := DefaultSpecs()[tracker.ONOS]
	spec.TotalBugs = 0
	if _, err := GenerateController(spec, 1); err == nil {
		t.Error("want error for TotalBugs=0")
	}
	spec = DefaultSpecs()[tracker.ONOS]
	spec.ManualCount = spec.TotalBugs + 1
	if _, err := GenerateController(spec, 1); err == nil {
		t.Error("want error for ManualCount > TotalBugs")
	}
	spec = DefaultSpecs()[tracker.ONOS]
	spec.Releases = nil
	if _, err := GenerateController(spec, 1); err == nil {
		t.Error("want error for no releases")
	}
	spec = DefaultSpecs()[tracker.ONOS]
	spec.TriggerDist = map[taxonomy.Trigger]float64{}
	if _, err := GenerateController(spec, 1); err == nil {
		t.Error("want error for empty trigger distribution")
	}
}

func TestSpecDistributionsSumToOne(t *testing.T) {
	for ctl, spec := range DefaultSpecs() {
		checkSum := func(name string, sum float64) {
			if math.Abs(sum-1) > 0.01 {
				t.Errorf("%s: %s sums to %.4f", ctl, name, sum)
			}
		}
		var s float64
		for _, w := range spec.TriggerDist {
			s += w
		}
		checkSum("TriggerDist", s)
		s = 0
		for _, w := range spec.SymptomDist {
			s += w
		}
		checkSum("SymptomDist", s)
		s = 0
		for _, w := range spec.ConfigScopeDist {
			s += w
		}
		checkSum("ConfigScopeDist", s)
		for sym, dist := range spec.CauseBySymptom {
			s = 0
			for _, w := range dist {
				s += w
			}
			checkSum("CauseBySymptom["+sym.String()+"]", s)
		}
		for trig, dist := range spec.FixByTrigger {
			s = 0
			for _, w := range dist {
				s += w
			}
			checkSum("FixByTrigger["+trig.String()+"]", s)
		}
	}
}

func TestCreationTimesWithinWindow(t *testing.T) {
	c := fullCorpus(t)
	for _, iss := range c.Issues {
		if iss.Created.Year() < 2015 || iss.Created.Year() > 2021 {
			t.Fatalf("issue %s created %v, outside study window", iss.ID, iss.Created)
		}
	}
}

func TestQuotaSequenceProperty(t *testing.T) {
	// Largest-remainder allocation: counts sum to n and each category's
	// count is within 1 of its exact share.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		cats := taxonomy.Triggers()
		dist := map[taxonomy.Trigger]float64{}
		var total float64
		for _, c := range cats {
			w := rng.Float64()
			dist[c] = w
			total += w
		}
		seq, err := quotaSequence(rng, cats, dist, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != n {
			t.Fatalf("len = %d, want %d", len(seq), n)
		}
		counts := map[taxonomy.Trigger]int{}
		for _, c := range seq {
			counts[c]++
		}
		for _, c := range cats {
			exact := dist[c] / total * float64(n)
			if d := float64(counts[c]) - exact; d < -1.0001 || d > 1.0001 {
				t.Fatalf("category %v count %d deviates %f from exact %f (n=%d)",
					c, counts[c], d, exact, n)
			}
		}
	}
	// Degenerate inputs.
	if _, err := quotaSequence(rng, taxonomy.Triggers(), map[taxonomy.Trigger]float64{}, 5); err == nil {
		t.Error("want error for empty distribution")
	}
	if seq, err := quotaSequence(rng, taxonomy.Triggers(), map[taxonomy.Trigger]float64{taxonomy.TriggerConfiguration: 1}, 0); err != nil || seq != nil {
		t.Errorf("n=0 should be (nil, nil): %v %v", seq, err)
	}
}
