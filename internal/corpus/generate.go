package corpus

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/textgen"
	"sdnbugs/internal/tracker"
)

// Corpus is a generated bug data set: the issues as the trackers would
// expose them, plus the hidden ground-truth labels and the designated
// manual-analysis subset.
type Corpus struct {
	Issues []tracker.Issue
	// Labels maps issue ID to its ground-truth taxonomy label — the
	// stand-in for the authors' manual analysis.
	Labels map[string]taxonomy.Label
	// ManualIDs is the randomly chosen closed-bug subset (50 per
	// controller in the paper).
	ManualIDs []string
}

// ErrBadSpec is returned when a spec is structurally unusable.
var ErrBadSpec = errors.New("corpus: bad spec")

// Generate builds the full three-controller corpus with DefaultSpecs.
func Generate(seed int64) (*Corpus, error) {
	specs := DefaultSpecs()
	out := &Corpus{Labels: make(map[string]taxonomy.Label)}
	for _, c := range tracker.Controllers() {
		part, err := GenerateController(specs[c], seed+int64(c)*1000)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", c, err)
		}
		out.Issues = append(out.Issues, part.Issues...)
		for id, l := range part.Labels {
			out.Labels[id] = l
		}
		out.ManualIDs = append(out.ManualIDs, part.ManualIDs...)
	}
	return out, nil
}

// GenerateController builds the corpus for a single controller spec.
func GenerateController(spec Spec, seed int64) (*Corpus, error) {
	if spec.TotalBugs <= 0 {
		return nil, fmt.Errorf("%w: TotalBugs %d", ErrBadSpec, spec.TotalBugs)
	}
	if spec.ManualCount < 0 || spec.ManualCount > spec.TotalBugs {
		return nil, fmt.Errorf("%w: ManualCount %d of %d", ErrBadSpec, spec.ManualCount, spec.TotalBugs)
	}
	if len(spec.Releases) == 0 {
		return nil, fmt.Errorf("%w: no releases", ErrBadSpec)
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Corpus{Labels: make(map[string]taxonomy.Label, spec.TotalBugs)}

	// Triggers, symptoms and byzantine modes are assigned by quota
	// (largest remainder) so the published marginals are hit exactly;
	// all conditional structure below them is sampled.
	triggers, err := quotaSequence(rng, taxonomy.Triggers(), spec.TriggerDist, spec.TotalBugs)
	if err != nil {
		return nil, err
	}
	symptoms, err := quotaSequence(rng, taxonomy.Symptoms(), spec.SymptomDist, spec.TotalBugs)
	if err != nil {
		return nil, err
	}
	nByz := 0
	for _, s := range symptoms {
		if s == taxonomy.SymptomByzantine {
			nByz++
		}
	}
	byzModes, err := quotaSequence(rng, taxonomy.ByzantineModes(), spec.ByzantineDist, nByz)
	if err != nil {
		return nil, err
	}
	byzNext := 0

	// Fixes are quota-allocated per trigger group so §V-A's fix shares
	// (25 % config-fixed-by-config, 41.4 % compatibility) hold exactly
	// up to the concurrency→add-synchronization override.
	fixQueues := make(map[taxonomy.Trigger][]taxonomy.Fix, len(taxonomy.Triggers()))
	trigCounts := map[taxonomy.Trigger]int{}
	for _, tr := range triggers {
		trigCounts[tr]++
	}
	for _, tr := range taxonomy.Triggers() {
		if trigCounts[tr] == 0 {
			continue
		}
		dist, ok := spec.FixByTrigger[tr]
		if !ok {
			return nil, fmt.Errorf("%w: no fix distribution for %v", ErrBadSpec, tr)
		}
		q, err := quotaSequence(rng, taxonomy.Fixes(), dist, trigCounts[tr])
		if err != nil {
			return nil, err
		}
		fixQueues[tr] = q
	}

	var closedIdx []int
	for i := 0; i < spec.TotalBugs; i++ {
		var mode taxonomy.ByzantineMode
		if symptoms[i] == taxonomy.SymptomByzantine {
			mode = byzModes[byzNext]
			byzNext++
		}
		label, err := sampleLabel(rng, spec, triggers[i], symptoms[i], mode, fixQueues)
		if err != nil {
			return nil, err
		}
		issue := buildIssue(rng, spec, i+1, label)
		if issue.Status == tracker.StatusClosed {
			closedIdx = append(closedIdx, len(out.Issues))
		}
		out.Labels[issue.ID] = label
		out.Issues = append(out.Issues, issue)
	}
	// Manual subset: random closed bugs, like the paper's protocol.
	if len(closedIdx) < spec.ManualCount {
		return nil, fmt.Errorf("%w: only %d closed bugs for manual sample of %d",
			ErrBadSpec, len(closedIdx), spec.ManualCount)
	}
	rng.Shuffle(len(closedIdx), func(i, j int) {
		closedIdx[i], closedIdx[j] = closedIdx[j], closedIdx[i]
	})
	picked := append([]int(nil), closedIdx[:spec.ManualCount]...)
	sort.Ints(picked)
	for _, i := range picked {
		out.ManualIDs = append(out.ManualIDs, out.Issues[i].ID)
	}
	return out, nil
}

// quotaSequence allocates n draws across categories by the largest-
// remainder method, then shuffles the sequence. It returns an error for
// an empty or negative distribution.
func quotaSequence[T comparable](rng *rand.Rand, cats []T, dist map[T]float64, n int) ([]T, error) {
	if n == 0 {
		return nil, nil
	}
	var total float64
	for _, c := range cats {
		w := dist[c]
		if w < 0 {
			return nil, fmt.Errorf("%w: negative weight", ErrBadSpec)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: empty distribution", ErrBadSpec)
	}
	counts := make([]int, len(cats))
	rems := make([]float64, len(cats))
	assigned := 0
	for i, c := range cats {
		exact := dist[c] / total * float64(n)
		counts[i] = int(exact)
		rems[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i] > rems[best] {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		assigned++
	}
	seq := make([]T, 0, n)
	for i, c := range cats {
		for k := 0; k < counts[i]; k++ {
			seq = append(seq, c)
		}
	}
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return seq, nil
}

func sampleLabel(rng *rand.Rand, spec Spec, trig taxonomy.Trigger, sym taxonomy.Symptom, mode taxonomy.ByzantineMode, fixQueues map[taxonomy.Trigger][]taxonomy.Fix) (taxonomy.Label, error) {
	var l taxonomy.Label

	l.Trigger = trig
	switch trig {
	case taxonomy.TriggerConfiguration:
		scope, err := weightedConfigScope(rng, spec.ConfigScopeDist)
		if err != nil {
			return l, err
		}
		l.ConfigScope = scope
	case taxonomy.TriggerExternalCall:
		kind, err := weightedExternalKind(rng, spec.ExternalKindDist)
		if err != nil {
			return l, err
		}
		l.ExternalKind = kind
	}

	l.Symptom = sym
	if sym == taxonomy.SymptomByzantine {
		l.Byzantine = mode
	}

	causeDist, ok := spec.CauseBySymptom[sym]
	if !ok {
		return l, fmt.Errorf("%w: no cause distribution for %v", ErrBadSpec, sym)
	}
	cause, err := weightedCause(rng, causeDist)
	if err != nil {
		return l, err
	}
	l.Cause = cause

	if rng.Float64() < spec.NonDetByCause[cause] {
		l.Type = taxonomy.NonDeterministic
	} else {
		l.Type = taxonomy.Deterministic
	}

	// Concurrency bugs are overwhelmingly fixed by synchronization,
	// regardless of trigger (§VII-B correlation); everyone else draws
	// the next quota-allocated fix for their trigger.
	if cause == taxonomy.CauseConcurrency && rng.Float64() < 0.8 {
		l.Fix = taxonomy.FixAddSynchronization
	} else {
		q := fixQueues[trig]
		if len(q) == 0 {
			return l, fmt.Errorf("%w: fix quota exhausted for %v", ErrBadSpec, trig)
		}
		l.Fix = q[0]
		fixQueues[trig] = q[1:]
	}
	if err := l.Validate(); err != nil {
		return l, fmt.Errorf("corpus: generated invalid label: %w", err)
	}
	return l, nil
}

func buildIssue(rng *rand.Rand, spec Spec, n int, label taxonomy.Label) tracker.Issue {
	report := textgen.Generate(rng, spec.Controller, label)

	var id string
	switch tracker.TrackerFor(spec.Controller) {
	case tracker.KindGitHub:
		id = fmt.Sprintf("%s#%d", spec.Controller, n)
	default:
		id = fmt.Sprintf("%s-%d", spec.Controller, n)
	}

	created := sampleCreation(rng, spec.Releases)
	status := tracker.StatusClosed
	if rng.Float64() < 0.12 {
		status = tracker.StatusOpen
	}

	severity := tracker.SeverityCritical
	if rng.Float64() < 0.2 {
		severity = tracker.SeverityBlocker
	}

	issue := tracker.Issue{
		ID:             id,
		Controller:     spec.Controller,
		ControllerName: spec.Controller.String(),
		Title:          report.Title,
		Description:    report.Description,
		Severity:       severity,
		Status:         status,
		Created:        created,
		Labels:         []string{"bug", label.Trigger.String()},
	}
	for k, c := range report.Comments {
		issue.Comments = append(issue.Comments, tracker.Comment{
			Author:  fmt.Sprintf("dev%d", rng.Intn(20)),
			Body:    c,
			Created: created.Add(time.Duration(k+1) * 24 * time.Hour),
		})
	}
	if status == tracker.StatusClosed {
		// FAUCET is tracked on GitHub, which (as in the paper) does
		// not expose resolution timestamps to the miner.
		if tracker.TrackerFor(spec.Controller) != tracker.KindGitHub {
			ln := spec.ResolutionDays[label.Trigger]
			issue.Resolved = created.Add(sampleLogNormalDays(rng, ln))
		}
		issue.FixRef = fmt.Sprintf("change/%05d", rng.Intn(100000))
	}
	return issue
}

// sampleCreation clusters 70 % of bugs in a burst after a release and
// spreads the rest uniformly across the study window (§II-B).
func sampleCreation(rng *rand.Rand, releases []time.Time) time.Time {
	first := releases[0]
	last := releases[len(releases)-1].AddDate(0, 3, 0)
	if rng.Float64() < 0.7 {
		rel := releases[rng.Intn(len(releases))]
		offset := rng.NormFloat64()*15 + 10 // days, centered after release
		t := rel.Add(time.Duration(offset*24) * time.Hour)
		if t.Before(first) {
			t = first
		}
		if t.After(last) {
			t = last
		}
		return t
	}
	span := last.Sub(first)
	return first.Add(time.Duration(rng.Int63n(int64(span))))
}

func sampleLogNormalDays(rng *rand.Rand, ln LogNormal) time.Duration {
	if ln.MedianDays <= 0 {
		ln.MedianDays = 7
	}
	if ln.Sigma <= 0 {
		ln.Sigma = 1
	}
	mu := math.Log(ln.MedianDays)
	days := math.Exp(mu + ln.Sigma*rng.NormFloat64())
	if days < 0.04 {
		days = 0.04 // at least ~1 hour
	}
	return time.Duration(days * 24 * float64(time.Hour))
}

// The weighted samplers iterate categories in canonical enum order so
// generation is deterministic for a seed.

func weightedPick(rng *rand.Rand, weights []float64) (int, error) {
	var total float64
	for _, w := range weights {
		if w < 0 {
			return 0, fmt.Errorf("%w: negative weight", ErrBadSpec)
		}
		total += w
	}
	if total <= 0 {
		return 0, fmt.Errorf("%w: empty distribution", ErrBadSpec)
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i, nil
		}
	}
	return len(weights) - 1, nil
}

func weightedCause(rng *rand.Rand, dist map[taxonomy.RootCause]float64) (taxonomy.RootCause, error) {
	cats := taxonomy.RootCauses()
	ws := make([]float64, len(cats))
	for i, c := range cats {
		ws[i] = dist[c]
	}
	i, err := weightedPick(rng, ws)
	if err != nil {
		return taxonomy.RootCauseUnknown, err
	}
	return cats[i], nil
}

func weightedConfigScope(rng *rand.Rand, dist map[taxonomy.ConfigScope]float64) (taxonomy.ConfigScope, error) {
	cats := taxonomy.ConfigScopes()
	ws := make([]float64, len(cats))
	for i, c := range cats {
		ws[i] = dist[c]
	}
	i, err := weightedPick(rng, ws)
	if err != nil {
		return taxonomy.ConfigScopeNone, err
	}
	return cats[i], nil
}

func weightedExternalKind(rng *rand.Rand, dist map[taxonomy.ExternalCallKind]float64) (taxonomy.ExternalCallKind, error) {
	cats := taxonomy.ExternalCallKinds()
	ws := make([]float64, len(cats))
	for i, c := range cats {
		ws[i] = dist[c]
	}
	i, err := weightedPick(rng, ws)
	if err != nil {
		return taxonomy.ExternalCallNone, err
	}
	return cats[i], nil
}

// ManualSubset returns the issues (with labels) in the manual set.
func (c *Corpus) ManualSubset() ([]tracker.Issue, []taxonomy.Label) {
	byID := make(map[string]tracker.Issue, len(c.Issues))
	for _, iss := range c.Issues {
		byID[iss.ID] = iss
	}
	issues := make([]tracker.Issue, 0, len(c.ManualIDs))
	labels := make([]taxonomy.Label, 0, len(c.ManualIDs))
	for _, id := range c.ManualIDs {
		iss, ok := byID[id]
		if !ok {
			continue
		}
		issues = append(issues, iss)
		labels = append(labels, c.Labels[id])
	}
	return issues, labels
}

// ByController returns the issues belonging to one controller.
func (c *Corpus) ByController(ctl tracker.Controller) []tracker.Issue {
	var out []tracker.Issue
	for _, iss := range c.Issues {
		if iss.Controller == ctl {
			out = append(out, iss)
		}
	}
	return out
}
