// Package corpus generates the synthetic bug corpus that stands in for
// the paper's mined JIRA/GitHub data set. Every published marginal and
// conditional distribution (Sections II–V, Tables III–VI, Figures 2, 7,
// 12–14) is a calibration target of the default specs; generation is
// deterministic for a seed, and each bug carries a hidden ground-truth
// label that plays the role of the authors' manual analysis.
package corpus

import (
	"time"

	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

// LogNormal parameterizes a lognormal duration distribution by its
// median (in days) and the σ of the underlying normal.
type LogNormal struct {
	MedianDays float64
	Sigma      float64
}

// Spec is the calibrated generation recipe for one controller.
type Spec struct {
	Controller tracker.Controller
	// TotalBugs is the size of the full critical-bug set (paper §II-B:
	// FAUCET 251, ONOS 186, CORD 358).
	TotalBugs int
	// ManualCount is the size of the closed-bug manual-analysis sample
	// (50 per controller).
	ManualCount int

	// TriggerDist is P(trigger); §V-A's overall split is the weighted
	// combination of the three controllers.
	TriggerDist map[taxonomy.Trigger]float64
	// ConfigScopeDist is P(scope | configuration trigger), Table III.
	ConfigScopeDist map[taxonomy.ConfigScope]float64
	// ExternalKindDist is P(kind | external-call trigger), Figure 13.
	ExternalKindDist map[taxonomy.ExternalCallKind]float64
	// SymptomDist is P(symptom), §IV.
	SymptomDist map[taxonomy.Symptom]float64
	// ByzantineDist is P(mode | byzantine symptom), §IV.
	ByzantineDist map[taxonomy.ByzantineMode]float64
	// CauseBySymptom is P(cause | symptom), Figure 2 and §VII-A.
	CauseBySymptom map[taxonomy.Symptom]map[taxonomy.RootCause]float64
	// NonDetByCause is P(non-deterministic | cause), §III and the
	// memory↔deterministic correlation of §VII-B.
	NonDetByCause map[taxonomy.RootCause]float64
	// FixByTrigger is P(fix | trigger), §V-A.
	FixByTrigger map[taxonomy.Trigger]map[taxonomy.Fix]float64
	// ResolutionDays gives per-trigger resolution-time distributions,
	// Figure 7.
	ResolutionDays map[taxonomy.Trigger]LogNormal
	// Releases are the project's release dates; bug creation bursts
	// around them (paper §II-B).
	Releases []time.Time
}

func quarterly(start time.Time, quarters int) []time.Time {
	out := make([]time.Time, quarters)
	for i := range out {
		out[i] = start.AddDate(0, 3*i, 0)
	}
	return out
}

// DefaultSpecs returns the calibrated spec for every studied
// controller. The numbers are chosen so the blended manual-set
// marginals reproduce the paper's published figures:
//
//	triggers  38.8 / 33 / 19.8 / 8.4  (config/external/network/reboot)
//	symptoms  61.33 byzantine, 20 fail-stop, 14.7 error, 4 performance
//	determinism 96 / 94 / 94 (FAUCET/ONOS/CORD)
//	missing-logic 52.5 % in FAUCET; load 30 % CORD vs 16 % ONOS
func DefaultSpecs() map[tracker.Controller]Spec {
	return map[tracker.Controller]Spec{
		tracker.FAUCET: {
			Controller:  tracker.FAUCET,
			TotalBugs:   251,
			ManualCount: 50,
			TriggerDist: map[taxonomy.Trigger]float64{
				taxonomy.TriggerConfiguration:  0.40,
				taxonomy.TriggerExternalCall:   0.36,
				taxonomy.TriggerNetworkEvent:   0.20,
				taxonomy.TriggerHardwareReboot: 0.04,
			},
			ConfigScopeDist: map[taxonomy.ConfigScope]float64{
				taxonomy.ConfigController: 0.529,
				taxonomy.ConfigDataPlane:  0.117,
				taxonomy.ConfigThirdParty: 0.354,
			},
			ExternalKindDist: defaultExternalKinds(),
			SymptomDist: map[taxonomy.Symptom]float64{
				taxonomy.SymptomByzantine:    0.60,
				taxonomy.SymptomFailStop:     0.20,
				taxonomy.SymptomErrorMessage: 0.16,
				taxonomy.SymptomPerformance:  0.04,
			},
			ByzantineDist: defaultByzantineModes(),
			CauseBySymptom: map[taxonomy.Symptom]map[taxonomy.RootCause]float64{
				// FAUCET: missing logic dominates overall (52.5 %);
				// fail-stop comes from humans and the ecosystem;
				// performance problems come from the ecosystem.
				taxonomy.SymptomByzantine: {
					taxonomy.CauseMissingLogic:   0.73,
					taxonomy.CauseEcosystem:      0.08,
					taxonomy.CauseHumanMisconfig: 0.07,
					taxonomy.CauseConcurrency:    0.05,
					taxonomy.CauseMemory:         0.04,
					taxonomy.CauseLoad:           0.03,
				},
				taxonomy.SymptomFailStop: {
					taxonomy.CauseHumanMisconfig: 0.40,
					taxonomy.CauseEcosystem:      0.40,
					taxonomy.CauseMissingLogic:   0.10,
					taxonomy.CauseMemory:         0.05,
					taxonomy.CauseLoad:           0.05,
				},
				taxonomy.SymptomErrorMessage: {
					taxonomy.CauseMissingLogic:   0.40,
					taxonomy.CauseEcosystem:      0.30,
					taxonomy.CauseHumanMisconfig: 0.20,
					taxonomy.CauseLoad:           0.05,
					taxonomy.CauseMemory:         0.05,
				},
				taxonomy.SymptomPerformance: {
					taxonomy.CauseEcosystem:   0.60,
					taxonomy.CauseLoad:        0.20,
					taxonomy.CauseConcurrency: 0.10,
					taxonomy.CauseMemory:      0.10,
				},
			},
			NonDetByCause: defaultNonDetByCause(),
			FixByTrigger:  defaultFixByTrigger(),
			ResolutionDays: map[taxonomy.Trigger]LogNormal{
				// GitHub hides these from the miner, but the generator
				// still models them for internal consistency.
				taxonomy.TriggerConfiguration:  {MedianDays: 9, Sigma: 1.0},
				taxonomy.TriggerExternalCall:   {MedianDays: 7, Sigma: 0.9},
				taxonomy.TriggerNetworkEvent:   {MedianDays: 6, Sigma: 0.9},
				taxonomy.TriggerHardwareReboot: {MedianDays: 6, Sigma: 0.8},
			},
			Releases: quarterly(time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC), 16),
		},
		tracker.ONOS: {
			Controller:  tracker.ONOS,
			TotalBugs:   186,
			ManualCount: 50,
			TriggerDist: map[taxonomy.Trigger]float64{
				taxonomy.TriggerConfiguration:  0.40,
				taxonomy.TriggerExternalCall:   0.34,
				taxonomy.TriggerNetworkEvent:   0.20,
				taxonomy.TriggerHardwareReboot: 0.06,
			},
			ConfigScopeDist: map[taxonomy.ConfigScope]float64{
				taxonomy.ConfigController: 0.60,
				taxonomy.ConfigDataPlane:  0.15,
				taxonomy.ConfigThirdParty: 0.25,
			},
			ExternalKindDist: defaultExternalKinds(),
			SymptomDist: map[taxonomy.Symptom]float64{
				taxonomy.SymptomByzantine:    0.60,
				taxonomy.SymptomFailStop:     0.20,
				taxonomy.SymptomErrorMessage: 0.16,
				taxonomy.SymptomPerformance:  0.04,
			},
			ByzantineDist: defaultByzantineModes(),
			CauseBySymptom: map[taxonomy.Symptom]map[taxonomy.RootCause]float64{
				// ONOS: controller-logic causes dominate fail-stop;
				// performance problems are concurrency (global locks);
				// load stays near 16 % overall.
				taxonomy.SymptomByzantine: {
					taxonomy.CauseMissingLogic:   0.35,
					taxonomy.CauseConcurrency:    0.20,
					taxonomy.CauseLoad:           0.15,
					taxonomy.CauseEcosystem:      0.12,
					taxonomy.CauseMemory:         0.10,
					taxonomy.CauseHumanMisconfig: 0.08,
				},
				taxonomy.SymptomFailStop: {
					taxonomy.CauseMissingLogic:   0.30,
					taxonomy.CauseLoad:           0.25,
					taxonomy.CauseMemory:         0.25,
					taxonomy.CauseConcurrency:    0.10,
					taxonomy.CauseEcosystem:      0.05,
					taxonomy.CauseHumanMisconfig: 0.05,
				},
				taxonomy.SymptomErrorMessage: {
					taxonomy.CauseEcosystem:      0.35,
					taxonomy.CauseMissingLogic:   0.25,
					taxonomy.CauseHumanMisconfig: 0.20,
					taxonomy.CauseLoad:           0.10,
					taxonomy.CauseMemory:         0.10,
				},
				taxonomy.SymptomPerformance: {
					taxonomy.CauseConcurrency: 0.60,
					taxonomy.CauseLoad:        0.20,
					taxonomy.CauseMemory:      0.10,
					taxonomy.CauseEcosystem:   0.10,
				},
			},
			NonDetByCause: defaultNonDetByCause(),
			FixByTrigger:  defaultFixByTrigger(),
			ResolutionDays: map[taxonomy.Trigger]LogNormal{
				// ONOS has the longer tail for configuration, external
				// calls and network events (Figure 7).
				taxonomy.TriggerConfiguration:  {MedianDays: 20, Sigma: 1.5},
				taxonomy.TriggerExternalCall:   {MedianDays: 12, Sigma: 1.3},
				taxonomy.TriggerNetworkEvent:   {MedianDays: 10, Sigma: 1.2},
				taxonomy.TriggerHardwareReboot: {MedianDays: 8, Sigma: 0.9},
			},
			Releases: quarterly(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC), 17),
		},
		tracker.CORD: {
			Controller:  tracker.CORD,
			TotalBugs:   358,
			ManualCount: 50,
			TriggerDist: map[taxonomy.Trigger]float64{
				taxonomy.TriggerConfiguration:  0.37,
				taxonomy.TriggerExternalCall:   0.30,
				taxonomy.TriggerNetworkEvent:   0.19,
				taxonomy.TriggerHardwareReboot: 0.14,
			},
			ConfigScopeDist: map[taxonomy.ConfigScope]float64{
				taxonomy.ConfigController: 0.642,
				taxonomy.ConfigDataPlane:  0.142,
				taxonomy.ConfigThirdParty: 0.216,
			},
			ExternalKindDist: defaultExternalKinds(),
			SymptomDist: map[taxonomy.Symptom]float64{
				// CORD's better exception handling => fewer
				// error-message bugs (§IV).
				taxonomy.SymptomByzantine:    0.64,
				taxonomy.SymptomFailStop:     0.20,
				taxonomy.SymptomErrorMessage: 0.12,
				taxonomy.SymptomPerformance:  0.04,
			},
			ByzantineDist: defaultByzantineModes(),
			CauseBySymptom: map[taxonomy.Symptom]map[taxonomy.RootCause]float64{
				// CORD: load-heavy (30 % overall), more missing logic
				// than ONOS in fail-stop; performance from memory.
				taxonomy.SymptomByzantine: {
					taxonomy.CauseLoad:           0.30,
					taxonomy.CauseMissingLogic:   0.28,
					taxonomy.CauseMemory:         0.12,
					taxonomy.CauseEcosystem:      0.12,
					taxonomy.CauseHumanMisconfig: 0.10,
					taxonomy.CauseConcurrency:    0.08,
				},
				taxonomy.SymptomFailStop: {
					taxonomy.CauseMissingLogic:   0.40,
					taxonomy.CauseLoad:           0.35,
					taxonomy.CauseMemory:         0.10,
					taxonomy.CauseHumanMisconfig: 0.10,
					taxonomy.CauseEcosystem:      0.05,
				},
				taxonomy.SymptomErrorMessage: {
					taxonomy.CauseEcosystem:      0.30,
					taxonomy.CauseHumanMisconfig: 0.25,
					taxonomy.CauseMissingLogic:   0.25,
					taxonomy.CauseLoad:           0.20,
				},
				taxonomy.SymptomPerformance: {
					taxonomy.CauseMemory:      0.55,
					taxonomy.CauseLoad:        0.25,
					taxonomy.CauseConcurrency: 0.10,
					taxonomy.CauseEcosystem:   0.10,
				},
			},
			NonDetByCause: defaultNonDetByCause(),
			FixByTrigger:  defaultFixByTrigger(),
			ResolutionDays: map[taxonomy.Trigger]LogNormal{
				// CORD's tail is shorter than ONOS except for reboots
				// (specialized optical-equipment code, Figure 7).
				taxonomy.TriggerConfiguration:  {MedianDays: 15, Sigma: 1.2},
				taxonomy.TriggerExternalCall:   {MedianDays: 10, Sigma: 1.1},
				taxonomy.TriggerNetworkEvent:   {MedianDays: 8, Sigma: 1.0},
				taxonomy.TriggerHardwareReboot: {MedianDays: 14, Sigma: 1.4},
			},
			Releases: quarterly(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), 15),
		},
	}
}

func defaultByzantineModes() map[taxonomy.ByzantineMode]float64 {
	// §IV: gray failures 52.17 %, stalling 20.65 %, incorrect 27.18 %.
	return map[taxonomy.ByzantineMode]float64{
		taxonomy.GrayFailure:       0.5217,
		taxonomy.Stalling:          0.2065,
		taxonomy.IncorrectBehavior: 0.2718,
	}
}

func defaultExternalKinds() map[taxonomy.ExternalCallKind]float64 {
	// Figure 13 groups system, third-party and application calls under
	// external calls, with third-party dominant (§V-A, §VII-B).
	return map[taxonomy.ExternalCallKind]float64{
		taxonomy.ThirdPartyCall:  0.50,
		taxonomy.SystemCall:      0.25,
		taxonomy.ApplicationCall: 0.25,
	}
}

func defaultNonDetByCause() map[taxonomy.RootCause]float64 {
	// Concurrency bugs are the main non-determinism source; memory
	// bugs are "highly deterministic" (§VII-B); blended rates land at
	// 96/94/94 % deterministic (§III).
	return map[taxonomy.RootCause]float64{
		taxonomy.CauseConcurrency:    0.25,
		taxonomy.CauseLoad:           0.10,
		taxonomy.CauseMemory:         0.01,
		taxonomy.CauseMissingLogic:   0.01,
		taxonomy.CauseHumanMisconfig: 0.01,
		taxonomy.CauseEcosystem:      0.02,
	}
}

func defaultFixByTrigger() map[taxonomy.Trigger]map[taxonomy.Fix]float64 {
	return map[taxonomy.Trigger]map[taxonomy.Fix]float64{
		// Only 25 % of configuration bugs are fixed by changing the
		// configuration (§V-A).
		taxonomy.TriggerConfiguration: {
			taxonomy.FixConfiguration:    0.25,
			taxonomy.FixAddLogic:         0.40,
			taxonomy.FixWorkaround:       0.15,
			taxonomy.FixAddCompatibility: 0.10,
			taxonomy.FixUpgradePackages:  0.05,
			taxonomy.FixRollbackUpgrade:  0.05,
		},
		// 41.4 % of external-call fixes change calls/arguments to match
		// the external API or upgrade packages (§V-A).
		taxonomy.TriggerExternalCall: {
			taxonomy.FixAddCompatibility: 0.30,
			taxonomy.FixUpgradePackages:  0.12,
			taxonomy.FixAddLogic:         0.30,
			taxonomy.FixWorkaround:       0.15,
			taxonomy.FixConfiguration:    0.08,
			taxonomy.FixRollbackUpgrade:  0.05,
		},
		// Network-event bugs are "often addressed by adding additional
		// logic or exception handling" (§V-A).
		taxonomy.TriggerNetworkEvent: {
			taxonomy.FixAddLogic:           0.70,
			taxonomy.FixWorkaround:         0.15,
			taxonomy.FixAddSynchronization: 0.05,
			taxonomy.FixConfiguration:      0.05,
			taxonomy.FixAddCompatibility:   0.05,
		},
		// Reboot bugs get timeouts and reconciliation logic (VOL-549).
		taxonomy.TriggerHardwareReboot: {
			taxonomy.FixAddLogic:         0.50,
			taxonomy.FixWorkaround:       0.25,
			taxonomy.FixConfiguration:    0.15,
			taxonomy.FixAddCompatibility: 0.10,
		},
	}
}
