// Package metrics is a lightweight, dependency-free metrics registry
// for the served tracker stack: monotonic counters, fixed-bucket
// latency histograms with quantile estimation, and gauge functions
// evaluated at scrape time (the hook that lets the registry surface
// stats owned elsewhere — durable commit counters, resilient-transport
// retry counts — without those packages importing this one).
//
// A Registry serializes to a stable JSON document and doubles as an
// http.Handler, so mounting it at /metricz gives the served tracker a
// live scrape endpoint; the load generator reads the same snapshot to
// publish BENCH_tracker.json.
package metrics

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// histBuckets are the histogram's upper bounds in milliseconds:
// 0.05ms up to ~26s, doubling each bucket, plus a +Inf overflow. The
// range covers everything from an in-memory list hit to a
// group-commit fsync stall.
var histBuckets = func() []float64 {
	b := make([]float64, 20)
	v := 0.05
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket histogram of millisecond observations.
// Observe is lock-free; quantiles are estimated by linear
// interpolation inside the winning bucket.
type Histogram struct {
	counts [21]atomic.Uint64 // histBuckets plus overflow
	sum    atomic.Uint64     // total milliseconds, in microsecond units
	n      atomic.Uint64
}

// Observe records a value in milliseconds.
func (h *Histogram) Observe(ms float64) {
	if ms < 0 || math.IsNaN(ms) {
		return
	}
	idx := sort.SearchFloat64s(histBuckets, ms)
	h.counts[idx].Add(1)
	h.sum.Add(uint64(ms * 1000))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Mean returns the mean observation in milliseconds.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / 1000 / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) in milliseconds. The
// estimate interpolates linearly within the bucket holding the target
// rank; observations beyond the last bound report that bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			hi := histBuckets[len(histBuckets)-1]
			lo := 0.0
			if i < len(histBuckets) {
				hi = histBuckets[i]
			}
			if i > 0 {
				lo = histBuckets[i-1]
			}
			frac := (rank - seen) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return histBuckets[len(histBuckets)-1]
}

// Registry holds named counters, histograms, and gauge functions. All
// methods are safe for concurrent use; metric creation is
// get-or-create so callers can look metrics up by name on every hit.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() float64),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it
// if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers fn to be evaluated at every snapshot under
// name. Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// HistogramSnapshot is one histogram's summary in a Snapshot.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Snapshot is a point-in-time view of every metric, with
// deterministically ordered JSON encoding (maps marshal sorted).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric, evaluating gauge
// functions as it goes.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{Counters: make(map[string]uint64, len(counters))}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, fn := range gauges {
			snap.Gauges[k] = fn()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			snap.Histograms[k] = HistogramSnapshot{
				Count:  h.Count(),
				MeanMS: h.Mean(),
				P50MS:  h.Quantile(0.50),
				P95MS:  h.Quantile(0.95),
				P99MS:  h.Quantile(0.99),
				MaxMS:  h.Quantile(1.0),
			}
		}
	}
	return snap
}

// ServeHTTP renders the registry as JSON — the /metricz endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}
