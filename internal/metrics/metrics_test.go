package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1000 observations spread 1..1000 ms: p50 ≈ 500, p99 ≈ 990. The
	// fixed exponential buckets are coarse, so accept a 2x band.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if n := h.Count(); n != 1000 {
		t.Fatalf("count = %d", n)
	}
	if m := h.Mean(); math.Abs(m-500.5) > 1 {
		t.Errorf("mean = %v, want ~500.5", m)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 250 || p50 > 1000 {
		t.Errorf("p50 = %v, want within [250, 1000]", p50)
	}
	if p99 < 500 || p99 > 2000 {
		t.Errorf("p99 = %v, want within [500, 2000]", p99)
	}
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}

func TestHistogramIgnoresGarbage(t *testing.T) {
	h := &Histogram{}
	h.Observe(-1)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("count = %d after garbage observations", h.Count())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("quantile of empty histogram = %v", q)
	}
}

func TestSnapshotAndServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(7)
	r.Histogram("latency").Observe(3)
	r.GaugeFunc("queue_depth", func() float64 { return 42 })

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metricz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode /metricz: %v", err)
	}
	if snap.Counters["requests"] != 7 {
		t.Errorf("requests = %d", snap.Counters["requests"])
	}
	if snap.Gauges["queue_depth"] != 42 {
		t.Errorf("gauge = %v", snap.Gauges["queue_depth"])
	}
	if hs := snap.Histograms["latency"]; hs.Count != 1 {
		t.Errorf("latency count = %d", hs.Count)
	}
}
