package trackerd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sdnbugs/internal/tracker"
)

// GHIssue is the GitHub issue JSON shape (subset).
type GHIssue struct {
	Number    int        `json:"number"`
	Title     string     `json:"title"`
	Body      string     `json:"body"`
	State     string     `json:"state"`
	CreatedAt time.Time  `json:"created_at"`
	ClosedAt  *time.Time `json:"closed_at"`
	Labels    []GHLabel  `json:"labels"`
	Comments  []GHNote   `json:"comments_data,omitempty"`
}

// GHLabel is one GitHub label.
type GHLabel struct {
	Name string `json:"name"`
}

// GHNote is one GitHub issue comment.
type GHNote struct {
	User      GHUser    `json:"user"`
	Body      string    `json:"body"`
	CreatedAt time.Time `json:"created_at"`
}

// GHUser is GitHub's {"login": ...} user object.
type GHUser struct {
	Login string `json:"login"`
}

// ToGHWire renders a neutral issue in the GitHub wire shape.
func ToGHWire(iss tracker.Issue) (GHIssue, error) {
	num, err := IssueNumber(iss.ID)
	if err != nil {
		return GHIssue{}, err
	}
	w := GHIssue{
		Number:    num,
		Title:     iss.Title,
		Body:      iss.Description,
		State:     "open",
		CreatedAt: iss.Created,
	}
	if iss.Status == tracker.StatusClosed || iss.Status == tracker.StatusResolved {
		w.State = "closed"
		// GitHub would expose closed_at, but as in the paper's data set
		// the simulator's FAUCET issues carry no resolution timestamp;
		// only set it when the store has one.
		if !iss.Resolved.IsZero() {
			t := iss.Resolved
			w.ClosedAt = &t
		}
	}
	for _, l := range iss.Labels {
		w.Labels = append(w.Labels, GHLabel{Name: l})
	}
	for _, c := range iss.Comments {
		w.Comments = append(w.Comments, GHNote{
			User: GHUser{Login: c.Author}, Body: c.Body, CreatedAt: c.Created,
		})
	}
	return w, nil
}

// FromGHWire converts a GitHub wire issue to the neutral model for
// controller ctl, applying the keyword severity heuristic of the
// paper's methodology (§II-B) — GitHub has no severity field.
func FromGHWire(wi GHIssue, ctl tracker.Controller) tracker.Issue {
	iss := tracker.Issue{
		ID:          fmt.Sprintf("%s#%d", ctl.String(), wi.Number),
		Controller:  ctl,
		Title:       wi.Title,
		Description: wi.Body,
		Created:     wi.CreatedAt,
		Status:      tracker.StatusOpen,
	}
	if wi.State == "closed" {
		iss.Status = tracker.StatusClosed
		if wi.ClosedAt != nil {
			iss.Resolved = *wi.ClosedAt
		}
	}
	for _, l := range wi.Labels {
		iss.Labels = append(iss.Labels, l.Name)
	}
	for _, c := range wi.Comments {
		iss.Comments = append(iss.Comments, tracker.Comment{
			Author: c.User.Login, Body: c.Body, Created: c.CreatedAt,
		})
	}
	iss.Severity = tracker.ExtractSeverity(iss.Text())
	return iss
}

// IssueNumber extracts N from IDs of the form "<project>#N".
func IssueNumber(id string) (int, error) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '#' {
			n, err := strconv.Atoi(id[i+1:])
			if err != nil {
				return 0, fmt.Errorf("trackerd: bad issue id %q: %w", id, err)
			}
			return n, nil
		}
	}
	return 0, fmt.Errorf("trackerd: issue id %q has no number", id)
}

// githubAPI is the GitHub dialect of the serving engine, answering for
// a single repository whose issues carry "<ctl>#N" IDs.
type githubAPI struct {
	src Source
	ctl tracker.Controller
}

// register mounts the dialect's routes on mux under prefix for the
// repository path owner/name.
func (a *githubAPI) register(mux *http.ServeMux, prefix, owner, name string) {
	mux.HandleFunc("GET "+prefix+"/repos/"+owner+"/"+name+"/issues", a.handleList)
	mux.HandleFunc("GET "+prefix+"/repos/"+owner+"/"+name+"/issues/{number}", a.handleGet)
}

func (a *githubAPI) handleList(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	q := tracker.Query{Controller: a.ctl}
	switch qs.Get("state") {
	case "closed":
		q.Status = tracker.StatusClosed
	case "open":
		q.Status = tracker.StatusOpen
	}
	page := atoiGH(qs.Get("page"), 1)
	if page < 1 {
		page = 1
	}
	perPage := atoiGH(qs.Get("per_page"), 30)
	if perPage > 100 {
		perPage = 100
	}
	q.Offset = (page - 1) * perPage
	q.Limit = perPage

	issues, _ := a.src.List(q)
	out := make([]GHIssue, 0, len(issues))
	for _, iss := range issues {
		wi, err := ToGHWire(iss)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out = append(out, wi)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (a *githubAPI) handleGet(w http.ResponseWriter, r *http.Request) {
	num := r.PathValue("number")
	iss, ok := a.src.Get(a.ctl.String() + "#" + num)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	wi, err := ToGHWire(iss)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(wi)
}

// atoiGH is the GitHub dialect's parameter rule: empty or malformed
// falls back to def, but (unlike the JIRA dialect) negatives pass
// through — the callers clamp page and per_page themselves, exactly as
// the original ghsim handler did.
func atoiGH(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}
