package trackerd

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sdnbugs/internal/metrics"
)

// tokenBucket is a classic refill-on-demand token bucket. take either
// consumes one token or reports how long until one is available.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take consumes one token if available; otherwise it returns the wait
// until the next token accrues.
func (b *tokenBucket) take() (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// tenantLimiter enforces one tenant's request rate and inflight cap.
// Rejections are 429s carrying an integer-seconds Retry-After header —
// the signal resilience.Transport already honors (capped client-side by
// Policy.MaxRetryAfter), so well-behaved miners back off and retry
// instead of failing.
type tenantLimiter struct {
	name        string
	bucket      *tokenBucket // nil = unlimited rate
	maxInflight int64        // 0 = unlimited
	inflight    atomic.Int64

	requests  *metrics.Counter
	throttled *metrics.Counter
	shed      *metrics.Counter
	latency   *metrics.Histogram
}

func newTenantLimiter(cfg TenantConfig, reg *metrics.Registry) *tenantLimiter {
	l := &tenantLimiter{
		name:        cfg.Name,
		maxInflight: int64(cfg.MaxInflight),
		requests:    reg.Counter("tenant." + cfg.Name + ".requests"),
		throttled:   reg.Counter("tenant." + cfg.Name + ".throttled_429"),
		shed:        reg.Counter("tenant." + cfg.Name + ".shed_429"),
		latency:     reg.Histogram("tenant." + cfg.Name + ".request_ms"),
	}
	if cfg.RatePerSec > 0 {
		l.bucket = newTokenBucket(cfg.RatePerSec, cfg.Burst)
	}
	return l
}

// retryAfterSeconds renders wait as the integer-seconds Retry-After
// value, never below 1 (the header has no sub-second form).
func retryAfterSeconds(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// wrap applies the limiter in front of next.
func (l *tenantLimiter) wrap(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		l.requests.Inc()
		if l.maxInflight > 0 {
			if l.inflight.Add(1) > l.maxInflight {
				l.inflight.Add(-1)
				l.shed.Inc()
				w.Header().Set("Retry-After", "1")
				http.Error(w, "tenant overloaded", http.StatusTooManyRequests)
				return
			}
			defer l.inflight.Add(-1)
		}
		if l.bucket != nil {
			if ok, wait := l.bucket.take(); !ok {
				l.throttled.Inc()
				w.Header().Set("Retry-After", retryAfterSeconds(wait))
				http.Error(w, "tenant rate limit exceeded", http.StatusTooManyRequests)
				return
			}
		}
		start := time.Now()
		next(w, r)
		l.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}
