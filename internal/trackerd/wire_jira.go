package trackerd

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"sdnbugs/internal/tracker"
)

// JIRATime is JIRA's timestamp format.
const JIRATime = "2006-01-02T15:04:05.000-0700"

// JIRAIssue is the JIRA issue JSON shape.
type JIRAIssue struct {
	Key    string     `json:"key"`
	Fields JIRAFields `json:"fields"`
}

// JIRAFields is the fields object of a JIRA issue.
type JIRAFields struct {
	Summary        string       `json:"summary"`
	Description    string       `json:"description"`
	Priority       JIRANamed    `json:"priority"`
	Status         JIRANamed    `json:"status"`
	Project        JIRANamed    `json:"project"`
	Created        string       `json:"created"`
	ResolutionDate string       `json:"resolutiondate,omitempty"`
	Labels         []string     `json:"labels,omitempty"`
	Comment        JIRAComments `json:"comment"`
}

// JIRANamed is JIRA's ubiquitous {"name": ...} object.
type JIRANamed struct {
	Name string `json:"name"`
}

// JIRAComments is the comment container of a JIRA issue.
type JIRAComments struct {
	Comments []JIRAComment `json:"comments"`
	Total    int           `json:"total"`
}

// JIRAComment is one JIRA comment.
type JIRAComment struct {
	Author  JIRANamed `json:"author"`
	Body    string    `json:"body"`
	Created string    `json:"created"`
}

// JIRASearchResponse is the /rest/api/2/search envelope.
type JIRASearchResponse struct {
	StartAt    int         `json:"startAt"`
	MaxResults int         `json:"maxResults"`
	Total      int         `json:"total"`
	Issues     []JIRAIssue `json:"issues"`
}

// ToJIRAWire renders a neutral issue in the JIRA wire shape.
func ToJIRAWire(iss tracker.Issue) JIRAIssue {
	w := JIRAIssue{
		Key: iss.ID,
		Fields: JIRAFields{
			Summary:     iss.Title,
			Description: iss.Description,
			Priority:    JIRANamed{Name: SeverityToPriority(iss.Severity)},
			Status:      JIRANamed{Name: StatusName(iss.Status)},
			Project:     JIRANamed{Name: iss.Controller.String()},
			Created:     iss.Created.Format(JIRATime),
			Labels:      iss.Labels,
		},
	}
	if !iss.Resolved.IsZero() {
		w.Fields.ResolutionDate = iss.Resolved.Format(JIRATime)
	}
	for _, c := range iss.Comments {
		w.Fields.Comment.Comments = append(w.Fields.Comment.Comments, JIRAComment{
			Author:  JIRANamed{Name: c.Author},
			Body:    c.Body,
			Created: c.Created.Format(JIRATime),
		})
	}
	w.Fields.Comment.Total = len(w.Fields.Comment.Comments)
	return w
}

// FromJIRAWire converts a JIRA wire issue back to the neutral model.
func FromJIRAWire(wi JIRAIssue) (tracker.Issue, error) {
	iss := tracker.Issue{
		ID:          wi.Key,
		Title:       wi.Fields.Summary,
		Description: wi.Fields.Description,
		Severity:    PriorityToSeverity(wi.Fields.Priority.Name),
		Status:      ParseStatusName(wi.Fields.Status.Name),
		Labels:      wi.Fields.Labels,
	}
	if ctl, err := tracker.ParseController(wi.Fields.Project.Name); err == nil {
		iss.Controller = ctl
	}
	var err error
	if iss.Created, err = time.Parse(JIRATime, wi.Fields.Created); err != nil {
		return iss, fmt.Errorf("trackerd: bad created time %q: %w", wi.Fields.Created, err)
	}
	if wi.Fields.ResolutionDate != "" {
		if iss.Resolved, err = time.Parse(JIRATime, wi.Fields.ResolutionDate); err != nil {
			return iss, fmt.Errorf("trackerd: bad resolution time %q: %w", wi.Fields.ResolutionDate, err)
		}
	}
	for _, c := range wi.Fields.Comment.Comments {
		created, err := time.Parse(JIRATime, c.Created)
		if err != nil {
			return iss, fmt.Errorf("trackerd: bad comment time %q: %w", c.Created, err)
		}
		iss.Comments = append(iss.Comments, tracker.Comment{
			Author: c.Author.Name, Body: c.Body, Created: created,
		})
	}
	return iss, nil
}

// SeverityToPriority maps the neutral severity onto JIRA priority names.
func SeverityToPriority(s tracker.Severity) string {
	switch s {
	case tracker.SeverityBlocker:
		return "Blocker"
	case tracker.SeverityCritical:
		return "Critical"
	case tracker.SeverityMajor:
		return "Major"
	case tracker.SeverityMinor:
		return "Minor"
	default:
		return "Trivial"
	}
}

// PriorityToSeverity maps a JIRA priority name back to a severity.
func PriorityToSeverity(name string) tracker.Severity {
	switch strings.ToLower(name) {
	case "blocker":
		return tracker.SeverityBlocker
	case "critical":
		return tracker.SeverityCritical
	case "major":
		return tracker.SeverityMajor
	case "minor":
		return tracker.SeverityMinor
	default:
		return tracker.SeverityTrivial
	}
}

// StatusName renders a status in JIRA's display form.
func StatusName(s tracker.Status) string {
	switch s {
	case tracker.StatusClosed:
		return "Closed"
	case tracker.StatusResolved:
		return "Resolved"
	case tracker.StatusInProgress:
		return "In Progress"
	default:
		return "Open"
	}
}

// ParseStatusName parses JIRA's display form (and the query-parameter
// spellings) back to a status.
func ParseStatusName(name string) tracker.Status {
	switch strings.ToLower(name) {
	case "closed":
		return tracker.StatusClosed
	case "resolved":
		return tracker.StatusResolved
	case "in progress", "in-progress":
		return tracker.StatusInProgress
	case "open":
		return tracker.StatusOpen
	default:
		return tracker.StatusUnknown
	}
}

// jiraAPI is the JIRA dialect of the serving engine.
type jiraAPI struct {
	src Source
}

// register mounts the dialect's routes on mux under prefix ("" for the
// legacy root mount, "/t/<tenant>/<project>" inside a Service).
func (a *jiraAPI) register(mux *http.ServeMux, prefix string) {
	mux.HandleFunc("GET "+prefix+"/rest/api/2/search", a.handleSearch)
	mux.HandleFunc("GET "+prefix+"/rest/api/2/issue/{key}", a.handleIssue)
}

func (a *jiraAPI) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := tracker.Query{}
	qs := r.URL.Query()
	if p := qs.Get("project"); p != "" {
		ctl, err := tracker.ParseController(p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q.Controller = ctl
	}
	if sev := qs.Get("severity"); sev != "" {
		s, err := tracker.ParseSeverity(strings.ToLower(sev))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q.MinSeverity = s
	}
	if st := qs.Get("status"); st != "" {
		q.Status = ParseStatusName(st)
	}
	q.Offset = atoiDefault(qs.Get("startAt"), 0)
	q.Limit = atoiDefault(qs.Get("maxResults"), 50)
	if q.Limit > 200 {
		q.Limit = 200
	}

	issues, total := a.src.List(q)
	resp := JIRASearchResponse{
		StartAt:    q.Offset,
		MaxResults: q.Limit,
		Total:      total,
	}
	for _, iss := range issues {
		resp.Issues = append(resp.Issues, ToJIRAWire(iss))
	}
	writeJSON(w, resp)
}

func (a *jiraAPI) handleIssue(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	iss, ok := a.src.Get(key)
	if !ok {
		http.Error(w, "issue not found", http.StatusNotFound)
		return
	}
	writeJSON(w, ToJIRAWire(iss))
}
