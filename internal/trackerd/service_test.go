package trackerd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sdnbugs/internal/diskfault"
	"sdnbugs/internal/durable"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/tracker"
)

func seedIssues(t *testing.T) []tracker.Issue {
	t.Helper()
	base := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	return []tracker.Issue{
		{
			ID: "ONOS-1", Controller: tracker.ONOS, Title: "Cluster fails",
			Description: "switch disconnect crashes master", Severity: tracker.SeverityBlocker,
			Status: tracker.StatusClosed, Created: base, Resolved: base.Add(48 * time.Hour),
			Labels:   []string{"cluster"},
			Comments: []tracker.Comment{{Author: "alice", Body: "confirmed", Created: base.Add(time.Hour)}},
		},
		{
			ID: "CORD-7", Controller: tracker.CORD, Title: "XOS sync loops",
			Severity: tracker.SeverityMajor, Status: tracker.StatusOpen,
			Created: base.Add(3 * time.Hour),
		},
		{
			ID: "FAUCET#12", Controller: tracker.FAUCET, Title: "ACL reload crash",
			Description: "config reload drops rules", Severity: tracker.SeverityCritical,
			Status: tracker.StatusClosed, Created: base.Add(5 * time.Hour),
		},
		{
			ID: "FAUCET#13", Controller: tracker.FAUCET, Title: "stack port flap",
			Status: tracker.StatusOpen, Created: base.Add(6 * time.Hour),
		},
	}
}

func newService(t *testing.T, tenants ...TenantConfig) *Service {
	t.Helper()
	if len(tenants) == 0 {
		tenants = []TenantConfig{{
			Name: "alpha",
			Projects: []ProjectConfig{
				{Name: "bugs", Dialect: DialectJIRA},
				{Name: "faucet", Dialect: DialectGitHub, Repo: "faucetsdn/faucet", Controller: "FAUCET"},
			},
		}}
	}
	svc, err := New(Config{
		Root:    "svc",
		Durable: durable.Options{FS: diskfault.NewMemFS(), GroupCommit: true},
		Tenants: tenants,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

func ingest(t *testing.T, srvURL, tenant, project string, issues []tracker.Issue) {
	t.Helper()
	var body bytes.Buffer
	for _, iss := range issues {
		data, err := tracker.EncodeIssue(iss)
		if err != nil {
			t.Fatal(err)
		}
		body.Write(data)
		body.WriteByte('\n')
	}
	resp, err := http.Post(srvURL+"/t/"+tenant+"/"+project+"/admin/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest returned %s: %s", resp.Status, msg)
	}
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestServiceMatchesCompatHandlersByteForByte is the refactor's core
// safety net: a tenant-mounted JIRA or GitHub route must answer with
// exactly the bytes the legacy single-store handlers produce for the
// same corpus and query.
func TestServiceMatchesCompatHandlersByteForByte(t *testing.T) {
	issues := seedIssues(t)
	svc := newService(t)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	var jira, faucet []tracker.Issue
	for _, iss := range issues {
		if iss.Controller == tracker.FAUCET {
			faucet = append(faucet, iss)
		} else {
			jira = append(jira, iss)
		}
	}
	ingest(t, srv.URL, "alpha", "bugs", jira)
	ingest(t, srv.URL, "alpha", "faucet", faucet)

	jiraStore, ghStore := tracker.NewStore(), tracker.NewStore()
	for _, iss := range jira {
		if err := jiraStore.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
	for _, iss := range faucet {
		if err := ghStore.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
	compat := httptest.NewServer(NewJIRAHandler(StoreSource{Store: jiraStore}))
	defer compat.Close()
	compatGH := httptest.NewServer(NewGitHubHandler(StoreSource{Store: ghStore}, "faucetsdn", "faucet", tracker.FAUCET))
	defer compatGH.Close()

	cases := []struct{ compatBase, svcBase, path string }{
		{compat.URL, srv.URL + "/t/alpha/bugs", "/rest/api/2/search"},
		{compat.URL, srv.URL + "/t/alpha/bugs", "/rest/api/2/search?maxResults=1&startAt=1"},
		{compat.URL, srv.URL + "/t/alpha/bugs", "/rest/api/2/search?project=ONOS&severity=critical"},
		{compat.URL, srv.URL + "/t/alpha/bugs", "/rest/api/2/search?status=closed"},
		{compat.URL, srv.URL + "/t/alpha/bugs", "/rest/api/2/issue/ONOS-1"},
		{compat.URL, srv.URL + "/t/alpha/bugs", "/rest/api/2/issue/NOPE-1"},
		{compatGH.URL, srv.URL + "/t/alpha/faucet", "/repos/faucetsdn/faucet/issues"},
		{compatGH.URL, srv.URL + "/t/alpha/faucet", "/repos/faucetsdn/faucet/issues?state=closed&per_page=1"},
		{compatGH.URL, srv.URL + "/t/alpha/faucet", "/repos/faucetsdn/faucet/issues?page=2&per_page=1"},
		{compatGH.URL, srv.URL + "/t/alpha/faucet", "/repos/faucetsdn/faucet/issues/12"},
		{compatGH.URL, srv.URL + "/t/alpha/faucet", "/repos/faucetsdn/faucet/issues/999"},
	}
	for _, tc := range cases {
		wantCode, _, want := get(t, tc.compatBase+tc.path)
		gotCode, _, got := get(t, tc.svcBase+tc.path)
		if gotCode != wantCode || !bytes.Equal(got, want) {
			t.Errorf("%s: service (%d) diverged from compat handler (%d)\n got: %s\nwant: %s",
				tc.path, gotCode, wantCode, got, want)
		}
	}
}

// TestTenantIsolation: two tenants hosting the same project name must
// serve disjoint corpora from disjoint shards.
func TestTenantIsolation(t *testing.T) {
	svc := newService(t,
		TenantConfig{Name: "alpha", Projects: []ProjectConfig{{Name: "bugs", Dialect: DialectJIRA}}},
		TenantConfig{Name: "beta", Projects: []ProjectConfig{{Name: "bugs", Dialect: DialectJIRA}}},
	)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	iss := seedIssues(t)[0]
	ingest(t, srv.URL, "alpha", "bugs", []tracker.Issue{iss})

	if code, _, _ := get(t, srv.URL+"/t/alpha/bugs/rest/api/2/issue/ONOS-1"); code != http.StatusOK {
		t.Fatalf("alpha lost its issue: %d", code)
	}
	if code, _, _ := get(t, srv.URL+"/t/beta/bugs/rest/api/2/issue/ONOS-1"); code != http.StatusNotFound {
		t.Fatalf("beta sees alpha's issue: %d", code)
	}
	if n := svc.Shard("alpha", "bugs").DS.Len(); n != 1 {
		t.Errorf("alpha shard has %d issues, want 1", n)
	}
	if n := svc.Shard("beta", "bugs").DS.Len(); n != 0 {
		t.Errorf("beta shard has %d issues, want 0", n)
	}
}

// TestIngestedIssuesSurviveReopen: the ingest path must be durable —
// a service reopened over the same filesystem serves the same corpus.
func TestIngestedIssuesSurviveReopen(t *testing.T) {
	fs := diskfault.NewMemFS()
	cfg := Config{
		Root:    "svc",
		Durable: durable.Options{FS: fs, GroupCommit: true},
		Tenants: []TenantConfig{{Name: "alpha", Projects: []ProjectConfig{{Name: "bugs", Dialect: DialectJIRA}}}},
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	ingest(t, srv.URL, "alpha", "bugs", seedIssues(t)[:2])
	srv.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc2.Close() }()
	if n := svc2.Shard("alpha", "bugs").DS.Len(); n != 2 {
		t.Fatalf("reopened shard has %d issues, want 2", n)
	}
}

// TestRateLimit429CarriesRetryAfter: beyond its budget a tenant gets
// 429s with an integer-seconds Retry-After — and a resilience.Transport
// client rides through the throttling without surfacing an error.
func TestRateLimit429CarriesRetryAfter(t *testing.T) {
	svc := newService(t, TenantConfig{
		Name: "slow", RatePerSec: 5, Burst: 1,
		Projects: []ProjectConfig{{Name: "bugs", Dialect: DialectJIRA}},
	})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	url := srv.URL + "/t/slow/bugs/rest/api/2/search"
	saw429 := false
	for i := 0; i < 10; i++ {
		code, hdr, _ := get(t, url)
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			saw429 = true
			if ra := hdr.Get("Retry-After"); ra == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if !saw429 {
		t.Fatal("10 instant requests against a 5/s budget never throttled")
	}
	if svc.Metrics().Snapshot().Counters["tenant.slow.throttled_429"] == 0 {
		t.Error("throttle counter not incremented")
	}

	// A retrying client honoring Retry-After (capped) must succeed on
	// every request despite the throttling.
	rt := resilience.NewTransport(nil, resilience.Policy{
		MaxAttempts:   12,
		BaseDelay:     time.Millisecond,
		MaxDelay:      50 * time.Millisecond,
		MaxRetryAfter: 250 * time.Millisecond,
	}, nil)
	hc := &http.Client{Transport: rt}
	for i := 0; i < 8; i++ {
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatalf("resilient request %d: %v", i, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resilient request %d: status %d", i, resp.StatusCode)
		}
	}
	if m := rt.Metrics(); m.Retries == 0 {
		t.Errorf("transport metrics %+v: throttling should have forced retries", m)
	}
}

// TestBackpressureShedsLoad: with MaxInflight 1 and a slow request
// pinned inside the handler, concurrent requests are shed with 429.
func TestBackpressureShedsLoad(t *testing.T) {
	svc := newService(t, TenantConfig{
		Name: "tight", MaxInflight: 1,
		Projects: []ProjectConfig{{Name: "bugs", Dialect: DialectJIRA}},
	})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	url := srv.URL + "/t/tight/bugs/rest/api/2/search"

	const concurrent = 8
	codes := make([]int, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, _ := get(t, url)
			codes[i] = code
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Error("every request was shed; at least one should be served")
	}
	// Shedding is timing-dependent: requests may or may not overlap. The
	// invariant is only that ok+shed covers everything and the counter
	// agrees with what we observed.
	if got := svc.Metrics().Snapshot().Counters["tenant.tight.shed_429"]; got != uint64(shed) {
		t.Errorf("shed counter = %d, observed %d", got, shed)
	}
}

// TestHealthzAndMetricz: the operational endpoints respond and the
// metrics snapshot carries request counters and shard gauges.
func TestHealthzAndMetricz(t *testing.T) {
	svc := newService(t)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	ingest(t, srv.URL, "alpha", "bugs", seedIssues(t)[:2])
	if code, _, body := get(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	get(t, srv.URL+"/t/alpha/bugs/rest/api/2/search")

	code, hdr, body := get(t, srv.URL+"/metricz")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("metricz: %d %s", code, hdr.Get("Content-Type"))
	}
	var snap struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metricz is not JSON: %v\n%s", err, body)
	}
	if snap.Counters["http.requests"] == 0 {
		t.Error("http.requests counter missing or zero")
	}
	if snap.Gauges["shard.alpha.bugs.issues"] != 2 {
		t.Errorf("shard gauge = %v, want 2", snap.Gauges["shard.alpha.bugs.issues"])
	}
	if snap.Gauges["durable.records"] < 2 {
		t.Errorf("durable.records gauge = %v, want >= 2", snap.Gauges["durable.records"])
	}
}

// TestIngestRejectsGarbage: a bad line aborts with 400 and reports the
// line number.
func TestIngestRejectsGarbage(t *testing.T) {
	svc := newService(t)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/t/alpha/bugs/admin/ingest", "application/x-ndjson",
		strings.NewReader("this is not an issue\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "line 1") {
		t.Errorf("error does not name the line: %s", msg)
	}
}

// TestReplicaServesWhileWriterBlocks: list reads come from the replica
// snapshot and must not be serialized behind a slow ingest.
func TestReplicaServesWhileWriterBlocks(t *testing.T) {
	svc := newService(t)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	ingest(t, srv.URL, "alpha", "bugs", seedIssues(t)[:2])
	// Prime the replica.
	if code, _, _ := get(t, srv.URL+"/t/alpha/bugs/rest/api/2/search"); code != http.StatusOK {
		t.Fatal("prime failed")
	}

	// Stream an ingest body slowly while hammering reads.
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/t/alpha/bugs/admin/ingest", pr)
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		done <- err
	}()
	data, err := tracker.EncodeIssue(seedIssues(t)[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if code, _, _ := get(t, srv.URL+"/t/alpha/bugs/rest/api/2/search"); code != http.StatusOK {
			t.Fatalf("read %d failed while ingest stream open", i)
		}
	}
	if _, err := pw.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	_ = pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBadConfigsRejected(t *testing.T) {
	fs := diskfault.NewMemFS()
	for _, tc := range []struct {
		name    string
		tenants []TenantConfig
	}{
		{"empty tenant name", []TenantConfig{{Name: "", Projects: []ProjectConfig{{Name: "p", Dialect: DialectJIRA}}}}},
		{"slash in project", []TenantConfig{{Name: "a", Projects: []ProjectConfig{{Name: "p/q", Dialect: DialectJIRA}}}}},
		{"unknown dialect", []TenantConfig{{Name: "a", Projects: []ProjectConfig{{Name: "p", Dialect: "svn"}}}}},
		{"github without repo", []TenantConfig{{Name: "a", Projects: []ProjectConfig{{Name: "p", Dialect: DialectGitHub, Controller: "FAUCET"}}}}},
		{"github bad controller", []TenantConfig{{Name: "a", Projects: []ProjectConfig{{Name: "p", Dialect: DialectGitHub, Repo: "x/y", Controller: "NOPE"}}}}},
		{"duplicate project", []TenantConfig{{Name: "a", Projects: []ProjectConfig{
			{Name: "p", Dialect: DialectJIRA}, {Name: "p", Dialect: DialectJIRA}}}}},
	} {
		if _, err := New(Config{Root: fmt.Sprintf("bad-%s", tc.name), Durable: durable.Options{FS: fs}, Tenants: tc.tenants}); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}
