package trackerd

import (
	"bufio"
	"errors"
	"fmt"
	"net/http"
	"path"
	"strings"
	"time"

	"sdnbugs/internal/durable"
	"sdnbugs/internal/metrics"
	"sdnbugs/internal/tracker"
)

// Dialect names for ProjectConfig.
const (
	DialectJIRA   = "jira"
	DialectGitHub = "github"
)

// Config describes a multi-tenant tracker service.
type Config struct {
	// Root is the state directory; each project shard lives in
	// Root/<tenant>/<project>.
	Root string
	// Durable is the option template every shard is opened with (FS,
	// GroupCommit, GroupWindow, SnapshotEvery, TakeOver).
	Durable durable.Options
	// Metrics receives the service's counters, histograms, and shard
	// gauges; nil creates a private registry.
	Metrics *metrics.Registry
	// Tenants are the hosted tenants.
	Tenants []TenantConfig
}

// TenantConfig describes one tenant: its projects plus the rate and
// concurrency limits all of its routes share.
type TenantConfig struct {
	// Name is the tenant's route segment: /t/<name>/...
	Name string
	// RatePerSec is the tenant's sustained request budget (token
	// bucket); 0 means unlimited.
	RatePerSec float64
	// Burst is the bucket depth (default 1 when rate limiting is on).
	Burst int
	// MaxInflight caps concurrently served requests; beyond it the
	// tenant sheds load with 429 + Retry-After. 0 means unlimited.
	MaxInflight int
	// Projects are the tenant's hosted trackers.
	Projects []ProjectConfig
}

// ProjectConfig describes one hosted tracker within a tenant.
type ProjectConfig struct {
	// Name is the project's route segment: /t/<tenant>/<name>/...
	Name string
	// Dialect selects the wire API: DialectJIRA or DialectGitHub.
	Dialect string
	// Repo is the owner/name path a GitHub-dialect project answers
	// under (e.g. "faucetsdn/faucet"); ignored for JIRA.
	Repo string
	// Controller names the controller whose "<controller>#N" issue IDs
	// a GitHub-dialect project serves; ignored for JIRA.
	Controller string
}

// Shard is one tenant×project backing store: a crash-consistent
// DurableStore for writes and a snapshot-serving Replica for reads, so
// list traffic never blocks (or is blocked by) the writers.
type Shard struct {
	Tenant  string
	Project string
	DS      *tracker.DurableStore
	Replica *tracker.Replica
}

// Service hosts N tenants × M projects behind one engine: shared
// dialect handlers, per-tenant rate limits and backpressure, durable
// shards, and a metrics registry exposed at /metricz.
type Service struct {
	mux    *http.ServeMux
	reg    *metrics.Registry
	shards map[string]*Shard
	order  []string

	requests *metrics.Counter
	latency  *metrics.Histogram
}

// New opens every shard and mounts every route. On error, shards opened
// so far are closed.
func New(cfg Config) (*Service, error) {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Service{
		mux:      http.NewServeMux(),
		reg:      reg,
		shards:   make(map[string]*Shard),
		requests: reg.Counter("http.requests"),
		latency:  reg.Histogram("http.request_ms"),
	}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" || strings.ContainsAny(tc.Name, "/ ") {
			_ = s.Close()
			return nil, fmt.Errorf("trackerd: bad tenant name %q", tc.Name)
		}
		limiter := newTenantLimiter(tc, reg)
		for _, pc := range tc.Projects {
			if err := s.mountProject(cfg, tc, pc, limiter); err != nil {
				_ = s.Close()
				return nil, err
			}
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metricz", reg)
	s.registerGauges()
	return s, nil
}

func (s *Service) mountProject(cfg Config, tc TenantConfig, pc ProjectConfig, limiter *tenantLimiter) error {
	if pc.Name == "" || strings.ContainsAny(pc.Name, "/ ") {
		return fmt.Errorf("trackerd: bad project name %q in tenant %s", pc.Name, tc.Name)
	}
	key := tc.Name + "/" + pc.Name
	if _, dup := s.shards[key]; dup {
		return fmt.Errorf("trackerd: duplicate project %s", key)
	}
	d, err := durable.Open(path.Join(cfg.Root, tc.Name, pc.Name), cfg.Durable)
	if err != nil {
		return fmt.Errorf("trackerd: open shard %s: %w", key, err)
	}
	ds, err := tracker.NewDurableStore(d)
	if err != nil {
		_ = d.Close()
		return fmt.Errorf("trackerd: load shard %s: %w", key, err)
	}
	shard := &Shard{
		Tenant:  tc.Name,
		Project: pc.Name,
		DS:      ds,
		Replica: tracker.NewReplica(ds.Store()),
	}
	s.shards[key] = shard
	s.order = append(s.order, key)

	prefix := "/t/" + key
	switch pc.Dialect {
	case DialectJIRA:
		api := &jiraAPI{src: shard.Replica}
		s.mux.HandleFunc("GET "+prefix+"/rest/api/2/search", limiter.wrap(api.handleSearch))
		s.mux.HandleFunc("GET "+prefix+"/rest/api/2/issue/{key}", limiter.wrap(api.handleIssue))
	case DialectGitHub:
		ctl, err := tracker.ParseController(pc.Controller)
		if err != nil {
			return fmt.Errorf("trackerd: project %s: %w", key, err)
		}
		owner, name, ok := strings.Cut(pc.Repo, "/")
		if !ok || owner == "" || name == "" {
			return fmt.Errorf("trackerd: project %s: bad repo path %q", key, pc.Repo)
		}
		api := &githubAPI{src: shard.Replica, ctl: ctl}
		s.mux.HandleFunc("GET "+prefix+"/repos/"+owner+"/"+name+"/issues", limiter.wrap(api.handleList))
		s.mux.HandleFunc("GET "+prefix+"/repos/"+owner+"/"+name+"/issues/{number}", limiter.wrap(api.handleGet))
	default:
		return fmt.Errorf("trackerd: project %s: unknown dialect %q", key, pc.Dialect)
	}
	s.mux.HandleFunc("POST "+prefix+"/admin/ingest", s.handleIngest(shard))
	return nil
}

// registerGauges exposes shard sizes and aggregate WAL commit stats at
// scrape time — the observability seam between the serving layer and
// the durability layer, without durable importing metrics.
func (s *Service) registerGauges() {
	for _, key := range s.order {
		shard := s.shards[key]
		s.reg.GaugeFunc("shard."+shard.Tenant+"."+shard.Project+".issues", func() float64 {
			return float64(shard.DS.Len())
		})
	}
	stat := func(pick func(durable.CommitStats) uint64) func() float64 {
		return func() float64 {
			var total uint64
			for _, shard := range s.shards {
				total += pick(shard.DS.Durable().CommitStats())
			}
			return float64(total)
		}
	}
	s.reg.GaugeFunc("durable.records", stat(func(c durable.CommitStats) uint64 { return c.Records }))
	s.reg.GaugeFunc("durable.syncs", stat(func(c durable.CommitStats) uint64 { return c.Syncs }))
	s.reg.GaugeFunc("durable.batches", stat(func(c durable.CommitStats) uint64 { return c.Batches }))
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	s.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// Metrics returns the service's registry.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Shard returns the backing shard for tenant/project, or nil.
func (s *Service) Shard(tenant, project string) *Shard {
	return s.shards[tenant+"/"+project]
}

// Shards returns every shard in mount order.
func (s *Service) Shards() []*Shard {
	out := make([]*Shard, 0, len(s.order))
	for _, key := range s.order {
		out = append(out, s.shards[key])
	}
	return out
}

// Close closes every shard, releasing journals and locks.
func (s *Service) Close() error {
	var errs []error
	for _, key := range s.order {
		if err := s.shards[key].DS.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %s: %w", key, err))
		}
	}
	return errors.Join(errs...)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
	}{"ok", len(s.shards)})
}

// handleIngest is the admin write path: a newline-delimited stream of
// canonical issue encodings (tracker.EncodeIssue), each journaled into
// the shard before the next is read. Readers keep serving from the
// replica's snapshot throughout.
func (s *Service) handleIngest(shard *Shard) http.HandlerFunc {
	ingested := s.reg.Counter("ingest." + shard.Tenant + "." + shard.Project + ".issues")
	return func(w http.ResponseWriter, r *http.Request) {
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		n := 0
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			iss, err := tracker.DecodeIssue(line)
			if err != nil {
				http.Error(w, fmt.Sprintf("line %d: %v", n+1, err), http.StatusBadRequest)
				return
			}
			if err := shard.DS.Put(iss); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			n++
		}
		if err := sc.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ingested.Add(uint64(n))
		writeJSON(w, struct {
			Ingested int `json:"ingested"`
		}{n})
	}
}
