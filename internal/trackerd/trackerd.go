// Package trackerd is the shared tracker-serving engine behind the
// JIRA-like and GitHub-like simulators. One engine implements the
// pagination, encoding, and fault-handling logic once; two wire
// dialects (JIRA REST and GitHub REST) translate between the neutral
// tracker.Issue model and each tracker's JSON shapes. The thin
// compatibility handlers in internal/jirasim and internal/ghsim are
// wrappers over this package, and the multi-tenant Service (service.go)
// mounts the same dialects for N tenants × M projects, each backed by
// its own crash-consistent durable shard.
package trackerd

import (
	"encoding/json"
	"net/http"
	"strconv"

	"sdnbugs/internal/tracker"
)

// Source is the read surface a dialect serves from: the in-memory
// tracker.Store (via StoreSource) for the legacy single-store
// simulators, or a snapshot-serving tracker.Replica for the durable
// shards of a Service, where list traffic must never block writers.
type Source interface {
	List(q tracker.Query) ([]tracker.Issue, int)
	Get(id string) (tracker.Issue, bool)
}

// StoreSource adapts a *tracker.Store to the Source interface.
type StoreSource struct {
	Store *tracker.Store
}

// List implements Source.
func (s StoreSource) List(q tracker.Query) ([]tracker.Issue, int) { return s.Store.List(q) }

// Get implements Source.
func (s StoreSource) Get(id string) (tracker.Issue, bool) {
	iss, err := s.Store.Get(id)
	return iss, err == nil
}

// NewJIRAHandler serves the JIRA /rest/api/2 dialect from src, with the
// exact wire behavior the jirasim package has always had.
func NewJIRAHandler(src Source) http.Handler {
	mux := http.NewServeMux()
	(&jiraAPI{src: src}).register(mux, "")
	return mux
}

// NewGitHubHandler serves the GitHub issues dialect for the repository
// path owner/name from src. Issue IDs are expected in the
// "<controller>#<number>" form ctl implies.
func NewGitHubHandler(src Source, owner, name string, ctl tracker.Controller) http.Handler {
	mux := http.NewServeMux()
	(&githubAPI{src: src, ctl: ctl}).register(mux, "", owner, name)
	return mux
}

// atoiDefault parses s, falling back to def for empty, malformed, or
// negative input — the shared query-parameter rule of both dialects.
func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return def
	}
	return n
}

// writeJSON encodes v with a streaming encoder (trailing newline
// included), matching the original simulators byte for byte.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more we can do.
		return
	}
}
