// Package taxonomy defines the bug taxonomy of Table I in the paper: the
// five classification dimensions (bug type, root cause, symptom, fix,
// trigger) and their category universes, plus the sub-categories the
// paper uses for deeper analysis (Byzantine failure modes, configuration
// scopes, external-call kinds).
//
// Every bug receives at most one tag per dimension; Label.Validate
// enforces the structural rules the paper's manual labeling followed.
package taxonomy

import (
	"fmt"
)

// BugType classifies reproducibility (paper §III).
type BugType int

// BugType values. Deterministic bugs reproduce under a fixed input
// sequence; non-deterministic bugs do not.
const (
	BugTypeUnknown BugType = iota
	Deterministic
	NonDeterministic
)

// BugTypes lists every concrete BugType.
func BugTypes() []BugType { return []BugType{Deterministic, NonDeterministic} }

func (t BugType) String() string {
	switch t {
	case Deterministic:
		return "deterministic"
	case NonDeterministic:
		return "non-deterministic"
	default:
		return "unknown"
	}
}

// ParseBugType parses the string form produced by String.
func ParseBugType(s string) (BugType, error) {
	for _, t := range BugTypes() {
		if t.String() == s {
			return t, nil
		}
	}
	return BugTypeUnknown, fmt.Errorf("taxonomy: unknown bug type %q", s)
}

// RootCause classifies why the bug exists (Table I).
type RootCause int

// RootCause values. The first four are controller-logic causes; the
// last two are non-controller causes (human misconfiguration and
// ecosystem interaction).
const (
	RootCauseUnknown RootCause = iota
	CauseLoad
	CauseConcurrency
	CauseMemory
	CauseMissingLogic
	CauseHumanMisconfig
	CauseEcosystem
)

// RootCauses lists every concrete RootCause.
func RootCauses() []RootCause {
	return []RootCause{
		CauseLoad, CauseConcurrency, CauseMemory,
		CauseMissingLogic, CauseHumanMisconfig, CauseEcosystem,
	}
}

// IsControllerLogic reports whether the cause lies in controller code
// (as opposed to human error or the surrounding ecosystem).
func (c RootCause) IsControllerLogic() bool {
	switch c {
	case CauseLoad, CauseConcurrency, CauseMemory, CauseMissingLogic:
		return true
	default:
		return false
	}
}

func (c RootCause) String() string {
	switch c {
	case CauseLoad:
		return "load"
	case CauseConcurrency:
		return "concurrency"
	case CauseMemory:
		return "memory"
	case CauseMissingLogic:
		return "missing-logic"
	case CauseHumanMisconfig:
		return "human-misconfiguration"
	case CauseEcosystem:
		return "ecosystem-interaction"
	default:
		return "unknown"
	}
}

// ParseRootCause parses the string form produced by String.
func ParseRootCause(s string) (RootCause, error) {
	for _, c := range RootCauses() {
		if c.String() == s {
			return c, nil
		}
	}
	return RootCauseUnknown, fmt.Errorf("taxonomy: unknown root cause %q", s)
}

// Symptom classifies the operational impact (paper §IV).
type Symptom int

// Symptom values.
const (
	SymptomUnknown Symptom = iota
	SymptomPerformance
	SymptomFailStop
	SymptomErrorMessage
	SymptomByzantine
)

// Symptoms lists every concrete Symptom.
func Symptoms() []Symptom {
	return []Symptom{SymptomPerformance, SymptomFailStop, SymptomErrorMessage, SymptomByzantine}
}

func (s Symptom) String() string {
	switch s {
	case SymptomPerformance:
		return "performance"
	case SymptomFailStop:
		return "fail-stop"
	case SymptomErrorMessage:
		return "error-message"
	case SymptomByzantine:
		return "byzantine"
	default:
		return "unknown"
	}
}

// ParseSymptom parses the string form produced by String.
func ParseSymptom(s string) (Symptom, error) {
	for _, v := range Symptoms() {
		if v.String() == s {
			return v, nil
		}
	}
	return SymptomUnknown, fmt.Errorf("taxonomy: unknown symptom %q", s)
}

// ByzantineMode refines SymptomByzantine (paper §IV: gray failures,
// stalling, incorrect behavior).
type ByzantineMode int

// ByzantineMode values.
const (
	ByzantineNone ByzantineMode = iota
	GrayFailure
	Stalling
	IncorrectBehavior
)

// ByzantineModes lists every concrete ByzantineMode.
func ByzantineModes() []ByzantineMode {
	return []ByzantineMode{GrayFailure, Stalling, IncorrectBehavior}
}

func (m ByzantineMode) String() string {
	switch m {
	case GrayFailure:
		return "gray-failure"
	case Stalling:
		return "stalling"
	case IncorrectBehavior:
		return "incorrect-behavior"
	default:
		return "none"
	}
}

// ParseByzantineMode parses the string form produced by String.
func ParseByzantineMode(s string) (ByzantineMode, error) {
	if s == "none" || s == "" {
		return ByzantineNone, nil
	}
	for _, v := range ByzantineModes() {
		if v.String() == s {
			return v, nil
		}
	}
	return ByzantineNone, fmt.Errorf("taxonomy: unknown byzantine mode %q", s)
}

// Fix classifies the resolution strategy (Table I).
type Fix int

// Fix values, grouped as the paper groups them: no logic change
// (rollback, upgrade packages), new logic (add logic), or modification
// of existing logic (synchronization, configuration, compatibility,
// workaround).
const (
	FixUnknown Fix = iota
	FixRollbackUpgrade
	FixUpgradePackages
	FixAddLogic
	FixAddSynchronization
	FixConfiguration
	FixAddCompatibility
	FixWorkaround
)

// Fixes lists every concrete Fix.
func Fixes() []Fix {
	return []Fix{
		FixRollbackUpgrade, FixUpgradePackages, FixAddLogic,
		FixAddSynchronization, FixConfiguration, FixAddCompatibility, FixWorkaround,
	}
}

// FixClass is the paper's three-way grouping of fixes.
type FixClass int

// FixClass values.
const (
	FixClassUnknown FixClass = iota
	NoLogicChange
	AddNewLogic
	ChangeExistingLogic
)

func (fc FixClass) String() string {
	switch fc {
	case NoLogicChange:
		return "no-logic-change"
	case AddNewLogic:
		return "add-new-logic"
	case ChangeExistingLogic:
		return "change-existing-logic"
	default:
		return "unknown"
	}
}

// Class returns the paper's grouping for the fix.
func (f Fix) Class() FixClass {
	switch f {
	case FixRollbackUpgrade, FixUpgradePackages:
		return NoLogicChange
	case FixAddLogic:
		return AddNewLogic
	case FixAddSynchronization, FixConfiguration, FixAddCompatibility, FixWorkaround:
		return ChangeExistingLogic
	default:
		return FixClassUnknown
	}
}

func (f Fix) String() string {
	switch f {
	case FixRollbackUpgrade:
		return "rollback-upgrade"
	case FixUpgradePackages:
		return "upgrade-packages"
	case FixAddLogic:
		return "add-logic"
	case FixAddSynchronization:
		return "add-synchronization"
	case FixConfiguration:
		return "fix-configuration"
	case FixAddCompatibility:
		return "add-compatibility"
	case FixWorkaround:
		return "workaround"
	default:
		return "unknown"
	}
}

// ParseFix parses the string form produced by String.
func ParseFix(s string) (Fix, error) {
	for _, f := range Fixes() {
		if f.String() == s {
			return f, nil
		}
	}
	return FixUnknown, fmt.Errorf("taxonomy: unknown fix %q", s)
}

// Trigger classifies the event that initiates the bug (Table I).
type Trigger int

// Trigger values, aligned with the canonical event-driven controller of
// the paper's Figure 1.
const (
	TriggerUnknown Trigger = iota
	TriggerConfiguration
	TriggerExternalCall
	TriggerNetworkEvent
	TriggerHardwareReboot
)

// Triggers lists every concrete Trigger.
func Triggers() []Trigger {
	return []Trigger{
		TriggerConfiguration, TriggerExternalCall,
		TriggerNetworkEvent, TriggerHardwareReboot,
	}
}

func (t Trigger) String() string {
	switch t {
	case TriggerConfiguration:
		return "configuration"
	case TriggerExternalCall:
		return "external-call"
	case TriggerNetworkEvent:
		return "network-event"
	case TriggerHardwareReboot:
		return "hardware-reboot"
	default:
		return "unknown"
	}
}

// ParseTrigger parses the string form produced by String.
func ParseTrigger(s string) (Trigger, error) {
	for _, t := range Triggers() {
		if t.String() == s {
			return t, nil
		}
	}
	return TriggerUnknown, fmt.Errorf("taxonomy: unknown trigger %q", s)
}

// ExternalCallKind refines TriggerExternalCall for the whole-dataset
// analysis (Figure 13: system calls, third-party calls, application
// calls all belong to external calls).
type ExternalCallKind int

// ExternalCallKind values.
const (
	ExternalCallNone ExternalCallKind = iota
	SystemCall
	ThirdPartyCall
	ApplicationCall
)

// ExternalCallKinds lists every concrete ExternalCallKind.
func ExternalCallKinds() []ExternalCallKind {
	return []ExternalCallKind{SystemCall, ThirdPartyCall, ApplicationCall}
}

func (k ExternalCallKind) String() string {
	switch k {
	case SystemCall:
		return "system-call"
	case ThirdPartyCall:
		return "third-party-call"
	case ApplicationCall:
		return "application-call"
	default:
		return "none"
	}
}

// ParseExternalCallKind parses the string form produced by String.
func ParseExternalCallKind(s string) (ExternalCallKind, error) {
	if s == "none" || s == "" {
		return ExternalCallNone, nil
	}
	for _, k := range ExternalCallKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return ExternalCallNone, fmt.Errorf("taxonomy: unknown external call kind %q", s)
}

// ConfigScope refines TriggerConfiguration (Table III: controller,
// data-plane, or third-party configuration).
type ConfigScope int

// ConfigScope values.
const (
	ConfigScopeNone ConfigScope = iota
	ConfigController
	ConfigDataPlane
	ConfigThirdParty
)

// ConfigScopes lists every concrete ConfigScope.
func ConfigScopes() []ConfigScope {
	return []ConfigScope{ConfigController, ConfigDataPlane, ConfigThirdParty}
}

func (s ConfigScope) String() string {
	switch s {
	case ConfigController:
		return "controller-config"
	case ConfigDataPlane:
		return "data-plane-config"
	case ConfigThirdParty:
		return "third-party-config"
	default:
		return "none"
	}
}

// ParseConfigScope parses the string form produced by String.
func ParseConfigScope(str string) (ConfigScope, error) {
	if str == "none" || str == "" {
		return ConfigScopeNone, nil
	}
	for _, s := range ConfigScopes() {
		if s.String() == str {
			return s, nil
		}
	}
	return ConfigScopeNone, fmt.Errorf("taxonomy: unknown config scope %q", str)
}
