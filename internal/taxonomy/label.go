package taxonomy

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Label is one bug's full classification: at most one tag per dimension
// (per the paper's labeling protocol) plus the refinement sub-tags.
type Label struct {
	Type         BugType
	Cause        RootCause
	Symptom      Symptom
	Byzantine    ByzantineMode // meaningful only when Symptom == SymptomByzantine
	Fix          Fix
	Trigger      Trigger
	ExternalKind ExternalCallKind // meaningful only when Trigger == TriggerExternalCall
	ConfigScope  ConfigScope      // meaningful only when Trigger == TriggerConfiguration
}

// Validation errors returned by Label.Validate.
var (
	ErrDanglingByzantineMode = errors.New("taxonomy: byzantine mode set without byzantine symptom")
	ErrMissingByzantineMode  = errors.New("taxonomy: byzantine symptom requires a byzantine mode")
	ErrDanglingExternalKind  = errors.New("taxonomy: external-call kind set without external-call trigger")
	ErrMissingExternalKind   = errors.New("taxonomy: external-call trigger requires a call kind")
	ErrDanglingConfigScope   = errors.New("taxonomy: config scope set without configuration trigger")
	ErrMissingConfigScope    = errors.New("taxonomy: configuration trigger requires a config scope")
)

// Validate checks the structural rules of the taxonomy: refinement tags
// must be present exactly when their parent tag is, and no tag may be
// outside its dimension's universe. A completely empty label is valid
// (an unlabeled bug).
func (l Label) Validate() error {
	if l.Byzantine != ByzantineNone && l.Symptom != SymptomByzantine {
		return ErrDanglingByzantineMode
	}
	if l.Symptom == SymptomByzantine && l.Byzantine == ByzantineNone {
		return ErrMissingByzantineMode
	}
	if l.ExternalKind != ExternalCallNone && l.Trigger != TriggerExternalCall {
		return ErrDanglingExternalKind
	}
	if l.Trigger == TriggerExternalCall && l.ExternalKind == ExternalCallNone {
		return ErrMissingExternalKind
	}
	if l.ConfigScope != ConfigScopeNone && l.Trigger != TriggerConfiguration {
		return ErrDanglingConfigScope
	}
	if l.Trigger == TriggerConfiguration && l.ConfigScope == ConfigScopeNone {
		return ErrMissingConfigScope
	}
	if l.Type < BugTypeUnknown || l.Type > NonDeterministic {
		return fmt.Errorf("taxonomy: bug type %d out of range", l.Type)
	}
	if l.Cause < RootCauseUnknown || l.Cause > CauseEcosystem {
		return fmt.Errorf("taxonomy: root cause %d out of range", l.Cause)
	}
	if l.Symptom < SymptomUnknown || l.Symptom > SymptomByzantine {
		return fmt.Errorf("taxonomy: symptom %d out of range", l.Symptom)
	}
	if l.Fix < FixUnknown || l.Fix > FixWorkaround {
		return fmt.Errorf("taxonomy: fix %d out of range", l.Fix)
	}
	if l.Trigger < TriggerUnknown || l.Trigger > TriggerHardwareReboot {
		return fmt.Errorf("taxonomy: trigger %d out of range", l.Trigger)
	}
	return nil
}

// Complete reports whether every primary dimension has a concrete tag.
func (l Label) Complete() bool {
	return l.Type != BugTypeUnknown &&
		l.Cause != RootCauseUnknown &&
		l.Symptom != SymptomUnknown &&
		l.Fix != FixUnknown &&
		l.Trigger != TriggerUnknown
}

// labelJSON is the wire form of Label: all tags as their string names.
type labelJSON struct {
	Type         string `json:"type"`
	Cause        string `json:"cause"`
	Symptom      string `json:"symptom"`
	Byzantine    string `json:"byzantine,omitempty"`
	Fix          string `json:"fix"`
	Trigger      string `json:"trigger"`
	ExternalKind string `json:"external_kind,omitempty"`
	ConfigScope  string `json:"config_scope,omitempty"`
}

// MarshalJSON encodes the label with human-readable tag names.
func (l Label) MarshalJSON() ([]byte, error) {
	w := labelJSON{
		Type:    l.Type.String(),
		Cause:   l.Cause.String(),
		Symptom: l.Symptom.String(),
		Fix:     l.Fix.String(),
		Trigger: l.Trigger.String(),
	}
	if l.Byzantine != ByzantineNone {
		w.Byzantine = l.Byzantine.String()
	}
	if l.ExternalKind != ExternalCallNone {
		w.ExternalKind = l.ExternalKind.String()
	}
	if l.ConfigScope != ConfigScopeNone {
		w.ConfigScope = l.ConfigScope.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the string-name wire form. Unknown primary tags
// decode to the Unknown value only when spelled "unknown"; anything
// else is an error.
func (l *Label) UnmarshalJSON(data []byte) error {
	var w labelJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("taxonomy: decode label: %w", err)
	}
	out := Label{}
	var err error
	if w.Type != "" && w.Type != "unknown" {
		if out.Type, err = ParseBugType(w.Type); err != nil {
			return err
		}
	}
	if w.Cause != "" && w.Cause != "unknown" {
		if out.Cause, err = ParseRootCause(w.Cause); err != nil {
			return err
		}
	}
	if w.Symptom != "" && w.Symptom != "unknown" {
		if out.Symptom, err = ParseSymptom(w.Symptom); err != nil {
			return err
		}
	}
	if out.Byzantine, err = ParseByzantineMode(w.Byzantine); err != nil {
		return err
	}
	if w.Fix != "" && w.Fix != "unknown" {
		if out.Fix, err = ParseFix(w.Fix); err != nil {
			return err
		}
	}
	if w.Trigger != "" && w.Trigger != "unknown" {
		if out.Trigger, err = ParseTrigger(w.Trigger); err != nil {
			return err
		}
	}
	if out.ExternalKind, err = ParseExternalCallKind(w.ExternalKind); err != nil {
		return err
	}
	if out.ConfigScope, err = ParseConfigScope(w.ConfigScope); err != nil {
		return err
	}
	*l = out
	return nil
}

// Dimension identifies one axis of the taxonomy; used by the study and
// classification code to iterate dimensions generically.
type Dimension int

// Dimension values.
const (
	DimensionUnknown Dimension = iota
	DimType
	DimCause
	DimSymptom
	DimFix
	DimTrigger
)

// Dimensions lists every concrete Dimension.
func Dimensions() []Dimension {
	return []Dimension{DimType, DimCause, DimSymptom, DimFix, DimTrigger}
}

func (d Dimension) String() string {
	switch d {
	case DimType:
		return "bug-type"
	case DimCause:
		return "root-cause"
	case DimSymptom:
		return "symptom"
	case DimFix:
		return "fix"
	case DimTrigger:
		return "trigger"
	default:
		return "unknown"
	}
}

// Categories returns the string names of the dimension's category
// universe, in canonical order.
func (d Dimension) Categories() []string {
	switch d {
	case DimType:
		out := make([]string, 0, len(BugTypes()))
		for _, v := range BugTypes() {
			out = append(out, v.String())
		}
		return out
	case DimCause:
		out := make([]string, 0, len(RootCauses()))
		for _, v := range RootCauses() {
			out = append(out, v.String())
		}
		return out
	case DimSymptom:
		out := make([]string, 0, len(Symptoms()))
		for _, v := range Symptoms() {
			out = append(out, v.String())
		}
		return out
	case DimFix:
		out := make([]string, 0, len(Fixes()))
		for _, v := range Fixes() {
			out = append(out, v.String())
		}
		return out
	case DimTrigger:
		out := make([]string, 0, len(Triggers()))
		for _, v := range Triggers() {
			out = append(out, v.String())
		}
		return out
	default:
		return nil
	}
}

// Tag returns the label's tag name along dimension d.
func (l Label) Tag(d Dimension) string {
	switch d {
	case DimType:
		return l.Type.String()
	case DimCause:
		return l.Cause.String()
	case DimSymptom:
		return l.Symptom.String()
	case DimFix:
		return l.Fix.String()
	case DimTrigger:
		return l.Trigger.String()
	default:
		return "unknown"
	}
}

// SetTag assigns the named tag along dimension d, returning an error if
// the name is not in that dimension's universe.
func (l *Label) SetTag(d Dimension, name string) error {
	switch d {
	case DimType:
		v, err := ParseBugType(name)
		if err != nil {
			return err
		}
		l.Type = v
	case DimCause:
		v, err := ParseRootCause(name)
		if err != nil {
			return err
		}
		l.Cause = v
	case DimSymptom:
		v, err := ParseSymptom(name)
		if err != nil {
			return err
		}
		l.Symptom = v
	case DimFix:
		v, err := ParseFix(name)
		if err != nil {
			return err
		}
		l.Fix = v
	case DimTrigger:
		v, err := ParseTrigger(name)
		if err != nil {
			return err
		}
		l.Trigger = v
	default:
		return fmt.Errorf("taxonomy: cannot set tag on dimension %v", d)
	}
	return nil
}
