package taxonomy

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
)

func TestStringParseRoundTrips(t *testing.T) {
	for _, v := range BugTypes() {
		got, err := ParseBugType(v.String())
		if err != nil || got != v {
			t.Errorf("BugType %v round-trip: %v, %v", v, got, err)
		}
	}
	for _, v := range RootCauses() {
		got, err := ParseRootCause(v.String())
		if err != nil || got != v {
			t.Errorf("RootCause %v round-trip: %v, %v", v, got, err)
		}
	}
	for _, v := range Symptoms() {
		got, err := ParseSymptom(v.String())
		if err != nil || got != v {
			t.Errorf("Symptom %v round-trip: %v, %v", v, got, err)
		}
	}
	for _, v := range ByzantineModes() {
		got, err := ParseByzantineMode(v.String())
		if err != nil || got != v {
			t.Errorf("ByzantineMode %v round-trip: %v, %v", v, got, err)
		}
	}
	for _, v := range Fixes() {
		got, err := ParseFix(v.String())
		if err != nil || got != v {
			t.Errorf("Fix %v round-trip: %v, %v", v, got, err)
		}
	}
	for _, v := range Triggers() {
		got, err := ParseTrigger(v.String())
		if err != nil || got != v {
			t.Errorf("Trigger %v round-trip: %v, %v", v, got, err)
		}
	}
	for _, v := range ExternalCallKinds() {
		got, err := ParseExternalCallKind(v.String())
		if err != nil || got != v {
			t.Errorf("ExternalCallKind %v round-trip: %v, %v", v, got, err)
		}
	}
	for _, v := range ConfigScopes() {
		got, err := ParseConfigScope(v.String())
		if err != nil || got != v {
			t.Errorf("ConfigScope %v round-trip: %v, %v", v, got, err)
		}
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	if _, err := ParseBugType("bogus"); err == nil {
		t.Error("ParseBugType should reject bogus")
	}
	if _, err := ParseRootCause("bogus"); err == nil {
		t.Error("ParseRootCause should reject bogus")
	}
	if _, err := ParseSymptom("bogus"); err == nil {
		t.Error("ParseSymptom should reject bogus")
	}
	if _, err := ParseFix("bogus"); err == nil {
		t.Error("ParseFix should reject bogus")
	}
	if _, err := ParseTrigger("bogus"); err == nil {
		t.Error("ParseTrigger should reject bogus")
	}
}

func TestRootCauseIsControllerLogic(t *testing.T) {
	logic := map[RootCause]bool{
		CauseLoad: true, CauseConcurrency: true, CauseMemory: true,
		CauseMissingLogic: true, CauseHumanMisconfig: false, CauseEcosystem: false,
	}
	for c, want := range logic {
		if got := c.IsControllerLogic(); got != want {
			t.Errorf("%v.IsControllerLogic() = %v, want %v", c, got, want)
		}
	}
}

func TestFixClass(t *testing.T) {
	tests := []struct {
		fix  Fix
		want FixClass
	}{
		{FixRollbackUpgrade, NoLogicChange},
		{FixUpgradePackages, NoLogicChange},
		{FixAddLogic, AddNewLogic},
		{FixAddSynchronization, ChangeExistingLogic},
		{FixConfiguration, ChangeExistingLogic},
		{FixAddCompatibility, ChangeExistingLogic},
		{FixWorkaround, ChangeExistingLogic},
		{FixUnknown, FixClassUnknown},
	}
	for _, tt := range tests {
		if got := tt.fix.Class(); got != tt.want {
			t.Errorf("%v.Class() = %v, want %v", tt.fix, got, tt.want)
		}
	}
}

func validLabel() Label {
	return Label{
		Type:      Deterministic,
		Cause:     CauseMissingLogic,
		Symptom:   SymptomByzantine,
		Byzantine: GrayFailure,
		Fix:       FixAddLogic,
		Trigger:   TriggerNetworkEvent,
	}
}

func TestLabelValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Label)
		wantErr error
	}{
		{"valid", func(*Label) {}, nil},
		{"empty-label-valid", func(l *Label) { *l = Label{} }, nil},
		{
			"dangling-byzantine",
			func(l *Label) { l.Symptom = SymptomFailStop },
			ErrDanglingByzantineMode,
		},
		{
			"missing-byzantine-mode",
			func(l *Label) { l.Byzantine = ByzantineNone },
			ErrMissingByzantineMode,
		},
		{
			"external-call-needs-kind",
			func(l *Label) { l.Trigger = TriggerExternalCall },
			ErrMissingExternalKind,
		},
		{
			"dangling-external-kind",
			func(l *Label) { l.ExternalKind = ThirdPartyCall },
			ErrDanglingExternalKind,
		},
		{
			"config-needs-scope",
			func(l *Label) { l.Trigger = TriggerConfiguration },
			ErrMissingConfigScope,
		},
		{
			"dangling-config-scope",
			func(l *Label) { l.ConfigScope = ConfigController },
			ErrDanglingConfigScope,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := validLabel()
			tt.mutate(&l)
			err := l.Validate()
			if tt.wantErr == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Fatalf("got %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestLabelComplete(t *testing.T) {
	if (Label{}).Complete() {
		t.Error("empty label should not be complete")
	}
	if !validLabel().Complete() {
		t.Error("valid label should be complete")
	}
	l := validLabel()
	l.Fix = FixUnknown
	if l.Complete() {
		t.Error("label with unknown fix should not be complete")
	}
}

func TestLabelJSONRoundTrip(t *testing.T) {
	cases := []Label{
		validLabel(),
		{
			Type: NonDeterministic, Cause: CauseConcurrency,
			Symptom: SymptomPerformance, Fix: FixAddSynchronization,
			Trigger: TriggerExternalCall, ExternalKind: ThirdPartyCall,
		},
		{
			Type: Deterministic, Cause: CauseHumanMisconfig,
			Symptom: SymptomFailStop, Fix: FixConfiguration,
			Trigger: TriggerConfiguration, ConfigScope: ConfigThirdParty,
		},
		{}, // empty label
	}
	for i, l := range cases {
		data, err := json.Marshal(l)
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		var got Label
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("case %d unmarshal: %v", i, err)
		}
		if got != l {
			t.Errorf("case %d: round trip %+v != %+v", i, got, l)
		}
	}
}

func TestLabelJSONRejectsBadTags(t *testing.T) {
	var l Label
	if err := json.Unmarshal([]byte(`{"type":"sometimes"}`), &l); err == nil {
		t.Error("want error for bad bug type")
	}
	if err := json.Unmarshal([]byte(`{"trigger":"cosmic-ray"}`), &l); err == nil {
		t.Error("want error for bad trigger")
	}
	if err := json.Unmarshal([]byte(`not json`), &l); err == nil {
		t.Error("want error for invalid JSON")
	}
}

func TestDimensionCategories(t *testing.T) {
	wantCounts := map[Dimension]int{
		DimType: 2, DimCause: 6, DimSymptom: 4, DimFix: 7, DimTrigger: 4,
	}
	for _, d := range Dimensions() {
		cats := d.Categories()
		if len(cats) != wantCounts[d] {
			t.Errorf("%v has %d categories, want %d", d, len(cats), wantCounts[d])
		}
		seen := map[string]bool{}
		for _, c := range cats {
			if seen[c] {
				t.Errorf("%v has duplicate category %q", d, c)
			}
			seen[c] = true
		}
	}
	if DimensionUnknown.Categories() != nil {
		t.Error("unknown dimension should have nil categories")
	}
}

func TestLabelTagAndSetTag(t *testing.T) {
	l := validLabel()
	for _, d := range Dimensions() {
		tag := l.Tag(d)
		var fresh Label
		if err := fresh.SetTag(d, tag); err != nil {
			t.Errorf("SetTag(%v, %q): %v", d, tag, err)
		}
		if fresh.Tag(d) != tag {
			t.Errorf("Tag after SetTag = %q, want %q", fresh.Tag(d), tag)
		}
		if err := fresh.SetTag(d, "no-such-tag"); err == nil {
			t.Errorf("SetTag(%v) should reject unknown tag", d)
		}
	}
	var l2 Label
	if err := l2.SetTag(DimensionUnknown, "x"); err == nil {
		t.Error("SetTag on unknown dimension should fail")
	}
}

func TestLabelValidateProperty(t *testing.T) {
	// Any combination of concrete primary tags with matching refinement
	// tags validates; quick.Check drives the tag choices.
	f := func(ti, ci, si, fi, tri, bzi, eki, csi uint8) bool {
		l := Label{
			Type:    BugTypes()[int(ti)%len(BugTypes())],
			Cause:   RootCauses()[int(ci)%len(RootCauses())],
			Symptom: Symptoms()[int(si)%len(Symptoms())],
			Fix:     Fixes()[int(fi)%len(Fixes())],
			Trigger: Triggers()[int(tri)%len(Triggers())],
		}
		if l.Symptom == SymptomByzantine {
			l.Byzantine = ByzantineModes()[int(bzi)%len(ByzantineModes())]
		}
		if l.Trigger == TriggerExternalCall {
			l.ExternalKind = ExternalCallKinds()[int(eki)%len(ExternalCallKinds())]
		}
		if l.Trigger == TriggerConfiguration {
			l.ConfigScope = ConfigScopes()[int(csi)%len(ConfigScopes())]
		}
		if err := l.Validate(); err != nil {
			return false
		}
		if !l.Complete() {
			return false
		}
		// And the JSON round trip preserves it.
		data, err := json.Marshal(l)
		if err != nil {
			return false
		}
		var back Label
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
