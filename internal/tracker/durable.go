package tracker

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"sdnbugs/internal/durable"
)

// Key prefixes in a durable corpus store. Issues and mining cursors
// share one journal so a crash can never separate "what was mined"
// from "where mining stood".
const (
	issueKeyPrefix  = "issue/"
	cursorKeyPrefix = "cursor/"
)

// ParseStatus parses the string form produced by Status.String.
func ParseStatus(str string) (Status, error) {
	for _, s := range []Status{StatusOpen, StatusInProgress, StatusResolved, StatusClosed} {
		if s.String() == str {
			return s, nil
		}
	}
	return StatusUnknown, fmt.Errorf("tracker: unknown status %q", str)
}

// persistedIssue is the canonical on-disk issue encoding: every field
// explicit (severity and status as strings, unlike the wire model which
// drops them), fixed field order, so equal issues always encode to
// equal bytes — the property the kill-and-resume experiment's
// byte-identity check rests on.
type persistedIssue struct {
	ID          string    `json:"id"`
	Controller  string    `json:"controller"`
	Title       string    `json:"title"`
	Description string    `json:"description,omitempty"`
	Comments    []Comment `json:"comments,omitempty"`
	Severity    string    `json:"severity"`
	Status      string    `json:"status"`
	Created     time.Time `json:"created"`
	Resolved    time.Time `json:"resolved,omitzero"`
	Labels      []string  `json:"labels,omitempty"`
	FixRef      string    `json:"fix_ref,omitempty"`
}

// EncodeIssue renders an issue in the canonical persistence encoding.
func EncodeIssue(iss Issue) ([]byte, error) {
	data, err := json.Marshal(persistedIssue{
		ID:          iss.ID,
		Controller:  iss.Controller.String(),
		Title:       iss.Title,
		Description: iss.Description,
		Comments:    iss.Comments,
		Severity:    iss.Severity.String(),
		Status:      iss.Status.String(),
		Created:     iss.Created,
		Resolved:    iss.Resolved,
		Labels:      iss.Labels,
		FixRef:      iss.FixRef,
	})
	if err != nil {
		return nil, fmt.Errorf("tracker: encode issue %s: %w", iss.ID, err)
	}
	return data, nil
}

// DecodeIssue parses the canonical persistence encoding.
func DecodeIssue(data []byte) (Issue, error) {
	var p persistedIssue
	if err := json.Unmarshal(data, &p); err != nil {
		return Issue{}, fmt.Errorf("tracker: decode issue: %w", err)
	}
	iss := Issue{
		ID:          p.ID,
		Title:       p.Title,
		Description: p.Description,
		Comments:    p.Comments,
		Created:     p.Created,
		Resolved:    p.Resolved,
		Labels:      p.Labels,
		FixRef:      p.FixRef,
	}
	// "unknown" is a legal persisted value for each enum (GitHub issues
	// genuinely lack source severity before extraction); anything else
	// must parse.
	if p.Controller != ControllerUnknown.String() {
		c, err := ParseController(p.Controller)
		if err != nil {
			return Issue{}, err
		}
		iss.Controller = c
	}
	iss.ControllerName = iss.Controller.String()
	if p.Severity != SeverityUnknown.String() {
		s, err := ParseSeverity(p.Severity)
		if err != nil {
			return Issue{}, err
		}
		iss.Severity = s
	}
	if p.Status != StatusUnknown.String() {
		s, err := ParseStatus(p.Status)
		if err != nil {
			return Issue{}, err
		}
		iss.Status = s
	}
	return iss, nil
}

// DurableStore couples the in-memory issue Store with a crash-consistent
// durable.Store: every Put is journaled (and fsynced) before it lands in
// memory, and reopening the same state directory reloads the corpus in
// its original mining order along with any saved cursors.
type DurableStore struct {
	mem *Store
	d   *durable.Store
}

// NewDurableStore builds a DurableStore over an opened durable.Store,
// loading every persisted issue (insertion order preserved).
func NewDurableStore(d *durable.Store) (*DurableStore, error) {
	ds := &DurableStore{mem: NewStore(), d: d}
	var firstErr error
	d.Range(func(k string, v []byte) bool {
		if !strings.HasPrefix(k, issueKeyPrefix) {
			return true
		}
		iss, err := DecodeIssue(v)
		if err != nil {
			firstErr = fmt.Errorf("tracker: load %s: %w", k, err)
			return false
		}
		if err := ds.mem.Put(iss); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return ds, nil
}

// Put journals the issue durably, then applies it in memory. A re-Put
// of an existing ID overwrites the value but keeps the original mining
// slot, which is what makes crash-replayed pages idempotent.
func (ds *DurableStore) Put(iss Issue) error {
	if iss.ID == "" {
		return fmt.Errorf("tracker: issue ID required")
	}
	data, err := EncodeIssue(iss)
	if err != nil {
		return err
	}
	if err := ds.d.Put(issueKeyPrefix+iss.ID, data); err != nil {
		return err
	}
	return ds.mem.Put(iss)
}

// SaveCursor durably records a mining cursor under name.
func (ds *DurableStore) SaveCursor(name string, data []byte) error {
	return ds.d.Put(cursorKeyPrefix+name, data)
}

// Cursor returns the saved cursor bytes for name, if any.
func (ds *DurableStore) Cursor(name string) ([]byte, bool) {
	return ds.d.Get(cursorKeyPrefix + name)
}

// Store exposes the in-memory store for queries and serving.
func (ds *DurableStore) Store() *Store { return ds.mem }

// Len returns the number of persisted issues.
func (ds *DurableStore) Len() int { return ds.mem.Len() }

// IssuesInOrder returns every issue in first-Put (mining) order.
func (ds *DurableStore) IssuesInOrder() []Issue {
	var out []Issue
	ds.d.Range(func(k string, v []byte) bool {
		if !strings.HasPrefix(k, issueKeyPrefix) {
			return true
		}
		if iss, err := ds.mem.Get(k[len(issueKeyPrefix):]); err == nil {
			out = append(out, iss)
		}
		return true
	})
	return out
}

// CorpusBytes concatenates key and canonical value of every issue in
// first-Put order — the byte-level corpus fingerprint the crash-recovery
// experiment compares between a clean mine and a kill-and-resume mine.
func (ds *DurableStore) CorpusBytes() []byte {
	var buf []byte
	ds.d.Range(func(k string, v []byte) bool {
		if !strings.HasPrefix(k, issueKeyPrefix) {
			return true
		}
		buf = append(buf, k...)
		buf = append(buf, '\n')
		buf = append(buf, v...)
		buf = append(buf, '\n')
		return true
	})
	return buf
}

// Durable exposes the underlying durable store (recovery stats, manual
// snapshots).
func (ds *DurableStore) Durable() *durable.Store { return ds.d }

// Close closes the underlying durable store, releasing its journal and
// lock.
func (ds *DurableStore) Close() error { return ds.d.Close() }
