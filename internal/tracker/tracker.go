// Package tracker defines the tracker-neutral issue model shared by the
// JIRA simulator (ONOS, CORD) and the GitHub-Issues simulator (FAUCET),
// plus the in-memory store both servers are backed by and the severity
// heuristics the miner applies to GitHub issues, which — unlike JIRA —
// carry no explicit severity field (paper §II-B).
package tracker

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Controller identifies one of the studied controller projects.
type Controller int

// Controller values.
const (
	ControllerUnknown Controller = iota
	FAUCET
	ONOS
	CORD
)

// Controllers lists every studied controller.
func Controllers() []Controller { return []Controller{FAUCET, ONOS, CORD} }

func (c Controller) String() string {
	switch c {
	case FAUCET:
		return "FAUCET"
	case ONOS:
		return "ONOS"
	case CORD:
		return "CORD"
	default:
		return "unknown"
	}
}

// ParseController parses the string form produced by String.
func ParseController(s string) (Controller, error) {
	for _, c := range Controllers() {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return ControllerUnknown, fmt.Errorf("tracker: unknown controller %q", s)
}

// TrackerKind identifies which bug-management system hosts a project.
type TrackerKind int

// TrackerKind values.
const (
	KindUnknown TrackerKind = iota
	KindJIRA
	KindGitHub
)

func (k TrackerKind) String() string {
	switch k {
	case KindJIRA:
		return "jira"
	case KindGitHub:
		return "github"
	default:
		return "unknown"
	}
}

// TrackerFor returns the bug-management system each controller uses:
// JIRA for ONOS and CORD, GitHub for FAUCET (paper §II-B).
func TrackerFor(c Controller) TrackerKind {
	switch c {
	case ONOS, CORD:
		return KindJIRA
	case FAUCET:
		return KindGitHub
	default:
		return KindUnknown
	}
}

// Severity mirrors JIRA severity levels.
type Severity int

// Severity values.
const (
	SeverityUnknown Severity = iota
	SeverityBlocker
	SeverityCritical
	SeverityMajor
	SeverityMinor
	SeverityTrivial
)

func (s Severity) String() string {
	switch s {
	case SeverityBlocker:
		return "blocker"
	case SeverityCritical:
		return "critical"
	case SeverityMajor:
		return "major"
	case SeverityMinor:
		return "minor"
	case SeverityTrivial:
		return "trivial"
	default:
		return "unknown"
	}
}

// ParseSeverity parses the string form produced by String.
func ParseSeverity(str string) (Severity, error) {
	for _, s := range []Severity{SeverityBlocker, SeverityCritical, SeverityMajor, SeverityMinor, SeverityTrivial} {
		if s.String() == str {
			return s, nil
		}
	}
	return SeverityUnknown, fmt.Errorf("tracker: unknown severity %q", str)
}

// Critical reports whether the severity is in the paper's "critical
// bug" band (blocker or critical).
func (s Severity) Critical() bool {
	return s == SeverityBlocker || s == SeverityCritical
}

// Status is the lifecycle state of an issue.
type Status int

// Status values.
const (
	StatusUnknown Status = iota
	StatusOpen
	StatusInProgress
	StatusResolved
	StatusClosed
)

func (s Status) String() string {
	switch s {
	case StatusOpen:
		return "open"
	case StatusInProgress:
		return "in-progress"
	case StatusResolved:
		return "resolved"
	case StatusClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// Comment is a single discussion entry on an issue.
type Comment struct {
	Author  string    `json:"author"`
	Body    string    `json:"body"`
	Created time.Time `json:"created"`
}

// Issue is one bug report, tracker-neutral.
type Issue struct {
	// ID is the tracker-native key, e.g. "ONOS-1234" or "faucet#567".
	ID string `json:"id"`
	// Controller is the owning project.
	Controller Controller `json:"-"`
	// ControllerName is the JSON wire form of Controller.
	ControllerName string    `json:"controller"`
	Title          string    `json:"title"`
	Description    string    `json:"description"`
	Comments       []Comment `json:"comments,omitempty"`
	// Severity is explicit for JIRA projects; for GitHub projects it is
	// SeverityUnknown at the source and recovered by keyword heuristics.
	Severity Severity  `json:"-"`
	Status   Status    `json:"-"`
	Created  time.Time `json:"created"`
	// Resolved is the zero time while the issue is open, and for GitHub
	// projects even when closed (the paper could not obtain FAUCET
	// resolution timestamps).
	Resolved time.Time `json:"resolved,omitzero"`
	// Labels are free-form tracker labels, e.g. "bug", "crash".
	Labels []string `json:"labels,omitempty"`
	// FixRef is the Gerrit change or PR that closed the issue.
	FixRef string `json:"fix_ref,omitempty"`
}

// ResolutionTime returns the open-to-resolved duration and whether it
// is known.
func (i *Issue) ResolutionTime() (time.Duration, bool) {
	if i.Resolved.IsZero() || i.Resolved.Before(i.Created) {
		return 0, false
	}
	return i.Resolved.Sub(i.Created), true
}

// Text returns the title, description and comments concatenated — the
// document the NLP pipeline consumes.
func (i *Issue) Text() string {
	var b strings.Builder
	b.WriteString(i.Title)
	b.WriteString("\n")
	b.WriteString(i.Description)
	for _, c := range i.Comments {
		b.WriteString("\n")
		b.WriteString(c.Body)
	}
	return b.String()
}

// severityKeywords drive the keyword heuristic for GitHub severity
// extraction (paper §II-B, following [35]).
var severityKeywords = []struct {
	severity Severity
	words    []string
}{
	{SeverityBlocker, []string{"blocker", "outage", "data loss", "security vulnerability", "cannot start", "unusable"}},
	{SeverityCritical, []string{"crash", "critical", "severe", "exception", "traceback", "fatal", "deadlock", "panic", "downtime", "fails to", "broken"}},
	{SeverityMajor, []string{"incorrect", "wrong", "fails", "error", "unexpected", "regression", "leak"}},
	{SeverityMinor, []string{"slow", "minor", "cosmetic", "warning", "typo"}},
}

// ExtractSeverity applies the keyword heuristic to an issue's text and
// returns the inferred severity (SeverityTrivial when nothing matches).
func ExtractSeverity(text string) Severity {
	lower := strings.ToLower(text)
	for _, sk := range severityKeywords {
		for _, w := range sk.words {
			if strings.Contains(lower, w) {
				return sk.severity
			}
		}
	}
	return SeverityTrivial
}

// Store is a concurrency-safe in-memory issue store with the filtering
// and pagination both tracker simulators expose.
type Store struct {
	mu      sync.RWMutex
	issues  map[string]*Issue
	order   []string // insertion order for stable pagination
	version uint64   // bumped on every Put; lets replicas detect staleness
}

// ErrNotFound is returned for lookups of unknown issue IDs.
var ErrNotFound = errors.New("tracker: issue not found")

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{issues: make(map[string]*Issue)}
}

// Put inserts or replaces an issue (copied).
func (s *Store) Put(issue Issue) error {
	if issue.ID == "" {
		return errors.New("tracker: issue ID required")
	}
	issue.ControllerName = issue.Controller.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.issues[issue.ID]; !exists {
		s.order = append(s.order, issue.ID)
	}
	cp := issue
	cp.Comments = append([]Comment(nil), issue.Comments...)
	cp.Labels = append([]string(nil), issue.Labels...)
	s.issues[issue.ID] = &cp
	s.version++
	return nil
}

// Version returns a counter that changes whenever the store's contents
// do — the staleness signal Replica refreshes on.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Get returns a copy of the issue with the given ID.
func (s *Store) Get(id string) (Issue, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	iss, ok := s.issues[id]
	if !ok {
		return Issue{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *iss, nil
}

// Len returns the number of stored issues.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.issues)
}

// Query filters issues.
type Query struct {
	// Controller restricts to one project (ControllerUnknown = all).
	Controller Controller
	// MinSeverity keeps issues at least this severe (its numeric value
	// or lower, since Blocker < Critical < ... numerically).
	MinSeverity Severity
	// Status restricts to one status (StatusUnknown = all).
	Status Status
	// CreatedAfter / CreatedBefore bound the creation time when non-zero.
	CreatedAfter, CreatedBefore time.Time
	// Offset and Limit paginate (Limit 0 = no limit).
	Offset, Limit int
}

// Matches reports whether the issue satisfies every filter in q
// (pagination fields are ignored).
func (q Query) Matches(iss *Issue) bool {
	if q.Controller != ControllerUnknown && iss.Controller != q.Controller {
		return false
	}
	if q.MinSeverity != SeverityUnknown && (iss.Severity == SeverityUnknown || iss.Severity > q.MinSeverity) {
		return false
	}
	if q.Status != StatusUnknown && iss.Status != q.Status {
		return false
	}
	if !q.CreatedAfter.IsZero() && iss.Created.Before(q.CreatedAfter) {
		return false
	}
	if !q.CreatedBefore.IsZero() && iss.Created.After(q.CreatedBefore) {
		return false
	}
	return true
}

// paginate applies q's Offset/Limit to a matched slice.
func (q Query) paginate(matched []*Issue) []*Issue {
	if q.Offset > len(matched) {
		return nil
	}
	matched = matched[q.Offset:]
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched
}

// issueLess is the canonical listing order: creation time, then ID.
func issueLess(a, b *Issue) bool {
	if !a.Created.Equal(b.Created) {
		return a.Created.Before(b.Created)
	}
	return a.ID < b.ID
}

// List returns issues matching q, ordered by creation time then ID,
// plus the total number of matches before pagination.
func (s *Store) List(q Query) ([]Issue, int) {
	s.mu.RLock()
	matched := make([]*Issue, 0, len(s.order))
	for _, id := range s.order {
		if iss := s.issues[id]; q.Matches(iss) {
			matched = append(matched, iss)
		}
	}
	s.mu.RUnlock()

	sort.Slice(matched, func(a, b int) bool { return issueLess(matched[a], matched[b]) })
	total := len(matched)
	matched = q.paginate(matched)
	out := make([]Issue, len(matched))
	for i, iss := range matched {
		out[i] = *iss
	}
	return out, total
}
