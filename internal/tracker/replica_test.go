package tracker

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func replicaSeed(t *testing.T, s *Store, n int) {
	t.Helper()
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		if err := s.Put(Issue{
			ID: fmt.Sprintf("ONOS-%03d", i), Controller: ONOS,
			Title: "t", Severity: SeverityMajor, Status: StatusClosed,
			Created: base.Add(time.Duration(i) * time.Minute),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplicaMatchesStoreList(t *testing.T) {
	s := NewStore()
	replicaSeed(t, s, 57)
	r := NewReplica(s)
	queries := []Query{
		{},
		{Controller: ONOS},
		{Controller: FAUCET},
		{Status: StatusClosed, Offset: 10, Limit: 20},
		{MinSeverity: SeverityMajor, Offset: 50, Limit: 20},
		{Offset: 100},
	}
	for _, q := range queries {
		wantIss, wantTotal := s.List(q)
		gotIss, gotTotal := r.List(q)
		if gotTotal != wantTotal || !reflect.DeepEqual(gotIss, wantIss) {
			t.Errorf("query %+v: replica diverged from store (%d vs %d issues)",
				q, len(gotIss), len(wantIss))
		}
	}
}

func TestReplicaSeesWritesAfterRefresh(t *testing.T) {
	s := NewStore()
	replicaSeed(t, s, 3)
	r := NewReplica(s)
	if n := r.Len(); n != 3 {
		t.Fatalf("initial len = %d", n)
	}
	if err := s.Put(Issue{ID: "ONOS-new", Controller: ONOS, Title: "t",
		Created: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}); err != nil {
		t.Fatal(err)
	}
	if n := r.Len(); n != 4 {
		t.Fatalf("len after write = %d, want 4 (version bump must trigger refresh)", n)
	}
	if _, ok := r.Get("ONOS-new"); !ok {
		t.Fatal("replica missing freshly written issue")
	}
}

func TestReplicaSnapshotDoesNotAliasStore(t *testing.T) {
	s := NewStore()
	replicaSeed(t, s, 1)
	r := NewReplica(s)
	got, _ := r.List(Query{})
	// Overwrite the issue in the store; the previously returned slice
	// must keep the old value.
	mod := got[0]
	mod.Title = "rewritten"
	if err := s.Put(mod); err != nil {
		t.Fatal(err)
	}
	if got[0].Title != "t" {
		t.Fatalf("replica result mutated by a later store write: %q", got[0].Title)
	}
}

func TestReplicaConcurrentReadersAndWriters(t *testing.T) {
	s := NewStore()
	replicaSeed(t, s, 10)
	r := NewReplica(s)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Put(Issue{ID: fmt.Sprintf("W-%d", i), Controller: CORD,
				Title: "w", Created: base.Add(time.Duration(i) * time.Second)})
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				iss, total := r.List(Query{Limit: 25})
				if len(iss) > 25 || total < 10 {
					t.Errorf("inconsistent page: %d issues, total %d", len(iss), total)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
