package tracker

import (
	"bytes"
	"testing"
	"time"
)

// FuzzIssueCodec fuzzes the canonical persistence codec the way
// FuzzJournalReplay fuzzes the WAL parser. The contract:
//
//   - DecodeIssue never panics, whatever the bytes;
//   - the codec reaches a byte-stable fixed point after one
//     normalization round trip: with iss2 = Decode(Encode(iss)), all
//     further Encode/Decode cycles of iss2 reproduce the same bytes.
//     (The first Encode may normalize — e.g. invalid UTF-8 becomes
//     U+FFFD — but persisted bytes re-persist identically, which is
//     the property the E23 corpus fingerprint rests on.)
func FuzzIssueCodec(f *testing.F) {
	f.Add("ONOS-1", "Cluster fails", "desc", "alice", "confirmed", int64(1551441600), int64(86400), uint8(1), uint8(2), uint8(4), "bug,crash", "gerrit/123")
	f.Add("FAUCET#9", "", "", "", "", int64(0), int64(-5), uint8(0), uint8(0), uint8(0), "", "")
	f.Add("CORD-55", "unicode ✓ title", "a\x00b", "bøb", "nulls\x00", int64(-1), int64(1), uint8(9), uint8(200), uint8(255), ",,", "x")

	f.Fuzz(func(t *testing.T, id, title, desc, author, comment string,
		createdSec, resolvedDelta int64, ctl, sev, status uint8, labelCSV, fixRef string) {
		// Build a structurally arbitrary — but encodable — issue from the
		// fuzzed inputs. Enums are taken mod their range so every value is
		// a legal String(); times are clamped to JSON-marshalable years.
		created := time.Unix(createdSec%4e10, 0).UTC()
		if created.Year() < 1 || created.Year() > 9000 {
			created = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
		}
		iss := Issue{
			ID:          id,
			Controller:  Controller(int(ctl) % 4),
			Title:       title,
			Description: desc,
			Severity:    Severity(int(sev) % 6),
			Status:      Status(int(status) % 5),
			Created:     created,
			FixRef:      fixRef,
		}
		if resolvedDelta > 0 {
			iss.Resolved = created.Add(time.Duration(resolvedDelta) * time.Second)
			if iss.Resolved.Year() > 9000 {
				iss.Resolved = created
			}
		}
		if labelCSV != "" {
			for _, l := range bytes.Split([]byte(labelCSV), []byte(",")) {
				iss.Labels = append(iss.Labels, string(l))
			}
		}
		if author != "" || comment != "" {
			iss.Comments = []Comment{{Author: author, Body: comment, Created: created}}
		}

		enc1, err := EncodeIssue(iss)
		if err != nil {
			t.Skip() // unencodable inputs are out of contract
		}
		dec, err := DecodeIssue(enc1)
		if err != nil {
			t.Fatalf("decode of our own encoding failed: %v\n%s", err, enc1)
		}
		enc2, err := EncodeIssue(dec)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		dec2, err := DecodeIssue(enc2)
		if err != nil {
			t.Fatalf("decode of normalized encoding failed: %v\n%s", err, enc2)
		}
		enc3, err := EncodeIssue(dec2)
		if err != nil {
			t.Fatalf("re-encode of normalized issue failed: %v", err)
		}
		if !bytes.Equal(enc2, enc3) {
			t.Fatalf("codec has no fixed point:\n enc2 = %s\n enc3 = %s", enc2, enc3)
		}

		// And the decoder must be total: arbitrary mutations of a valid
		// encoding may fail, but never panic.
		if len(enc1) > 2 {
			mangled := append([]byte(nil), enc1...)
			mangled[len(mangled)/2] ^= 0x20
			_, _ = DecodeIssue(mangled)
		}
		_, _ = DecodeIssue([]byte(id))
	})
}
