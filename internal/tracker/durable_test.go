package tracker

import (
	"bytes"
	"testing"
	"time"

	"sdnbugs/internal/diskfault"
	"sdnbugs/internal/durable"
)

func sampleIssue(id string) Issue {
	return Issue{
		ID:             id,
		Controller:     ONOS,
		ControllerName: "ONOS",
		Title:          "switch reconnect loops forever",
		Description:    "after mastership change the switch never resyncs",
		Comments: []Comment{
			{Author: "alice", Body: "reproduced on 3-node cluster", Created: time.Date(2019, 3, 2, 10, 0, 0, 0, time.UTC)},
		},
		Severity: SeverityCritical,
		Status:   StatusResolved,
		Created:  time.Date(2019, 3, 1, 9, 30, 0, 0, time.UTC),
		Resolved: time.Date(2019, 4, 1, 12, 0, 0, 0, time.UTC),
		Labels:   []string{"bug", "cluster"},
		FixRef:   "gerrit/21112",
	}
}

func TestIssueCodecRoundTrip(t *testing.T) {
	want := sampleIssue("ONOS-1234")
	data, err := EncodeIssue(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIssue(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeIssue(got)
	if err != nil {
		t.Fatal(err)
	}
	// The canonical property: decode followed by encode is the identity
	// on bytes, so persisted corpora can be compared byte-for-byte.
	if !bytes.Equal(data, again) {
		t.Fatalf("encoding not canonical:\n%s\nvs\n%s", data, again)
	}
	if got.ID != want.ID || got.Severity != want.Severity || got.Status != want.Status ||
		got.Controller != want.Controller || !got.Created.Equal(want.Created) {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if len(got.Comments) != 1 || got.Comments[0].Author != "alice" {
		t.Errorf("comments lost: %+v", got.Comments)
	}
}

func TestIssueCodecUnknownEnums(t *testing.T) {
	iss := Issue{ID: "FAUCET#7", Controller: FAUCET, Title: "t",
		Created: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	// Severity and status deliberately unknown (pre-extraction GitHub).
	data, err := EncodeIssue(iss)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIssue(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Severity != SeverityUnknown || got.Status != StatusUnknown {
		t.Errorf("unknown enums not preserved: %+v", got)
	}
	if _, err := DecodeIssue([]byte(`{"id":"x","controller":"ONOS","severity":"catastrophic","status":"open"}`)); err == nil {
		t.Error("bogus severity accepted")
	}
	if _, err := DecodeIssue([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseStatus(t *testing.T) {
	for _, s := range []Status{StatusOpen, StatusInProgress, StatusResolved, StatusClosed} {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStatus(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStatus("nonsense"); err == nil {
		t.Error("ParseStatus accepted nonsense")
	}
}

func TestDurableStoreReloadsInOrder(t *testing.T) {
	mem := diskfault.NewMemFS()
	d, err := durable.Open("state", durable.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDurableStore(d)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"ONOS-3", "ONOS-1", "CORD-2"}
	for _, id := range ids {
		iss := sampleIssue(id)
		if id == "CORD-2" {
			iss.Controller = CORD
		}
		if err := ds.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.SaveCursor("jira", []byte(`{"start_at":3}`)); err != nil {
		t.Fatal(err)
	}
	fingerprint := ds.CorpusBytes()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := durable.Open("state", durable.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := NewDurableStore(d2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ds2.Close() }()
	if ds2.Len() != 3 {
		t.Fatalf("reloaded %d issues, want 3", ds2.Len())
	}
	got := ds2.IssuesInOrder()
	for i, iss := range got {
		if iss.ID != ids[i] {
			t.Errorf("order[%d] = %s, want %s (mining order must survive reload)", i, iss.ID, ids[i])
		}
	}
	if cur, ok := ds2.Cursor("jira"); !ok || string(cur) != `{"start_at":3}` {
		t.Errorf("cursor lost: %q, %v", cur, ok)
	}
	if !bytes.Equal(ds2.CorpusBytes(), fingerprint) {
		t.Error("corpus fingerprint changed across reload")
	}
}
