package tracker

import (
	"sort"
	"sync/atomic"
)

// Replica is a snapshot-serving read view over a Store. List traffic
// is answered from an immutable, pre-sorted copy of the store held in
// an atomic pointer, so readers never contend on the store's lock:
// writers keep journaling and Putting at full speed while hundreds of
// concurrent miners page through the same data. The replica refreshes
// itself lazily — a reader that notices the store's version moved
// rebuilds the snapshot (one locked copy) and publishes it for
// everyone; until then readers serve the previous consistent view,
// which is exactly the staleness contract of a read replica.
type Replica struct {
	src  *Store
	view atomic.Pointer[replicaView]
}

// replicaView is one immutable snapshot: every issue, pre-sorted in
// the canonical listing order (creation time, then ID).
type replicaView struct {
	version uint64
	issues  []*Issue
}

// NewReplica returns a replica over src. The first List builds the
// initial snapshot.
func NewReplica(src *Store) *Replica {
	return &Replica{src: src}
}

// refresh returns a view no older than the store version observed at
// entry. Concurrent refreshes may race; each publishes a complete
// consistent snapshot, so whichever lands last wins harmlessly.
func (r *Replica) refresh() *replicaView {
	v := r.view.Load()
	version := r.src.Version()
	if v != nil && v.version == version {
		return v
	}
	nv := &replicaView{version: version}
	r.src.mu.RLock()
	nv.issues = make([]*Issue, 0, len(r.src.order))
	for _, id := range r.src.order {
		iss := *r.src.issues[id] // copy: the view must never alias live store state
		nv.issues = append(nv.issues, &iss)
	}
	r.src.mu.RUnlock()
	sort.Slice(nv.issues, func(a, b int) bool { return issueLess(nv.issues[a], nv.issues[b]) })
	r.view.Store(nv)
	return nv
}

// List answers q from the snapshot, with the same ordering and total
// semantics as Store.List.
func (r *Replica) List(q Query) ([]Issue, int) {
	view := r.refresh()
	matched := make([]*Issue, 0, len(view.issues))
	for _, iss := range view.issues {
		if q.Matches(iss) {
			matched = append(matched, iss)
		}
	}
	total := len(matched)
	matched = q.paginate(matched)
	out := make([]Issue, len(matched))
	for i, iss := range matched {
		out[i] = *iss
	}
	return out, total
}

// Get returns the issue with the given ID from the snapshot.
func (r *Replica) Get(id string) (Issue, bool) {
	view := r.refresh()
	for _, iss := range view.issues {
		if iss.ID == id {
			return *iss, true
		}
	}
	return Issue{}, false
}

// Len returns the snapshot's issue count.
func (r *Replica) Len() int { return len(r.refresh().issues) }
