package tracker

import (
	"errors"
	"testing"
	"time"
)

func day(n int) time.Time {
	return time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestControllerParse(t *testing.T) {
	for _, c := range Controllers() {
		got, err := ParseController(c.String())
		if err != nil || got != c {
			t.Errorf("round-trip %v: %v %v", c, got, err)
		}
	}
	if got, err := ParseController("onos"); err != nil || got != ONOS {
		t.Errorf("case-insensitive parse failed: %v %v", got, err)
	}
	if _, err := ParseController("odl"); err == nil {
		t.Error("want error for unstudied controller")
	}
}

func TestTrackerFor(t *testing.T) {
	if TrackerFor(ONOS) != KindJIRA || TrackerFor(CORD) != KindJIRA {
		t.Error("ONOS and CORD use JIRA")
	}
	if TrackerFor(FAUCET) != KindGitHub {
		t.Error("FAUCET uses GitHub")
	}
	if TrackerFor(ControllerUnknown) != KindUnknown {
		t.Error("unknown controller has unknown tracker")
	}
}

func TestSeverity(t *testing.T) {
	if !SeverityBlocker.Critical() || !SeverityCritical.Critical() {
		t.Error("blocker/critical must be critical band")
	}
	if SeverityMajor.Critical() || SeverityMinor.Critical() {
		t.Error("major/minor must not be critical band")
	}
	got, err := ParseSeverity("critical")
	if err != nil || got != SeverityCritical {
		t.Errorf("parse: %v %v", got, err)
	}
	if _, err := ParseSeverity("catastrophic"); err == nil {
		t.Error("want parse error")
	}
}

func TestExtractSeverity(t *testing.T) {
	tests := []struct {
		text string
		want Severity
	}{
		{"Controller crash on malformed packet", SeverityCritical},
		{"Total outage after upgrade", SeverityBlocker},
		{"Wrong flow installed for mirrored ports", SeverityMajor},
		{"Typo in log message", SeverityMinor},
		{"Improve docs for ACL syntax", SeverityTrivial},
		{"NullPointerException traceback attached", SeverityCritical},
	}
	for _, tt := range tests {
		if got := ExtractSeverity(tt.text); got != tt.want {
			t.Errorf("ExtractSeverity(%q) = %v, want %v", tt.text, got, tt.want)
		}
	}
}

func TestIssueResolutionTime(t *testing.T) {
	i := Issue{Created: day(0), Resolved: day(10)}
	d, ok := i.ResolutionTime()
	if !ok || d != 10*24*time.Hour {
		t.Errorf("got %v %v", d, ok)
	}
	open := Issue{Created: day(0)}
	if _, ok := open.ResolutionTime(); ok {
		t.Error("open issue has no resolution time")
	}
	weird := Issue{Created: day(5), Resolved: day(1)}
	if _, ok := weird.ResolutionTime(); ok {
		t.Error("resolved-before-created must be rejected")
	}
}

func TestIssueText(t *testing.T) {
	i := Issue{
		Title:       "Crash",
		Description: "It crashed.",
		Comments:    []Comment{{Body: "Stack trace attached."}},
	}
	want := "Crash\nIt crashed.\nStack trace attached."
	if got := i.Text(); got != want {
		t.Errorf("Text = %q", got)
	}
}

func storeWithIssues(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	issues := []Issue{
		{ID: "ONOS-1", Controller: ONOS, Severity: SeverityCritical, Status: StatusClosed, Created: day(1)},
		{ID: "ONOS-2", Controller: ONOS, Severity: SeverityMinor, Status: StatusOpen, Created: day(2)},
		{ID: "CORD-1", Controller: CORD, Severity: SeverityBlocker, Status: StatusClosed, Created: day(3)},
		{ID: "faucet#1", Controller: FAUCET, Severity: SeverityCritical, Status: StatusClosed, Created: day(4)},
		{ID: "ONOS-3", Controller: ONOS, Severity: SeverityCritical, Status: StatusOpen, Created: day(5)},
	}
	for _, iss := range issues {
		if err := s.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestStorePutGet(t *testing.T) {
	s := storeWithIssues(t)
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	got, err := s.Get("ONOS-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Controller != ONOS || got.ControllerName != "ONOS" {
		t.Errorf("controller fields: %+v", got)
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	if err := s.Put(Issue{}); err == nil {
		t.Error("want error for missing ID")
	}
	// Replacing keeps Len stable.
	if err := s.Put(Issue{ID: "ONOS-1", Controller: ONOS, Created: day(1)}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Errorf("Len after replace = %d", s.Len())
	}
}

func TestStoreIsolation(t *testing.T) {
	s := NewStore()
	src := Issue{ID: "X-1", Labels: []string{"bug"}, Comments: []Comment{{Body: "hi"}}}
	if err := s.Put(src); err != nil {
		t.Fatal(err)
	}
	src.Labels[0] = "mutated"
	got, _ := s.Get("X-1")
	if got.Labels[0] != "bug" {
		t.Error("store must copy labels")
	}
}

func TestStoreQueryFilters(t *testing.T) {
	s := storeWithIssues(t)
	tests := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 5},
		{"by-controller", Query{Controller: ONOS}, 3},
		{"critical-band", Query{MinSeverity: SeverityCritical}, 4},
		{"closed-only", Query{Status: StatusClosed}, 3},
		{"created-after", Query{CreatedAfter: day(3)}, 3},
		{"created-before", Query{CreatedBefore: day(2)}, 2},
		{"combo", Query{Controller: ONOS, Status: StatusClosed}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, total := s.List(tt.q)
			if len(got) != tt.want || total != tt.want {
				t.Errorf("got %d/%d, want %d", len(got), total, tt.want)
			}
		})
	}
}

func TestStoreQueryPagination(t *testing.T) {
	s := storeWithIssues(t)
	page1, total := s.List(Query{Limit: 2})
	if total != 5 || len(page1) != 2 {
		t.Fatalf("page1: %d/%d", len(page1), total)
	}
	page2, _ := s.List(Query{Offset: 2, Limit: 2})
	page3, _ := s.List(Query{Offset: 4, Limit: 2})
	if len(page2) != 2 || len(page3) != 1 {
		t.Fatalf("pages: %d %d", len(page2), len(page3))
	}
	// Ordered by creation time.
	if page1[0].ID != "ONOS-1" || page3[0].ID != "ONOS-3" {
		t.Errorf("ordering wrong: %v %v", page1[0].ID, page3[0].ID)
	}
	// Offset past the end.
	empty, total := s.List(Query{Offset: 100})
	if len(empty) != 0 || total != 5 {
		t.Errorf("past-end: %d/%d", len(empty), total)
	}
}
