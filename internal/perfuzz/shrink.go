package perfuzz

// Delta-debugging shrinker: reduce a degradation-inducing schedule to
// a minimal reproducer that still triggers the same degradation
// class. The algorithm is greedy ddmin — chunk removal at halving
// granularity, then single-gene removal to a fixpoint, then a
// gap-zeroing pass — re-validating the candidate's degradation class
// after every removal. Because Harness.Eval is a pure function of
// (seed, genome), each validation replays the schedule from scratch,
// so the surviving reproducer is 1-minimal under gene removal within
// the evaluation budget.

// ShrinkStats reports the shrink loop's work.
type ShrinkStats struct {
	// Steps is how many candidate removals were accepted.
	Steps int `json:"steps"`
	// Evals is how many harness evaluations the shrink spent.
	Evals int `json:"evals"`
}

// Shrink delta-debugs genome g down to a minimal schedule whose
// evaluation still reports class. It returns the shrunk genome, its
// evaluation, and shrink statistics. The result is never longer than
// the input, and always still triggers class (at worst the input is
// returned unchanged). budget caps harness evaluations; 0 means the
// default of 400.
func Shrink(g Genome, class string, h *Harness, budget int) (Genome, Eval, ShrinkStats, error) {
	if budget <= 0 {
		budget = 400
	}
	var stats ShrinkStats
	check := func(cand Genome) (bool, Eval, error) {
		if stats.Evals >= budget {
			return false, Eval{}, nil
		}
		stats.Evals++
		e, err := h.Eval(cand)
		if err != nil {
			return false, Eval{}, err
		}
		return e.Class == class, e, nil
	}

	cur := g.Clone()
	curEval, err := h.Eval(cur)
	if err != nil {
		return nil, Eval{}, stats, err
	}
	stats.Evals++
	if curEval.Class != class {
		// The parent no longer reproduces (should not happen with a
		// deterministic harness); hand it back untouched.
		return cur, curEval, stats, nil
	}

	// Pass 1: remove chunks, halving the chunk size from len/2 down
	// to 2. Restart a size level whenever a removal sticks so earlier
	// offsets get retried against the smaller schedule.
	for size := len(cur) / 2; size >= 2; size /= 2 {
		for start := 0; start+size <= len(cur) && len(cur) > 1; {
			cand := removeRange(cur, start, size)
			ok, e, err := check(cand)
			if err != nil {
				return nil, Eval{}, stats, err
			}
			if ok {
				cur, curEval = cand, e
				stats.Steps++
				// keep start: the next chunk slid into this offset
			} else {
				start += size
			}
		}
	}

	// Pass 2: single-gene removal to a fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur) && len(cur) > 1; {
			cand := removeRange(cur, i, 1)
			ok, e, err := check(cand)
			if err != nil {
				return nil, Eval{}, stats, err
			}
			if ok {
				cur, curEval = cand, e
				stats.Steps++
				changed = true
			} else {
				i++
			}
		}
	}

	// Pass 3: zero the inter-event gaps — a reproducer with no idle
	// padding is easier to read and replays faster.
	for i := 0; i < len(cur); i++ {
		if cur[i].Gap == 0 {
			continue
		}
		cand := cur.Clone()
		cand[i].Gap = 0
		ok, e, err := check(cand)
		if err != nil {
			return nil, Eval{}, stats, err
		}
		if ok {
			cur, curEval = cand, e
			stats.Steps++
		}
	}

	return cur, curEval, stats, nil
}

// removeRange returns a copy of g without g[start : start+n].
func removeRange(g Genome, start, n int) Genome {
	out := make(Genome, 0, len(g)-n)
	out = append(out, g[:start]...)
	out = append(out, g[start+n:]...)
	return out
}
