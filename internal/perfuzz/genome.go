// Package perfuzz is a feedback-guided stateful performance fuzzer
// over the simulated SDN controller (experiment E24). The paper's
// taxonomy names the symptom classes — performance degradations,
// stalls, crash-restart storms — and the sustained campaign (E22)
// replays one fixed schedule; perfuzz *searches* schedule space for
// the sequences that hurt, SPIDER-style: a genome is a schedule of
// management/traffic/wire-fault episodes, fitness is computed from
// per-event latency distributions and supervisor probe signals, and
// mutation operators splice/duplicate/retime/reclass episodes under a
// seed-deterministic PRNG so every run is reproducible from
// (seed, budget).
//
// Any degradation-inducing genome is delta-debugged down to a minimal
// reproducer (greedy chunk removal, then single-gene removal, then
// gap zeroing — re-validating that the same degradation class still
// triggers at every step), and the corpus of (schedule → degraded?)
// pairs trains a failure-inducing classifier (internal/ml) that must
// beat random guessing on held-out schedules — the protocol of
// "Learning Failure-Inducing Models for Testing SDN".
package perfuzz

import (
	"fmt"
	"math/rand"
	"strings"
)

// Op is one episode kind a gene can encode. The set mirrors the
// sustained campaign's schedule slots (internal/faultlab): management
// events, traffic, poison inputs, and wire-level faults.
type Op uint8

// Gene operations.
const (
	// OpConfig pushes a benign VLAN config stanza.
	OpConfig Op = iota
	// OpPoisonConfig pushes a multicast.* stanza — the deterministic
	// crash poison (CORD-2470's signature).
	OpPoisonConfig
	// OpExternal calls an external service (influxdb/atomix).
	OpExternal
	// OpReboot reboots a switch — the stateful stall trigger.
	OpReboot
	// OpUnicast pumps one unicast exchange between two hosts.
	OpUnicast
	// OpBroadcast pumps a broadcast flood.
	OpBroadcast
	// OpMirrorBroadcast pumps a broadcast on the mirror (poison) VLAN.
	OpMirrorBroadcast
	// OpWireFault injects one connection-layer fault episode.
	OpWireFault

	numOps
)

func (o Op) String() string {
	switch o {
	case OpConfig:
		return "config"
	case OpPoisonConfig:
		return "poison-config"
	case OpExternal:
		return "external"
	case OpReboot:
		return "reboot"
	case OpUnicast:
		return "unicast"
	case OpBroadcast:
		return "broadcast"
	case OpMirrorBroadcast:
		return "mirror-broadcast"
	case OpWireFault:
		return "wire-fault"
	default:
		return fmt.Sprintf("op-%d", uint8(o))
	}
}

// Gene is one schedule episode. Operands A and B are raw integers the
// harness maps into valid ranges (host indices, config keys, wire
// fault kinds) at execution time, so any mutation yields a runnable
// gene. Gap is the number of benign pad events injected before the
// episode — the retime dimension: spacing dilutes the supervisor's
// sliding perf window and the latency distribution without changing
// the episode mix.
type Gene struct {
	Op  Op     `json:"op"`
	A   uint16 `json:"a"`
	B   uint16 `json:"b"`
	Gap uint8  `json:"gap"`
}

// MaxGap bounds a gene's pad run (Gap is taken modulo MaxGap+1).
const MaxGap = 7

// Genome is one candidate schedule.
type Genome []Gene

// Fingerprint is a canonical string form, used as the evaluation
// cache key and in byte-identity checks.
func (g Genome) Fingerprint() string {
	var b strings.Builder
	b.Grow(len(g) * 12)
	for _, gene := range g {
		fmt.Fprintf(&b, "%d:%d:%d:%d;", gene.Op, gene.A, gene.B, gene.Gap)
	}
	return b.String()
}

// Clone deep-copies the genome.
func (g Genome) Clone() Genome {
	out := make(Genome, len(g))
	copy(out, g)
	return out
}

// opWeights shape the random-genome episode mix: traffic-heavy (like
// the E22 campaign) with rare poison configs so degradation is not a
// giveaway — the search has to find the dense/poisoned schedules.
var opWeights = []struct {
	op Op
	w  float64
}{
	{OpConfig, 0.12},
	{OpPoisonConfig, 0.004},
	{OpExternal, 0.08},
	{OpReboot, 0.05},
	{OpUnicast, 0.376},
	{OpBroadcast, 0.20},
	{OpMirrorBroadcast, 0.12},
	{OpWireFault, 0.05},
}

// randomOp draws an op from the weighted mix.
func randomOp(rng *rand.Rand) Op {
	r := rng.Float64()
	acc := 0.0
	for _, ow := range opWeights {
		acc += ow.w
		if r < acc {
			return ow.op
		}
	}
	return OpUnicast
}

// randomGene draws one gene.
func randomGene(rng *rand.Rand) Gene {
	return Gene{
		Op:  randomOp(rng),
		A:   uint16(rng.Intn(1 << 16)),
		B:   uint16(rng.Intn(1 << 16)),
		Gap: uint8(rng.Intn(MaxGap + 1)),
	}
}

// RandomGenome draws a genome of n genes from the seeded PRNG.
func RandomGenome(rng *rand.Rand, n int) Genome {
	if n < 1 {
		n = 1
	}
	g := make(Genome, n)
	for i := range g {
		g[i] = randomGene(rng)
	}
	return g
}

// clampLen enforces the genome length bounds [1, maxLen].
func clampLen(g Genome, maxLen int) Genome {
	if len(g) == 0 {
		return Genome{Gene{Op: OpUnicast}}
	}
	if maxLen > 0 && len(g) > maxLen {
		return g[:maxLen]
	}
	return g
}

// Mutate returns a mutated copy of g, applying one of the mutation
// operators: duplicate a chunk (densify), delete a chunk (sparsify),
// retime (rewrite gaps), reclass (rewrite one gene's op), perturb
// operands, or insert a fresh gene. All randomness comes from rng.
func Mutate(rng *rand.Rand, g Genome, maxLen int) Genome {
	out := g.Clone()
	switch rng.Intn(6) {
	case 0: // duplicate a chunk — the densifying move stateful
		// (budget-driven) bugs reward.
		if len(out) > 0 {
			start := rng.Intn(len(out))
			size := 1 + rng.Intn(maxChunk(len(out)))
			if start+size > len(out) {
				size = len(out) - start
			}
			chunk := append(Genome{}, out[start:start+size]...)
			at := rng.Intn(len(out) + 1)
			out = append(out[:at], append(chunk, out[at:].Clone()...)...)
		}
	case 1: // delete a chunk.
		if len(out) > 1 {
			start := rng.Intn(len(out))
			size := 1 + rng.Intn(maxChunk(len(out)))
			if start+size > len(out) {
				size = len(out) - start
			}
			out = append(out[:start], out[start+size:]...)
		}
	case 2: // retime: rewrite the gaps of a random span.
		if len(out) > 0 {
			start := rng.Intn(len(out))
			size := 1 + rng.Intn(maxChunk(len(out)))
			for i := start; i < len(out) && i < start+size; i++ {
				out[i].Gap = uint8(rng.Intn(MaxGap + 1))
			}
		}
	case 3: // reclass: rewrite one gene's op (operands kept — they are
		// reinterpreted under the new op).
		if len(out) > 0 {
			out[rng.Intn(len(out))].Op = randomOp(rng)
		}
	case 4: // perturb operands of one gene.
		if len(out) > 0 {
			i := rng.Intn(len(out))
			out[i].A = uint16(rng.Intn(1 << 16))
			out[i].B = uint16(rng.Intn(1 << 16))
		}
	case 5: // insert a fresh gene.
		at := rng.Intn(len(out) + 1)
		out = append(out[:at], append(Genome{randomGene(rng)}, out[at:].Clone()...)...)
	}
	return clampLen(out, maxLen)
}

// maxChunk bounds mutation chunk sizes to a quarter of the genome.
func maxChunk(n int) int {
	c := n / 4
	if c < 1 {
		c = 1
	}
	return c
}

// Splice crosses two parents at one cut point each — the genetic
// recombination move that joins a degrading prefix with a degrading
// suffix.
func Splice(rng *rand.Rand, a, b Genome, maxLen int) Genome {
	if len(a) == 0 {
		return b.Clone()
	}
	if len(b) == 0 {
		return a.Clone()
	}
	ca := rng.Intn(len(a) + 1)
	cb := rng.Intn(len(b) + 1)
	out := make(Genome, 0, ca+len(b)-cb)
	out = append(out, a[:ca]...)
	out = append(out, b[cb:]...)
	return clampLen(out, maxLen)
}
