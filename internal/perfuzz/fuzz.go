package perfuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"sdnbugs/internal/metrics"
)

// Config parameterizes one fuzzing run. Every run is reproducible
// from (Seed, Generations, Population, GenomeLen): identical configs
// yield byte-identical reports.
type Config struct {
	Seed int64
	// Generations is the number of breeding rounds (default 6).
	Generations int
	// Population is the genome pool size per generation (default 8).
	Population int
	// GenomeLen is the initial random genome length (default 40).
	GenomeLen int
	// MaxGenomeLen caps genome growth under duplication/splicing
	// (default 96).
	MaxGenomeLen int
	// TopK is how many worst genomes the report keeps (default 3).
	TopK int
	// ShrinkBudget caps delta-debugging evaluations per reproducer
	// (default 400).
	ShrinkBudget int
	// Registry, when set, receives fuzzing observability: generations,
	// evals, cache hits, degraded finds, shrink steps, fitness and
	// tail-latency histograms — plus the per-eval supervisor's
	// supervise_* metrics.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Generations <= 0 {
		c.Generations = 6
	}
	if c.Population <= 0 {
		c.Population = 8
	}
	if c.GenomeLen <= 0 {
		c.GenomeLen = 40
	}
	if c.MaxGenomeLen <= 0 {
		c.MaxGenomeLen = 96
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 400
	}
	return c
}

// Record is one evaluated schedule — a (genome → outcome) corpus
// entry the failure-inducing learner trains on.
type Record struct {
	Genome Genome `json:"genome"`
	Eval   Eval   `json:"eval"`
	// Source is "guided" or "random".
	Source string `json:"source"`
}

// ClassCount is one degradation class's tally in a search summary.
type ClassCount struct {
	Class string `json:"class"`
	Count int    `json:"count"`
}

// SearchStats summarizes one search mode (guided vs random) at equal
// evaluation budget.
type SearchStats struct {
	Evals       int          `json:"evals"`
	Distinct    int          `json:"distinct_genomes"`
	Degraded    int          `json:"degraded_genomes"`
	BestFitness float64      `json:"best_fitness"`
	Classes     []ClassCount `json:"classes,omitempty"`
}

// ScoredGenome is one ranked schedule in the report.
type ScoredGenome struct {
	Rank   int    `json:"rank"`
	Len    int    `json:"len"`
	Eval   Eval   `json:"eval"`
	Genome Genome `json:"genome"`
}

// Reproducer is a degradation-inducing genome delta-debugged to a
// minimal schedule that still triggers the same degradation class.
type Reproducer struct {
	Class         string  `json:"class"`
	ParentLen     int     `json:"parent_len"`
	ParentFitness float64 `json:"parent_fitness"`
	Len           int     `json:"len"`
	Eval          Eval    `json:"eval"`
	ShrinkSteps   int     `json:"shrink_steps"`
	ShrinkEvals   int     `json:"shrink_evals"`
	Genome        Genome  `json:"genome"`
}

// Report is the machine-readable outcome of one fuzzing run. Its
// JSON encoding is byte-identical across runs with the same Config
// (modulo Registry, which is observational only).
type Report struct {
	Seed         int64 `json:"seed"`
	Generations  int   `json:"generations"`
	Population   int   `json:"population"`
	GenomeLen    int   `json:"genome_len"`
	MaxGenomeLen int   `json:"max_genome_len"`

	BaselineMean float64 `json:"baseline_mean_ticks"`

	BestFitnessPerGen []float64 `json:"best_fitness_per_gen"`

	Guided SearchStats `json:"guided"`
	Random SearchStats `json:"random"`

	Worst       []ScoredGenome `json:"worst"`
	Reproducers []Reproducer   `json:"reproducers"`

	Learner LearnerReport `json:"learner"`

	CorpusSize  int `json:"corpus_size"`
	TotalEvals  int `json:"total_evals"`
	UniqueEvals int `json:"unique_evals"`
}

// JSON renders the report with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Fuzz runs the feedback-guided search, the equal-budget random
// baseline, reproducer shrinking, and failure-model learning.
func Fuzz(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	h := NewHarness(cfg.Seed, cfg.Registry)
	rep := &Report{
		Seed:         cfg.Seed,
		Generations:  cfg.Generations,
		Population:   cfg.Population,
		GenomeLen:    cfg.GenomeLen,
		MaxGenomeLen: cfg.MaxGenomeLen,
	}

	// --- Guided search: elitist genetic loop. ---
	rng := rand.New(rand.NewSource(cfg.Seed*9176 + 11))
	pop := make([]Genome, cfg.Population)
	for i := range pop {
		pop[i] = RandomGenome(rng, cfg.GenomeLen)
	}
	var guided []Record
	seen := make(map[string]bool)
	record := func(list *[]Record, g Genome, e Eval, source string) {
		key := g.Fingerprint()
		if seen[key] {
			return
		}
		seen[key] = true
		*list = append(*list, Record{Genome: g, Eval: e, Source: source})
	}

	elite := cfg.Population / 4
	if elite < 2 {
		elite = 2
	}
	for gen := 0; gen <= cfg.Generations; gen++ {
		if cfg.Registry != nil {
			cfg.Registry.Counter("perfuzz_generations_total").Inc()
		}
		evals := make([]Eval, len(pop))
		for i, g := range pop {
			e, err := h.Eval(g)
			if err != nil {
				return nil, err
			}
			evals[i] = e
			record(&guided, g, e, "guided")
		}
		order := make([]int, len(pop))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return evals[order[a]].Fitness > evals[order[b]].Fitness
		})
		rep.BestFitnessPerGen = append(rep.BestFitnessPerGen, evals[order[0]].Fitness)
		if gen == cfg.Generations {
			break
		}
		next := make([]Genome, 0, cfg.Population)
		for i := 0; i < elite; i++ {
			next = append(next, pop[order[i]])
		}
		for len(next) < cfg.Population {
			if rng.Float64() < 0.3 && elite >= 2 {
				a := pop[order[rng.Intn(elite)]]
				b := pop[order[rng.Intn(elite)]]
				next = append(next, Splice(rng, a, b, cfg.MaxGenomeLen))
			} else {
				next = append(next, Mutate(rng, pop[order[rng.Intn(elite)]], cfg.MaxGenomeLen))
			}
		}
		pop = next
	}
	guidedEvals := h.Evals

	// --- Random baseline at the same evaluation budget. ---
	rngRand := rand.New(rand.NewSource(cfg.Seed*26417 + 3))
	var random []Record
	for i := 0; i < guidedEvals; i++ {
		g := RandomGenome(rngRand, cfg.GenomeLen)
		e, err := h.Eval(g)
		if err != nil {
			return nil, err
		}
		record(&random, g, e, "random")
	}

	rep.Guided = summarize(guided, guidedEvals)
	rep.Random = summarize(random, guidedEvals)

	// --- Worst genomes (guided, by fitness). ---
	ranked := append([]Record(nil), guided...)
	sort.SliceStable(ranked, func(a, b int) bool {
		return ranked[a].Eval.Fitness > ranked[b].Eval.Fitness
	})
	for i := 0; i < len(ranked) && i < cfg.TopK; i++ {
		rep.Worst = append(rep.Worst, ScoredGenome{
			Rank: i + 1, Len: len(ranked[i].Genome),
			Eval: ranked[i].Eval, Genome: ranked[i].Genome,
		})
	}

	// --- Shrink the best degraded genome of every observed class. ---
	bestPerClass := make(map[string]Record)
	var classOrder []string
	for _, r := range ranked { // fitness order → first hit per class wins
		if !r.Eval.Degraded() {
			continue
		}
		if _, ok := bestPerClass[r.Eval.Class]; !ok {
			bestPerClass[r.Eval.Class] = r
			classOrder = append(classOrder, r.Eval.Class)
		}
	}
	for _, class := range classOrder {
		parent := bestPerClass[class]
		shrunk, sEval, stats, err := Shrink(parent.Genome, class, h, cfg.ShrinkBudget)
		if err != nil {
			return nil, err
		}
		if cfg.Registry != nil {
			cfg.Registry.Counter("perfuzz_shrink_steps_total").Add(uint64(stats.Steps))
			cfg.Registry.Counter("perfuzz_shrink_evals_total").Add(uint64(stats.Evals))
		}
		rep.Reproducers = append(rep.Reproducers, Reproducer{
			Class:         class,
			ParentLen:     len(parent.Genome),
			ParentFitness: parent.Eval.Fitness,
			Len:           len(shrunk),
			Eval:          sEval,
			ShrinkSteps:   stats.Steps,
			ShrinkEvals:   stats.Evals,
			Genome:        shrunk,
		})
	}

	// --- Learn the failure-inducing model over the whole corpus. ---
	corpus := append(append([]Record(nil), guided...), random...)
	learner, err := Learn(corpus, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rep.Learner = learner

	rep.CorpusSize = len(corpus)
	rep.TotalEvals = h.Evals
	rep.UniqueEvals = h.UniqueEvals
	if len(guided) > 0 {
		rep.BaselineMean = guided[0].Eval.BaselineMean
	}
	return rep, nil
}

// summarize reduces a record list to search statistics with a
// deterministic class ordering.
func summarize(records []Record, evals int) SearchStats {
	s := SearchStats{Evals: evals, Distinct: len(records)}
	counts := make(map[string]int)
	for _, r := range records {
		if r.Eval.Fitness > s.BestFitness {
			s.BestFitness = r.Eval.Fitness
		}
		if r.Eval.Degraded() {
			s.Degraded++
			counts[r.Eval.Class]++
		}
	}
	classes := make([]string, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		s.Classes = append(s.Classes, ClassCount{Class: c, Count: counts[c]})
	}
	return s
}

// String renders a short human summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"perfuzz seed=%d gens=%d pop=%d: guided %d/%d degraded (best fitness %.2f) vs random %d/%d (best %.2f); %d reproducers; learner %.3f vs majority %.3f",
		r.Seed, r.Generations, r.Population,
		r.Guided.Degraded, r.Guided.Distinct, r.Guided.BestFitness,
		r.Random.Degraded, r.Random.Distinct, r.Random.BestFitness,
		len(r.Reproducers), r.Learner.Accuracy, r.Learner.MajorityAccuracy)
}
