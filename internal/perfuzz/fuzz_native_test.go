package perfuzz

import (
	"math/rand"
	"testing"
)

// FuzzMutate drives the mutation and splice operators from arbitrary
// seeds and verifies the genome invariants the harness relies on:
// length stays in [1, maxLen] and every op decodes to a known
// episode. Registered in `make fuzz` alongside the codec targets.
func FuzzMutate(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(20))
	f.Add(int64(-7), uint8(200), uint8(1))
	f.Add(int64(1<<40), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, steps, length uint8) {
		const maxLen = 96
		rng := rand.New(rand.NewSource(seed))
		g := RandomGenome(rng, int(length)%maxLen)
		for i := 0; i < int(steps)%64+1; i++ {
			if i%4 == 3 {
				g = Splice(rng, g, RandomGenome(rng, 1+rng.Intn(40)), maxLen)
			} else {
				g = Mutate(rng, g, maxLen)
			}
			if len(g) < 1 || len(g) > maxLen {
				t.Fatalf("step %d: length %d outside [1,%d]", i, len(g), maxLen)
			}
			for j, gene := range g {
				if gene.Op >= numOps {
					t.Fatalf("step %d: gene %d has invalid op %d", i, j, gene.Op)
				}
			}
		}
		// The mutated genome must also survive featurization.
		if got := len(Featurize(g)); got != numFeatures {
			t.Fatalf("feature width %d, want %d", got, numFeatures)
		}
	})
}
