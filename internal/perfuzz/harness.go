package perfuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/metrics"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/supervise"
	"sdnbugs/internal/taxonomy"
)

// Degradation classes the harness distinguishes, in detection
// priority order. An empty class means the schedule ran healthy.
const (
	ClassStall   = "stall"
	ClassPerf    = "perf-regression"
	ClassRestart = "crash-restart"
)

// FaultSuite returns the armed bug set the fuzzer searches against:
// *stateful* performance bugs whose activation needs the right event
// sequence, not a single poison input — the class SPIDER-style
// feedback fuzzing finds and random replay misses.
//
//   - queue-amplification: after trafficBudget network events in one
//     incarnation the event path degrades (+400 ticks/event) — only
//     traffic-dense schedules trip the supervisor's perf probe.
//   - config-churn-slowdown: configBudget config pushes saturate the
//     config pipeline; further pushes crawl.
//   - reboot-storm-stall: the rebootBudget'th device reboot in one
//     incarnation stalls the core (VOL-549's hang, made cumulative).
//   - poison-config-crash: CORD-2470's deterministic multicast crash,
//     for the crash-restart class.
func FaultSuite(seed int64) []*faultlab.Fault {
	specs := []faultlab.Spec{
		{
			Name:  "perfuzz-queue-amplification",
			Cause: taxonomy.CauseMemory, Trigger: taxonomy.TriggerNetworkEvent,
			Symptom: taxonomy.SymptomPerformance, Deterministic: true,
			MemoryBudget: trafficBudget,
		},
		{
			Name:  "perfuzz-config-churn-slowdown",
			Cause: taxonomy.CauseLoad, Trigger: taxonomy.TriggerConfiguration,
			Symptom: taxonomy.SymptomPerformance, Deterministic: true,
			MemoryBudget: configBudget,
		},
		{
			Name:  "perfuzz-reboot-storm-stall",
			Cause: taxonomy.CauseMemory, Trigger: taxonomy.TriggerHardwareReboot,
			Symptom: taxonomy.SymptomByzantine, Deterministic: true,
			MemoryBudget: rebootBudget,
		},
		{
			Name:  "perfuzz-poison-config-crash",
			Cause: taxonomy.CauseHumanMisconfig, Trigger: taxonomy.TriggerConfiguration,
			Symptom: taxonomy.SymptomFailStop, Deterministic: true,
		},
	}
	out := make([]*faultlab.Fault, len(specs))
	for i, s := range specs {
		out[i] = faultlab.NewFault(s, seed+int64(i)*31)
	}
	return out
}

// Stateful-fault budgets: matching events per controller incarnation
// before the bug manifests. Tuned so an average random schedule stays
// just under the thresholds — degradation requires the dense or
// poisoned schedules the search converges on.
const (
	trafficBudget = 80
	configBudget  = 12
	rebootBudget  = 5
)

// Eval is the measured outcome of running one genome: supervisor
// probe signals plus the per-event latency distribution, collapsed
// into a scalar fitness and a degradation class.
type Eval struct {
	Fitness float64 `json:"fitness"`
	// Class is the degradation class ("" = healthy).
	Class string `json:"class,omitempty"`

	Offered   int `json:"offered"`
	Processed int `json:"processed"`
	Shed      int `json:"shed"`

	Stalls          int `json:"stalls"`
	PerfRegressions int `json:"perf_regressions"`
	FailStops       int `json:"fail_stops"`
	Restarts        int `json:"restarts"`
	Degradations    int `json:"degradations"`
	WireErrors      int `json:"wire_errors"`

	// Latency distribution over offered events, in logical ticks
	// (heal time included: that is the latency the event experienced).
	MeanTicks float64 `json:"mean_ticks"`
	P50Ticks  float64 `json:"p50_ticks"`
	P95Ticks  float64 `json:"p95_ticks"`
	P99Ticks  float64 `json:"p99_ticks"`

	BaselineMean float64 `json:"baseline_mean"`
}

// Degraded reports whether the schedule induced any degradation.
func (e Eval) Degraded() bool { return e.Class != "" }

// fitness collapses probe signals and the latency tail into one
// scalar. Probe firings dominate; the continuous latency terms give
// the search a gradient between threshold crossings.
func (e *Eval) computeFitness() {
	base := e.BaselineMean
	if base <= 0 {
		base = 1
	}
	e.Fitness = 8*float64(e.Stalls) +
		6*float64(e.PerfRegressions) +
		4*float64(e.FailStops) +
		float64(e.Restarts) +
		e.MeanTicks/base +
		e.P99Ticks/base/10
}

// classify buckets the run by its dominant symptom, priority-ordered
// so the class is stable under shrinking.
func (e *Eval) classify() {
	switch {
	case e.Stalls > 0:
		e.Class = ClassStall
	case e.PerfRegressions > 0:
		e.Class = ClassPerf
	case e.FailStops > 0:
		e.Class = ClassRestart
	default:
		e.Class = ""
	}
}

// Harness evaluates genomes against a fresh supervised controller
// per run. Evaluation is a pure function of (harness seed, genome):
// each run builds its own lab and PRNG streams, so the same genome
// always produces the same Eval — the property the shrinker and the
// byte-identity checks rely on. Results are memoized by genome
// fingerprint.
type Harness struct {
	Seed int64

	// Registry, when set, receives fuzzing counters/histograms
	// (evals, cache hits, degradations found, fitness, tail latency).
	Registry *metrics.Registry

	// Suite, when set, overrides the armed fault set (default
	// FaultSuite) — the repair loop evaluates reproducers against the
	// campaign's full fault matrix instead of the fuzzer's.
	Suite func(seed int64) []*faultlab.Fault
	// Program, when set, interposes a flow-rule program ahead of the
	// supervisor's filter, mirroring the campaign session: a candidate
	// repair is replayed against the very reproducer that triggered
	// the shed. Clamp counters reset on restart and at the start of
	// every run. The memo cache keys on the genome alone, so use a
	// fresh harness per program.
	Program *sdn.Program

	cache map[string]Eval
	// Evals counts logical evaluations (cache hits included);
	// UniqueEvals counts lab runs.
	Evals       int
	UniqueEvals int
}

// NewHarness returns a memoizing evaluator for the seed.
func NewHarness(seed int64, reg *metrics.Registry) *Harness {
	return &Harness{Seed: seed, Registry: reg, cache: make(map[string]Eval)}
}

// checkpointEvery is the supervised checkpoint cadence during
// evaluation runs.
const checkpointEvery = 32

// Eval runs one genome under supervision and scores it.
func (h *Harness) Eval(g Genome) (Eval, error) {
	h.Evals++
	h.count("perfuzz_evals_total")
	key := g.Fingerprint()
	if e, ok := h.cache[key]; ok {
		h.count("perfuzz_eval_cache_hits_total")
		return e, nil
	}
	e, err := h.run(g)
	if err != nil {
		return Eval{}, err
	}
	h.UniqueEvals++
	h.cache[key] = e
	if e.Degraded() {
		h.count("perfuzz_degraded_evals_total")
	}
	h.observe("perfuzz_fitness", e.Fitness)
	h.observe("perfuzz_eval_p99_ticks", e.P99Ticks)
	return e, nil
}

// run executes the genome on a fresh lab.
func (h *Harness) run(g Genome) (Eval, error) {
	suite := h.Suite
	if suite == nil {
		suite = FaultSuite
	}
	lab, err := faultlab.NewMultiLab(suite(h.Seed))
	if err != nil {
		return Eval{}, fmt.Errorf("perfuzz: lab: %w", err)
	}
	h.Program.NewIncarnation()
	hosts := lab.C.Net.Hosts()
	dpids := lab.C.Net.Switches()
	if len(hosts) < 2 || len(dpids) == 0 {
		return Eval{}, fmt.Errorf("perfuzz: topology too small (%d hosts, %d switches)", len(hosts), len(dpids))
	}
	sup := supervise.New(lab.C, supervise.Config{
		BaselineMeanCost: lab.BaselineMeanCost(),
		Backoff:          resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 64 * time.Millisecond},
		Budget:           resilience.NewBudget(64, 0.25),
		CheckpointEvery:  checkpointEvery,
		Classify:         faultlab.ClassifyEvent,
		OnRestart: func() {
			lab.NewIncarnations()
			h.Program.NewIncarnation()
		},
		Metrics: h.Registry,
	})
	lab.Filter = sup.Filter

	// Per-event latency: the delta of the supervisor's monotonic
	// uptime+recovery tick total around each offered event, so heal
	// time (restarts, replays) is charged to the event that caused it.
	var costs []int
	elapsed := func() int { return sup.Metrics.UptimeTicks + sup.Metrics.RecoveryTicks }
	offer := func(ev sdn.Event) {
		if h.Program != nil {
			out, verdict := h.Program.Apply(ev)
			if verdict == sdn.VerdictDropped {
				return
			}
			ev = out
		}
		if rewritten, keep := lab.Filter(ev); keep {
			before := elapsed()
			sup.Submit(rewritten)
			costs = append(costs, elapsed()-before)
		}
	}
	wireRng := rand.New(rand.NewSource(h.Seed*52361 + 7))

	for _, gene := range g {
		// Retime pads: benign external telemetry calls that space the
		// episode out in logical time.
		for p := 0; p < int(gene.Gap%(MaxGap+1)); p++ {
			offer(sdn.Event{Kind: sdn.EventExternalCall, Service: "influxdb"})
		}
		switch gene.Op {
		case OpConfig:
			offer(sdn.Event{Kind: sdn.EventConfig,
				Key:   fmt.Sprintf("vlan.zone%d", int(gene.A)%40),
				Value: fmt.Sprintf("%d", 100+int(gene.B)%3000)})
		case OpPoisonConfig:
			offer(sdn.Event{Kind: sdn.EventConfig,
				Key: fmt.Sprintf("multicast.group%d", int(gene.A)%8), Value: "225"})
		case OpExternal:
			svc := "influxdb"
			if gene.A%2 == 1 {
				svc = "atomix"
			}
			offer(sdn.Event{Kind: sdn.EventExternalCall, Service: svc})
		case OpReboot:
			offer(sdn.Event{Kind: sdn.EventHardwareReboot,
				DPID: dpids[int(gene.A)%len(dpids)]})
		case OpUnicast:
			src := hosts[int(gene.A)%len(hosts)]
			dst := hosts[(int(gene.A)+1+int(gene.B)%(len(hosts)-1))%len(hosts)]
			pump(lab.C.Net, src, sdn.Packet{EthDst: dst, EthType: 0x0800}, offer)
		case OpBroadcast:
			pump(lab.C.Net, hosts[int(gene.A)%len(hosts)],
				sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}, offer)
		case OpMirrorBroadcast:
			pump(lab.C.Net, hosts[int(gene.A)%len(hosts)],
				sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: faultlab.PoisonVLAN}, offer)
		case OpWireFault:
			kind := faultlab.WireFaultKind(int(gene.A) % faultlab.NumWireFaultKinds())
			ferr, werr := faultlab.WireEpisode(kind, wireRng)
			if werr != nil {
				return Eval{}, fmt.Errorf("perfuzz: wire episode: %w", werr)
			}
			if ferr != nil {
				sup.WireError(ferr)
			}
		}
	}

	m := sup.Metrics
	e := Eval{
		Offered:         m.EventsOffered,
		Processed:       m.EventsProcessed,
		Shed:            m.EventsShed,
		Stalls:          m.Stalls,
		PerfRegressions: m.PerfRegressions,
		FailStops:       m.FailStops,
		Restarts:        m.Restarts,
		Degradations:    m.Degradations,
		WireErrors:      m.WireErrors,
		BaselineMean:    lab.BaselineMeanCost(),
	}
	e.MeanTicks, e.P50Ticks, e.P95Ticks, e.P99Ticks = latencySummary(costs)
	e.classify()
	e.computeFitness()
	return e, nil
}

// pump injects one packet and routes the resulting punts through
// offer (mirrors the campaign's traffic pump). Events point into the
// drained packet-in slice — ownership transfers at DrainPacketIns, so
// no per-punt heap copy is needed and offer-order is unchanged.
func pump(net *sdn.Network, src uint64, p sdn.Packet, offer func(sdn.Event)) {
	net.DrainDeliveries()
	if _, err := net.InjectFromHost(src, p); err != nil {
		return
	}
	for round := 0; round < 32; round++ {
		pis := net.DrainPacketIns()
		if len(pis) == 0 {
			break
		}
		for i := range pis {
			offer(sdn.Event{Kind: sdn.EventNetwork, Msg: &pis[i]})
		}
	}
	net.DrainDeliveries()
}

// latencySummary reduces per-event tick costs to mean and quantiles.
func latencySummary(costs []int) (mean, p50, p95, p99 float64) {
	if len(costs) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]int(nil), costs...)
	sort.Ints(sorted)
	sum := 0
	for _, c := range sorted {
		sum += c
	}
	q := func(f float64) float64 {
		i := int(f*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i])
	}
	return float64(sum) / float64(len(sorted)), q(0.50), q(0.95), q(0.99)
}

// count increments a harness counter when a registry is attached.
func (h *Harness) count(name string) {
	if h.Registry != nil {
		h.Registry.Counter(name).Inc()
	}
}

// observe records a harness histogram sample when a registry is
// attached.
func (h *Harness) observe(name string, v float64) {
	if h.Registry != nil {
		h.Registry.Histogram(name).Observe(v)
	}
}
