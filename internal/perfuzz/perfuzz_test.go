package perfuzz

import (
	"bytes"
	"math/rand"
	"testing"

	"sdnbugs/internal/metrics"
)

// smallCfg keeps test runs fast while still exercising every stage.
func smallCfg(seed int64) Config {
	return Config{Seed: seed, Generations: 4, Population: 6, GenomeLen: 30}
}

// TestFuzzDeterministic: identical (seed, budget) must yield
// byte-identical reports — the property the shrinker and the E24
// byte-identity check build on.
func TestFuzzDeterministic(t *testing.T) {
	a, err := Fuzz(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fuzz(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same config produced different reports (%d vs %d bytes)", len(ja), len(jb))
	}
	if c, err := Fuzz(smallCfg(2)); err != nil {
		t.Fatal(err)
	} else if jc, err := c.JSON(); err != nil {
		t.Fatal(err)
	} else if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestFuzzFindsAndShrinks: at the suite seed the guided search must
// find degradation, and every reproducer must trigger the same class
// as its parent while never being longer (the shrink property, run
// over a couple of seeds).
func TestFuzzFindsAndShrinks(t *testing.T) {
	for _, seed := range []int64{1, 3} {
		rep, err := Fuzz(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Guided.Degraded < 1 {
			t.Fatalf("seed %d: guided search found no degradation", seed)
		}
		if len(rep.Reproducers) == 0 {
			t.Fatalf("seed %d: no reproducers", seed)
		}
		for _, rp := range rep.Reproducers {
			if rp.Eval.Class != rp.Class {
				t.Errorf("seed %d: reproducer class drifted: want %q, got %q", seed, rp.Class, rp.Eval.Class)
			}
			if !rp.Eval.Degraded() {
				t.Errorf("seed %d: reproducer for %q no longer degrades", seed, rp.Class)
			}
			if rp.Len > rp.ParentLen {
				t.Errorf("seed %d: reproducer grew: %d > parent %d", seed, rp.Len, rp.ParentLen)
			}
			if rp.Len != len(rp.Genome) {
				t.Errorf("seed %d: reproducer Len %d != genome length %d", seed, rp.Len, len(rp.Genome))
			}
		}
	}
}

// TestShrinkRevalidatesEachStep: shrinking re-runs the harness after
// every removal, so the returned genome's own evaluation reports the
// requested class even when the parent barely triggers it.
func TestShrinkRevalidatesEachStep(t *testing.T) {
	h := NewHarness(1, nil)
	rng := rand.New(rand.NewSource(7))
	var parent Genome
	var class string
	for i := 0; i < 200 && class == ""; i++ {
		g := RandomGenome(rng, 40)
		e, err := h.Eval(g)
		if err != nil {
			t.Fatal(err)
		}
		if e.Degraded() {
			parent, class = g, e.Class
		}
	}
	if class == "" {
		t.Fatal("no degrading genome in 200 random draws")
	}
	shrunk, eval, stats, err := Shrink(parent, class, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Class != class {
		t.Fatalf("shrunk class %q != parent class %q", eval.Class, class)
	}
	if len(shrunk) > len(parent) {
		t.Fatalf("shrunk genome longer than parent: %d > %d", len(shrunk), len(parent))
	}
	if stats.Evals == 0 {
		t.Fatal("shrink reported zero evaluations")
	}
	// Re-evaluating through a fresh harness must agree: eval is a
	// pure function of (seed, genome).
	again, err := NewHarness(1, nil).Eval(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if again.Class != class {
		t.Fatalf("fresh-harness replay class %q != %q", again.Class, class)
	}
}

// TestMutateInvariants: every mutation and splice keeps the genome
// runnable — non-empty, within the length cap, ops in range.
func TestMutateInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const maxLen = 96
	g := RandomGenome(rng, 40)
	for i := 0; i < 2000; i++ {
		if i%3 == 0 {
			g = Splice(rng, g, RandomGenome(rng, 1+rng.Intn(60)), maxLen)
		} else {
			g = Mutate(rng, g, maxLen)
		}
		if len(g) < 1 || len(g) > maxLen {
			t.Fatalf("step %d: length %d outside [1,%d]", i, len(g), maxLen)
		}
		for _, gene := range g {
			if gene.Op >= numOps {
				t.Fatalf("step %d: invalid op %d", i, gene.Op)
			}
		}
	}
}

// TestHarnessMemoizes: the cache answers repeat genomes without
// re-running the lab, and the metrics registry sees both.
func TestHarnessMemoizes(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHarness(1, reg)
	g := RandomGenome(rand.New(rand.NewSource(5)), 20)
	e1, err := h.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := h.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("memoized eval differs")
	}
	if h.Evals != 2 || h.UniqueEvals != 1 {
		t.Fatalf("want 2 evals / 1 unique, got %d / %d", h.Evals, h.UniqueEvals)
	}
	if got := reg.Counter("perfuzz_evals_total").Value(); got != 2 {
		t.Fatalf("perfuzz_evals_total = %d, want 2", got)
	}
	if got := reg.Counter("perfuzz_eval_cache_hits_total").Value(); got != 1 {
		t.Fatalf("perfuzz_eval_cache_hits_total = %d, want 1", got)
	}
}

// TestFeaturizeWidth: the feature vector is fixed-width and reflects
// the schedule's op mix.
func TestFeaturizeWidth(t *testing.T) {
	g := Genome{
		{Op: OpUnicast, Gap: 2},
		{Op: OpUnicast},
		{Op: OpConfig, Gap: 1},
		{Op: OpBroadcast},
	}
	f := Featurize(g)
	if len(f) != numFeatures {
		t.Fatalf("feature width %d, want %d", len(f), numFeatures)
	}
	if f[0] != 4 || f[1] != 3 {
		t.Fatalf("length/gap features = %v/%v, want 4/3", f[0], f[1])
	}
	if f[2+int(OpUnicast)] != 2 {
		t.Fatalf("unicast count = %v, want 2", f[2+int(OpUnicast)])
	}
	// Longest traffic run: unicast, unicast — then config breaks it —
	// broadcast. Best is 2.
	if f[2+int(numOps)] != 2 {
		t.Fatalf("max traffic run = %v, want 2", f[2+int(numOps)])
	}
}
