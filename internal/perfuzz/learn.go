package perfuzz

// Failure-inducing schedule learner: the corpus of (genome →
// degraded?) pairs the fuzzer accumulates trains a decision tree that
// predicts whether an unseen schedule will degrade the controller.
// The paper's bug-study pipeline classifies bug reports post hoc; the
// learned failure model turns the same scaffolding predictive —
// schedules can be triaged before they are ever replayed. The model
// must beat both the majority-class baseline and the closed-form
// accuracy of random guessing at the test base rate, otherwise the
// fuzzer's corpus carries no learnable signal and the run is flagged.

import (
	"errors"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
	"sdnbugs/internal/ml/dtree"
)

// ErrTinyCorpus reports a corpus too small to split into train/test.
var ErrTinyCorpus = errors.New("perfuzz: corpus too small to learn from")

// numFeatures is the width of the Featurize vector.
const numFeatures = int(numOps) + 4

// Featurize maps a schedule onto a fixed-width feature vector:
// length, total idle gap, per-op counts, the longest consecutive run
// of traffic ops (the queue-amplification signature), and the traffic
// fraction.
func Featurize(g Genome) []float64 {
	f := make([]float64, numFeatures)
	f[0] = float64(len(g))
	run, bestRun, traffic := 0, 0, 0
	for _, gene := range g {
		f[1] += float64(gene.Gap)
		if int(gene.Op) < int(numOps) {
			f[2+int(gene.Op)]++
		}
		switch gene.Op {
		case OpUnicast, OpBroadcast, OpMirrorBroadcast:
			traffic++
			run++
			if run > bestRun {
				bestRun = run
			}
		default:
			run = 0
		}
	}
	f[2+int(numOps)] = float64(bestRun)
	if len(g) > 0 {
		f[3+int(numOps)] = float64(traffic) / float64(len(g))
	}
	return f
}

// LearnerReport summarizes the failure-model evaluation on the
// held-out third of the corpus.
type LearnerReport struct {
	CorpusSize int `json:"corpus_size"`
	TrainSize  int `json:"train_size"`
	TestSize   int `json:"test_size"`
	// Accuracy is the decision tree's held-out accuracy.
	Accuracy float64 `json:"accuracy"`
	// MajorityAccuracy always predicts the test set's majority label.
	MajorityAccuracy float64 `json:"majority_accuracy"`
	// RandomGuessAccuracy is the expected accuracy of guessing labels
	// at the test base rate p: p^2 + (1-p)^2.
	RandomGuessAccuracy float64 `json:"random_guess_accuracy"`
	// Beats reports whether the model beats both baselines.
	Beats bool `json:"beats_baselines"`
}

// FailureModel is a failure-inducing predictor trained on the whole
// corpus (no held-out split — held-out scoring is Learn's job). The
// repair loop uses it to rank candidate patches: project each patch
// onto the shed's reproducer schedule, predict whether the projected
// schedule still degrades, and validate the likely-healthy candidates
// first, so the expensive full-campaign validations are spent where
// the model expects success.
type FailureModel struct {
	tree *dtree.Tree
}

// TrainFailureModel fits a decision tree on the full corpus.
func TrainFailureModel(corpus []Record) (*FailureModel, error) {
	if len(corpus) < 2 {
		return nil, ErrTinyCorpus
	}
	x := mathx.NewMatrix(len(corpus), numFeatures)
	y := make([]int, len(corpus))
	for i, r := range corpus {
		copy(x.Row(i), Featurize(r.Genome))
		if r.Eval.Degraded() {
			y[i] = 1
		}
	}
	t := &dtree.Tree{MaxDepth: 8, MinLeaf: 1}
	if err := t.Fit(x, y); err != nil {
		return nil, err
	}
	return &FailureModel{tree: t}, nil
}

// PredictDegraded reports whether the model expects the schedule to
// degrade the controller.
func (m *FailureModel) PredictDegraded(g Genome) bool {
	if m == nil || m.tree == nil {
		return false
	}
	cls, err := m.tree.Predict(Featurize(g))
	return err == nil && cls == 1
}

// Learn featurizes the corpus, trains a depth-bounded decision tree
// on 2/3 of it (the paper's split protocol), and scores it on the
// held-out third against the majority and random-guess baselines.
func Learn(corpus []Record, seed int64) (LearnerReport, error) {
	if len(corpus) < 6 {
		return LearnerReport{}, ErrTinyCorpus
	}
	x := mathx.NewMatrix(len(corpus), numFeatures)
	y := make([]int, len(corpus))
	for i, r := range corpus {
		copy(x.Row(i), Featurize(r.Genome))
		if r.Eval.Degraded() {
			y[i] = 1
		}
	}
	d, err := ml.NewDataset(x, y)
	if err != nil {
		return LearnerReport{}, err
	}
	train, test, err := ml.TrainTestSplit(d, 2.0/3, seed)
	if err != nil {
		return LearnerReport{}, err
	}
	acc, err := ml.EvaluateSplit(&dtree.Tree{MaxDepth: 8, MinLeaf: 1}, train, test)
	if err != nil {
		return LearnerReport{}, err
	}

	pos := 0
	for _, v := range test.Y {
		pos += v
	}
	p := float64(pos) / float64(test.Len())
	majority := p
	if 1-p > majority {
		majority = 1 - p
	}
	rep := LearnerReport{
		CorpusSize:          len(corpus),
		TrainSize:           train.Len(),
		TestSize:            test.Len(),
		Accuracy:            acc,
		MajorityAccuracy:    majority,
		RandomGuessAccuracy: p*p + (1-p)*(1-p),
		Beats:               acc > majority && acc > p*p+(1-p)*(1-p),
	}
	return rep, nil
}
