package ofconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// streamOf encodes msgs into one contiguous byte stream.
func streamOf(t *testing.T, msgs []openflow.Message) []byte {
	t.Helper()
	var buf []byte
	for i, m := range msgs {
		var err error
		buf, err = openflow.AppendEncode(buf, m, uint32(i+1))
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func batchMessages() []openflow.Message {
	return []openflow.Message{
		&openflow.PacketIn{DatapathID: 1, InPort: 2, Data: []byte("first")},
		&openflow.FlowMod{DatapathID: 1, Priority: 5,
			Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 3}}},
		&openflow.PacketIn{DatapathID: 1, InPort: 4, Data: []byte("second")},
		&openflow.EchoRequest{Data: []byte("hb")},
	}
}

// A single fill must yield every buffered frame in one ReadBatch, with
// distinct scratch per frame (two packet-ins in one batch must not
// clobber each other).
func TestFrameReaderDrainsBufferedFrames(t *testing.T) {
	msgs := batchMessages()
	fr := NewFrameReader(bytes.NewReader(streamOf(t, msgs)))
	frames, err := fr.ReadBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(msgs) {
		t.Fatalf("got %d frames, want %d", len(frames), len(msgs))
	}
	for i, f := range frames {
		if f.Xid != uint32(i+1) {
			t.Errorf("frame %d xid = %d", i, f.Xid)
		}
		if !reflect.DeepEqual(f.Msg, msgs[i]) {
			t.Errorf("frame %d = %+v, want %+v", i, f.Msg, msgs[i])
		}
	}
	if _, err := fr.ReadBatch(nil); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: %v, want EOF", err)
	}
}

// chunkReader returns its stream in fixed-size chunks, splitting
// frames across Read calls.
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func TestFrameReaderReassemblesSplitFrames(t *testing.T) {
	msgs := batchMessages()
	stream := streamOf(t, msgs)
	for _, chunk := range []int{1, 3, 7, 13} {
		fr := NewFrameReader(&chunkReader{data: append([]byte(nil), stream...), chunk: chunk})
		var got []openflow.Message
		for {
			frames, err := fr.ReadBatch(nil)
			for _, f := range frames {
				// Frames die on the next ReadBatch; keep a re-encoded copy.
				b, encErr := openflow.Encode(f.Msg, f.Xid)
				if encErr != nil {
					t.Fatal(encErr)
				}
				m, _, _, decErr := openflow.Decode(b)
				if decErr != nil {
					t.Fatal(decErr)
				}
				got = append(got, m)
			}
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("chunk %d: %v", chunk, err)
				}
				break
			}
		}
		if len(got) != len(msgs) {
			t.Fatalf("chunk %d: got %d frames, want %d", chunk, len(got), len(msgs))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], msgs[i]) {
				t.Fatalf("chunk %d frame %d = %+v, want %+v", chunk, i, got[i], msgs[i])
			}
		}
	}
}

func TestFrameReaderMidFrameEOF(t *testing.T) {
	stream := streamOf(t, batchMessages())
	fr := NewFrameReader(bytes.NewReader(stream[:len(stream)-3]))
	var frames []Frame
	var err error
	for err == nil {
		frames = frames[:0]
		frames, err = fr.ReadBatch(frames)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestFrameReaderBadVersion(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader([]byte{0x09, 0, 0, 8, 0, 0, 0, 1}))
	if _, err := fr.ReadBatch(nil); !errors.Is(err, openflow.ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

// More than ringSlots buffered frames must arrive over successive
// ReadBatch calls without loss.
// Reset must drop buffered bytes and read from the new source.
func TestFrameReaderReset(t *testing.T) {
	msgs := batchMessages()
	stream := streamOf(t, msgs)
	fr := NewFrameReader(bytes.NewReader(stream))
	if _, err := fr.ReadBatch(nil); err != nil {
		t.Fatal(err)
	}
	// Half a frame buffered, then Reset: the partial frame must vanish.
	fr2 := NewFrameReader(&chunkReader{data: stream[:12], chunk: 12})
	fr2.fill()
	fr2.Reset(bytes.NewReader(stream))
	frames, err := fr2.ReadBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(msgs) {
		t.Fatalf("after reset: %d frames, want %d", len(frames), len(msgs))
	}
	if !reflect.DeepEqual(frames[0].Msg, msgs[0]) {
		t.Fatalf("after reset frame 0 = %+v, want %+v", frames[0].Msg, msgs[0])
	}
}

func TestFrameReaderRingOverflow(t *testing.T) {
	var msgs []openflow.Message
	for i := 0; i < ringSlots+17; i++ {
		msgs = append(msgs, &openflow.EchoRequest{Data: []byte{byte(i)}})
	}
	fr := NewFrameReader(bytes.NewReader(streamOf(t, msgs)))
	frames, err := fr.ReadBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != ringSlots {
		t.Fatalf("first batch = %d frames, want %d", len(frames), ringSlots)
	}
	rest, err := fr.ReadBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 17 {
		t.Fatalf("second batch = %d frames, want 17", len(rest))
	}
	if got := rest[16].Msg.(*openflow.EchoRequest).Data[0]; got != byte(ringSlots+16) {
		t.Fatalf("last frame payload = %d, want %d", got, ringSlots+16)
	}
}

func TestFrameWriterSingleWrite(t *testing.T) {
	var writes int
	var sink bytes.Buffer
	fw := NewFrameWriter(writerFunc(func(p []byte) (int, error) {
		writes++
		return sink.Write(p)
	}))
	msgs := batchMessages()
	for i, m := range msgs {
		if err := fw.Append(m, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if writes != 1 {
		t.Fatalf("writes = %d, want 1", writes)
	}
	if !bytes.Equal(sink.Bytes(), streamOf(t, msgs)) {
		t.Fatal("flushed bytes differ from per-message encoding")
	}
	if err := fw.Flush(); err != nil || writes != 1 {
		t.Fatalf("empty flush wrote (writes=%d err=%v)", writes, err)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// SendFrames/RecvBatch over a real pipe: one writer flush, frames
// arrive intact, and a later Recv still works through the same
// buffered reader.
func TestConnSendFramesRecvBatch(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	src, dst := New(a), New(b)

	msgs := batchMessages()
	var frames []Frame
	for i, m := range msgs {
		frames = append(frames, Frame{Msg: m, Xid: uint32(100 + i)})
	}
	errCh := make(chan error, 1)
	go func() {
		if err := src.SendFrames(frames); err != nil {
			errCh <- err
			return
		}
		_, err := src.Send(&openflow.Hello{})
		errCh <- err
	}()

	var got []Frame
	for len(got) < len(msgs) {
		var err error
		got, err = dst.RecvBatch(got)
		if err != nil {
			t.Fatal(err)
		}
		// Survive the next RecvBatch: deep-copy via re-encode.
		for i := range got {
			b, _ := openflow.Encode(got[i].Msg, got[i].Xid)
			m, xid, _, _ := openflow.Decode(b)
			got[i] = Frame{Msg: m, Xid: xid}
		}
	}
	for i := range msgs {
		if got[i].Xid != uint32(100+i) || !reflect.DeepEqual(got[i].Msg, msgs[i]) {
			t.Fatalf("frame %d = %+v xid %d", i, got[i].Msg, got[i].Xid)
		}
	}
	// Recv must drain the same buffered reader, not the raw transport.
	m, _, err := dst.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type() != openflow.TypeHello {
		t.Fatalf("trailing recv = %v, want hello", m.Type())
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestConnSendBatchAssignsXids(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	src, dst := New(a), New(b)
	msgs := []openflow.Message{
		&openflow.EchoRequest{Data: []byte("1")},
		&openflow.EchoRequest{Data: []byte("2")},
		&openflow.EchoRequest{Data: []byte("3")},
	}
	var first uint32
	errCh := make(chan error, 1)
	go func() {
		var err error
		first, err = src.SendBatch(msgs)
		errCh <- err
	}()
	var got []Frame
	for len(got) < len(msgs) {
		var err error
		got, err = dst.RecvBatch(got)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i, f := range got {
		if f.Xid != first+uint32(i) {
			t.Fatalf("frame %d xid = %d, want %d", i, f.Xid, first+uint32(i))
		}
	}
}

// ServeBatch must apply a whole controller burst, and the installed
// flow entries must own their actions (not alias codec scratch that a
// later batch overwrites).
func TestServeBatchAppliesAndCopiesActions(t *testing.T) {
	agent, session, network, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)

	burst1 := []Frame{
		{Msg: &openflow.FlowMod{DatapathID: 7, Priority: 9,
			Match:   sdnMatchHost(0x22),
			Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 2}}}, Xid: 1},
		{Msg: &openflow.EchoRequest{Data: []byte("hb")}, Xid: 2},
	}
	burst2 := []Frame{
		{Msg: &openflow.FlowMod{DatapathID: 7, Priority: 1,
			Match:   sdnMatchHost(0x21),
			Actions: []openflow.Action{{Type: openflow.ActionDrop}}}, Xid: 3},
	}

	done := make(chan error, 1)
	go func() {
		if err := session.Conn.SendFrames(burst1); err != nil {
			done <- err
			return
		}
		// Read burst1's echo reply before sending burst2: the pipe is
		// synchronous, so the agent's reply flush must be drained.
		msg, _, err := session.Conn.Recv()
		if err != nil {
			done <- err
			return
		}
		if msg.Type() != openflow.TypeEchoReply {
			done <- errors.New("expected echo reply")
			return
		}
		done <- session.Conn.SendFrames(burst2)
	}()

	served := 0
	for served < 3 {
		n, err := agent.ServeBatch()
		if err != nil {
			t.Fatal(err)
		}
		served += n
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	sw, err := network.Switch(7)
	if err != nil {
		t.Fatal(err)
	}
	entries := sw.Table.Entries()
	if len(entries) != 2 {
		t.Fatalf("table has %d entries, want 2", len(entries))
	}
	// Highest priority first; its action must still be the output from
	// burst1, not scratch overwritten by burst2's drop.
	if entries[0].Priority != 9 || entries[0].Actions[0].Type != openflow.ActionOutput ||
		entries[0].Actions[0].Port != 2 {
		t.Fatalf("burst1 entry corrupted by later batch: %+v", entries[0])
	}
}

func sdnMatchHost(mac uint64) openflow.Match {
	return openflow.Match{EthDst: mac}
}

// Batched punt + serve must move packets end to end identically to the
// one-at-a-time path.
func TestBatchedPuntRoundTrip(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)

	var wg sync.WaitGroup
	wg.Add(1)
	var puntErr error
	go func() {
		defer wg.Done()
		var frames []Frame
		for i := 0; i < 8; i++ {
			frames = append(frames, Frame{
				Msg: &openflow.PacketIn{DatapathID: 7, InPort: 1, Data: sdn.EncodePacket(sdn.Packet{
					EthSrc: 0x21, EthDst: 0x22, Payload: []byte{byte(i)},
				})},
				Xid: uint32(i + 1),
			})
		}
		puntErr = agent.Conn.SendFrames(frames)
	}()

	var pis []*openflow.PacketIn
	for len(pis) < 8 {
		frames, err := session.Conn.RecvBatch(nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			pi, ok := f.Msg.(*openflow.PacketIn)
			if !ok {
				t.Fatalf("expected packet-in, got %v", f.Msg.Type())
			}
			pkt, err := sdn.DecodePacket(pi.Data)
			if err != nil {
				t.Fatal(err)
			}
			// DecodePacket copies the payload, so retaining pkt is safe.
			pis = append(pis, &openflow.PacketIn{InPort: pi.InPort, Data: sdn.EncodePacket(pkt)})
		}
	}
	wg.Wait()
	if puntErr != nil {
		t.Fatal(puntErr)
	}
	for i, pi := range pis {
		pkt, err := sdn.DecodePacket(pi.Data)
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Payload[0] != byte(i) {
			t.Fatalf("packet %d payload = %d (batch reordered or clobbered)", i, pkt.Payload[0])
		}
	}
}
