package ofconn

import (
	"errors"
	"fmt"

	"sdnbugs/internal/openflow"
)

// ErrStaleRole reports that a switch rejected a role request because
// its generation id was older than the highest the switch has seen —
// the wire form of a fencing-token rejection: a deposed master cannot
// reclaim the dataplane.
var ErrStaleRole = errors.New("ofconn: role request rejected as stale")

// Role returns the controller role this agent last granted (RoleEqual
// until a role request arrives, matching OpenFlow's default).
func (a *SwitchAgent) Role() openflow.ControllerRole {
	if a.role == 0 {
		return openflow.RoleEqual
	}
	return a.role
}

// GenerationID returns the highest generation id the agent has
// accepted, and whether it has accepted one at all.
func (a *SwitchAgent) GenerationID() (uint64, bool) { return a.gen, a.hasGen }

// roleReply applies one role request and returns the reply frame: a
// RoleReply on success, or an OFPET_ROLE_REQUEST_FAILED/OFPRRFC_STALE
// error when the request's generation id is older than the highest the
// switch has observed (OpenFlow 1.3 §6.3.4).
func (a *SwitchAgent) roleReply(m *openflow.RoleRequest, xid uint32) Frame {
	switch m.Role {
	case openflow.RoleNoChange:
		// Report without mutating.
	case openflow.RoleMaster, openflow.RoleSlave:
		if a.hasGen && m.GenerationID < a.gen {
			return Frame{Msg: &openflow.ErrorMsg{
				ErrType: openflow.ErrTypeRoleRequestFailed,
				Code:    openflow.RoleCodeStale,
			}, Xid: xid}
		}
		a.gen, a.hasGen = m.GenerationID, true
		a.role = m.Role
	case openflow.RoleEqual:
		// Equal drops out of the master/slave protocol; the generation
		// id is not checked for this transition (per the spec).
		a.role = m.Role
	default:
		return Frame{Msg: &openflow.ErrorMsg{
			ErrType: openflow.ErrTypeRoleRequestFailed,
			Code:    1, // OFPRRFC_UNSUP
		}, Xid: xid}
	}
	return Frame{Msg: &openflow.RoleReply{Role: a.Role(), GenerationID: a.gen}, Xid: xid}
}

// RequestRole asks the switch to grant role under the given generation
// id and waits for the verdict. A stale generation id yields
// ErrStaleRole — the deposed-primary fence at the wire layer.
func (s *ControllerSession) RequestRole(role openflow.ControllerRole, gen uint64) (openflow.ControllerRole, uint64, error) {
	xid, err := s.Conn.Send(&openflow.RoleRequest{Role: role, GenerationID: gen})
	if err != nil {
		return 0, 0, err
	}
	msg, gotXid, err := s.Conn.Recv()
	if err != nil {
		return 0, 0, err
	}
	if gotXid != xid {
		return 0, 0, fmt.Errorf("ofconn: role reply xid %d, want %d", gotXid, xid)
	}
	switch m := msg.(type) {
	case *openflow.RoleReply:
		return m.Role, m.GenerationID, nil
	case *openflow.ErrorMsg:
		if m.ErrType == openflow.ErrTypeRoleRequestFailed && m.Code == openflow.RoleCodeStale {
			return 0, 0, fmt.Errorf("%w (gen %d)", ErrStaleRole, gen)
		}
		return 0, 0, fmt.Errorf("ofconn: role request failed: type %d code %d", m.ErrType, m.Code)
	default:
		return 0, 0, fmt.Errorf("ofconn: expected role reply, got %v", msg.Type())
	}
}
