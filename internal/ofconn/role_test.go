package ofconn

import (
	"errors"
	"net"
	"testing"
	"time"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// serveN runs the agent loop for n messages in the background.
func serveN(agent *SwitchAgent, n int) chan error {
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := agent.ServeOne(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

func TestRoleHandoff(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)
	done := serveN(agent, 3)

	role, gen, err := session.RequestRole(openflow.RoleMaster, 1)
	if err != nil {
		t.Fatalf("master request: %v", err)
	}
	if role != openflow.RoleMaster || gen != 1 {
		t.Fatalf("granted role=%v gen=%d", role, gen)
	}
	// A later generation takes over cleanly.
	role, gen, err = session.RequestRole(openflow.RoleSlave, 2)
	if err != nil {
		t.Fatalf("slave request: %v", err)
	}
	if role != openflow.RoleSlave || gen != 2 {
		t.Fatalf("granted role=%v gen=%d", role, gen)
	}
	// NoChange reports without mutating.
	role, gen, err = session.RequestRole(openflow.RoleNoChange, 0)
	if err != nil {
		t.Fatalf("nochange request: %v", err)
	}
	if role != openflow.RoleSlave || gen != 2 {
		t.Fatalf("nochange reported role=%v gen=%d", role, gen)
	}
	if err := <-done; err != nil {
		t.Fatalf("agent serve: %v", err)
	}
}

func TestRoleStaleGenerationFenced(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)
	done := serveN(agent, 2)

	if _, _, err := session.RequestRole(openflow.RoleMaster, 5); err != nil {
		t.Fatalf("master request: %v", err)
	}
	// A deposed primary retrying with an older generation id must be
	// rejected with the stale error, and the switch's state unchanged.
	_, _, err := session.RequestRole(openflow.RoleMaster, 4)
	if !errors.Is(err, ErrStaleRole) {
		t.Fatalf("stale request: got %v, want ErrStaleRole", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("agent serve: %v", err)
	}
	if gen, ok := agent.GenerationID(); !ok || gen != 5 || agent.Role() != openflow.RoleMaster {
		t.Fatalf("agent state after stale request: role=%v gen=%d ok=%v", agent.Role(), gen, ok)
	}
}

func TestRoleServeBatch(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)

	done := make(chan error, 1)
	go func() {
		_, err := agent.ServeBatch()
		done <- err
	}()
	first, err := session.Conn.SendBatch([]openflow.Message{
		&openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 9},
		&openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 3},
	})
	if err != nil {
		t.Fatalf("send batch: %v", err)
	}
	// First reply: granted. Second: stale error.
	msg, xid, err := session.Conn.Recv()
	if err != nil {
		t.Fatalf("recv grant: %v", err)
	}
	if r, ok := msg.(*openflow.RoleReply); !ok || r.GenerationID != 9 || xid != first {
		t.Fatalf("grant: %T %+v xid=%d", msg, msg, xid)
	}
	msg, xid, err = session.Conn.Recv()
	if err != nil {
		t.Fatalf("recv stale: %v", err)
	}
	em, ok := msg.(*openflow.ErrorMsg)
	if !ok || em.ErrType != openflow.ErrTypeRoleRequestFailed || em.Code != openflow.RoleCodeStale || xid != first+1 {
		t.Fatalf("stale: %T %+v xid=%d", msg, msg, xid)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve batch: %v", err)
	}
}

func TestKeepaliveDetectsStalledPeer(t *testing.T) {
	// The peer drains bytes but never replies, simulating a wedged
	// switch: without a read timeout the controller's Recv would hang
	// forever.
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := sConn.Read(buf); err != nil {
				return
			}
		}
	}()
	session := &ControllerSession{Conn: New(cConn)}
	errc := make(chan error, 1)
	go func() {
		errc <- session.Keepalive([]byte("hb"), 50*time.Millisecond)
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("keepalive: got %v, want ErrPeerDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("keepalive hung on a stalled peer")
	}
}

func TestKeepaliveHealthyPeer(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)
	done := serveN(agent, 1)
	if err := session.Keepalive([]byte("hb"), time.Second); err != nil {
		t.Fatalf("keepalive: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("agent serve: %v", err)
	}
	// The timeout must not linger: a follow-up blocking Recv on the
	// session should wait for real traffic, not trip a stale deadline.
	go func() {
		time.Sleep(100 * time.Millisecond)
		agent.PuntPacket(1, sdn.Packet{EthSrc: 0x21, EthDst: 0x22})
	}()
	if _, err := session.RecvPacketIn(); err != nil {
		t.Fatalf("recv after keepalive: %v", err)
	}
}

func TestSetReadTimeoutRejectsPlainTransport(t *testing.T) {
	var buf chanBuffer
	c := New(&buf)
	if err := c.SetReadTimeout(time.Second); err == nil {
		t.Fatal("expected rejection for a transport without deadlines")
	}
}

// chanBuffer is a minimal ReadWriter without deadline support.
type chanBuffer struct{}

func (chanBuffer) Read(p []byte) (int, error)  { return 0, net.ErrClosed }
func (chanBuffer) Write(p []byte) (int, error) { return len(p), nil }
