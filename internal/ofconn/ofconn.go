// Package ofconn provides the connection layer between the simulated
// dataplane and the controller: OpenFlow framing over any
// io.ReadWriter (net.Conn, net.Pipe, TLS...), the version handshake,
// transaction-id management, and echo keepalives. It turns the
// internal/openflow codec into a usable wire protocol, mirroring how a
// real switch agent and controller session are wired.
package ofconn

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// Connection errors.
var (
	ErrHandshake = errors.New("ofconn: handshake failed")
	ErrClosed    = errors.New("ofconn: connection closed")
)

// Conn frames OpenFlow messages over rw with monotonically increasing
// transaction ids. Reads and writes are independently serialized, so a
// reader goroutine can coexist with writers.
type Conn struct {
	rw io.ReadWriter

	writeMu sync.Mutex
	readMu  sync.Mutex
	nextXid uint32
	closed  bool

	// fr/fw are the lazily created batch reader and writer (guarded by
	// readMu and writeMu respectively). Once fr exists, Recv must drain
	// it instead of the raw transport or buffered frames would be lost.
	fr *FrameReader
	fw *FrameWriter

	// deadliner/readTimeout implement SetReadTimeout (keepalive.go):
	// armed before every blocking read so a stalled peer surfaces as
	// ErrPeerDead instead of hanging Recv forever. Guarded by readMu.
	deadliner   deadlineReader
	readTimeout time.Duration
}

// New wraps rw. The caller retains ownership of closing the underlying
// transport; Close here only marks the session dead.
func New(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw, nextXid: 1}
}

// Close marks the session closed; subsequent sends and receives fail
// with ErrClosed.
func (c *Conn) Close() {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.closed = true
}

// Send frames and writes msg, returning the transaction id used.
func (c *Conn) Send(msg openflow.Message) (uint32, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	xid := c.nextXid
	c.nextXid++
	if err := openflow.WriteMessage(c.rw, msg, xid); err != nil {
		return 0, err
	}
	return xid, nil
}

// SendWithXid frames and writes msg under a caller-chosen transaction
// id (used for replies, which must echo the request's xid).
func (c *Conn) SendWithXid(msg openflow.Message, xid uint32) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return openflow.WriteMessage(c.rw, msg, xid)
}

// Recv reads the next framed message.
func (c *Conn) Recv() (openflow.Message, uint32, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if c.closed {
		return nil, 0, ErrClosed
	}
	c.armReadDeadline()
	if c.fr != nil {
		msg, xid, err := c.fr.ReadOne()
		return msg, xid, wrapDeadPeer(err)
	}
	msg, xid, err := openflow.ReadMessage(c.rw)
	return msg, xid, wrapDeadPeer(err)
}

// Handshake runs the version negotiation from the initiating side:
// send Hello, expect Hello back.
func (c *Conn) Handshake() error {
	if _, err := c.Send(&openflow.Hello{}); err != nil {
		return fmt.Errorf("%w: send hello: %v", ErrHandshake, err)
	}
	msg, _, err := c.Recv()
	if err != nil {
		return fmt.Errorf("%w: read hello: %v", ErrHandshake, err)
	}
	if msg.Type() != openflow.TypeHello {
		return fmt.Errorf("%w: expected hello, got %v", ErrHandshake, msg.Type())
	}
	return nil
}

// AcceptHandshake runs the negotiation from the accepting side:
// expect Hello, reply Hello.
func (c *Conn) AcceptHandshake() error {
	msg, _, err := c.Recv()
	if err != nil {
		return fmt.Errorf("%w: read hello: %v", ErrHandshake, err)
	}
	if msg.Type() != openflow.TypeHello {
		return fmt.Errorf("%w: expected hello, got %v", ErrHandshake, msg.Type())
	}
	if _, err := c.Send(&openflow.Hello{}); err != nil {
		return fmt.Errorf("%w: send hello: %v", ErrHandshake, err)
	}
	return nil
}

// SwitchAgent speaks for one simulated switch over a connection: it
// completes the handshake and features exchange, punts packets to the
// controller, and applies the flow-mods and packet-outs it receives.
type SwitchAgent struct {
	Conn *Conn
	// Net is the dataplane holding the agent's switch.
	Net *sdn.Network
	// DPID is the switch this agent fronts.
	DPID uint64

	// scratch and replies are ServeBatch's reusable frame slices.
	scratch []Frame
	replies []Frame

	// role/gen/hasGen are the mastership state (role.go): the granted
	// controller role and the highest generation id accepted, used to
	// reject stale role requests from a deposed master.
	role   openflow.ControllerRole
	gen    uint64
	hasGen bool
}

// Start performs the switch-side session setup: handshake, then answer
// the controller's features request.
func (a *SwitchAgent) Start() error {
	if err := a.Conn.Handshake(); err != nil {
		return err
	}
	msg, xid, err := a.Conn.Recv()
	if err != nil {
		return fmt.Errorf("ofconn: features: %w", err)
	}
	if msg.Type() != openflow.TypeFeaturesReq {
		return fmt.Errorf("ofconn: expected features request, got %v", msg.Type())
	}
	sw, err := a.Net.Switch(a.DPID)
	if err != nil {
		return err
	}
	return a.Conn.SendWithXid(&openflow.FeaturesReply{
		DatapathID: a.DPID, NumPorts: sw.NumPorts,
	}, xid)
}

// PuntPacket sends a table-miss packet up to the controller.
func (a *SwitchAgent) PuntPacket(inPort uint32, p sdn.Packet) error {
	_, err := a.Conn.Send(&openflow.PacketIn{
		DatapathID: a.DPID,
		InPort:     inPort,
		Reason:     0,
		Data:       sdn.EncodePacket(p),
	})
	return err
}

// ServeOne reads and applies exactly one controller message (flow-mod,
// packet-out, echo request, or role request). It returns the message
// type served.
func (a *SwitchAgent) ServeOne() (openflow.MsgType, error) {
	msg, xid, err := a.Conn.Recv()
	if err != nil {
		return 0, err
	}
	switch m := msg.(type) {
	case *openflow.FlowMod:
		if err := a.Net.ApplyFlowMod(*m); err != nil {
			return msg.Type(), a.sendError(xid, err)
		}
	case *openflow.PacketOut:
		if _, err := a.Net.ApplyPacketOut(*m); err != nil {
			return msg.Type(), a.sendError(xid, err)
		}
	case *openflow.EchoRequest:
		if err := a.Conn.SendWithXid(&openflow.EchoReply{Data: m.Data}, xid); err != nil {
			return msg.Type(), err
		}
	case *openflow.RoleRequest:
		reply := a.roleReply(m, xid)
		if err := a.Conn.SendWithXid(reply.Msg, reply.Xid); err != nil {
			return msg.Type(), err
		}
	default:
		return msg.Type(), fmt.Errorf("ofconn: unexpected controller message %v", msg.Type())
	}
	return msg.Type(), nil
}

func (a *SwitchAgent) sendError(xid uint32, cause error) error {
	return a.Conn.SendWithXid(&openflow.ErrorMsg{
		ErrType: 1, Code: 1, Data: []byte(cause.Error()),
	}, xid)
}

// ControllerSession is the controller side of one switch connection:
// it accepts the handshake, learns the datapath, and exposes typed
// send/receive helpers.
type ControllerSession struct {
	Conn *Conn
	// DatapathID and NumPorts are learned during Accept.
	DatapathID uint64
	NumPorts   uint32
}

// Accept performs the controller-side session setup.
func (s *ControllerSession) Accept() error {
	if err := s.Conn.AcceptHandshake(); err != nil {
		return err
	}
	if _, err := s.Conn.Send(&openflow.FeaturesRequest{}); err != nil {
		return fmt.Errorf("ofconn: send features request: %w", err)
	}
	msg, _, err := s.Conn.Recv()
	if err != nil {
		return fmt.Errorf("ofconn: read features reply: %w", err)
	}
	fr, ok := msg.(*openflow.FeaturesReply)
	if !ok {
		return fmt.Errorf("ofconn: expected features reply, got %v", msg.Type())
	}
	s.DatapathID = fr.DatapathID
	s.NumPorts = fr.NumPorts
	return nil
}

// InstallFlow pushes a flow-mod to the switch.
func (s *ControllerSession) InstallFlow(fm openflow.FlowMod) error {
	fm.DatapathID = s.DatapathID
	_, err := s.Conn.Send(&fm)
	return err
}

// SendPacketOut pushes a packet-out to the switch.
func (s *ControllerSession) SendPacketOut(po openflow.PacketOut) error {
	po.DatapathID = s.DatapathID
	_, err := s.Conn.Send(&po)
	return err
}

// Ping sends an echo request and waits for the matching reply.
func (s *ControllerSession) Ping(payload []byte) error {
	xid, err := s.Conn.Send(&openflow.EchoRequest{Data: payload})
	if err != nil {
		return err
	}
	msg, gotXid, err := s.Conn.Recv()
	if err != nil {
		return err
	}
	if msg.Type() != openflow.TypeEchoReply || gotXid != xid {
		return fmt.Errorf("ofconn: bad echo reply (type %v, xid %d want %d)", msg.Type(), gotXid, xid)
	}
	return nil
}

// RecvPacketIn reads the next message, expecting a packet-in.
func (s *ControllerSession) RecvPacketIn() (*openflow.PacketIn, error) {
	msg, _, err := s.Conn.Recv()
	if err != nil {
		return nil, err
	}
	pi, ok := msg.(*openflow.PacketIn)
	if !ok {
		return nil, fmt.Errorf("ofconn: expected packet-in, got %v", msg.Type())
	}
	return pi, nil
}
