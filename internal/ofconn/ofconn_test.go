package ofconn

import (
	"errors"
	"net"
	"sync"
	"testing"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// pipePair builds a connected agent/controller pair over net.Pipe with
// a one-switch dataplane behind the agent.
func pipePair(t *testing.T) (*SwitchAgent, *ControllerSession, *sdn.Network, func()) {
	t.Helper()
	cConn, sConn := net.Pipe()
	network := sdn.NewNetwork()
	network.AddSwitch(7, 4)
	if err := network.AddHost(0x21, sdn.PortRef{DPID: 7, Port: 1}); err != nil {
		t.Fatal(err)
	}
	if err := network.AddHost(0x22, sdn.PortRef{DPID: 7, Port: 2}); err != nil {
		t.Fatal(err)
	}
	agent := &SwitchAgent{Conn: New(sConn), Net: network, DPID: 7}
	session := &ControllerSession{Conn: New(cConn)}
	cleanup := func() {
		_ = cConn.Close()
		_ = sConn.Close()
	}
	return agent, session, network, cleanup
}

// setup runs both sides of the session establishment concurrently.
func setup(t *testing.T, agent *SwitchAgent, session *ControllerSession) {
	t.Helper()
	var wg sync.WaitGroup
	var agentErr, ctlErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		agentErr = agent.Start()
	}()
	go func() {
		defer wg.Done()
		ctlErr = session.Accept()
	}()
	wg.Wait()
	if agentErr != nil {
		t.Fatalf("agent: %v", agentErr)
	}
	if ctlErr != nil {
		t.Fatalf("controller: %v", ctlErr)
	}
}

func TestHandshakeAndFeatures(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)
	if session.DatapathID != 7 || session.NumPorts != 4 {
		t.Errorf("learned dpid=%d ports=%d", session.DatapathID, session.NumPorts)
	}
}

func TestEchoKeepalive(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)
	done := make(chan error, 1)
	go func() {
		_, err := agent.ServeOne()
		done <- err
	}()
	if err := session.Ping([]byte("heartbeat")); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("agent serve: %v", err)
	}
}

func TestFlowModOverWire(t *testing.T) {
	agent, session, network, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)
	done := make(chan error, 1)
	go func() {
		_, err := agent.ServeOne()
		done <- err
	}()
	err := session.InstallFlow(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 5,
		Match:    openflow.Match{EthDst: 0x22},
		Actions:  []openflow.Action{{Type: openflow.ActionOutput, Port: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	sw, _ := network.Switch(7)
	if sw.Table.Len() != 1 {
		t.Fatalf("flow not applied: table len %d", sw.Table.Len())
	}
	// The installed flow actually forwards in the dataplane.
	deliveries, err := network.InjectFromHost(0x21, sdn.Packet{EthDst: 0x22})
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 1 || deliveries[0].MAC != 0x22 {
		t.Errorf("deliveries = %+v", deliveries)
	}
}

func TestPuntAndPacketOutRoundTrip(t *testing.T) {
	agent, session, network, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)

	// Switch punts a packet; controller reads it and answers with a
	// packet-out flooding it.
	pkt := sdn.Packet{EthSrc: 0x21, EthDst: sdn.BroadcastMAC, EthType: 0x0806}
	puntDone := make(chan error, 1)
	go func() { puntDone <- agent.PuntPacket(1, pkt) }()
	pi, err := session.RecvPacketIn()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-puntDone; err != nil {
		t.Fatal(err)
	}
	if pi.DatapathID != 7 || pi.InPort != 1 {
		t.Errorf("packet-in meta: %+v", pi)
	}
	decoded, err := sdn.DecodePacket(pi.Data)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.EthSrc != 0x21 || !decoded.IsBroadcast() {
		t.Errorf("packet survived transit wrong: %+v", decoded)
	}

	serveDone := make(chan error, 1)
	go func() {
		_, err := agent.ServeOne()
		serveDone <- err
	}()
	err = session.SendPacketOut(openflow.PacketOut{
		InPort:  pi.InPort,
		Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: openflow.PortFlood}},
		Data:    pi.Data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	// The flood delivered to the other host.
	deliveries := network.DrainDeliveries()
	if len(deliveries) != 1 || deliveries[0].MAC != 0x22 {
		t.Errorf("flood deliveries = %+v", deliveries)
	}
}

func TestAgentReportsApplyErrors(t *testing.T) {
	agent, session, _, cleanup := pipePair(t)
	defer cleanup()
	setup(t, agent, session)
	done := make(chan error, 1)
	go func() {
		_, err := agent.ServeOne()
		done <- err
	}()
	// Flow-mod for a non-existent switch: agent must answer ErrorMsg.
	fm := openflow.FlowMod{Command: openflow.FlowAdd}
	fm.DatapathID = 99
	if _, err := session.Conn.Send(&fm); err != nil {
		t.Fatal(err)
	}
	msg, _, err := session.Conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != openflow.TypeError {
		t.Errorf("expected error message, got %v", msg.Type())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestClosedConnRejectsSends(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	c := New(a)
	c.Close()
	if _, err := c.Send(&openflow.Hello{}); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestHandshakeRejectsNonHello(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	left, right := New(a), New(b)
	done := make(chan error, 1)
	go func() { done <- left.Handshake() }()
	// Answer the hello with the wrong message type.
	if _, _, err := right.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := right.Send(&openflow.EchoRequest{}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrHandshake) {
		t.Errorf("want ErrHandshake, got %v", err)
	}
}

func TestOverTCP(t *testing.T) {
	// The same session logic over a real TCP loopback connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()

	network := sdn.NewNetwork()
	network.AddSwitch(3, 2)

	serverDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer func() { _ = conn.Close() }()
		agent := &SwitchAgent{Conn: New(conn), Net: network, DPID: 3}
		if err := agent.Start(); err != nil {
			serverDone <- err
			return
		}
		_, err = agent.ServeOne() // one flow-mod
		serverDone <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	session := &ControllerSession{Conn: New(conn)}
	if err := session.Accept(); err != nil {
		t.Fatal(err)
	}
	if session.DatapathID != 3 {
		t.Errorf("dpid = %d", session.DatapathID)
	}
	if err := session.InstallFlow(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Actions: []openflow.Action{{Type: openflow.ActionDrop}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
	sw, _ := network.Switch(3)
	if sw.Table.Len() != 1 {
		t.Error("flow not installed over TCP")
	}
}
