package ofconn

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"sdnbugs/internal/openflow"
)

// ErrPeerDead reports that the peer failed to produce any bytes within
// the configured read timeout — the keepalive verdict for a stalled
// connection that would otherwise hang Recv forever.
var ErrPeerDead = errors.New("ofconn: peer dead (read timeout)")

// deadlineReader is the optional transport capability read timeouts
// need (net.Conn, net.Pipe, and *os.File all provide it).
type deadlineReader interface {
	SetReadDeadline(time.Time) error
}

// SetReadTimeout bounds how long any single Recv/RecvBatch call may
// block waiting for the peer. A non-positive d clears the timeout. The
// transport must support SetReadDeadline; plain buffers and pipes that
// don't are rejected so callers learn at configuration time, not hang
// time. Reads that exceed the timeout fail with an error wrapping
// ErrPeerDead.
func (c *Conn) SetReadTimeout(d time.Duration) error {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	dr, ok := c.rw.(deadlineReader)
	if !ok {
		return fmt.Errorf("ofconn: transport %T does not support read deadlines", c.rw)
	}
	c.deadliner = dr
	c.readTimeout = d
	if d <= 0 {
		// Clear any armed deadline immediately so it cannot poison a
		// later blocking read.
		return dr.SetReadDeadline(time.Time{})
	}
	return nil
}

// armReadDeadline starts the timeout clock for one read call. Callers
// hold readMu.
func (c *Conn) armReadDeadline() {
	if c.deadliner == nil {
		return
	}
	if c.readTimeout <= 0 {
		c.deadliner.SetReadDeadline(time.Time{})
		return
	}
	c.deadliner.SetReadDeadline(time.Now().Add(c.readTimeout))
}

// wrapDeadPeer converts a deadline-exceeded read error into ErrPeerDead
// and passes every other error through.
func wrapDeadPeer(err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: %v", ErrPeerDead, err)
	}
	return err
}

// Keepalive probes the peer with one echo round trip bounded by
// timeout. A healthy peer answers and the session's previous timeout
// configuration is restored; a stalled peer yields ErrPeerDead instead
// of blocking forever.
func (s *ControllerSession) Keepalive(payload []byte, timeout time.Duration) error {
	if err := s.Conn.SetReadTimeout(timeout); err != nil {
		return err
	}
	defer s.Conn.SetReadTimeout(0)
	xid, err := s.Conn.Send(&openflow.EchoRequest{Data: payload})
	if err != nil {
		return err
	}
	msg, gotXid, err := s.Conn.Recv()
	if err != nil {
		return err
	}
	if msg.Type() != openflow.TypeEchoReply || gotXid != xid {
		return fmt.Errorf("ofconn: bad echo reply (type %v, xid %d want %d)", msg.Type(), gotXid, xid)
	}
	return nil
}
