package ofconn

import (
	"errors"
	"fmt"
	"io"

	"sdnbugs/internal/openflow"
)

// Frame pairs a decoded message with its transaction id — the unit the
// batched reader and writer move around.
type Frame struct {
	Msg openflow.Message
	Xid uint32
}

const (
	// batchBufLen is the fixed I/O buffer size. It comfortably holds
	// two maximum-length frames, so a partial frame at the buffer tail
	// never starves the reader.
	batchBufLen = 128 << 10
	// ringSlots bounds how many frames one ReadBatch call returns. Each
	// slot owns a zero-copy Codec, so every frame in a batch decodes
	// into distinct scratch: a deliberately fixed ring, not a
	// sync.Pool, so buffer reuse is deterministic run to run.
	ringSlots = 64
)

// FrameReader drains all buffered frames per syscall: one Read fills
// the fixed buffer, then every complete frame in it is decoded without
// touching the transport again. Decoding is zero-copy — returned
// frames alias the reader's buffer and the ring's codec scratch, and
// are valid only until the next ReadBatch (or ReadOne) call. A
// FrameReader is not safe for concurrent use.
type FrameReader struct {
	r          io.Reader
	buf        []byte
	start, end int
	ring       [ringSlots]*openflow.Codec
}

// NewFrameReader wraps r with a fixed 128 KiB frame buffer.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, batchBufLen)}
}

// Buffered reports whether at least one complete frame is already
// buffered (readable without a syscall).
func (fr *FrameReader) Buffered() bool {
	return fr.completeFrame() > 0
}

// Reset discards any buffered bytes and re-points the reader at r,
// keeping the buffer and codec ring allocated.
func (fr *FrameReader) Reset(r io.Reader) {
	fr.r = r
	fr.start, fr.end = 0, 0
}

// completeFrame returns the length of the next buffered frame, or 0 if
// the buffer holds none (or a partial one).
func (fr *FrameReader) completeFrame() int {
	avail := fr.end - fr.start
	if avail < 8 {
		return 0
	}
	b := fr.buf[fr.start:fr.end]
	length := int(uint16(b[2])<<8 | uint16(b[3]))
	if length < 8 || length > avail {
		// A lying sub-header length is surfaced at decode time; here we
		// only ask "is a whole frame present".
		if length < 8 {
			return length // forces a decode attempt, which errors
		}
		return 0
	}
	return length
}

// fill compacts the unread region to the buffer front and reads once
// from the transport. It must only run before any frame of a batch has
// been decoded — compaction moves bytes that zero-copy frames alias.
func (fr *FrameReader) fill() error {
	if fr.start > 0 {
		copy(fr.buf, fr.buf[fr.start:fr.end])
		fr.end -= fr.start
		fr.start = 0
	}
	if fr.end == len(fr.buf) {
		return fmt.Errorf("ofconn: frame buffer full without a complete frame")
	}
	n, err := fr.r.Read(fr.buf[fr.end:])
	fr.end += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.EOF) && fr.end > fr.start {
		// Mid-frame EOF: the peer died between header and body.
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeNext decodes the next buffered frame using the codec in slot.
func (fr *FrameReader) decodeNext(slot int) (Frame, error) {
	length := fr.completeFrame()
	c := fr.ring[slot]
	if c == nil {
		c = openflow.NewZeroCopyCodec()
		fr.ring[slot] = c
	}
	if length < 8 {
		// Let the codec produce the canonical error for a lying header.
		length = fr.end - fr.start
	}
	msg, xid, _, err := c.Decode(fr.buf[fr.start : fr.start+length])
	if err != nil {
		return Frame{}, err
	}
	fr.start += length
	return Frame{Msg: msg, Xid: xid}, nil
}

// ReadBatch appends every buffered complete frame (reading from the
// transport until at least one is available) to dst and returns the
// extended slice. At most ringSlots frames are returned per call;
// surplus complete frames stay buffered for the next call, still
// without a syscall. The returned frames are valid only until the next
// ReadBatch or ReadOne call.
func (fr *FrameReader) ReadBatch(dst []Frame) ([]Frame, error) {
	for fr.completeFrame() == 0 {
		if err := fr.fill(); err != nil {
			return dst, err
		}
	}
	for slot := 0; slot < ringSlots && fr.completeFrame() > 0; slot++ {
		f, err := fr.decodeNext(slot)
		if err != nil {
			return dst, err
		}
		dst = append(dst, f)
	}
	return dst, nil
}

// ReadOne reads the next frame through the batch buffer, returning an
// owned (freshly allocated, copy-mode) message that survives future
// reads. This is what Conn.Recv uses once batch mode has buffered
// bytes ahead of the caller.
func (fr *FrameReader) ReadOne() (openflow.Message, uint32, error) {
	for fr.completeFrame() == 0 {
		if err := fr.fill(); err != nil {
			return nil, 0, err
		}
	}
	length := fr.completeFrame()
	if length < 8 {
		length = fr.end - fr.start
	}
	msg, xid, _, err := openflow.Decode(fr.buf[fr.start : fr.start+length])
	if err != nil {
		return nil, 0, err
	}
	fr.start += length
	return msg, xid, nil
}

// FrameWriter stages encoded frames in a fixed buffer and writes them
// with one syscall per Flush. Not safe for concurrent use.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter wraps w with a staging buffer.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, buf: make([]byte, 0, batchBufLen)}
}

// Append encodes one frame into the staging buffer, flushing first if
// the frame might not fit.
func (fw *FrameWriter) Append(msg openflow.Message, xid uint32) error {
	if len(fw.buf) > batchBufLen-openflow.MaxFrameLen-8 {
		if err := fw.Flush(); err != nil {
			return err
		}
	}
	b, err := openflow.AppendEncode(fw.buf, msg, xid)
	if err != nil {
		return err
	}
	fw.buf = b
	return nil
}

// Buffered returns the number of staged, unflushed bytes.
func (fw *FrameWriter) Buffered() int { return len(fw.buf) }

// Flush writes all staged frames with a single Write.
func (fw *FrameWriter) Flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:0]
	if err != nil {
		return fmt.Errorf("ofconn: flush: %w", err)
	}
	return nil
}

// frameReader lazily creates the connection's batch reader. Callers
// hold readMu.
func (c *Conn) frameReader() *FrameReader {
	if c.fr == nil {
		c.fr = NewFrameReader(c.rw)
	}
	return c.fr
}

// RecvBatch appends all currently available frames (at least one,
// blocking if none are buffered) to dst. Frames are decoded zero-copy
// and are valid only until the next RecvBatch or Recv call on this
// connection.
func (c *Conn) RecvBatch(dst []Frame) ([]Frame, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if c.closed {
		return dst, ErrClosed
	}
	c.armReadDeadline()
	out, err := c.frameReader().ReadBatch(dst)
	return out, wrapDeadPeer(err)
}

// SendFrames stages every frame (using each frame's own xid) and
// flushes them with a single write.
func (c *Conn) SendFrames(frames []Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.fw == nil {
		c.fw = NewFrameWriter(c.rw)
	}
	for _, f := range frames {
		if err := c.fw.Append(f.Msg, f.Xid); err != nil {
			return err
		}
	}
	return c.fw.Flush()
}

// SendBatch assigns consecutive transaction ids to msgs, stages them,
// and flushes with a single write. It returns the xid given to the
// first message.
func (c *Conn) SendBatch(msgs []openflow.Message) (uint32, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	if c.fw == nil {
		c.fw = NewFrameWriter(c.rw)
	}
	first := c.nextXid
	for _, m := range msgs {
		if err := c.fw.Append(m, c.nextXid); err != nil {
			return 0, err
		}
		c.nextXid++
	}
	return first, c.fw.Flush()
}

// ServeBatch reads one batch of controller messages and applies all of
// them, staging any replies (echo replies, errors) and flushing them
// with a single write at the end. It returns the number of messages
// applied cleanly; the first unexpected-message error is returned
// after the whole batch is processed and flushed.
func (a *SwitchAgent) ServeBatch() (int, error) {
	frames, err := a.Conn.RecvBatch(a.scratch[:0])
	a.scratch = frames[:0]
	if err != nil {
		return 0, err
	}
	var served int
	var firstErr error
	replies := a.replies[:0]
	for _, f := range frames {
		switch m := f.Msg.(type) {
		case *openflow.FlowMod:
			fm := *m
			// The flow table retains the Actions slice, but a zero-copy
			// batch frame's actions live in codec scratch that the next
			// batch overwrites — the table must own its copy.
			fm.Actions = append([]openflow.Action(nil), m.Actions...)
			if err := a.Net.ApplyFlowMod(fm); err != nil {
				replies = append(replies, errorFrame(f.Xid, err))
				continue
			}
		case *openflow.PacketOut:
			if _, err := a.Net.ApplyPacketOut(*m); err != nil {
				replies = append(replies, errorFrame(f.Xid, err))
				continue
			}
		case *openflow.EchoRequest:
			// The reply payload must outlive this batch's buffer.
			data := append([]byte(nil), m.Data...)
			replies = append(replies, Frame{Msg: &openflow.EchoReply{Data: data}, Xid: f.Xid})
		case *openflow.RoleRequest:
			// Role requests have no sliced payload, so the reply (or the
			// stale-generation error) is safe to stage as-is.
			replies = append(replies, a.roleReply(m, f.Xid))
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("ofconn: unexpected controller message %v", f.Msg.Type())
			}
			continue
		}
		served++
	}
	a.replies = replies[:0]
	if len(replies) > 0 {
		if err := a.Conn.SendFrames(replies); err != nil {
			return served, err
		}
	}
	return served, firstErr
}

func errorFrame(xid uint32, cause error) Frame {
	return Frame{Msg: &openflow.ErrorMsg{ErrType: 1, Code: 1, Data: []byte(cause.Error())}, Xid: xid}
}
