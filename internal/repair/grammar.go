// Package repair closes the paper's mine → classify → fix circle
// (ROADMAP item 2, experiment E25): when the self-healing supervisor
// sheds a deterministic poison class, the repair loop synthesizes
// candidate patches to the controller's flow-rule program by
// sketch-based parameter search over a small repair grammar
// (NetRep-style), ranks the candidates with the perfuzz
// failure-model learner, validates each survivor against the ddmin
// minimal reproducer that triggered the shed plus the full faultlab
// fault-injection campaign, and lifts the shed only when a candidate
// passes everything. Graceful degradation (E22) becomes actual
// self-repair — and classes no grammar production can fix (a drifted
// external service, a rebooting device) stay shed, exactly as they
// should.
package repair

import (
	"fmt"
	"strings"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/sdn"
)

// Production is one repair-grammar production.
type Production int

// Grammar productions.
const (
	// ProdReorder swaps the priorities of two existing program rules —
	// the classic flow-table fix for shadowed rules.
	ProdReorder Production = iota
	// ProdGuard inserts a rewrite rule guarding the class's poison
	// signature (strip the poison VLAN tag, or normalize the config
	// value) so the guarded traffic keeps flowing around the bug.
	ProdGuard
	// ProdRollback re-targets a poisoned config push onto a
	// quarantined key prefix: the push is patched, not lost.
	ProdRollback
	// ProdClamp admits at most Budget matching events per controller
	// incarnation — the queue-amplifier repair.
	ProdClamp

	numProductions
)

func (p Production) String() string {
	switch p {
	case ProdReorder:
		return "reorder"
	case ProdGuard:
		return "guard"
	case ProdRollback:
		return "rollback"
	case ProdClamp:
		return "clamp"
	default:
		return fmt.Sprintf("production-%d", int(p))
	}
}

// Patch is one sketch instantiation: a production with its holes
// filled. Applying a patch to a base program yields a new candidate
// program; the base is never mutated.
type Patch struct {
	Production Production `json:"production"`
	// Class is the shed degradation class the patch targets.
	Class string `json:"class"`

	// Reorder holes: the rule positions to swap (taken modulo the rule
	// count).
	I int `json:"i,omitempty"`
	J int `json:"j,omitempty"`

	// Guard holes.
	StripVlan bool   `json:"strip_vlan,omitempty"`
	SetValue  string `json:"set_value,omitempty"`

	// Rollback hole: the quarantine prefix replacing the poison
	// prefix.
	SetKeyPrefix string `json:"set_key_prefix,omitempty"`

	// Clamp hole: matching events admitted per incarnation.
	Budget int `json:"budget,omitempty"`

	// Priority of the inserted rule (insertion productions only;
	// default 10).
	Priority int `json:"priority,omitempty"`
}

// String renders the patch for reports and test names.
func (p Patch) String() string {
	switch p.Production {
	case ProdReorder:
		return fmt.Sprintf("reorder(%d<->%d)", p.I, p.J)
	case ProdGuard:
		if p.StripVlan {
			return fmt.Sprintf("guard(%s: strip-vlan)", p.Class)
		}
		return fmt.Sprintf("guard(%s: value=%q)", p.Class, p.SetValue)
	case ProdRollback:
		if p.SetValue != "" {
			return fmt.Sprintf("rollback(%s -> %s, value=%q)", p.Class, p.SetKeyPrefix, p.SetValue)
		}
		return fmt.Sprintf("rollback(%s -> %s)", p.Class, p.SetKeyPrefix)
	case ProdClamp:
		return fmt.Sprintf("clamp(%s: budget=%d)", p.Class, p.Budget)
	default:
		return p.Production.String()
	}
}

// classPredicate maps a degradation class (faultlab.ClassifyEvent's
// vocabulary) to the flow-rule predicate matching its poison
// signature.
func classPredicate(class string) (sdn.Predicate, bool) {
	switch {
	case class == "configuration/multicast":
		return sdn.Predicate{Kind: sdn.EventConfig, KeyPrefix: "multicast."}, true
	case class == "configuration":
		return sdn.Predicate{Kind: sdn.EventConfig}, true
	case class == "network-event/mirror-vlan":
		return sdn.Predicate{Kind: sdn.EventNetwork, BroadcastOnly: true,
			MatchVlan: true, VlanID: faultlab.PoisonVLAN}, true
	case class == "network-event":
		return sdn.Predicate{Kind: sdn.EventNetwork}, true
	case strings.HasPrefix(class, "external-call/"):
		return sdn.Predicate{Kind: sdn.EventExternalCall,
			Service: strings.TrimPrefix(class, "external-call/")}, true
	case class == "hardware-reboot":
		return sdn.Predicate{Kind: sdn.EventHardwareReboot}, true
	}
	return sdn.Predicate{}, false
}

// slug flattens a class name into a rule-id fragment.
func slug(class string) string {
	return strings.NewReplacer("/", "-", ".", "-").Replace(class)
}

// uniqueID returns base, suffixed with the smallest counter that
// avoids colliding with an existing rule id.
func uniqueID(prog *sdn.Program, base string) string {
	used := make(map[string]bool, len(prog.Rules))
	for _, r := range prog.Rules {
		used[r.ID] = true
	}
	if !used[base] {
		return base
	}
	for n := 2; ; n++ {
		id := fmt.Sprintf("%s-%d", base, n)
		if !used[id] {
			return id
		}
	}
}

// Apply instantiates the patch against base, returning a new
// normalized, validated program. base is cloned, never mutated; a nil
// base starts from the empty program. Errors mean the patch is not
// applicable (reorder without two rules, rollback of a non-config
// class, zero clamp budget) — never a panic, and never an invalid
// program.
func (p Patch) Apply(base *sdn.Program) (*sdn.Program, error) {
	prog := base.Clone()
	priority := p.Priority
	if priority == 0 {
		priority = 10
	}
	switch p.Production {
	case ProdReorder:
		n := len(prog.Rules)
		if n < 2 {
			return nil, fmt.Errorf("repair: reorder needs at least 2 rules, program has %d", n)
		}
		i, j := mod(p.I, n), mod(p.J, n)
		if i == j {
			j = (i + 1) % n
		}
		if prog.Rules[i].Priority == prog.Rules[j].Priority {
			prog.Rules[i].Priority++
		} else {
			prog.Rules[i].Priority, prog.Rules[j].Priority =
				prog.Rules[j].Priority, prog.Rules[i].Priority
		}
	case ProdGuard:
		pred, ok := classPredicate(p.Class)
		if !ok {
			return nil, fmt.Errorf("repair: no poison predicate for class %q", p.Class)
		}
		rw := sdn.Rewrite{StripVlan: p.StripVlan, SetValue: p.SetValue}
		if rw == (sdn.Rewrite{}) {
			return nil, fmt.Errorf("repair: guard for %q has an empty rewrite", p.Class)
		}
		prog.Rules = append(prog.Rules, sdn.Rule{
			ID:       uniqueID(prog, "guard-"+slug(p.Class)),
			Priority: priority,
			Match:    pred,
			Action:   sdn.ActRewrite,
			Rewrite:  rw,
		})
	case ProdRollback:
		pred, ok := classPredicate(p.Class)
		if !ok {
			return nil, fmt.Errorf("repair: no poison predicate for class %q", p.Class)
		}
		if pred.KeyPrefix == "" {
			return nil, fmt.Errorf("repair: rollback targets config pushes; class %q has no key prefix", p.Class)
		}
		if p.SetKeyPrefix == "" || strings.HasPrefix(p.SetKeyPrefix, pred.KeyPrefix) {
			return nil, fmt.Errorf("repair: rollback prefix %q must be non-empty and leave the poison prefix %q", p.SetKeyPrefix, pred.KeyPrefix)
		}
		prog.Rules = append(prog.Rules, sdn.Rule{
			ID:       uniqueID(prog, "rollback-"+slug(p.Class)),
			Priority: priority,
			Match:    pred,
			Action:   sdn.ActRewrite,
			Rewrite:  sdn.Rewrite{SetKeyPrefix: p.SetKeyPrefix, SetValue: p.SetValue},
		})
	case ProdClamp:
		pred, ok := classPredicate(p.Class)
		if !ok {
			return nil, fmt.Errorf("repair: no poison predicate for class %q", p.Class)
		}
		if p.Budget < 1 {
			return nil, fmt.Errorf("repair: clamp budget %d < 1 (a zero budget is a shed, not a repair)", p.Budget)
		}
		prog.Rules = append(prog.Rules, sdn.Rule{
			ID:          uniqueID(prog, "clamp-"+slug(p.Class)),
			Priority:    priority,
			Match:       pred,
			Action:      sdn.ActClamp,
			ClampBudget: p.Budget,
		})
	default:
		return nil, fmt.Errorf("repair: unknown production %d", int(p.Production))
	}
	prog.Normalize()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("repair: patch %s produced an invalid program: %w", p, err)
	}
	return prog, nil
}

// mod is a non-negative modulus.
func mod(v, n int) int {
	m := v % n
	if m < 0 {
		m += n
	}
	return m
}

// SynthesizeCandidates enumerates the sketch grid for a shed class
// against the current base program, in a fixed order. The order is
// deliberately learner-neutral — the cheap clamp sketches come first
// — so the failure-model ranking, not enumeration luck, decides which
// candidate burns the first full-campaign validation.
func SynthesizeCandidates(class string, base *sdn.Program) []Patch {
	var out []Patch
	add := func(p Patch) {
		p.Class = class
		out = append(out, p)
	}
	for _, b := range []int{1, 2, 4} {
		add(Patch{Production: ProdClamp, Budget: b})
	}
	switch {
	case strings.HasPrefix(class, "configuration"):
		for _, v := range []string{"0", "disabled"} {
			add(Patch{Production: ProdGuard, SetValue: v})
		}
		for _, pfx := range []string{"app.quarantine.", "app.mc."} {
			for _, v := range []string{"", "0"} {
				add(Patch{Production: ProdRollback, SetKeyPrefix: pfx, SetValue: v})
			}
		}
	case strings.HasPrefix(class, "network-event"):
		add(Patch{Production: ProdGuard, StripVlan: true})
	}
	if base != nil {
		for i := 0; i+1 < len(base.Rules) && i < 2; i++ {
			add(Patch{Production: ProdReorder, I: i, J: i + 1})
		}
	}
	return out
}
