package repair

import (
	"testing"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/sdn"
)

// FuzzRepairPatch hammers Patch.Apply with arbitrary hole fillings:
// whatever the sketch parameters, application must never panic, must
// never mutate the base program, and every successfully patched
// program must stay well-formed and apply cleanly over a
// representative event mix.
func FuzzRepairPatch(f *testing.F) {
	classes := append(faultlab.DeterministicPoisonClasses(),
		"configuration", "network-event", "external-call/etcd", "bogus/class", "")
	f.Add(int64(3), uint8(0), 0, 1, false, "", "", 0, 0)
	f.Add(int64(0), uint8(1), -3, 7, true, "0", "app.quarantine.", 2, 10)
	f.Add(int64(2), uint8(2), 1, 1, false, "disabled", "multicast.loop", -1, -5)
	f.Add(int64(4), uint8(3), 1 << 30, -(1 << 30), true, "x", "", 1, 1<<20)
	f.Add(int64(9), uint8(200), 0, 0, false, "", "q.", 1, 3)
	f.Fuzz(func(t *testing.T, classIdx int64, prod uint8, i, j int, strip bool, setValue, setPrefix string, budget, priority int) {
		base := twoRuleBase()
		baseFP := base.Fingerprint()
		patch := Patch{
			Production:   Production(prod),
			Class:        classes[int(classIdx%int64(len(classes))+int64(len(classes)))%len(classes)],
			I:            i,
			J:            j,
			StripVlan:    strip,
			SetValue:     setValue,
			SetKeyPrefix: setPrefix,
			Budget:       budget,
			Priority:     priority,
		}
		prog, err := patch.Apply(base)
		if base.Fingerprint() != baseFP {
			t.Fatalf("Apply mutated the base program: patch %+v", patch)
		}
		if err != nil {
			return
		}
		if verr := prog.Validate(); verr != nil {
			t.Fatalf("patch %+v produced invalid program: %v", patch, verr)
		}
		events := []sdn.Event{
			{Kind: sdn.EventConfig, Key: "multicast.group1", Value: "225"},
			{Kind: sdn.EventConfig, Key: "vlan.zone3", Value: "140"},
			{Kind: sdn.EventExternalCall, Service: "atomix"},
			{Kind: sdn.EventExternalCall, Service: "influxdb"},
			{Kind: sdn.EventHardwareReboot, DPID: 2},
			packetEvent(sdn.Packet{EthSrc: 1, EthDst: 2, EthType: 0x0800}),
			packetEvent(sdn.Packet{EthSrc: 1, EthDst: sdn.BroadcastMAC, EthType: 0x0806}),
			packetEvent(sdn.Packet{EthSrc: 1, EthDst: sdn.BroadcastMAC,
				EthType: 0x0806, VlanID: faultlab.PoisonVLAN}),
			{Kind: sdn.EventNetwork}, // no frame attached
			{},
		}
		// Two incarnations: clamp counters must survive resets.
		for pass := 0; pass < 2; pass++ {
			prog.NewIncarnation()
			for _, ev := range events {
				out, verdict := prog.Apply(ev)
				if verdict == sdn.VerdictRewritten {
					if _, v2 := prog.Apply(out); v2 == sdn.VerdictRewritten && out.Kind == sdn.EventConfig {
						// A rewrite must be at a fixed point for config keys —
						// otherwise a rollback chain could loop forever.
						if out2, _ := prog.Apply(out); out2.Key != out.Key {
							t.Fatalf("patch %+v rewrites its own output: %q -> %q", patch, out.Key, out2.Key)
						}
					}
				}
			}
		}
	})
}
