package repair

import (
	"bytes"
	"strings"
	"testing"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/metrics"
	"sdnbugs/internal/sdn"
)

// twoRuleBase is a small valid program for grammar tests.
func twoRuleBase() *sdn.Program {
	return sdn.NewProgram(
		sdn.Rule{ID: "cfg", Priority: 5,
			Match:  sdn.Predicate{Kind: sdn.EventConfig, KeyPrefix: "multicast."},
			Action: sdn.ActRewrite, Rewrite: sdn.Rewrite{SetValue: "1"}},
		sdn.Rule{ID: "ext", Priority: 3,
			Match:  sdn.Predicate{Kind: sdn.EventExternalCall, Service: "atomix"},
			Action: sdn.ActClamp, ClampBudget: 2},
	)
}

// TestPatchApplyGrammar drives every grammar production through
// Apply, success and failure paths alike.
func TestPatchApplyGrammar(t *testing.T) {
	tests := []struct {
		name    string
		patch   Patch
		base    *sdn.Program
		wantErr bool
		check   func(t *testing.T, prog *sdn.Program)
	}{
		{
			name:  "reorder swaps priorities",
			patch: Patch{Production: ProdReorder, I: 0, J: 1},
			base:  twoRuleBase(),
			check: func(t *testing.T, prog *sdn.Program) {
				// Normalize keeps priority-descending order, so the swap
				// shows as the clamp rule now leading.
				if prog.Rules[0].ID != "ext" || prog.Rules[0].Priority != 5 {
					t.Fatalf("after reorder, rules = %+v", prog.Rules)
				}
			},
		},
		{
			name:    "reorder needs two rules",
			patch:   Patch{Production: ProdReorder},
			base:    sdn.NewProgram(),
			wantErr: true,
		},
		{
			name:  "guard strip-vlan rewrites tagged broadcasts",
			patch: Patch{Production: ProdGuard, Class: "network-event/mirror-vlan", StripVlan: true},
			check: func(t *testing.T, prog *sdn.Program) {
				ev := packetEvent(sdn.Packet{EthSrc: 1, EthDst: sdn.BroadcastMAC,
					EthType: 0x0806, VlanID: faultlab.PoisonVLAN})
				out, verdict := prog.Apply(ev)
				if verdict != sdn.VerdictRewritten {
					t.Fatalf("verdict = %v, want rewritten", verdict)
				}
				pkt, ok := packetOf(out)
				if !ok || pkt.VlanID != 0 || !pkt.IsBroadcast() {
					t.Fatalf("rewritten frame = %+v (ok=%v)", pkt, ok)
				}
				// Untagged broadcasts pass untouched.
				if _, v := prog.Apply(packetEvent(sdn.Packet{EthSrc: 1,
					EthDst: sdn.BroadcastMAC, EthType: 0x0806})); v != sdn.VerdictPass {
					t.Fatalf("untagged broadcast verdict = %v, want pass", v)
				}
			},
		},
		{
			name:    "guard with empty rewrite",
			patch:   Patch{Production: ProdGuard, Class: "network-event/mirror-vlan"},
			wantErr: true,
		},
		{
			name:    "guard for unknown class",
			patch:   Patch{Production: ProdGuard, Class: "no-such-class", StripVlan: true},
			wantErr: true,
		},
		{
			name:  "rollback re-targets the poison prefix",
			patch: Patch{Production: ProdRollback, Class: "configuration/multicast", SetKeyPrefix: "app.quarantine."},
			check: func(t *testing.T, prog *sdn.Program) {
				out, verdict := prog.Apply(sdn.Event{Kind: sdn.EventConfig,
					Key: "multicast.group3", Value: "225"})
				if verdict != sdn.VerdictRewritten || out.Key != "app.quarantine.group3" {
					t.Fatalf("rollback gave key %q verdict %v", out.Key, verdict)
				}
				// Healthy config keys pass untouched.
				if _, v := prog.Apply(sdn.Event{Kind: sdn.EventConfig,
					Key: "vlan.zone1", Value: "7"}); v != sdn.VerdictPass {
					t.Fatalf("healthy config verdict = %v, want pass", v)
				}
			},
		},
		{
			name:    "rollback of a keyless class",
			patch:   Patch{Production: ProdRollback, Class: "hardware-reboot", SetKeyPrefix: "app.quarantine."},
			wantErr: true,
		},
		{
			name:    "rollback into the poison prefix loops",
			patch:   Patch{Production: ProdRollback, Class: "configuration/multicast", SetKeyPrefix: "multicast.x"},
			wantErr: true,
		},
		{
			name:    "rollback with empty prefix",
			patch:   Patch{Production: ProdRollback, Class: "configuration/multicast"},
			wantErr: true,
		},
		{
			name:  "clamp admits budget then drops, resets per incarnation",
			patch: Patch{Production: ProdClamp, Class: "hardware-reboot", Budget: 2},
			check: func(t *testing.T, prog *sdn.Program) {
				ev := sdn.Event{Kind: sdn.EventHardwareReboot, DPID: 9}
				verdicts := []sdn.Verdict{}
				for i := 0; i < 3; i++ {
					_, v := prog.Apply(ev)
					verdicts = append(verdicts, v)
				}
				want := []sdn.Verdict{sdn.VerdictPass, sdn.VerdictPass, sdn.VerdictDropped}
				for i := range want {
					if verdicts[i] != want[i] {
						t.Fatalf("clamp verdicts = %v, want %v", verdicts, want)
					}
				}
				prog.NewIncarnation()
				if _, v := prog.Apply(ev); v != sdn.VerdictPass {
					t.Fatalf("clamp budget not reset on new incarnation: %v", v)
				}
			},
		},
		{
			name:    "clamp with zero budget",
			patch:   Patch{Production: ProdClamp, Class: "hardware-reboot"},
			wantErr: true,
		},
		{
			name:    "unknown production",
			patch:   Patch{Production: numProductions, Class: "hardware-reboot"},
			wantErr: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			baseFP := tc.base.Fingerprint()
			prog, err := tc.patch.Apply(tc.base)
			if tc.base.Fingerprint() != baseFP {
				t.Fatal("Apply mutated the base program")
			}
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Apply succeeded, want error (got %d rules)", len(prog.Rules))
				}
				return
			}
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if verr := prog.Validate(); verr != nil {
				t.Fatalf("patched program invalid: %v", verr)
			}
			if tc.check != nil {
				tc.check(t, prog)
			}
		})
	}
}

func TestSynthesizeCandidatesShape(t *testing.T) {
	// Clamps lead for every class (learner-neutral order); class-shaped
	// sketches follow; reorders only appear with a multi-rule base.
	for _, class := range faultlab.DeterministicPoisonClasses() {
		cands := SynthesizeCandidates(class, nil)
		if len(cands) < 3 {
			t.Fatalf("%s: only %d candidates", class, len(cands))
		}
		for i := 0; i < 3; i++ {
			if cands[i].Production != ProdClamp {
				t.Fatalf("%s: candidate %d is %v, want leading clamps", class, i, cands[i].Production)
			}
			if cands[i].Class != class {
				t.Fatalf("%s: candidate class %q", class, cands[i].Class)
			}
		}
	}
	config := SynthesizeCandidates("configuration/multicast", nil)
	var guards, rollbacks int
	for _, c := range config {
		switch c.Production {
		case ProdGuard:
			guards++
		case ProdRollback:
			rollbacks++
		}
	}
	if guards == 0 || rollbacks == 0 {
		t.Fatalf("config grid missing guard (%d) or rollback (%d) sketches", guards, rollbacks)
	}
	network := SynthesizeCandidates("network-event/mirror-vlan", nil)
	stripVlan := false
	for _, c := range network {
		if c.Production == ProdGuard && c.StripVlan {
			stripVlan = true
		}
	}
	if !stripVlan {
		t.Fatal("network grid missing the strip-vlan guard")
	}
	withBase := SynthesizeCandidates("hardware-reboot", twoRuleBase())
	reorders := 0
	for _, c := range withBase {
		if c.Production == ProdReorder {
			reorders++
		}
	}
	if reorders == 0 {
		t.Fatal("no reorder sketches over a two-rule base")
	}
}

// TestRepairEndToEnd runs the full loop at the canonical seed: at
// least one taxonomy category must repair end-to-end, availability
// must rise, nothing may regress, no lifted shed may re-shed — and
// the repair counters must tell the same story.
func TestRepairEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	rep, err := Run(Config{Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	repairedCats := 0
	for _, r := range rep.Rates {
		if r.Repaired > 0 {
			repairedCats++
		}
	}
	if repairedCats < 1 {
		t.Fatalf("no taxonomy category repaired: %+v", rep.Rates)
	}
	if len(rep.Lifted) == 0 {
		t.Fatal("no shed lifted")
	}
	if len(rep.ReShed) != 0 {
		t.Fatalf("lifted classes re-shed: %v", rep.ReShed)
	}
	if rep.Epoch2.Availability <= rep.Epoch1.Availability {
		t.Fatalf("availability did not improve: %.4f -> %.4f",
			rep.Epoch1.Availability, rep.Epoch2.Availability)
	}
	if len(rep.Final.Regressions) != 0 {
		t.Fatalf("composed program regressed checks: %v", rep.Final.Regressions)
	}
	snap := reg.Snapshot()
	if snap.Counters["repair_candidates_generated_total"] == 0 ||
		snap.Counters["repair_candidates_validated_total"] == 0 ||
		snap.Counters["repair_candidates_rejected_total"] == 0 {
		t.Fatalf("repair counters incomplete: %v", snap.Counters)
	}
	if got := snap.Counters["repair_sheds_lifted_total"]; got != uint64(len(rep.Lifted)) {
		t.Fatalf("repair_sheds_lifted_total = %d, want %d", got, len(rep.Lifted))
	}
	if snap.Histograms["repair_validation_wall_ms"].Count == 0 {
		t.Fatal("validation wall histogram empty")
	}
}

// TestFailingCandidateLeavesShed: a class whose whole sketch grid
// fails validation (the drifted external service — no event rewrite
// can fix the environment) must stay shed through epoch 2, with
// nothing lifted.
func TestFailingCandidateLeavesShed(t *testing.T) {
	rep, err := Run(Config{Seed: 1, Classes: []string{"external-call/influxdb"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Class != "external-call/influxdb" {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	cr := rep.Classes[0]
	if cr.Repaired {
		t.Fatalf("unrepairable class reported repaired via %s", cr.Patch)
	}
	if len(cr.Attempts) == 0 {
		t.Fatal("no candidates attempted")
	}
	for _, a := range cr.Attempts {
		if a.Outcome == "repaired" {
			t.Fatalf("attempt %+v claims repair on an unrepaired class", a)
		}
	}
	if len(rep.Lifted) != 0 {
		t.Fatalf("lifted %v with no repair", rep.Lifted)
	}
	found := false
	for _, c := range rep.Epoch2.ShedClasses {
		if c == "external-call/influxdb" {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed class missing from epoch-2 shed set: %v", rep.Epoch2.ShedClasses)
	}
}

// TestRunDeterministic: the repair report is byte-identical across
// runs at the same seed — no wall-clock, no map-order, no
// rand-without-seed anywhere in the loop.
func TestRunDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := Run(Config{Seed: 1, Events: 600})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("reports diverged at fixed seed:\n%s\n----\n%s", a, b)
	}
	if !strings.Contains(string(a), "\"seed\": 1") {
		t.Fatalf("report missing seed: %s", a)
	}
}

// TestLiftWithoutRepairResheds exercises the lifecycle contract on
// the real campaign session: lifting a shed with no program installed
// re-exposes the poison, and the supervisor deterministically sheds
// the class again in the next epoch.
func TestLiftWithoutRepairResheds(t *testing.T) {
	sess, err := faultlab.NewSession(faultlab.CampaignConfig{
		Seed: 1, Events: 600, Supervised: true, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sess.PlayEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.ShedClasses) == 0 {
		t.Fatal("epoch 1 shed nothing; scenario needs a shed class")
	}
	class := r1.ShedClasses[0]
	if !sess.Sup.LiftShed(class) {
		t.Fatalf("LiftShed(%s) refused", class)
	}
	r2, err := sess.PlayEpoch()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range r2.ShedClasses {
		if c == class {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s not re-shed after unrepaired lift: %v", class, r2.ShedClasses)
	}
}
