package repair

// The repair loop. Run plays a supervised campaign epoch until the
// supervisor sheds its deterministic poison classes, then for each
// shed class (in shed order): synthesize candidate programs from the
// repair grammar, rank them with a failure model trained on a
// harness-labeled schedule corpus, replay the class's ddmin minimal
// reproducer against the likely-healthy candidates, validate the
// survivors with the full fault-injection campaign, and — only when a
// candidate passes everything — lift the shed on the live session and
// play a second epoch to measure the repaired availability. Classes
// with no passing candidate stay shed: the loop degrades gracefully
// to exactly the E22 behavior it started from.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/metrics"
	"sdnbugs/internal/openflow"
	"sdnbugs/internal/perfuzz"
	"sdnbugs/internal/sdn"
)

// Config parameterizes one repair-loop run.
type Config struct {
	Seed int64
	// Events is the campaign schedule length per epoch (default 1500).
	Events int
	// CheckpointEvery is the supervised checkpoint cadence (default 64).
	CheckpointEvery int
	// MaxCandidates bounds full validations (reproducer replay +
	// campaign) per shed class (default 8) — the ranking decides which
	// candidates get them.
	MaxCandidates int
	// ShrinkBudget bounds ddmin evaluations per reproducer (default 200).
	ShrinkBudget int
	// Classes, when non-empty, restricts repair attempts to these shed
	// classes (others stay shed without an attempt).
	Classes []string
	// Metrics, when set, receives repair counters and the
	// validation-wall histogram. Purely observational — reports stay
	// byte-identical.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 1500
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 200
	}
	return c
}

func (c Config) count(name string) {
	if c.Metrics != nil {
		c.Metrics.Counter(name).Inc()
	}
}

func (c Config) observe(name string, v float64) {
	if c.Metrics != nil {
		c.Metrics.Histogram(name).Observe(v)
	}
}

// EpochSummary condenses one campaign epoch of the live session.
type EpochSummary struct {
	Offered      int      `json:"offered"`
	Processed    int      `json:"processed"`
	Shed         int      `json:"shed"`
	Availability float64  `json:"availability"`
	ShedClasses  []string `json:"shed_classes"`
}

// Attempt is one ranked candidate's fate.
type Attempt struct {
	Rank  int    `json:"rank"`
	Patch string `json:"patch"`
	// PredictedDegraded is the failure model's vote on the candidate's
	// projected reproducer schedule.
	PredictedDegraded bool `json:"predicted_degraded"`
	// Outcome is "repaired", "invalid", "rejected-reproducer",
	// "rejected-campaign", or "skipped-budget".
	Outcome      string   `json:"outcome"`
	Regressions  []string `json:"regressions,omitempty"`
	Availability float64  `json:"availability,omitempty"`
}

// ClassRepair is the per-class repair record.
type ClassRepair struct {
	Class    string `json:"class"`
	Category string `json:"category"`
	// Candidates is the synthesized sketch-grid size.
	Candidates int `json:"candidates"`
	// ReproducerLen is the ddmin minimal reproducer's gene count (0 =
	// the class degrades silently and only the campaign can judge it).
	ReproducerLen   int       `json:"reproducer_len"`
	ReproducerClass string    `json:"reproducer_class,omitempty"`
	Attempts        []Attempt `json:"attempts"`
	Repaired        bool      `json:"repaired"`
	Patch           string    `json:"patch,omitempty"`
}

// CategoryRate is the NetRep-style repair rate for one taxonomy
// trigger category.
type CategoryRate struct {
	Category string  `json:"category"`
	Shed     int     `json:"shed"`
	Repaired int     `json:"repaired"`
	Rate     float64 `json:"rate"`
}

// LearnerInfo records the failure model behind the ranking.
type LearnerInfo struct {
	CorpusSize int  `json:"corpus_size"`
	Trained    bool `json:"trained"`
}

// FinalSummary is the composed program's full-campaign validation.
type FinalSummary struct {
	Availability       float64  `json:"availability"`
	Regressions        []string `json:"regressions"`
	ShedClasses        []string `json:"shed_classes"`
	ProgramRules       int      `json:"program_rules"`
	ProgramFingerprint string   `json:"program_fingerprint"`
}

// Report is the repair loop's deterministic output: every field is
// logical (counts, classes, availabilities), no wall-clock anywhere,
// so the same seed yields byte-identical JSON.
type Report struct {
	Seed   int64 `json:"seed"`
	Events int   `json:"events"`
	// ShedOrder is the order the supervisor shed classes in epoch 1 —
	// the order repairs are attempted in.
	ShedOrder []string      `json:"shed_order"`
	Epoch1    EpochSummary  `json:"epoch1"`
	Epoch2    EpochSummary  `json:"epoch2"`
	Learner   LearnerInfo   `json:"learner"`
	Classes   []ClassRepair `json:"classes"`
	// Rates is the repair rate by taxonomy trigger category.
	Rates []CategoryRate `json:"rates"`
	Final FinalSummary   `json:"final"`
	// Lifted lists the sheds the loop lifted; ReShed lists lifted
	// classes the supervisor shed again in epoch 2 (must stay empty —
	// a repair that doesn't hold is no repair).
	Lifted []string `json:"lifted"`
	ReShed []string `json:"re_shed"`
}

// JSON renders the report as stable indented JSON.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// category extracts the taxonomy trigger category from a degradation
// class ("external-call/atomix" → "external-call").
func category(class string) string {
	if i := strings.IndexByte(class, '/'); i >= 0 {
		return class[:i]
	}
	return class
}

func summarize(r faultlab.CampaignResult) EpochSummary {
	return EpochSummary{
		Offered:      r.Offered,
		Processed:    r.Processed,
		Shed:         r.Shed,
		Availability: r.EventAvailability(),
		ShedClasses:  append([]string{}, r.ShedClasses...),
	}
}

// epochDelta isolates the second epoch from cumulative session
// results (counters are monotonic; ShedClasses is the live set).
func epochDelta(before, after faultlab.CampaignResult) EpochSummary {
	s := EpochSummary{
		Offered:     after.Offered - before.Offered,
		Processed:   after.Processed - before.Processed,
		Shed:        after.Shed - before.Shed,
		ShedClasses: append([]string{}, after.ShedClasses...),
	}
	if s.Offered > 0 {
		s.Availability = float64(s.Processed) / float64(s.Offered)
	} else {
		s.Availability = 1
	}
	return s
}

// Run executes the full repair loop at one seed.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	ccfg := faultlab.CampaignConfig{
		Seed:            cfg.Seed,
		Events:          cfg.Events,
		Supervised:      true,
		CheckpointEvery: cfg.CheckpointEvery,
		Metrics:         cfg.Metrics,
	}

	// Epoch 1: let the supervisor shed. OnShed records shed order — the
	// repair queue.
	var shedOrder []string
	scfg := ccfg
	scfg.OnShed = func(class string) { shedOrder = append(shedOrder, class) }
	sess, err := faultlab.NewSession(scfg)
	if err != nil {
		return Report{}, err
	}
	r1, err := sess.PlayEpoch()
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Seed:      cfg.Seed,
		Events:    cfg.Events,
		ShedOrder: append([]string{}, shedOrder...),
		Epoch1:    summarize(r1),
		Lifted:    []string{},
		ReShed:    []string{},
	}

	// The acceptance gate: full campaigns against the unpatched
	// shed-mode baseline.
	validator, err := faultlab.NewValidator(ccfg)
	if err != nil {
		return Report{}, err
	}

	// The ranking brain: a failure model over harness-labeled
	// schedules. Training failure (degenerate corpus) downgrades
	// ranking to synthesis order — the loop still validates.
	model, corpusSize, err := trainModel(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Learner = LearnerInfo{CorpusSize: corpusSize, Trained: model != nil}

	targets := shedOrder
	if len(cfg.Classes) > 0 {
		want := make(map[string]bool, len(cfg.Classes))
		for _, c := range cfg.Classes {
			want[c] = true
		}
		targets = targets[:0:0]
		for _, c := range shedOrder {
			if want[c] {
				targets = append(targets, c)
			}
		}
	}

	// Repair classes in shed order, composing winners: each class is
	// patched on top of the programs that already repaired its
	// predecessors, so the final program is validated as a whole.
	var composed *sdn.Program
	var repaired []string
	for _, class := range targets {
		cr, winner, err := repairClass(cfg, validator, model, class, composed)
		if err != nil {
			return Report{}, err
		}
		rep.Classes = append(rep.Classes, cr)
		if cr.Repaired {
			composed = winner
			repaired = append(repaired, class)
		}
	}

	// Final gate: the composed program re-validated as one unit.
	if composed != nil {
		v, err := validator.Validate(composed, "")
		if err != nil {
			return Report{}, err
		}
		rep.Final = FinalSummary{
			Availability:       v.PatchedAvailability,
			Regressions:        append([]string{}, v.Regressions...),
			ShedClasses:        append([]string{}, v.ShedClasses...),
			ProgramRules:       len(composed.Rules),
			ProgramFingerprint: composed.Fingerprint(),
		}
	} else {
		rep.Final = FinalSummary{
			Availability:       r1.EventAvailability(),
			Regressions:        []string{},
			ShedClasses:        append([]string{}, r1.ShedClasses...),
			ProgramFingerprint: (*sdn.Program)(nil).Fingerprint(),
		}
	}

	// Install the program and lift the repaired sheds on the *live*
	// session — the same supervisor that shed them — then play epoch 2
	// against the identical schedule to measure repaired availability.
	sess.SetProgram(composed)
	for _, class := range repaired {
		if sess.Sup.LiftShed(class) {
			rep.Lifted = append(rep.Lifted, class)
			cfg.count("repair_sheds_lifted_total")
		}
	}
	r2, err := sess.PlayEpoch()
	if err != nil {
		return Report{}, err
	}
	rep.Epoch2 = epochDelta(r1, r2)
	for _, class := range rep.Lifted {
		for _, c := range r2.ShedClasses {
			if c == class {
				rep.ReShed = append(rep.ReShed, class)
			}
		}
	}

	// NetRep-style repair rate by taxonomy trigger category.
	byCat := map[string]*CategoryRate{}
	var cats []string
	for _, class := range targets {
		cat := category(class)
		if byCat[cat] == nil {
			byCat[cat] = &CategoryRate{Category: cat}
			cats = append(cats, cat)
		}
		byCat[cat].Shed++
	}
	for _, class := range repaired {
		byCat[category(class)].Repaired++
	}
	sort.Strings(cats)
	for _, cat := range cats {
		cr := byCat[cat]
		cr.Rate = float64(cr.Repaired) / float64(cr.Shed)
		rep.Rates = append(rep.Rates, *cr)
	}
	return rep, nil
}

// newHarness builds a reproducer harness bound to the campaign's full
// fault matrix and a candidate program. Fresh per program: the memo
// cache keys on the genome alone.
func newHarness(cfg Config, prog *sdn.Program) *perfuzz.Harness {
	h := perfuzz.NewHarness(cfg.Seed, cfg.Metrics)
	h.Suite = faultlab.CampaignSuite
	if prog != nil {
		h.Program = prog.Clone()
	}
	return h
}

// repairClass runs the synthesize → rank → validate loop for one shed
// class on top of the already-composed program.
func repairClass(cfg Config, validator *faultlab.Validator, model *perfuzz.FailureModel, class string, base *sdn.Program) (ClassRepair, *sdn.Program, error) {
	cr := ClassRepair{Class: class, Category: category(class), Attempts: []Attempt{}}

	// Minimal reproducer: replay the class's poison schedule under the
	// current program and ddmin-shrink it. A class that degrades
	// silently (byzantine divergence — no probe ever fires) has no
	// reproducer; its candidates go straight to campaign validation.
	seedG := seedGenome(class)
	var reproducer perfuzz.Genome
	if len(seedG) > 0 {
		h := newHarness(cfg, base)
		ev, err := h.Eval(seedG)
		if err != nil {
			return cr, nil, err
		}
		if ev.Degraded() {
			shrunk, _, _, err := perfuzz.Shrink(seedG, ev.Class, h, cfg.ShrinkBudget)
			if err != nil {
				return cr, nil, err
			}
			reproducer = shrunk
			cr.ReproducerLen = len(shrunk)
			cr.ReproducerClass = ev.Class
		}
	}
	rankOn := reproducer
	if len(rankOn) == 0 {
		rankOn = seedG
	}

	candidates := SynthesizeCandidates(class, base)
	cr.Candidates = len(candidates)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("repair_candidates_generated_total").Add(uint64(len(candidates)))
	}

	// Rank: instantiate every sketch, project the reproducer schedule
	// through the candidate program, and ask the failure model whether
	// the projection still degrades. Predicted-healthy candidates
	// validate first; the sort is stable, so synthesis order breaks
	// ties deterministically.
	type ranked struct {
		patch     Patch
		prog      *sdn.Program
		predicted bool
		invalid   error
	}
	rankedList := make([]ranked, 0, len(candidates))
	for _, c := range candidates {
		prog, err := c.Apply(base)
		rc := ranked{patch: c, prog: prog, invalid: err}
		if err == nil && model != nil {
			rc.predicted = model.PredictDegraded(projectGenome(prog, rankOn))
		}
		rankedList = append(rankedList, rc)
	}
	sort.SliceStable(rankedList, func(i, j int) bool {
		return !rankedList[i].predicted && rankedList[j].predicted
	})

	validated := 0
	for i, rc := range rankedList {
		attempt := Attempt{Rank: i + 1, Patch: rc.patch.String(), PredictedDegraded: rc.predicted}
		if rc.invalid != nil {
			attempt.Outcome = "invalid"
			cfg.count("repair_candidates_rejected_total")
			cr.Attempts = append(cr.Attempts, attempt)
			continue
		}
		if validated >= cfg.MaxCandidates {
			attempt.Outcome = "skipped-budget"
			cr.Attempts = append(cr.Attempts, attempt)
			continue
		}
		validated++
		start := time.Now()

		// Stage 1: the candidate must defuse the minimal reproducer
		// before it earns a full campaign.
		if len(reproducer) > 0 {
			h := newHarness(cfg, rc.prog)
			ev, err := h.Eval(reproducer)
			if err != nil {
				return cr, nil, err
			}
			if ev.Degraded() {
				cfg.observe("repair_validation_wall_ms", float64(time.Since(start).Milliseconds()))
				attempt.Outcome = "rejected-reproducer"
				cfg.count("repair_candidates_rejected_total")
				cr.Attempts = append(cr.Attempts, attempt)
				continue
			}
		}

		// Stage 2: the full campaign, judged against the shed-mode
		// baseline on the named checklist.
		v, err := validator.Validate(rc.prog, class)
		cfg.observe("repair_validation_wall_ms", float64(time.Since(start).Milliseconds()))
		if err != nil {
			return cr, nil, err
		}
		cfg.count("repair_candidates_validated_total")
		attempt.Regressions = append([]string{}, v.Regressions...)
		attempt.Availability = v.PatchedAvailability
		if v.Pass {
			attempt.Outcome = "repaired"
			cr.Attempts = append(cr.Attempts, attempt)
			cr.Repaired = true
			cr.Patch = rc.patch.String()
			return cr, rc.prog, nil
		}
		attempt.Outcome = "rejected-campaign"
		cfg.count("repair_candidates_rejected_total")
		cr.Attempts = append(cr.Attempts, attempt)
	}
	return cr, nil, nil
}

// trainModel labels a handcrafted schedule corpus on the campaign
// fault matrix and fits the failure model. The corpus is deliberately
// constructed, not sampled: under the campaign suite nearly every
// random schedule degrades (external-call drift, reboot stalls), so a
// random corpus would be all one label. Benign schedules mix the ops
// the suite tolerates; poison seeds and their prefixes supply the
// degraded side.
func trainModel(cfg Config) (*perfuzz.FailureModel, int, error) {
	h := newHarness(cfg, nil)
	benignOps := []perfuzz.Op{perfuzz.OpConfig, perfuzz.OpUnicast, perfuzz.OpBroadcast}
	var genomes []perfuzz.Genome
	for n := 1; n <= 8; n++ {
		g := make(perfuzz.Genome, n)
		for i := range g {
			g[i] = perfuzz.Gene{Op: benignOps[(i+n)%len(benignOps)], A: uint16(i), B: uint16(2 * i)}
		}
		genomes = append(genomes, g)
	}
	// Pure single-op benign runs give the model per-op resolution at
	// short lengths — the shape of a projected (rewritten) reproducer.
	for _, op := range benignOps {
		for _, n := range []int{1, 2, 4} {
			g := make(perfuzz.Genome, n)
			for i := range g {
				g[i] = perfuzz.Gene{Op: op, A: uint16(i), B: uint16(i)}
			}
			genomes = append(genomes, g)
		}
	}
	for _, class := range faultlab.DeterministicPoisonClasses() {
		seed := seedGenome(class)
		for n := 1; n <= len(seed); n += 2 {
			genomes = append(genomes, seed[:n])
		}
		// Benign prefix + poison tail: the mixed schedules the ranking
		// actually has to judge.
		mixed := append(append(perfuzz.Genome{}, genomes[2]...), seed...)
		genomes = append(genomes, mixed)
	}
	corpus := make([]perfuzz.Record, 0, len(genomes))
	for _, g := range genomes {
		e, err := h.Eval(g)
		if err != nil {
			return nil, 0, err
		}
		corpus = append(corpus, perfuzz.Record{Genome: g, Eval: e, Source: "repair-corpus"})
	}
	model, err := perfuzz.TrainFailureModel(corpus)
	if err != nil {
		// Degenerate corpus: fall back to synthesis-order validation.
		return nil, len(corpus), nil
	}
	return model, len(corpus), nil
}

// seedGenome is the densest schedule of a class's poison op — the
// starting point the shrinker minimizes and the ranking projects
// through candidate programs.
func seedGenome(class string) perfuzz.Genome {
	rep := func(op perfuzz.Op, n int, odd bool) perfuzz.Genome {
		g := make(perfuzz.Genome, n)
		for i := range g {
			a := uint16(2 * i)
			if odd {
				a++
			}
			g[i] = perfuzz.Gene{Op: op, A: a, B: uint16(i)}
		}
		return g
	}
	switch class {
	case "configuration/multicast":
		return rep(perfuzz.OpPoisonConfig, 6, false)
	case "external-call/influxdb":
		return rep(perfuzz.OpExternal, 6, false)
	case "external-call/atomix":
		return rep(perfuzz.OpExternal, 6, true)
	case "hardware-reboot":
		return rep(perfuzz.OpReboot, 6, false)
	case "network-event/mirror-vlan":
		return rep(perfuzz.OpMirrorBroadcast, 8, false)
	}
	return nil
}

// geneEvent renders a gene as the representative controller event the
// harness would offer for it. Wire-fault genes have no event form.
func geneEvent(g perfuzz.Gene) (sdn.Event, bool) {
	switch g.Op {
	case perfuzz.OpConfig:
		return sdn.Event{Kind: sdn.EventConfig,
			Key:   fmt.Sprintf("vlan.zone%d", int(g.A)%40),
			Value: fmt.Sprintf("%d", 100+int(g.B)%3000)}, true
	case perfuzz.OpPoisonConfig:
		return sdn.Event{Kind: sdn.EventConfig,
			Key: fmt.Sprintf("multicast.group%d", int(g.A)%8), Value: "225"}, true
	case perfuzz.OpExternal:
		svc := "influxdb"
		if g.A%2 == 1 {
			svc = "atomix"
		}
		return sdn.Event{Kind: sdn.EventExternalCall, Service: svc}, true
	case perfuzz.OpReboot:
		return sdn.Event{Kind: sdn.EventHardwareReboot, DPID: uint64(g.A)}, true
	case perfuzz.OpUnicast:
		return packetEvent(sdn.Packet{EthSrc: 1, EthDst: 2, EthType: 0x0800}), true
	case perfuzz.OpBroadcast:
		return packetEvent(sdn.Packet{EthSrc: 1, EthDst: sdn.BroadcastMAC, EthType: 0x0806}), true
	case perfuzz.OpMirrorBroadcast:
		return packetEvent(sdn.Packet{EthSrc: 1, EthDst: sdn.BroadcastMAC,
			EthType: 0x0806, VlanID: faultlab.PoisonVLAN}), true
	}
	return sdn.Event{}, false
}

// packetEvent wraps a frame in a packet-in network event.
func packetEvent(p sdn.Packet) sdn.Event {
	return sdn.Event{Kind: sdn.EventNetwork,
		Msg: &openflow.PacketIn{Data: sdn.EncodePacket(p)}}
}

// packetOf decodes the frame carried by a network event.
func packetOf(ev sdn.Event) (sdn.Packet, bool) {
	pi, ok := ev.Msg.(*openflow.PacketIn)
	if !ok {
		return sdn.Packet{}, false
	}
	pkt, err := sdn.DecodePacket(pi.Data)
	if err != nil {
		return sdn.Packet{}, false
	}
	return pkt, true
}

// eventOp classifies a (possibly rewritten) event back onto the
// genome op vocabulary.
func eventOp(ev sdn.Event, fallback perfuzz.Op) perfuzz.Op {
	switch ev.Kind {
	case sdn.EventConfig:
		if strings.HasPrefix(ev.Key, "multicast.") {
			return perfuzz.OpPoisonConfig
		}
		return perfuzz.OpConfig
	case sdn.EventExternalCall:
		return perfuzz.OpExternal
	case sdn.EventHardwareReboot:
		return perfuzz.OpReboot
	case sdn.EventNetwork:
		if pkt, ok := packetOf(ev); ok {
			switch {
			case pkt.IsBroadcast() && pkt.VlanID == faultlab.PoisonVLAN:
				return perfuzz.OpMirrorBroadcast
			case pkt.IsBroadcast():
				return perfuzz.OpBroadcast
			}
			return perfuzz.OpUnicast
		}
	}
	return fallback
}

// projectGenome simulates the candidate program over the schedule's
// representative events and re-expresses the surviving (possibly
// rewritten) events as a genome — the schedule the controller would
// actually see — for the failure model to judge. The projection is an
// approximation (pads and wire faults pass through untouched), which
// is exactly the point: the model triages cheaply, the campaign
// decides.
func projectGenome(prog *sdn.Program, g perfuzz.Genome) perfuzz.Genome {
	sim := prog.Clone()
	sim.NewIncarnation()
	out := make(perfuzz.Genome, 0, len(g))
	for _, gene := range g {
		ev, ok := geneEvent(gene)
		if !ok {
			out = append(out, gene)
			continue
		}
		res, verdict := sim.Apply(ev)
		if verdict == sdn.VerdictDropped {
			continue
		}
		gene.Op = eventOp(res, gene.Op)
		out = append(out, gene)
	}
	return out
}
