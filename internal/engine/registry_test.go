package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// stub builds a trivially-succeeding experiment.
func stub(id string, kind Kind) Experiment[int] {
	return Experiment[int]{ID: id, Title: "exp " + id, Kind: kind,
		Run: func(context.Context) (int, error) { return 0, nil }}
}

func newTestRegistry(t *testing.T, ids ...string) *Registry[int] {
	t.Helper()
	r := NewRegistry[int]()
	for _, id := range ids {
		if err := r.Register(stub(id, KindExperiment)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry[int]()
	if err := r.Register(stub("", KindExperiment)); !errors.Is(err, ErrRegister) {
		t.Errorf("empty id: err = %v, want ErrRegister", err)
	}
	if err := r.Register(Experiment[int]{ID: "E01"}); !errors.Is(err, ErrRegister) {
		t.Errorf("nil Run: err = %v, want ErrRegister", err)
	}
	if err := r.Register(stub("E01", KindExperiment)); err != nil {
		t.Fatal(err)
	}
	// Duplicate rejection is case-insensitive.
	if err := r.Register(stub("e01", KindAblation)); !errors.Is(err, ErrRegister) {
		t.Errorf("duplicate id: err = %v, want ErrRegister", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRegisterDefaultsKind(t *testing.T) {
	r := NewRegistry[int]()
	r.MustRegister(Experiment[int]{ID: "x1",
		Run: func(context.Context) (int, error) { return 0, nil }})
	e, ok := r.Lookup("X1")
	if !ok {
		t.Fatal("lookup failed")
	}
	if e.Kind != KindExperiment {
		t.Errorf("Kind = %q, want %q", e.Kind, KindExperiment)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister on a duplicate should panic")
		}
	}()
	r := newTestRegistry(t, "E01")
	r.MustRegister(stub("E01", KindExperiment))
}

func TestLookupNormalizesID(t *testing.T) {
	r := newTestRegistry(t, "E01", "E02")
	if _, ok := r.Lookup("  e02 "); !ok {
		t.Error("lookup should be case/space-insensitive")
	}
	if _, ok := r.Lookup("E99"); ok {
		t.Error("lookup of unknown id should fail")
	}
}

func TestSelectOrderAndDedup(t *testing.T) {
	r := newTestRegistry(t, "E01", "E02", "E03")
	// Selection order and duplicates don't matter: registration order wins.
	got, err := r.Select([]string{"e03", "E01", "e03"})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(got))
	for i, e := range got {
		ids[i] = e.ID
	}
	if want := []string{"E01", "E03"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("Select ids = %v, want %v", ids, want)
	}
}

func TestSelectEmptyIsAll(t *testing.T) {
	r := newTestRegistry(t, "E01", "E02")
	got, err := r.Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("empty Select = %d experiments, want 2", len(got))
	}
}

func TestSelectUnknownID(t *testing.T) {
	r := newTestRegistry(t, "E01")
	_, err := r.Select([]string{"E01", "E99"})
	if !errors.Is(err, ErrUnknownID) {
		t.Fatalf("err = %v, want ErrUnknownID", err)
	}
}

func TestOfKind(t *testing.T) {
	r := NewRegistry[int]()
	r.MustRegister(stub("E01", KindExperiment))
	r.MustRegister(stub("A01", KindAblation))
	r.MustRegister(stub("E02", KindExperiment))
	exps := r.OfKind(KindExperiment)
	if len(exps) != 2 || exps[0].ID != "E01" || exps[1].ID != "E02" {
		t.Errorf("OfKind(experiment) = %v", exps)
	}
	if abl := r.OfKind(KindAblation); len(abl) != 1 || abl[0].ID != "A01" {
		t.Errorf("OfKind(ablation) = %v", abl)
	}
}

func TestParseIDs(t *testing.T) {
	got := ParseIDs(" e02, E05 ,,a03 ")
	if want := []string{"E02", "E05", "A03"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseIDs = %v, want %v", got, want)
	}
	if got := ParseIDs(""); got != nil {
		t.Errorf("ParseIDs(\"\") = %v, want nil", got)
	}
}
