package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"context"
)

// PanicError records an experiment that panicked instead of returning.
// The runner converts panics into errored outcomes so one bad
// experiment cannot take down the whole batch (or, worse, a worker
// goroutine, wedging the pool).
type PanicError struct {
	// ID is the panicking experiment.
	ID string
	// Value is what was passed to panic.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: experiment %s panicked: %v", e.ID, e.Value)
}

// Outcome is one experiment's execution record: its result or error,
// how long it took, and how its paper-vs-measured checks went.
type Outcome[T any] struct {
	ID    string
	Title string
	Kind  Kind
	// Result is the zero value when Err is non-nil.
	Result T
	// Err is the run error, or the runner context's error for
	// experiments skipped after cancellation.
	Err error
	// Duration is the experiment's own wall-clock time.
	Duration time.Duration
	// Passed and Failed count the result's checks (via Runner.Checks;
	// both zero when no counter is configured or the run errored).
	Passed, Failed int
}

// OK reports whether the experiment ran without error and every
// check held.
func (o Outcome[T]) OK() bool { return o.Err == nil && o.Failed == 0 }

// EventType tags runner lifecycle events.
type EventType int

// Runner event types.
const (
	EventStart EventType = iota
	EventFinish
)

// Event is a start/finish notification streamed to Runner.OnEvent.
type Event struct {
	Type  EventType
	ID    string
	Title string
	// Index is the experiment's position in the submitted slice;
	// Total is the slice length.
	Index, Total int
	// Duration and Err are set on EventFinish only.
	Duration time.Duration
	Err      error
}

// Runner executes experiments on a bounded worker pool. Unlike a
// fail-fast loop it always produces one Outcome per submitted
// experiment: failures are recorded, not propagated mid-run.
//
// The zero value runs with GOMAXPROCS workers, no check counting and
// no event hook.
type Runner[T any] struct {
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallelism int
	// Checks, when set, counts a successful result's passed and
	// failed checks into its Outcome.
	Checks func(T) (passed, failed int)
	// OnEvent, when set, receives start/finish events. Calls are
	// serialized by the runner, so the hook needs no locking of its
	// own.
	OnEvent func(Event)
	// ExperimentTimeout bounds each experiment's wall-clock time when
	// positive: the experiment runs under a context.WithTimeout child
	// of the run context, and if it has not returned by the deadline
	// its outcome errors with context.DeadlineExceeded while the rest
	// of the batch keeps running. A wedged experiment that ignores its
	// context leaks one goroutine until it finishes on its own — the
	// price of not letting it wedge the whole batch. 0 means no bound.
	ExperimentTimeout time.Duration

	mu sync.Mutex
}

// Run executes the experiments and returns their outcomes in
// submission order regardless of completion order. Cancelling ctx
// stops new experiments from starting; already-running ones finish
// (or react to ctx themselves) and experiments never started carry
// the context's error as their Outcome.Err. The returned error is
// ctx.Err() after cancellation, nil otherwise — per-experiment
// failures live in the outcomes.
func (r *Runner[T]) Run(ctx context.Context, exps []Experiment[T]) (Run[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	outcomes := make([]Outcome[T], len(exps))
	start := time.Now()
	if len(exps) > 0 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					outcomes[i] = r.runOne(ctx, exps[i], i, len(exps))
				}
			}()
		}
		// Workers drain every job — runOne short-circuits once the
		// context is cancelled — so this send never wedges.
		for i := range exps {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	return Run[T]{Outcomes: outcomes, Wall: time.Since(start)}, ctx.Err()
}

// runOne executes a single experiment, emitting start/finish events.
func (r *Runner[T]) runOne(ctx context.Context, e Experiment[T], i, total int) Outcome[T] {
	out := Outcome[T]{ID: e.ID, Title: e.Title, Kind: e.Kind}
	r.emit(Event{Type: EventStart, ID: e.ID, Title: e.Title, Index: i, Total: total})
	begin := time.Now()
	if err := ctx.Err(); err != nil {
		out.Err = fmt.Errorf("engine: %s not started: %w", e.ID, err)
	} else if res, err := r.runBounded(ctx, e); err != nil {
		out.Err = err
	} else {
		out.Result = res
		if r.Checks != nil {
			out.Passed, out.Failed = r.Checks(res)
		}
	}
	out.Duration = time.Since(begin)
	r.emit(Event{Type: EventFinish, ID: e.ID, Title: e.Title, Index: i, Total: total,
		Duration: out.Duration, Err: out.Err})
	return out
}

// runBounded applies the runner's per-experiment timeout. Without one
// the experiment runs inline on the worker; with one it runs on its own
// goroutine so the worker can abandon it at the deadline (see the
// ExperimentTimeout doc for the leak trade-off).
func (r *Runner[T]) runBounded(ctx context.Context, e Experiment[T]) (T, error) {
	if r.ExperimentTimeout <= 0 {
		return runProtected(ctx, e)
	}
	tctx, cancel := context.WithTimeout(ctx, r.ExperimentTimeout)
	defer cancel()
	type result struct {
		res T
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := runProtected(tctx, e)
		done <- result{res, err}
	}()
	select {
	case out := <-done:
		return out.res, out.err
	case <-tctx.Done():
		var zero T
		return zero, fmt.Errorf("engine: %s abandoned after %v: %w", e.ID, r.ExperimentTimeout, tctx.Err())
	}
}

// runProtected invokes the experiment with panic recovery: a panic
// becomes a *PanicError carrying the panic value and stack, and the
// worker goroutine survives to run the remaining experiments.
func runProtected[T any](ctx context.Context, e Experiment[T]) (res T, err error) {
	defer func() {
		if v := recover(); v != nil {
			var zero T
			res, err = zero, &PanicError{ID: e.ID, Value: v, Stack: debug.Stack()}
		}
	}()
	return e.Run(ctx)
}

// emit serializes OnEvent calls across workers.
func (r *Runner[T]) emit(ev Event) {
	if r.OnEvent == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.OnEvent(ev)
}

// Run is a completed batch: per-experiment outcomes in submission
// order plus the batch's total wall-clock time.
type Run[T any] struct {
	Outcomes []Outcome[T]
	Wall     time.Duration
}

// Serial sums the per-experiment durations — what a one-worker run
// would roughly have cost.
func (r Run[T]) Serial() time.Duration {
	var total time.Duration
	for _, o := range r.Outcomes {
		total += o.Duration
	}
	return total
}

// Err returns the first per-experiment error in submission order,
// or nil when every experiment ran cleanly.
func (r Run[T]) Err() error {
	for _, o := range r.Outcomes {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// Results unwraps the outcomes into plain results, failing with the
// first error — the fail-fast view legacy callers expect.
func (r Run[T]) Results() ([]T, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]T, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Result
	}
	return out, nil
}

// Counts tallies outcomes: ok (ran, all checks held), failed (ran,
// some check did not hold), errored (did not produce a result).
func (r Run[T]) Counts() (ok, failed, errored int) {
	for _, o := range r.Outcomes {
		switch {
		case o.Err != nil:
			errored++
		case o.Failed > 0:
			failed++
		default:
			ok++
		}
	}
	return ok, failed, errored
}
