package engine

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testRun() Run[int] {
	return Run[int]{
		Wall: 30 * time.Millisecond,
		Outcomes: []Outcome[int]{
			{ID: "E01", Title: "one", Kind: KindExperiment, Duration: 10 * time.Millisecond, Passed: 3},
			{ID: "E02", Title: "two", Kind: KindExperiment, Duration: 40 * time.Millisecond, Passed: 2, Failed: 1},
			{ID: "A01", Title: "abl", Kind: KindAblation, Duration: 10 * time.Millisecond,
				Err: errors.New("exploded")},
		},
	}
}

func TestReportCountsAndSpeedup(t *testing.T) {
	rep := NewReport(testRun())
	ok, failed, errored := rep.Counts()
	if ok != 1 || failed != 1 || errored != 1 {
		t.Errorf("Counts = %d/%d/%d, want 1/1/1", ok, failed, errored)
	}
	if rep.Serial != 60*time.Millisecond {
		t.Errorf("Serial = %v, want 60ms", rep.Serial)
	}
	if got := rep.Speedup(); got < 1.9 || got > 2.1 {
		t.Errorf("Speedup = %v, want ~2.0", got)
	}
}

func TestReportSlowestN(t *testing.T) {
	rep := NewReport(testRun())
	slow := rep.SlowestN(2)
	if len(slow) != 2 || slow[0].ID != "E02" {
		t.Fatalf("SlowestN(2) = %v, want E02 first", slow)
	}
	// Ties keep submission order: E01 before A01.
	if slow[1].ID != "E01" {
		t.Errorf("SlowestN(2)[1] = %s, want E01", slow[1].ID)
	}
	// n larger than the run is clamped, and the report's own order is
	// untouched by sorting.
	if got := rep.SlowestN(99); len(got) != 3 {
		t.Errorf("SlowestN(99) = %d rows, want 3", len(got))
	}
	if rep.Timings[0].ID != "E01" {
		t.Errorf("Timings reordered: %v", rep.Timings)
	}
}

func TestReportStatusesAndFailures(t *testing.T) {
	rep := NewReport(testRun())
	want := []string{"ok", "FAIL", "ERROR"}
	for i, tm := range rep.Timings {
		if tm.Status() != want[i] {
			t.Errorf("Timings[%d].Status = %q, want %q", i, tm.Status(), want[i])
		}
	}
	fails := rep.Failures()
	if len(fails) != 2 {
		t.Fatalf("Failures = %v, want 2 entries", fails)
	}
	if !strings.Contains(fails[0], "E02") || !strings.Contains(fails[0], "1/3") {
		t.Errorf("check-failure line = %q", fails[0])
	}
	if !strings.Contains(fails[1], "exploded") {
		t.Errorf("error line = %q", fails[1])
	}
}

func TestReportSummaryAndTables(t *testing.T) {
	rep := NewReport(testRun())
	sum := rep.Summary()
	for _, frag := range []string{"3 experiments", "1 ok", "1 failed checks", "1 errored", "2.0x"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("Summary %q missing %q", sum, frag)
		}
	}
	tt := rep.TimingTable().RenderString()
	for _, frag := range []string{"E01", "E02", "A01", "ablation", "ERROR", "3/3", "2/3"} {
		if !strings.Contains(tt, frag) {
			t.Errorf("TimingTable missing %q:\n%s", frag, tt)
		}
	}
	st := rep.SlowestTable(2).RenderString()
	if !strings.Contains(st, "E02") || !strings.Contains(st, "66.7%") {
		t.Errorf("SlowestTable should attribute 40/60ms to E02:\n%s", st)
	}
}

func TestReportZeroWall(t *testing.T) {
	rep := NewReport(Run[int]{})
	if rep.Speedup() != 0 {
		t.Errorf("Speedup on empty run = %v, want 0", rep.Speedup())
	}
	if got := rep.SlowestTable(3).RenderString(); got == "" {
		t.Error("empty SlowestTable should still render a title")
	}
}
