package engine

import (
	"fmt"
	"sort"
	"time"

	"sdnbugs/internal/report"
)

// Timing is one experiment's row in a RunReport.
type Timing struct {
	ID       string
	Title    string
	Kind     Kind
	Duration time.Duration
	Passed   int
	Failed   int
	Err      error
}

// Status summarizes a timing row: "ok", "FAIL" (a check did not
// hold) or "ERROR" (no result produced).
func (t Timing) Status() string {
	switch {
	case t.Err != nil:
		return "ERROR"
	case t.Failed > 0:
		return "FAIL"
	default:
		return "ok"
	}
}

// RunReport is the observability view of a completed Run: where the
// wall-clock time went, which experiments dominated it, and what
// failed. Durations are measurements, not deterministic artifacts —
// render the report to stderr or logs, never into byte-compared
// output.
type RunReport struct {
	// Timings mirror the run's outcomes in submission order.
	Timings []Timing
	// Wall is the batch's end-to-end time; Serial sums the
	// per-experiment durations (the cpu-serial cost).
	Wall, Serial time.Duration
}

// NewReport builds a report from a completed run.
func NewReport[T any](run Run[T]) *RunReport {
	r := &RunReport{Wall: run.Wall, Serial: run.Serial()}
	r.Timings = make([]Timing, len(run.Outcomes))
	for i, o := range run.Outcomes {
		r.Timings[i] = Timing{ID: o.ID, Title: o.Title, Kind: o.Kind,
			Duration: o.Duration, Passed: o.Passed, Failed: o.Failed, Err: o.Err}
	}
	return r
}

// Counts tallies rows by status: ok, failed checks, errored.
func (r *RunReport) Counts() (ok, failed, errored int) {
	for _, t := range r.Timings {
		switch t.Status() {
		case "ERROR":
			errored++
		case "FAIL":
			failed++
		default:
			ok++
		}
	}
	return ok, failed, errored
}

// SlowestN returns up to n rows by descending duration (ties keep
// submission order).
func (r *RunReport) SlowestN(n int) []Timing {
	sorted := make([]Timing, len(r.Timings))
	copy(sorted, r.Timings)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Duration > sorted[j].Duration
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Speedup is serial time over wall time — ~1.0 for a sequential run,
// approaching the worker count under ideal parallelism.
func (r *RunReport) Speedup() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Serial) / float64(r.Wall)
}

// Summary is the one-line account: experiment count, wall vs serial
// time, speedup and the status tally.
func (r *RunReport) Summary() string {
	ok, failed, errored := r.Counts()
	return fmt.Sprintf("%d experiments in %s wall / %s serial (%.1fx); %d ok, %d failed checks, %d errored",
		len(r.Timings), fmtDur(r.Wall), fmtDur(r.Serial), r.Speedup(), ok, failed, errored)
}

// Failures describes every non-ok row, in submission order.
func (r *RunReport) Failures() []string {
	var out []string
	for _, t := range r.Timings {
		switch t.Status() {
		case "ERROR":
			out = append(out, fmt.Sprintf("%s: %v", t.ID, t.Err))
		case "FAIL":
			out = append(out, fmt.Sprintf("%s: %d/%d checks failed",
				t.ID, t.Failed, t.Passed+t.Failed))
		}
	}
	return out
}

// TimingTable renders per-experiment timings in submission order.
func (r *RunReport) TimingTable() *report.Table {
	t := &report.Table{Title: "Per-experiment timings",
		Headers: []string{"id", "kind", "duration", "checks", "status"}}
	for _, row := range r.Timings {
		_ = t.AddRow(row.ID, string(row.Kind), fmtDur(row.Duration),
			fmt.Sprintf("%d/%d", row.Passed, row.Passed+row.Failed), row.Status())
	}
	return t
}

// SlowestTable renders the slowest-n rows with their share of the
// serial time.
func (r *RunReport) SlowestTable(n int) *report.Table {
	t := &report.Table{Title: fmt.Sprintf("Slowest %d experiments", n),
		Headers: []string{"id", "duration", "share", "title"}}
	for _, row := range r.SlowestN(n) {
		share := 0.0
		if r.Serial > 0 {
			share = float64(row.Duration) / float64(r.Serial)
		}
		_ = t.AddRow(row.ID, fmtDur(row.Duration), report.Pct(share), row.Title)
	}
	return t
}

// fmtDur rounds a duration for display (10µs grain keeps sub-ms
// experiments legible without drowning rows in digits).
func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
