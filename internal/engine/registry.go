// Package engine turns the study's experiments into data: a Registry
// of runnable experiment descriptors, a concurrent Runner with a
// bounded worker pool, and a RunReport that accounts for where the
// wall-clock time went. The root package registers E01–E20 and
// A01–A07 here and every consumer — CLI, examples, benchmarks, tests
// — selects and executes them through the same engine.
//
// The engine is generic over the result type so it carries no
// dependency on the root package: the suite instantiates it with its
// ExperimentResult.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Kind distinguishes the paper's main experiments from the
// design-choice ablation studies.
type Kind string

// The two experiment kinds.
const (
	KindExperiment Kind = "experiment"
	KindAblation   Kind = "ablation"
)

// Experiment describes one runnable artifact reproduction. Run
// receives the runner's context and should abandon work when it is
// cancelled; experiments that ignore the context are still skipped by
// the Runner once cancellation is observed, they just cannot be
// interrupted mid-flight.
type Experiment[T any] struct {
	// ID is the stable identifier (e.g. "E07", "A03"). IDs are
	// normalized to upper case on registration.
	ID string
	// Title names the paper artifact the experiment reproduces.
	Title string
	// Kind is KindExperiment or KindAblation (defaults to
	// KindExperiment on registration).
	Kind Kind
	// Run produces the experiment's result.
	Run func(ctx context.Context) (T, error)
}

// Registration and selection failures.
var (
	ErrRegister  = errors.New("engine: register")
	ErrUnknownID = errors.New("engine: unknown experiment id")
)

// Registry holds experiments in registration order and resolves ID
// sets. Registration is not synchronized: register everything first,
// then share the registry freely — lookups and selection are
// read-only and safe for concurrent use.
type Registry[T any] struct {
	entries []Experiment[T]
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry[T any]() *Registry[T] {
	return &Registry[T]{index: make(map[string]int)}
}

// NormalizeID canonicalizes an experiment ID ("  e07 " → "E07").
func NormalizeID(id string) string {
	return strings.ToUpper(strings.TrimSpace(id))
}

// Register adds an experiment, rejecting empty IDs, nil runners, and
// duplicate IDs.
func (r *Registry[T]) Register(e Experiment[T]) error {
	id := NormalizeID(e.ID)
	if id == "" {
		return fmt.Errorf("%w: empty id", ErrRegister)
	}
	if e.Run == nil {
		return fmt.Errorf("%w: %s: nil Run", ErrRegister, id)
	}
	if _, dup := r.index[id]; dup {
		return fmt.Errorf("%w: duplicate id %s", ErrRegister, id)
	}
	if e.Kind == "" {
		e.Kind = KindExperiment
	}
	e.ID = id
	r.index[id] = len(r.entries)
	r.entries = append(r.entries, e)
	return nil
}

// MustRegister registers or panics — for wiring up a fixed set of
// built-in experiments where a failure is a programming error.
func (r *Registry[T]) MustRegister(e Experiment[T]) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Len reports the number of registered experiments.
func (r *Registry[T]) Len() int { return len(r.entries) }

// All returns every experiment in registration order.
func (r *Registry[T]) All() []Experiment[T] {
	out := make([]Experiment[T], len(r.entries))
	copy(out, r.entries)
	return out
}

// OfKind returns the experiments of one kind in registration order.
func (r *Registry[T]) OfKind(k Kind) []Experiment[T] {
	var out []Experiment[T]
	for _, e := range r.entries {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Lookup resolves one ID (case-insensitively).
func (r *Registry[T]) Lookup(id string) (Experiment[T], bool) {
	i, ok := r.index[NormalizeID(id)]
	if !ok {
		return Experiment[T]{}, false
	}
	return r.entries[i], true
}

// Select resolves an ID set into experiments in registration order —
// the order of ids does not matter and duplicates collapse. An empty
// set selects everything. Unknown IDs return ErrUnknownID naming
// every offender.
func (r *Registry[T]) Select(ids []string) ([]Experiment[T], error) {
	if len(ids) == 0 {
		return r.All(), nil
	}
	want := make(map[string]bool, len(ids))
	var unknown []string
	for _, id := range ids {
		id = NormalizeID(id)
		if id == "" {
			continue
		}
		if _, ok := r.index[id]; !ok {
			unknown = append(unknown, id)
			continue
		}
		want[id] = true
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("%w: %s (known: %s)",
			ErrUnknownID, strings.Join(unknown, ", "), r.idList())
	}
	var out []Experiment[T]
	for _, e := range r.entries {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	return out, nil
}

// idList renders the registered IDs for error messages.
func (r *Registry[T]) idList() string {
	ids := make([]string, len(r.entries))
	for i, e := range r.entries {
		ids[i] = e.ID
	}
	return strings.Join(ids, ",")
}

// ParseIDs splits a comma-separated ID list, trimming blanks — the
// CLI's "-experiments E02,e05" syntax.
func ParseIDs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if id := NormalizeID(part); id != "" {
			out = append(out, id)
		}
	}
	return out
}
