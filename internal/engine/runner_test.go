package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunnerOrderedResults(t *testing.T) {
	// Experiments finish out of order (later ones are faster) but
	// outcomes must come back in submission order.
	const n = 8
	exps := make([]Experiment[int], n)
	for i := range exps {
		i := i
		exps[i] = Experiment[int]{ID: fmt.Sprintf("E%02d", i), Kind: KindExperiment,
			Run: func(context.Context) (int, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * 10, nil
			}}
	}
	r := &Runner[int]{Parallelism: 4}
	run, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Outcomes) != n {
		t.Fatalf("outcomes = %d, want %d", len(run.Outcomes), n)
	}
	for i, o := range run.Outcomes {
		if o.ID != fmt.Sprintf("E%02d", i) || o.Result != i*10 {
			t.Errorf("outcome[%d] = {%s %d}, want {E%02d %d}", i, o.ID, o.Result, i, i*10)
		}
		if o.Err != nil {
			t.Errorf("outcome[%d] err = %v", i, o.Err)
		}
		if o.Duration <= 0 {
			t.Errorf("outcome[%d] duration = %v, want > 0", i, o.Duration)
		}
	}
	if run.Wall <= 0 || run.Serial() <= 0 {
		t.Errorf("wall = %v, serial = %v, want both > 0", run.Wall, run.Serial())
	}
}

func TestRunnerCollectsPartialFailures(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment[int]{
		{ID: "A", Run: func(context.Context) (int, error) { return 1, nil }},
		{ID: "B", Run: func(context.Context) (int, error) { return 0, boom }},
		{ID: "C", Run: func(context.Context) (int, error) { return 3, nil }},
	}
	r := &Runner[int]{Parallelism: 1}
	run, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike a fail-fast loop, C still ran.
	if run.Outcomes[2].Err != nil || run.Outcomes[2].Result != 3 {
		t.Errorf("C should run despite B failing: %+v", run.Outcomes[2])
	}
	if !errors.Is(run.Outcomes[1].Err, boom) {
		t.Errorf("B err = %v, want boom", run.Outcomes[1].Err)
	}
	if !errors.Is(run.Err(), boom) {
		t.Errorf("Run.Err = %v, want boom", run.Err())
	}
	if _, err := run.Results(); !errors.Is(err, boom) {
		t.Errorf("Results err = %v, want boom", err)
	}
	ok, failed, errored := run.Counts()
	if ok != 2 || failed != 0 || errored != 1 {
		t.Errorf("Counts = %d/%d/%d, want 2/0/1", ok, failed, errored)
	}
}

func TestRunnerChecksCounting(t *testing.T) {
	exps := []Experiment[int]{
		{ID: "A", Run: func(context.Context) (int, error) { return 3, nil }},
	}
	r := &Runner[int]{Parallelism: 1, Checks: func(v int) (int, int) { return v, v + 1 }}
	run, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	o := run.Outcomes[0]
	if o.Passed != 3 || o.Failed != 4 {
		t.Errorf("checks = %d/%d, want 3/4", o.Passed, o.Failed)
	}
	if o.OK() {
		t.Error("outcome with failed checks must not be OK")
	}
	ok, failed, errored := run.Counts()
	if ok != 0 || failed != 1 || errored != 0 {
		t.Errorf("Counts = %d/%d/%d, want 0/1/0", ok, failed, errored)
	}
}

func TestRunnerCancellationMidRun(t *testing.T) {
	// One worker: the first experiment cancels the context, so every
	// later experiment must be skipped with the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran []string
	exps := []Experiment[int]{
		{ID: "A", Run: func(context.Context) (int, error) { ran = append(ran, "A"); cancel(); return 1, nil }},
		{ID: "B", Run: func(context.Context) (int, error) { ran = append(ran, "B"); return 2, nil }},
		{ID: "C", Run: func(context.Context) (int, error) { ran = append(ran, "C"); return 3, nil }},
	}
	r := &Runner[int]{Parallelism: 1}
	run, err := r.Run(ctx, exps)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ran) != 1 || ran[0] != "A" {
		t.Errorf("ran = %v, want [A] only", ran)
	}
	if run.Outcomes[0].Err != nil {
		t.Errorf("A should have completed: %v", run.Outcomes[0].Err)
	}
	for _, o := range run.Outcomes[1:] {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("%s err = %v, want context.Canceled", o.ID, o.Err)
		}
	}
}

func TestRunnerEventStream(t *testing.T) {
	exps := []Experiment[int]{
		{ID: "A", Title: "ta", Run: func(context.Context) (int, error) { return 1, nil }},
		{ID: "B", Title: "tb", Run: func(context.Context) (int, error) { return 0, errors.New("x") }},
	}
	var mu sync.Mutex
	starts, finishes := map[string]bool{}, map[string]error{}
	r := &Runner[int]{Parallelism: 2, OnEvent: func(ev Event) {
		// The runner serializes OnEvent; the mutex here only pairs the
		// test's own reads with the hook's writes.
		mu.Lock()
		defer mu.Unlock()
		switch ev.Type {
		case EventStart:
			starts[ev.ID] = true
		case EventFinish:
			finishes[ev.ID] = ev.Err
			if ev.Duration < 0 {
				t.Errorf("finish %s duration = %v", ev.ID, ev.Duration)
			}
		}
		if ev.Total != 2 {
			t.Errorf("event Total = %d, want 2", ev.Total)
		}
	}}
	if _, err := r.Run(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !starts["A"] || !starts["B"] {
		t.Errorf("starts = %v, want A and B", starts)
	}
	if finishes["A"] != nil || finishes["B"] == nil {
		t.Errorf("finishes = %v, want A ok and B errored", finishes)
	}
}

func TestRunnerRecoversPanickingExperiment(t *testing.T) {
	exps := []Experiment[int]{
		{ID: "A", Run: func(context.Context) (int, error) { return 1, nil }},
		{ID: "B", Run: func(context.Context) (int, error) { panic("nil map write") }},
		{ID: "C", Run: func(context.Context) (int, error) { return 3, nil }},
	}
	r := &Runner[int]{Parallelism: 1}
	run, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	// The panic becomes one errored outcome; the pool survives and C
	// still runs on the same worker.
	var pe *PanicError
	if !errors.As(run.Outcomes[1].Err, &pe) {
		t.Fatalf("B err = %v, want *PanicError", run.Outcomes[1].Err)
	}
	if pe.ID != "B" || pe.Value != "nil map write" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {ID:%s Value:%v stack:%dB}", pe.ID, pe.Value, len(pe.Stack))
	}
	if s := pe.Error(); !strings.Contains(s, "B") || !strings.Contains(s, "nil map write") {
		t.Errorf("Error() = %q, want ID and value", s)
	}
	if run.Outcomes[0].Result != 1 || run.Outcomes[2].Result != 3 {
		t.Errorf("neighbors disturbed: %+v", run.Outcomes)
	}
	ok, failed, errored := run.Counts()
	if ok != 2 || failed != 0 || errored != 1 {
		t.Errorf("Counts = %d/%d/%d, want 2/0/1", ok, failed, errored)
	}
}

func TestRunnerExperimentTimeout(t *testing.T) {
	// B wedges well past the deadline; A and C are quick. Only B's
	// outcome may error, and it must carry context.DeadlineExceeded.
	exps := []Experiment[int]{
		{ID: "A", Run: func(context.Context) (int, error) { return 1, nil }},
		{ID: "B", Run: func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Second):
				return 2, nil
			}
		}},
		{ID: "C", Run: func(context.Context) (int, error) { return 3, nil }},
	}
	r := &Runner[int]{Parallelism: 1, ExperimentTimeout: 20 * time.Millisecond}
	run, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(run.Outcomes[1].Err, context.DeadlineExceeded) {
		t.Fatalf("B err = %v, want context.DeadlineExceeded", run.Outcomes[1].Err)
	}
	if s := run.Outcomes[1].Err.Error(); !strings.Contains(s, "B") || !strings.Contains(s, "abandoned") {
		t.Errorf("B err = %q, want the ID and the abandonment", s)
	}
	if run.Outcomes[0].Result != 1 || run.Outcomes[0].Err != nil ||
		run.Outcomes[2].Result != 3 || run.Outcomes[2].Err != nil {
		t.Errorf("neighbors disturbed: %+v", run.Outcomes)
	}
	ok, failed, errored := run.Counts()
	if ok != 2 || failed != 0 || errored != 1 {
		t.Errorf("Counts = %d/%d/%d, want 2/0/1", ok, failed, errored)
	}
}

func TestRunnerTimeoutLeavesFastExperimentsAlone(t *testing.T) {
	// A generous deadline must not disturb experiments that finish in
	// time, and the zero value must keep running inline (unbounded).
	exps := []Experiment[int]{
		{ID: "A", Run: func(context.Context) (int, error) { return 7, nil }},
	}
	for _, timeout := range []time.Duration{0, time.Minute} {
		r := &Runner[int]{Parallelism: 1, ExperimentTimeout: timeout}
		run, err := r.Run(context.Background(), exps)
		if err != nil {
			t.Fatal(err)
		}
		if o := run.Outcomes[0]; o.Err != nil || o.Result != 7 {
			t.Errorf("timeout=%v: outcome = %+v, want clean 7", timeout, o)
		}
	}
}

func TestRunnerZeroValueAndEmpty(t *testing.T) {
	var r Runner[int]
	run, err := r.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Outcomes) != 0 {
		t.Errorf("outcomes = %d, want 0", len(run.Outcomes))
	}
	if run.Err() != nil {
		t.Errorf("empty run Err = %v", run.Err())
	}
	// nil context must not panic.
	exps := []Experiment[int]{{ID: "A", Run: func(context.Context) (int, error) { return 1, nil }}}
	//lint:ignore SA1012 deliberate nil-context robustness check
	if _, err := r.Run(nil, exps); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
}
