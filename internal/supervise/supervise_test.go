package supervise

import (
	"testing"
	"time"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

// scriptApp is a control app whose behavior is keyed off config-event
// keys, so tests can script exact failure sequences.
type scriptApp struct {
	// crashes maps a config key to how many times handling it crashes
	// before succeeding; -1 crashes forever.
	crashes map[string]int
	// cost maps a config key to a fixed handler cost (default 1).
	cost map[string]int
}

func (a *scriptApp) Name() string { return "script" }

func (a *scriptApp) HandleEvent(c *sdn.Controller, ev sdn.Event) (int, error) {
	if ev.Kind != sdn.EventConfig {
		return 1, nil
	}
	if n, ok := a.crashes[ev.Key]; ok && n != 0 {
		if n > 0 {
			a.crashes[ev.Key] = n - 1
		}
		return 1, sdn.ErrCrash
	}
	c.Config[ev.Key] = ev.Value
	if cost, ok := a.cost[ev.Key]; ok {
		return cost, nil
	}
	return 1, nil
}

func newScripted(app *scriptApp, cfg Config) *Supervisor {
	c := sdn.NewController(sdn.NewNetwork(), sdn.NewEnvironment(), app)
	return New(c, cfg)
}

func cfgEvent(key, value string) sdn.Event {
	return sdn.Event{Kind: sdn.EventConfig, Key: key, Value: value}
}

func TestProbeDetectsSymptoms(t *testing.T) {
	app := &scriptApp{
		crashes: map[string]int{"boom": -1},
		cost:    map[string]int{"slow": 1500},
	}
	s := newScripted(app, Config{})
	if h := s.Probe(); !h.Live || !h.Ready {
		t.Fatalf("healthy controller probed unhealthy: %+v", h)
	}
	s.C.Submit(cfgEvent("slow", "1"))
	if h := s.Probe(); h.Ready || h.Symptom != taxonomy.SymptomByzantine {
		t.Fatalf("stall not detected: %+v", h)
	}
	s.C.Restart(true)
	s.C.Submit(cfgEvent("boom", "1"))
	if h := s.Probe(); h.Live || h.Symptom != taxonomy.SymptomFailStop {
		t.Fatalf("crash not detected: %+v", h)
	}
}

func TestProbePerformanceRegression(t *testing.T) {
	app := &scriptApp{cost: map[string]int{"heavy": 50}}
	s := newScripted(app, Config{BaselineMeanCost: 1, PerfFactor: 4, PerfWindow: 4})
	for i := 0; i < 4; i++ {
		s.Submit(cfgEvent("heavy", "1"))
	}
	if s.Metrics.PerfRegressions == 0 {
		t.Fatal("sustained 50x baseline cost not flagged as perf regression")
	}
	if s.Metrics.Restarts == 0 {
		t.Fatal("perf regression did not trigger a restart")
	}
}

func TestSubmitHealsTransientCrash(t *testing.T) {
	// One crash, then healthy: restart + retry must recover the event.
	app := &scriptApp{crashes: map[string]int{"flaky": 1}}
	s := newScripted(app, Config{})
	if out := s.Submit(cfgEvent("flaky", "7")); out != OutcomeHealed {
		t.Fatalf("outcome = %v, want healed", out)
	}
	if s.C.Config["flaky"] != "7" {
		t.Fatalf("retried event's effect missing: config=%v", s.C.Config)
	}
	m := s.Metrics
	if m.EventsProcessed != 1 || m.EventsHealed != 1 || m.Restarts != 1 || m.FailStops != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// A later clean success of the class resets its failure streak.
	if out := s.Submit(cfgEvent("flaky", "8")); out != OutcomeProcessed {
		t.Fatalf("second submit = %v, want processed", out)
	}
}

func TestDeterministicCrashDegradesClass(t *testing.T) {
	app := &scriptApp{crashes: map[string]int{"poison": -1}}
	s := newScripted(app, Config{DegradeAfter: 3})
	if out := s.Submit(cfgEvent("poison", "1")); out != OutcomeDegraded {
		t.Fatalf("outcome = %v, want degraded", out)
	}
	if !s.ClassShed(sdn.EventConfig.String()) {
		t.Fatal("class not shed after exhausting recovery attempts")
	}
	if s.C.State != sdn.StateRunning {
		t.Fatalf("controller left %v after degradation, want running", s.C.State)
	}
	// Shed class: dropped at Submit and at Filter, no further healing.
	if out := s.Submit(cfgEvent("poison", "2")); out != OutcomeShed {
		t.Fatalf("post-shed submit = %v, want shed", out)
	}
	if _, keep := s.Filter(cfgEvent("poison", "3")); keep {
		t.Fatal("Filter passed an event of a shed class")
	}
	m := s.Metrics
	// Three shed drops: the degrading event itself, the post-shed
	// Submit, and the Filter drop.
	if m.Degradations != 1 || m.EventsShed != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	if got := s.ShedClasses(); len(got) != 1 || got[0] != "configuration" {
		t.Fatalf("ShedClasses = %v", got)
	}
}

func TestBudgetDenialForcesDegradation(t *testing.T) {
	app := &scriptApp{crashes: map[string]int{"poison": -1}}
	s := newScripted(app, Config{
		DegradeAfter: 100, // only the budget can stop the heal loop
		Budget:       resilience.NewBudget(2, 0),
	})
	if out := s.Submit(cfgEvent("poison", "1")); out != OutcomeDegraded {
		t.Fatalf("outcome = %v, want degraded", out)
	}
	if s.Metrics.BudgetDenials != 1 {
		t.Fatalf("BudgetDenials = %d, want 1", s.Metrics.BudgetDenials)
	}
	if s.Metrics.Restarts < 2 {
		t.Fatalf("Restarts = %d, want the budget's floor spent first", s.Metrics.Restarts)
	}
	if s.C.State != sdn.StateRunning {
		t.Fatalf("controller left %v, want running", s.C.State)
	}
}

func TestBackoffGrowsWithConsecutiveFailures(t *testing.T) {
	// The same deterministic-crash incident with and without a backoff
	// policy: 1ms of backoff is 1 tick, and each consecutive attempt
	// doubles it (8 + 16 + 32 across DegradeAfter=3 attempts), so the
	// runs must differ by at least those 56 delay ticks.
	run := func(cfg Config) Metrics {
		s := newScripted(&scriptApp{crashes: map[string]int{"poison": -1}}, cfg)
		s.Submit(cfgEvent("poison", "1"))
		return s.Metrics
	}
	with := run(Config{Backoff: resilience.Policy{BaseDelay: 8 * time.Millisecond, MaxDelay: time.Second}})
	without := run(Config{})
	if with.Restarts != without.Restarts {
		t.Fatalf("restart counts diverged: %d vs %d", with.Restarts, without.Restarts)
	}
	if diff := with.RecoveryTicks - without.RecoveryTicks; diff < 56 {
		t.Fatalf("backoff added only %d recovery ticks, want >= 56", diff)
	}
}

func TestReportDivergenceVerifiedAfterRestart(t *testing.T) {
	app := &scriptApp{}
	s := newScripted(app, Config{})
	calls := 0
	ok := s.ReportDivergence("network-event", func() bool {
		calls++
		return calls >= 2 // first post-restart check still fails
	})
	if !ok {
		t.Fatal("transient divergence not healed")
	}
	if s.Metrics.Divergences != 1 || s.Metrics.Restarts != 2 {
		t.Fatalf("metrics = %+v", s.Metrics)
	}
	// A deterministic divergence fails verification until the class is
	// shed; reports against a shed class are then ignored.
	if s.ReportDivergence("mirror", func() bool { return false }) {
		t.Fatal("unverifiable divergence reported healed")
	}
	if !s.ClassShed("mirror") {
		t.Fatal("unverifiable divergence did not shed its class")
	}
	before := s.Metrics.Divergences
	s.ReportDivergence("mirror", func() bool { return false })
	if s.Metrics.Divergences != before {
		t.Fatal("divergence report against shed class not ignored")
	}
}

func TestWireErrorIsBoundedNotFatal(t *testing.T) {
	s := newScripted(&scriptApp{}, Config{})
	s.WireError(sdn.ErrNotRunning)
	if !s.Alive() || s.C.State != sdn.StateRunning {
		t.Fatal("wire error killed the supervised controller")
	}
	if s.Metrics.WireErrors != 1 || s.Metrics.RecoveryTicks != WireReconnectCost {
		t.Fatalf("metrics = %+v", s.Metrics)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	net := sdn.NewNetwork()
	net.AddSwitch(1, 4)
	app := sdn.NewL2Switch(nil)
	c := sdn.NewController(net, sdn.NewEnvironment(), app)
	c.Submit(cfgEvent("vlan.a", "100"))
	c.Submit(cfgEvent("vlan.b", "200"))
	sw, _ := net.Switch(1)
	sw.Table.Add(sdn.FlowEntry{Priority: 10, Match: openflow.Match{EthDst: 42}})

	cp := Capture(c)
	if cp.HighWater != 2 {
		t.Fatalf("HighWater = %d, want 2", cp.HighWater)
	}
	// Deep copy: post-capture mutations must not leak in.
	c.Config["vlan.a"] = "999"
	sw.Table.Clear()

	c.Restart(true)
	ticks := cp.Apply(c)
	if ticks <= 0 {
		t.Fatalf("Apply ticks = %d", ticks)
	}
	if c.Config["vlan.a"] != "100" || c.Config["vlan.b"] != "200" {
		t.Fatalf("config not restored: %v", c.Config)
	}
	if got := sw.Table.Entries(); len(got) != 1 || got[0].Match.EthDst != 42 {
		t.Fatalf("flow table not restored: %+v", got)
	}
}

func TestCheckpointedRestartCheaperThanColdReplay(t *testing.T) {
	// Build a long config log, then force one crash at the end under a
	// checkpointing supervisor and a cold one; the checkpointed restart
	// must replay only the tail and cost fewer ticks.
	run := func(checkpointEvery int) Metrics {
		app := &scriptApp{crashes: map[string]int{"boom": 1}}
		s := newScripted(app, Config{CheckpointEvery: checkpointEvery})
		for i := 0; i < 200; i++ {
			s.Submit(cfgEvent("vlan.a", "100"))
		}
		s.Submit(cfgEvent("boom", "1"))
		return s.Metrics
	}
	ck := run(50)
	cold := run(0)
	if ck.Checkpoints == 0 || ck.CheckpointRestores != 1 || cold.ColdRestores != 1 {
		t.Fatalf("restore counts: ck=%+v cold=%+v", ck, cold)
	}
	if ck.CheckpointRestoreTicks >= cold.ColdRestoreTicks {
		t.Fatalf("checkpoint restore (%d ticks) not cheaper than cold replay (%d ticks)",
			ck.CheckpointRestoreTicks, cold.ColdRestoreTicks)
	}
}

func TestReplaySkipsCrashingEvent(t *testing.T) {
	// A logged event that crashes during replay must be skipped on the
	// next pass instead of wedging recovery forever.
	app := &scriptApp{crashes: map[string]int{"late": 2}}
	s := newScripted(app, Config{})
	s.Submit(cfgEvent("vlan.a", "100"))
	s.Submit(cfgEvent("late", "1")) // crashes once live (heals), once in replay
	if s.C.State != sdn.StateRunning {
		t.Fatalf("state = %v", s.C.State)
	}
	s.C.State = sdn.StateCrashed // simulate an external crash
	s.Submit(cfgEvent("vlan.b", "200"))
	if s.C.State != sdn.StateRunning || s.C.Config["vlan.b"] != "200" {
		t.Fatalf("recovery wedged: state=%v config=%v", s.C.State, s.C.Config)
	}
	if s.C.Config["vlan.a"] != "100" {
		t.Fatalf("replay lost earlier config: %v", s.C.Config)
	}
}
