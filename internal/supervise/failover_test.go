package supervise

import (
	"testing"

	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
)

// crashController crashes the supervised controller out-of-band, the
// way a faultlab crash episode does: the next Submit sees a dead
// process and the event never reaches the log.
func crashController(c *sdn.Controller) {
	c.State = sdn.StateCrashed
}

func TestRetryOnExternallyCrashedControllerIsLogged(t *testing.T) {
	app := &scriptApp{}
	s := newScripted(app, Config{})
	s.Submit(cfgEvent("warm", "1"))
	crashController(s.C)
	out := s.Submit(cfgEvent("late", "1"))
	if out != OutcomeHealed {
		t.Fatalf("outcome = %v, want healed", out)
	}
	// The healed event must appear in the log exactly once: an event
	// that never reached the log before the crash is retried through
	// Submit, not Reprocess, or downstream log replication would miss
	// it.
	var n int
	for _, ev := range s.C.Log {
		if ev.Key == "late" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("healed event logged %d times, want 1", n)
	}
	if s.C.Config["late"] != "1" {
		t.Fatalf("healed event not applied: %q", s.C.Config["late"])
	}
}

func TestRetryAfterMidProcessingCrashNotDoubleLogged(t *testing.T) {
	app := &scriptApp{crashes: map[string]int{"boom": 1}}
	s := newScripted(app, Config{})
	out := s.Submit(cfgEvent("boom", "1"))
	if out != OutcomeHealed {
		t.Fatalf("outcome = %v, want healed", out)
	}
	// Submit logs before processing, so the crash-mid-processing retry
	// must reuse the logged entry.
	var n int
	for _, ev := range s.C.Log {
		if ev.Key == "boom" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("retried event logged %d times, want 1", n)
	}
}

func TestFailoverHookRunsOnBudgetExhaustion(t *testing.T) {
	app := &scriptApp{crashes: map[string]int{"poison": -1}}
	var got []*sdn.Event
	s := newScripted(app, Config{
		Budget: resilience.NewBudget(1, 0),
		Failover: func(retry *sdn.Event) bool {
			got = append(got, retry)
			return true
		},
	})
	out := s.Submit(cfgEvent("poison", "1"))
	if out != OutcomeHealed {
		t.Fatalf("outcome = %v, want healed via failover", out)
	}
	if len(got) != 1 || got[0] == nil || got[0].Key != "poison" {
		t.Fatalf("failover hook saw %+v", got)
	}
	if s.Metrics.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", s.Metrics.Failovers)
	}
	if s.ClassShed("configuration") || len(s.ShedClasses()) != 0 {
		t.Fatalf("failover must not shed: %v", s.ShedClasses())
	}
}

func TestFailoverDeclinedFallsBackToDegrade(t *testing.T) {
	app := &scriptApp{crashes: map[string]int{"poison": -1}}
	s := newScripted(app, Config{
		Budget:   resilience.NewBudget(1, 0),
		Failover: func(*sdn.Event) bool { return false },
	})
	out := s.Submit(cfgEvent("poison", "1"))
	if out != OutcomeDegraded {
		t.Fatalf("outcome = %v, want degraded", out)
	}
	if s.Metrics.Failovers != 0 || s.Metrics.Degradations != 1 {
		t.Fatalf("metrics = %+v", s.Metrics)
	}
}
