// Package supervise wraps the simulated SDN controller in a
// self-healing runtime: the supervisor pattern the paper's findings
// argue for. The taxonomy shows most controller failures are
// fail-stop crashes or stalls triggered by a specific input class
// (§IV, Table VII), so a supervisor that (a) probes liveness and
// readiness with the taxonomy's symptom detectors, (b) restarts with
// exponential backoff under a restart budget, (c) resumes from
// periodic checkpoints instead of replaying the whole event log, and
// (d) degrades gracefully by shedding the offending event class when
// restarts keep failing, converts those failures into bounded
// recovery time instead of outage.
//
// Everything is measured in the controller's logical ticks and every
// decision is deterministic, so supervised runs are byte-identical at
// a fixed seed — the property the sustained fault-injection campaign
// (internal/faultlab, experiment E22) asserts.
package supervise

import (
	"time"

	"sdnbugs/internal/metrics"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

// Logical-tick costs of supervisor actions. One millisecond of
// resilience.Policy backoff maps to one tick, keeping the two layers'
// units aligned without wall-clock sleeps.
const (
	// RestartCost is the fixed tick cost of one controller restart
	// (process re-exec, reconnects, feature re-sync).
	RestartCost = 25
	// CheckpointCost is the tick overhead of capturing one checkpoint.
	CheckpointCost = 2
	// WireReconnectCost is the tick cost of tearing down and
	// re-establishing one switch connection after a wire-level fault.
	WireReconnectCost = 5
)

// Config tunes a Supervisor. The zero value is usable: sensible
// degradation and probe defaults, no checkpointing, no budget.
type Config struct {
	// BaselineMeanCost is the healthy mean event cost the performance
	// probe compares against; 0 disables the perf probe.
	BaselineMeanCost float64
	// PerfFactor flags a performance regression when the windowed mean
	// cost exceeds PerfFactor × BaselineMeanCost (default 4, matching
	// the fault lab's detector).
	PerfFactor float64
	// PerfWindow is how many recent event costs the perf probe averages
	// over (default 16).
	PerfWindow int
	// Backoff shapes restart delays. Only the deterministic Backoff
	// ceiling is used — never the jittered Delay — so supervised runs
	// replay exactly.
	Backoff resilience.Policy
	// Budget, when set, bounds total restarts: every processed event
	// deposits, every restart withdraws. A dry budget stops restarts
	// and sheds the offending class instead.
	Budget *resilience.Budget
	// CheckpointEvery captures a checkpoint every N processed events;
	// 0 disables checkpointing, making every restart a cold replay.
	CheckpointEvery int
	// DegradeAfter is how many consecutive failed recovery attempts a
	// single event class gets before the supervisor sheds it
	// (default 3).
	DegradeAfter int
	// Classify buckets events into the classes degradation sheds;
	// defaults to EventKind.String(). Finer classifiers (e.g. the fault
	// lab's poison signatures) shed more surgically.
	Classify func(sdn.Event) string
	// OnRestart runs immediately before every supervised restart; the
	// fault lab advances fault incarnations here.
	OnRestart func()
	// Failover, when set, runs as the last resort before degradation:
	// if the restart budget is exhausted the supervisor offers the
	// incident (and the unprocessed retry event, when there is one) to
	// the hook instead of shedding. Returning true means another
	// replica took over — the cluster layer re-homes the event on the
	// new primary — and the incident counts as healed here.
	Failover func(retry *sdn.Event) bool
	// OnShed runs after a class is newly shed — the automatic repair
	// loop's trigger: it synthesizes candidate patches for the shed
	// class, validates them, and calls LiftShed on success. The hook
	// must not submit events.
	OnShed func(class string)
	// Metrics, when set, receives live observability counters and
	// histograms (restarts, probe firings, checkpoint/restore
	// timings) under supervise_* names. Metrics never influence
	// supervision decisions, so wiring a registry keeps runs
	// byte-identical.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.PerfFactor <= 0 {
		c.PerfFactor = 4
	}
	if c.PerfWindow <= 0 {
		c.PerfWindow = 16
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 3
	}
	if c.Classify == nil {
		c.Classify = func(ev sdn.Event) string { return ev.Kind.String() }
	}
	return c
}

// Outcome is the supervised fate of one submitted event.
type Outcome int

// Outcome values.
const (
	// OutcomeProcessed: handled cleanly.
	OutcomeProcessed Outcome = iota
	// OutcomeHealed: a failure was detected and recovered; the event
	// counts as processed.
	OutcomeHealed
	// OutcomeShed: dropped because its class is degraded.
	OutcomeShed
	// OutcomeDegraded: this event triggered repeated failures and its
	// class was shed; the event itself was dropped.
	OutcomeDegraded
	// OutcomeLost: dropped without a shedding decision (never produced
	// by a supervised submit; campaigns use it for unsupervised runs).
	OutcomeLost
)

func (o Outcome) String() string {
	switch o {
	case OutcomeProcessed:
		return "processed"
	case OutcomeHealed:
		return "healed"
	case OutcomeShed:
		return "shed"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeLost:
		return "lost"
	default:
		return "unknown"
	}
}

// Metrics aggregates a supervised run. All counters are logical (event
// counts and ticks), so two runs at the same seed produce identical
// metrics.
type Metrics struct {
	EventsOffered   int
	EventsProcessed int // includes healed
	EventsHealed    int
	EventsShed      int
	EventsLost      int

	Incidents       int // detected failures (probe or divergence report)
	FailStops       int
	Stalls          int
	PerfRegressions int
	Divergences     int

	Restarts      int
	Degradations  int // classes shed
	ShedLifts     int // sheds lifted by a validated repair
	BudgetDenials int
	Failovers     int // incidents handed to the Failover hook

	Checkpoints            int
	CheckpointRestores     int
	ColdRestores           int
	CheckpointRestoreTicks int
	ColdRestoreTicks       int

	UptimeTicks   int
	RecoveryTicks int

	WireErrors int
}

// EventAvailability is the fraction of offered events that were
// processed (healed included; shed and lost are unavailability).
func (m Metrics) EventAvailability() float64 {
	if m.EventsOffered == 0 {
		return 1
	}
	return float64(m.EventsProcessed) / float64(m.EventsOffered)
}

// TimeAvailability is uptime over total logical time.
func (m Metrics) TimeAvailability() float64 {
	total := m.UptimeTicks + m.RecoveryTicks
	if total == 0 {
		return 1
	}
	return float64(m.UptimeTicks) / float64(total)
}

// MTTR is the mean recovery ticks per detected incident.
func (m Metrics) MTTR() float64 {
	if m.Incidents == 0 {
		return 0
	}
	return float64(m.RecoveryTicks) / float64(m.Incidents)
}

// Supervisor is the self-healing runtime around one controller. It is
// not safe for concurrent use: the controller model itself is
// single-threaded logical time.
type Supervisor struct {
	C       *sdn.Controller
	Metrics Metrics

	cfg Config
	// shed marks degraded event classes.
	shed map[string]bool
	// consec counts consecutive failed recovery attempts per class;
	// reset by a clean success of that class.
	consec map[string]int
	// window holds the last PerfWindow event costs for the perf probe.
	window []int
	// cp is the latest checkpoint (nil until the first capture).
	cp *Checkpoint
	// sinceCheckpoint counts processed events since the last capture.
	sinceCheckpoint int
}

// New wraps a controller. The controller must be running.
func New(c *sdn.Controller, cfg Config) *Supervisor {
	return &Supervisor{
		C:      c,
		cfg:    cfg.withDefaults(),
		shed:   make(map[string]bool),
		consec: make(map[string]int),
	}
}

// count increments a registry counter when observability is wired.
func (s *Supervisor) count(name string) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(name).Inc()
	}
}

// observe records a registry histogram sample (logical ticks) when
// observability is wired.
func (s *Supervisor) observe(name string, ticks int) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Histogram(name).Observe(float64(ticks))
	}
}

// Alive reports process liveness (the controller is not crashed).
func (s *Supervisor) Alive() bool { return s.C.State != sdn.StateCrashed }

// ClassShed reports whether an event class has been degraded away.
func (s *Supervisor) ClassShed(class string) bool { return s.shed[class] }

// ShedClasses returns the degraded classes in sorted order.
func (s *Supervisor) ShedClasses() []string {
	out := make([]string, 0, len(s.shed))
	for c := range s.shed {
		out = append(out, c)
	}
	sortStrings(out)
	return out
}

// LiftShed re-admits a shed event class and returns true; it returns
// false when the class was not shed. Shed state is deliberately
// sticky everywhere else: budget deposits, restarts, and checkpoint
// restores never un-shed a class (a deterministic poison would
// re-trigger the moment its class flowed again), so the only way back
// is an explicit lift by a validated repair (internal/repair). The
// class's failure streak resets — post-repair, it starts clean.
func (s *Supervisor) LiftShed(class string) bool {
	if !s.shed[class] {
		return false
	}
	delete(s.shed, class)
	delete(s.consec, class)
	s.Metrics.ShedLifts++
	s.count("supervise_shed_lifts_total")
	return true
}

// Filter is the degradation hook, shaped for faultlab.Lab.Filter:
// events of shed classes are dropped (and accounted) before they reach
// the controller.
func (s *Supervisor) Filter(ev sdn.Event) (sdn.Event, bool) {
	if s.shed[s.cfg.Classify(ev)] {
		s.Metrics.EventsOffered++
		s.Metrics.EventsShed++
		return ev, false
	}
	return ev, true
}

// Submit runs one event under supervision: process, probe, and — on a
// detected failure — heal by restarting (with backoff and budget) and
// retrying, falling back to shedding the event's class.
func (s *Supervisor) Submit(ev sdn.Event) Outcome {
	s.Metrics.EventsOffered++
	class := s.cfg.Classify(ev)
	if s.shed[class] {
		s.Metrics.EventsShed++
		return OutcomeShed
	}
	logLen := len(s.C.Log)
	cost := s.runEvent(ev, false)
	s.pushCost(cost)
	h := s.Probe()
	if h.Ready {
		s.Metrics.UptimeTicks += cost
		s.noteSuccess(class)
		s.Metrics.EventsProcessed++
		return OutcomeProcessed
	}
	s.Metrics.RecoveryTicks += cost
	s.noteSymptom(h.Symptom)
	// Fail-stop means the event's effect was lost: retry it after the
	// restart. Stalls and perf regressions processed the event (slowly);
	// only the condition needs clearing. An event submitted to an
	// already-crashed controller never reached the log, so its retry
	// must go through Submit (which logs) rather than Reprocess —
	// otherwise the healed event would be missing from the log and
	// replication downstream of it would silently diverge.
	var retry *sdn.Event
	retryLogged := true
	if h.Symptom == taxonomy.SymptomFailStop {
		retry = &ev
		retryLogged = len(s.C.Log) > logLen
	}
	if s.heal(class, retry, retryLogged, nil) {
		s.Metrics.EventsHealed++
		s.Metrics.EventsProcessed++
		return OutcomeHealed
	}
	s.Metrics.EventsShed++
	return OutcomeDegraded
}

// ReportDivergence feeds the supervisor a byzantine divergence its
// probes cannot see (e.g. a silently swallowed broadcast found by a
// spot check). verify, when set, re-runs the check after each restart;
// a deterministic divergence therefore fails verification until the
// class is shed. Reports against an already-shed class are ignored.
// It returns true when a restart cleared the divergence.
func (s *Supervisor) ReportDivergence(class string, verify func() bool) bool {
	if s.shed[class] {
		return false
	}
	s.Metrics.Divergences++
	s.count("supervise_divergences_total")
	return s.heal(class, nil, true, verify)
}

// WireError records a connection-layer fault the session layer
// surfaced (garbage frame, truncated read, handshake stall, dropped
// connection). The supervisor's answer is a bounded reconnect — never
// death.
func (s *Supervisor) WireError(err error) {
	_ = err
	s.Metrics.WireErrors++
	s.Metrics.RecoveryTicks += WireReconnectCost
	s.count("supervise_wire_errors_total")
}

// heal is the recovery loop for one incident: restart (budgeted, with
// backoff growing in the class's consecutive-failure count), then
// either retry the failed event, re-run the caller's verification, or
// trust the probe. A class that keeps failing past DegradeAfter
// attempts is shed.
func (s *Supervisor) heal(class string, retry *sdn.Event, retryLogged bool, verify func() bool) bool {
	s.Metrics.Incidents++
	for {
		s.consec[class]++
		if s.consec[class] > s.cfg.DegradeAfter {
			s.degrade(class)
			return false
		}
		if s.cfg.Budget != nil && !s.cfg.Budget.Withdraw() {
			s.Metrics.BudgetDenials++
			if s.cfg.Failover != nil && s.cfg.Failover(retry) {
				// Another replica took over; the incident is resolved
				// without degrading the class on this (deposed) one.
				s.Metrics.Failovers++
				s.count("supervise_failovers_total")
				return true
			}
			s.degrade(class)
			return false
		}
		s.restart(s.consec[class] - 1)
		if retry != nil {
			var cost int
			if retryLogged {
				cost = s.runEvent(*retry, true)
			} else {
				// First successful append wins; later loop iterations
				// must not log the event twice.
				before := len(s.C.Log)
				cost = s.runEvent(*retry, false)
				retryLogged = len(s.C.Log) > before
			}
			s.Metrics.RecoveryTicks += cost
			h := s.Probe()
			if h.Ready {
				return true
			}
			s.noteSymptom(h.Symptom)
			continue
		}
		if verify != nil && !verify() {
			continue
		}
		if s.Probe().Ready {
			return true
		}
	}
}

// degrade sheds a class and restores service if the incident left the
// controller down.
func (s *Supervisor) degrade(class string) {
	if !s.shed[class] {
		s.shed[class] = true
		s.Metrics.Degradations++
		s.count("supervise_degradations_total")
		if s.cfg.OnShed != nil {
			s.cfg.OnShed(class)
		}
	}
	if s.C.State != sdn.StateRunning {
		s.restart(0)
	}
}

// restart bounces the controller and accounts the downtime: fixed
// restart cost, deterministic backoff (ms→ticks), plus state recovery
// — checkpoint restore with tail replay when a checkpoint exists, full
// log replay otherwise.
func (s *Supervisor) restart(attempt int) {
	if s.cfg.OnRestart != nil {
		s.cfg.OnRestart()
	}
	s.C.Restart(true)
	s.window = s.window[:0]
	s.Metrics.Restarts++
	s.count("supervise_restarts_total")
	down := RestartCost
	if s.cfg.Backoff.BaseDelay > 0 {
		down += int(s.cfg.Backoff.Backoff(attempt) / time.Millisecond)
	}
	if s.cp != nil {
		t := RestartCost + s.cp.Apply(s.C) + s.replayConfig(s.cp.HighWater)
		s.Metrics.CheckpointRestores++
		s.Metrics.CheckpointRestoreTicks += t
		s.observe("supervise_checkpoint_restore_ticks", t)
		down += t - RestartCost
	} else {
		t := RestartCost + s.replayConfig(0)
		s.Metrics.ColdRestores++
		s.Metrics.ColdRestoreTicks += t
		s.observe("supervise_cold_restore_ticks", t)
		down += t - RestartCost
	}
	s.Metrics.RecoveryTicks += down
}

// replayConfig re-executes the logged configuration events from log
// index `from` to rebuild controller config state. Replay runs the
// same buggy code: an event that crashes the replay is skipped on the
// next pass (restart cost accounted), leaving the shedding decision to
// the heal loop.
func (s *Supervisor) replayConfig(from int) int {
	ticks := 0
	if from > len(s.C.Log) {
		from = len(s.C.Log)
	}
	skip := make(map[int]bool)
	// Each pass eliminates at least one crashing event; a partial
	// replay wiped by a crash-restart starts over without it.
	for pass := 0; pass < 8; pass++ {
		crashed := false
		for i := from; i < len(s.C.Log); i++ {
			ev := s.C.Log[i]
			if ev.Kind != sdn.EventConfig || skip[i] || s.shed[s.cfg.Classify(ev)] {
				continue
			}
			before := s.C.Stats.TotalCost
			_ = s.C.Reprocess(ev)
			ticks += s.C.Stats.TotalCost - before
			if s.C.State == sdn.StateCrashed {
				skip[i] = true
				crashed = true
				if s.cfg.OnRestart != nil {
					s.cfg.OnRestart()
				}
				s.C.Restart(true)
				s.Metrics.Restarts++
				ticks += RestartCost
				break
			}
		}
		if !crashed {
			break
		}
	}
	return ticks
}

// runEvent pushes one event through the controller and returns its
// tick cost. replays use Reprocess so the log is not re-recorded.
func (s *Supervisor) runEvent(ev sdn.Event, replay bool) int {
	before := s.C.Stats.TotalCost
	if replay {
		_ = s.C.Reprocess(ev)
	} else {
		_ = s.C.Submit(ev)
	}
	return s.C.Stats.TotalCost - before
}

// noteSuccess resets the class's failure streak, feeds the restart
// budget, and takes a periodic checkpoint.
func (s *Supervisor) noteSuccess(class string) {
	s.consec[class] = 0
	if s.cfg.Budget != nil {
		s.cfg.Budget.Deposit()
	}
	if s.cfg.CheckpointEvery > 0 {
		s.sinceCheckpoint++
		if s.sinceCheckpoint >= s.cfg.CheckpointEvery {
			s.sinceCheckpoint = 0
			s.cp = Capture(s.C)
			s.Metrics.Checkpoints++
			s.Metrics.UptimeTicks += CheckpointCost
			s.count("supervise_checkpoints_total")
		}
	}
}

func (s *Supervisor) noteSymptom(sym taxonomy.Symptom) {
	switch sym {
	case taxonomy.SymptomFailStop:
		s.Metrics.FailStops++
		s.count("supervise_probe_failstop_total")
	case taxonomy.SymptomByzantine:
		s.Metrics.Stalls++
		s.count("supervise_probe_stall_total")
	case taxonomy.SymptomPerformance:
		s.Metrics.PerfRegressions++
		s.count("supervise_probe_perf_total")
	}
}

func (s *Supervisor) pushCost(cost int) {
	s.window = append(s.window, cost)
	if len(s.window) > s.cfg.PerfWindow {
		s.window = s.window[len(s.window)-s.cfg.PerfWindow:]
	}
}

// sortStrings is a dependency-free insertion sort (the slices here are
// a handful of class names).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
