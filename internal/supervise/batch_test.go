package supervise

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sdnbugs/internal/sdn"
)

// buildBatchScript returns a fresh scripted app plus a deterministic
// event stream exercising clean events, transient crashes, a poison
// (deterministic-crash) key that degrades into a shed class, and heavy
// events that trip the perf probe.
func buildBatchScript(seed int64) (*scriptApp, []sdn.Event) {
	app := &scriptApp{
		crashes: map[string]int{"flaky": 2, "poison": -1},
		cost:    map[string]int{"heavy": 40},
	}
	rng := rand.New(rand.NewSource(seed))
	keys := []string{"a", "b", "flaky", "poison", "heavy", "c"}
	var events []sdn.Event
	n := 30 + rng.Intn(40)
	for i := 0; i < n; i++ {
		k := keys[rng.Intn(len(keys))]
		events = append(events, cfgEvent(k, fmt.Sprintf("v%d", i)))
		if rng.Intn(5) == 0 {
			events = append(events, sdn.Event{Kind: sdn.EventNetwork})
		}
	}
	return app, events
}

type supSnapshot struct {
	Metrics  Metrics
	Shed     []string
	State    sdn.State
	Stats    sdn.Stats
	Config   map[string]string
	LogLen   int
	ErrorLog []string
}

func snapshotSupervisor(s *Supervisor) supSnapshot {
	return supSnapshot{
		Metrics:  s.Metrics,
		Shed:     s.ShedClasses(),
		State:    s.C.State,
		Stats:    s.C.Stats,
		Config:   s.C.Config,
		LogLen:   len(s.C.Log),
		ErrorLog: append([]string(nil), s.C.ErrorLog...),
	}
}

// SubmitBatch must be observationally identical to sequential Submit
// calls: same outcomes in order, same supervisor metrics, same shed
// classes, same controller state — through transient heals, perf
// regressions, and a class degrading to shed mid-batch.
func TestSubmitBatchEquivalentToSequential(t *testing.T) {
	cfg := Config{DegradeAfter: 2, BaselineMeanCost: 1, PerfFactor: 4, PerfWindow: 8, CheckpointEvery: 10}
	for seed := int64(1); seed <= 10; seed++ {
		appA, events := buildBatchScript(seed)
		serial := newScripted(appA, cfg)
		var wantOutcomes []Outcome
		for _, ev := range events {
			wantOutcomes = append(wantOutcomes, serial.Submit(ev))
		}

		appB, eventsB := buildBatchScript(seed)
		if !reflect.DeepEqual(events, eventsB) {
			t.Fatal("script generation not deterministic")
		}
		batched := newScripted(appB, cfg)
		gotOutcomes := batched.SubmitBatch(events, nil)

		if !reflect.DeepEqual(gotOutcomes, wantOutcomes) {
			t.Fatalf("seed %d: outcomes diverged\nserial:  %v\nbatched: %v", seed, wantOutcomes, gotOutcomes)
		}
		a, b := snapshotSupervisor(serial), snapshotSupervisor(batched)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: supervisors diverged\nserial:  %+v\nbatched: %+v", seed, a, b)
		}
		if len(a.Shed) == 0 && seed == 1 {
			t.Fatal("script never shed a class; the test lost its teeth")
		}
	}
}

// Sub-batch boundaries must be invisible: any split of the stream
// yields the same final state as one big batch.
func TestSubmitBatchSplitInvariance(t *testing.T) {
	cfg := Config{DegradeAfter: 2, BaselineMeanCost: 1, PerfFactor: 4, PerfWindow: 8}
	_, events := buildBatchScript(3)

	run := func(chunk int) (supSnapshot, []Outcome) {
		app, _ := buildBatchScript(3)
		s := newScripted(app, cfg)
		var outcomes []Outcome
		for i := 0; i < len(events); i += chunk {
			end := i + chunk
			if end > len(events) {
				end = len(events)
			}
			outcomes = s.SubmitBatch(events[i:end], outcomes)
		}
		return snapshotSupervisor(s), outcomes
	}

	wantSnap, wantOutcomes := run(len(events))
	for _, chunk := range []int{1, 2, 5, 17} {
		gotSnap, gotOutcomes := run(chunk)
		if !reflect.DeepEqual(gotOutcomes, wantOutcomes) {
			t.Fatalf("chunk %d: outcomes diverged", chunk)
		}
		if !reflect.DeepEqual(gotSnap, wantSnap) {
			t.Fatalf("chunk %d: state diverged\nwant: %+v\ngot:  %+v", chunk, wantSnap, gotSnap)
		}
	}
}
