package supervise

import (
	"fmt"

	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

// Health is one probe result. Live is process liveness (the
// controller exists and is not crashed); Ready additionally requires
// it to be serving acceptably (not stalled, not in a performance
// regression). The split mirrors Kubernetes-style liveness vs
// readiness: a live-but-unready controller is restarted gently, a
// dead one unconditionally.
type Health struct {
	Live    bool
	Ready   bool
	Symptom taxonomy.Symptom
	Detail  string
}

// Probe runs the taxonomy-derived symptom detectors against the
// controller's current state, ordered by severity: fail-stop (crash),
// stall (byzantine: stalling, §IV), then performance regression
// against the healthy baseline over a sliding cost window. Byzantine
// divergence (silently wrong behaviour) is invisible to state probes
// by definition; callers feed it in via ReportDivergence.
func (s *Supervisor) Probe() Health {
	switch s.C.State {
	case sdn.StateCrashed:
		return Health{Symptom: taxonomy.SymptomFailStop,
			Detail: "controller crashed (fail-stop)"}
	case sdn.StateStalled:
		return Health{Live: true, Symptom: taxonomy.SymptomByzantine,
			Detail: "controller stalled (byzantine: stalling)"}
	}
	if s.cfg.BaselineMeanCost > 0 && len(s.window) >= s.cfg.PerfWindow {
		sum := 0
		for _, c := range s.window {
			sum += c
		}
		mean := float64(sum) / float64(len(s.window))
		if mean > s.cfg.PerfFactor*s.cfg.BaselineMeanCost {
			return Health{Live: true, Symptom: taxonomy.SymptomPerformance,
				Detail: fmt.Sprintf("windowed mean cost %.1f vs baseline %.1f",
					mean, s.cfg.BaselineMeanCost)}
		}
	}
	return Health{Live: true, Ready: true}
}
