package supervise

import (
	"fmt"
	"testing"

	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
)

// keyClassify buckets scripted config events by key so one poisoned
// key sheds alone while healthy config traffic keeps flowing.
func keyClassify(ev sdn.Event) string {
	if ev.Kind == sdn.EventConfig && ev.Key == "poison" {
		return "poison"
	}
	return "healthy"
}

// TestShedPersistsUntilLifted is the regression test for the silent
// un-shedding hazard: once a class is shed, nothing implicit — budget
// deposits from later successes, checkpoints, a checkpoint restore
// after a crash — may re-admit it. Only an explicit LiftShed does.
func TestShedPersistsUntilLifted(t *testing.T) {
	app := &scriptApp{crashes: map[string]int{"poison": -1}}
	var shed []string
	s := newScripted(app, Config{
		DegradeAfter:    2,
		CheckpointEvery: 4,
		Budget:          resilience.NewBudget(8, 1.0),
		Classify:        keyClassify,
		OnShed:          func(class string) { shed = append(shed, class) },
	})
	if out := s.Submit(cfgEvent("poison", "1")); out != OutcomeDegraded {
		t.Fatalf("outcome = %v, want degraded", out)
	}
	if len(shed) != 1 || shed[0] != "poison" {
		t.Fatalf("OnShed fired %v, want exactly [poison]", shed)
	}

	// Healthy traffic replenishes the restart budget and rolls
	// checkpoints; an external crash then forces a checkpoint restore.
	for i := 0; i < 20; i++ {
		s.Submit(cfgEvent(fmt.Sprintf("vlan.%d", i), "1"))
	}
	s.C.State = sdn.StateCrashed
	if out := s.Submit(cfgEvent("after-crash", "1")); out != OutcomeHealed {
		t.Fatalf("post-crash submit = %v, want healed", out)
	}
	if s.Metrics.CheckpointRestores == 0 {
		t.Fatal("scenario never exercised a checkpoint restore")
	}

	if !s.ClassShed("poison") {
		t.Fatal("shed silently lifted by budget deposits / checkpoint restore")
	}
	if _, keep := s.Filter(cfgEvent("poison", "2")); keep {
		t.Fatal("Filter passed a shed class after restore")
	}
	if len(shed) != 1 {
		t.Fatalf("OnShed re-fired for an already-shed class: %v", shed)
	}

	// Only the explicit lift re-admits the class — once.
	if s.LiftShed("healthy") {
		t.Fatal("LiftShed lifted a class that was never shed")
	}
	if !s.LiftShed("poison") {
		t.Fatal("LiftShed refused a shed class")
	}
	if s.LiftShed("poison") {
		t.Fatal("second LiftShed of the same class reported a lift")
	}
	if s.Metrics.ShedLifts != 1 {
		t.Fatalf("ShedLifts = %d, want 1", s.Metrics.ShedLifts)
	}
	if s.ClassShed("poison") {
		t.Fatal("class still shed after LiftShed")
	}

	// With the underlying bug repaired, the lifted class flows again.
	delete(app.crashes, "poison")
	if out := s.Submit(cfgEvent("poison", "3")); out != OutcomeProcessed {
		t.Fatalf("post-lift submit = %v, want processed", out)
	}
	if s.C.Config["poison"] != "3" {
		t.Fatalf("lifted event's effect missing: %v", s.C.Config)
	}
}

// TestLiftedClassStillBrokenReSheds: lifting a shed without repairing
// the underlying fault is safe — the failure streak was reset, so the
// supervisor re-learns the class deterministically and sheds it again
// (and OnShed fires again, re-triggering the repair loop).
func TestLiftedClassStillBrokenReSheds(t *testing.T) {
	app := &scriptApp{crashes: map[string]int{"poison": -1}}
	sheds := 0
	s := newScripted(app, Config{
		DegradeAfter: 2,
		Classify:     keyClassify,
		OnShed:       func(string) { sheds++ },
	})
	if out := s.Submit(cfgEvent("poison", "1")); out != OutcomeDegraded {
		t.Fatalf("outcome = %v, want degraded", out)
	}
	if !s.LiftShed("poison") {
		t.Fatal("LiftShed refused a shed class")
	}
	if out := s.Submit(cfgEvent("poison", "2")); out != OutcomeDegraded {
		t.Fatalf("post-lift poison = %v, want degraded again", out)
	}
	if !s.ClassShed("poison") || sheds != 2 {
		t.Fatalf("re-shed not reached: shed=%v onShed=%d", s.ClassShed("poison"), sheds)
	}
}
