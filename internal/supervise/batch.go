package supervise

import "sdnbugs/internal/sdn"

// SubmitBatch feeds events through the supervisor in order. Probes,
// healing, shedding, and checkpoint ticks all observe each event
// individually — outcomes and metrics are identical to the same
// sequence of Submit calls — while the controller's log growth is
// amortized into one pre-reserved append region for the whole batch.
// Each event's outcome is appended to outcomes (pass a reused slice to
// avoid per-batch allocation) and the extended slice is returned.
func (s *Supervisor) SubmitBatch(events []sdn.Event, outcomes []Outcome) []Outcome {
	if len(events) == 0 {
		return outcomes
	}
	s.C.ReserveLog(len(events))
	for _, ev := range events {
		outcomes = append(outcomes, s.Submit(ev))
	}
	return outcomes
}
