package supervise

import (
	"sort"

	"sdnbugs/internal/sdn"
)

// Snapshotter is implemented by control apps that can checkpoint and
// restore their internal state (sdn.L2Switch implements it).
type Snapshotter interface {
	Snapshot() any
	RestoreSnapshot(any)
}

// Checkpoint is a point-in-time capture of the controller's
// recoverable state: the config map, every switch's flow table, the
// app's internal state, and the event-log high-water mark. A restart
// that applies a checkpoint only tail-replays events logged after
// HighWater — and, crucially, applying captured state bypasses the
// buggy code paths a full replay would re-execute.
type Checkpoint struct {
	Config    map[string]string
	Flows     map[uint64][]sdn.FlowEntry
	AppState  any
	HighWater int
}

// Capture snapshots the controller. The copies are deep: later
// controller mutations never leak into the checkpoint.
func Capture(c *sdn.Controller) *Checkpoint {
	cp := &Checkpoint{
		Config:    make(map[string]string, len(c.Config)),
		Flows:     make(map[uint64][]sdn.FlowEntry),
		HighWater: len(c.Log),
	}
	for k, v := range c.Config {
		cp.Config[k] = v
	}
	for _, dpid := range c.Net.Switches() {
		sw, err := c.Net.Switch(dpid)
		if err != nil {
			continue
		}
		if entries := sw.Table.Entries(); len(entries) > 0 {
			cp.Flows[dpid] = entries
		}
	}
	if snap, ok := c.App.(Snapshotter); ok {
		cp.AppState = snap.Snapshot()
	}
	return cp
}

// Apply restores the checkpoint into a freshly-restarted controller
// and returns the tick cost of doing so — proportional to the state
// size, not to the length of the event log, which is the whole point.
func (cp *Checkpoint) Apply(c *sdn.Controller) int {
	ticks := 1
	for k, v := range cp.Config {
		c.Config[k] = v
	}
	ticks += len(cp.Config)
	dpids := make([]uint64, 0, len(cp.Flows))
	for dpid := range cp.Flows {
		dpids = append(dpids, dpid)
	}
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
	for _, dpid := range dpids {
		sw, err := c.Net.Switch(dpid)
		if err != nil {
			continue
		}
		sw.Table.Clear()
		for _, e := range cp.Flows[dpid] {
			sw.Table.Add(e)
		}
		ticks += len(cp.Flows[dpid])
	}
	if cp.AppState != nil {
		if snap, ok := c.App.(Snapshotter); ok {
			snap.RestoreSnapshot(cp.AppState)
			ticks++
		}
	}
	return ticks
}
