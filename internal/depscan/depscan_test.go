package depscan

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCompareVersions(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1.0", "1.0", 0},
		{"1.0", "1.1", -1},
		{"2.0", "1.9", 1},
		{"1.0.1", "1.0", 1},
		{"1.0", "1.0.0", 0},
		{"4.1.8", "4.1.35", -1},
		{"10.0", "9.9", 1},
	}
	for _, tt := range tests {
		got, err := CompareVersions(tt.a, tt.b)
		if err != nil {
			t.Fatalf("CompareVersions(%q,%q): %v", tt.a, tt.b, err)
		}
		if got != tt.want {
			t.Errorf("CompareVersions(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if _, err := CompareVersions("", "1.0"); !errors.Is(err, ErrBadVersion) {
		t.Errorf("empty version: %v", err)
	}
	if _, err := CompareVersions("1.x", "1.0"); !errors.Is(err, ErrBadVersion) {
		t.Errorf("non-numeric version: %v", err)
	}
}

func TestCompareVersionsAntisymmetric(t *testing.T) {
	f := func(a, b uint8, c, d uint8) bool {
		va := itoa(int(a)) + "." + itoa(int(b))
		vb := itoa(int(c)) + "." + itoa(int(d))
		x, err1 := CompareVersions(va, vb)
		y, err2 := CompareVersions(vb, va)
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestScan(t *testing.T) {
	db := []CVE{
		{ID: "X-1", Dep: "netty", FixedIn: "4.1.0", Severity: SeverityHigh},
		{ID: "X-2", Dep: "netty", FixedIn: "4.1.35", Severity: SeverityMedium},
		{ID: "X-3", Dep: "guava", FixedIn: "24.1", Severity: SeverityLow},
	}
	m := Manifest{Project: "p", Version: "1", Deps: []Dependency{
		{Name: "netty", Version: "4.1.8"}, // hits X-2 only
		{Name: "guava", Version: "25.0"},  // fixed
		{Name: "unknown", Version: "1.0"}, // no CVEs
	}}
	fs, err := Scan(m, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].CVE.ID != "X-2" {
		t.Errorf("findings = %+v", fs)
	}
	// Severity ordering: critical first.
	m2 := Manifest{Deps: []Dependency{{Name: "netty", Version: "4.0.0"}}}
	fs2, err := Scan(m2, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs2) != 2 || fs2[0].CVE.Severity != SeverityHigh {
		t.Errorf("ordering wrong: %+v", fs2)
	}
	// Bad version in manifest.
	if _, err := Scan(Manifest{Deps: []Dependency{{Name: "netty", Version: "abc"}}}, db); err == nil {
		t.Error("want error for bad version")
	}
}

func TestOVSDBDoSDetected(t *testing.T) {
	// The paper's CVE-2018-1000615 example: an outdated OVSDB exposes
	// ONOS to denial of service.
	m := Manifest{Project: "onos", Version: "1.14", Deps: []Dependency{
		{Name: "ovsdb", Version: "2.7.0"},
	}}
	fs, err := Scan(m, BuiltinDB())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fs {
		if f.CVE.ID == "CVE-2018-1000615" {
			found = true
			if f.CVE.Severity != SeverityCriticalCVE {
				t.Error("OVSDB DoS should be critical")
			}
		}
	}
	if !found {
		t.Error("CVE-2018-1000615 not detected")
	}
}

func TestVulnerabilityTrendGrows(t *testing.T) {
	pts, err := VulnerabilityTrend(ONOSManifests(), BuiltinDB())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Deps < pts[i-1].Deps {
			t.Error("dependency count should grow across versions")
		}
		if pts[i].Findings < pts[i-1].Findings {
			t.Errorf("vulnerabilities should grow: %v -> %v", pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].Findings <= pts[0].Findings {
		t.Error("final release must have strictly more findings than the first")
	}
	if pts[len(pts)-1].Critical == 0 {
		t.Error("late releases should carry critical findings")
	}
}
