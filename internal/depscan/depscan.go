// Package depscan implements a dependency-check-style vulnerability
// scanner (§V-A's analysis of ONOS dependencies against the NVD): a
// manifest model, a lightweight version comparator, an embedded
// synthetic CVE database (including the analog of CVE-2018-1000615,
// the OVSDB DoS against ONOS), and per-release scan reports showing
// vulnerability growth as dependencies accumulate.
package depscan

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Dependency is one declared third-party dependency.
type Dependency struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// Manifest is a project release's dependency declaration.
type Manifest struct {
	Project string       `json:"project"`
	Version string       `json:"version"`
	Deps    []Dependency `json:"deps"`
}

// Severity grades a vulnerability.
type Severity int

// Severity values.
const (
	SeverityUnknown Severity = iota
	SeverityLow
	SeverityMedium
	SeverityHigh
	SeverityCriticalCVE
)

func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	case SeverityCriticalCVE:
		return "critical"
	default:
		return "unknown"
	}
}

// CVE is one database entry: dependency versions strictly below
// FixedIn are vulnerable.
type CVE struct {
	ID       string
	Dep      string
	FixedIn  string
	Severity Severity
	Summary  string
}

// Finding is one matched vulnerability.
type Finding struct {
	CVE        CVE
	Dependency Dependency
}

// ErrBadVersion is returned for unparseable version strings.
var ErrBadVersion = errors.New("depscan: bad version")

// CompareVersions compares dotted numeric versions, returning -1, 0, 1.
func CompareVersions(a, b string) (int, error) {
	pa, err := parseVersion(a)
	if err != nil {
		return 0, err
	}
	pb, err := parseVersion(b)
	if err != nil {
		return 0, err
	}
	for i := 0; i < len(pa) || i < len(pb); i++ {
		va, vb := 0, 0
		if i < len(pa) {
			va = pa[i]
		}
		if i < len(pb) {
			vb = pb[i]
		}
		if va != vb {
			if va < vb {
				return -1, nil
			}
			return 1, nil
		}
	}
	return 0, nil
}

func parseVersion(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("%w: empty", ErrBadVersion)
	}
	parts := strings.Split(s, ".")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: %q", ErrBadVersion, s)
		}
		out[i] = n
	}
	return out, nil
}

// Scan matches the manifest's dependencies against the database.
func Scan(m Manifest, db []CVE) ([]Finding, error) {
	var out []Finding
	for _, dep := range m.Deps {
		for _, cve := range db {
			if cve.Dep != dep.Name {
				continue
			}
			cmp, err := CompareVersions(dep.Version, cve.FixedIn)
			if err != nil {
				return nil, fmt.Errorf("depscan: %s: %w", dep.Name, err)
			}
			if cmp < 0 {
				out = append(out, Finding{CVE: cve, Dependency: dep})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CVE.Severity != out[j].CVE.Severity {
			return out[i].CVE.Severity > out[j].CVE.Severity
		}
		return out[i].CVE.ID < out[j].CVE.ID
	})
	return out, nil
}

// BuiltinDB returns the embedded synthetic CVE database. Entries are
// modeled on the vulnerability classes the paper discusses; the OVSDB
// entry mirrors CVE-2018-1000615.
func BuiltinDB() []CVE {
	return []CVE{
		{ID: "CVE-2018-1000615", Dep: "ovsdb", FixedIn: "2.9.0", Severity: SeverityCriticalCVE,
			Summary: "OVSDB implementation allows remote DoS against the controller"},
		{ID: "SYN-2016-0101", Dep: "netty", FixedIn: "4.1.0", Severity: SeverityHigh,
			Summary: "request smuggling in HTTP codec"},
		{ID: "SYN-2017-0204", Dep: "jackson", FixedIn: "2.9.5", Severity: SeverityCriticalCVE,
			Summary: "polymorphic deserialization remote code execution"},
		{ID: "SYN-2017-0318", Dep: "guava", FixedIn: "24.1", Severity: SeverityMedium,
			Summary: "unbounded memory allocation in AtomicDoubleArray"},
		{ID: "SYN-2018-0422", Dep: "karaf", FixedIn: "4.2.1", Severity: SeverityHigh,
			Summary: "LDAP injection in JAAS realm"},
		{ID: "SYN-2018-0533", Dep: "atomix", FixedIn: "3.0.6", Severity: SeverityMedium,
			Summary: "cluster membership spoofing"},
		{ID: "SYN-2019-0647", Dep: "netty", FixedIn: "4.1.35", Severity: SeverityMedium,
			Summary: "HTTP header parsing infinite loop"},
		{ID: "SYN-2019-0712", Dep: "snmp4j", FixedIn: "2.8.0", Severity: SeverityLow,
			Summary: "weak default credentials in agent"},
		{ID: "SYN-2019-0850", Dep: "grpc", FixedIn: "1.21.0", Severity: SeverityHigh,
			Summary: "denial of service via malformed HTTP/2 frames"},
		{ID: "SYN-2020-0913", Dep: "jetty", FixedIn: "9.4.27", Severity: SeverityHigh,
			Summary: "buffered response data leak between requests"},
		{ID: "SYN-2020-1025", Dep: "zookeeper", FixedIn: "3.5.7", Severity: SeverityMedium,
			Summary: "insufficient quorum authentication"},
	}
}

// ONOSManifests returns per-release manifests mirroring the paper's
// observation: dependencies accumulate with each version and several
// pins lag the fixed versions, so the vulnerability count grows.
func ONOSManifests() []Manifest {
	return []Manifest{
		{Project: "onos", Version: "1.12", Deps: []Dependency{
			{Name: "netty", Version: "4.0.36"},
			{Name: "guava", Version: "22.0"},
			{Name: "karaf", Version: "3.0.8"},
		}},
		{Project: "onos", Version: "1.14", Deps: []Dependency{
			{Name: "netty", Version: "4.1.8"},
			{Name: "guava", Version: "22.0"},
			{Name: "karaf", Version: "4.2.0"},
			{Name: "jackson", Version: "2.8.4"},
			{Name: "ovsdb", Version: "2.7.0"},
		}},
		{Project: "onos", Version: "2.0", Deps: []Dependency{
			{Name: "netty", Version: "4.1.8"},
			{Name: "guava", Version: "23.0"},
			{Name: "karaf", Version: "4.2.0"},
			{Name: "jackson", Version: "2.8.4"},
			{Name: "ovsdb", Version: "2.7.0"},
			{Name: "atomix", Version: "3.0.2"},
			{Name: "grpc", Version: "1.14.0"},
		}},
		{Project: "onos", Version: "2.3", Deps: []Dependency{
			{Name: "netty", Version: "4.1.20"},
			{Name: "guava", Version: "23.0"},
			{Name: "karaf", Version: "4.2.0"},
			{Name: "jackson", Version: "2.8.4"},
			{Name: "ovsdb", Version: "2.7.0"},
			{Name: "atomix", Version: "3.0.2"},
			{Name: "grpc", Version: "1.14.0"},
			{Name: "jetty", Version: "9.4.11"},
			{Name: "zookeeper", Version: "3.5.3"},
			{Name: "snmp4j", Version: "2.5.0"},
		}},
	}
}

// TrendPoint is one release's vulnerability count.
type TrendPoint struct {
	Version  string
	Deps     int
	Findings int
	Critical int
}

// VulnerabilityTrend scans every manifest against the database.
func VulnerabilityTrend(manifests []Manifest, db []CVE) ([]TrendPoint, error) {
	out := make([]TrendPoint, 0, len(manifests))
	for _, m := range manifests {
		fs, err := Scan(m, db)
		if err != nil {
			return nil, err
		}
		tp := TrendPoint{Version: m.Version, Deps: len(m.Deps), Findings: len(fs)}
		for _, f := range fs {
			if f.CVE.Severity == SeverityCriticalCVE {
				tp.Critical++
			}
		}
		out = append(out, tp)
	}
	return out, nil
}
