package nmf

import (
	"math"
	"testing"

	"sdnbugs/internal/mathx"
)

// blockMatrix builds a 6x6 matrix with two obvious "topics": docs 0-2
// use terms 0-2, docs 3-5 use terms 3-5.
func blockMatrix() *mathx.Matrix {
	m := mathx.NewMatrix(6, 6)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, 1+float64((i+j)%2))
		}
	}
	for i := 3; i < 6; i++ {
		for j := 3; j < 6; j++ {
			m.Set(i, j, 1+float64((i+j)%2))
		}
	}
	return m
}

func TestFactorizeErrors(t *testing.T) {
	x := blockMatrix()
	if _, err := Factorize(x, Config{Rank: 0}); err != ErrBadRank {
		t.Errorf("want ErrBadRank, got %v", err)
	}
	if _, err := Factorize(mathx.NewMatrix(0, 0), Config{Rank: 2}); err != ErrEmptyMatrix {
		t.Errorf("want ErrEmptyMatrix, got %v", err)
	}
	neg := mathx.NewMatrix(2, 2)
	neg.Set(0, 0, -1)
	if _, err := Factorize(neg, Config{Rank: 1}); err != ErrNegativeX {
		t.Errorf("want ErrNegativeX, got %v", err)
	}
}

func TestFactorsStayNonNegative(t *testing.T) {
	model, err := Factorize(blockMatrix(), Config{Rank: 2, Seed: 7, MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < model.W.Rows(); i++ {
		for _, v := range model.W.Row(i) {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("W has invalid entry %v", v)
			}
		}
	}
	for i := 0; i < model.H.Rows(); i++ {
		for _, v := range model.H.Row(i) {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("H has invalid entry %v", v)
			}
		}
	}
}

func TestErrorNonIncreasing(t *testing.T) {
	model, err := Factorize(blockMatrix(), Config{Rank: 2, Seed: 3, MaxIter: 150, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Errors) < 2 {
		t.Fatalf("too few iterations recorded: %d", len(model.Errors))
	}
	for i := 1; i < len(model.Errors); i++ {
		if model.Errors[i] > model.Errors[i-1]*(1+1e-9) {
			t.Errorf("error increased at iter %d: %v -> %v", i, model.Errors[i-1], model.Errors[i])
		}
	}
}

func TestRecoverBlockStructure(t *testing.T) {
	model, err := Factorize(blockMatrix(), Config{Rank: 2, Seed: 11, MaxIter: 300, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// All docs in the same block must share a dominant topic, and the
	// two blocks must differ.
	t0, err := model.DominantTopic(0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d < 3; d++ {
		td, _ := model.DominantTopic(d)
		if td != t0 {
			t.Errorf("doc %d topic %d, want %d", d, td, t0)
		}
	}
	t3, _ := model.DominantTopic(3)
	if t3 == t0 {
		t.Error("blocks should map to different topics")
	}
	for d := 4; d < 6; d++ {
		td, _ := model.DominantTopic(d)
		if td != t3 {
			t.Errorf("doc %d topic %d, want %d", d, td, t3)
		}
	}
}

func TestTopicTerms(t *testing.T) {
	model, err := Factorize(blockMatrix(), Config{Rank: 2, Seed: 11, MaxIter: 300, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := model.DominantTopic(0)
	terms, err := model.TopicTerms(t0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The first block's topic must be dominated by terms 0-2.
	for _, idx := range terms {
		if idx > 2 {
			t.Errorf("topic term %d outside block 0-2 (terms=%v)", idx, terms)
		}
	}
	if _, err := model.TopicTerms(99, 3); err == nil {
		t.Error("want out-of-range error")
	}
	all, _ := model.TopicTerms(t0, 100)
	if len(all) != 6 {
		t.Errorf("k overflow: %d", len(all))
	}
}

func TestDominantTopicRange(t *testing.T) {
	model, err := Factorize(blockMatrix(), Config{Rank: 2, Seed: 1, MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.DominantTopic(-1); err == nil {
		t.Error("want error for negative doc")
	}
	if _, err := model.DominantTopic(100); err == nil {
		t.Error("want error for doc out of range")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Factorize(blockMatrix(), Config{Rank: 2, Seed: 5, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Factorize(blockMatrix(), Config{Rank: 2, Seed: 5, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.Equal(a.W, b.W, 0) || !mathx.Equal(a.H, b.H, 0) {
		t.Error("same seed should reproduce identical factors")
	}
}
