// Package nmf implements Non-negative Matrix Factorization with
// multiplicative updates (Lee & Seung), the topic-extraction technique
// the paper selects over LDA and HDP for its TF-IDF keyword analysis
// (§II-C) and for the topic-uniqueness study of Figure 14.
package nmf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sdnbugs/internal/mathx"
)

// Errors returned by Factorize.
var (
	ErrBadRank     = errors.New("nmf: rank must be >= 1")
	ErrNegativeX   = errors.New("nmf: input matrix must be non-negative")
	ErrEmptyMatrix = errors.New("nmf: input matrix is empty")
)

const eps = 1e-12

// Config controls the factorization.
type Config struct {
	// Rank is the number of topics (columns of W).
	Rank int
	// MaxIter bounds the multiplicative-update iterations (default 200).
	MaxIter int
	// Tol stops early when the relative reconstruction-error
	// improvement drops below it (default 1e-4).
	Tol float64
	// Seed initializes W and H deterministically.
	Seed int64
}

// Model is a fitted factorization X ≈ W·H with X (docs×terms),
// W (docs×rank) the document-topic weights, and H (rank×terms) the
// topic-term weights.
type Model struct {
	W, H *mathx.Matrix
	// Errors holds the Frobenius reconstruction error after every
	// iteration; it is non-increasing (within numerical tolerance).
	Errors []float64
}

// Factorize runs NMF on x.
func Factorize(x *mathx.Matrix, cfg Config) (*Model, error) {
	if cfg.Rank < 1 {
		return nil, ErrBadRank
	}
	n, m := x.Rows(), x.Cols()
	if n == 0 || m == 0 {
		return nil, ErrEmptyMatrix
	}
	for i := 0; i < n; i++ {
		for _, v := range x.Row(i) {
			if v < 0 {
				return nil, ErrNegativeX
			}
		}
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	k := cfg.Rank

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := mathx.NewMatrix(n, k)
	h := mathx.NewMatrix(k, m)
	scale := meanValue(x)
	if scale <= 0 {
		scale = 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			w.Set(i, j, rng.Float64()*scale+eps)
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			h.Set(i, j, rng.Float64()*scale+eps)
		}
	}

	model := &Model{W: w, H: h}
	prevErr := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		// H <- H .* (WᵀX) ./ (WᵀWH)
		wt := w.T()
		wtx, err := mathx.Mul(wt, x)
		if err != nil {
			return nil, fmt.Errorf("nmf: %w", err)
		}
		wtw, err := mathx.Mul(wt, w)
		if err != nil {
			return nil, fmt.Errorf("nmf: %w", err)
		}
		wtwh, err := mathx.Mul(wtw, h)
		if err != nil {
			return nil, fmt.Errorf("nmf: %w", err)
		}
		for i := 0; i < k; i++ {
			hr, nr, dr := h.Row(i), wtx.Row(i), wtwh.Row(i)
			for j := range hr {
				hr[j] *= nr[j] / (dr[j] + eps)
			}
		}
		// W <- W .* (XHᵀ) ./ (WHHᵀ)
		ht := h.T()
		xht, err := mathx.Mul(x, ht)
		if err != nil {
			return nil, fmt.Errorf("nmf: %w", err)
		}
		hht, err := mathx.Mul(h, ht)
		if err != nil {
			return nil, fmt.Errorf("nmf: %w", err)
		}
		whht, err := mathx.Mul(w, hht)
		if err != nil {
			return nil, fmt.Errorf("nmf: %w", err)
		}
		for i := 0; i < n; i++ {
			wr, nr, dr := w.Row(i), xht.Row(i), whht.Row(i)
			for j := range wr {
				wr[j] *= nr[j] / (dr[j] + eps)
			}
		}
		e := reconstructionError(x, w, h)
		model.Errors = append(model.Errors, e)
		if prevErr < math.Inf(1) && prevErr-e < tol*prevErr {
			break
		}
		prevErr = e
	}
	return model, nil
}

func meanValue(x *mathx.Matrix) float64 {
	var s float64
	n := x.Rows() * x.Cols()
	for i := 0; i < x.Rows(); i++ {
		for _, v := range x.Row(i) {
			s += v
		}
	}
	return s / float64(n)
}

func reconstructionError(x, w, h *mathx.Matrix) float64 {
	wh, err := mathx.Mul(w, h)
	if err != nil {
		return math.Inf(1)
	}
	var s float64
	for i := 0; i < x.Rows(); i++ {
		xr, wr := x.Row(i), wh.Row(i)
		for j := range xr {
			d := xr[j] - wr[j]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// TopicTerms returns, for topic t, the indices of the k terms with the
// largest weight in H.
func (m *Model) TopicTerms(topic, k int) ([]int, error) {
	if topic < 0 || topic >= m.H.Rows() {
		return nil, fmt.Errorf("nmf: topic %d out of range [0,%d)", topic, m.H.Rows())
	}
	row := m.H.Row(topic)
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if row[idx[a]] != row[idx[b]] {
			return row[idx[a]] > row[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k], nil
}

// DominantTopic returns the topic with the highest weight for document
// row d of W.
func (m *Model) DominantTopic(d int) (int, error) {
	if d < 0 || d >= m.W.Rows() {
		return 0, fmt.Errorf("nmf: document %d out of range [0,%d)", d, m.W.Rows())
	}
	return mathx.ArgMax(m.W.Row(d)), nil
}
