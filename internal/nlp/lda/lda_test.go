package lda

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// twoTopicCorpus builds documents drawn from two disjoint vocabularies.
func twoTopicCorpus(n int, seed int64) ([][]string, []int) {
	rng := rand.New(rand.NewSource(seed))
	pools := [][]string{
		{"crash", "exception", "stack", "restart", "panic"},
		{"flow", "packet", "switch", "port", "vlan"},
	}
	docs := make([][]string, n)
	truth := make([]int, n)
	for i := range docs {
		p := i % 2
		truth[i] = p
		doc := make([]string, 12)
		for j := range doc {
			doc[j] = pools[p][rng.Intn(len(pools[p]))]
		}
		docs[i] = doc
	}
	return docs, truth
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Config{Topics: 2}); !errors.Is(err, ErrNoDocs) {
		t.Errorf("want ErrNoDocs, got %v", err)
	}
	if _, err := Fit([][]string{{"a"}}, Config{Topics: 0}); !errors.Is(err, ErrBadRank) {
		t.Errorf("want ErrBadRank, got %v", err)
	}
	if _, err := Fit([][]string{{}, {}}, Config{Topics: 2}); !errors.Is(err, ErrNoDocs) {
		t.Errorf("want ErrNoDocs for empty docs, got %v", err)
	}
}

func TestRecoversTopicStructure(t *testing.T) {
	docs, truth := twoTopicCorpus(60, 1)
	m, err := Fit(docs, Config{Topics: 2, Seed: 1, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	// All docs of a true class should share a dominant topic, and the
	// two classes should map to different topics.
	t0, err := m.DominantTopic(0)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := m.DominantTopic(1)
	if t0 == t1 {
		t.Fatal("the two classes should separate")
	}
	agree := 0
	for d := range docs {
		dt, _ := m.DominantTopic(d)
		want := t0
		if truth[d] == 1 {
			want = t1
		}
		if dt == want {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(docs)); frac < 0.9 {
		t.Errorf("topic agreement = %.2f, want >= 0.9", frac)
	}
}

func TestTopWordsPerTopic(t *testing.T) {
	docs, _ := twoTopicCorpus(60, 2)
	m, err := Fit(docs, Config{Topics: 2, Seed: 2, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	crashTopic, _ := m.DominantTopic(0) // doc 0 is the crash class
	words, err := m.TopWords(crashTopic, 3)
	if err != nil {
		t.Fatal(err)
	}
	crashVocab := map[string]bool{"crash": true, "exception": true, "stack": true, "restart": true, "panic": true}
	for _, w := range words {
		if !crashVocab[w] {
			t.Errorf("top word %q outside the crash vocabulary", w)
		}
	}
	if _, err := m.TopWords(99, 3); err == nil {
		t.Error("want out-of-range error")
	}
}

func TestDocTopicsDistribution(t *testing.T) {
	docs, _ := twoTopicCorpus(10, 3)
	m, err := Fit(docs, Config{Topics: 3, Seed: 3, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := m.DocTopics(0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dist {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("doc-topic distribution sums to %v", sum)
	}
	if _, err := m.DocTopics(-1); err == nil {
		t.Error("want range error")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	docs, _ := twoTopicCorpus(30, 4)
	a, err := Fit(docs, Config{Topics: 2, Seed: 9, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(docs, Config{Topics: 2, Seed: 9, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	for d := range docs {
		da, _ := a.DominantTopic(d)
		db, _ := b.DominantTopic(d)
		if da != db {
			t.Fatal("same seed should reproduce identical assignments")
		}
	}
}
