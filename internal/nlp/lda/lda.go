// Package lda implements Latent Dirichlet Allocation with collapsed
// Gibbs sampling — one of the three keyword-extraction approaches the
// paper weighed (§II-C: LDA, HDP, and the NMF/TF-IDF route it chose).
// It exists so the NMF-vs-LDA choice can be evaluated as an ablation
// rather than taken on faith.
package lda

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Errors returned by Fit.
var (
	ErrNoDocs  = errors.New("lda: empty corpus")
	ErrBadRank = errors.New("lda: topics must be >= 1")
)

// Config controls training.
type Config struct {
	// Topics is the number of latent topics.
	Topics int
	// Alpha is the document-topic Dirichlet prior (default 50/Topics).
	Alpha float64
	// Beta is the topic-word Dirichlet prior (default 0.01).
	Beta float64
	// Iterations of Gibbs sweeps (default 150).
	Iterations int
	// Seed makes sampling deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 50 / float64(max(c.Topics, 1))
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.Iterations <= 0 {
		c.Iterations = 150
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Model is a fitted LDA model.
type Model struct {
	topics int
	vocab  map[string]int
	words  []string

	// docTopic[d][k] = tokens of doc d assigned to topic k.
	docTopic [][]int
	// topicWord[k][w] = tokens of word w assigned to topic k.
	topicWord [][]int
	// topicTotal[k] = total tokens on topic k.
	topicTotal []int
	// docLen[d] = tokens in doc d.
	docLen []int
}

// Fit runs collapsed Gibbs sampling over tokenized documents.
func Fit(docs [][]string, cfg Config) (*Model, error) {
	if cfg.Topics < 1 {
		return nil, ErrBadRank
	}
	cfg = cfg.withDefaults()
	if len(docs) == 0 {
		return nil, ErrNoDocs
	}
	m := &Model{topics: cfg.Topics, vocab: map[string]int{}}
	type tok struct{ doc, word int }
	var tokens []tok
	for d, doc := range docs {
		for _, w := range doc {
			id, ok := m.vocab[w]
			if !ok {
				id = len(m.words)
				m.vocab[w] = id
				m.words = append(m.words, w)
			}
			tokens = append(tokens, tok{d, id})
		}
	}
	if len(tokens) == 0 {
		return nil, ErrNoDocs
	}
	v := len(m.words)
	k := cfg.Topics
	m.docTopic = make([][]int, len(docs))
	m.docLen = make([]int, len(docs))
	for d := range m.docTopic {
		m.docTopic[d] = make([]int, k)
	}
	m.topicWord = make([][]int, k)
	for t := range m.topicWord {
		m.topicWord[t] = make([]int, v)
	}
	m.topicTotal = make([]int, k)

	rng := rand.New(rand.NewSource(cfg.Seed))
	assign := make([]int, len(tokens))
	for i, tk := range tokens {
		z := rng.Intn(k)
		assign[i] = z
		m.docTopic[tk.doc][z]++
		m.topicWord[z][tk.word]++
		m.topicTotal[z]++
		m.docLen[tk.doc]++
	}

	probs := make([]float64, k)
	for it := 0; it < cfg.Iterations; it++ {
		for i, tk := range tokens {
			z := assign[i]
			// Remove the token's current assignment.
			m.docTopic[tk.doc][z]--
			m.topicWord[z][tk.word]--
			m.topicTotal[z]--
			// Sample a new topic from the collapsed conditional.
			var total float64
			for t := 0; t < k; t++ {
				p := (float64(m.docTopic[tk.doc][t]) + cfg.Alpha) *
					(float64(m.topicWord[t][tk.word]) + cfg.Beta) /
					(float64(m.topicTotal[t]) + cfg.Beta*float64(v))
				probs[t] = p
				total += p
			}
			r := rng.Float64() * total
			z = k - 1
			for t := 0; t < k; t++ {
				r -= probs[t]
				if r < 0 {
					z = t
					break
				}
			}
			assign[i] = z
			m.docTopic[tk.doc][z]++
			m.topicWord[z][tk.word]++
			m.topicTotal[z]++
		}
	}
	return m, nil
}

// Topics returns the number of topics.
func (m *Model) Topics() int { return m.topics }

// VocabSize returns the vocabulary size.
func (m *Model) VocabSize() int { return len(m.words) }

// DocTopics returns the topic distribution of document d.
func (m *Model) DocTopics(d int) ([]float64, error) {
	if d < 0 || d >= len(m.docTopic) {
		return nil, fmt.Errorf("lda: document %d out of range [0,%d)", d, len(m.docTopic))
	}
	out := make([]float64, m.topics)
	n := float64(m.docLen[d])
	if n == 0 {
		return out, nil
	}
	for t, c := range m.docTopic[d] {
		out[t] = float64(c) / n
	}
	return out, nil
}

// DominantTopic returns the most probable topic for document d.
func (m *Model) DominantTopic(d int) (int, error) {
	dist, err := m.DocTopics(d)
	if err != nil {
		return 0, err
	}
	best := 0
	for t, p := range dist {
		if p > dist[best] {
			best = t
		}
	}
	return best, nil
}

// TopWords returns topic t's k most probable words.
func (m *Model) TopWords(topic, k int) ([]string, error) {
	if topic < 0 || topic >= m.topics {
		return nil, fmt.Errorf("lda: topic %d out of range [0,%d)", topic, m.topics)
	}
	idx := make([]int, len(m.words))
	for i := range idx {
		idx[i] = i
	}
	counts := m.topicWord[topic]
	sort.Slice(idx, func(a, b int) bool {
		if counts[idx[a]] != counts[idx[b]] {
			return counts[idx[a]] > counts[idx[b]]
		}
		return m.words[idx[a]] < m.words[idx[b]]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = m.words[idx[i]]
	}
	return out, nil
}
