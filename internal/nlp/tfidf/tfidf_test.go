package tfidf

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"sdnbugs/internal/mathx"
)

func docs() [][]string {
	return [][]string{
		{"controller", "crash", "reboot"},
		{"controller", "flow", "drop"},
		{"crash", "memory", "leak", "crash"},
		{"flow", "table", "overflow"},
	}
}

func TestFitErrors(t *testing.T) {
	var v Vectorizer
	if err := v.Fit(nil); err == nil {
		t.Error("want ErrNoDocs")
	}
	if _, err := v.Transform([]string{"x"}); err != ErrNotFitted {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
	if _, err := v.TransformAll(docs()); err != ErrNotFitted {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
	if _, err := v.TopTerms(nil, 3); err != ErrNotFitted {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestVocabulary(t *testing.T) {
	var v Vectorizer
	if err := v.Fit(docs()); err != nil {
		t.Fatal(err)
	}
	// 9 unique terms: controller crash reboot flow drop memory leak table overflow.
	if v.VocabSize() != 9 {
		t.Errorf("vocab size = %d, want 9", v.VocabSize())
	}
	// controller, crash, flow each appear in 2 docs -> head of vocab.
	head := v.Terms()[:3]
	want := []string{"controller", "crash", "flow"}
	if !reflect.DeepEqual(head, want) {
		t.Errorf("vocab head = %v, want %v", head, want)
	}
}

func TestIDFMonotoneInDF(t *testing.T) {
	var v Vectorizer
	if err := v.Fit(docs()); err != nil {
		t.Fatal(err)
	}
	common, ok1 := v.IDF("controller") // df=2
	rare, ok2 := v.IDF("memory")       // df=1
	if !ok1 || !ok2 {
		t.Fatal("terms missing from vocab")
	}
	if !(rare > common) {
		t.Errorf("idf(rare)=%v should exceed idf(common)=%v", rare, common)
	}
	if _, ok := v.IDF("nonexistent"); ok {
		t.Error("unknown term should not be found")
	}
}

func TestTransformNormalizedAndNonNegative(t *testing.T) {
	var v Vectorizer
	if err := v.Fit(docs()); err != nil {
		t.Fatal(err)
	}
	vec, err := v.Transform([]string{"controller", "crash", "unknownterm"})
	if err != nil {
		t.Fatal(err)
	}
	if n := mathx.Norm2(vec); math.Abs(n-1) > 1e-9 {
		t.Errorf("norm = %v, want 1", n)
	}
	for i, x := range vec {
		if x < 0 {
			t.Errorf("component %d negative: %v", i, x)
		}
	}
	// OOV-only document maps to the zero vector.
	zero, err := v.Transform([]string{"zzz"})
	if err != nil {
		t.Fatal(err)
	}
	if mathx.Norm2(zero) != 0 {
		t.Error("OOV document should map to zero vector")
	}
}

func TestTransformAllShape(t *testing.T) {
	var v Vectorizer
	m, err := v.FitTransform(docs())
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 4 || m.Cols() != v.VocabSize() {
		t.Errorf("shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestMinDFAndMaxVocab(t *testing.T) {
	v := Vectorizer{MinDF: 2}
	if err := v.Fit(docs()); err != nil {
		t.Fatal(err)
	}
	if v.VocabSize() != 3 {
		t.Errorf("MinDF=2 vocab = %d (%v), want 3", v.VocabSize(), v.Terms())
	}
	v2 := Vectorizer{MaxVocab: 2}
	if err := v2.Fit(docs()); err != nil {
		t.Fatal(err)
	}
	if v2.VocabSize() != 2 {
		t.Errorf("MaxVocab=2 vocab = %d", v2.VocabSize())
	}
}

func TestSublinear(t *testing.T) {
	// With sublinear TF the repeated term's weight shrinks relative
	// to raw TF, but stays positive.
	raw := Vectorizer{}
	sub := Vectorizer{Sublinear: true}
	d := docs()
	if err := raw.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := sub.Fit(d); err != nil {
		t.Fatal(err)
	}
	doc := []string{"crash", "crash", "crash", "memory"}
	rv, _ := raw.Transform(doc)
	sv, _ := sub.Transform(doc)
	idxCrash := indexOf(raw.Terms(), "crash")
	idxMem := indexOf(raw.Terms(), "memory")
	// Ratio crash/memory must be larger under raw TF.
	rawRatio := rv[idxCrash] / rv[idxMem]
	subRatio := sv[idxCrash] / sv[idxMem]
	if !(rawRatio > subRatio) {
		t.Errorf("raw ratio %v should exceed sublinear ratio %v", rawRatio, subRatio)
	}
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

func TestTopTerms(t *testing.T) {
	var v Vectorizer
	if err := v.Fit(docs()); err != nil {
		t.Fatal(err)
	}
	vec, _ := v.Transform([]string{"memory", "leak", "crash"})
	top, err := v.TopTerms(vec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d terms", len(top))
	}
	// memory/leak are rarer than crash, so they outrank it.
	for _, term := range top {
		if term == "crash" {
			t.Errorf("crash should not be a top-2 term: %v", top)
		}
	}
	if _, err := v.TopTerms([]float64{1}, 1); err == nil {
		t.Error("want length-mismatch error")
	}
	// k larger than non-zero terms.
	all, _ := v.TopTerms(vec, 100)
	if len(all) != 3 {
		t.Errorf("k overflow: got %d", len(all))
	}
}

func TestTransformNonNegativeProperty(t *testing.T) {
	var v Vectorizer
	if err := v.Fit(docs()); err != nil {
		t.Fatal(err)
	}
	f := func(words []string) bool {
		doc := make([]string, 0, len(words))
		for _, w := range words {
			doc = append(doc, strings.ToLower(w))
		}
		vec, err := v.Transform(doc)
		if err != nil {
			return false
		}
		for _, x := range vec {
			if x < 0 || math.IsNaN(x) {
				return false
			}
		}
		n := mathx.Norm2(vec)
		return n == 0 || math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
