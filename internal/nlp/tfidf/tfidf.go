// Package tfidf implements the Term Frequency–Inverse Document
// Frequency vectorizer the paper's NLP stage uses as the basis for both
// keyword extraction (feeding NMF) and classification features.
package tfidf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sdnbugs/internal/mathx"
)

// Errors returned by the vectorizer.
var (
	ErrNotFitted = errors.New("tfidf: vectorizer not fitted")
	ErrNoDocs    = errors.New("tfidf: no documents")
)

// Vectorizer learns a vocabulary and IDF weights from a corpus of
// tokenized documents and maps documents to dense TF-IDF vectors.
type Vectorizer struct {
	// MinDF drops terms appearing in fewer than MinDF documents
	// (default 1: keep everything).
	MinDF int
	// MaxVocab caps the vocabulary at the MaxVocab highest-document-
	// frequency terms (0 = unlimited).
	MaxVocab int
	// Sublinear uses 1+log(tf) instead of raw term frequency.
	Sublinear bool

	vocab map[string]int // term -> column index
	terms []string       // column index -> term
	idf   []float64
	nDocs int
}

// Fit learns the vocabulary and IDF weights from docs, where each
// document is a slice of (already preprocessed) tokens.
func (v *Vectorizer) Fit(docs [][]string) error {
	if len(docs) == 0 {
		return ErrNoDocs
	}
	df := map[string]int{}
	for _, doc := range docs {
		seen := map[string]struct{}{}
		for _, tok := range doc {
			if _, ok := seen[tok]; !ok {
				seen[tok] = struct{}{}
				df[tok]++
			}
		}
	}
	minDF := v.MinDF
	if minDF < 1 {
		minDF = 1
	}
	type termDF struct {
		term string
		df   int
	}
	kept := make([]termDF, 0, len(df))
	for term, n := range df {
		if n >= minDF {
			kept = append(kept, termDF{term, n})
		}
	}
	// Deterministic ordering: by descending DF, then lexicographic.
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].df != kept[j].df {
			return kept[i].df > kept[j].df
		}
		return kept[i].term < kept[j].term
	})
	if v.MaxVocab > 0 && len(kept) > v.MaxVocab {
		kept = kept[:v.MaxVocab]
	}
	v.vocab = make(map[string]int, len(kept))
	v.terms = make([]string, len(kept))
	v.idf = make([]float64, len(kept))
	v.nDocs = len(docs)
	for i, t := range kept {
		v.vocab[t.term] = i
		v.terms[i] = t.term
		// Smoothed IDF, as in sklearn: ln((1+n)/(1+df)) + 1.
		v.idf[i] = math.Log(float64(1+len(docs))/float64(1+t.df)) + 1
	}
	return nil
}

// VocabSize returns the number of learned terms.
func (v *Vectorizer) VocabSize() int { return len(v.terms) }

// Terms returns the learned vocabulary in column order (not a copy;
// callers must not modify).
func (v *Vectorizer) Terms() []string { return v.terms }

// IDF returns the idf weight of the given term and whether it is in
// the vocabulary.
func (v *Vectorizer) IDF(term string) (float64, bool) {
	i, ok := v.vocab[term]
	if !ok {
		return 0, false
	}
	return v.idf[i], true
}

// Transform maps one tokenized document to its L2-normalized TF-IDF
// vector. Out-of-vocabulary tokens are ignored.
func (v *Vectorizer) Transform(doc []string) ([]float64, error) {
	if v.vocab == nil {
		return nil, ErrNotFitted
	}
	vec := make([]float64, len(v.terms))
	for _, tok := range doc {
		if i, ok := v.vocab[tok]; ok {
			vec[i]++
		}
	}
	for i := range vec {
		if vec[i] == 0 {
			continue
		}
		tf := vec[i]
		if v.Sublinear {
			tf = 1 + math.Log(tf)
		}
		vec[i] = tf * v.idf[i]
	}
	mathx.Normalize(vec)
	return vec, nil
}

// TransformAll maps every document and stacks the vectors into a
// documents×vocab matrix.
func (v *Vectorizer) TransformAll(docs [][]string) (*mathx.Matrix, error) {
	if v.vocab == nil {
		return nil, ErrNotFitted
	}
	m := mathx.NewMatrix(len(docs), len(v.terms))
	for i, doc := range docs {
		vec, err := v.Transform(doc)
		if err != nil {
			return nil, fmt.Errorf("tfidf: transform doc %d: %w", i, err)
		}
		copy(m.Row(i), vec)
	}
	return m, nil
}

// FitTransform fits on docs and returns their matrix.
func (v *Vectorizer) FitTransform(docs [][]string) (*mathx.Matrix, error) {
	if err := v.Fit(docs); err != nil {
		return nil, err
	}
	return v.TransformAll(docs)
}

// TopTerms returns the k highest-weighted terms of a TF-IDF vector,
// the paper's "keyword extraction" step.
func (v *Vectorizer) TopTerms(vec []float64, k int) ([]string, error) {
	if v.vocab == nil {
		return nil, ErrNotFitted
	}
	if len(vec) != len(v.terms) {
		return nil, fmt.Errorf("tfidf: vector length %d != vocab %d", len(vec), len(v.terms))
	}
	type tw struct {
		term string
		w    float64
	}
	ws := make([]tw, 0, len(vec))
	for i, w := range vec {
		if w > 0 {
			ws = append(ws, tw{v.terms[i], w})
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].term < ws[j].term
	})
	if k > len(ws) {
		k = len(ws)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = ws[i].term
	}
	return out, nil
}
