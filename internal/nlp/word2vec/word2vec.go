// Package word2vec implements skip-gram Word2Vec with negative sampling
// (Mikolov et al.), the embedding technique the paper's NLP stage uses
// to map bug descriptions into a Euclidean space (§II-C).
package word2vec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/parallel"
)

// Errors returned by Train and the model accessors.
var (
	ErrNoCorpus   = errors.New("word2vec: empty corpus")
	ErrNotInVocab = errors.New("word2vec: word not in vocabulary")
)

// Config controls training.
type Config struct {
	// Dim is the embedding dimensionality (default 50).
	Dim int
	// Window is the max context distance (default 4).
	Window int
	// Epochs over the corpus (default 5).
	Epochs int
	// Negative is the number of negative samples per positive (default 5).
	Negative int
	// LearningRate is the initial SGD step (default 0.025), decayed
	// linearly to 1e-4 of itself across training.
	LearningRate float64
	// MinCount drops words occurring fewer times (default 1).
	MinCount int
	// Seed makes training deterministic.
	Seed int64
	// Workers selects the training mode. 0 or 1 (the default) runs
	// the exact sequential SGD this package has always produced —
	// byte-for-byte reproducible against historical models. Values
	// > 1 train each epoch over Workers sentence shards in parallel:
	// every shard starts from the epoch's snapshot, trains with its
	// own deterministically-seeded RNG, and the per-shard weight
	// deltas are merged back in shard index order. Sharded training
	// is deterministic for a fixed Workers value — independent of
	// GOMAXPROCS and goroutine scheduling — but its embeddings are a
	// different (equally valid) model than the sequential ones, so
	// Workers is part of the model's reproducibility key.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 50
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.025
	}
	if c.MinCount <= 0 {
		c.MinCount = 1
	}
	return c
}

// Model holds trained embeddings.
type Model struct {
	dim    int
	vocab  map[string]int
	words  []string
	in     []float64 // input vectors, len = |vocab| * dim
	counts []int
}

// Train fits embeddings on sentences (each a token slice).
func Train(sentences [][]string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(sentences) == 0 {
		return nil, ErrNoCorpus
	}
	counts := map[string]int{}
	total := 0
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
			total++
		}
	}
	if total == 0 {
		return nil, ErrNoCorpus
	}
	type wc struct {
		w string
		c int
	}
	kept := make([]wc, 0, len(counts))
	for w, c := range counts {
		if c >= cfg.MinCount {
			kept = append(kept, wc{w, c})
		}
	}
	if len(kept) == 0 {
		return nil, ErrNoCorpus
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].c != kept[j].c {
			return kept[i].c > kept[j].c
		}
		return kept[i].w < kept[j].w
	})
	m := &Model{
		dim:   cfg.Dim,
		vocab: make(map[string]int, len(kept)),
		words: make([]string, len(kept)),
	}
	m.counts = make([]int, len(kept))
	for i, k := range kept {
		m.vocab[k.w] = i
		m.words[i] = k.w
		m.counts[i] = k.c
	}
	v := len(kept)
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.in = make([]float64, v*cfg.Dim)
	out := make([]float64, v*cfg.Dim)
	for i := range m.in {
		m.in[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
	}

	// Unigram^0.75 table for negative sampling.
	negTable := buildNegTable(m.counts, 1<<16)

	// Encode corpus as vocabulary ids.
	ids := make([][]int, 0, len(sentences))
	var nTokens int
	for _, s := range sentences {
		row := make([]int, 0, len(s))
		for _, w := range s {
			if id, ok := m.vocab[w]; ok {
				row = append(row, id)
			}
		}
		if len(row) > 0 {
			ids = append(ids, row)
			nTokens += len(row)
		}
	}
	if nTokens == 0 {
		return nil, ErrNoCorpus
	}

	if cfg.Workers > 1 {
		trainSharded(m, out, ids, cfg, negTable, nTokens)
	} else {
		trainSequential(m, out, ids, cfg, rng, negTable, nTokens)
	}
	return m, nil
}

// trainSequential is the historical single-threaded SGD: one RNG
// stream (continuing from vector initialization), tokens visited in
// corpus order. Its output is the package's byte-stability baseline.
func trainSequential(m *Model, out []float64, ids [][]int, cfg Config, rng *rand.Rand, negTable []int, nTokens int) {
	steps := cfg.Epochs * nTokens
	step := 0
	grad := make([]float64, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		step = trainSpan(cfg, m.in, out, ids, negTable, rng, step, steps, grad)
	}
}

// trainSpan runs one SGD pass over sents against the given weight
// slices, starting at global step `step` of `steps`, and returns the
// advanced step counter. It is the shared inner loop of both the
// sequential and the sharded training modes.
func trainSpan(cfg Config, in, out []float64, sents [][]int, negTable []int, rng *rand.Rand, step, steps int, grad []float64) int {
	for _, sent := range sents {
		for pos, center := range sent {
			step++
			lr := cfg.LearningRate * (1 - float64(step)/float64(steps+1))
			if lr < cfg.LearningRate*1e-4 {
				lr = cfg.LearningRate * 1e-4
			}
			win := 1 + rng.Intn(cfg.Window)
			for off := -win; off <= win; off++ {
				cpos := pos + off
				if off == 0 || cpos < 0 || cpos >= len(sent) {
					continue
				}
				ctx := sent[cpos]
				inVec := in[center*cfg.Dim : (center+1)*cfg.Dim]
				mathx.Fill(grad, 0)
				// Positive sample + negatives.
				for s := 0; s <= cfg.Negative; s++ {
					var target int
					var label float64
					if s == 0 {
						target, label = ctx, 1
					} else {
						target = negTable[rng.Intn(len(negTable))]
						if target == ctx {
							continue
						}
						label = 0
					}
					outVec := out[target*cfg.Dim : (target+1)*cfg.Dim]
					score := sigmoid(mathx.Dot(inVec, outVec))
					g := lr * (label - score)
					mathx.Axpy(g, outVec, grad)
					mathx.Axpy(g, inVec, outVec)
				}
				for i := range inVec {
					inVec[i] += grad[i]
				}
			}
		}
	}
	return step
}

// trainSharded trains each epoch over Workers contiguous sentence
// shards in parallel. Every shard copies the epoch-start snapshot of
// both weight matrices, trains it independently with an RNG seeded
// from (Seed, epoch, shard), and the shards' weight deltas are then
// added back onto the snapshot in ascending shard order — an ordered
// reduction, so the merged model depends only on the configuration,
// never on scheduling. The learning-rate schedule positions each
// shard at its corpus offset, matching the sequential decay curve.
func trainSharded(m *Model, out []float64, ids [][]int, cfg Config, negTable []int, nTokens int) {
	shards := cfg.Workers
	if shards > len(ids) {
		shards = len(ids)
	}
	bounds := shardBounds(len(ids), shards)
	// tokOff[s] counts corpus tokens before shard s, anchoring each
	// shard's learning-rate schedule at its sequential position.
	tokOff := make([]int, shards+1)
	for s := 0; s < shards; s++ {
		n := 0
		for _, sent := range ids[bounds[s]:bounds[s+1]] {
			n += len(sent)
		}
		tokOff[s+1] = tokOff[s] + n
	}
	steps := cfg.Epochs * nTokens
	type shardWeights struct{ in, out []float64 }
	locals := make([]shardWeights, shards)
	for s := range locals {
		locals[s] = shardWeights{
			in:  make([]float64, len(m.in)),
			out: make([]float64, len(out)),
		}
	}
	baseIn := make([]float64, len(m.in))
	baseOut := make([]float64, len(out))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		copy(baseIn, m.in)
		copy(baseOut, out)
		parallel.ForEach(shards, shards, func(s int) {
			local := locals[s]
			copy(local.in, baseIn)
			copy(local.out, baseOut)
			rng := rand.New(rand.NewSource(shardSeed(cfg.Seed, epoch, s)))
			grad := make([]float64, cfg.Dim)
			trainSpan(cfg, local.in, local.out, ids[bounds[s]:bounds[s+1]],
				negTable, rng, epoch*nTokens+tokOff[s], steps, grad)
		})
		// Ordered merge: model = snapshot + Σ_s (shard_s − snapshot).
		for s := 0; s < shards; s++ {
			for i, v := range locals[s].in {
				m.in[i] += v - baseIn[i]
			}
			for i, v := range locals[s].out {
				out[i] += v - baseOut[i]
			}
		}
	}
}

// shardBounds splits n items into k near-equal contiguous ranges,
// returning k+1 boundary indices.
func shardBounds(n, k int) []int {
	bounds := make([]int, k+1)
	for s := 0; s <= k; s++ {
		bounds[s] = s * n / k
	}
	return bounds
}

// shardSeed derives the deterministic RNG seed of one (epoch, shard)
// training cell from the model seed.
func shardSeed(seed int64, epoch, shard int) int64 {
	return seed + int64(epoch)*1_000_003 + int64(shard)*7_919
}

func sigmoid(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

func buildNegTable(counts []int, size int) []int {
	var z float64
	pows := make([]float64, len(counts))
	for i, c := range counts {
		pows[i] = math.Pow(float64(c), 0.75)
		z += pows[i]
	}
	table := make([]int, 0, size)
	for i, p := range pows {
		n := int(p / z * float64(size))
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			table = append(table, i)
		}
	}
	return table
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the vocabulary size.
func (m *Model) VocabSize() int { return len(m.words) }

// Vector returns the embedding of word (a view; callers must not
// modify), or ErrNotInVocab.
func (m *Model) Vector(word string) ([]float64, error) {
	id, ok := m.vocab[word]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotInVocab, word)
	}
	return m.in[id*m.dim : (id+1)*m.dim], nil
}

// Similarity returns the cosine similarity of two words' embeddings.
func (m *Model) Similarity(a, b string) (float64, error) {
	va, err := m.Vector(a)
	if err != nil {
		return 0, err
	}
	vb, err := m.Vector(b)
	if err != nil {
		return 0, err
	}
	return mathx.CosineSimilarity(va, vb), nil
}

// MostSimilar returns up to k vocabulary words most similar to word,
// excluding the word itself.
func (m *Model) MostSimilar(word string, k int) ([]string, error) {
	v, err := m.Vector(word)
	if err != nil {
		return nil, err
	}
	type ws struct {
		w string
		s float64
	}
	sims := make([]ws, 0, len(m.words))
	for _, other := range m.words {
		if other == word {
			continue
		}
		ov, _ := m.Vector(other)
		sims = append(sims, ws{other, mathx.CosineSimilarity(v, ov)})
	}
	sort.Slice(sims, func(i, j int) bool {
		if sims[i].s != sims[j].s {
			return sims[i].s > sims[j].s
		}
		return sims[i].w < sims[j].w
	})
	if k > len(sims) {
		k = len(sims)
	}
	outWords := make([]string, k)
	for i := 0; i < k; i++ {
		outWords[i] = sims[i].w
	}
	return outWords, nil
}

// DocVector returns the mean of the embeddings of the document's
// in-vocabulary tokens — the paper's document-to-Euclidean-space map.
// An all-OOV document maps to the zero vector.
func (m *Model) DocVector(tokens []string) []float64 {
	vec := make([]float64, m.dim)
	var n int
	for _, t := range tokens {
		if id, ok := m.vocab[t]; ok {
			mathx.Axpy(1, m.in[id*m.dim:(id+1)*m.dim], vec)
			n++
		}
	}
	if n > 0 {
		mathx.Scale(vec, 1/float64(n))
	}
	return vec
}
