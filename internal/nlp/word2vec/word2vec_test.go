package word2vec

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"sdnbugs/internal/mathx"
)

// syntheticCorpus builds sentences from two disjoint topic clusters so
// that within-cluster words co-occur and across-cluster words never do.
func syntheticCorpus(n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	clusterA := []string{"crash", "exception", "nullpointer", "stacktrace", "restart"}
	clusterB := []string{"flow", "packet", "switch", "port", "openflow"}
	var out [][]string
	for i := 0; i < n; i++ {
		var pool []string
		if i%2 == 0 {
			pool = clusterA
		} else {
			pool = clusterB
		}
		sent := make([]string, 8)
		for j := range sent {
			sent[j] = pool[rng.Intn(len(pool))]
		}
		out = append(out, sent)
	}
	return out
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); !errors.Is(err, ErrNoCorpus) {
		t.Errorf("want ErrNoCorpus, got %v", err)
	}
	if _, err := Train([][]string{{}}, Config{}); !errors.Is(err, ErrNoCorpus) {
		t.Errorf("want ErrNoCorpus for empty sentences, got %v", err)
	}
	if _, err := Train([][]string{{"a", "a"}}, Config{MinCount: 10}); !errors.Is(err, ErrNoCorpus) {
		t.Errorf("want ErrNoCorpus when MinCount drops all, got %v", err)
	}
}

func TestVocabAndVector(t *testing.T) {
	m, err := Train(syntheticCorpus(50, 1), Config{Dim: 16, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.VocabSize() != 10 {
		t.Errorf("vocab = %d, want 10", m.VocabSize())
	}
	if m.Dim() != 16 {
		t.Errorf("dim = %d", m.Dim())
	}
	v, err := m.Vector("crash")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 16 || !mathx.AllFinite(v) {
		t.Errorf("bad vector: %v", v)
	}
	if _, err := m.Vector("nosuchword"); !errors.Is(err, ErrNotInVocab) {
		t.Errorf("want ErrNotInVocab, got %v", err)
	}
}

func TestClusterSimilarityStructure(t *testing.T) {
	m, err := Train(syntheticCorpus(400, 2), Config{Dim: 24, Epochs: 8, Seed: 2, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	within, err := m.Similarity("crash", "exception")
	if err != nil {
		t.Fatal(err)
	}
	across, err := m.Similarity("crash", "packet")
	if err != nil {
		t.Fatal(err)
	}
	if !(within > across) {
		t.Errorf("within-cluster similarity %v should exceed across-cluster %v", within, across)
	}
}

func TestMostSimilar(t *testing.T) {
	m, err := Train(syntheticCorpus(400, 3), Config{Dim: 24, Epochs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	top, err := m.MostSimilar("flow", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 4 {
		t.Fatalf("got %d words", len(top))
	}
	clusterB := map[string]bool{"packet": true, "switch": true, "port": true, "openflow": true}
	hits := 0
	for _, w := range top {
		if w == "flow" {
			t.Error("MostSimilar must exclude the query word")
		}
		if clusterB[w] {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("only %d of top-4 neighbours of 'flow' are in its cluster: %v", hits, top)
	}
	if _, err := m.MostSimilar("absent", 3); !errors.Is(err, ErrNotInVocab) {
		t.Errorf("want ErrNotInVocab, got %v", err)
	}
	all, _ := m.MostSimilar("flow", 100)
	if len(all) != m.VocabSize()-1 {
		t.Errorf("k overflow: %d", len(all))
	}
}

func TestDocVector(t *testing.T) {
	m, err := Train(syntheticCorpus(100, 4), Config{Dim: 8, Epochs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dv := m.DocVector([]string{"crash", "exception", "oovword"})
	if len(dv) != 8 || !mathx.AllFinite(dv) {
		t.Fatalf("bad doc vector %v", dv)
	}
	// Mean of single word == that word's vector.
	single := m.DocVector([]string{"crash"})
	wv, _ := m.Vector("crash")
	for i := range single {
		if math.Abs(single[i]-wv[i]) > 1e-12 {
			t.Fatal("single-token doc vector should equal the word vector")
		}
	}
	// All-OOV doc -> zero vector.
	zero := m.DocVector([]string{"xyz"})
	if mathx.Norm2(zero) != 0 {
		t.Error("OOV doc should be zero vector")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	c := syntheticCorpus(60, 5)
	m1, err := Train(c, Config{Dim: 12, Epochs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(c, Config{Dim: 12, Epochs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := m1.Vector("crash")
	v2, _ := m2.Vector("crash")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed should reproduce identical embeddings")
		}
	}
}

func TestMinCount(t *testing.T) {
	sents := [][]string{
		{"common", "common", "common", "rare"},
		{"common", "common"},
	}
	m, err := Train(sents, Config{Dim: 4, MinCount: 2, Epochs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Vector("rare"); err == nil {
		t.Error("rare word should be dropped by MinCount")
	}
	if _, err := m.Vector("common"); err != nil {
		t.Errorf("common word missing: %v", err)
	}
}

func TestLargeVocabStability(t *testing.T) {
	// Many distinct words, shallow training: vectors must stay finite.
	rng := rand.New(rand.NewSource(6))
	var sents [][]string
	for i := 0; i < 50; i++ {
		s := make([]string, 12)
		for j := range s {
			s[j] = "w" + strconv.Itoa(rng.Intn(200))
		}
		sents = append(sents, s)
	}
	m, err := Train(sents, Config{Dim: 10, Epochs: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.words {
		v, _ := m.Vector(w)
		if !mathx.AllFinite(v) {
			t.Fatalf("non-finite vector for %s", w)
		}
	}
}

// TestShardedTrainingDeterministic pins the tentpole contract of
// Workers > 1: the sharded trainer's embeddings are a pure function
// of (corpus, Config) — repeated runs, racing goroutines and
// different GOMAXPROCS all produce bit-identical weights, because
// every shard is independently seeded and the delta merge is ordered.
func TestShardedTrainingDeterministic(t *testing.T) {
	corpus := syntheticCorpus(60, 7)
	cfg := Config{Dim: 16, Epochs: 3, Seed: 11, Workers: 4}
	a, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.in) != len(b.in) {
		t.Fatalf("weight lengths differ: %d vs %d", len(a.in), len(b.in))
	}
	for i := range a.in {
		if a.in[i] != b.in[i] {
			t.Fatalf("weight %d differs across runs: %v vs %v", i, a.in[i], b.in[i])
		}
	}
}

// TestShardedTrainingLearns checks the parallel mode still produces a
// useful model: within-cluster similarity beats across-cluster, the
// same property the sequential trainer is tested for.
func TestShardedTrainingLearns(t *testing.T) {
	m, err := Train(syntheticCorpus(120, 3), Config{Dim: 24, Epochs: 8, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	within, err := m.Similarity("crash", "exception")
	if err != nil {
		t.Fatal(err)
	}
	across, err := m.Similarity("crash", "packet")
	if err != nil {
		t.Fatal(err)
	}
	if within <= across {
		t.Errorf("sharded model: within-cluster sim %.3f <= across %.3f", within, across)
	}
}

// TestSequentialModeUnchangedByWorkersZeroOrOne pins that the default
// configurations all take the historical sequential path.
func TestSequentialModeUnchangedByWorkersZeroOrOne(t *testing.T) {
	corpus := syntheticCorpus(40, 2)
	def, err := Train(corpus, Config{Dim: 8, Epochs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Train(corpus, Config{Dim: 8, Epochs: 2, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range def.in {
		if def.in[i] != one.in[i] {
			t.Fatalf("Workers=1 diverged from Workers=0 at weight %d", i)
		}
	}
}

// TestShardBounds checks the contiguous split covers [0, n) exactly.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {5, 5}, {7, 2}, {1, 1}} {
		b := shardBounds(tc.n, tc.k)
		if b[0] != 0 || b[tc.k] != tc.n {
			t.Errorf("bounds(%d,%d) = %v", tc.n, tc.k, b)
		}
		for i := 0; i < tc.k; i++ {
			if b[i] > b[i+1] {
				t.Errorf("bounds(%d,%d) not monotone: %v", tc.n, tc.k, b)
			}
		}
	}
}
