package nlp

// Stem applies the Porter stemming algorithm (M.F. Porter, 1980) to a
// lowercase word and returns its stem. Words shorter than three runes
// are returned unchanged, per the original algorithm.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	w := []byte(word)
	for _, c := range w {
		if c < 'a' || c > 'z' {
			// Anything but pure ASCII lowercase (identifiers like
			// "ipv6", unicode words) is left untouched rather than
			// corrupted by consonant/vowel analysis.
			return word
		}
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] is a consonant in Porter's sense.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure returns Porter's m: the number of VC sequences in w.
func measure(w []byte) int {
	n := 0
	i := 0
	// Skip initial consonants.
	for i < len(w) && isCons(w, i) {
		i++
	}
	for i < len(w) {
		// Vowel run.
		for i < len(w) && !isCons(w, i) {
			i++
		}
		if i >= len(w) {
			break
		}
		// Consonant run => one VC.
		for i < len(w) && isCons(w, i) {
			i++
		}
		n++
	}
	return n
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports the *o condition: stem ends cvc where the final c is
// not w, x, or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

func replaceSuffix(w []byte, s, repl string) []byte {
	return append(w[:len(w)-len(s)], repl...)
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return replaceSuffix(w, "sses", "ss")
	case hasSuffix(w, "ies"):
		return replaceSuffix(w, "ies", "i")
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		return replaceSuffix(w, "y", "i")
	}
	return w
}

type rule struct{ suffix, repl string }

func applyRules(w []byte, minM int, rules []rule) []byte {
	for _, r := range rules {
		if hasSuffix(w, r.suffix) {
			stem := w[:len(w)-len(r.suffix)]
			if measure(stem) > minM-1 {
				return append(stem, r.repl...)
			}
			return w
		}
	}
	return w
}

func step2(w []byte) []byte {
	return applyRules(w, 1, []rule{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
		{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
		{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
		{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
		{"iviti", "ive"}, {"biliti", "ble"},
	})
}

func step3(w []byte) []byte {
	return applyRules(w, 1, []rule{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	})
}

func step4(w []byte) []byte {
	rules := []rule{
		{"al", ""}, {"ance", ""}, {"ence", ""}, {"er", ""},
		{"ic", ""}, {"able", ""}, {"ible", ""}, {"ant", ""},
		{"ement", ""}, {"ment", ""}, {"ent", ""}, {"ou", ""},
		{"ism", ""}, {"ate", ""}, {"iti", ""}, {"ous", ""},
		{"ive", ""}, {"ize", ""},
	}
	for _, r := range rules {
		if hasSuffix(w, r.suffix) {
			stem := w[:len(w)-len(r.suffix)]
			if measure(stem) > 1 {
				return stem
			}
			return w
		}
	}
	// Special case: (m>1 and (*S or *T)) ION ->
	if hasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if len(stem) > 0 && measure(stem) > 1 {
			last := stem[len(stem)-1]
			if last == 's' || last == 't' {
				return stem
			}
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			return stem
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
