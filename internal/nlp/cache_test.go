package nlp

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestCachedStemMatchesStem(t *testing.T) {
	words := []string{"running", "caresses", "ponies", "controller",
		"flapping", "ipv6", "a", "relational", "hopefulness"}
	for _, w := range words {
		if got, want := CachedStem(w), Stem(w); got != want {
			t.Errorf("CachedStem(%q) = %q, want %q", w, got, want)
		}
		// Second lookup hits the cache and must agree.
		if got, want := CachedStem(w), Stem(w); got != want {
			t.Errorf("cached CachedStem(%q) = %q, want %q", w, got, want)
		}
	}
}

func TestPreprocessCacheTransparent(t *testing.T) {
	text := "The controller crashes after the config reload fails repeatedly"
	first := Preprocess(text)
	if want := preprocessUncached(text); !reflect.DeepEqual(first, want) {
		t.Fatalf("Preprocess = %v, want %v", first, want)
	}
	second := Preprocess(text)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache hit %v differs from miss %v", second, first)
	}
	// Callers own the returned slice: mutating one result must not
	// leak into later calls.
	if len(second) > 0 {
		second[0] = "mutated"
	}
	third := Preprocess(text)
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("mutation leaked into cache: %v vs %v", third, first)
	}
}

func TestPreprocessCacheConcurrent(t *testing.T) {
	texts := make([]string, 32)
	for i := range texts {
		texts[i] = fmt.Sprintf("switch %d dropped the link and the flow table diverged badly", i)
	}
	want := make([][]string, len(texts))
	for i, txt := range texts {
		want[i] = preprocessUncached(txt)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, txt := range texts {
				if got := Preprocess(txt); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent Preprocess(%q) = %v, want %v", txt, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMemoCacheBound(t *testing.T) {
	c := memoCache[string]{limit: 4}
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), "v")
	}
	if n := c.size.Load(); n > 4 {
		t.Errorf("cache grew to %d entries, limit 4", n)
	}
	// Entries beyond the bound are simply not cached — lookups miss,
	// which is correct (the caller recomputes) rather than wrong.
	if _, ok := c.get("k9"); ok {
		t.Error("entry past the bound should not have been stored")
	}
	if _, ok := c.get("k0"); !ok {
		t.Error("entry within the bound should be retained")
	}
}
