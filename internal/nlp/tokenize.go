// Package nlp provides the text-processing primitives of the paper's
// auto-classification pipeline (§II-C): tokenization, stop-word removal,
// and Porter stemming. The tfidf, nmf, and word2vec subpackages build on
// these to turn bug descriptions into feature vectors.
package nlp

import (
	"strings"
	"unicode"
)

// Tokenizer splits raw bug-report text into normalized tokens.
// The zero value is ready to use with default behaviour (lowercase,
// keep alphanumeric runs, drop pure numbers shorter than 2 digits).
type Tokenizer struct {
	// KeepNumbers preserves purely numeric tokens (issue IDs, ports).
	KeepNumbers bool
	// MinLen drops tokens shorter than this many runes (default 2).
	MinLen int
}

// Tokenize splits text into lowercase tokens. Runs of letters and
// digits form tokens; everything else separates. Embedded identifiers
// like "NullPointerException" stay single tokens (lowercased); paths
// and dotted names split on the punctuation.
func (t Tokenizer) Tokenize(text string) []string {
	minLen := t.MinLen
	if minLen == 0 {
		minLen = 2
	}
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if len([]rune(tok)) < minLen {
			return
		}
		if !t.KeepNumbers && isNumeric(tok) {
			return
		}
		tokens = append(tokens, tok)
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}

// defaultStopwords is a compact English stop-word list augmented with
// boilerplate that bug trackers inject into every report.
var defaultStopwords = map[string]struct{}{}

func init() {
	// Stop-word initialization is pure data; this init has no side
	// effects beyond populating the package-level set.
	for _, w := range []string{
		"a", "an", "the", "and", "or", "but", "if", "then", "else",
		"is", "are", "was", "were", "be", "been", "being",
		"have", "has", "had", "do", "does", "did", "will", "would",
		"can", "could", "should", "may", "might", "must", "shall",
		"i", "we", "you", "he", "she", "it", "they", "them", "this",
		"that", "these", "those", "my", "our", "your", "its", "their",
		"of", "in", "on", "at", "to", "from", "by", "with", "about",
		"as", "for", "into", "through", "during", "before", "after",
		// "up", "down", "over" and similar are deliberately absent:
		// they are domain-meaningful in networking (link up/down).
		"above", "below", "again", "further", "once", "here", "there", "when", "where",
		"why", "how", "all", "any", "both", "each", "few", "more",
		"most", "other", "some", "such", "no", "nor", "not", "only",
		"own", "same", "so", "than", "too", "very", "just", "also",
		"while", "which", "who", "whom", "what", "because", "until",
		"against", "between", "am", "get", "got", "see", "seen", "use",
		"used", "using", "via", "per", "etc", "eg", "ie",
		// Tracker boilerplate.
		"please", "thanks", "hi", "hello", "issue", "bug", "report",
		"reported", "steps", "reproduce", "expected", "actual",
		"version", "attached", "attachment", "screenshot",
	} {
		defaultStopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (already lowercased) token is in the
// default stop-word list.
func IsStopword(tok string) bool {
	_, ok := defaultStopwords[tok]
	return ok
}

// RemoveStopwords filters the default stop-word list out of tokens,
// returning a new slice.
func RemoveStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

