package nlp

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	var tk Tokenizer
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "Controller crashed on reboot", []string{"controller", "crashed", "on", "reboot"}},
		{"punctuation", "NullPointerException in net.intent.impl!", []string{"nullpointerexception", "in", "net", "intent", "impl"}},
		{"numbers-dropped", "error 404 happened 17 times", []string{"error", "happened", "times"}},
		{"mixed-alnum-kept", "openflow13 switch ovs2", []string{"openflow13", "switch", "ovs2"}},
		{"short-dropped", "a b of", []string{"of"}},
		{"empty", "", nil},
		{"unicode", "café déjà-vu", []string{"café", "déjà", "vu"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tk.Tokenize(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenizeKeepNumbers(t *testing.T) {
	tk := Tokenizer{KeepNumbers: true}
	got := tk.Tokenize("port 6633 down")
	want := []string{"port", "6633", "down"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeMinLen(t *testing.T) {
	tk := Tokenizer{MinLen: 4}
	got := tk.Tokenize("the ONOS ctl controller")
	want := []string{"onos", "controller"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeLowercaseProperty(t *testing.T) {
	var tk Tokenizer
	f := func(s string) bool {
		for _, tok := range tk.Tokenize(s) {
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
			if len(tok) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || !IsStopword("please") {
		t.Error("expected stopwords missing")
	}
	if IsStopword("controller") || IsStopword("openflow") {
		t.Error("domain words must not be stopwords")
	}
	got := RemoveStopwords([]string{"the", "controller", "is", "down"})
	want := []string{"controller", "down"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveStopwords = %v, want %v", got, want)
	}
}

func TestStemKnownPairs(t *testing.T) {
	// Inflectional variants must collapse to a common stem — this is
	// the property the classifier relies on.
	groups := [][]string{
		{"configuring", "configured", "configures"},
		{"crashes", "crashing", "crashed"},
		{"connection", "connections"},
		{"failing", "fails", "failed"},
		{"timeouts", "timeout"},
		{"controllers", "controller"},
	}
	for _, g := range groups {
		first := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != first {
				t.Errorf("Stem(%q) = %q, Stem(%q) = %q; want equal", w, got, g[0], first)
			}
		}
	}
}

func TestStemClassicExamples(t *testing.T) {
	tests := []struct{ in, want string }{
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"cats", "cat"},
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"happy", "happi"},
		{"relational", "relat"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		{"it", "it"},     // too short
		{"ipv6", "ipv6"}, // non-alpha untouched
		{"déjà", "déjà"}, // unicode untouched
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemNeverPanicsOrGrows(t *testing.T) {
	f := func(s string) bool {
		out := Stem(s)
		return len(out) <= len(s)+1 // step1b can append an 'e'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPreprocess(t *testing.T) {
	got := Preprocess("The controller is crashing when processing OpenFlow messages.")
	want := []string{"control", "crash", "process", "openflow", "messag"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Preprocess = %v, want %v", got, want)
	}
}
