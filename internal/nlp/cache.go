package nlp

import (
	"sync"
	"sync/atomic"
)

// The training pipeline re-preprocesses the same small corpus dozens
// of times — every validation repeat, every ablation variant, every
// batch prediction walks the same ~150 bug reports — so stemming and
// preprocessing are memoized behind bounded, concurrency-safe caches.
// Both caches memoize pure functions: a hit returns exactly what the
// miss path would have computed, so caching is invisible to results
// (and to determinism) and only changes how fast they arrive.
//
// The bound is enforced by refusing inserts once full rather than by
// evicting: eviction buys nothing for a workload whose key space (a
// fixed corpus vocabulary) is small and stable, and skipping it keeps
// the fast path to one atomic load + one map read.

// memoCache is a bounded concurrent memo table.
type memoCache[V any] struct {
	limit int
	size  atomic.Int64
	m     sync.Map // string -> V
}

func (c *memoCache[V]) get(key string) (V, bool) {
	v, ok := c.m.Load(key)
	if !ok {
		var zero V
		return zero, false
	}
	return v.(V), true
}

func (c *memoCache[V]) put(key string, v V) {
	if c.size.Load() >= int64(c.limit) {
		return
	}
	if _, loaded := c.m.LoadOrStore(key, v); !loaded {
		// Concurrent inserts may overshoot the limit by at most the
		// number of racing goroutines; the bound is a memory guard,
		// not an exact count.
		c.size.Add(1)
	}
}

const (
	// stemCacheLimit comfortably covers the corpus vocabulary
	// (a few thousand distinct tokens) with room for real-world text.
	stemCacheLimit = 1 << 16
	// preprocessCacheLimit covers the full 795-issue corpus plus
	// ablation variants; entries are token slices, so the cap keeps
	// worst-case memory in the tens of megabytes.
	preprocessCacheLimit = 1 << 12
)

var (
	stemCache       = memoCache[string]{limit: stemCacheLimit}
	preprocessCache = memoCache[[]string]{limit: preprocessCacheLimit}
)

// CachedStem is Stem behind the bounded memo table. Porter stemming
// is pure, so the cache can be global: the same token always maps to
// the same stem.
func CachedStem(word string) string {
	if s, ok := stemCache.get(word); ok {
		return s
	}
	s := Stem(word)
	stemCache.put(word, s)
	return s
}

// Preprocess runs the full pipeline the paper's NLP stage uses:
// tokenize, drop stop-words, stem. Results are memoized per input
// text (bounded, concurrency-safe); callers receive a fresh slice
// they may modify.
func Preprocess(text string) []string {
	if toks, ok := preprocessCache.get(text); ok {
		out := make([]string, len(toks))
		copy(out, toks)
		return out
	}
	toks := preprocessUncached(text)
	cached := make([]string, len(toks))
	copy(cached, toks)
	preprocessCache.put(text, cached)
	return toks
}

func preprocessUncached(text string) []string {
	var tk Tokenizer
	toks := RemoveStopwords(tk.Tokenize(text))
	for i, t := range toks {
		toks[i] = CachedStem(t)
	}
	return toks
}
