// Package textgen synthesizes realistic bug-report text (title,
// description, discussion comments) for a taxonomy label and a target
// controller. It is the stand-in for the real JIRA/GitHub report bodies
// the paper's authors read.
//
// The generator is built so that the *amount* of categorical signal in
// the text mirrors what the paper observed about real reports:
//
//   - bug type (deterministic vs not) leaves a strong lexical trace
//     ("consistently reproducible" vs "intermittent") — the paper's SVM
//     reached ≈96 % on it;
//   - symptoms leave a good but noisier trace (crash words bleed into
//     byzantine reports and vice versa) — the paper reached ≈86 %;
//   - fixes leave almost no trace, because reporters describe problems,
//     not solutions — the paper "found it hard to find any algorithm to
//     predict bug fixes accurately".
package textgen

import (
	"fmt"
	"math/rand"
	"strings"

	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

// Probabilities shaping how much signal each dimension leaves in text.
const (
	// pTypeSignalDropped is how often the report omits any
	// reproducibility language (caps bug-type accuracy near 96 %).
	pTypeSignalDropped = 0.05
	// pSymptomAmbiguous is how often the reporter misdescribes the
	// symptom entirely — the primary symptom sentence comes from a
	// random pool. This is what caps symptom accuracy near the paper's
	// ≈86 %: no classifier can recover a label the text contradicts.
	pSymptomAmbiguous = 0.18
	// pSymptomCross is how often an extra sentence from a different
	// symptom's pool bleeds in on top of an accurate description.
	pSymptomCross = 0.25
	// pSymptomSecond is how often the reporter describes the symptom
	// with a second sentence, reinforcing the signal.
	pSymptomSecond = 0.35
	// pFixMentioned is how often the resolution comment describes the
	// fix at all (keeps fix prediction poor, as in the paper).
	pFixMentioned = 0.15
)

var symptomPhrases = map[taxonomy.Symptom][]string{
	taxonomy.SymptomFailStop: {
		"the controller process crashes and must be restarted",
		"controller exits with a fatal error and all switches disconnect",
		"we observed a hard crash with the stack trace attached",
		"the daemon terminates unexpectedly causing total downtime",
		"service aborts during startup and never comes up",
	},
	taxonomy.SymptomPerformance: {
		"flow setup latency increases dramatically under normal workload",
		"API calls become extremely slow over time",
		"throughput degrades until the controller is unusable",
		"CPU usage stays at maximum and event processing lags behind",
		"response time grows steadily and queues build up",
	},
	taxonomy.SymptomErrorMessage: {
		"a warning is logged repeatedly but forwarding continues",
		"the log fills with spurious error messages",
		"an exception is printed although behaviour seems otherwise fine",
		"noisy stack traces appear in the log without functional impact",
		"misleading error output confuses operators",
	},
	taxonomy.SymptomByzantine: {
		"forwarding behaviour is wrong although the controller stays up",
		"some functions keep working while others silently fail",
		"the controller installs incorrect flow rules without any alert",
		"state shown by the CLI disagrees with what the switches do",
		"traffic is silently dropped for a subset of ports",
	},
}

var byzantinePhrases = map[taxonomy.ByzantineMode][]string{
	taxonomy.GrayFailure: {
		"unicast keeps flowing but broadcast handling is broken",
		"only part of the functionality is affected, a partial outage",
		"host discovery works while route programming does not",
	},
	taxonomy.Stalling: {
		"the controller freezes temporarily and then recovers",
		"event processing stalls for minutes at a time",
		"the main loop hangs until a timeout expires",
	},
	taxonomy.IncorrectBehavior: {
		"packets are forwarded to the wrong destination",
		"the computed path violates the configured policy",
		"wrong VLAN tags are pushed onto egress traffic",
	},
}

var triggerPhrases = map[taxonomy.Trigger][]string{
	taxonomy.TriggerConfiguration: {
		"this happens after reloading the configuration file",
		"editing the YAML config and signalling a reload exposes the problem",
		"the faulty behaviour starts right after a config push",
		"a malformed configuration stanza is accepted without validation",
	},
	taxonomy.TriggerExternalCall: {
		"the failure originates in a call into an external library",
		"an upgraded dependency changed its API and the call now fails",
		"the client library returns a payload the controller cannot parse",
		"a REST call to the companion service fails with a type mismatch",
	},
	taxonomy.TriggerNetworkEvent: {
		"the problem is triggered while processing an OpenFlow message",
		"a burst of packet-in events puts the controller in this state",
		"a port-status notification from the switch starts the failure",
		"receiving a flow-removed message leads to the observed behaviour",
	},
	taxonomy.TriggerHardwareReboot: {
		"after the device reboots the controller never reconciles state",
		"power-cycling the hardware reproduces the problem",
		"when the OLT reboots the core thread waits forever for the adapter",
		"a switch reboot leaves stale bindings in the abstraction layer",
	},
}

var configScopePhrases = map[taxonomy.ConfigScope][]string{
	taxonomy.ConfigController: {
		"the relevant stanza lives in the controller's own settings",
		"it is the controller configuration that is mis-handled",
	},
	taxonomy.ConfigDataPlane: {
		"the switch-side pipeline configuration is involved",
		"data plane table settings trigger the path",
	},
	taxonomy.ConfigThirdParty: {
		"the third-party service's configuration file is what breaks it",
		"settings of the bundled external component are involved",
	},
}

var externalKindPhrases = map[taxonomy.ExternalCallKind][]string{
	taxonomy.SystemCall: {
		"a system call returns an error the code never checks",
		"the OS-level socket operation fails under this condition",
	},
	taxonomy.ThirdPartyCall: {
		"the third-party library call is incompatible with our version",
		"the vendored package changed behaviour between releases",
	},
	taxonomy.ApplicationCall: {
		"an application northbound call hits the broken code path",
		"the app library invokes the controller with unexpected arguments",
	},
}

var causePhrases = map[taxonomy.RootCause][]string{
	taxonomy.CauseLoad: {
		"this only shows up at high event rates",
		"under sustained load the queue overflows",
		"scaling the number of switches makes it worse",
	},
	taxonomy.CauseConcurrency: {
		"two threads interleave and corrupt shared state",
		"there is a race between the handlers",
		"a lock ordering problem is suspected",
	},
	taxonomy.CauseMemory: {
		"a null pointer dereference is involved",
		"heap usage keeps growing, looks like a memory leak",
		"an out of memory condition precedes the failure",
	},
	taxonomy.CauseMissingLogic: {
		"the code simply has no case for this input",
		"an unhandled edge case is hit",
		"validation for this scenario is missing entirely",
	},
	taxonomy.CauseHumanMisconfig: {
		"the value supplied by the operator was out of range",
		"a typo in the deployment manifest caused it",
		"the operator enabled two mutually exclusive options",
	},
	taxonomy.CauseEcosystem: {
		"the surrounding service stack behaves differently than assumed",
		"an interaction with the bundled ecosystem component is at fault",
		"the companion daemon and the controller disagree on the protocol",
	},
}

var deterministicPhrases = []string{
	"this is reliably reproducible with the steps below",
	"it happens every single time on a clean install",
	"the failure is fully deterministic",
	"reproduced consistently on three separate machines",
}

var nonDeterministicPhrases = []string{
	"it happens only intermittently and we cannot reproduce it on demand",
	"the failure is flaky, roughly one run in ten",
	"timing dependent, sometimes it works and sometimes it does not",
	"no reliable reproduction, it appears under unclear conditions",
}

var fixPhrases = map[taxonomy.Fix][]string{
	taxonomy.FixRollbackUpgrade:    {"rolled back to the previous release as a fix"},
	taxonomy.FixUpgradePackages:    {"bumping the dependency to the latest release resolves it"},
	taxonomy.FixAddLogic:           {"fixed by adding a new branch handling this case"},
	taxonomy.FixAddSynchronization: {"fixed by adding locking around the shared structure"},
	taxonomy.FixConfiguration:      {"resolved by correcting the configuration value"},
	taxonomy.FixAddCompatibility:   {"patched the call site to match the new library signature"},
	taxonomy.FixWorkaround:         {"applied a workaround until a proper fix lands"},
}

var controllerVocab = map[tracker.Controller][]string{
	tracker.FAUCET: {
		"faucet", "gauge", "ryu", "acl", "vlan", "yaml", "prometheus",
		"chewie", "dp", "stack", "mirror port", "python",
	},
	tracker.ONOS: {
		"onos", "intent subsystem", "karaf", "cluster", "raft store",
		"netcfg", "flow objective", "mastership", "java", "atomix",
	},
	tracker.CORD: {
		"cord", "xos", "voltha", "olt", "onu", "fabric", "openstack",
		"docker", "vtn", "rcord profile", "synchronizer",
	},
}

var noiseSentences = []string{
	"we first noticed this in the staging environment",
	"attaching the relevant log excerpt for reference",
	"let me know if more information is needed",
	"this blocks our current deployment",
	"the same setup worked fine last month",
	"we are running the default installation otherwise",
	"marking as high priority for the next sprint",
	"downgrading is not an option for us",
}

var titleVerbs = []string{
	"fails", "breaks", "misbehaves", "regresses", "malfunctions",
}

// Report is generated bug-report text.
type Report struct {
	Title       string
	Description string
	// Comments holds the discussion thread, possibly including a weak
	// resolution note.
	Comments []string
}

// Generate synthesizes a report for the label on the controller, using
// only rng for randomness (deterministic per seed).
func Generate(rng *rand.Rand, c tracker.Controller, l taxonomy.Label) Report {
	vocab := controllerVocab[c]
	if len(vocab) == 0 {
		vocab = []string{"controller"}
	}
	pickVocab := func() string { return vocab[rng.Intn(len(vocab))] }
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }

	var sentences []string

	// Symptom signal: usually accurate (possibly reinforced and/or
	// cross-polluted), occasionally misdescribed entirely.
	symptomPool := symptomPhrases[l.Symptom]
	if symptomPool == nil {
		symptomPool = noiseSentences
	}
	if rng.Float64() < pSymptomAmbiguous {
		any := taxonomy.Symptoms()[rng.Intn(len(taxonomy.Symptoms()))]
		sentences = append(sentences, pick(symptomPhrases[any]))
	} else {
		sentences = append(sentences, pick(symptomPool))
		if rng.Float64() < pSymptomSecond {
			sentences = append(sentences, pick(symptomPool))
		}
	}
	if l.Symptom == taxonomy.SymptomByzantine && l.Byzantine != taxonomy.ByzantineNone {
		sentences = append(sentences, pick(byzantinePhrases[l.Byzantine]))
	}
	if rng.Float64() < pSymptomCross {
		other := taxonomy.Symptoms()[rng.Intn(len(taxonomy.Symptoms()))]
		sentences = append(sentences, pick(symptomPhrases[other]))
	}

	// Trigger signal with refinements.
	if pool := triggerPhrases[l.Trigger]; pool != nil {
		sentences = append(sentences, pick(pool))
	}
	if l.ConfigScope != taxonomy.ConfigScopeNone {
		sentences = append(sentences, pick(configScopePhrases[l.ConfigScope]))
	}
	if l.ExternalKind != taxonomy.ExternalCallNone {
		sentences = append(sentences, pick(externalKindPhrases[l.ExternalKind]))
	}

	// Root-cause hints.
	if pool := causePhrases[l.Cause]; pool != nil {
		sentences = append(sentences, pick(pool))
	}

	// Determinism signal.
	if rng.Float64() >= pTypeSignalDropped {
		switch l.Type {
		case taxonomy.Deterministic:
			sentences = append(sentences, pick(deterministicPhrases))
		case taxonomy.NonDeterministic:
			sentences = append(sentences, pick(nonDeterministicPhrases))
		}
	}

	// Flavour and noise.
	sentences = append(sentences,
		fmt.Sprintf("the %s component of %s is involved", pickVocab(), c),
		pick(noiseSentences),
	)
	if rng.Float64() < 0.5 {
		sentences = append(sentences, pick(noiseSentences))
	}
	rng.Shuffle(len(sentences), func(i, j int) {
		sentences[i], sentences[j] = sentences[j], sentences[i]
	})

	title := fmt.Sprintf("%s %s %s", strings.ToUpper(c.String()), pickVocab(), pick(titleVerbs))
	if l.Symptom == taxonomy.SymptomFailStop {
		title = fmt.Sprintf("%s: crash in %s", strings.ToUpper(c.String()), pickVocab())
	}

	var comments []string
	if rng.Float64() < 0.7 {
		comments = append(comments, pick(noiseSentences))
	}
	if l.Fix != taxonomy.FixUnknown && rng.Float64() < pFixMentioned {
		comments = append(comments, pick(fixPhrases[l.Fix]))
	}

	return Report{
		Title:       title,
		Description: strings.Join(sentences, ". ") + ".",
		Comments:    comments,
	}
}
