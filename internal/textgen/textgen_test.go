package textgen

import (
	"math/rand"
	"strings"
	"testing"

	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

func label() taxonomy.Label {
	return taxonomy.Label{
		Type:      taxonomy.Deterministic,
		Cause:     taxonomy.CauseMissingLogic,
		Symptom:   taxonomy.SymptomByzantine,
		Byzantine: taxonomy.GrayFailure,
		Fix:       taxonomy.FixAddLogic,
		Trigger:   taxonomy.TriggerNetworkEvent,
	}
}

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Generate(rng, tracker.ONOS, label())
	if r.Title == "" || r.Description == "" {
		t.Fatal("title and description required")
	}
	if !strings.Contains(r.Title, "ONOS") {
		t.Errorf("title should name the controller: %q", r.Title)
	}
	if !strings.HasSuffix(r.Description, ".") {
		t.Errorf("description should be sentence-terminated: %q", r.Description)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(42)), tracker.CORD, label())
	b := Generate(rand.New(rand.NewSource(42)), tracker.CORD, label())
	if a.Title != b.Title || a.Description != b.Description {
		t.Error("same seed must give identical text")
	}
	c := Generate(rand.New(rand.NewSource(43)), tracker.CORD, label())
	if a.Description == c.Description {
		t.Error("different seeds should give different text (overwhelmingly)")
	}
}

func TestControllerVocabularyAppears(t *testing.T) {
	// Over many samples, controller-specific vocabulary must show up.
	rng := rand.New(rand.NewSource(2))
	found := false
	for i := 0; i < 20 && !found; i++ {
		r := Generate(rng, tracker.FAUCET, label())
		text := strings.ToLower(r.Title + " " + r.Description)
		for _, w := range []string{"faucet", "ryu", "vlan", "acl", "gauge"} {
			if strings.Contains(text, w) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("FAUCET vocabulary never appeared in 20 samples")
	}
}

func TestDeterminismSignalFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := label()
	l.Type = taxonomy.NonDeterministic
	hits := 0
	n := 400
	for i := 0; i < n; i++ {
		r := Generate(rng, tracker.ONOS, l)
		text := strings.ToLower(r.Description)
		for _, w := range []string{"intermittent", "flaky", "sometimes", "no reliable reproduction"} {
			if strings.Contains(text, w) {
				hits++
				break
			}
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.90 {
		t.Errorf("non-determinism signal present in %v of reports, want >= 0.90", frac)
	}
	if frac == 1 {
		t.Error("signal should occasionally be dropped (pTypeSignalDropped)")
	}
}

func TestFixSignalIsRare(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := label()
	hits := 0
	n := 500
	for i := 0; i < n; i++ {
		r := Generate(rng, tracker.ONOS, l)
		all := r.Description + " " + strings.Join(r.Comments, " ")
		if strings.Contains(all, "fixed by adding a new branch") {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac > 0.25 {
		t.Errorf("fix signal in %v of reports; must stay rare (<= 0.25)", frac)
	}
	if hits == 0 {
		t.Error("fix signal should appear occasionally")
	}
}

func TestFailStopTitle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := label()
	l.Symptom = taxonomy.SymptomFailStop
	l.Byzantine = taxonomy.ByzantineNone
	r := Generate(rng, tracker.CORD, l)
	if !strings.Contains(r.Title, "crash") {
		t.Errorf("fail-stop title should mention crash: %q", r.Title)
	}
}

func TestUnknownControllerFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := Generate(rng, tracker.ControllerUnknown, label())
	if r.Description == "" {
		t.Error("generation must not fail for unknown controller")
	}
}

func TestEmptyLabelStillGenerates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := Generate(rng, tracker.ONOS, taxonomy.Label{})
	if r.Title == "" || r.Description == "" {
		t.Error("empty label should still produce text")
	}
}
