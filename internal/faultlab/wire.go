package faultlab

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"sdnbugs/internal/ofconn"
	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// WireFaultKind enumerates the connection-layer faults the sustained
// campaign injects at the ofconn layer — the wire analogues of the
// taxonomy's network-event trigger: peers hang up, stall, or send
// frames the codec must reject rather than crash on.
type WireFaultKind int

// Wire fault kinds.
const (
	// WireGarbage feeds random bytes with a bad version byte.
	WireGarbage WireFaultKind = iota
	// WireTruncatedFrame cuts a valid frame in half mid-body.
	WireTruncatedFrame
	// WireBadLength declares a frame length shorter than the header.
	WireBadLength
	// WireActionBomb declares 65535 actions with no action bytes.
	WireActionBomb
	// WireHandshakeStall models a peer that never answers Hello.
	WireHandshakeStall
	// WireDroppedConn models the peer hanging up, then use-after-close.
	WireDroppedConn

	numWireFaultKinds
)

func (k WireFaultKind) String() string {
	switch k {
	case WireGarbage:
		return "garbage-frame"
	case WireTruncatedFrame:
		return "truncated-frame"
	case WireBadLength:
		return "bad-declared-length"
	case WireActionBomb:
		return "action-count-bomb"
	case WireHandshakeStall:
		return "handshake-stall"
	case WireDroppedConn:
		return "dropped-connection"
	default:
		return fmt.Sprintf("wire-fault-%d", int(k))
	}
}

// NumWireFaultKinds returns how many wire fault kinds exist, so
// callers (the perf fuzzer's genome decoder) can map raw integers
// onto valid kinds.
func NumWireFaultKinds() int { return int(numWireFaultKinds) }

// errWireStall is the deadline error a stalled read surfaces.
var errWireStall = errors.New("faultlab: wire read timed out")

// scriptConn replays fixed bytes and discards writes — a scripted
// switch peer.
type scriptConn struct{ r io.Reader }

func (c scriptConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c scriptConn) Write(p []byte) (int, error) { return len(p), nil }

// stalledConn never yields bytes: the handshake peer that hangs.
type stalledConn struct{}

func (stalledConn) Read([]byte) (int, error)    { return 0, errWireStall }
func (stalledConn) Write(p []byte) (int, error) { return len(p), nil }

// droppedConn EOFs reads and rejects writes: the peer hung up.
type droppedConn struct{}

func (droppedConn) Read([]byte) (int, error)  { return 0, io.EOF }
func (droppedConn) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// WireEpisode injects one wire-level fault through the real
// ofconn/openflow code path and returns the error the session layer
// surfaced (faultErr) plus any harness failure (err). A nil faultErr
// means the injection failed to produce a fault — the campaign treats
// that as a harness bug, not a survival. After every fault a valid
// frame is pushed through a fresh connection, proving the codec holds
// no poisoned state.
func WireEpisode(kind WireFaultKind, rng *rand.Rand) (faultErr error, err error) {
	switch kind {
	case WireGarbage:
		buf := make([]byte, 24)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		if buf[0] == openflow.Version {
			buf[0] ^= 0xff
		}
		conn := ofconn.New(scriptConn{bytes.NewReader(buf)})
		_, _, faultErr = conn.Recv()
		if !errors.Is(faultErr, openflow.ErrBadVersion) {
			return nil, fmt.Errorf("faultlab: garbage frame: want ErrBadVersion, got %v", faultErr)
		}
	case WireTruncatedFrame:
		frame := mustEncodeProbe()
		conn := ofconn.New(scriptConn{bytes.NewReader(frame[:len(frame)/2])})
		_, _, faultErr = conn.Recv()
		if faultErr == nil {
			return nil, errors.New("faultlab: truncated frame decoded cleanly")
		}
	case WireBadLength:
		// A syntactically valid header whose declared length is shorter
		// than the header itself.
		hdr := make([]byte, 8)
		hdr[0] = openflow.Version
		hdr[1] = byte(openflow.TypeHello)
		binary.BigEndian.PutUint16(hdr[2:4], 4)
		conn := ofconn.New(scriptConn{bytes.NewReader(hdr)})
		_, _, faultErr = conn.Recv()
		if !errors.Is(faultErr, openflow.ErrTruncated) {
			return nil, fmt.Errorf("faultlab: bad length: want ErrTruncated, got %v", faultErr)
		}
	case WireActionBomb:
		// A packet-out whose header-declared action count (65535) has no
		// bytes behind it; the decoder must reject it without iterating.
		body := make([]byte, 14)
		binary.BigEndian.PutUint64(body[0:8], 1)
		binary.BigEndian.PutUint32(body[8:12], 1)
		binary.BigEndian.PutUint16(body[12:14], 0xffff)
		frame := make([]byte, 8+len(body))
		frame[0] = openflow.Version
		frame[1] = byte(openflow.TypePacketOut)
		binary.BigEndian.PutUint16(frame[2:4], uint16(len(frame)))
		copy(frame[8:], body)
		conn := ofconn.New(scriptConn{bytes.NewReader(frame)})
		_, _, faultErr = conn.Recv()
		if !errors.Is(faultErr, openflow.ErrTruncated) {
			return nil, fmt.Errorf("faultlab: action bomb: want ErrTruncated, got %v", faultErr)
		}
	case WireHandshakeStall:
		conn := ofconn.New(stalledConn{})
		faultErr = conn.Handshake()
		if !errors.Is(faultErr, ofconn.ErrHandshake) {
			return nil, fmt.Errorf("faultlab: handshake stall: want ErrHandshake, got %v", faultErr)
		}
	case WireDroppedConn:
		conn := ofconn.New(droppedConn{})
		_, _, faultErr = conn.Recv()
		if faultErr == nil {
			return nil, errors.New("faultlab: dropped connection read succeeded")
		}
		// Use-after-close must fail typed, not hang or panic.
		conn.Close()
		if _, _, closedErr := conn.Recv(); !errors.Is(closedErr, ofconn.ErrClosed) {
			return nil, fmt.Errorf("faultlab: recv after close: want ErrClosed, got %v", closedErr)
		}
	default:
		return nil, fmt.Errorf("faultlab: unknown wire fault kind %d", kind)
	}
	return faultErr, verifyWireRoundTrip()
}

// mustEncodeProbe frames the canonical probe packet-in.
func mustEncodeProbe() []byte {
	frame, err := openflow.Encode(&openflow.PacketIn{
		DatapathID: 1, InPort: 2,
		Data: sdn.EncodePacket(sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}),
	}, 99)
	if err != nil {
		panic(err) // static message; cannot fail
	}
	return frame
}

// verifyWireRoundTrip proves a healthy frame still decodes end-to-end
// after a fault episode.
func verifyWireRoundTrip() error {
	conn := ofconn.New(scriptConn{bytes.NewReader(mustEncodeProbe())})
	msg, xid, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("faultlab: wire round-trip: %w", err)
	}
	pi, ok := msg.(*openflow.PacketIn)
	if !ok || xid != 99 || pi.DatapathID != 1 || pi.InPort != 2 {
		return fmt.Errorf("faultlab: wire round-trip corrupted: %v xid=%d", msg.Type(), xid)
	}
	return nil
}
