package faultlab

// Campaign-as-validator: the acceptance gate of the automatic repair
// loop. A candidate repair is only as good as the full campaign says
// it is — the validator runs the complete supervised fault-injection
// campaign with the candidate program interposed and compares it
// against a baseline (unpatched) run on a named checklist, so a
// repair that fixes its class while breaking anything that used to
// pass is rejected. Passing requires all three: no checklist
// regression, the repaired class no longer shed, and event
// availability strictly above the shed-mode baseline (a "repair"
// that just drops the traffic buys nothing — program drops count as
// shed).

import (
	"fmt"

	"sdnbugs/internal/sdn"
)

// CampaignCheck is one named boolean acceptance check over a
// campaign result.
type CampaignCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// SupervisedChecklist evaluates the named acceptance checks E22
// established for supervised campaigns. The list is fixed and
// ordered, so baseline and patched runs compare check-by-check.
func SupervisedChecklist(r CampaignResult) []CampaignCheck {
	allowed := make(map[string]bool)
	for _, c := range DeterministicPoisonClasses() {
		allowed[c] = true
	}
	shedOK := true
	for _, c := range r.ShedClasses {
		if !allowed[c] {
			shedOK = false
		}
	}
	return []CampaignCheck{
		{Name: "no-lost-events", Pass: r.Lost == 0,
			Detail: fmt.Sprintf("%d lost", r.Lost)},
		{Name: "no-wire-kills", Pass: r.WireKills == 0,
			Detail: fmt.Sprintf("%d wire faults, %d kills", r.WireFaults, r.WireKills)},
		{Name: "final-state-running", Pass: r.FinalState == sdn.StateRunning.String(),
			Detail: r.FinalState},
		{Name: "controller-made-progress", Pass: r.Processed > 0,
			Detail: fmt.Sprintf("%d processed", r.Processed)},
		{Name: "sheds-only-deterministic-poison-classes", Pass: shedOK,
			Detail: fmt.Sprintf("shed %v", r.ShedClasses)},
	}
}

// Verdict is the validator's decision on one candidate program.
type Verdict struct {
	// Class is the shed class the candidate claims to repair ("" when
	// validating a composed program with no single target class).
	Class  string         `json:"class,omitempty"`
	Result CampaignResult `json:"-"`
	Checks []CampaignCheck `json:"checks"`
	// Regressions names baseline-passing checks the patched run fails.
	Regressions []string `json:"regressions"`
	// ClassShed reports whether the target class was still shed in the
	// patched run — the repair did not actually clear the poison.
	ClassShed bool `json:"class_shed"`
	// ShedClasses is the patched run's shed set.
	ShedClasses []string `json:"shed_classes"`
	// BaselineAvailability/PatchedAvailability compare event
	// availability of the unpatched shed-mode baseline and the
	// patched run.
	BaselineAvailability float64 `json:"baseline_availability"`
	PatchedAvailability  float64 `json:"patched_availability"`
	// Pass is the conjunction: no regressions, class un-shed, and
	// availability strictly above shed mode.
	Pass bool `json:"pass"`
}

// Validator runs candidate programs through the full supervised
// campaign and compares them against a cached baseline run.
type Validator struct {
	cfg        CampaignConfig
	baseline   CampaignResult
	baseChecks []CampaignCheck
}

// NewValidator runs the unpatched supervised baseline once and
// returns a validator bound to it. The config's Supervised flag,
// Program, and OnShed are overridden — the baseline is always the
// plain shed-mode campaign.
func NewValidator(cfg CampaignConfig) (*Validator, error) {
	cfg = cfg.withDefaults()
	cfg.Supervised = true
	cfg.Program = nil
	cfg.OnShed = nil
	base, err := RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return &Validator{cfg: cfg, baseline: base, baseChecks: SupervisedChecklist(base)}, nil
}

// Baseline returns the cached unpatched campaign result.
func (v *Validator) Baseline() CampaignResult { return v.baseline }

// BaselineChecks returns the baseline's checklist evaluation.
func (v *Validator) BaselineChecks() []CampaignCheck {
	return append([]CampaignCheck(nil), v.baseChecks...)
}

// Validate runs the full campaign with prog interposed and judges it
// against the baseline. The program is cloned first, so validation
// never leaks clamp state into the caller's copy.
func (v *Validator) Validate(prog *sdn.Program, class string) (Verdict, error) {
	cfg := v.cfg
	cfg.Program = prog.Clone()
	res, err := RunCampaign(cfg)
	if err != nil {
		return Verdict{}, err
	}
	checks := SupervisedChecklist(res)
	regressions := []string{}
	for i, c := range checks {
		if v.baseChecks[i].Pass && !c.Pass {
			regressions = append(regressions, c.Name)
		}
	}
	classShed := false
	for _, c := range res.ShedClasses {
		if class != "" && c == class {
			classShed = true
		}
	}
	verdict := Verdict{
		Class:                class,
		Result:               res,
		Checks:               checks,
		Regressions:          regressions,
		ClassShed:            classShed,
		ShedClasses:          res.ShedClasses,
		BaselineAvailability: v.baseline.EventAvailability(),
		PatchedAvailability:  res.EventAvailability(),
	}
	verdict.Pass = len(regressions) == 0 && !classShed &&
		verdict.PatchedAvailability > verdict.BaselineAvailability
	return verdict, nil
}
