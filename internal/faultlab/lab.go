package faultlab

import (
	"errors"
	"fmt"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

// Lab is one fault-injection experiment: a topology, an environment,
// a controller whose code carries the injected fault, and a canonical
// workload with symptom detectors.
type Lab struct {
	Fault *Fault
	C     *sdn.Controller
	D     *sdn.Driver

	// Faults lists every armed fault when the lab runs a multi-fault
	// campaign (see NewMultiLab); single-fault labs leave it nil and
	// use Fault alone.
	Faults []*Fault

	// baselineMeanCost is the healthy mean event cost, measured with
	// the fault disabled, for the performance detector.
	baselineMeanCost float64

	// Filter, when set, rewrites or drops workload events before
	// submission — the handle input-transforming recovery strategies
	// (STS-style) use to keep the system clear of poison inputs.
	Filter func(sdn.Event) (sdn.Event, bool)

	// Guard, when set, is consulted after every submitted event; when
	// it returns true the lab rejuvenates the controller (restart +
	// fresh fault incarnation) before the next event — the hook
	// metrics-based failure-prediction strategies use (the paper's
	// §IV research direction on predicting load/memory crashes).
	Guard func(*sdn.Controller) bool
}

// topologySize is the number of switches in the lab's line topology.
const topologySize = 3

// services are the external services in the lab environment.
var services = []string{"influxdb", "atomix"}

// NewLab builds a lab around the fault.
func NewLab(f *Fault) (*Lab, error) {
	lab := &Lab{Fault: f}
	// Measure the healthy baseline with the fault switched off (before
	// building, so environment tampering is not applied either).
	f.Disabled = true
	if err := lab.build(); err != nil {
		return nil, err
	}
	obs, err := lab.RunWorkload()
	if err != nil {
		return nil, fmt.Errorf("faultlab: baseline run: %w", err)
	}
	if obs.Symptom != taxonomy.SymptomUnknown {
		return nil, fmt.Errorf("faultlab: baseline not healthy: observed %v", obs.Symptom)
	}
	lab.baselineMeanCost = lab.C.Stats.MeanEventCost()
	f.Disabled = false
	f.resetState() // first faulty run is still incarnation 0
	if err := lab.build(); err != nil {
		return nil, err
	}
	return lab, nil
}

// NewMultiLab builds a lab with every fault of the slice armed at
// once — the sustained-campaign substrate, where the taxonomy's fault
// classes interleave instead of being studied one at a time.
func NewMultiLab(faults []*Fault) (*Lab, error) {
	if len(faults) == 0 {
		return nil, errors.New("faultlab: multi lab needs at least one fault")
	}
	lab := &Lab{Fault: faults[0], Faults: faults}
	for _, f := range faults {
		f.Disabled = true
	}
	if err := lab.build(); err != nil {
		return nil, err
	}
	obs, err := lab.RunWorkload()
	if err != nil {
		return nil, fmt.Errorf("faultlab: baseline run: %w", err)
	}
	if obs.Symptom != taxonomy.SymptomUnknown {
		return nil, fmt.Errorf("faultlab: baseline not healthy: observed %v", obs.Symptom)
	}
	lab.baselineMeanCost = lab.C.Stats.MeanEventCost()
	for _, f := range faults {
		f.Disabled = false
		f.resetState()
	}
	if err := lab.build(); err != nil {
		return nil, err
	}
	return lab, nil
}

// BaselineMeanCost is the healthy mean event cost measured during lab
// construction (with every fault disabled).
func (l *Lab) BaselineMeanCost() float64 { return l.baselineMeanCost }

// armed returns the lab's fault set (the single Fault when Faults is
// unset).
func (l *Lab) armed() []*Fault {
	if len(l.Faults) > 0 {
		return l.Faults
	}
	return []*Fault{l.Fault}
}

// NewIncarnations informs every armed fault that the controller
// restarted.
func (l *Lab) NewIncarnations() {
	for _, f := range l.armed() {
		f.NewIncarnation()
	}
}

// build (re)creates network, environment and controller with the fault
// installed. The fault object itself survives — it is the bug in the
// code.
func (l *Lab) build() error {
	net, err := sdn.LinearTopology(topologySize)
	if err != nil {
		return err
	}
	env := sdn.NewEnvironment(services...)
	expected := map[string]int{}
	for _, s := range services {
		expected[s] = env.Versions[s]
	}
	faults := l.armed()
	mws := make([]sdn.Middleware, len(faults))
	for i, f := range faults {
		f.ArmEnvironment(env)
		mws[i] = f.Middleware()
	}
	app := sdn.NewL2Switch(expected)
	l.C = sdn.NewController(net, env, app, mws...)
	l.D = &sdn.Driver{C: l.C}
	return nil
}

// Rebuild replaces the controller/network with fresh instances (same
// fault), as a failover to a cold replica would. The old event log is
// returned for replay-based strategies.
func (l *Lab) Rebuild() ([]sdn.Event, error) {
	log := l.C.Log
	l.NewIncarnations()
	if err := l.build(); err != nil {
		return nil, err
	}
	return log, nil
}

// Observation is the outcome of a workload run.
type Observation struct {
	// Symptom is the detected failure class (SymptomUnknown = healthy).
	Symptom taxonomy.Symptom
	// Detail is a human-readable diagnosis.
	Detail string
	// Connectivity is the fraction of host pairs reachable.
	Connectivity float64
	// BroadcastOK reports whether broadcast flooding worked.
	BroadcastOK bool
}

// Healthy reports whether no symptom was observed.
func (o Observation) Healthy() bool { return o.Symptom == taxonomy.SymptomUnknown }

// workloadEvents is the canonical non-packet event script: config
// pushes (including the multicast stanza that poisons misconfig
// faults), external telemetry calls, and a device reboot.
func workloadEvents() []sdn.Event {
	return []sdn.Event{
		{Kind: sdn.EventConfig, Key: "vlan.office", Value: "100"},
		{Kind: sdn.EventConfig, Key: "flood.enabled", Value: "true"},
		{Kind: sdn.EventExternalCall, Service: "influxdb"},
		{Kind: sdn.EventConfig, Key: "multicast.group", Value: "225"},
		{Kind: sdn.EventExternalCall, Service: "atomix"},
		{Kind: sdn.EventHardwareReboot, DPID: 2},
		{Kind: sdn.EventConfig, Key: "vlan.lab", Value: "200"},
		{Kind: sdn.EventExternalCall, Service: "influxdb"},
	}
}

// submit routes an event through the lab filter then the controller.
func (l *Lab) submit(ev sdn.Event) error {
	if l.Filter != nil {
		rewritten, keep := l.Filter(ev)
		if !keep {
			return nil
		}
		ev = rewritten
	}
	err := l.C.Submit(ev)
	if errors.Is(err, sdn.ErrCrash) || errors.Is(err, sdn.ErrNotRunning) {
		return nil // crash is an observation, not a harness error
	}
	if err == nil && l.Guard != nil && l.C.State != sdn.StateCrashed && l.Guard(l.C) {
		// Proactive rejuvenation: restart before the predicted failure.
		l.NewIncarnations()
		l.C.Restart(false)
	}
	return err
}

// RunWorkload drives the canonical workload and detects the symptom.
// The workload interleaves management events with traffic, then checks
// full connectivity and broadcast health.
func (l *Lab) RunWorkload() (Observation, error) {
	events := workloadEvents()
	hosts := l.C.Net.Hosts()
	if len(hosts) < 2 {
		return Observation{}, errors.New("faultlab: workload needs hosts")
	}

	// Interleave: management event, then a traffic exchange.
	pair := 0
	for _, ev := range events {
		if err := l.submit(ev); err != nil {
			return Observation{}, err
		}
		src := hosts[pair%len(hosts)]
		dst := hosts[(pair+1)%len(hosts)]
		pair++
		if l.C.State != sdn.StateCrashed {
			if _, err := l.pumpPacket(src, sdn.Packet{EthDst: dst, EthType: 0x0800}); err != nil {
				return Observation{}, err
			}
			if _, err := l.pumpPacket(src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}); err != nil {
				return Observation{}, err
			}
			// Mirror-VLAN broadcast: the poison input of deterministic
			// network faults.
			if _, err := l.pumpPacket(src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: PoisonVLAN}); err != nil {
				return Observation{}, err
			}
		}
	}
	return l.Observe()
}

// pumpPacket is Driver.SendPacket but honouring the lab filter for the
// resulting packet-in events.
func (l *Lab) pumpPacket(src uint64, p sdn.Packet) ([]sdn.Delivery, error) {
	net := l.C.Net
	net.DrainDeliveries()
	if _, err := net.InjectFromHost(src, p); err != nil {
		return nil, err
	}
	for round := 0; round < 32; round++ {
		pis := net.DrainPacketIns()
		if len(pis) == 0 {
			break
		}
		// Ownership of pis transfers at DrainPacketIns: events point into
		// the drained slice, no per-punt heap copy.
		l.C.ReserveLog(len(pis))
		for i := range pis {
			if l.C.State == sdn.StateCrashed {
				return net.DrainDeliveries(), nil
			}
			if err := l.submit(sdn.Event{Kind: sdn.EventNetwork, Msg: &pis[i]}); err != nil {
				return net.DrainDeliveries(), err
			}
		}
	}
	return net.DrainDeliveries(), nil
}

// Observe runs the detectors against the controller's current state,
// ordered by severity: fail-stop, stalling, performance, byzantine
// (behavioural check), then error messages.
func (l *Lab) Observe() (Observation, error) {
	c := l.C
	if c.State == sdn.StateCrashed {
		return Observation{Symptom: taxonomy.SymptomFailStop, Detail: "controller crashed"}, nil
	}
	if c.State == sdn.StateStalled || c.Stats.MaxEventCost >= 1000 {
		return Observation{Symptom: taxonomy.SymptomByzantine,
			Detail: "controller stalled (byzantine: stalling)"}, nil
	}
	if l.baselineMeanCost > 0 && c.Stats.MeanEventCost() > 4*l.baselineMeanCost {
		return Observation{Symptom: taxonomy.SymptomPerformance,
			Detail: fmt.Sprintf("mean event cost %.1f vs baseline %.1f",
				c.Stats.MeanEventCost(), l.baselineMeanCost)}, nil
	}

	// Behavioural check: connectivity and broadcast.
	obs := Observation{}
	rep, err := l.connectivity()
	if err != nil {
		return Observation{}, err
	}
	if c.State == sdn.StateCrashed {
		// Crash during the probe traffic itself.
		return Observation{Symptom: taxonomy.SymptomFailStop, Detail: "controller crashed during probe"}, nil
	}
	obs.Connectivity = float64(rep.Reachable) / float64(rep.Pairs)
	obs.BroadcastOK = rep.BroadcastOK
	if obs.Connectivity < 1 || !obs.BroadcastOK {
		obs.Symptom = taxonomy.SymptomByzantine
		obs.Detail = fmt.Sprintf("connectivity %.0f%%, broadcast ok = %v",
			obs.Connectivity*100, obs.BroadcastOK)
		return obs, nil
	}
	if c.Stats.ErrorsLogged > 0 {
		obs.Symptom = taxonomy.SymptomErrorMessage
		obs.Detail = fmt.Sprintf("%d errors logged", c.Stats.ErrorsLogged)
		return obs, nil
	}
	return obs, nil
}

// connectivity is Driver.FullConnectivity but pumped through the lab
// filter.
func (l *Lab) connectivity() (sdn.ConnectivityReport, error) {
	hosts := l.C.Net.Hosts()
	var rep sdn.ConnectivityReport
	for _, src := range hosts {
		if _, err := l.pumpPacket(src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}); err != nil {
			return rep, err
		}
	}
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			rep.Pairs++
			deliveries, err := l.pumpPacket(src, sdn.Packet{EthDst: dst, EthType: 0x0800})
			if err != nil {
				return rep, err
			}
			for _, del := range deliveries {
				if del.MAC == dst {
					rep.Reachable++
					break
				}
			}
		}
	}
	// Broadcast must work on the default VLAN and on the mirror VLAN
	// (the gray failure of FAUCET-1623 breaks only the latter).
	for _, vlan := range []uint16{0, PoisonVLAN} {
		got, err := l.pumpPacket(hosts[0], sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: vlan})
		if err != nil {
			return rep, err
		}
		seen := map[uint64]bool{}
		for _, del := range got {
			seen[del.MAC] = true
		}
		if len(seen) != len(hosts)-1 {
			rep.BroadcastOK = false
			return rep, nil
		}
	}
	rep.BroadcastOK = true
	return rep, nil
}

// PoisonSignatures describes, per trigger, the input pattern that a
// transform-based recovery can filter. These are the handles STS-style
// tools search for by delta debugging.
func PoisonSignature(trigger taxonomy.Trigger) func(sdn.Event) bool {
	switch trigger {
	case taxonomy.TriggerNetworkEvent:
		return func(ev sdn.Event) bool {
			pi, ok := ev.Msg.(*openflow.PacketIn)
			if !ok {
				return false
			}
			pkt, err := sdn.DecodePacket(pi.Data)
			return err == nil && pkt.IsBroadcast() && pkt.VlanID == PoisonVLAN
		}
	case taxonomy.TriggerConfiguration:
		return func(ev sdn.Event) bool {
			return ev.Kind == sdn.EventConfig && len(ev.Key) >= 10 && ev.Key[:10] == "multicast."
		}
	case taxonomy.TriggerExternalCall:
		return func(ev sdn.Event) bool { return ev.Kind == sdn.EventExternalCall }
	case taxonomy.TriggerHardwareReboot:
		return func(ev sdn.Event) bool { return ev.Kind == sdn.EventHardwareReboot }
	default:
		return func(sdn.Event) bool { return false }
	}
}

// ClearHealth resets the controller's health counters (stats, error
// log, stall state) without touching functional state — called after a
// recovery attempt so the post-recovery workload is judged on fresh
// evidence. A crashed controller stays crashed.
func (l *Lab) ClearHealth() {
	if l.C.State == sdn.StateCrashed {
		return
	}
	l.C.Stats = sdn.Stats{}
	l.C.ErrorLog = nil
	l.C.State = sdn.StateRunning
}
