package faultlab

import (
	"math/rand"
	"testing"

	"sdnbugs/internal/sdn"
)

func TestWireEpisodesAllKindsFaultAndRecover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := WireFaultKind(0); k < numWireFaultKinds; k++ {
		faultErr, err := WireEpisode(k, rng)
		if err != nil {
			t.Fatalf("%v: harness error: %v", k, err)
		}
		if faultErr == nil {
			t.Fatalf("%v: episode produced no fault", k)
		}
	}
}

func TestClassifyEvent(t *testing.T) {
	cases := []struct {
		ev   sdn.Event
		want string
	}{
		{sdn.Event{Kind: sdn.EventConfig, Key: "vlan.zone1", Value: "100"}, "configuration"},
		{sdn.Event{Kind: sdn.EventConfig, Key: "multicast.group1", Value: "225"}, "configuration/multicast"},
		{sdn.Event{Kind: sdn.EventExternalCall, Service: "atomix"}, "external-call/atomix"},
		{sdn.Event{Kind: sdn.EventHardwareReboot, DPID: 2}, "hardware-reboot"},
	}
	for _, tc := range cases {
		if got := ClassifyEvent(tc.ev); got != tc.want {
			t.Errorf("ClassifyEvent(%+v) = %q, want %q", tc.ev, got, tc.want)
		}
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	hosts := []uint64{1, 2, 3}
	dpids := []uint64{1, 2}
	a := buildSchedule(5, 300, hosts, dpids)
	b := buildSchedule(5, 300, hosts, dpids)
	if len(a) != 300 || len(b) != 300 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	counts := make(map[itemKind]int)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
		counts[a[i].kind]++
	}
	// Every band of the schedule must actually be exercised.
	for k := itemConfig; k <= itemWireFault; k++ {
		if counts[k] == 0 {
			t.Errorf("item kind %d never scheduled in 300 slots", k)
		}
	}
}

func TestCampaignFingerprintDeterministic(t *testing.T) {
	for _, cfg := range []CampaignConfig{
		{Seed: 3, Events: 400, Supervised: true, CheckpointEvery: 32},
		{Seed: 3, Events: 400},
	} {
		a, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		b, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("mode %s: same-seed runs diverged:\n%s\n%s", a.Mode, a.Fingerprint(), b.Fingerprint())
		}
	}
}

func TestCampaignSupervisedBeatsBaseline(t *testing.T) {
	sup, err := RunCampaign(CampaignConfig{Seed: 2, Events: 600, Supervised: true, CheckpointEvery: 48})
	if err != nil {
		t.Fatal(err)
	}
	unsup, err := RunCampaign(CampaignConfig{Seed: 2, Events: 600})
	if err != nil {
		t.Fatal(err)
	}
	if sup.EventAvailability() <= unsup.EventAvailability() {
		t.Errorf("supervised availability %.4f not above unsupervised %.4f",
			sup.EventAvailability(), unsup.EventAvailability())
	}
	if sup.Lost != 0 {
		t.Errorf("supervised run lost %d events, want 0", sup.Lost)
	}
	allowed := make(map[string]bool)
	for _, c := range DeterministicPoisonClasses() {
		allowed[c] = true
	}
	for _, c := range sup.ShedClasses {
		if !allowed[c] {
			t.Errorf("shed class %q is not a deterministic poison class", c)
		}
	}
	if sup.WireKills != 0 || sup.FinalState != "running" {
		t.Errorf("wire faults harmed the supervised run: kills=%d final=%s", sup.WireKills, sup.FinalState)
	}
	if sup.WireFaults > 0 && unsup.WireKills == 0 {
		t.Errorf("baseline did not fail-fast on wire faults: %d faults, %d kills", unsup.WireFaults, unsup.WireKills)
	}
}

func TestNewMultiLabArmsAllFaults(t *testing.T) {
	lab, err := NewMultiLab(CampaignSuite(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Faults) != len(StandardSuite(9)) {
		t.Fatalf("armed %d faults, want %d", len(lab.Faults), len(StandardSuite(9)))
	}
	if lab.BaselineMeanCost() <= 0 {
		t.Fatalf("baseline mean cost %f not measured", lab.BaselineMeanCost())
	}
	if lab.C.State != sdn.StateRunning {
		t.Fatalf("multi-fault lab controller %v at start", lab.C.State)
	}
}
