package faultlab

import (
	"testing"

	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

func faultByName(t *testing.T, name string, seed int64) *Fault {
	t.Helper()
	for _, f := range StandardSuite(seed) {
		if f.Spec.Name == name {
			return f
		}
	}
	t.Fatalf("no fault named %s", name)
	return nil
}

func TestBaselineHealthy(t *testing.T) {
	// NewLab internally runs the workload with the fault disabled and
	// fails if the detectors see any symptom — so a successful NewLab
	// for every suite member is the detectors' false-positive check.
	for _, f := range StandardSuite(1) {
		f := f
		t.Run(f.Spec.Name, func(t *testing.T) {
			if _, err := NewLab(f); err != nil {
				t.Fatalf("baseline not healthy: %v", err)
			}
		})
	}
}

func TestEachFaultManifestsItsSymptom(t *testing.T) {
	tests := []struct {
		name string
		want taxonomy.Symptom
	}{
		{"FAUCET-1623-missing-logic", taxonomy.SymptomByzantine},
		{"CORD-2470-misconfig-crash", taxonomy.SymptomFailStop},
		{"FAUCET-355-ecosystem-mismatch", taxonomy.SymptomFailStop},
		{"VOL-549-reboot-hang", taxonomy.SymptomByzantine},
		{"CORD-1734-concurrency-slowdown", taxonomy.SymptomPerformance},
		{"ONOS-4859-memory-leak", taxonomy.SymptomFailStop},
		{"ONOS-5992-load-collapse", taxonomy.SymptomFailStop},
		{"race-spurious-errors", taxonomy.SymptomErrorMessage},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lab, err := NewLab(faultByName(t, tt.name, 7))
			if err != nil {
				t.Fatal(err)
			}
			obs, err := lab.RunWorkload()
			if err != nil {
				t.Fatal(err)
			}
			if obs.Symptom != tt.want {
				t.Errorf("observed %v (%s), want %v", obs.Symptom, obs.Detail, tt.want)
			}
		})
	}
}

func TestDeterministicFaultsAlwaysReproduce(t *testing.T) {
	// A deterministic fault must manifest in every incarnation under
	// the same workload — the core §III property.
	f := faultByName(t, "CORD-2470-misconfig-crash", 3)
	lab, err := NewLab(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		obs, err := lab.RunWorkload()
		if err != nil {
			t.Fatal(err)
		}
		if obs.Symptom != taxonomy.SymptomFailStop {
			t.Fatalf("incarnation %d: symptom %v", i, obs.Symptom)
		}
		f.NewIncarnation()
		lab.C.Restart(false)
	}
}

func TestNonDeterministicFirstIncarnationAlwaysFires(t *testing.T) {
	// The study examines bugs that did happen: a non-deterministic
	// fault always manifests in incarnation 0, regardless of seed.
	for seed := int64(0); seed < 10; seed++ {
		f := faultByName(t, "race-spurious-errors", seed)
		lab, err := NewLab(f)
		if err != nil {
			t.Fatal(err)
		}
		obs, err := lab.RunWorkload()
		if err != nil {
			t.Fatal(err)
		}
		if obs.Healthy() {
			t.Fatalf("seed %d: race did not manifest in first incarnation", seed)
		}
	}
}

func TestNonDeterministicRecursRarely(t *testing.T) {
	// After a restart the race should recur at roughly ActivationP.
	recur := 0
	n := 40
	for seed := int64(0); seed < int64(n); seed++ {
		f := faultByName(t, "race-spurious-errors", seed*97)
		lab, err := NewLab(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lab.RunWorkload(); err != nil {
			t.Fatal(err)
		}
		f.NewIncarnation()
		lab.C.Restart(false)
		obs, err := lab.RunWorkload()
		if err != nil {
			t.Fatal(err)
		}
		if !obs.Healthy() {
			recur++
		}
	}
	frac := float64(recur) / float64(n)
	if frac < 0.02 || frac > 0.5 {
		t.Errorf("recurrence rate %.2f outside plausible band around 0.2", frac)
	}
}

func TestGrayFailureIsPartial(t *testing.T) {
	// FAUCET-1623's gray failure: unicast connectivity intact, only
	// mirror-VLAN broadcast broken (§IV's 52 % gray failures).
	lab, err := NewLab(faultByName(t, "FAUCET-1623-missing-logic", 5))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := lab.RunWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if obs.Symptom != taxonomy.SymptomByzantine {
		t.Fatalf("symptom = %v", obs.Symptom)
	}
	if obs.Connectivity < 1 {
		t.Errorf("unicast connectivity %.2f should be intact in a gray failure", obs.Connectivity)
	}
	if obs.BroadcastOK {
		t.Error("mirror-VLAN broadcast should be broken")
	}
}

func TestEcosystemFaultDisarmsWithEnvironment(t *testing.T) {
	f := faultByName(t, "FAUCET-355-ecosystem-mismatch", 9)
	lab, err := NewLab(f)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := lab.RunWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if obs.Symptom != taxonomy.SymptomFailStop {
		t.Fatalf("symptom = %v", obs.Symptom)
	}
	// Fix the environment: restore expected versions.
	for svc, v := range f.ExpectedEnv() {
		lab.C.Env.Versions[svc] = v
	}
	f.NewIncarnation()
	lab.C.Restart(false)
	obs, err = lab.RunWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Healthy() {
		t.Errorf("fixed environment should disarm the fault, got %v (%s)", obs.Symptom, obs.Detail)
	}
}

func TestStandardSuiteCoversTaxonomy(t *testing.T) {
	suite := StandardSuite(1)
	causes := map[taxonomy.RootCause]bool{}
	triggers := map[taxonomy.Trigger]bool{}
	var det, nondet int
	for _, f := range suite {
		causes[f.Spec.Cause] = true
		triggers[f.Spec.Trigger] = true
		if f.Spec.Deterministic {
			det++
		} else {
			nondet++
		}
	}
	if len(causes) != len(taxonomy.RootCauses()) {
		t.Errorf("suite covers %d root causes, want %d", len(causes), len(taxonomy.RootCauses()))
	}
	if len(triggers) != len(taxonomy.Triggers()) {
		t.Errorf("suite covers %d triggers, want %d", len(triggers), len(taxonomy.Triggers()))
	}
	if det == 0 || nondet == 0 {
		t.Error("suite must include both determinism classes")
	}
}

func TestPoisonSignatures(t *testing.T) {
	for _, trig := range taxonomy.Triggers() {
		if PoisonSignature(trig) == nil {
			t.Errorf("no poison signature for %v", trig)
		}
	}
	// Unknown trigger signature matches nothing and must not panic.
	if PoisonSignature(taxonomy.TriggerUnknown)(sdn.Event{}) {
		t.Error("unknown trigger signature should match nothing")
	}
	// The config signature matches exactly the poison stanza.
	confSig := PoisonSignature(taxonomy.TriggerConfiguration)
	if !confSig(sdn.Event{Kind: sdn.EventConfig, Key: "multicast.group"}) {
		t.Error("multicast config should match")
	}
	if confSig(sdn.Event{Kind: sdn.EventConfig, Key: "vlan.office"}) {
		t.Error("benign config should not match")
	}
}
