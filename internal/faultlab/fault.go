// Package faultlab implements the taxonomy-driven fault injector the
// paper motivates ("our taxonomy provides the building blocks for
// designing representative and informed fault-injectors for testing
// SDN controllers", §I). Each injectable fault is a root-cause class
// from Table I realized as controller middleware or environment
// tampering; the standard suite mirrors the concrete bugs the paper
// cites (FAUCET-1623, CORD-2470, FAUCET-355, VOL-549, CORD-1734,
// ONOS-4859, ONOS-5992).
package faultlab

import (
	"fmt"
	"math/rand"
	"strings"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

// PoisonVLAN is the VLAN tag whose broadcast frames hit the buggy
// code path of deterministic network-event faults (the analog of
// FAUCET-1623's mirrored ports).
const PoisonVLAN uint16 = 13

// Spec describes one injectable bug in taxonomy terms.
type Spec struct {
	// Name labels the fault, after the real bug it models.
	Name string
	// Cause, Trigger, Symptom classify it per Table I.
	Cause   taxonomy.RootCause
	Trigger taxonomy.Trigger
	Symptom taxonomy.Symptom
	// Deterministic bugs activate on a fixed input signature; non-
	// deterministic ones activate at most once per controller
	// incarnation, with probability ActivationP (a race that does or
	// does not manifest for this run's interleaving).
	Deterministic bool
	// ActivationP is the probability a non-deterministic fault recurs
	// in incarnations after the first (default 0.2).
	ActivationP float64
	// MemoryBudget is, for memory faults, the number of matching
	// events before the leak exhausts the heap (default 6).
	MemoryBudget int
}

// Fault is an armed bug: middleware plus optional environment
// tampering. A Fault persists across controller restarts — it is a bug
// in the code, not in the state.
type Fault struct {
	Spec Spec

	rng *rand.Rand
	// incarnation state (reset on controller restart via Middleware
	// observing sdn restarts is not possible; the lab calls NewIncarnation).
	activeThisIncarnation bool
	decided               bool
	leaked                int
	// incarnation counts controller (re)starts. A non-deterministic
	// race always manifests in incarnation 0 (the study examines bugs
	// that did happen) and recurs with ActivationP afterwards — the
	// adversarial interleaving is unlikely to repeat.
	incarnation int

	// Disabled turns the fault off entirely (used to verify detectors
	// against a healthy baseline).
	Disabled bool

	// env is the armed environment for ecosystem faults; the fault is
	// live only while the deployed versions differ from expectedEnv
	// (fixing the environment genuinely disarms it).
	env         *sdn.Environment
	expectedEnv map[string]int
}

// NewFault arms a spec with a seeded RNG.
func NewFault(spec Spec, seed int64) *Fault {
	if spec.ActivationP <= 0 {
		spec.ActivationP = 0.2
	}
	if spec.MemoryBudget <= 0 {
		spec.MemoryBudget = 6
	}
	return &Fault{Spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// NewIncarnation informs the fault that the controller restarted: a
// non-deterministic race gets a fresh chance (not) to manifest, and a
// leak starts from zero.
func (f *Fault) NewIncarnation() {
	f.resetState()
	f.incarnation++
}

// resetState clears per-incarnation state without advancing the
// incarnation counter (used by the lab between baseline and first
// faulty run).
func (f *Fault) resetState() {
	f.decided = false
	f.activeThisIncarnation = false
	f.leaked = 0
}

// triggerKind maps taxonomy triggers to controller event kinds.
func triggerKind(t taxonomy.Trigger) sdn.EventKind {
	switch t {
	case taxonomy.TriggerConfiguration:
		return sdn.EventConfig
	case taxonomy.TriggerExternalCall:
		return sdn.EventExternalCall
	case taxonomy.TriggerNetworkEvent:
		return sdn.EventNetwork
	case taxonomy.TriggerHardwareReboot:
		return sdn.EventHardwareReboot
	default:
		return sdn.EventUnknown
	}
}

// signatureMatch is the deterministic activation condition: the edge-
// case input the buggy code mishandles.
func (f *Fault) signatureMatch(ev sdn.Event) bool {
	if ev.Kind != triggerKind(f.Spec.Trigger) {
		return false
	}
	switch ev.Kind {
	case sdn.EventNetwork:
		// The poison input is a broadcast frame on the mirror VLAN
		// (FAUCET-1623's mirrored-broadcast edge case).
		if pi, ok := ev.Msg.(*openflow.PacketIn); ok {
			pkt, err := sdn.DecodePacket(pi.Data)
			return err == nil && pkt.IsBroadcast() && pkt.VlanID == PoisonVLAN
		}
		return false
	case sdn.EventConfig:
		// The poison input is a multicast/host-handler config stanza
		// (CORD-2470's null-pointer-inducing key).
		return strings.HasPrefix(ev.Key, "multicast.")
	case sdn.EventExternalCall:
		// Calls into a drifted service (FAUCET-355's Gauge → InfluxDB
		// type mismatch). Ecosystem faults are live only while the
		// deployed versions actually mismatch expectations.
		if f.Spec.Cause == taxonomy.CauseEcosystem {
			return f.envMismatch()
		}
		return true
	case sdn.EventHardwareReboot:
		// Any device reboot (VOL-549's OLT re-activation hang).
		return true
	default:
		return false
	}
}

// activates decides whether the bug fires for this event.
func (f *Fault) activates(ev sdn.Event) bool {
	if f.Disabled {
		return false
	}
	if f.Spec.Deterministic {
		if f.Spec.Cause == taxonomy.CauseMemory {
			// Leaks accumulate on every matching-kind event and blow
			// up when the budget is exhausted (ONOS-4859).
			if ev.Kind == triggerKind(f.Spec.Trigger) {
				f.leaked++
				return f.leaked >= f.Spec.MemoryBudget
			}
			return false
		}
		if f.Spec.Cause == taxonomy.CauseLoad {
			// Load bugs fire once event volume crosses a threshold
			// (ONOS-5992's cluster collapse under pressure).
			if ev.Kind == triggerKind(f.Spec.Trigger) {
				f.leaked++ // reuse counter as a volume counter
				return f.leaked >= f.Spec.MemoryBudget
			}
			return false
		}
		return f.signatureMatch(ev)
	}
	// Non-deterministic: one coin flip per incarnation, then the race
	// manifests on the first matching event.
	if ev.Kind != triggerKind(f.Spec.Trigger) {
		return false
	}
	if !f.decided {
		f.decided = true
		if f.incarnation == 0 {
			f.activeThisIncarnation = true
		} else {
			f.activeThisIncarnation = f.rng.Float64() < f.Spec.ActivationP
		}
	}
	return f.activeThisIncarnation
}

// Middleware returns the controller middleware realizing the fault.
func (f *Fault) Middleware() sdn.Middleware {
	return func(next sdn.HandlerFunc) sdn.HandlerFunc {
		return func(c *sdn.Controller, ev sdn.Event) (int, error) {
			if !f.activates(ev) {
				return next(c, ev)
			}
			return f.applyEffect(next, c, ev)
		}
	}
}

// applyEffect realizes the symptom.
func (f *Fault) applyEffect(next sdn.HandlerFunc, c *sdn.Controller, ev sdn.Event) (int, error) {
	switch f.Spec.Symptom {
	case taxonomy.SymptomFailStop:
		return 1, fmt.Errorf("%s: %w", f.Spec.Name, sdn.ErrCrash)
	case taxonomy.SymptomPerformance:
		cost, err := next(c, ev)
		// Degraded, but below the stall threshold: slow, not frozen.
		return cost + 400, err
	case taxonomy.SymptomErrorMessage:
		cost, err := next(c, ev)
		if err == nil {
			err = fmt.Errorf("%s: spurious failure while handling %v", f.Spec.Name, ev.Kind)
		}
		return cost, err
	case taxonomy.SymptomByzantine:
		// The buggy code silently skips the event: the affected
		// functionality (e.g. broadcast mirroring) stops working while
		// everything else continues — a gray failure. Reboot-triggered
		// byzantine faults instead stall the core (VOL-549).
		if f.Spec.Trigger == taxonomy.TriggerHardwareReboot {
			cost, err := next(c, ev)
			return cost + 5000, err // core thread hangs awaiting adapter
		}
		return 1, nil // event swallowed, no error raised
	default:
		return next(c, ev)
	}
}

// ArmEnvironment applies environment-level tampering for ecosystem
// faults: the live service version drifts from what the app expects
// (the outdated-dependency problem of §V-A).
func (f *Fault) ArmEnvironment(env *sdn.Environment) {
	if f.Spec.Cause != taxonomy.CauseEcosystem {
		return
	}
	f.env = env
	f.expectedEnv = make(map[string]int, len(env.Versions))
	for svc, v := range env.Versions {
		f.expectedEnv[svc] = v
	}
	if f.Disabled {
		return
	}
	for svc := range env.Versions {
		env.Versions[svc]++
	}
}

// envMismatch reports whether the armed environment has drifted from
// the application's expectations.
func (f *Fault) envMismatch() bool {
	if f.env == nil {
		return false
	}
	for svc, want := range f.expectedEnv {
		if f.env.Versions[svc] != want {
			return true
		}
	}
	return false
}

// ExpectedEnv returns the service versions the application was built
// against (what a dependency-fixing recovery should restore).
func (f *Fault) ExpectedEnv() map[string]int {
	out := make(map[string]int, len(f.expectedEnv))
	for k, v := range f.expectedEnv {
		out[k] = v
	}
	return out
}

// StandardSuite returns the canonical fault matrix for the Table VII
// evaluation: one representative fault per root-cause class, each
// modeled on a bug the paper cites.
func StandardSuite(seed int64) []*Fault {
	specs := []Spec{
		{
			// FAUCET-1623: interface mirroring missed output broadcast
			// packets — an unhandled edge case, silent partial outage.
			Name:  "FAUCET-1623-missing-logic",
			Cause: taxonomy.CauseMissingLogic, Trigger: taxonomy.TriggerNetworkEvent,
			Symptom: taxonomy.SymptomByzantine, Deterministic: true,
		},
		{
			// CORD-2470: a misconfiguration drove the host/multicast
			// handlers into a null-pointer crash.
			Name:  "CORD-2470-misconfig-crash",
			Cause: taxonomy.CauseHumanMisconfig, Trigger: taxonomy.TriggerConfiguration,
			Symptom: taxonomy.SymptomFailStop, Deterministic: true,
		},
		{
			// FAUCET-355: Gauge crashed on a type mismatch against
			// InfluxDB after the external API drifted.
			Name:  "FAUCET-355-ecosystem-mismatch",
			Cause: taxonomy.CauseEcosystem, Trigger: taxonomy.TriggerExternalCall,
			Symptom: taxonomy.SymptomFailStop, Deterministic: true,
		},
		{
			// VOL-549: after an OLT reboot the core thread waits
			// forever for the adapter — a stall.
			Name:  "VOL-549-reboot-hang",
			Cause: taxonomy.CauseMissingLogic, Trigger: taxonomy.TriggerHardwareReboot,
			Symptom: taxonomy.SymptomByzantine, Deterministic: true,
		},
		{
			// CORD-1734: interleaved threads degraded every API call —
			// a concurrency-driven performance bug, non-deterministic.
			Name:  "CORD-1734-concurrency-slowdown",
			Cause: taxonomy.CauseConcurrency, Trigger: taxonomy.TriggerNetworkEvent,
			Symptom: taxonomy.SymptomPerformance, Deterministic: false, ActivationP: 0.2,
		},
		{
			// ONOS-4859: ineffective memory use accumulating until the
			// instance dies.
			Name:  "ONOS-4859-memory-leak",
			Cause: taxonomy.CauseMemory, Trigger: taxonomy.TriggerNetworkEvent,
			Symptom: taxonomy.SymptomFailStop, Deterministic: true, MemoryBudget: 10,
		},
		{
			// ONOS-5992: load-driven cascade — killing one instance
			// collapsed the cluster; modeled as volume-triggered crash.
			Name:  "ONOS-5992-load-collapse",
			Cause: taxonomy.CauseLoad, Trigger: taxonomy.TriggerNetworkEvent,
			Symptom: taxonomy.SymptomFailStop, Deterministic: true, MemoryBudget: 14,
		},
		{
			// A non-deterministic race that corrupts nothing durable:
			// the classic transient error-message bug.
			Name:  "race-spurious-errors",
			Cause: taxonomy.CauseConcurrency, Trigger: taxonomy.TriggerNetworkEvent,
			Symptom: taxonomy.SymptomErrorMessage, Deterministic: false, ActivationP: 0.2,
		},
	}
	out := make([]*Fault, len(specs))
	for i, s := range specs {
		out[i] = NewFault(s, seed+int64(i)*13)
	}
	return out
}
