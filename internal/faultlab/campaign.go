package faultlab

import (
	"fmt"
	"math/rand"

	"sdnbugs/internal/metrics"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/supervise"
	"sdnbugs/internal/taxonomy"
)

// CampaignSuite returns the standard fault matrix re-tuned for a
// sustained run: the memory/load budgets scale up from "crash within
// one short workload" so leaks and load collapses recur throughout an
// N-thousand-event campaign instead of dominating its first moments.
func CampaignSuite(seed int64) []*Fault {
	faults := StandardSuite(seed)
	for _, f := range faults {
		switch f.Spec.Cause {
		case taxonomy.CauseMemory:
			f.Spec.MemoryBudget = 150
		case taxonomy.CauseLoad:
			f.Spec.MemoryBudget = 400
		}
	}
	return faults
}

// ClassifyEvent buckets events into degradation classes using the
// taxonomy's poison signatures, so a supervisor sheds surgically: the
// poisoned sub-class goes while its healthy siblings keep flowing.
func ClassifyEvent(ev sdn.Event) string {
	switch ev.Kind {
	case sdn.EventNetwork:
		if PoisonSignature(taxonomy.TriggerNetworkEvent)(ev) {
			return "network-event/mirror-vlan"
		}
		return "network-event"
	case sdn.EventConfig:
		if PoisonSignature(taxonomy.TriggerConfiguration)(ev) {
			return "configuration/multicast"
		}
		return "configuration"
	case sdn.EventExternalCall:
		return "external-call/" + ev.Service
	case sdn.EventHardwareReboot:
		return "hardware-reboot"
	}
	return ev.Kind.String()
}

// DeterministicPoisonClasses are the classes a supervisor may
// legitimately shed under the campaign suite: each corresponds to a
// deterministic fault's poison signature. Shedding anything else
// (e.g. plain "network-event", whose faults are non-deterministic or
// recoverable) would throw away healthy traffic.
func DeterministicPoisonClasses() []string {
	return []string{
		"configuration/multicast",
		"external-call/atomix",
		"external-call/influxdb",
		"hardware-reboot",
		"network-event/mirror-vlan",
	}
}

// itemKind is one campaign schedule slot type.
type itemKind int

const (
	itemConfig itemKind = iota
	itemPoisonConfig
	itemExternal
	itemReboot
	itemUnicast
	itemBroadcast
	itemMirrorBroadcast
	itemWireFault
)

// scheduleItem is one slot of the deterministic campaign schedule.
type scheduleItem struct {
	kind itemKind
	ev   sdn.Event
	src  uint64
	dst  uint64
	wire WireFaultKind
}

// buildSchedule derives the interleaved fault/workload schedule from
// the seed alone — independent of run dynamics, so supervised and
// unsupervised runs face the identical input sequence.
func buildSchedule(seed int64, n int, hosts, dpids []uint64) []scheduleItem {
	rng := rand.New(rand.NewSource(seed*7919 + 17))
	items := make([]scheduleItem, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		var it scheduleItem
		switch {
		case r < 0.16:
			it = scheduleItem{kind: itemConfig, ev: sdn.Event{Kind: sdn.EventConfig,
				Key:   fmt.Sprintf("vlan.zone%d", rng.Intn(40)),
				Value: fmt.Sprintf("%d", 100+rng.Intn(3000))}}
		case r < 0.19:
			it = scheduleItem{kind: itemPoisonConfig, ev: sdn.Event{Kind: sdn.EventConfig,
				Key: fmt.Sprintf("multicast.group%d", rng.Intn(8)), Value: "225"}}
		case r < 0.30:
			it = scheduleItem{kind: itemExternal, ev: sdn.Event{Kind: sdn.EventExternalCall,
				Service: services[rng.Intn(len(services))]}}
		case r < 0.34:
			it = scheduleItem{kind: itemReboot, ev: sdn.Event{Kind: sdn.EventHardwareReboot,
				DPID: dpids[rng.Intn(len(dpids))]}}
		case r < 0.70:
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			it = scheduleItem{kind: itemUnicast, src: src, dst: dst}
		case r < 0.84:
			it = scheduleItem{kind: itemBroadcast, src: hosts[rng.Intn(len(hosts))]}
		case r < 0.92:
			it = scheduleItem{kind: itemMirrorBroadcast, src: hosts[rng.Intn(len(hosts))]}
		default:
			it = scheduleItem{kind: itemWireFault, wire: WireFaultKind(rng.Intn(int(numWireFaultKinds)))}
		}
		items = append(items, it)
	}
	return items
}

// CampaignConfig parameterizes one sustained fault-injection run.
type CampaignConfig struct {
	Seed int64
	// Events is the schedule length (default 1500 slots; traffic slots
	// fan out into multiple controller events).
	Events int
	// Supervised selects the self-healing runtime; false runs the
	// crash-restart watchdog baseline.
	Supervised bool
	// CheckpointEvery (supervised) is the checkpoint cadence in
	// processed events; 0 makes every restart a cold full-log replay.
	CheckpointEvery int
	// DegradeAfter (supervised) is the failed-recovery streak before a
	// class is shed (default 3).
	DegradeAfter int
	// WatchdogEvery (unsupervised) is the liveness-check period in
	// schedule items (default 8) — the detection lag during which a
	// crashed controller silently loses events.
	WatchdogEvery int
	// Metrics, when set, receives live campaign observability:
	// schedule slots, wire faults, watchdog restarts, plus the
	// supervisor's supervise_* counters and restore-timing histograms
	// on supervised runs. Purely observational — results stay
	// byte-identical.
	Metrics *metrics.Registry
	// Program, when set (supervised only), interposes a patchable
	// flow-rule program ahead of the supervisor's shed filter: repairs
	// rewrite or clamp poison inputs before they reach the controller.
	// Clamp counters reset on every restart (per-incarnation
	// semantics, like fault budgets).
	Program *sdn.Program
	// OnShed, when set (supervised only), is forwarded to the
	// supervisor and fires when a class is newly shed — the automatic
	// repair loop's trigger.
	OnShed func(class string)
}

// count increments a campaign counter when observability is wired.
func (c CampaignConfig) count(name string) {
	if c.Metrics != nil {
		c.Metrics.Counter(name).Inc()
	}
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Events <= 0 {
		c.Events = 1500
	}
	if c.WatchdogEvery <= 0 {
		c.WatchdogEvery = 8
	}
	return c
}

// CampaignResult aggregates one campaign run. Every field is logical
// (counts and ticks) and every slice is sorted, so results are
// byte-identical across runs at the same seed.
type CampaignResult struct {
	Mode   string
	Events int

	Offered   int
	Processed int
	Healed    int
	Shed      int
	Lost      int

	Incidents       int
	FailStops       int
	Stalls          int
	PerfRegressions int
	Divergences     int

	Restarts      int
	Degradations  int
	BudgetDenials int

	Checkpoints            int
	CheckpointRestores     int
	ColdRestores           int
	CheckpointRestoreTicks int
	ColdRestoreTicks       int

	UptimeTicks   int
	DowntimeTicks int

	WireFaults int
	WireErrors int
	WireKills  int

	BroadcastProbes   int
	BroadcastFailures int

	// ProgramRewrites/ProgramDrops count flow-rule program decisions
	// when a repair program is interposed (see CampaignConfig.Program);
	// program drops are accounted as offered-and-shed.
	ProgramRewrites int
	ProgramDrops    int

	ShedClasses []string
	FinalState  string
}

// EventAvailability is the fraction of offered events processed.
func (r CampaignResult) EventAvailability() float64 {
	if r.Offered == 0 {
		return 1
	}
	return float64(r.Processed) / float64(r.Offered)
}

// TimeAvailability is uptime over total logical time.
func (r CampaignResult) TimeAvailability() float64 {
	total := r.UptimeTicks + r.DowntimeTicks
	if total == 0 {
		return 1
	}
	return float64(r.UptimeTicks) / float64(total)
}

// MTTR is mean downtime ticks per detected incident.
func (r CampaignResult) MTTR() float64 {
	if r.Incidents == 0 {
		return 0
	}
	return float64(r.DowntimeTicks) / float64(r.Incidents)
}

// MeanCheckpointRestoreTicks is the mean recovery cost of a
// checkpoint-based restart (0 when none happened).
func (r CampaignResult) MeanCheckpointRestoreTicks() float64 {
	if r.CheckpointRestores == 0 {
		return 0
	}
	return float64(r.CheckpointRestoreTicks) / float64(r.CheckpointRestores)
}

// MeanColdRestoreTicks is the mean recovery cost of a cold full-log
// replay restart (0 when none happened).
func (r CampaignResult) MeanColdRestoreTicks() float64 {
	if r.ColdRestores == 0 {
		return 0
	}
	return float64(r.ColdRestoreTicks) / float64(r.ColdRestores)
}

// Fingerprint is a canonical serialization for byte-identity checks
// across runs at the same seed.
func (r CampaignResult) Fingerprint() string {
	return fmt.Sprintf("%+v", r)
}

// RunCampaign executes one sustained fault-injection campaign: the
// full CampaignSuite armed at once over a seed-deterministic schedule
// of interleaved management events, traffic, poison inputs, and
// wire-level faults.
func RunCampaign(cfg CampaignConfig) (CampaignResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Supervised {
		// The supervised path is a single-epoch Session — the same
		// runtime the repair loop drives across multiple epochs.
		sess, err := NewSession(cfg)
		if err != nil {
			return CampaignResult{}, err
		}
		return sess.PlayEpoch()
	}
	lab, err := NewMultiLab(CampaignSuite(cfg.Seed))
	if err != nil {
		return CampaignResult{}, err
	}
	hosts := lab.C.Net.Hosts()
	dpids := lab.C.Net.Switches()
	schedule := buildSchedule(cfg.Seed, cfg.Events, hosts, dpids)
	wireRng := rand.New(rand.NewSource(cfg.Seed*104729 + 5))
	return runUnsupervised(cfg, lab, schedule, hosts, wireRng)
}

// pump injects one packet and routes the resulting punts, one batch
// per control round, through flush, returning how many distinct hosts
// the packet reached. Events point into the drained packet-in slice
// (ownership transfers at DrainPacketIns), so a round costs one event
// slice instead of a heap copy per punt; flush implementations process
// each event individually, keeping results byte-identical to the old
// one-at-a-time pump.
func pump(net *sdn.Network, src uint64, p sdn.Packet, flush func([]sdn.Event)) int {
	net.DrainDeliveries()
	if _, err := net.InjectFromHost(src, p); err != nil {
		return 0
	}
	var events []sdn.Event
	for round := 0; round < 32; round++ {
		pis := net.DrainPacketIns()
		if len(pis) == 0 {
			break
		}
		events = events[:0]
		for i := range pis {
			events = append(events, sdn.Event{Kind: sdn.EventNetwork, Msg: &pis[i]})
		}
		flush(events)
	}
	seen := make(map[uint64]bool)
	for _, d := range net.DrainDeliveries() {
		seen[d.MAC] = true
	}
	return len(seen)
}

// runUnsupervised executes the schedule under the fail-fast baseline:
// a watchdog that only notices crashes (with detection lag), cold
// crash-restarts that drop all state, no stall or divergence
// handling, and wire faults that kill the process outright.
func runUnsupervised(cfg CampaignConfig, lab *Lab, schedule []scheduleItem, hosts []uint64, wireRng *rand.Rand) (CampaignResult, error) {
	res := CampaignResult{Mode: "unsupervised", Events: len(schedule)}
	c := lab.C
	sinceCheck := 0
	submit := func(ev sdn.Event) {
		res.Offered++
		if c.State == sdn.StateCrashed {
			// Down and nobody noticed yet: the event is gone.
			res.Lost++
			res.DowntimeTicks++
			return
		}
		before := c.Stats.TotalCost
		err := c.Submit(ev)
		cost := c.Stats.TotalCost - before
		if err != nil {
			// The event died with the controller.
			res.Lost++
			res.Incidents++
			res.FailStops++
			res.DowntimeTicks += cost
			return
		}
		if c.State == sdn.StateStalled {
			// Frozen while "processing": the time was lost even though
			// the watchdog never notices a stall.
			res.Stalls++
			res.DowntimeTicks += cost
		} else {
			res.UptimeTicks += cost
		}
		res.Processed++
	}
	// flushBatch drains one pump round: the log append region is
	// reserved once per batch, then every event goes through the same
	// per-event accounting as before.
	flushBatch := func(events []sdn.Event) {
		c.ReserveLog(len(events))
		for _, ev := range events {
			submit(ev)
		}
	}
	watchdog := func() {
		sinceCheck++
		if sinceCheck < cfg.WatchdogEvery {
			return
		}
		sinceCheck = 0
		if c.State == sdn.StateCrashed {
			lab.NewIncarnations()
			c.Restart(false)
			res.Restarts++
			res.ColdRestores++
			res.ColdRestoreTicks += supervise.RestartCost
			res.DowntimeTicks += supervise.RestartCost
			cfg.count("faultlab_watchdog_restarts_total")
		}
	}
	full := len(hosts) - 1
	for _, it := range schedule {
		cfg.count("faultlab_campaign_slots_total")
		switch it.kind {
		case itemConfig, itemPoisonConfig, itemExternal, itemReboot:
			submit(it.ev)
		case itemUnicast:
			pump(c.Net, it.src, sdn.Packet{EthDst: it.dst, EthType: 0x0800}, flushBatch)
		case itemBroadcast:
			res.BroadcastProbes++
			if pump(c.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}, flushBatch) < full {
				res.BroadcastFailures++
			}
		case itemMirrorBroadcast:
			res.BroadcastProbes++
			if pump(c.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: PoisonVLAN}, flushBatch) < full {
				res.BroadcastFailures++
			}
		case itemWireFault:
			res.WireFaults++
			cfg.count("faultlab_wire_faults_total")
			ferr, err := WireEpisode(it.wire, wireRng)
			if err != nil {
				return res, err
			}
			if ferr != nil {
				// Fail-fast: the unhandled wire error propagates up and
				// kills the controller process.
				res.WireErrors++
				res.WireKills++
				res.Incidents++
				c.State = sdn.StateCrashed
			}
		}
		watchdog()
	}
	res.FinalState = c.State.String()
	return res, nil
}
