package faultlab

import (
	"testing"
)

func TestClusterCampaignLosslessAndIdentical(t *testing.T) {
	res, err := RunClusterCampaign(ClusterCampaignConfig{Seed: 1, Events: 600})
	if err != nil {
		t.Fatal(err)
	}
	cl := res.Cluster
	if cl.Failovers == 0 {
		t.Fatal("campaign induced no failovers")
	}
	if cl.Lost != 0 {
		t.Fatalf("cluster lost %d events", cl.Lost)
	}
	if cl.FencedLeaks != 0 {
		t.Fatalf("%d fenced writes leaked", cl.FencedLeaks)
	}
	if cl.FencedRejects == 0 || cl.WireStaleRejects == 0 {
		t.Fatalf("no fencing evidence: %+v", cl)
	}
	if cl.LogLen != res.Unfaulted.LogLen {
		t.Fatalf("cluster log %d, unfaulted %d", cl.LogLen, res.Unfaulted.LogLen)
	}
	if !res.Identical() {
		t.Fatalf("cluster state diverged: cluster=%s replicas=%v unfaulted=%s",
			cl.Fingerprint, cl.ReplicaFingerprints, res.Unfaulted.Fingerprint)
	}
}

func TestClusterCampaignBeatsBaseline(t *testing.T) {
	res, err := RunClusterCampaign(ClusterCampaignConfig{Seed: 1, Events: 600})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.ColdRestores == 0 {
		t.Fatal("baseline never cold-restored; the comparison is vacuous")
	}
	if res.Cluster.MeanFailoverTicks >= res.Baseline.MeanColdRestoreTicks {
		t.Fatalf("failover (%.1f ticks) not cheaper than cold replay (%.1f ticks)",
			res.Cluster.MeanFailoverTicks, res.Baseline.MeanColdRestoreTicks)
	}
	if res.Cluster.TimeAvailability() <= res.Baseline.TimeAvailability() {
		t.Fatalf("cluster availability %.4f not above baseline %.4f",
			res.Cluster.TimeAvailability(), res.Baseline.TimeAvailability())
	}
}

func TestClusterCampaignDeterministic(t *testing.T) {
	a, err := RunClusterCampaign(ClusterCampaignConfig{Seed: 7, Events: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClusterCampaign(ClusterCampaignConfig{Seed: 7, Events: 300})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different campaign results")
	}
	c, err := RunClusterCampaign(ClusterCampaignConfig{Seed: 8, Events: 300})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical campaign results")
	}
}

func TestClusterEpisodesWellFormed(t *testing.T) {
	eps := buildClusterEpisodes(1, 1500, 3)
	var disruptions, heals int
	open := false
	// Walk slots in order: disruptions and heals must alternate, and
	// the schedule must end healed with a quiet tail.
	last := 0
	for i := 0; i < 1500; i++ {
		ep, ok := eps[i]
		if !ok {
			continue
		}
		last = i
		if ep == epHeal {
			if !open {
				t.Fatalf("heal at slot %d without a preceding disruption", i)
			}
			open = false
			heals++
		} else {
			if open {
				t.Fatalf("disruption at slot %d while another is open", i)
			}
			open = true
			disruptions++
		}
	}
	if open {
		t.Fatal("schedule ends with an unhealed disruption")
	}
	if disruptions < 3 || heals != disruptions {
		t.Fatalf("episodes: %d disruptions, %d heals", disruptions, heals)
	}
	if last > 1500-40 {
		t.Fatalf("no quiet tail: last episode at slot %d", last)
	}
}
