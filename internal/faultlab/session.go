package faultlab

// Session is a live supervised campaign runtime — the substrate of
// the automatic repair loop (internal/repair, E25). Unlike
// RunCampaign, which builds and discards its runtime, a Session keeps
// the lab, supervisor, and fault incarnation state alive between
// schedule epochs, so a caller can: play an epoch (sheds accumulate),
// install a repaired flow-rule program, lift the repaired sheds on
// the *same* supervisor, and play another epoch to measure the
// repaired availability on live state. RunCampaign's supervised path
// runs on a single-epoch Session, so both share one code path.

import (
	"math/rand"
	"time"

	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/supervise"
)

// Session holds one live supervised campaign runtime.
type Session struct {
	Lab *Lab
	Sup *supervise.Supervisor

	cfg     CampaignConfig
	hosts   []uint64
	dpids   []uint64
	wireRng *rand.Rand
	program *sdn.Program

	// res accumulates the session-local counters (schedule slots, wire
	// faults, broadcast probes, program rewrites/drops) across epochs;
	// supervisor counters are read live at snapshot time.
	res CampaignResult
}

// NewSession builds a supervised campaign runtime: full CampaignSuite
// armed, self-healing supervisor attached, cfg.Program (if any)
// interposed ahead of the shed filter.
func NewSession(cfg CampaignConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	lab, err := NewMultiLab(CampaignSuite(cfg.Seed))
	if err != nil {
		return nil, err
	}
	s := &Session{
		Lab:     lab,
		cfg:     cfg,
		hosts:   lab.C.Net.Hosts(),
		dpids:   lab.C.Net.Switches(),
		wireRng: rand.New(rand.NewSource(cfg.Seed*104729 + 5)),
		program: cfg.Program,
	}
	mode := "supervised-cold"
	if cfg.CheckpointEvery > 0 {
		mode = "supervised-checkpoint"
	}
	s.res = CampaignResult{Mode: mode}
	s.Sup = supervise.New(lab.C, supervise.Config{
		BaselineMeanCost: lab.baselineMeanCost,
		Backoff:          resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 64 * time.Millisecond},
		Budget:           resilience.NewBudget(64, 0.25),
		CheckpointEvery:  cfg.CheckpointEvery,
		DegradeAfter:     cfg.DegradeAfter,
		Classify:         ClassifyEvent,
		OnRestart:        s.onRestart,
		OnShed:           cfg.OnShed,
		Metrics:          cfg.Metrics,
	})
	// The graceful-degradation hook: shed classes die at the lab
	// filter, before they reach the controller.
	lab.Filter = s.Sup.Filter
	return s, nil
}

// onRestart advances fault incarnations and resets the program's
// per-incarnation clamp counters on every supervised restart.
func (s *Session) onRestart() {
	s.Lab.NewIncarnations()
	if s.program != nil {
		s.program.NewIncarnation()
	}
}

// SetProgram installs (or replaces) the flow-rule program for
// subsequent epochs — the repair loop installs the validated composed
// program here before lifting sheds.
func (s *Session) SetProgram(p *sdn.Program) { s.program = p }

// offer routes one workload event: program first (repairs rewrite or
// clamp poison inputs), then the supervisor's shed filter, then
// supervised submission.
func (s *Session) offer(ev sdn.Event) {
	if s.program != nil {
		out, verdict := s.program.Apply(ev)
		switch verdict {
		case sdn.VerdictDropped:
			s.res.ProgramDrops++
			s.cfg.count("faultlab_program_drops_total")
			return
		case sdn.VerdictRewritten:
			s.res.ProgramRewrites++
			s.cfg.count("faultlab_program_rewrites_total")
		}
		ev = out
	}
	if rewritten, keep := s.Lab.Filter(ev); keep {
		s.Sup.Submit(rewritten)
	}
}

// offerBatch routes one pump round of workload events. The program,
// shed filter, and supervised submission still run per event in order
// — a mid-round shed or restart must affect the very next event,
// exactly as the one-at-a-time path did — so only the controller's log
// growth is amortized into a single pre-reserved region per round.
func (s *Session) offerBatch(events []sdn.Event) {
	s.Sup.C.ReserveLog(len(events))
	for _, ev := range events {
		s.offer(ev)
	}
}

// PlayEpoch plays one full schedule epoch — the same seed-derived
// schedule every time, so epochs before and after a repair face the
// identical offered workload — and returns the cumulative result.
func (s *Session) PlayEpoch() (CampaignResult, error) {
	schedule := buildSchedule(s.cfg.Seed, s.cfg.Events, s.hosts, s.dpids)
	s.res.Events += len(schedule)
	full := len(s.hosts) - 1
	for _, it := range schedule {
		s.cfg.count("faultlab_campaign_slots_total")
		switch it.kind {
		case itemConfig, itemPoisonConfig, itemExternal, itemReboot:
			s.offer(it.ev)
		case itemUnicast:
			pump(s.Lab.C.Net, it.src, sdn.Packet{EthDst: it.dst, EthType: 0x0800}, s.offerBatch)
		case itemBroadcast:
			s.res.BroadcastProbes++
			got := pump(s.Lab.C.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}, s.offerBatch)
			if got < full && !s.Sup.ClassShed("network-event") {
				// Byzantine divergence the probes can't see: feed the
				// spot-check into the supervisor.
				s.res.BroadcastFailures++
				s.Sup.ReportDivergence("network-event", func() bool {
					return pump(s.Lab.C.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}, s.offerBatch) >= full
				})
			}
		case itemMirrorBroadcast:
			s.res.BroadcastProbes++
			shedAlready := s.Sup.ClassShed("network-event/mirror-vlan")
			got := pump(s.Lab.C.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: PoisonVLAN}, s.offerBatch)
			if got < full && !shedAlready {
				s.res.BroadcastFailures++
				s.Sup.ReportDivergence("network-event/mirror-vlan", func() bool {
					return pump(s.Lab.C.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: PoisonVLAN}, s.offerBatch) >= full
				})
			}
		case itemWireFault:
			s.res.WireFaults++
			s.cfg.count("faultlab_wire_faults_total")
			ferr, err := WireEpisode(it.wire, s.wireRng)
			if err != nil {
				return s.Snapshot(), err
			}
			if ferr != nil {
				s.Sup.WireError(ferr)
			}
		}
	}
	return s.Snapshot(), nil
}

// Snapshot folds the live supervisor metrics into the session
// counters and returns the cumulative campaign result. Events the
// program dropped count as offered-and-shed: a repair that merely
// discards traffic buys no availability.
func (s *Session) Snapshot() CampaignResult {
	res := s.res
	m := s.Sup.Metrics
	res.Offered = m.EventsOffered + res.ProgramDrops
	res.Processed = m.EventsProcessed
	res.Healed = m.EventsHealed
	res.Shed = m.EventsShed + res.ProgramDrops
	res.Lost = m.EventsLost
	res.Incidents = m.Incidents
	res.FailStops = m.FailStops
	res.Stalls = m.Stalls
	res.PerfRegressions = m.PerfRegressions
	res.Divergences = m.Divergences
	res.Restarts = m.Restarts
	res.Degradations = m.Degradations
	res.BudgetDenials = m.BudgetDenials
	res.Checkpoints = m.Checkpoints
	res.CheckpointRestores = m.CheckpointRestores
	res.ColdRestores = m.ColdRestores
	res.CheckpointRestoreTicks = m.CheckpointRestoreTicks
	res.ColdRestoreTicks = m.ColdRestoreTicks
	res.UptimeTicks = m.UptimeTicks
	res.DowntimeTicks = m.RecoveryTicks
	res.WireErrors = m.WireErrors
	res.ShedClasses = s.Sup.ShedClasses()
	res.FinalState = s.Lab.C.State.String()
	return res
}
