package faultlab

// Cluster failover campaign (E26): the same seed-deterministic
// schedule played three ways — on an N-replica controller ensemble
// with induced primary crashes, partitions, and asymmetric links; on
// a single supervised controller facing the same crashes (the
// cold-replay baseline); and on an unfaulted single controller (the
// ground truth). Because the ensemble defers slots while leaderless,
// re-homes in-flight events on failover, and replicates the log
// byte-identically, its converged state must fingerprint-match the
// unfaulted run — crashes and all.

import (
	"fmt"
	"math/rand"
	"time"

	"sdnbugs/internal/cluster"
	"sdnbugs/internal/metrics"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/supervise"
)

// cleanController builds the lab topology and app with no fault
// middleware — the cluster campaign induces failures externally
// (crashes, partitions), never inside the controller, so replicas
// replaying the same log converge byte-identically.
func cleanController() (*sdn.Controller, error) {
	net, err := sdn.LinearTopology(topologySize)
	if err != nil {
		return nil, err
	}
	env := sdn.NewEnvironment(services...)
	expected := map[string]int{}
	for _, s := range services {
		expected[s] = env.Versions[s]
	}
	return sdn.NewController(net, env, sdn.NewL2Switch(expected)), nil
}

// clusterEpisode is one induced control-plane failure.
type clusterEpisode int

const (
	// epCrashPrimary fail-stops the serving primary.
	epCrashPrimary clusterEpisode = iota
	// epPartitionPrimary isolates the primary from both standbys.
	epPartitionPrimary
	// epAsymPartition isolates the primary and additionally breaks one
	// direction of the standby-standby link, so the first elections
	// fail for want of a bidirectional majority.
	epAsymPartition
	// epHeal restores all links and revives crashed replicas.
	epHeal
)

func (e clusterEpisode) String() string {
	switch e {
	case epCrashPrimary:
		return "crash-primary"
	case epPartitionPrimary:
		return "partition-primary"
	case epAsymPartition:
		return "asymmetric-partition"
	case epHeal:
		return "heal"
	}
	return "unknown"
}

// buildClusterEpisodes derives the failure schedule from the seed
// alone: disruptions cycle crash → partition → asymmetric, each
// healed a few slots after the lease would expire, with breathing
// room between episodes and a quiet tail for convergence.
func buildClusterEpisodes(seed int64, slots, leaseSlots int) map[int]clusterEpisode {
	rng := rand.New(rand.NewSource(seed*15485863 + 11))
	eps := make(map[int]clusterEpisode)
	kinds := []clusterEpisode{epCrashPrimary, epPartitionPrimary, epAsymPartition}
	cursor := 40 + rng.Intn(30)
	k := 0
	for cursor < slots-(leaseSlots+60) {
		eps[cursor] = kinds[k%len(kinds)]
		k++
		heal := cursor + leaseSlots + 4 + rng.Intn(10)
		eps[heal] = epHeal
		cursor = heal + 30 + rng.Intn(40)
	}
	return eps
}

// ClusterCampaignConfig parameterizes one failover campaign.
type ClusterCampaignConfig struct {
	Seed int64
	// Events is the schedule length (default 1500 slots).
	Events int
	// Replicas is the ensemble size (default 3).
	Replicas int
	// LeaseSlots is the standby lease in slots (default 3).
	LeaseSlots int
	// Metrics, when set, receives the cluster_* counters and the
	// failover-wall histogram. Purely observational.
	Metrics *metrics.Registry
}

func (c ClusterCampaignConfig) withDefaults() ClusterCampaignConfig {
	if c.Events <= 0 {
		c.Events = 1500
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.LeaseSlots <= 0 {
		c.LeaseSlots = 3
	}
	return c
}

// ClusterRunResult is one mode's aggregate. All fields are logical,
// so results are byte-identical across runs at the same seed.
type ClusterRunResult struct {
	Mode string

	Offered   int
	Processed int
	Lost      int

	Elections        int
	FailedElections  int
	Failovers        int
	FencedRejects    int
	FencedLeaks      int
	WireStaleRejects int
	LeaseWaitTicks   int

	Restarts     int
	ColdRestores int

	MeanFailoverTicks    float64
	MeanColdRestoreTicks float64

	UptimeTicks   int
	DowntimeTicks int

	BroadcastProbes  int
	WireFaultsSkipped int

	LogLen      int
	Fingerprint string
	// ReplicaFingerprints holds every replica's converged fingerprint
	// (cluster mode only) — all must be equal.
	ReplicaFingerprints []string
}

// TimeAvailability is uptime over total logical time.
func (r ClusterRunResult) TimeAvailability() float64 {
	total := r.UptimeTicks + r.DowntimeTicks
	if total == 0 {
		return 1
	}
	return float64(r.UptimeTicks) / float64(total)
}

// ClusterCampaignResult bundles the three modes.
type ClusterCampaignResult struct {
	Seed   int64
	Events int

	Cluster   ClusterRunResult
	Baseline  ClusterRunResult
	Unfaulted ClusterRunResult
}

// Identical reports the campaign's core replication claim: the
// ensemble's converged state — and every individual replica — is
// byte-identical to the unfaulted single-controller run.
func (r ClusterCampaignResult) Identical() bool {
	if r.Cluster.Fingerprint == "" || r.Cluster.Fingerprint != r.Unfaulted.Fingerprint {
		return false
	}
	for _, fp := range r.Cluster.ReplicaFingerprints {
		if fp != r.Cluster.Fingerprint {
			return false
		}
	}
	return true
}

// Fingerprint is a canonical serialization for byte-identity checks
// across runs at the same seed.
func (r ClusterCampaignResult) Fingerprint() string {
	return fmt.Sprintf("%+v", r)
}

// RunClusterCampaign plays the schedule in all three modes.
func RunClusterCampaign(cfg ClusterCampaignConfig) (ClusterCampaignResult, error) {
	cfg = cfg.withDefaults()
	probe, err := cleanController()
	if err != nil {
		return ClusterCampaignResult{}, err
	}
	hosts := probe.Net.Hosts()
	dpids := probe.Net.Switches()
	schedule := buildSchedule(cfg.Seed, cfg.Events, hosts, dpids)
	episodes := buildClusterEpisodes(cfg.Seed, cfg.Events, cfg.LeaseSlots)
	res := ClusterCampaignResult{Seed: cfg.Seed, Events: cfg.Events}
	if res.Cluster, err = runClusterMode(cfg, schedule, episodes, hosts); err != nil {
		return res, err
	}
	if res.Baseline, err = runBaselineMode(cfg, schedule, episodes, hosts); err != nil {
		return res, err
	}
	if res.Unfaulted, err = runUnfaultedMode(schedule, hosts); err != nil {
		return res, err
	}
	return res, nil
}

// runClusterMode plays the schedule on the replicated ensemble.
// Wire-fault slots are skipped identically in all modes (the cluster
// campaign induces failures at the control plane, not the wire).
// While the ensemble is leaderless (partitioned primary, election
// pending) slots are deferred, not dropped: they replay in order the
// moment a primary is serving again, which is what keeps the final
// state byte-identical to the unfaulted run.
func runClusterMode(cfg ClusterCampaignConfig, schedule []scheduleItem, episodes map[int]clusterEpisode, hosts []uint64) (ClusterRunResult, error) {
	ens, err := cluster.New(cluster.Config{
		Replicas:   cfg.Replicas,
		LeaseSlots: cfg.LeaseSlots,
		Factory:    cleanController,
		Classify:   ClassifyEvent,
		Metrics:    cfg.Metrics,
	})
	if err != nil {
		return ClusterRunResult{}, err
	}
	res := ClusterRunResult{Mode: "cluster"}
	flushBatch := func(events []sdn.Event) {
		ens.Primary().C.ReserveLog(len(events))
		for _, ev := range events {
			ens.Submit(ev)
		}
	}
	play := func(it scheduleItem) {
		switch it.kind {
		case itemConfig, itemPoisonConfig, itemExternal, itemReboot:
			// Management events reach a crashed primary through the
			// supervisor, whose exhausted restart budget escalates to the
			// ensemble failover — the detection-by-request path.
			ens.Submit(it.ev)
		case itemUnicast:
			// Traffic re-homes before packets flow: switches notice a dead
			// master by keepalive timeout and the ensemble fails over
			// before injection, so the packets land on the serving net.
			ens.EnsureServing()
			pump(ens.Primary().C.Net, it.src, sdn.Packet{EthDst: it.dst, EthType: 0x0800}, flushBatch)
		case itemBroadcast:
			ens.EnsureServing()
			res.BroadcastProbes++
			pump(ens.Primary().C.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}, flushBatch)
		case itemMirrorBroadcast:
			ens.EnsureServing()
			res.BroadcastProbes++
			pump(ens.Primary().C.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: PoisonVLAN}, flushBatch)
		}
	}
	var pending []scheduleItem
	for i, it := range schedule {
		if ep, ok := episodes[i]; ok {
			applyEpisode(ens, ep)
		}
		if it.kind == itemWireFault {
			res.WireFaultsSkipped++
			ens.EndSlot()
			continue
		}
		if !ens.Available() {
			pending = append(pending, it)
			ens.EndSlot()
			continue
		}
		for _, p := range pending {
			play(p)
		}
		pending = pending[:0]
		play(it)
		ens.EndSlot()
	}
	// Quiet tail: heal everything, drain any leftover deferred slots,
	// and drive replication to convergence.
	ens.HealLinks()
	ens.EnsureServing()
	for _, p := range pending {
		play(p)
	}
	if err := ens.Sync(); err != nil {
		return res, err
	}
	m := ens.Metrics
	res.Offered = m.Offered
	res.Processed = m.Processed
	res.Lost = m.Lost
	res.Elections = m.Elections
	res.FailedElections = m.FailedElections
	res.Failovers = m.Failovers
	res.FencedRejects = m.FencedRejects
	res.FencedLeaks = m.FencedLeaks
	res.WireStaleRejects = m.WireStaleRejects
	res.LeaseWaitTicks = m.LeaseWaitTicks
	res.MeanFailoverTicks = m.MeanFailoverTicks()
	res.UptimeTicks = m.UptimeTicks
	res.DowntimeTicks = m.DowntimeTicks
	res.LogLen = len(ens.Primary().C.Log)
	res.Fingerprint = cluster.StateFingerprint(ens.Primary().C)
	for _, rep := range ens.Reps {
		res.ReplicaFingerprints = append(res.ReplicaFingerprints, cluster.StateFingerprint(rep.C))
	}
	return res, nil
}

// applyEpisode translates one failure episode into ensemble state.
func applyEpisode(ens *cluster.Ensemble, ep clusterEpisode) {
	switch ep {
	case epCrashPrimary:
		ens.CrashPrimary()
	case epPartitionPrimary:
		ens.Isolate(ens.Primary().ID)
	case epAsymPartition:
		p := ens.Primary().ID
		ens.Isolate(p)
		// Break one direction between the first two standbys.
		var standbys []int
		for i := range ens.Reps {
			if i != p {
				standbys = append(standbys, i)
			}
		}
		if len(standbys) >= 2 {
			ens.BreakLink(standbys[0], standbys[1])
		}
	case epHeal:
		ens.HealLinks()
		for i := range ens.Reps {
			_ = ens.Revive(i)
		}
	}
}

// runBaselineMode plays the schedule on a single supervised
// controller facing the same crash episodes. Partitions and
// asymmetric links are no-ops (there is nothing to partition from);
// every crash is healed by a supervised restart with a cold full-log
// replay — the recovery cost failover is measured against.
func runBaselineMode(cfg ClusterCampaignConfig, schedule []scheduleItem, episodes map[int]clusterEpisode, hosts []uint64) (ClusterRunResult, error) {
	c, err := cleanController()
	if err != nil {
		return ClusterRunResult{}, err
	}
	sup := supervise.New(c, supervise.Config{
		Backoff:  resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 64 * time.Millisecond},
		Budget:   resilience.NewBudget(64, 0.25),
		Classify: ClassifyEvent,
	})
	res := ClusterRunResult{Mode: "baseline-single"}
	flushBatch := func(events []sdn.Event) {
		c.ReserveLog(len(events))
		for _, ev := range events {
			sup.Submit(ev)
		}
	}
	for i, it := range schedule {
		if ep, ok := episodes[i]; ok && ep == epCrashPrimary {
			c.State = sdn.StateCrashed
		}
		switch it.kind {
		case itemConfig, itemPoisonConfig, itemExternal, itemReboot:
			sup.Submit(it.ev)
		case itemUnicast:
			pump(c.Net, it.src, sdn.Packet{EthDst: it.dst, EthType: 0x0800}, flushBatch)
		case itemBroadcast:
			res.BroadcastProbes++
			pump(c.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}, flushBatch)
		case itemMirrorBroadcast:
			res.BroadcastProbes++
			pump(c.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: PoisonVLAN}, flushBatch)
		case itemWireFault:
			res.WireFaultsSkipped++
		}
	}
	m := sup.Metrics
	res.Offered = m.EventsOffered
	res.Processed = m.EventsProcessed
	res.Lost = m.EventsLost
	res.Restarts = m.Restarts
	res.ColdRestores = m.ColdRestores
	if m.ColdRestores > 0 {
		res.MeanColdRestoreTicks = float64(m.ColdRestoreTicks) / float64(m.ColdRestores)
	}
	res.UptimeTicks = m.UptimeTicks
	res.DowntimeTicks = m.RecoveryTicks
	res.LogLen = len(c.Log)
	res.Fingerprint = cluster.StateFingerprint(c)
	return res, nil
}

// runUnfaultedMode plays the schedule on one clean controller with no
// failures — the ground truth the cluster must match byte-for-byte.
func runUnfaultedMode(schedule []scheduleItem, hosts []uint64) (ClusterRunResult, error) {
	c, err := cleanController()
	if err != nil {
		return ClusterRunResult{}, err
	}
	res := ClusterRunResult{Mode: "unfaulted"}
	submit := func(ev sdn.Event) error {
		res.Offered++
		before := c.Stats.TotalCost
		if err := c.Submit(ev); err != nil {
			res.Lost++
			return err
		}
		res.UptimeTicks += c.Stats.TotalCost - before
		res.Processed++
		return nil
	}
	flushBatch := func(events []sdn.Event) {
		c.ReserveLog(len(events))
		for _, ev := range events {
			_ = submit(ev)
		}
	}
	for _, it := range schedule {
		switch it.kind {
		case itemConfig, itemPoisonConfig, itemExternal, itemReboot:
			_ = submit(it.ev)
		case itemUnicast:
			pump(c.Net, it.src, sdn.Packet{EthDst: it.dst, EthType: 0x0800}, flushBatch)
		case itemBroadcast:
			res.BroadcastProbes++
			pump(c.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806}, flushBatch)
		case itemMirrorBroadcast:
			res.BroadcastProbes++
			pump(c.Net, it.src, sdn.Packet{EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: PoisonVLAN}, flushBatch)
		case itemWireFault:
			res.WireFaultsSkipped++
		}
	}
	res.LogLen = len(c.Log)
	res.Fingerprint = cluster.StateFingerprint(c)
	return res, nil
}
