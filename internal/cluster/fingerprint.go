package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// StateFingerprint hashes everything that defines a controller's
// converged state: configuration, the event log (by value, including
// encoded network messages), every switch's flow table and port
// states, and the app's learned state. Two controllers with equal
// fingerprints processed the same events and reached the same
// dataplane — the replication correctness check E26 leans on.
// Stats, costs, and error logs are deliberately excluded: they
// describe the journey (restart costs, replica replay work), not the
// state.
func StateFingerprint(c *sdn.Controller) string {
	h := fnv.New64a()
	buf := make([]byte, 0, 256)
	u64 := func(v uint64) {
		buf = binary.BigEndian.AppendUint64(buf[:0], v)
		h.Write(buf)
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	// Configuration, in sorted key order.
	keys := make([]string, 0, len(c.Config))
	for k := range c.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	u64(uint64(len(keys)))
	for _, k := range keys {
		str(k)
		str(c.Config[k])
	}

	// The event log, by value. Network messages hash as their encoded
	// frames, so two logs are equal only if they replay identically.
	u64(uint64(len(c.Log)))
	for _, ev := range c.Log {
		u64(uint64(ev.Seq))
		u64(uint64(ev.Kind))
		str(ev.Key)
		str(ev.Value)
		str(ev.Service)
		u64(ev.DPID)
		if ev.Msg != nil {
			frame, err := openflow.Encode(ev.Msg, 0)
			if err != nil {
				str(fmt.Sprintf("unencodable:%v", err))
			} else {
				u64(uint64(len(frame)))
				h.Write(frame)
			}
		}
	}

	// Dataplane: per switch (sorted by dpid), the flow table in table
	// order and every port's link state.
	for _, dpid := range c.Net.Switches() {
		sw, err := c.Net.Switch(dpid)
		if err != nil {
			continue
		}
		u64(dpid)
		entries := sw.Table.Entries()
		u64(uint64(len(entries)))
		for _, e := range entries {
			u64(uint64(e.Priority))
			m := e.Match
			if m.MatchInPort {
				u64(1)
			} else {
				u64(0)
			}
			u64(uint64(m.InPort))
			u64(m.EthSrc)
			u64(m.EthDst)
			u64(uint64(m.EthType))
			u64(uint64(m.VlanID))
			u64(uint64(len(e.Actions)))
			for _, a := range e.Actions {
				u64(uint64(a.Type))
				u64(uint64(a.Port))
				u64(uint64(a.Vlan))
			}
		}
		for p := uint32(1); p <= sw.NumPorts; p++ {
			if sw.PortUp(p) {
				u64(1)
			} else {
				u64(0)
			}
		}
	}

	// App state: the learned MAC tables, in sorted order.
	snapper, ok := c.App.(interface{ Snapshot() any })
	if !ok {
		return fmt.Sprintf("%016x", h.Sum64())
	}
	if snap, ok := snapper.Snapshot().(map[uint64]map[uint64]uint32); ok {
		dpids := make([]uint64, 0, len(snap))
		for d := range snap {
			dpids = append(dpids, d)
		}
		sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
		for _, d := range dpids {
			u64(d)
			macs := make([]uint64, 0, len(snap[d]))
			for m := range snap[d] {
				macs = append(macs, m)
			}
			sort.Slice(macs, func(i, j int) bool { return macs[i] < macs[j] })
			for _, m := range macs {
				u64(m)
				u64(uint64(snap[d][m]))
			}
		}
	}

	return fmt.Sprintf("%016x", h.Sum64())
}
