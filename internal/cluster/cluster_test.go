package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/supervise"
)

// testFactory builds identical clean controllers: a 3-switch linear
// topology running the learning L2 app, no fault middleware.
func testFactory() (*sdn.Controller, error) {
	net, err := sdn.LinearTopology(3)
	if err != nil {
		return nil, err
	}
	env := sdn.NewEnvironment("influxdb", "atomix")
	app := sdn.NewL2Switch(map[string]int{"influxdb": 1, "atomix": 1})
	return sdn.NewController(net, env, app), nil
}

func newTestEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	e, err := New(Config{Replicas: 3, Factory: testFactory})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

// workload yields a deterministic mixed event stream: config writes
// and unicast traffic between the linear topology's hosts.
func workload(n int) []sdn.Event {
	evs := make([]sdn.Event, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			evs = append(evs, sdn.Event{
				Kind: sdn.EventConfig,
				Key:  fmt.Sprintf("vlan.zone%d", i%7),
				Value: fmt.Sprintf("%d", 100+i),
			})
		default:
			src := uint64(0x11 + i%3)
			dst := uint64(0x11 + (i+1)%3)
			evs = append(evs, sdn.Event{
				Kind: sdn.EventNetwork,
				Msg:  trafficPacketIn(src-0x10, 1, src, dst),
			})
		}
	}
	return evs
}

func runWorkload(t *testing.T, e *Ensemble, evs []sdn.Event, crashAt int) {
	t.Helper()
	for i, ev := range evs {
		if i == crashAt {
			e.CrashPrimary()
		}
		out := e.Submit(ev)
		if out != supervise.OutcomeProcessed && out != supervise.OutcomeHealed {
			t.Fatalf("event %d: outcome %v", i, out)
		}
		if i%8 == 7 {
			e.EndSlot()
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// unfaultedFingerprint plays evs on one clean controller.
func unfaultedFingerprint(t *testing.T, evs []sdn.Event) string {
	t.Helper()
	c, err := testFactory()
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if err := c.Submit(ev); err != nil {
			t.Fatalf("unfaulted submit %d: %v", i, err)
		}
	}
	return StateFingerprint(c)
}

// TestFingerprintInvariantToFailoverPoint is the replication property
// test: wherever the primary crashes, the ensemble's converged state
// is byte-identical to the unfaulted single-controller run — failover
// never loses, duplicates, or reorders events.
func TestFingerprintInvariantToFailoverPoint(t *testing.T) {
	const events = 48
	evs := workload(events)
	want := unfaultedFingerprint(t, evs)
	for _, crashAt := range []int{0, 1, 7, 8, 23, 24, 40, 47} {
		e := newTestEnsemble(t)
		runWorkload(t, e, evs, crashAt)
		if e.Metrics.Failovers == 0 {
			t.Fatalf("crashAt=%d: no failover happened", crashAt)
		}
		if e.Metrics.Lost != 0 {
			t.Fatalf("crashAt=%d: lost %d events", crashAt, e.Metrics.Lost)
		}
		if !e.Converged() {
			t.Fatalf("crashAt=%d: replicas did not converge", crashAt)
		}
		for i, rep := range e.Reps {
			if got := StateFingerprint(rep.C); got != want {
				t.Fatalf("crashAt=%d: replica %d fingerprint %s, want %s", crashAt, i, got, want)
			}
		}
	}
}

// TestSequentialFailovers drives the ensemble through more crashes
// than it has replicas — revival via the factory plus full log replay
// must keep every replica electable.
func TestSequentialFailovers(t *testing.T) {
	evs := workload(96)
	want := unfaultedFingerprint(t, evs)
	e := newTestEnsemble(t)
	for i, ev := range evs {
		if i%20 == 10 {
			e.CrashPrimary()
		}
		out := e.Submit(ev)
		if out != supervise.OutcomeProcessed && out != supervise.OutcomeHealed {
			t.Fatalf("event %d: outcome %v", i, out)
		}
		e.EndSlot()
		if i%20 == 15 {
			// Revive whoever crashed so the ensemble regains headroom.
			for j := range e.Reps {
				if err := e.Revive(j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if e.Metrics.Failovers < 3 {
		t.Fatalf("Failovers = %d, want >= 3", e.Metrics.Failovers)
	}
	for i, rep := range e.Reps {
		if got := StateFingerprint(rep.C); got != want {
			t.Fatalf("replica %d fingerprint %s, want %s", i, got, want)
		}
	}
}

// TestPartitionLeaseElection isolates the primary: slots burn lease,
// the majority elects a successor, and the deposed-but-alive primary's
// write and wire mastership claims all bounce off the fence.
func TestPartitionLeaseElection(t *testing.T) {
	e := newTestEnsemble(t)
	evs := workload(16)
	for _, ev := range evs {
		if out := e.Submit(ev); out != supervise.OutcomeProcessed {
			t.Fatalf("outcome %v", out)
		}
		e.EndSlot()
	}
	oldID := e.Primary().ID
	oldTerm := e.Primary().Term()
	oldLog := len(e.Reps[oldID].C.Log)
	e.Isolate(oldID)
	if e.Available() {
		t.Fatal("isolated primary still reports available")
	}
	for i := 0; i < e.cfg.LeaseSlots; i++ {
		e.EndSlot()
	}
	if e.Primary().ID == oldID {
		t.Fatal("lease expiry did not elect a new primary")
	}
	if e.Metrics.Elections != 1 || e.Metrics.Failovers != 1 {
		t.Fatalf("metrics %+v", e.Metrics)
	}
	// failover() already probed the deposed primary once; probe again
	// explicitly and verify nothing ever leaks.
	if e.Metrics.FencedRejects == 0 || e.Metrics.WireStaleRejects != 3 {
		t.Fatalf("fence evidence missing: %+v", e.Metrics)
	}
	ok := e.AttemptStaleWrite(oldID, oldTerm, sdn.Event{Kind: sdn.EventConfig, Key: "x", Value: "y"})
	if !ok || e.Metrics.FencedLeaks != 0 {
		t.Fatalf("stale write leaked: %+v", e.Metrics)
	}
	if len(e.Reps[oldID].C.Log) != oldLog {
		t.Fatal("deposed primary's log grew")
	}
	for _, gen := range e.BankRef().Generations() {
		if gen != e.Term() {
			t.Fatalf("bank generation %d, want %d", gen, e.Term())
		}
	}
}

// TestAsymmetricLinkDefeatsElection breaks one direction of a standby
// link during a primary partition: with N=3, the candidate cannot
// gather a bidirectional majority, the election fails, and slots keep
// burning lease until the link heals.
func TestAsymmetricLinkDefeatsElection(t *testing.T) {
	e := newTestEnsemble(t)
	for _, ev := range workload(8) {
		e.Submit(ev)
	}
	e.EndSlot()
	e.Isolate(0)
	e.BreakLink(1, 2)
	for i := 0; i < e.cfg.LeaseSlots+2; i++ {
		e.EndSlot()
	}
	if e.Metrics.FailedElections == 0 {
		t.Fatalf("expected failed elections, metrics %+v", e.Metrics)
	}
	if e.Primary().ID != 0 {
		t.Fatal("a candidate won without a bidirectional majority")
	}
	// Healing the link lets the next lease expiry elect.
	e.reach[1][2] = true
	e.EndSlot()
	if e.Primary().ID == 0 {
		t.Fatalf("election still failing after link heal: %+v", e.Metrics)
	}
}

// fencedLog is the atomic check-then-append a correct fenced store
// must implement: the fence verdict and the append happen under one
// lock, so a concurrent Advance cannot slip between them.
type fencedLog struct {
	mu      sync.Mutex
	fence   *Fence
	entries []uint64
}

func (l *fencedLog) append(term uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.fence.Allow(term) {
		return false
	}
	l.entries = append(l.entries, term)
	return true
}

// TestConcurrentDualPrimaryFencing races deposed-primary writers
// against fence advances (run under -race): once a term is fenced
// off, every write under it must be rejected — no leaks, ever.
func TestConcurrentDualPrimaryFencing(t *testing.T) {
	var f Fence
	f.Advance(1)
	log := &fencedLog{fence: &f}
	const writers = 8
	const writesEach = 200

	// Phase 1: term 1 is live; concurrent writers all succeed.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writesEach; i++ {
				if !log.append(1) {
					t.Error("live-term write rejected")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Phase 2: the new primary takes term 2; deposed writers keep
	// hammering term 1 while the fence keeps advancing. Every stale
	// write must fail.
	if !f.Advance(2) {
		t.Fatal("Advance(2) failed")
	}
	var staleAccepted atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writesEach; i++ {
				if log.append(1) {
					staleAccepted.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for term := uint64(3); term < 50; term++ {
			f.Advance(term)
		}
	}()
	wg.Wait()
	if n := staleAccepted.Load(); n != 0 {
		t.Fatalf("%d stale writes leaked past the fence", n)
	}
	for _, term := range log.entries {
		if term != 1 {
			t.Fatalf("unexpected entry term %d", term)
		}
	}
	if len(log.entries) != writers*writesEach {
		t.Fatalf("live writes lost: %d entries", len(log.entries))
	}
	if f.Advance(10) {
		t.Fatal("fence moved backward")
	}
	if f.Generation() != 49 {
		t.Fatalf("generation = %d, want 49", f.Generation())
	}
}

// TestSupervisorCrashPathUsesFailoverHook verifies the integration
// point: a crashed primary detected mid-submit escalates through the
// supervisor's exhausted restart budget into the ensemble failover,
// and the event lands on the new primary exactly once.
func TestSupervisorCrashPathUsesFailoverHook(t *testing.T) {
	e := newTestEnsemble(t)
	e.Submit(sdn.Event{Kind: sdn.EventConfig, Key: "a", Value: "1"})
	e.EndSlot()
	e.CrashPrimary()
	out := e.Submit(sdn.Event{Kind: sdn.EventConfig, Key: "b", Value: "2"})
	if out != supervise.OutcomeHealed {
		t.Fatalf("outcome %v, want healed", out)
	}
	if e.Reps[0].Sup.Metrics.Failovers != 1 {
		t.Fatalf("supervisor failovers = %d, want 1", e.Reps[0].Sup.Metrics.Failovers)
	}
	p := e.Primary()
	if p.ID == 0 {
		t.Fatal("primary did not move")
	}
	var n int
	for _, ev := range p.C.Log {
		if ev.Key == "b" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("failed-over event logged %d times on new primary, want 1", n)
	}
	if p.C.Config["b"] != "2" {
		t.Fatal("failed-over event not applied")
	}
}

// TestBankHandoffExchangesRealFrames sanity-checks that the bank is a
// real wire: generations advance through encode/decode round trips
// and stale claims produce counted rejections.
func TestBankHandoffExchangesRealFrames(t *testing.T) {
	b, err := NewBank([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handoff(1); err != nil {
		t.Fatal(err)
	}
	if granted, err := b.Handoff(2); err != nil || granted != 3 {
		t.Fatalf("handoff: granted=%d err=%v", granted, err)
	}
	if rej := b.TryStaleMaster(1); rej != 3 {
		t.Fatalf("stale rejections = %d, want 3", rej)
	}
	for _, gen := range b.Generations() {
		if gen != 2 {
			t.Fatalf("generation %d, want 2", gen)
		}
	}
}

// trafficPacketIn fabricates the punt a switch sends when src talks
// to dst — enough for the L2 app to learn and install flows.
func trafficPacketIn(dpid uint64, inPort uint32, src, dst uint64) *openflow.PacketIn {
	return &openflow.PacketIn{
		DatapathID: dpid,
		InPort:     inPort,
		Data:       sdn.EncodePacket(sdn.Packet{EthSrc: src, EthDst: dst}),
	}
}
