// Package cluster turns the single supervised controller into an
// N-replica ensemble: deterministic term/lease-based leader election,
// primary→standby state replication by shipping the primary's event
// log in bounded batches (sdn.EventQueue + ProcessBatch, so replicas
// converge byte-identically), OpenFlow mastership handoff at the
// ofconn layer (role request/reply with generation ids), and fencing
// tokens so a deposed primary's in-flight writes are rejected — no
// dual-master window ever mutates state.
//
// The paper's taxonomy puts control-plane failures (controller
// crashes, mastership confusion, state divergence after reconnect)
// among the most damaging SDN bug classes; everything here is logical
// ticks and seed-deterministic, so the failover campaign (E26) can
// assert byte-identity against an unfaulted single-controller run.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"sdnbugs/internal/metrics"
	"sdnbugs/internal/resilience"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/supervise"
)

// Logical-tick costs of ensemble actions, in the same units as the
// supervisor's (supervise.RestartCost etc).
const (
	// ElectionCost is the fixed tick cost of one election round
	// (vote solicitation + count across the quorum).
	ElectionCost = 8
	// HandoffCost is the tick cost of one switch mastership handoff
	// (role request/reply round trip).
	HandoffCost = 2
	// LeaseTickCost is how many ticks of downtime one slot of expired
	// lease costs while standbys wait out the primary's lease.
	LeaseTickCost = 4
)

// Config tunes an Ensemble.
type Config struct {
	// Replicas is the ensemble size (default 3).
	Replicas int
	// LeaseSlots is how many slots without a primary heartbeat a
	// standby waits before starting an election (default 3).
	LeaseSlots int
	// InboxCapacity bounds the replication batch ring per standby
	// (default 4096 events per slot).
	InboxCapacity int
	// Factory builds one replica's controller. Every replica must be
	// built identically — replication assumes replaying the same log
	// on any replica converges to the same state.
	Factory func() (*sdn.Controller, error)
	// Classify buckets events for the per-replica supervisors
	// (defaults to EventKind.String()).
	Classify func(sdn.Event) string
	// Metrics, when set, receives cluster_* counters and the
	// failover-wall histogram. Observability never changes results.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.LeaseSlots <= 0 {
		c.LeaseSlots = 3
	}
	if c.InboxCapacity <= 0 {
		c.InboxCapacity = 4096
	}
	return c
}

// Metrics aggregates one ensemble run. Everything is logical (counts
// and ticks), so runs at the same seed are byte-identical.
type Metrics struct {
	Offered   int
	Processed int
	Lost      int

	Elections       int
	FailedElections int
	Failovers       int
	FencedRejects   int
	FencedLeaks     int
	WireStaleRejects int

	FailoverTicks  []int // wall of each completed failover
	LeaseWaitTicks int

	UptimeTicks   int
	DowntimeTicks int
}

// MeanFailoverTicks is the mean wall of one completed failover.
func (m Metrics) MeanFailoverTicks() float64 {
	if len(m.FailoverTicks) == 0 {
		return 0
	}
	total := 0
	for _, t := range m.FailoverTicks {
		total += t
	}
	return float64(total) / float64(len(m.FailoverTicks))
}

// TimeAvailability is uptime over total logical time.
func (m Metrics) TimeAvailability() float64 {
	total := m.UptimeTicks + m.DowntimeTicks
	if total == 0 {
		return 1
	}
	return float64(m.UptimeTicks) / float64(total)
}

// Fence is the cluster-side fencing token: a forward-only generation
// number matching the switch bank's accepted generation id. Every log
// write states the term it acts under; terms below the fence are
// rejected without touching any state. Safe for concurrent use — the
// dual-primary race is exactly what it guards.
type Fence struct {
	mu  sync.Mutex
	gen uint64
}

// Generation returns the highest accepted term.
func (f *Fence) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// Allow reports whether a write under term may proceed.
func (f *Fence) Allow(term uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return term >= f.gen
}

// Advance raises the fence to term; it refuses to move backward.
func (f *Fence) Advance(term uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if term < f.gen {
		return false
	}
	f.gen = term
	return true
}

// Replica is one ensemble member: a controller plus its supervisor.
type Replica struct {
	ID  int
	C   *sdn.Controller
	Sup *supervise.Supervisor

	// term is the highest term this replica held the primaryship
	// under — the fencing token its writes carry.
	term uint64
	// inbox is the bounded replication ring this standby drains one
	// batch per slot; scratch is its reusable drain buffer.
	inbox   *sdn.EventQueue
	scratch []sdn.Event
}

// Term returns the fencing token of the replica's last primaryship.
func (r *Replica) Term() uint64 { return r.term }

// Ensemble is the replicated controller cluster.
type Ensemble struct {
	cfg  Config
	Reps []*Replica

	primary int
	term    uint64
	fence   Fence
	bank    *Bank

	// reach[i][j] reports whether replica i can send to replica j.
	// Asymmetric entries model one-way link faults.
	reach [][]bool

	// quorumLostSlots counts consecutive slots the primary has been
	// without quorum — the standbys' lease clock.
	quorumLostSlots int

	// pendingRetry holds events a failover re-homes onto the new
	// primary.
	pendingRetry []sdn.Event

	Metrics Metrics
}

// New builds and starts an ensemble: replica 0 is the initial primary
// at term 1, holding switch mastership across the bank.
func New(cfg Config) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if cfg.Factory == nil {
		return nil, errors.New("cluster: Config.Factory is required")
	}
	e := &Ensemble{cfg: cfg, term: 1}
	for i := 0; i < cfg.Replicas; i++ {
		c, err := cfg.Factory()
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		rep := &Replica{ID: i, C: c, inbox: sdn.NewEventQueue(cfg.InboxCapacity)}
		rep.Sup = e.newSupervisor(rep)
		e.Reps = append(e.Reps, rep)
	}
	e.reach = fullReach(cfg.Replicas)
	bank, err := NewBank(e.Reps[0].C.Net.Switches())
	if err != nil {
		return nil, err
	}
	e.bank = bank
	if _, err := e.bank.Handoff(e.term); err != nil {
		return nil, fmt.Errorf("cluster: initial handoff: %w", err)
	}
	e.fence.Advance(e.term)
	e.Reps[0].term = e.term
	return e, nil
}

// newSupervisor wires one replica's self-healing runtime: a dry
// restart budget so every incident escalates straight to the Failover
// hook — in a cluster, handing off beats restarting in place.
func (e *Ensemble) newSupervisor(rep *Replica) *supervise.Supervisor {
	return supervise.New(rep.C, supervise.Config{
		Budget:   resilience.NewBudget(0, 0),
		Classify: e.cfg.Classify,
		Failover: func(retry *sdn.Event) bool { return e.failover(rep, retry) },
		Metrics:  e.cfg.Metrics,
	})
}

func fullReach(n int) [][]bool {
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		for j := range reach[i] {
			reach[i][j] = true
		}
	}
	return reach
}

// count increments a registry counter when observability is wired.
func (e *Ensemble) count(name string) {
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Counter(name).Inc()
	}
}

// Primary returns the serving replica.
func (e *Ensemble) Primary() *Replica { return e.Reps[e.primary] }

// Term returns the current term (the live fencing token).
func (e *Ensemble) Term() uint64 { return e.term }

// Fence exposes the fencing token gate (tests race against it).
func (e *Ensemble) FenceRef() *Fence { return &e.fence }

// Bank exposes the switch mastership bank.
func (e *Ensemble) BankRef() *Bank { return e.bank }

// reachable reports bidirectional reachability between two replicas.
func (e *Ensemble) reachable(i, j int) bool {
	return e.reach[i][j] && e.reach[j][i]
}

// hasQuorum reports whether replica i can talk (bidirectionally) to a
// strict majority of the ensemble, itself included. Crash state is
// deliberately ignored: quorum is a network property; a crashed but
// connected primary is detected by the next request, not by lease
// expiry.
func (e *Ensemble) hasQuorum(i int) bool {
	votes := 1
	for j := range e.Reps {
		if j != i && e.reachable(i, j) {
			votes++
		}
	}
	return votes*2 > len(e.Reps)
}

// Available reports whether client traffic can currently reach a
// primary holding quorum.
func (e *Ensemble) Available() bool { return e.hasQuorum(e.primary) }

// Isolate cuts every link to and from replica i.
func (e *Ensemble) Isolate(i int) {
	for j := range e.Reps {
		if j != i {
			e.reach[i][j] = false
			e.reach[j][i] = false
		}
	}
}

// BreakLink cuts the one-way link from i to j — the asymmetric fault
// that defeats a candidate's vote collection (votes need both
// directions) without looking like a clean partition.
func (e *Ensemble) BreakLink(i, j int) { e.reach[i][j] = false }

// HealLinks restores full connectivity.
func (e *Ensemble) HealLinks() {
	e.reach = fullReach(len(e.Reps))
	e.quorumLostSlots = 0
}

// CrashPrimary fail-stops the serving controller out-of-band, the way
// a faultlab crash episode does.
func (e *Ensemble) CrashPrimary() {
	e.Primary().C.State = sdn.StateCrashed
}

// Revive rebuilds a crashed replica from the factory: a fresh
// controller with an empty log, which the replication path catches up
// from the current primary. Replaying the full log on a fresh replica
// is exactly the unfaulted run, so the revived replica converges
// byte-identically.
func (e *Ensemble) Revive(i int) error {
	rep := e.Reps[i]
	if rep.C.State != sdn.StateCrashed {
		return nil
	}
	c, err := e.cfg.Factory()
	if err != nil {
		return fmt.Errorf("cluster: revive %d: %w", i, err)
	}
	rep.C = c
	rep.Sup = e.newSupervisor(rep)
	return nil
}

// Submit routes one client event to the serving primary. A crashed
// primary is detected by the supervisor's probe; its dry restart
// budget escalates straight to the Failover hook, which elects a new
// primary, hands switch mastership over at the wire, and re-homes the
// event there — the caller sees OutcomeHealed and the event is never
// lost.
func (e *Ensemble) Submit(ev sdn.Event) supervise.Outcome {
	e.Metrics.Offered++
	rep := e.Primary()
	before := rep.C.Stats.TotalCost
	out, ok := e.applyAs(rep, rep.term, ev)
	cost := rep.C.Stats.TotalCost - before
	if !ok {
		// The serving primary's own term can only be fenced off by a
		// concurrent deposition — count the event as lost rather than
		// silently dropping it.
		e.Metrics.Lost++
		return supervise.OutcomeLost
	}
	switch out {
	case supervise.OutcomeProcessed:
		e.Metrics.UptimeTicks += cost
		e.Metrics.Processed++
	case supervise.OutcomeHealed:
		// A failover ran inside Submit; the retry event waits in
		// pendingRetry for the new primary.
		e.Metrics.Processed++
		e.drainRetries()
	default:
		e.Metrics.Lost++
	}
	return out
}

// applyAs submits one event as replica rep claiming term. The fence
// rejects stale terms without touching the log — the no-leak
// guarantee the dual-primary test hammers.
func (e *Ensemble) applyAs(rep *Replica, term uint64, ev sdn.Event) (supervise.Outcome, bool) {
	if !e.fence.Allow(term) {
		logLen := len(rep.C.Log)
		e.Metrics.FencedRejects++
		e.count("cluster_fenced_writes_total")
		if len(rep.C.Log) != logLen {
			e.Metrics.FencedLeaks++
		}
		return 0, false
	}
	return rep.Sup.Submit(ev), true
}

// AttemptStaleWrite is the deposed-primary probe: replica i tries to
// apply a write under an old term. The fence must reject it with zero
// state mutated; the return reports whether the write leaked.
func (e *Ensemble) AttemptStaleWrite(i int, term uint64, ev sdn.Event) bool {
	rep := e.Reps[i]
	logBefore := len(rep.C.Log)
	_, ok := e.applyAs(rep, term, ev)
	leaked := ok || len(rep.C.Log) != logBefore
	if leaked {
		e.Metrics.FencedLeaks++
	}
	return !leaked
}

// drainRetries re-homes failed-over events onto the (new) primary.
// Retry processing is recovery work, so it accrues downtime.
func (e *Ensemble) drainRetries() {
	for len(e.pendingRetry) > 0 {
		evs := e.pendingRetry
		e.pendingRetry = nil
		for _, ev := range evs {
			rep := e.Primary()
			before := rep.C.Stats.TotalCost
			out, ok := e.applyAs(rep, rep.term, ev)
			e.Metrics.DowntimeTicks += rep.C.Stats.TotalCost - before
			if !ok || (out != supervise.OutcomeProcessed && out != supervise.OutcomeHealed) {
				e.Metrics.Lost++
			}
		}
	}
}

// elect runs one deterministic election round: every live replica is
// a candidate; replica j grants its vote to candidate i only when the
// link is bidirectionally intact and i's log is at least as long as
// j's (a stale replica can never win). The winner needs a strict
// majority; ties break to the longest log, then the lowest ID.
func (e *Ensemble) elect() (int, bool) {
	n := len(e.Reps)
	winner, winnerLog := -1, -1
	for i, r := range e.Reps {
		if r.C.State == sdn.StateCrashed {
			continue
		}
		votes := 1 // self
		for j, v := range e.Reps {
			if j == i || v.C.State == sdn.StateCrashed {
				continue
			}
			if !e.reachable(i, j) {
				continue
			}
			if len(v.C.Log) > len(r.C.Log) {
				continue // voter refuses a candidate behind its own log
			}
			votes++
		}
		if votes*2 <= n {
			continue
		}
		if len(r.C.Log) > winnerLog {
			winner, winnerLog = i, len(r.C.Log)
		}
	}
	return winner, winner >= 0
}

// failover deposes the current primary: elect a successor with
// quorum, hand switch mastership to it at the wire under the next
// term, advance the fence, and (when the deposed primary is still
// alive — the split-brain case) prove the fence holds by letting it
// try one stale write and one stale role request. retry, when set, is
// re-homed onto the new primary.
func (e *Ensemble) failover(from *Replica, retry *sdn.Event) bool {
	winner, ok := e.elect()
	if !ok || winner == e.primary {
		e.Metrics.FailedElections++
		e.count("cluster_failed_elections_total")
		return false
	}
	oldID, oldTerm := e.primary, e.term
	e.term++
	e.Metrics.Elections++
	e.count("cluster_elections_total")
	wall := ElectionCost
	granted, err := e.bank.Handoff(e.term)
	if err != nil {
		// A handoff the bank refuses would leave mastership split;
		// back out of the promotion entirely.
		e.term--
		e.Metrics.FailedElections++
		return false
	}
	wall += HandoffCost * granted
	wall += e.recoverDurableLog(oldID, winner, &retry)
	e.fence.Advance(e.term)
	e.primary = winner
	e.Reps[winner].term = e.term
	if e.quorumLostSlots > 0 {
		// Lease the standbys had to wait out counts against the
		// failover wall.
		wall += e.quorumLostSlots * LeaseTickCost
		e.quorumLostSlots = 0
	}
	e.Metrics.Failovers++
	e.Metrics.FailoverTicks = append(e.Metrics.FailoverTicks, wall)
	e.Metrics.DowntimeTicks += wall
	e.count("cluster_failovers_total")
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Histogram("cluster_failover_wall_ticks").Observe(float64(wall))
	}
	if retry != nil {
		e.pendingRetry = append(e.pendingRetry, *retry)
	}
	old := e.Reps[oldID]
	if old.C.State != sdn.StateCrashed && from == old {
		// Split-brain window: the deposed primary is alive and does
		// not know it was deposed. Its in-flight write and its wire
		// mastership claim must both bounce off the fence.
		e.AttemptStaleWrite(oldID, oldTerm, sdn.Event{
			Kind: sdn.EventConfig, Key: "fence.probe", Value: "stale",
		})
		if rej := e.bank.TryStaleMaster(oldTerm); rej > 0 {
			e.Metrics.WireStaleRejects += rej
			e.Metrics.FencedRejects += rej
		}
	}
	return true
}

// recoverDurableLog replays onto the winner whatever suffix of the
// deposed primary's log was never replicated. A fail-stop crash kills
// the process but not its durable log, so events the primary logged
// between replication slots survive failover — without this, a crash
// mid-slot would silently lose the unshipped tail. A partitioned
// (alive, unreachable) primary's log cannot be read, but partitions
// take effect at slot boundaries, after EndSlot has shipped
// everything, so there is never an unshipped tail to lose. Returns
// the replay cost in ticks; when the suffix already contains the
// in-flight retry event (a crash after logging), the retry is
// cancelled so the event is not applied twice.
func (e *Ensemble) recoverDurableLog(oldID, winner int, retry **sdn.Event) int {
	old, win := e.Reps[oldID], e.Reps[winner]
	if old.C.State != sdn.StateCrashed || len(old.C.Log) <= len(win.C.Log) {
		return 0
	}
	suffix := old.C.Log[len(win.C.Log):]
	before := win.C.Stats.TotalCost
	win.C.ProcessBatch(suffix)
	win.C.Net.DrainPacketIns()
	win.C.Net.DrainDeliveries()
	if *retry != nil && sameEvent(suffix[len(suffix)-1], **retry) {
		*retry = nil
	}
	return win.C.Stats.TotalCost - before
}

// sameEvent reports whether a logged event is the same submission as
// an in-flight retry (network messages compare by pointer — the
// supervisor retries the very value it logged).
func sameEvent(logged, retry sdn.Event) bool {
	return logged.Kind == retry.Kind && logged.Key == retry.Key &&
		logged.Value == retry.Value && logged.Service == retry.Service &&
		logged.DPID == retry.DPID && logged.Msg == retry.Msg
}

// EnsureServing is the traffic-path dead-master detector: switches
// notice a dead primary by keepalive timeout (the ofconn read
// deadline) and re-home before packets flow. It fails over
// immediately when the primary is crashed but the ensemble still has
// quorum; management events instead detect the crash on first submit
// through the supervisor.
func (e *Ensemble) EnsureServing() bool {
	rep := e.Primary()
	if rep.C.State != sdn.StateCrashed {
		return true
	}
	return e.failover(rep, nil)
}

// EndSlot finishes one campaign slot. A primary holding quorum
// heartbeats and replicates: every bidirectionally reachable standby
// receives the primary's log suffix through its bounded inbox ring
// and applies it with ProcessBatch — so standby state converges
// byte-identically — then discards its own dataplane echoes. A
// primary without quorum burns lease: after LeaseSlots slots the
// majority side elects a successor.
func (e *Ensemble) EndSlot() {
	if e.hasQuorum(e.primary) && e.Primary().C.State != sdn.StateCrashed {
		e.quorumLostSlots = 0
		for i, rep := range e.Reps {
			if i != e.primary && e.reachable(e.primary, i) {
				e.catchUp(rep)
			}
		}
		return
	}
	e.quorumLostSlots++
	e.Metrics.LeaseWaitTicks += LeaseTickCost
	e.Metrics.DowntimeTicks += LeaseTickCost
	if e.quorumLostSlots >= e.cfg.LeaseSlots {
		e.failover(e.Primary(), nil)
	}
}

// catchUp ships the primary's log suffix to one standby and applies
// it. The inbox ring bounds one slot's shipment; a lagging standby
// finishes catching up over subsequent slots.
func (e *Ensemble) catchUp(rep *Replica) int {
	p := e.Primary()
	if rep.C.State == sdn.StateCrashed || len(rep.C.Log) >= len(p.C.Log) {
		return 0
	}
	suffix := p.C.Log[len(rep.C.Log):]
	n := rep.inbox.EnqueueAll(suffix)
	if n == 0 {
		return 0
	}
	batch := rep.inbox.Drain(rep.scratch[:0])
	rep.scratch = batch[:0]
	rep.C.ProcessBatch(batch)
	// The standby's dataplane echoes (punts, deliveries) from
	// replaying traffic events are shadows of work the primary
	// already served; a promoted standby must start with clean
	// queues.
	rep.C.Net.DrainPacketIns()
	rep.C.Net.DrainDeliveries()
	return len(batch)
}

// Sync drives replication to convergence: crashed replicas revived,
// links assumed healed, every standby caught up to the primary. Used
// at campaign end so all replicas can be fingerprint-compared.
func (e *Ensemble) Sync() error {
	e.HealLinks()
	for i := range e.Reps {
		if err := e.Revive(i); err != nil {
			return err
		}
	}
	for {
		moved := 0
		for i, rep := range e.Reps {
			if i != e.primary {
				moved += e.catchUp(rep)
			}
		}
		if moved == 0 {
			return nil
		}
	}
}

// Converged reports whether every replica's log has the primary's
// length (content identity is the fingerprint check's job).
func (e *Ensemble) Converged() bool {
	want := len(e.Primary().C.Log)
	for _, rep := range e.Reps {
		if len(rep.C.Log) != want {
			return false
		}
	}
	return true
}
