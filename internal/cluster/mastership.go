package cluster

import (
	"bytes"
	"errors"
	"fmt"

	"sdnbugs/internal/ofconn"
	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// Bank models the switch side of mastership handoff: one SwitchAgent
// per datapath, each reached through a real ofconn session, so every
// failover is a genuine OFPT_ROLE_REQUEST/REPLY exchange and every
// stale claim is rejected on the wire with OFPRRFC_STALE. The bank is
// shared by the whole ensemble — the generation id a switch remembers
// is global across controller connections, which is exactly what
// makes it a fencing token.
type Bank struct {
	switches []*bankSwitch
}

type bankSwitch struct {
	dpid  uint64
	agent *ofconn.SwitchAgent
	sess  *ofconn.ControllerSession
}

// pumpedBuf is a single-threaded duplex endpoint: writes go to out,
// reads come from in, and when in is empty the pump runs the peer's
// serve loop to produce the pending reply. It lets a controller
// session and a switch agent converse deterministically without
// goroutines — every RequestRole is still a full encode → decode →
// agent state machine → encode → decode round trip.
type pumpedBuf struct {
	in   *bytes.Buffer
	out  *bytes.Buffer
	pump func() error
}

func (d *pumpedBuf) Read(p []byte) (int, error) {
	if d.in.Len() == 0 && d.pump != nil {
		if err := d.pump(); err != nil {
			return 0, err
		}
	}
	return d.in.Read(p)
}

func (d *pumpedBuf) Write(p []byte) (int, error) { return d.out.Write(p) }

// NewBank builds one switch agent + controller session per datapath.
func NewBank(dpids []uint64) (*Bank, error) {
	if len(dpids) == 0 {
		return nil, errors.New("cluster: bank needs at least one switch")
	}
	// The agents need a dataplane to front; role handling never touches
	// it, so a minimal mirror of the dpids suffices.
	net := sdn.NewNetwork()
	for _, d := range dpids {
		net.AddSwitch(d, 4)
	}
	b := &Bank{}
	for _, d := range dpids {
		toAgent := &bytes.Buffer{}
		toSess := &bytes.Buffer{}
		agent := &ofconn.SwitchAgent{
			Conn: ofconn.New(&pumpedBuf{in: toAgent, out: toSess}),
			Net:  net,
			DPID: d,
		}
		sess := &ofconn.ControllerSession{DatapathID: d}
		sess.Conn = ofconn.New(&pumpedBuf{
			in:  toSess,
			out: toAgent,
			pump: func() error {
				_, err := agent.ServeOne()
				return err
			},
		})
		b.switches = append(b.switches, &bankSwitch{dpid: d, agent: agent, sess: sess})
	}
	return b, nil
}

// Handoff claims mastership of every switch under gen, returning how
// many switches granted it. Any refusal (a stale generation would
// mean the caller lost a race for the primaryship) aborts with the
// count of switches already re-homed.
func (b *Bank) Handoff(gen uint64) (int, error) {
	granted := 0
	for _, sw := range b.switches {
		role, got, err := sw.sess.RequestRole(openflow.RoleMaster, gen)
		if err != nil {
			return granted, fmt.Errorf("cluster: handoff dpid %d: %w", sw.dpid, err)
		}
		if role != openflow.RoleMaster || got != gen {
			return granted, fmt.Errorf("cluster: handoff dpid %d granted role=%v gen=%d", sw.dpid, role, got)
		}
		granted++
	}
	return granted, nil
}

// TryStaleMaster is the deposed primary's wire-level reclaim attempt:
// request mastership of every switch under an old generation id and
// count the OFPRRFC_STALE rejections. Switch state must be untouched;
// a grant (or a silently advanced generation) is reported as a leak
// by returning fewer rejections than switches.
func (b *Bank) TryStaleMaster(gen uint64) int {
	rejected := 0
	for _, sw := range b.switches {
		before, _ := sw.agent.GenerationID()
		_, _, err := sw.sess.RequestRole(openflow.RoleMaster, gen)
		after, _ := sw.agent.GenerationID()
		if errors.Is(err, ofconn.ErrStaleRole) && after == before {
			rejected++
		}
	}
	return rejected
}

// Generations returns each switch's accepted generation id in dpid
// order — the bank-side view of the fence.
func (b *Bank) Generations() []uint64 {
	out := make([]uint64, 0, len(b.switches))
	for _, sw := range b.switches {
		gen, _ := sw.agent.GenerationID()
		out = append(out, gen)
	}
	return out
}
