// Package trackertest holds test scaffolding shared by the tracker
// simulators' resilience tests (internal/jirasim, internal/ghsim) and
// the served-tracker tests, so the retry-policy and outage-gate setup
// lives in one place instead of being copied per package.
package trackertest

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sdnbugs/internal/resilience"
)

// ResilientClient builds a fast retrying client whose attempt budget
// exceeds the chaos progress bound, so every page eventually lands. The
// transport is returned too, for asserting on its retry metrics.
func ResilientClient() (*http.Client, *resilience.Transport) {
	rt := resilience.NewTransport(nil, resilience.Policy{
		MaxAttempts:   8,
		BaseDelay:     100 * time.Microsecond,
		MaxDelay:      time.Millisecond,
		MaxRetryAfter: 5 * time.Millisecond,
	}, nil)
	return &http.Client{Transport: rt}, rt
}

// Gate starts a server that forwards the first okRequests requests to
// inner and then answers 502 until heal is called — the standard
// mid-mining outage used by the resume tests. The server is closed via
// t.Cleanup.
func Gate(t testing.TB, inner http.Handler, okRequests int) (srv *httptest.Server, heal func()) {
	t.Helper()
	var down atomic.Bool
	down.Store(true)
	var hits atomic.Int32
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(hits.Add(1)) > okRequests && down.Load() {
			http.Error(w, "outage", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, func() { down.Store(false) }
}
