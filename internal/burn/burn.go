// Package burn implements the burn analysis of §VI-B over vcs
// histories: classifying commits into the three functional subsystems
// of a controller (Figure 11), counting commits per release window
// (Figure 10), and deriving the dependency version-change burn-down
// (Table IV).
package burn

import (
	"errors"
	"sort"
	"strings"
	"time"

	"sdnbugs/internal/vcs"
)

// Subsystem is one of the three functional areas of Figure 11.
type Subsystem int

// Subsystem values.
const (
	SubsystemUnknown Subsystem = iota
	Configuration
	NetworkFunctionality
	ExternalAbstraction
)

// Subsystems lists the three areas.
func Subsystems() []Subsystem {
	return []Subsystem{Configuration, NetworkFunctionality, ExternalAbstraction}
}

func (s Subsystem) String() string {
	switch s {
	case Configuration:
		return "configuration"
	case NetworkFunctionality:
		return "network-functionality"
	case ExternalAbstraction:
		return "external-abstraction"
	default:
		return "unknown"
	}
}

// ClassifyFile maps a file path to its subsystem by path heuristics —
// the same style of classification the paper applied to FAUCET.
func ClassifyFile(path string) Subsystem {
	lower := strings.ToLower(path)
	switch {
	case strings.Contains(lower, "requirements"),
		strings.Contains(lower, "setup.py"),
		strings.Contains(lower, "gauge"),
		strings.Contains(lower, "prom_client"),
		strings.Contains(lower, "ryuapp"):
		return ExternalAbstraction
	case strings.Contains(lower, "config"),
		strings.Contains(lower, "conf"),
		strings.Contains(lower, ".yaml"),
		strings.Contains(lower, "acl"):
		return Configuration
	case strings.Contains(lower, "valve"),
		strings.Contains(lower, "vlan"),
		strings.Contains(lower, "route"),
		strings.Contains(lower, "router"),
		strings.Contains(lower, "dot1x"),
		strings.Contains(lower, "table"):
		return NetworkFunctionality
	default:
		return SubsystemUnknown
	}
}

// ClassifyCommit returns the majority subsystem of a commit's files;
// ties resolve in Subsystems() order.
func ClassifyCommit(c vcs.Commit) Subsystem {
	counts := map[Subsystem]int{}
	for _, f := range c.Files {
		counts[ClassifyFile(f)]++
	}
	best, bestN := SubsystemUnknown, 0
	for _, s := range Subsystems() {
		if counts[s] > bestN {
			best, bestN = s, counts[s]
		}
	}
	return best
}

// ErrEmpty is returned by analyses of empty histories.
var ErrEmpty = errors.New("burn: empty history")

// Distribution returns the share of commits per subsystem — Figure 11.
// Unclassifiable commits are excluded from the denominator.
func Distribution(h *vcs.History) (map[Subsystem]float64, error) {
	if h == nil || len(h.Commits) == 0 {
		return nil, ErrEmpty
	}
	counts := map[Subsystem]int{}
	total := 0
	for _, c := range h.Commits {
		s := ClassifyCommit(c)
		if s == SubsystemUnknown {
			continue
		}
		counts[s]++
		total++
	}
	if total == 0 {
		return nil, ErrEmpty
	}
	out := map[Subsystem]float64{}
	for _, s := range Subsystems() {
		out[s] = float64(counts[s]) / float64(total)
	}
	return out, nil
}

// CommitsPerRelease counts commits landing before each release date
// and after the previous one — Figure 10's series.
func CommitsPerRelease(h *vcs.History, releases []time.Time) ([]int, error) {
	if h == nil || len(h.Commits) == 0 {
		return nil, ErrEmpty
	}
	if len(releases) == 0 {
		return nil, errors.New("burn: no releases")
	}
	rel := append([]time.Time(nil), releases...)
	sort.Slice(rel, func(i, j int) bool { return rel[i].Before(rel[j]) })
	out := make([]int, len(rel))
	for _, c := range h.Commits {
		for i, r := range rel {
			var lo time.Time
			if i > 0 {
				lo = rel[i-1]
			}
			if (i == 0 || c.Time.After(lo)) && !c.Time.After(r) {
				out[i]++
				break
			}
		}
	}
	return out, nil
}

// DependencyBurn counts version changes per dependency across the
// history — Table IV. The counts come from the commits' structured
// bump records.
func DependencyBurn(h *vcs.History) (map[string]int, error) {
	if h == nil || len(h.Commits) == 0 {
		return nil, ErrEmpty
	}
	out := map[string]int{}
	for _, c := range h.Commits {
		if c.Bump != nil {
			out[c.Bump.Dep]++
		}
	}
	return out, nil
}

// BurnDownRow is one Table IV row.
type BurnDownRow struct {
	Dependency string
	Changes    int
}

// BurnDownTable returns the dependency burn-down sorted by descending
// change count then name.
func BurnDownTable(h *vcs.History) ([]BurnDownRow, error) {
	counts, err := DependencyBurn(h)
	if err != nil {
		return nil, err
	}
	out := make([]BurnDownRow, 0, len(counts))
	for dep, n := range counts {
		out = append(out, BurnDownRow{Dependency: dep, Changes: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Changes != out[j].Changes {
			return out[i].Changes > out[j].Changes
		}
		return out[i].Dependency < out[j].Dependency
	})
	return out, nil
}
