package burn

import (
	"math"
	"testing"
	"time"

	"sdnbugs/internal/vcs"
)

func TestClassifyFile(t *testing.T) {
	tests := []struct {
		path string
		want Subsystem
	}{
		{"faucet/config_parser.py", Configuration},
		{"etc/faucet/faucet.yaml", Configuration},
		{"faucet/acl.py", Configuration},
		{"faucet/valve.py", NetworkFunctionality},
		{"faucet/vlan.py", NetworkFunctionality},
		{"faucet/valve_route.py", NetworkFunctionality},
		{"requirements.txt", ExternalAbstraction},
		{"faucet/gauge_influx.py", ExternalAbstraction},
		{"setup.py", ExternalAbstraction},
		{"README.md", SubsystemUnknown},
	}
	for _, tt := range tests {
		if got := ClassifyFile(tt.path); got != tt.want {
			t.Errorf("ClassifyFile(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestClassifyCommitMajority(t *testing.T) {
	c := vcs.Commit{Files: []string{"faucet/valve.py", "faucet/vlan.py", "requirements.txt"}}
	if got := ClassifyCommit(c); got != NetworkFunctionality {
		t.Errorf("majority = %v", got)
	}
	if got := ClassifyCommit(vcs.Commit{Files: []string{"README.md"}}); got != SubsystemUnknown {
		t.Errorf("unknown files = %v", got)
	}
}

func TestDistributionFigure11(t *testing.T) {
	h, err := vcs.GenerateFaucet(vcs.GenerateConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Distribution(h)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 11: A 38 %, B 35 %, C 27 %.
	wants := map[Subsystem]float64{
		Configuration:        0.38,
		NetworkFunctionality: 0.35,
		ExternalAbstraction:  0.27,
	}
	var sum float64
	for s, want := range wants {
		if math.Abs(dist[s]-want) > 0.03 {
			t.Errorf("%v = %.3f, want ≈ %.2f", s, dist[s], want)
		}
		sum += dist[s]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
	if _, err := Distribution(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestCommitsPerReleaseFigure10(t *testing.T) {
	schedule := []int{4200, 3900, 3300, 2800, 2400, 2100, 2000, 1950}
	h, releases, err := vcs.GenerateONOS(schedule, time.Time{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CommitsPerRelease(h, releases)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(schedule) {
		t.Fatalf("got %d windows", len(got))
	}
	for i, want := range schedule {
		if got[i] != want {
			t.Errorf("release %d: %d commits, want %d", i, got[i], want)
		}
	}
	// The trend declines (the paper's observation).
	if !(got[len(got)-1] < got[0]) {
		t.Error("commit counts should decline")
	}
	if _, err := CommitsPerRelease(h, nil); err == nil {
		t.Error("want error for no releases")
	}
	if _, err := CommitsPerRelease(&vcs.History{}, releases); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestDependencyBurnTable4(t *testing.T) {
	h, err := vcs.GenerateFaucet(vcs.GenerateConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	table, err := BurnDownTable(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != len(vcs.FaucetDependencies()) {
		t.Fatalf("rows = %d", len(table))
	}
	// Ordered descending: ryu (28) first, then chewie (19).
	if table[0].Dependency != "ryu" || table[0].Changes != 28 {
		t.Errorf("top row = %+v, want ryu/28", table[0])
	}
	if table[1].Dependency != "chewie" || table[1].Changes != 19 {
		t.Errorf("second row = %+v, want chewie/19", table[1])
	}
	want := map[string]int{}
	for _, d := range vcs.FaucetDependencies() {
		want[d.Name] = d.Changes
	}
	for _, row := range table {
		if want[row.Dependency] != row.Changes {
			t.Errorf("%s = %d, want %d", row.Dependency, row.Changes, want[row.Dependency])
		}
	}
	if _, err := DependencyBurn(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}
