package recovery

import (
	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// FlowGraphMonitor models SPHINX's core mechanism: it observes every
// OpenFlow packet-in and incrementally builds a "flow graph" — here,
// the learned attachment point (switch, port) of every source MAC.
// Diagnosis tools built on such a model assume they see *all* input
// messages; §VII-C's composition caveat is that layering an input
// filter (Bouncer-style) underneath starves the model.
type FlowGraphMonitor struct {
	// learned[dpid][mac] = in-port where mac was observed.
	learned map[uint64]map[uint64]uint32
	// Observed counts the packet-ins the monitor actually saw.
	Observed int
}

// NewFlowGraphMonitor returns an empty monitor.
func NewFlowGraphMonitor() *FlowGraphMonitor {
	return &FlowGraphMonitor{learned: make(map[uint64]map[uint64]uint32)}
}

// Middleware returns the observation hook. It never modifies events —
// a pure monitor.
func (m *FlowGraphMonitor) Middleware() sdn.Middleware {
	return func(next sdn.HandlerFunc) sdn.HandlerFunc {
		return func(c *sdn.Controller, ev sdn.Event) (int, error) {
			if ev.Kind == sdn.EventNetwork {
				if pi, ok := ev.Msg.(*openflow.PacketIn); ok {
					if pkt, err := sdn.DecodePacket(pi.Data); err == nil {
						if m.learned[pi.DatapathID] == nil {
							m.learned[pi.DatapathID] = make(map[uint64]uint32)
						}
						m.learned[pi.DatapathID][pkt.EthSrc] = pi.InPort
						m.Observed++
					}
				}
			}
			return next(c, ev)
		}
	}
}

// Knows reports whether the model has an attachment entry for mac at
// the given switch, and whether it matches the expected port.
func (m *FlowGraphMonitor) Knows(dpid, mac uint64, port uint32) bool {
	got, ok := m.learned[dpid][mac]
	return ok && got == port
}

// Completeness returns the fraction of the network's hosts whose true
// attachment point the model knows — the accuracy metric a SPHINX-like
// verifier's conclusions rest on.
func (m *FlowGraphMonitor) Completeness(net *sdn.Network) float64 {
	hosts := net.Hosts()
	if len(hosts) == 0 {
		return 0
	}
	known := 0
	for _, mac := range hosts {
		at, err := net.HostAttachment(mac)
		if err != nil {
			continue
		}
		if m.Knows(at.DPID, mac, at.Port) {
			known++
		}
	}
	return float64(known) / float64(len(hosts))
}

// InputFilter models Bouncer-style proactive input filtering: events
// matching the predicate are dropped before any inner layer — the
// controller *and* any monitor composed inside — can see them.
func InputFilter(drop func(sdn.Event) bool) sdn.Middleware {
	return func(next sdn.HandlerFunc) sdn.HandlerFunc {
		return func(c *sdn.Controller, ev sdn.Event) (int, error) {
			if drop(ev) {
				return 1, nil
			}
			return next(c, ev)
		}
	}
}

// CompositionResult is the outcome of the §VII-C layering experiment.
type CompositionResult struct {
	// UnfilteredCompleteness is the monitor's model completeness when
	// it sees every packet-in.
	UnfilteredCompleteness float64
	// FilteredCompleteness is the completeness when a Bouncer-style
	// filter drops a class of inputs before the monitor.
	FilteredCompleteness float64
	// DroppedClassSeen counts monitor observations of the filtered
	// class in the filtered run (must be zero).
	DroppedClassSeen int
}

// RunCompositionExperiment reproduces §VII-C's caveat concretely: a
// topology where hosts first announce themselves with a mirror-VLAN
// broadcast (the only packet that reveals some hosts' location), a
// SPHINX-like monitor, and a Bouncer-like filter that deems mirror-
// VLAN broadcasts suspicious and drops them. Layered naively, the
// filter starves the monitor's flow graph.
func RunCompositionExperiment() (CompositionResult, error) {
	var out CompositionResult

	run := func(filtered bool) (*FlowGraphMonitor, error) {
		net, err := sdn.LinearTopology(3)
		if err != nil {
			return nil, err
		}
		monitor := NewFlowGraphMonitor()
		mws := []sdn.Middleware{monitor.Middleware()}
		if filtered {
			drop := func(ev sdn.Event) bool {
				if ev.Kind != sdn.EventNetwork {
					return false
				}
				pi, ok := ev.Msg.(*openflow.PacketIn)
				if !ok {
					return false
				}
				pkt, err := sdn.DecodePacket(pi.Data)
				return err == nil && pkt.IsBroadcast() && pkt.VlanID == 13
			}
			// The filter sits OUTSIDE the monitor: Bouncer discards
			// input before SPHINX models it.
			mws = append([]sdn.Middleware{InputFilter(drop)}, mws...)
		}
		app := sdn.NewL2Switch(nil)
		c := sdn.NewController(net, sdn.NewEnvironment(), app, mws...)
		d := &sdn.Driver{C: c}
		// Each host announces itself once on the mirror VLAN — for a
		// silent host this is the only packet revealing its location.
		for _, mac := range net.Hosts() {
			if _, err := d.SendPacket(mac, sdn.Packet{
				EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: 13,
			}); err != nil {
				return nil, err
			}
		}
		return monitor, nil
	}

	unfiltered, err := run(false)
	if err != nil {
		return out, err
	}
	filteredMon, err := run(true)
	if err != nil {
		return out, err
	}
	out.UnfilteredCompleteness = completenessOf(unfiltered)
	out.FilteredCompleteness = completenessOf(filteredMon)
	out.DroppedClassSeen = filteredMon.Observed
	return out, nil
}

// completenessOf evaluates a monitor against the canonical 3-switch
// line topology it was driven on.
func completenessOf(m *FlowGraphMonitor) float64 {
	net, err := sdn.LinearTopology(3)
	if err != nil {
		return 0
	}
	return m.Completeness(net)
}
