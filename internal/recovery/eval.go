package recovery

import (
	"fmt"
	"sort"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/taxonomy"
)

// Outcome is the result of one (fault, strategy) trial.
type Outcome struct {
	FaultName string
	Strategy  string
	// Injected reports whether the fault manifested in the first run
	// (non-deterministic faults sometimes do not).
	Injected bool
	// ObservedSymptom is the detected pre-recovery symptom.
	ObservedSymptom taxonomy.Symptom
	// Recovered reports whether the post-recovery workload was healthy.
	Recovered bool
}

// CellResult aggregates the trials of one (fault, strategy) pair.
type CellResult struct {
	Fault    faultlab.Spec
	Strategy string
	// Trials is the number of runs where the fault manifested.
	Trials int
	// Recoveries is how many of those the strategy fixed.
	Recoveries int
}

// Rate returns the recovery success fraction (0 when never injected).
func (c CellResult) Rate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Recoveries) / float64(c.Trials)
}

// Recovers applies the evaluation threshold: a framework "covers" a
// fault class when it recovers at least 60 % of manifested trials
// (non-deterministic races re-manifest occasionally by design, so a
// perfect rate is not attainable even for a sound strategy).
func (c CellResult) Recovers() bool { return c.Trials > 0 && c.Rate() >= 0.6 }

// Matrix is the full Table VII reproduction.
type Matrix struct {
	Cells []CellResult
}

// EvalConfig controls the campaign.
type EvalConfig struct {
	// Trials per (fault, strategy) pair (default 6).
	Trials int
	// Seed drives fault randomness.
	Seed int64
}

// Evaluate runs the recovery-coverage campaign: for every fault in the
// standard suite and every strategy, inject, detect, recover, and
// re-test.
func Evaluate(strategies []Strategy, cfg EvalConfig) (*Matrix, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 6
	}
	suiteTemplate := faultlab.StandardSuite(cfg.Seed)
	m := &Matrix{}
	for si, strat := range strategies {
		for fi := range suiteTemplate {
			cell := CellResult{Strategy: strat.Name()}
			for trial := 0; trial < cfg.Trials; trial++ {
				// Fresh fault per trial so incarnation RNG state never
				// leaks across trials.
				fault := faultlab.StandardSuite(cfg.Seed + int64(1+trial*31+si*7))[fi]
				cell.Fault = fault.Spec
				out, err := runTrial(fault, strat)
				if err != nil {
					return nil, fmt.Errorf("recovery: %s vs %s trial %d: %w",
						strat.Name(), fault.Spec.Name, trial, err)
				}
				if !out.Injected {
					continue
				}
				cell.Trials++
				if out.Recovered {
					cell.Recoveries++
				}
			}
			m.Cells = append(m.Cells, cell)
		}
	}
	return m, nil
}

// runTrial runs one inject → detect → recover → re-test cycle.
func runTrial(fault *faultlab.Fault, strat Strategy) (Outcome, error) {
	out := Outcome{FaultName: fault.Spec.Name, Strategy: strat.Name()}
	lab, err := faultlab.NewLab(fault)
	if err != nil {
		return out, err
	}
	obs, err := lab.RunWorkload()
	if err != nil {
		return out, err
	}
	if obs.Healthy() {
		// Fault did not manifest (possible for non-deterministic ones).
		return out, nil
	}
	out.Injected = true
	out.ObservedSymptom = obs.Symptom

	if err := strat.Recover(lab); err != nil {
		return out, err
	}
	// Judge the recovery on fresh health evidence: replay costs and
	// errors accumulated during recovery itself are not symptoms.
	lab.ClearHealth()
	post, err := lab.RunWorkload()
	if err != nil {
		return out, err
	}
	out.Recovered = post.Healthy()
	return out, nil
}

// Cell returns the result for a (faultName, strategyName) pair.
func (m *Matrix) Cell(faultName, strategyName string) (CellResult, bool) {
	for _, c := range m.Cells {
		if c.Fault.Name == faultName && c.Strategy == strategyName {
			return c, true
		}
	}
	return CellResult{}, false
}

// CoverageByTrigger aggregates, per strategy, how many trigger classes
// it covers (a trigger is covered when the strategy recovers at least
// one fault with that trigger).
func (m *Matrix) CoverageByTrigger() map[string]map[taxonomy.Trigger]bool {
	out := map[string]map[taxonomy.Trigger]bool{}
	for _, c := range m.Cells {
		if out[c.Strategy] == nil {
			out[c.Strategy] = map[taxonomy.Trigger]bool{}
		}
		if c.Recovers() {
			out[c.Strategy][c.Fault.Trigger] = true
		}
	}
	return out
}

// DeterminismCoverage returns, per strategy, the fraction of
// deterministic and non-deterministic fault classes it covers.
func (m *Matrix) DeterminismCoverage() map[string]struct{ Det, NonDet float64 } {
	type agg struct{ detCov, detTot, ndCov, ndTot int }
	byStrat := map[string]*agg{}
	for _, c := range m.Cells {
		a := byStrat[c.Strategy]
		if a == nil {
			a = &agg{}
			byStrat[c.Strategy] = a
		}
		if c.Fault.Deterministic {
			a.detTot++
			if c.Recovers() {
				a.detCov++
			}
		} else {
			a.ndTot++
			if c.Recovers() {
				a.ndCov++
			}
		}
	}
	out := map[string]struct{ Det, NonDet float64 }{}
	for s, a := range byStrat {
		var det, nd float64
		if a.detTot > 0 {
			det = float64(a.detCov) / float64(a.detTot)
		}
		if a.ndTot > 0 {
			nd = float64(a.ndCov) / float64(a.ndTot)
		}
		out[s] = struct{ Det, NonDet float64 }{det, nd}
	}
	return out
}

// Strategies returns the distinct strategy names in evaluation order.
func (m *Matrix) Strategies() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range m.Cells {
		if !seen[c.Strategy] {
			seen[c.Strategy] = true
			out = append(out, c.Strategy)
		}
	}
	return out
}

// Faults returns the distinct fault names, sorted.
func (m *Matrix) Faults() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range m.Cells {
		if !seen[c.Fault.Name] {
			seen[c.Fault.Name] = true
			out = append(out, c.Fault.Name)
		}
	}
	sort.Strings(out)
	return out
}
