package recovery

import (
	"testing"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

// evalMatrix runs the standard campaign once per test binary.
var cachedMatrix *Matrix

func matrix(t *testing.T) *Matrix {
	t.Helper()
	if cachedMatrix == nil {
		m, err := Evaluate(StandardStrategies(), EvalConfig{Trials: 6, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cachedMatrix = m
	}
	return cachedMatrix
}

func TestMatrixShapeTableVII(t *testing.T) {
	m := matrix(t)
	if len(m.Strategies()) != 6 {
		t.Fatalf("strategies = %d", len(m.Strategies()))
	}
	if len(m.Faults()) != 8 {
		t.Fatalf("faults = %d", len(m.Faults()))
	}
	// Shape assertions from the paper's Table VII discussion:
	mustRecover := []struct{ fault, strategy string }{
		{"FAUCET-1623-missing-logic", "event-transform"},
		{"CORD-2470-misconfig-crash", "config-rollback"},
		{"FAUCET-355-ecosystem-mismatch", "environment-fix"},
	}
	for _, mr := range mustRecover {
		c, ok := m.Cell(mr.fault, mr.strategy)
		if !ok {
			t.Fatalf("missing cell %s/%s", mr.fault, mr.strategy)
		}
		if !c.Recovers() {
			t.Errorf("%s should recover %s (rate %.2f)", mr.strategy, mr.fault, c.Rate())
		}
	}
	mustFail := []struct{ fault, strategy string }{
		// Deterministic bugs defeat restart/replay/failover (§III).
		{"CORD-2470-misconfig-crash", "crash-restart"},
		{"CORD-2470-misconfig-crash", "record-replay"},
		{"CORD-2470-misconfig-crash", "replicated-failover"},
		{"FAUCET-1623-missing-logic", "crash-restart"},
		{"FAUCET-355-ecosystem-mismatch", "record-replay"},
		// Tools scoped to network events miss config/external triggers.
		{"CORD-2470-misconfig-crash", "event-transform"},
		{"FAUCET-355-ecosystem-mismatch", "event-transform"},
		{"VOL-549-reboot-hang", "event-transform"},
	}
	for _, mf := range mustFail {
		c, ok := m.Cell(mf.fault, mf.strategy)
		if !ok {
			t.Fatalf("missing cell %s/%s", mf.fault, mf.strategy)
		}
		if c.Recovers() {
			t.Errorf("%s should NOT recover %s (rate %.2f)", mf.strategy, mf.fault, c.Rate())
		}
	}
}

func TestNonDeterministicRecoveredByMost(t *testing.T) {
	// "most existing systems can easily recover from non-deterministic
	// issues" (§VII-C).
	m := matrix(t)
	for _, fault := range []string{"CORD-1734-concurrency-slowdown", "race-spurious-errors"} {
		covered := 0
		for _, s := range m.Strategies() {
			if c, ok := m.Cell(fault, s); ok && c.Recovers() {
				covered++
			}
		}
		if covered < 4 {
			t.Errorf("%s covered by only %d/6 strategies, expected most", fault, covered)
		}
	}
}

func TestDeterministicLargelyUnsolved(t *testing.T) {
	// "there is very little for deterministic issues" (§VII-C): each
	// strategy covers at most a narrow slice of the deterministic
	// classes; no strategy covers a majority of them.
	m := matrix(t)
	cov := m.DeterminismCoverage()
	for s, c := range cov {
		if c.Det > 0.5 {
			t.Errorf("%s covers %.0f%% of deterministic classes; Table VII expects sparse coverage", s, c.Det*100)
		}
		if c.NonDet < c.Det {
			t.Errorf("%s: non-deterministic coverage (%.2f) should not lag deterministic (%.2f)",
				s, c.NonDet, c.Det)
		}
	}
}

func TestMemoryAndLoadUnsolved(t *testing.T) {
	// The paper calls for new research on load/memory failure
	// prediction: no surveyed technique recovers them.
	m := matrix(t)
	for _, fault := range []string{"ONOS-4859-memory-leak", "ONOS-5992-load-collapse"} {
		for _, s := range m.Strategies() {
			if c, ok := m.Cell(fault, s); ok && c.Recovers() {
				t.Errorf("%s unexpectedly recovers %s", s, fault)
			}
		}
	}
}

func TestCoverageByTrigger(t *testing.T) {
	m := matrix(t)
	cov := m.CoverageByTrigger()
	// event-transform covers network events, and nothing else.
	et := cov["event-transform"]
	if !et[taxonomy.TriggerNetworkEvent] {
		t.Error("event-transform should cover network-event triggers")
	}
	if et[taxonomy.TriggerConfiguration] || et[taxonomy.TriggerExternalCall] {
		t.Error("event-transform must not cover config/external triggers")
	}
	// config-rollback covers configuration.
	if !cov["config-rollback"][taxonomy.TriggerConfiguration] {
		t.Error("config-rollback should cover configuration triggers")
	}
	// environment-fix covers external calls.
	if !cov["environment-fix"][taxonomy.TriggerExternalCall] {
		t.Error("environment-fix should cover external-call triggers")
	}
}

func TestExtendedTransformFillsGaps(t *testing.T) {
	// The paper's recommendation: extend input-transforming tools
	// beyond network events. The extended variant covers the reboot
	// hang and the config crash the stock tool misses.
	ext := &EventTransform{Scope: []sdn.EventKind{
		sdn.EventNetwork, sdn.EventConfig, sdn.EventExternalCall, sdn.EventHardwareReboot,
	}}
	m, err := Evaluate([]Strategy{ext}, EvalConfig{Trials: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, fault := range []string{"VOL-549-reboot-hang", "CORD-2470-misconfig-crash"} {
		c, ok := m.Cell(fault, ext.Name())
		if !ok || !c.Recovers() {
			t.Errorf("extended transform should recover %s (rate %.2f)", fault, c.Rate())
		}
	}
}

func TestRecoveryNeverClaimsSuccessWhileSymptomPersists(t *testing.T) {
	// Invariant: a trial marked recovered must correspond to a healthy
	// post-run — verified here by re-deriving one known-bad cell.
	fault := faultlab.NewFault(faultlab.Spec{
		Name:          "always-crash",
		Cause:         taxonomy.CauseMissingLogic,
		Trigger:       taxonomy.TriggerConfiguration,
		Symptom:       taxonomy.SymptomFailStop,
		Deterministic: true,
	}, 1)
	lab, err := faultlab.NewLab(fault)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.RunWorkload(); err != nil {
		t.Fatal(err)
	}
	if err := (CrashRestart{}).Recover(lab); err != nil {
		t.Fatal(err)
	}
	lab.ClearHealth()
	post, err := lab.RunWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if post.Healthy() {
		t.Error("deterministic config crash must persist through a plain restart")
	}
}

func TestEvaluateDeterministicForSeed(t *testing.T) {
	a, err := Evaluate([]Strategy{CrashRestart{}}, EvalConfig{Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate([]Strategy{CrashRestart{}}, EvalConfig{Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatal("cell counts differ")
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs between same-seed runs", i)
		}
	}
}

func TestPredictiveRejuvenationClosesMemoryLoadGap(t *testing.T) {
	// The paper's research direction: metrics-based failure prediction
	// should handle the load/memory classes no surveyed tool recovers.
	m, err := Evaluate([]Strategy{&PredictiveRejuvenation{}}, EvalConfig{Trials: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, fault := range []string{"ONOS-4859-memory-leak", "ONOS-5992-load-collapse"} {
		c, ok := m.Cell(fault, "predictive-rejuvenation")
		if !ok || !c.Recovers() {
			t.Errorf("predictive rejuvenation should recover %s (rate %.2f)", fault, c.Rate())
		}
	}
	// It must not claim the deterministic signature bugs.
	for _, fault := range []string{"CORD-2470-misconfig-crash", "FAUCET-1623-missing-logic"} {
		c, _ := m.Cell(fault, "predictive-rejuvenation")
		if c.Recovers() {
			t.Errorf("predictive rejuvenation should NOT recover %s", fault)
		}
	}
}

func TestCompositionCaveat(t *testing.T) {
	// §VII-C: a Bouncer-style input filter layered outside a SPHINX-
	// style flow-graph monitor starves the model.
	res, err := RunCompositionExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if res.UnfilteredCompleteness != 1 {
		t.Errorf("unfiltered completeness = %.2f, want 1.0", res.UnfilteredCompleteness)
	}
	if !(res.FilteredCompleteness < res.UnfilteredCompleteness) {
		t.Errorf("filtered completeness %.2f should drop below unfiltered %.2f",
			res.FilteredCompleteness, res.UnfilteredCompleteness)
	}
	if res.DroppedClassSeen != 0 {
		t.Errorf("monitor saw %d filtered-class packets; the filter sits outside it", res.DroppedClassSeen)
	}
}

func TestFlowGraphMonitorKnows(t *testing.T) {
	m := NewFlowGraphMonitor()
	if m.Knows(1, 0x11, 1) {
		t.Error("empty monitor should know nothing")
	}
	if c := m.Completeness(mustTopo(t)); c != 0 {
		t.Errorf("completeness of empty monitor = %v", c)
	}
	if c := m.Completeness(sdn.NewNetwork()); c != 0 {
		t.Errorf("completeness on empty network = %v", c)
	}
}

func mustTopo(t *testing.T) *sdn.Network {
	t.Helper()
	net, err := sdn.LinearTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}
