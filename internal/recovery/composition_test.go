package recovery

import (
	"errors"
	"strings"
	"testing"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
)

// mirrorPacketIn builds the mirror-VLAN broadcast packet-in whose
// class the Bouncer-style filter drops.
func mirrorPacketIn(src uint64) sdn.Event {
	return sdn.Event{Kind: sdn.EventNetwork, Msg: &openflow.PacketIn{
		DatapathID: 1, InPort: 1,
		Data: sdn.EncodePacket(sdn.Packet{
			EthSrc: src, EthDst: sdn.BroadcastMAC, EthType: 0x0806, VlanID: 13,
		}),
	}}
}

func dropMirror(ev sdn.Event) bool {
	if ev.Kind != sdn.EventNetwork {
		return false
	}
	pi, ok := ev.Msg.(*openflow.PacketIn)
	if !ok {
		return false
	}
	pkt, err := sdn.DecodePacket(pi.Data)
	return err == nil && pkt.IsBroadcast() && pkt.VlanID == 13
}

// TestMiddlewareOrderDecidesWhatTheMonitorSees pins §VII-C's layering
// caveat at the unit level: with the input filter OUTSIDE the monitor
// (Bouncer before SPHINX) the monitor is starved of the dropped class;
// swapping the order lets the monitor model the input even though the
// controller never handles it.
func TestMiddlewareOrderDecidesWhatTheMonitorSees(t *testing.T) {
	build := func(mws ...sdn.Middleware) (*sdn.Controller, *sdn.L2Switch) {
		net, err := sdn.LinearTopology(3)
		if err != nil {
			t.Fatal(err)
		}
		app := sdn.NewL2Switch(nil)
		return sdn.NewController(net, sdn.NewEnvironment(), app, mws...), app
	}

	// Filter outside, monitor inside: the monitor sees nothing.
	starved := NewFlowGraphMonitor()
	c1, app1 := build(InputFilter(dropMirror), starved.Middleware())
	if err := c1.Submit(mirrorPacketIn(0xaa)); err != nil {
		t.Fatal(err)
	}
	if starved.Observed != 0 {
		t.Fatalf("filter-outside: monitor observed %d events, want 0", starved.Observed)
	}
	if app1.KnownMACs(1) != 0 {
		t.Fatalf("filter-outside: controller learned %d MACs through the filter", app1.KnownMACs(1))
	}

	// Monitor outside, filter inside: the model stays complete while
	// the controller is still protected.
	fed := NewFlowGraphMonitor()
	c2, app2 := build(fed.Middleware(), InputFilter(dropMirror))
	if err := c2.Submit(mirrorPacketIn(0xaa)); err != nil {
		t.Fatal(err)
	}
	if fed.Observed != 1 || !fed.Knows(1, 0xaa, 1) {
		t.Fatalf("monitor-outside: monitor starved (observed=%d)", fed.Observed)
	}
	if app2.KnownMACs(1) != 0 {
		t.Fatalf("monitor-outside: filter leaked the event to the controller")
	}

	// Non-dropped traffic flows through both stacks identically.
	clean := sdn.Event{Kind: sdn.EventNetwork, Msg: &openflow.PacketIn{
		DatapathID: 1, InPort: 1,
		Data: sdn.EncodePacket(sdn.Packet{EthSrc: 0xbb, EthDst: 0xcc, EthType: 0x0800}),
	}}
	if err := c1.Submit(clean); err != nil {
		t.Fatal(err)
	}
	if starved.Observed != 1 || app1.KnownMACs(1) != 1 {
		t.Fatalf("filter-outside dropped clean traffic: observed=%d known=%d",
			starved.Observed, app1.KnownMACs(1))
	}
}

// failingStrategy's Recover always errors — a broken recovery harness,
// not a fault that resists recovery.
type failingStrategy struct{}

func (failingStrategy) Name() string { return "broken-harness" }
func (failingStrategy) Recover(l *faultlab.Lab) error {
	return errors.New("recovery machinery exploded")
}

// TestEvaluateSurfacesRecoverErrors pins the harness/fault distinction:
// a Recover error must abort Evaluate with context, never be scored as
// "fault not recovered".
func TestEvaluateSurfacesRecoverErrors(t *testing.T) {
	m, err := Evaluate([]Strategy{failingStrategy{}}, EvalConfig{Trials: 1, Seed: 1})
	if err == nil {
		t.Fatal("Evaluate swallowed a Recover error")
	}
	if m != nil {
		t.Fatal("Evaluate returned a partial matrix alongside its error")
	}
	if !strings.Contains(err.Error(), "broken-harness") {
		t.Fatalf("error lacks strategy context: %v", err)
	}
}

// TestEvaluateStrategiesIsolated pins trial isolation: every trial
// builds a fresh lab and fresh fault incarnations, so a strategy's
// cells are identical whether it is evaluated alone or followed by
// other strategies — no state leaks across the campaign.
func TestEvaluateStrategiesIsolated(t *testing.T) {
	cfg := EvalConfig{Trials: 2, Seed: 5}
	alone, err := Evaluate([]Strategy{CrashRestart{}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Evaluate([]Strategy{CrashRestart{}, RecordReplay{}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range alone.Cells {
		got, ok := combined.Cell(cell.Fault.Name, cell.Strategy)
		if !ok {
			t.Fatalf("cell (%s, %s) missing in combined run", cell.Fault.Name, cell.Strategy)
		}
		if got.Trials != cell.Trials || got.Recoveries != cell.Recoveries {
			t.Errorf("cell (%s, %s) changed when another strategy joined: %d/%d vs %d/%d",
				cell.Fault.Name, cell.Strategy,
				cell.Recoveries, cell.Trials, got.Recoveries, got.Trials)
		}
	}
}
