// Package recovery implements simplified models of the SDN fault-
// tolerance frameworks the paper surveys in Table VII, and an
// evaluator that measures — by actually injecting each taxonomy fault
// class and attempting recovery — which root causes, triggers and
// determinism classes each framework covers. The paper's qualitative
// conclusions become measurable here: most frameworks recover
// network-event-triggered and non-deterministic bugs; deterministic
// configuration/external-call bugs remain largely unsolved.
package recovery

import (
	"errors"
	"fmt"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/openflow"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/taxonomy"
)

// Strategy is one recovery framework model.
type Strategy interface {
	// Name identifies the framework family.
	Name() string
	// Recover attempts to bring the lab's controller back to health
	// after a symptom was observed. It may restart, replay, filter
	// inputs, fail over, or repair the environment. It returns an
	// error only for harness-level problems — an unsuccessful recovery
	// is measured by the post-recovery workload, not signalled here.
	Recover(l *faultlab.Lab) error
}

// CrashRestart models watchdog-style restart recovery (the baseline
// every production deployment has): restart the controller process,
// dropping all volatile state and the event log.
type CrashRestart struct{}

var _ Strategy = CrashRestart{}

// Name implements Strategy.
func (CrashRestart) Name() string { return "crash-restart" }

// Recover implements Strategy.
func (CrashRestart) Recover(l *faultlab.Lab) error {
	l.Fault.NewIncarnation()
	l.C.Restart(false)
	return nil
}

// RecordReplay models record-and-replay recovery (the rollback-
// recovery the paper argues "will have limited applicability", §III):
// restart, then replay the recorded event log to rebuild state.
type RecordReplay struct{}

var _ Strategy = RecordReplay{}

// Name implements Strategy.
func (RecordReplay) Name() string { return "record-replay" }

// Recover implements Strategy.
func (r RecordReplay) Recover(l *faultlab.Lab) error {
	log, err := l.Rebuild()
	if err != nil {
		return err
	}
	for _, ev := range log {
		if l.C.State == sdn.StateCrashed {
			return nil // replay reproduced the crash: recovery failed
		}
		ev.Seq = 0
		if err := l.C.Submit(ev); err != nil && !errors.Is(err, sdn.ErrCrash) {
			return fmt.Errorf("recovery: replay: %w", err)
		}
	}
	return nil
}

// EventTransform models STS/delta-debugging-style recovery: find the
// minimal input change that avoids the failure by replaying the log
// with candidate events removed, then keep filtering that input class.
// Its scope is network events only — exactly the focus the paper
// criticizes in existing tools.
type EventTransform struct {
	// Scope limits which event kinds the tool may drop; empty means
	// network events only (the surveyed tools' scope).
	Scope []sdn.EventKind
}

var _ Strategy = (*EventTransform)(nil)

// Name implements Strategy.
func (e *EventTransform) Name() string {
	if len(e.Scope) > 0 {
		return "event-transform-extended"
	}
	return "event-transform"
}

// transformCandidate is one input manipulation a delta debugger could
// converge on: a rewrite or drop of a recognizable input class.
type transformCandidate struct {
	name  string
	kind  sdn.EventKind
	apply func(sdn.Event) (sdn.Event, bool)
}

// transformCandidates returns the candidate set, most surgical first.
func transformCandidates() []transformCandidate {
	netPoison := faultlab.PoisonSignature(taxonomy.TriggerNetworkEvent)
	confPoison := faultlab.PoisonSignature(taxonomy.TriggerConfiguration)
	extPoison := faultlab.PoisonSignature(taxonomy.TriggerExternalCall)
	rebootPoison := faultlab.PoisonSignature(taxonomy.TriggerHardwareReboot)
	dropIf := func(pred func(sdn.Event) bool) func(sdn.Event) (sdn.Event, bool) {
		return func(ev sdn.Event) (sdn.Event, bool) {
			if pred(ev) {
				return ev, false
			}
			return ev, true
		}
	}
	return []transformCandidate{
		{
			// Rewrite the poison packet so a different code path
			// handles it ("alter properties of the network event such
			// that different code paths and cases are explored", §V-A)
			// while the traffic itself still flows.
			name: "rewrite-poison-vlan", kind: sdn.EventNetwork,
			apply: func(ev sdn.Event) (sdn.Event, bool) {
				if !netPoison(ev) {
					return ev, true
				}
				pi, ok := ev.Msg.(*openflow.PacketIn)
				if !ok {
					return ev, true
				}
				pkt, err := sdn.DecodePacket(pi.Data)
				if err != nil {
					return ev, true
				}
				pkt.VlanID = 0
				rewritten := *pi
				rewritten.Data = sdn.EncodePacket(pkt)
				ev.Msg = &rewritten
				return ev, true
			},
		},
		{name: "drop-poison-packets", kind: sdn.EventNetwork, apply: dropIf(netPoison)},
		{name: "drop-poison-config", kind: sdn.EventConfig, apply: dropIf(confPoison)},
		{name: "drop-external-calls", kind: sdn.EventExternalCall, apply: dropIf(extPoison)},
		{name: "drop-reboots", kind: sdn.EventHardwareReboot, apply: dropIf(rebootPoison)},
	}
}

// Recover implements Strategy: it searches for an input transform that
// makes the recorded log replay cleanly, then keeps applying it.
func (e *EventTransform) Recover(l *faultlab.Lab) error {
	log, err := l.Rebuild()
	if err != nil {
		return err
	}
	for _, cand := range transformCandidates() {
		if !e.kindInScope(cand.kind) {
			continue
		}
		if _, err := l.Rebuild(); err != nil {
			return err
		}
		healthy := true
		for _, ev := range log {
			rewritten, keep := cand.apply(ev)
			if !keep {
				continue
			}
			rewritten.Seq = 0
			if l.C.State == sdn.StateCrashed {
				healthy = false
				break
			}
			if err := l.C.Submit(rewritten); err != nil && !errors.Is(err, sdn.ErrCrash) {
				return fmt.Errorf("recovery: transform replay: %w", err)
			}
		}
		if l.C.State == sdn.StateCrashed || l.C.Stats.MaxEventCost >= 1000 {
			healthy = false
		}
		if healthy {
			l.Filter = cand.apply
			return nil
		}
	}
	// No transform found: leave the last rebuilt controller as-is.
	return nil
}

func (e *EventTransform) kindInScope(k sdn.EventKind) bool {
	if len(e.Scope) == 0 {
		return k == sdn.EventNetwork
	}
	for _, s := range e.Scope {
		if s == k {
			return true
		}
	}
	return false
}

// Failover models Ravana/SCL-style replicated controllers with
// exactly-once event replay: promote a replica and replay the event
// log to it. The replica runs the same code — and the same bugs.
type Failover struct{}

var _ Strategy = Failover{}

// Name implements Strategy.
func (Failover) Name() string { return "replicated-failover" }

// Recover implements Strategy.
func (Failover) Recover(l *faultlab.Lab) error {
	log, err := l.Rebuild() // the replica: fresh incarnation, same code
	if err != nil {
		return err
	}
	for _, ev := range log {
		if l.C.State == sdn.StateCrashed {
			return nil // replica hit the same deterministic bug
		}
		ev.Seq = 0
		if err := l.C.Submit(ev); err != nil && !errors.Is(err, sdn.ErrCrash) {
			return fmt.Errorf("recovery: failover replay: %w", err)
		}
	}
	return nil
}

// EnvironmentFix models dependency/environment repair (the direction
// the paper says SDN tooling lacks; cf. Lock-in-Pop outside SDN):
// restore external services to the versions the controller expects,
// then restart.
type EnvironmentFix struct{}

var _ Strategy = EnvironmentFix{}

// Name implements Strategy.
func (EnvironmentFix) Name() string { return "environment-fix" }

// Recover implements Strategy.
func (EnvironmentFix) Recover(l *faultlab.Lab) error {
	for svc, v := range l.Fault.ExpectedEnv() {
		l.C.Env.Versions[svc] = v
	}
	l.Fault.NewIncarnation()
	l.C.Restart(false)
	return nil
}

// ConfigRollback models configuration-rollback recovery: restart and
// replay the log with configuration changes that failed validation (or
// preceded the failure) reverted, and keep rejecting that stanza.
type ConfigRollback struct{}

var _ Strategy = ConfigRollback{}

// Name implements Strategy.
func (ConfigRollback) Name() string { return "config-rollback" }

// Recover implements Strategy.
func (ConfigRollback) Recover(l *faultlab.Lab) error {
	log, err := l.Rebuild()
	if err != nil {
		return err
	}
	poison := faultlab.PoisonSignature(taxonomy.TriggerConfiguration)
	for _, ev := range log {
		if poison(ev) {
			continue // rolled back
		}
		if l.C.State == sdn.StateCrashed {
			return nil
		}
		ev.Seq = 0
		if err := l.C.Submit(ev); err != nil && !errors.Is(err, sdn.ErrCrash) {
			return fmt.Errorf("recovery: rollback replay: %w", err)
		}
	}
	l.Filter = func(ev sdn.Event) (sdn.Event, bool) {
		if poison(ev) {
			return ev, false
		}
		return ev, true
	}
	return nil
}

// StandardStrategies returns the framework models evaluated for
// Table VII.
func StandardStrategies() []Strategy {
	return []Strategy{
		CrashRestart{},
		RecordReplay{},
		&EventTransform{},
		Failover{},
		EnvironmentFix{},
		ConfigRollback{},
	}
}

// PredictiveRejuvenation models the metrics-based failure prediction
// the paper calls for ("we may predict these crashes by analyzing
// metrics", §IV) combined with classic software rejuvenation: a
// monitor watches the controller's processed-event volume — the
// resource-pressure proxy behind load and leak failures — and restarts
// the controller proactively before the predicted crash point.
type PredictiveRejuvenation struct {
	// Budget is the per-incarnation event volume after which the
	// predictor fires (default 7, below the standard suite's leak and
	// load thresholds).
	Budget int
}

var _ Strategy = (*PredictiveRejuvenation)(nil)

// Name implements Strategy.
func (*PredictiveRejuvenation) Name() string { return "predictive-rejuvenation" }

// Recover implements Strategy: restart once, then keep the predictor
// armed for all future traffic.
func (p *PredictiveRejuvenation) Recover(l *faultlab.Lab) error {
	budget := p.Budget
	if budget <= 0 {
		budget = 7
	}
	l.Fault.NewIncarnation()
	l.C.Restart(false)
	l.Guard = func(c *sdn.Controller) bool {
		return c.Stats.EventsProcessed >= budget
	}
	return nil
}
