// Package durable is a crash-consistent key/value store: every Put is
// appended to a length-prefixed, CRC-32C-checksummed write-ahead
// journal and fsynced before it is acknowledged, periodic snapshots
// are published by atomic temp-file-plus-rename (after which the old
// journal is retired), and Open recovers by replaying the journal over
// the newest valid snapshot, truncating a torn tail record instead of
// failing — and failing loudly (ErrCorrupt) on anything a torn write
// cannot explain.
//
// The paper's taxonomy singles out reboot-triggered and fail-stop bugs
// as the class existing SDN tooling recovers worst from (Table VII);
// this package is the storage half of that lesson applied to the
// repo's own mining pipeline: a miner killed at any point resumes from
// its state directory with every acknowledged record intact. All
// filesystem access goes through diskfault.FS, so the recovery path is
// tested against every fault the format claims to survive — torn
// writes, short writes, failed syncs, failed renames, and scheduled
// crash points (see the crash-point matrix tests and experiment E23).
//
// A state directory contains:
//
//	LOCK                  single-opener guard (O_EXCL; ErrLocked)
//	snap-<gen>.snap       newest published snapshot
//	wal-<gen>.log         journal of puts since that snapshot
//	*.tmp                 unpublished snapshot debris, swept at Open
package durable

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strconv"
	"sync"
	"time"

	"sdnbugs/internal/diskfault"
)

// Store errors.
var (
	// ErrLocked means another process holds the state directory: its
	// LOCK file exists. Openers must fail fast rather than interleave
	// journals; a crashed owner's lock is broken with Options.TakeOver.
	ErrLocked = errors.New("durable: state directory locked by another store")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("durable: store closed")
)

const (
	lockName = "LOCK"
	tmpExt   = ".tmp"
)

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x.snap", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }

// parseGen extracts the generation from a snap-/wal- file name.
func parseGen(name, prefix, ext string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(ext) || name[:len(prefix)] != prefix || name[len(name)-len(ext):] != ext {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(prefix):len(prefix)+16], 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Options configure Open.
type Options struct {
	// FS is the filesystem to use; nil means the real one.
	FS diskfault.FS
	// SnapshotEvery publishes a snapshot (and retires the journal)
	// after that many Puts; 0 snapshots only on explicit Snapshot calls.
	SnapshotEvery int
	// TakeOver breaks an existing LOCK before acquiring it — for
	// resuming after a crash that never released the lock. It must only
	// be set when the previous owner is known to be dead.
	TakeOver bool
	// GroupCommit batches concurrent Puts into one journal append and
	// one fsync (see groupcommit.go). Durability semantics are
	// unchanged; only the fsync amortization differs.
	GroupCommit bool
	// GroupWindow, when GroupCommit is set, lets each flush linger this
	// long so more writers can join the batch. 0 flushes as soon as the
	// committer drains the queue (batching from natural concurrency
	// only), which is the right default for low-latency serving.
	GroupWindow time.Duration
}

// RecoveryStats describes what Open had to do.
type RecoveryStats struct {
	// SnapshotGen is the generation recovered from (0 = no snapshot).
	SnapshotGen uint64
	// SnapshotRecords and ReplayedRecords count what the snapshot and
	// the journal each contributed.
	SnapshotRecords, ReplayedRecords int
	// TruncatedBytes is the torn journal tail recovery cut off.
	TruncatedBytes int
}

// Store is a crash-consistent key/value store. It is safe for
// concurrent use; all operations serialize on one mutex (the journal
// is a single append stream regardless).
type Store struct {
	dir  string
	fsys diskfault.FS
	opts Options

	mu            sync.Mutex
	vals          map[string][]byte
	order         []string // first-Put order; re-Puts keep their slot
	gen           uint64
	journal       diskfault.File
	journalSize   int64
	putsSinceSnap int
	singleAppends uint64 // acknowledged appends in single-put mode
	closed        bool
	broken        error // set when the journal can no longer be trusted
	recovery      RecoveryStats

	// gc is the group-commit state; nil in single-put mode.
	gc *groupCommitter
}

// Open opens (creating if needed) the store in dir, recovering state
// from the newest valid snapshot plus the journal. A torn journal tail
// is truncated and recorded in RecoveryStats; positively corrupt state
// returns ErrCorrupt; a held lock returns ErrLocked.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = diskfault.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create state dir: %w", err)
	}
	if err := acquireLock(fsys, dir, opts.TakeOver); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fsys: fsys, opts: opts, vals: make(map[string][]byte)}
	if err := s.recover(); err != nil {
		releaseLock(fsys, dir)
		return nil, err
	}
	if opts.GroupCommit {
		s.startGroupCommit()
	}
	return s, nil
}

func acquireLock(fsys diskfault.FS, dir string, takeOver bool) error {
	lock := path.Join(dir, lockName)
	if takeOver {
		if err := fsys.Remove(lock); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("durable: break stale lock: %w", err)
		}
	}
	f, err := fsys.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrExist) {
		return fmt.Errorf("%w (%s)", ErrLocked, lock)
	}
	if err != nil {
		return fmt.Errorf("durable: acquire lock: %w", err)
	}
	_, werr := f.Write([]byte("sdnbugs durable store lock\n"))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		releaseLock(fsys, dir)
		return fmt.Errorf("durable: write lock: %w", werr)
	}
	return nil
}

func releaseLock(fsys diskfault.FS, dir string) {
	_ = fsys.Remove(path.Join(dir, lockName))
}

// readFile slurps a file through the FS, reporting absence separately.
func readFile(fsys diskfault.FS, name string) (data []byte, exists bool, err error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer func() { _ = f.Close() }()
	data, err = io.ReadAll(f)
	return data, true, err
}

// recover loads the newest valid snapshot, replays its journal
// (truncating a torn tail), sweeps debris, and leaves the journal open
// for appends.
func (s *Store) recover() error {
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("durable: scan state dir: %w", err)
	}
	var snapGens []uint64
	for _, name := range names {
		if gen, ok := parseGen(name, "snap-", ".snap"); ok {
			snapGens = append(snapGens, gen)
		}
	}
	sort.Slice(snapGens, func(a, b int) bool { return snapGens[a] > snapGens[b] })

	if len(snapGens) > 0 {
		s.gen = snapGens[0]
		data, exists, err := readFile(s.fsys, path.Join(s.dir, snapName(s.gen)))
		if err != nil || !exists {
			return fmt.Errorf("durable: read snapshot gen %d: %w", s.gen, err)
		}
		gen, recs, err := decodeSnapshot(data)
		if err != nil {
			return fmt.Errorf("%w: snapshot gen %d fails verification", ErrCorrupt, s.gen)
		}
		if gen != s.gen {
			return fmt.Errorf("%w: snapshot gen %d claims gen %d", ErrCorrupt, s.gen, gen)
		}
		for _, r := range recs {
			s.applyLocked(r)
		}
		s.recovery.SnapshotGen = s.gen
		s.recovery.SnapshotRecords = len(recs)
	}

	if err := s.openJournal(); err != nil {
		return err
	}

	// Sweep: unpublished snapshot temp files, superseded snapshots, and
	// journals of other generations (all safe to lose — the loaded
	// snapshot+journal pair is the state). Best-effort by design.
	for _, name := range names {
		stale := false
		if path.Ext(name) == tmpExt {
			stale = true
		} else if gen, ok := parseGen(name, "snap-", ".snap"); ok && gen != s.gen {
			stale = gen < s.gen
		} else if gen, ok := parseGen(name, "wal-", ".log"); ok && gen != s.gen {
			stale = true
		}
		if stale {
			_ = s.fsys.Remove(path.Join(s.dir, name))
		}
	}
	return nil
}

// openJournal opens wal-<gen>.log, replays it over the snapshot state,
// truncates a torn tail, and positions the handle for appends.
func (s *Store) openJournal() error {
	name := path.Join(s.dir, walName(s.gen))
	f, err := s.fsys.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: read journal: %w", err)
	}
	if len(data) == 0 {
		if err := initJournal(f); err != nil {
			_ = f.Close()
			return err
		}
		s.journal, s.journalSize = f, magicLen
		return nil
	}
	recs, valid, err := ReplayJournal(data)
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("%w: journal gen %d has a foreign header", ErrCorrupt, s.gen)
	}
	for _, r := range recs {
		s.applyLocked(r)
	}
	s.recovery.ReplayedRecords = len(recs)
	if valid < len(data) {
		// Torn tail: cut it off and continue — the crash interrupted an
		// unacknowledged append, which by contract never existed.
		s.recovery.TruncatedBytes = len(data) - valid
		if err := f.Truncate(int64(valid)); err != nil {
			_ = f.Close()
			return fmt.Errorf("durable: truncate torn journal tail: %w", err)
		}
	}
	if valid == 0 {
		// The whole file was a torn header; rebuild it.
		if err := initJournal(f); err != nil {
			_ = f.Close()
			return err
		}
		valid = magicLen
	} else if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: seek journal end: %w", err)
	}
	s.journal, s.journalSize = f, int64(valid)
	return nil
}

// initJournal writes and syncs a fresh journal header on an empty file.
func initJournal(f diskfault.File) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("durable: init journal: %w", err)
	}
	if _, err := f.Write(journalMagic); err != nil {
		return fmt.Errorf("durable: init journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: sync journal header: %w", err)
	}
	return nil
}

// applyLocked installs a record in memory, preserving first-Put order.
func (s *Store) applyLocked(r Record) {
	if _, ok := s.vals[r.Key]; !ok {
		s.order = append(s.order, r.Key)
	}
	s.vals[r.Key] = r.Value
}

// Recovery returns what Open had to do to bring the store up.
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Gen returns the current snapshot generation.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

func (s *Store) usableLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.broken != nil {
		return fmt.Errorf("durable: store needs reopen after unrepaired fault: %w", s.broken)
	}
	return nil
}

// Put journals key=value and applies it in memory. The record is
// acknowledged only after the journal append has been fsynced; on a
// failed or short append the journal is rolled back to its previous
// length, so a transient disk fault costs one retryable error, never a
// corrupt tail. If even the rollback fails the store declares itself
// broken and refuses further writes until reopened (recovery will then
// truncate the bad tail).
func (s *Store) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("durable: empty key")
	}
	rec := Record{Key: key, Value: append([]byte(nil), value...)}
	if s.gc != nil {
		return s.putGrouped(rec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	buf := appendRecord(nil, rec)
	if _, err := s.journal.Write(buf); err != nil {
		return s.rollbackLocked(fmt.Errorf("durable: journal append: %w", err))
	}
	if err := s.journal.Sync(); err != nil {
		// The bytes may or may not be durable; roll back so the
		// acknowledged state never runs ahead of what fsync confirmed.
		return s.rollbackLocked(fmt.Errorf("durable: journal sync: %w", err))
	}
	s.journalSize += int64(len(buf))
	s.applyLocked(rec)
	s.putsSinceSnap++
	s.singleAppends++
	if s.opts.SnapshotEvery > 0 && s.putsSinceSnap >= s.opts.SnapshotEvery {
		// The put itself is committed; a snapshot failure surfaces to the
		// caller but leaves the store consistent (journal intact), and the
		// next Put retries the snapshot.
		if err := s.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rollbackLocked restores the journal to its pre-append length after a
// failed write, marking the store broken if the repair itself fails.
func (s *Store) rollbackLocked(cause error) error {
	if err := s.journal.Truncate(s.journalSize); err != nil {
		s.broken = cause
		return fmt.Errorf("durable: journal rollback failed (%v) after: %w", err, cause)
	}
	if _, err := s.journal.Seek(s.journalSize, io.SeekStart); err != nil {
		s.broken = cause
		return fmt.Errorf("durable: journal rollback seek failed (%v) after: %w", err, cause)
	}
	return cause
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vals[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Range calls fn for every key in first-Put order until fn returns
// false. Entries are copied out under the lock first, so fn sees a
// consistent iteration and may call back into the store.
func (s *Store) Range(fn func(key string, value []byte) bool) {
	s.mu.Lock()
	type kv struct {
		k string
		v []byte
	}
	all := make([]kv, len(s.order))
	for i, k := range s.order {
		all[i] = kv{k, append([]byte(nil), s.vals[k]...)}
	}
	s.mu.Unlock()
	for _, e := range all {
		if !fn(e.k, e.v) {
			return
		}
	}
}

// Snapshot publishes the current state as generation gen+1 and retires
// the journal. The sequence is crash-ordered: the snapshot is written
// to a temp file, fsynced, atomically renamed, and only then is the
// old journal removed and a fresh one started — a crash at any point
// leaves either the old pair or the new pair recoverable.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	newGen := s.gen + 1
	recs := make([]Record, len(s.order))
	for i, k := range s.order {
		recs[i] = Record{Key: k, Value: s.vals[k]}
	}
	data := encodeSnapshot(newGen, recs)

	tmp := path.Join(s.dir, snapName(newGen)+tmpExt)
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create snapshot temp: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("durable: write snapshot gen %d: %w", newGen, werr)
	}
	if err := s.fsys.Rename(tmp, path.Join(s.dir, snapName(newGen))); err != nil {
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("durable: publish snapshot gen %d: %w", newGen, err)
	}

	// The snapshot is the durable truth now; the old journal and
	// snapshot are redundant. Their removal is best-effort — leftovers
	// of other generations are swept at the next Open.
	oldJournal, oldGen := s.journal, s.gen
	_ = oldJournal.Close()
	_ = s.fsys.Remove(path.Join(s.dir, walName(oldGen)))
	if oldGen > 0 {
		_ = s.fsys.Remove(path.Join(s.dir, snapName(oldGen)))
	}
	s.gen = newGen
	s.putsSinceSnap = 0

	nf, err := s.fsys.OpenFile(path.Join(s.dir, walName(newGen)), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err == nil {
		err = initJournal(nf)
	}
	if err != nil {
		// No journal to append to: writes must stop until reopen, where
		// recovery restarts from the just-published snapshot.
		s.broken = err
		s.journal, s.journalSize = nil, 0
		return fmt.Errorf("durable: start journal gen %d: %w", newGen, err)
	}
	s.journal, s.journalSize = nf, magicLen
	return nil
}

// Close syncs and releases the journal and the lock. It is safe to
// call after a disk crash — every release is attempted regardless of
// earlier failures — and idempotent. In group-commit mode the queued
// batch is flushed (and its waiters released) before the journal
// closes.
func (s *Store) Close() error {
	s.stopGroupCommit()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.journal != nil {
		if s.broken == nil {
			if err := s.journal.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := s.journal.Close(); err != nil && first == nil {
			first = err
		}
		s.journal = nil
	}
	if err := s.fsys.Remove(path.Join(s.dir, lockName)); err != nil && first == nil {
		first = err
	}
	return first
}
